lib/vliw/eval.mli: Hw Ir Machine
