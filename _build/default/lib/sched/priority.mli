(** List-scheduling priorities: critical-path height.

    The height of an instruction is the longest latency-weighted path
    from it to any sink through the hard precedence edges; the list
    scheduler picks ready instructions of greatest height first, which
    is the classic heuristic for in-order VLIW scheduling. *)

val heights :
  body:Ir.Instr.t list ->
  hazards:Hazards.t ->
  latency:(Ir.Instr.t -> int) ->
  (int, int) Hashtbl.t
(** Map from instruction id to critical-path height. *)
