lib/binary/codec.mli: Ir
