(* Load generation against a running server.

   Closed loop: a pipeline of [clients] outstanding requests — submit
   until [clients] are in flight, then await the oldest and refill.
   Throughput is whatever the service sustains; nothing is rejected as
   long as [clients <= queue_limit].

   Open loop: requests are issued on a fixed arrival schedule
   (request [i] at [start + i / rate]), regardless of completions.
   When the service falls behind, admission control rejects the excess
   — which is the point: the rejection count under an offered-rate
   sweep is the measured capacity curve.

   Request [i] goes to tenant ["t" ^ i mod tenants] and runs job
   [i mod length jobs]: fully deterministic assignment, so a (spec,
   seed) pair names one exact workload. *)

type mode =
  | Closed of { clients : int }
  | Open of { rate : float }

type spec = {
  mode : mode;
  requests : int;
  tenants : int;
  shared_cache : bool;
  fault : Server.fault_spec option;
  deadline : Server.deadline option;
  jobs : Exec.Matrix.job array;
}

type result = {
  report : Server.report;
  elapsed_s : float;
  throughput_rps : float;  (* completed / elapsed *)
  offered_rps : float option;  (* open loop only *)
}

let request_of spec i =
  {
    Server.tenant = "t" ^ string_of_int (i mod spec.tenants);
    job = spec.jobs.(i mod Array.length spec.jobs);
    shared_cache = spec.shared_cache;
    fault = spec.fault;
    deadline = spec.deadline;
  }

let validate spec =
  if spec.requests < 0 then invalid_arg "Serve.Loadgen.run: requests < 0";
  if spec.tenants < 1 then invalid_arg "Serve.Loadgen.run: tenants < 1";
  if Array.length spec.jobs = 0 then invalid_arg "Serve.Loadgen.run: no jobs";
  match spec.mode with
  | Closed { clients } ->
    if clients < 1 then invalid_arg "Serve.Loadgen.run: clients < 1"
  | Open { rate } ->
    if rate <= 0.0 then invalid_arg "Serve.Loadgen.run: rate <= 0"

let run_closed server spec clients =
  (* FIFO of outstanding tickets, depth [clients] *)
  let outstanding = Queue.create () in
  for i = 0 to spec.requests - 1 do
    (match Server.submit server (request_of spec i) with
    | `Accepted ticket -> Queue.push ticket outstanding
    | `Rejected -> ()
    (* only when clients > queue_limit; the pipeline shrinks *));
    if Queue.length outstanding >= clients then begin
      (* flush before blocking, or a partial batch deadlocks us *)
      Server.flush server;
      ignore (Server.await (Queue.pop outstanding))
    end
  done;
  Server.flush server;
  Queue.iter (fun ticket -> ignore (Server.await ticket)) outstanding

let run_open server spec rate =
  let start = Unix.gettimeofday () in
  let accepted = ref [] in
  for i = 0 to spec.requests - 1 do
    let due = start +. (float_of_int i /. rate) in
    let now = Unix.gettimeofday () in
    if due > now then Unix.sleepf (due -. now);
    match Server.submit server (request_of spec i) with
    | `Accepted ticket -> accepted := ticket :: !accepted
    | `Rejected -> ()
  done;
  Server.flush server;
  List.iter (fun ticket -> ignore (Server.await ticket)) !accepted

let run server spec =
  validate spec;
  let t0 = Unix.gettimeofday () in
  (match spec.mode with
  | Closed { clients } -> run_closed server spec clients
  | Open { rate } -> run_open server spec rate);
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let report = Server.report server in
  {
    report;
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0.0 then float_of_int report.Server.completed /. elapsed_s
       else 0.0);
    offered_rps =
      (match spec.mode with Closed _ -> None | Open { rate } -> Some rate);
  }
