type entry = {
  range : Access.t;
  setter : int;
}

type t = {
  capacity : int;
  mutable table : entry list;  (* newest first *)
  mutable checks : int;
}

let create ?(size = 32) () =
  if size <= 0 then invalid_arg "Alat.create: size must be positive";
  { capacity = size; table = []; checks = 0 }

let size t = t.capacity
let reset t = t.table <- []
let live_count t = List.length t.table
let checks_performed t = t.checks

let insert t e =
  let table = e :: t.table in
  t.table <-
    (if List.length table > t.capacity then
       List.filteri (fun i _ -> i < t.capacity) table
     else table)

(* Stores check every live entry; that blanket check is what makes the
   scheme false-positive prone. *)
let check_all t ~checker range =
  let rec scan = function
    | [] -> Ok ()
    | e :: rest ->
      t.checks <- t.checks + 1;
      if Access.overlap e.range range then
        Error
          Detector.
            { checker; setter = e.setter; false_positive_prone = true }
      else scan rest
  in
  scan t.table

let on_mem t (instr : Ir.Instr.t) range =
  match Ir.Instr.annot instr, instr.op with
  | Ir.Annot.Alat { advanced }, Ir.Instr.Load _ ->
    if advanced then insert t { range; setter = instr.id };
    Ok ()
  | Ir.Annot.Alat _, Ir.Instr.Store _ -> check_all t ~checker:instr.id range
  | Ir.Annot.Alat _, _ -> Ok ()
  | (Ir.Annot.No_annot | Ir.Annot.Queue _ | Ir.Annot.Mask _), op ->
    (* Stores always snoop the table on Itanium, annotated or not. *)
    (match op with
    | Ir.Instr.Store _ -> check_all t ~checker:instr.id range
    | _ -> Ok ())

let caps () =
  Detector.
    {
      scheme = "ALAT";
      scalable = true;
      false_positives = true;
      detects_store_store = false;
      max_registers = None;
    }

let detector t =
  Detector.
    {
      name = "alat";
      caps = caps ();
      reset = (fun () -> reset t);
      on_mem = (fun i r -> on_mem t i r);
      on_rotate = (fun _ -> ());
      on_amov = (fun ~src:_ ~dst:_ -> ());
      checks_performed = (fun () -> checks_performed t);
    }
