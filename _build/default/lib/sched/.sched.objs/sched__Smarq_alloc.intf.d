lib/sched/smarq_alloc.mli: Analysis Ir
