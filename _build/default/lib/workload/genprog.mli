(** Seeded random program generation for property-based tests.

    Two granularities:
    - {!superblock}: a random straight-line superblock with a
      controlled mix of loads, stores, ALU/FP chains and optional side
      exits; memory addressing is biased so some pairs are
      compiler-disambiguable, some are may-alias-but-disjoint, and some
      truly collide.
    - {!program}: a whole guest CFG with a hot loop, so the full
      dynamic optimization system can be tested end-to-end against the
      reference interpreter.

    Generators are deterministic in their seed. *)

type params = {
  n_instrs : int;  (** superblock body length target *)
  mem_fraction : float;  (** fraction of memory operations *)
  store_fraction : float;  (** stores among memory operations *)
  n_bases : int;  (** distinct base registers in play *)
  collide_fraction : float;
      (** probability a memory op reuses a recently used address
          (producing genuine runtime aliases) *)
  side_exit_every : int option;  (** insert a side exit every n ops *)
}

val default_params : params

val superblock : seed:int -> params:params -> Ir.Superblock.t * (int -> int)
(** Returns the superblock and the initial value of every base
    register (a function from base index to address), so callers can
    set up a machine to execute it.  Base register k is [R (10 + k)];
    the returned function seeds [R (10 + k)]. *)

val setup_machine_regs : params:params -> bases:(int -> int) -> (Ir.Reg.t * int) list
(** Register/value pairs to install before executing the superblock. *)

val program : seed:int -> n_loops:int -> iters:int -> Ir.Program.t
(** A guest program with [n_loops] sequential hot loops of random
    bodies, each running [iters] iterations. *)
