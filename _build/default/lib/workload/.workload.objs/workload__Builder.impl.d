lib/workload/builder.ml: Ir List Printf
