(** Static alias certification with machine-checkable proof witnesses.

    The disambiguator runs the {!Absint} engine over a superblock body
    and, for every memory pair that {!May_alias} can only call
    [May_alias], tries to prove the two accesses disjoint.  Each
    successful proof is recorded as a self-contained witness: the two
    abstract address facts (origin, scale, offset set, width) plus the
    separation argument (range disjointness or stride congruence).
    Witnesses carry everything a checker needs — [Check.Witness]
    replays the derivation with an independent evaluator and re-does
    the disjointness arithmetic without consulting this module's
    logic.

    Certification is eager and deterministic: the certificate for a
    given body and alias analysis is a pure function of both, so the
    fast and reference pipelines produce bit-identical artifacts. *)

(** Abstract address of one endpoint, as claimed by the certifier. *)
type fact = {
  instr : int;  (** instruction id in the body *)
  width : int;  (** access width in bytes *)
  origin : Absint.origin;
  scale : int;
  off : Absint.cset;
}

type reason =
  | Ranges
  | Congruence of int  (** the stride gcd the residue argument uses *)

(** Proof that the accesses of [x] and [y] can never overlap.  [x]
    comes before [y] in body order. *)
type witness = {
  x : fact;
  y : fact;
  reason : reason;
}

type t

val certify : alias:May_alias.t -> body:Ir.Instr.t list -> t
(** Attempt to certify every memory pair involving at least one store
    whose {!May_alias.verdict} is [May_alias].  Pairs already known to
    alias (learned from rollbacks) are never candidates. *)

val no_alias : t -> int -> int -> bool
val pairs : t -> (int * int) list
(** Certified pairs, normalized [(min, max)] and sorted — the order is
    deterministic and used for region attachment. *)

val witnesses : t -> witness list
(** Sorted by normalized pair. *)

val of_witnesses : witness list -> t
(** Rebuild a certificate from raw witnesses (no re-validation) — used
    by the mutation harness to forge corrupted certificates. *)

val count : t -> int

val pp_witness : Format.formatter -> witness -> unit
val witness_to_json : witness -> string
