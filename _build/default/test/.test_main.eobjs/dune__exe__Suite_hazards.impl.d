test/suite_hazards.ml: Alcotest Analysis Hashtbl Helpers Hw Ir List Sched
