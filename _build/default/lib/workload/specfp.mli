(** The synthetic SPECFP2000-like benchmark suite.

    The paper evaluates on SPECFP2000 binaries we do not have; each
    generator here produces a deterministic guest program whose
    superblock shape, memory-operation mix and runtime alias behaviour
    mimic the characteristics the paper reports for that benchmark
    (see DESIGN.md).  Notably:

    - [ammp]: very large superblocks with many memory operations
      (drives the 16-vs-64 alias-register gap of Figure 15) and rare
      store-store collisions (its slight loss in Figure 16);
    - [mesa]: store bursts behind slow data (store reordering is worth
      ~13%, Figure 16);
    - [art]/[equake]: pointer chasing and scatter access with moderate
      genuine alias rates (rollback traffic);
    - the rest: streaming/stencil/reduction FP kernels in several
      blends. *)

type bench = {
  name : string;
  default_iters : int;
  make : iters:int -> Ir.Program.t;
  description : string;
}

val program : ?scale:int -> bench -> Ir.Program.t
(** Build the benchmark program with [scale] times the default
    iteration count (default 1). *)

val suite : bench list
(** The ten benchmarks, in the paper's reporting order. *)

val find : string -> bench
(** Raises [Not_found] for an unknown name. *)

val names : string list
