(* Quickstart: build a small guest program, run it through the SMARQ
   dynamic optimization system, and compare against the no-detection
   baseline.

     dune exec examples/quickstart.exe *)

module I = Ir.Instr

let program () =
  let bld = Workload.Builder.create () in
  let a = Ir.Reg.R 1 and b = Ir.Reg.R 2 and idx = Ir.Reg.R 4 in
  (* point two base registers at separate arrays and loop 2000 times *)
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x10000);
         I.Mov (b, I.Imm 0x20000);
         I.Mov (idx, I.Imm 2000);
       ])
    ~next:"loop";
  (* each lane stores through [a] and the next lane loads through [b]:
     the optimizer cannot disambiguate the two bases, so without
     hardware alias detection every lane's loads serialize behind the
     previous lane's store *)
  let lane k =
    let v = Ir.Reg.F (1 + k) and w = Ir.Reg.F (4 + k) in
    Workload.Builder.instrs bld
      [
        I.Load { dst = v; addr = { I.base = b; disp = k * 16 };
                 width = 8; annot = Ir.Annot.none };
        I.Load { dst = w; addr = { I.base = b; disp = (k * 16) + 8 };
                 width = 8; annot = Ir.Annot.none };
        I.Fbinop (I.Fmul, v, I.Reg v, I.Reg w);
        I.Store { src = I.Reg v; addr = { I.base = a; disp = k * 16 };
                  width = 8; annot = Ir.Annot.none };
      ]
  in
  let body =
    lane 0 @ lane 1 @ lane 2
    @ Workload.Builder.instrs bld
        [
          I.Binop (I.Add, a, I.Reg a, I.Imm 48);
          I.Binop (I.Add, b, I.Reg b, I.Imm 48);
        ]
  in
  Workload.Builder.loop_back bld "loop" body ~counter:idx ~back_to:"loop"
    ~exit_to:"end" ~iters:2000;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let () =
  let p = program () in
  (* ground truth from the reference interpreter *)
  let reference = Vliw.Machine.create () in
  ignore (Frontend.Interp.run reference p);
  List.iter
    (fun scheme ->
      let r = Smarq.run_program ~scheme p in
      let st = r.Runtime.Driver.stats in
      let ok =
        Vliw.Machine.equal_guest_state reference r.Runtime.Driver.machine
      in
      Printf.printf
        "%-8s %8d cycles  (%d regions, %d rollbacks, state %s)\n"
        (Smarq.Scheme.name scheme)
        st.Runtime.Stats.total_cycles st.Runtime.Stats.regions_built
        st.Runtime.Stats.rollbacks
        (if ok then "matches interpreter" else "MISMATCH"))
    [ Smarq.Scheme.None_; Smarq.Scheme.Smarq 64 ];
  print_endline
    "\nthe SMARQ run is faster because the loads were hoisted above the\n\
     may-alias store, with the alias register queue guarding correctness."
