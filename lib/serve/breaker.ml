(* A count-based circuit breaker: closed / open / half-open.

   Observations (success or failure, where timeouts count as failures)
   land in a sliding window of the last [window] outcomes.  A full
   window whose failure fraction reaches [failure_threshold] trips the
   breaker open; while open, the next [cooldown] admissions are shed to
   the degraded path, after which one request is admitted as a probe.
   A successful probe closes the breaker (window cleared); a failed
   probe re-opens it for another cooldown.

   Everything is counted in events, not wall time, so a deterministic
   request sequence produces a deterministic transition sequence — the
   soak harness replays breakers bit-for-bit from its seed.  The
   structure is NOT internally locked: the server observes each
   (tenant, scheme) breaker from whichever worker runs that tenant's
   request and serializes with its own mutex. *)

type config = {
  window : int;
  failure_threshold : float;  (* failure fraction in (0,1] that trips *)
  cooldown : int;  (* admissions shed while open before probing *)
}

let default_config = { window = 8; failure_threshold = 0.5; cooldown = 4 }

let check_config c =
  if c.window < 1 then invalid_arg "Serve.Breaker: window < 1";
  if c.failure_threshold <= 0.0 || c.failure_threshold > 1.0 then
    invalid_arg "Serve.Breaker: failure_threshold not in (0,1]";
  if c.cooldown < 1 then invalid_arg "Serve.Breaker: cooldown < 1";
  c

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type decision = Run | Shed | Probe

type t = {
  cfg : config;
  mutable state : state;
  ring : bool array;  (* true = failure; only the closed state fills it *)
  mutable ring_len : int;  (* samples held, <= window *)
  mutable ring_pos : int;  (* next write position *)
  mutable ring_failures : int;
  mutable shed_left : int;  (* open state: admissions left to shed *)
  mutable probing : bool;  (* half-open: probe outstanding *)
  mutable transitions : int;
  mutable shed_total : int;
}

let create ?(config = default_config) () =
  let cfg = check_config config in
  {
    cfg;
    state = Closed;
    ring = Array.make cfg.window false;
    ring_len = 0;
    ring_pos = 0;
    ring_failures = 0;
    shed_left = 0;
    probing = false;
    transitions = 0;
    shed_total = 0;
  }

let state t = t.state
let transitions t = t.transitions
let shed_total t = t.shed_total

let clear_ring t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.ring_failures <- 0

let transition t s =
  t.state <- s;
  t.transitions <- t.transitions + 1

let trip_open t =
  transition t Open;
  t.shed_left <- t.cfg.cooldown;
  t.probing <- false;
  clear_ring t

let admit t =
  match t.state with
  | Closed -> Run
  | Open ->
    if t.shed_left > 0 then begin
      t.shed_left <- t.shed_left - 1;
      t.shed_total <- t.shed_total + 1;
      Shed
    end
    else begin
      transition t Half_open;
      t.probing <- true;
      Probe
    end
  | Half_open ->
    if t.probing then begin
      (* one probe at a time; everyone else keeps the degraded path *)
      t.shed_total <- t.shed_total + 1;
      Shed
    end
    else begin
      t.probing <- true;
      Probe
    end

type observation = Success | Failure

(* Record the terminal outcome of an admitted (Run or Probe) request.
   Shed requests are NOT observed: the degraded path cannot fail, and
   feeding it back would wedge the window with stale verdicts. *)
let observe t obs =
  match t.state with
  | Closed ->
    let failed = obs = Failure in
    if t.ring_len = Array.length t.ring then begin
      (* evict the oldest sample *)
      if t.ring.(t.ring_pos) then t.ring_failures <- t.ring_failures - 1
    end
    else t.ring_len <- t.ring_len + 1;
    t.ring.(t.ring_pos) <- failed;
    if failed then t.ring_failures <- t.ring_failures + 1;
    t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
    if
      t.ring_len = Array.length t.ring
      && float_of_int t.ring_failures
         >= t.cfg.failure_threshold *. float_of_int t.ring_len
    then trip_open t
  | Half_open -> (
    t.probing <- false;
    match obs with
    | Success ->
      transition t Closed;
      clear_ring t
    | Failure -> trip_open t)
  | Open ->
    (* a request admitted before the trip finishing late: the verdict
       predates the open window, drop it *)
    ()
