(* The full dynamic *binary* translation path: assemble a guest program
   into a byte image, throw the CFG away, disassemble the image, and
   run it through the dynamic optimization system.

   The image carries no branch-probability hints (a real binary would
   not either), so the runtime rediscovers branch bias by edge
   profiling before forming superblocks — and reaches the same steady
   state as the original CFG.

     dune exec examples/binary_translation.exe [benchmark] *)

let () =
  let name = try Sys.argv.(1) with _ -> "wupwise" in
  let bench =
    try Workload.Specfp.find name
    with Not_found ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 1
  in
  let original = Workload.Specfp.program bench in
  let image = Binary.Codec.assemble original in
  Printf.printf "assembled %s: %d bytes (%d instruction records)\n" name
    (Bytes.length image)
    ((Bytes.length image - Binary.Image.header_bytes)
    / Binary.Image.record_bytes);
  Printf.printf "first record bytes:";
  for i = 16 to 31 do
    Printf.printf " %02x" (Char.code (Bytes.get image i))
  done;
  print_newline ();

  let decoded = Binary.Codec.disassemble image in
  Printf.printf "disassembled into %d basic blocks (entry %s)\n"
    (List.length (Ir.Program.labels decoded))
    decoded.Ir.Program.entry;

  (* ground truth *)
  let reference = Vliw.Machine.create () in
  ignore (Frontend.Interp.run reference decoded);

  List.iter
    (fun scheme ->
      let r = Smarq.run_program ~scheme decoded in
      let st = r.Runtime.Driver.stats in
      Printf.printf
        "%-8s %9d cycles, %d regions built, state %s\n"
        (Smarq.Scheme.name scheme) st.Runtime.Stats.total_cycles
        st.Runtime.Stats.regions_built
        (if Vliw.Machine.equal_guest_state reference r.Runtime.Driver.machine
         then "matches interpreter"
         else "MISMATCH")
    )
    [ Smarq.Scheme.None_; Smarq.Scheme.Smarq 64 ];
  print_endline
    "\nno probability hints survived assembly; the speedup above came\n\
     entirely from runtime edge profiling plus hardware alias detection."
