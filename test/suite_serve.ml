(* The translation service and its parts.

   - Percentiles: exact nearest-rank quantiles, merge, summaries.
   - The long-running pool: every accepted job drains on shutdown,
     shutdown is idempotent (sequential and concurrent), submission
     after shutdown raises, worker indices are in range.
   - Shards: a sharded cache with cross-shard invalidation observes the
     same telemetry as the same operations on independent per-(tenant,
     worker) stores (QCheck), and a tenant's eviction storm cannot
     evict another tenant's translations (budget isolation).
   - The server: matrix-via-service is bit-identical to the batch
     matrix (the fig15 seed matrix by cycle count, a small matrix by
     full stats and final guest state); admission control rejects
     deterministically and counts rejections apart from errors; tenant
     shards keep translations hot across requests; per-request fault
     campaigns replay deterministically. *)

open Helpers

(* ---- Runtime.Percentiles ---- *)

let test_percentiles_empty () =
  let p = Runtime.Percentiles.create () in
  Alcotest.(check int) "count" 0 (Runtime.Percentiles.count p);
  Alcotest.(check (float 0.0)) "p50 of empty" 0.0
    (Runtime.Percentiles.percentile p 0.5);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Runtime.Percentiles.mean p)

let test_percentiles_nearest_rank () =
  let p = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add p) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let q v = Runtime.Percentiles.percentile p v in
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (q 0.0);
  Alcotest.(check (float 0.0)) "p50 is median" 3.0 (q 0.5);
  Alcotest.(check (float 0.0)) "p95 is max of 5" 5.0 (q 0.95);
  Alcotest.(check (float 0.0)) "p100 is max" 5.0 (q 1.0);
  Alcotest.(check (float 0.0)) "total" 15.0 (Runtime.Percentiles.total p);
  (* adding after a query must invalidate the cached sorted view *)
  Runtime.Percentiles.add p 10.0;
  Alcotest.(check (float 0.0)) "new max visible" 10.0 (q 1.0);
  Alcotest.(check int) "count" 6 (Runtime.Percentiles.count p);
  (* even count: nearest rank picks the lower middle *)
  let e = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add e) [ 4.0; 1.0; 3.0; 2.0 ];
  Alcotest.(check (float 0.0)) "even-count median" 2.0
    (Runtime.Percentiles.percentile e 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Percentiles.percentile: q not in [0,1]") (fun () ->
      ignore (Runtime.Percentiles.percentile e 1.5))

let test_percentiles_merge_summary () =
  let a = Runtime.Percentiles.create () in
  let b = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add a) [ 1.0; 2.0 ];
  List.iter (Runtime.Percentiles.add b) [ 30.0; 40.0 ];
  Runtime.Percentiles.merge ~into:a b;
  Alcotest.(check int) "merged count" 4 (Runtime.Percentiles.count a);
  let s = Runtime.Percentiles.summary a in
  Alcotest.(check int) "summary n" 4 s.Runtime.Percentiles.n;
  Alcotest.(check (float 0.0)) "summary min" 1.0 s.Runtime.Percentiles.min_v;
  Alcotest.(check (float 0.0)) "summary max" 40.0 s.Runtime.Percentiles.max_v;
  Alcotest.(check (float 0.0)) "summary p50" 2.0 s.Runtime.Percentiles.p50;
  Alcotest.(check (float 1e-9)) "summary mean" 18.25
    s.Runtime.Percentiles.mean_v

(* ---- Exec.Pool: the long-running pool ---- *)

let test_pool_drains_on_shutdown () =
  let pool = Exec.Pool.create ~domains:3 () in
  let done_count = Atomic.make 0 in
  let bad_worker = Atomic.make 0 in
  for _ = 1 to 50 do
    Exec.Pool.submit pool (fun worker ->
        if worker < 0 || worker >= Exec.Pool.size pool then
          Atomic.incr bad_worker;
        (* a little work so jobs are still queued when shutdown starts *)
        ignore (Digest.string (String.make 200 'x'));
        Atomic.incr done_count)
  done;
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "all jobs drained" 50 (Atomic.get done_count);
  Alcotest.(check int) "worker indices in range" 0 (Atomic.get bad_worker);
  Alcotest.(check int) "no failed jobs" 0 (Exec.Pool.failed_jobs pool)

let test_pool_shutdown_idempotent () =
  let pool = Exec.Pool.create ~domains:2 () in
  let done_count = Atomic.make 0 in
  for _ = 1 to 20 do
    Exec.Pool.submit pool (fun _ -> Atomic.incr done_count)
  done;
  (* a concurrent second shutdown must block until the same drain
     completes, not crash or double-join *)
  let racer = Domain.spawn (fun () -> Exec.Pool.shutdown pool) in
  Exec.Pool.shutdown pool;
  Domain.join racer;
  (* and a later third call is a no-op *)
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "all jobs drained" 20 (Atomic.get done_count);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Exec.Pool.submit: pool is shut down") (fun () ->
      Exec.Pool.submit pool (fun _ -> ()))

let test_pool_failed_jobs_counted () =
  let pool = Exec.Pool.create ~domains:2 () in
  let done_count = Atomic.make 0 in
  for i = 1 to 10 do
    Exec.Pool.submit pool (fun _ ->
        if i mod 2 = 0 then failwith "boom" else Atomic.incr done_count)
  done;
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "good jobs ran" 5 (Atomic.get done_count);
  Alcotest.(check int) "failures counted" 5 (Exec.Pool.failed_jobs pool)

(* ---- Serve.Shards vs independent stores ---- *)

type shard_op =
  | Find of string * int * string  (* tenant, worker, label *)
  | Insert of string * int * string * int  (* + size *)
  | Invalidate_all of string  (* cross-shard *)
  | Flush_all

let pp_shard_op = function
  | Find (t, w, l) -> Printf.sprintf "find %s/%d %s" t w l
  | Insert (t, w, l, s) -> Printf.sprintf "insert %s/%d %s size=%d" t w l s
  | Invalidate_all l -> Printf.sprintf "invalidate* %s" l
  | Flush_all -> "flush*"

let gen_shard_op =
  let open QCheck.Gen in
  let tenant = oneofl [ "a"; "b"; "c" ] in
  let worker = int_range 0 2 in
  let label = map (Printf.sprintf "L%d") (int_range 0 5) in
  frequency
    [
      (4, map3 (fun t w l -> Find (t, w, l)) tenant worker label);
      ( 4,
        map3 (fun t w (l, s) -> Insert (t, w, l, s)) tenant worker
          (pair label (int_range 1 10)) );
      (1, map (fun l -> Invalidate_all l) label);
      (1, return Flush_all);
    ]

let arb_shard_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_shard_op ops))
    QCheck.Gen.(list_size (int_range 1 120) gen_shard_op)

let telemetry_fields t = Smarq.Tcache.Telemetry.fields t

(* the same operations applied to the sharded container and to a flat
   dictionary of independent stores must observe identical telemetry,
   aggregate and per tenant *)
let shards_match_independent_stores ops =
  let budget = 16 in
  let sharded =
    Serve.Shards.create ~tenant_budget:budget
      ~ops:(Serve.Shards.store_ops ~policy:Smarq.Tcache.Policy.Lru)
      ()
  in
  let independent : (string * int, int Smarq.Tcache.Store.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let model ~tenant ~worker =
    match Hashtbl.find_opt independent (tenant, worker) with
    | Some s -> s
    | None ->
      let s =
        Smarq.Tcache.Store.create ~capacity:budget
          ~policy:Smarq.Tcache.Policy.Lru ()
      in
      Hashtbl.replace independent (tenant, worker) s;
      s
  in
  List.iter
    (fun op ->
      match op with
      | Find (tenant, worker, l) ->
        ignore
          (Smarq.Tcache.Store.find (Serve.Shards.shard sharded ~tenant ~worker) l);
        ignore (Smarq.Tcache.Store.find (model ~tenant ~worker) l)
      | Insert (tenant, worker, l, size) ->
        Smarq.Tcache.Store.insert
          (Serve.Shards.shard sharded ~tenant ~worker)
          l ~size 0;
        Smarq.Tcache.Store.insert (model ~tenant ~worker) l ~size 0
      | Invalidate_all l ->
        Serve.Shards.invalidate sharded l;
        Hashtbl.iter
          (fun _ s -> Smarq.Tcache.Store.invalidate s l)
          independent
      | Flush_all ->
        Serve.Shards.flush sharded;
        Hashtbl.iter (fun _ s -> Smarq.Tcache.Store.flush s) independent)
    ops;
  let sum_independent ?tenant () =
    let acc = Smarq.Tcache.Telemetry.create () in
    Hashtbl.iter
      (fun (ten, _) s ->
        if match tenant with None -> true | Some t -> t = ten then
          Smarq.Tcache.Telemetry.add ~into:acc (Smarq.Tcache.Store.telemetry s))
      independent;
    acc
  in
  telemetry_fields (Serve.Shards.telemetry sharded)
  = telemetry_fields (sum_independent ())
  && List.for_all
       (fun tenant ->
         telemetry_fields (Serve.Shards.telemetry ~tenant sharded)
         = telemetry_fields (sum_independent ~tenant ()))
       [ "a"; "b"; "c" ]

let test_tenant_budget_isolation () =
  let shards =
    Serve.Shards.create ~tenant_budget:20
      ~ops:(Serve.Shards.store_ops ~policy:Smarq.Tcache.Policy.Lru)
      ()
  in
  let quiet = Serve.Shards.shard shards ~tenant:"quiet" ~worker:0 in
  Smarq.Tcache.Store.insert quiet "hot" ~size:10 0;
  (* a noisy tenant overflows its own budget many times over *)
  let noisy = Serve.Shards.shard shards ~tenant:"noisy" ~worker:0 in
  for i = 0 to 19 do
    Smarq.Tcache.Store.insert noisy (Printf.sprintf "n%d" i) ~size:10 0
  done;
  let noisy_t = Serve.Shards.telemetry ~tenant:"noisy" shards in
  let quiet_t = Serve.Shards.telemetry ~tenant:"quiet" shards in
  Alcotest.(check bool)
    "noisy tenant evicted" true
    (noisy_t.Smarq.Tcache.Telemetry.evictions > 0);
  Alcotest.(check int) "quiet tenant untouched" 0
    quiet_t.Smarq.Tcache.Telemetry.evictions;
  Alcotest.(check bool)
    "quiet translation still resident" true
    (Smarq.Tcache.Store.mem quiet "hot")

(* ---- matrix via the service == batch matrix ---- *)

let test_serve_matrix_small_bit_identical () =
  let batch = Exec.Matrix.run_matrix ~domains:2 (Suite_exec.small_matrix ()) in
  let served = Serve.Server.run_matrix ~domains:3 (Suite_exec.small_matrix ()) in
  Alcotest.(check int) "same length" (List.length batch) (List.length served);
  List.iter2
    (fun (a : Exec.Matrix.outcome) (b : Exec.Matrix.outcome) ->
      let label = a.Exec.Matrix.job.Exec.Matrix.label in
      Alcotest.(check string) "same label" label
        b.Exec.Matrix.job.Exec.Matrix.label;
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical stats" label)
        true
        (Suite_exec.strip_wall a.Exec.Matrix.result.Runtime.Driver.stats
        = Suite_exec.strip_wall b.Exec.Matrix.result.Runtime.Driver.stats);
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical final state" label)
        true
        (Vliw.Machine.equal_guest_state
           a.Exec.Matrix.result.Runtime.Driver.machine
           b.Exec.Matrix.result.Runtime.Driver.machine))
    batch served

let test_serve_matrix_fig15_seed_cycles () =
  let jobs =
    List.map
      (fun (bench, scheme, _) ->
        Exec.Matrix.of_bench ~scale:5 ~scheme (Workload.Specfp.find bench))
      Suite_exec.fig15_seed_reference
  in
  let outcomes = Serve.Server.run_matrix jobs in
  List.iter2
    (fun (bench, scheme, cycles) (o : Exec.Matrix.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "%s/%s cycles via service" bench
           (Smarq.Scheme.name scheme))
        cycles
        o.Exec.Matrix.result.Runtime.Driver.stats.Runtime.Stats.total_cycles)
    Suite_exec.fig15_seed_reference outcomes

(* ---- the server proper ---- *)

let one_job () =
  Exec.Matrix.of_bench ~scale:1 ~scheme:(Smarq.Scheme.Smarq 64)
    (Workload.Specfp.find "wupwise")

let test_serve_admission_control () =
  (* batch=2 parks the first request in a partial batch, so the second
     submission deterministically finds the queue full *)
  let config =
    { Serve.Server.default_config with domains = 1; queue_limit = 1; batch = 2 }
  in
  let server = Serve.Server.create ~config () in
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None; deadline = None }
  in
  let t1 =
    match Serve.Server.submit server rq with
    | `Accepted t -> t
    | `Rejected -> Alcotest.fail "first submission rejected"
  in
  (match Serve.Server.submit server rq with
  | `Rejected -> ()
  | `Accepted _ -> Alcotest.fail "queue_limit not enforced");
  Alcotest.(check int) "inflight" 1 (Serve.Server.inflight server);
  Serve.Server.flush server;
  let reply = Serve.Server.await t1 in
  Alcotest.(check bool) "request succeeded" true
    (match reply.Serve.Server.resolution with
    | Serve.Server.Done _ -> true
    | _ -> false);
  Serve.Server.shutdown server;
  let r = Serve.Server.report server in
  Alcotest.(check int) "accepted" 1 r.Serve.Server.submitted;
  Alcotest.(check int) "completed" 1 r.Serve.Server.completed;
  Alcotest.(check int) "rejected counted apart" 1 r.Serve.Server.rejected;
  Alcotest.(check int) "no errors" 0 r.Serve.Server.errors;
  Alcotest.(check int) "latency samples" 1
    r.Serve.Server.total.Runtime.Percentiles.n

let test_serve_shared_cache_reuse () =
  let config = { Serve.Server.default_config with domains = 1 } in
  let server = Serve.Server.create ~config () in
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None; deadline = None }
  in
  let submit () =
    match Serve.Server.submit server rq with
    | `Accepted t -> Serve.Server.await t
    | `Rejected -> Alcotest.fail "rejected"
  in
  let first = submit () in
  let second = submit () in
  Serve.Server.shutdown server;
  let stats_of (r : Serve.Server.reply) =
    match r.Serve.Server.resolution with
    | Serve.Server.Done res -> res.Runtime.Driver.stats
    | Serve.Server.Failed e -> raise e
    | _ -> Alcotest.fail "unexpected resolution"
  in
  (* the first run populates the tenant shard; the second finds its hot
     regions already translated *)
  Alcotest.(check bool) "first run translates" true
    ((stats_of first).Runtime.Stats.regions_built > 0);
  Alcotest.(check int) "second run retranslates nothing" 0
    (stats_of second).Runtime.Stats.regions_built;
  Alcotest.(check bool) "second run hits the shard" true
    ((stats_of second).Runtime.Stats.tcache_hits > 0);
  Alcotest.(check int) "one shard" 1 (Serve.Server.shard_count server);
  let telem = Serve.Server.shards_telemetry server in
  Alcotest.(check bool) "shard telemetry saw the hits" true
    (telem.Smarq.Tcache.Telemetry.hits > 0);
  (* a warm shard changes the cost, never the answer: run 2 skips the
     cold interpret-and-profile phase (fewer simulated cycles) but must
     land on the same final guest state *)
  Alcotest.(check bool) "warm run is no slower" true
    ((stats_of second).Runtime.Stats.total_cycles
    <= (stats_of first).Runtime.Stats.total_cycles);
  let machine_of (r : Serve.Server.reply) =
    match r.Serve.Server.resolution with
    | Serve.Server.Done res -> res.Runtime.Driver.machine
    | Serve.Server.Failed e -> raise e
    | _ -> Alcotest.fail "unexpected resolution"
  in
  Alcotest.(check bool) "same final guest state" true
    (Vliw.Machine.equal_guest_state (machine_of first) (machine_of second))

let test_serve_fault_passthrough_deterministic () =
  let run_campaign () =
    let config = { Serve.Server.default_config with domains = 1 } in
    let server = Serve.Server.create ~config () in
    let replies =
      List.init 4 (fun _ ->
          let rq =
            {
              Serve.Server.tenant = "t0";
              job = one_job ();
              shared_cache = true;
              fault = Some { Serve.Server.fault_seed = 5; fault_rate = 0.3 };
              deadline = None;
            }
          in
          match Serve.Server.submit server rq with
          | `Accepted t -> Serve.Server.await t
          | `Rejected -> Alcotest.fail "rejected")
    in
    Serve.Server.shutdown server;
    let r = Serve.Server.report server in
    (replies, r)
  in
  let replies1, report1 = run_campaign () in
  let replies2, report2 = run_campaign () in
  Alcotest.(check int) "no errors" 0 report1.Serve.Server.errors;
  Alcotest.(check bool) "faults actually injected" true
    (report1.Serve.Server.injected_faults > 0);
  Alcotest.(check int) "campaign injects deterministically"
    report1.Serve.Server.injected_faults report2.Serve.Server.injected_faults;
  List.iter2
    (fun (a : Serve.Server.reply) (b : Serve.Server.reply) ->
      Alcotest.(check int) "per-request injection count"
        a.Serve.Server.injected b.Serve.Server.injected;
      match (a.Serve.Server.resolution, b.Serve.Server.resolution) with
      | Serve.Server.Done ra, Serve.Server.Done rb ->
        Alcotest.(check bool) "per-request stats replay" true
          (Suite_exec.strip_wall ra.Runtime.Driver.stats
          = Suite_exec.strip_wall rb.Runtime.Driver.stats)
      | _ -> Alcotest.fail "request errored")
    replies1 replies2;
  (* distinct requests get distinct campaigns (seed + sequence number):
     at rate 0.3 four identical runs injecting identically would mean
     the per-request derivation is broken *)
  let counts =
    List.map (fun (r : Serve.Server.reply) -> r.Serve.Server.injected) replies1
  in
  Alcotest.(check bool) "per-request campaigns differ" true
    (List.sort_uniq compare counts <> [ List.hd counts ]
    || List.length (List.sort_uniq compare counts) > 1)

let test_loadgen_closed_loop () =
  let config =
    { Serve.Server.default_config with domains = 2; queue_limit = 8 }
  in
  let server = Serve.Server.create ~config () in
  let spec =
    {
      Serve.Loadgen.mode = Serve.Loadgen.Closed { clients = 4 };
      requests = 8;
      tenants = 2;
      shared_cache = true;
      fault = None;
      deadline = None;
      jobs = [| one_job () |];
    }
  in
  let res = Serve.Loadgen.run server spec in
  Serve.Server.shutdown server;
  let r = res.Serve.Loadgen.report in
  Alcotest.(check int) "all completed" 8 r.Serve.Server.completed;
  Alcotest.(check int) "none rejected" 0 r.Serve.Server.rejected;
  Alcotest.(check int) "no errors" 0 r.Serve.Server.errors;
  Alcotest.(check bool) "throughput measured" true
    (res.Serve.Loadgen.throughput_rps > 0.0);
  Alcotest.(check int) "a latency sample per request" 8
    r.Serve.Server.queue_wait.Runtime.Percentiles.n;
  (* two tenants on up to two workers *)
  Alcotest.(check bool) "tenant shards created" true
    (Serve.Server.shard_count server >= 2)


(* ---- Serve.Retry: backoff shape and budgets ---- *)

let test_retry_backoff_and_budget () =
  let pol =
    {
      Serve.Retry.max_attempts = 4;
      base_backoff_s = 0.001;
      max_backoff_s = 0.004;
      jitter = 0.0;
    }
  in
  let prng = Verify.Prng.create ~seed:7 in
  let d n = Serve.Retry.backoff_s pol ~prng ~attempt:n in
  Alcotest.(check (float 1e-12)) "attempt 1: base" 0.001 (d 1);
  Alcotest.(check (float 1e-12)) "attempt 2: doubled" 0.002 (d 2);
  Alcotest.(check (float 1e-12)) "attempt 3: clamped" 0.004 (d 3);
  Alcotest.(check (float 1e-12)) "attempt 9: still clamped" 0.004 (d 9);
  (* full jitter stays in [0, delay] and actually varies *)
  let jittered = { pol with Serve.Retry.jitter = 1.0 } in
  let draws =
    List.init 32 (fun _ -> Serve.Retry.backoff_s jittered ~prng ~attempt:2)
  in
  Alcotest.(check bool) "jitter in range" true
    (List.for_all (fun v -> v >= 0.0 && v <= 0.002) draws);
  Alcotest.(check bool) "jitter varies" true
    (List.length (List.sort_uniq compare draws) > 1);
  (* the same seed replays the same jitter sequence *)
  let replay seed =
    let prng = Verify.Prng.create ~seed in
    List.init 8 (fun i -> Serve.Retry.backoff_s jittered ~prng ~attempt:(i + 1))
  in
  Alcotest.(check bool) "seeded backoff replays" true (replay 5 = replay 5);
  (* budgets: n tokens then refusal; unlimited never refuses *)
  let b = Serve.Retry.budget 2 in
  Alcotest.(check bool) "token 1" true (Serve.Retry.try_take b);
  Alcotest.(check bool) "token 2" true (Serve.Retry.try_take b);
  Alcotest.(check bool) "token 3 refused" false (Serve.Retry.try_take b);
  Alcotest.(check bool) "refusal repeats" false (Serve.Retry.try_take b);
  Alcotest.(check int) "taken" 2 (Serve.Retry.taken b);
  Alcotest.(check (option int)) "none remaining" (Some 0)
    (Serve.Retry.remaining b);
  let u = Serve.Retry.unlimited () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "unlimited grants" true (Serve.Retry.try_take u)
  done;
  Alcotest.(check int) "unlimited counts" 100 (Serve.Retry.taken u);
  Alcotest.(check (option int)) "unlimited remaining" None
    (Serve.Retry.remaining u)

(* ---- Serve.Breaker: recovery walk and QCheck legality ---- *)

let breaker_test_config =
  { Serve.Breaker.window = 4; failure_threshold = 0.5; cooldown = 2 }

let test_breaker_recovery () =
  let b = Serve.Breaker.create ~config:breaker_test_config () in
  let expect_state msg want =
    Alcotest.(check string) msg
      (Serve.Breaker.state_name want)
      (Serve.Breaker.state_name (Serve.Breaker.state b))
  in
  let expect_admit msg want =
    let got = Serve.Breaker.admit b in
    Alcotest.(check bool) msg true (got = want)
  in
  expect_state "starts closed" Serve.Breaker.Closed;
  (* a full window of failures trips the breaker open *)
  for i = 1 to 4 do
    expect_admit (Printf.sprintf "closed runs (%d)" i) Serve.Breaker.Run;
    Serve.Breaker.observe b Serve.Breaker.Failure
  done;
  expect_state "tripped open" Serve.Breaker.Open;
  (* [cooldown] admissions shed to the degraded path... *)
  expect_admit "open sheds (1)" Serve.Breaker.Shed;
  expect_admit "open sheds (2)" Serve.Breaker.Shed;
  (* ...then the next admission probes, half-open *)
  expect_admit "then probes" Serve.Breaker.Probe;
  expect_state "half-open during probe" Serve.Breaker.Half_open;
  (* concurrent arrivals shed while the probe is outstanding *)
  expect_admit "half-open sheds non-probe" Serve.Breaker.Shed;
  (* a failed probe re-opens... *)
  Serve.Breaker.observe b Serve.Breaker.Failure;
  expect_state "failed probe re-opens" Serve.Breaker.Open;
  expect_admit "re-open sheds again" Serve.Breaker.Shed;
  expect_admit "re-open sheds again (2)" Serve.Breaker.Shed;
  expect_admit "re-open probes again" Serve.Breaker.Probe;
  (* ...and a successful probe closes with a clean window *)
  Serve.Breaker.observe b Serve.Breaker.Success;
  expect_state "successful probe closes" Serve.Breaker.Closed;
  expect_admit "closed again runs" Serve.Breaker.Run;
  Serve.Breaker.observe b Serve.Breaker.Failure;
  expect_state "one failure after recovery stays closed" Serve.Breaker.Closed;
  (* closed->open, open->half, half->open, open->half, half->closed *)
  Alcotest.(check int) "transitions counted" 5 (Serve.Breaker.transitions b);
  Alcotest.(check int) "sheds counted" 5 (Serve.Breaker.shed_total b)

(* every state change a random admitted/observed outcome stream can
   produce must be a legal edge of the closed/open/half-open machine,
   with decisions consistent with the state that issued them *)
let breaker_transitions_legal outcomes =
  let b = Serve.Breaker.create ~config:breaker_test_config () in
  let legal_admit s0 s1 =
    match (s0, s1) with
    | Serve.Breaker.Closed, Serve.Breaker.Closed
    | Serve.Breaker.Open, Serve.Breaker.Open
    | Serve.Breaker.Open, Serve.Breaker.Half_open
    | Serve.Breaker.Half_open, Serve.Breaker.Half_open -> true
    | _ -> false
  in
  let legal_observe s1 s2 =
    match (s1, s2) with
    | Serve.Breaker.Closed, Serve.Breaker.Closed
    | Serve.Breaker.Closed, Serve.Breaker.Open
    | Serve.Breaker.Half_open, Serve.Breaker.Closed
    | Serve.Breaker.Half_open, Serve.Breaker.Open -> true
    | _ -> false
  in
  let sheds = ref 0 and changes = ref 0 in
  let ok = ref true in
  List.iter
    (fun success ->
      let s0 = Serve.Breaker.state b in
      let d = Serve.Breaker.admit b in
      let s1 = Serve.Breaker.state b in
      if not (legal_admit s0 s1) then ok := false;
      if s0 <> s1 then incr changes;
      (match (d, s0) with
      | Serve.Breaker.Run, Serve.Breaker.Closed -> ()
      | Serve.Breaker.Probe, Serve.Breaker.Open -> ()
      | Serve.Breaker.Shed, (Serve.Breaker.Open | Serve.Breaker.Half_open) ->
        incr sheds
      | _ -> ok := false (* decision inconsistent with issuing state *));
      match d with
      | Serve.Breaker.Shed -> () (* shed outcomes are never observed *)
      | Serve.Breaker.Run | Serve.Breaker.Probe ->
        Serve.Breaker.observe b
          (if success then Serve.Breaker.Success else Serve.Breaker.Failure);
        let s2 = Serve.Breaker.state b in
        if not (legal_observe s1 s2) then ok := false;
        if s1 <> s2 then incr changes)
    outcomes;
  !ok
  && Serve.Breaker.shed_total b = !sheds
  && Serve.Breaker.transitions b = !changes

let arb_outcomes =
  QCheck.make
    ~print:(fun l ->
      String.concat "" (List.map (fun b -> if b then "S" else "F") l))
    QCheck.Gen.(list_size (int_range 1 200) bool)

(* ---- Serve.Chaos: seeded draws replay ---- *)

let test_chaos_draw_deterministic () =
  let config =
    {
      Serve.Chaos.stall_rate = 0.3;
      stall_s = 0.001;
      poison_rate = 0.3;
      flush_rate = 0.3;
    }
  in
  let draws plan =
    List.init 48 (fun i ->
        Serve.Chaos.draw plan ~rid:(i / 3) ~attempt:(i mod 3))
  in
  let p1 = Serve.Chaos.plan ~config ~seed:11 () in
  let p2 = Serve.Chaos.plan ~config ~seed:11 () in
  let d1 = draws p1 in
  Alcotest.(check bool) "same seed, same events" true (d1 = draws p2);
  Alcotest.(check bool) "same seed, same counters" true
    (Serve.Chaos.counters p1 = Serve.Chaos.counters p2);
  Alcotest.(check bool) "counters count fired draws" true
    (let c = Serve.Chaos.counters p1 in
     c.Serve.Chaos.poisons
     = List.length (List.filter (fun e -> e.Serve.Chaos.poison) d1)
     && c.Serve.Chaos.stalls
        = List.length (List.filter (fun e -> e.Serve.Chaos.stall_s > 0.0) d1)
     && c.Serve.Chaos.flushes
        = List.length (List.filter (fun e -> e.Serve.Chaos.flush) d1));
  Alcotest.(check bool) "at rate 0.3 something fires" true
    (List.exists
       (fun e -> e.Serve.Chaos.poison || e.Serve.Chaos.flush)
       d1);
  (* draw order must not matter: the event is a pure function of
     (seed, rid, attempt), not of the call sequence *)
  let p3 = Serve.Chaos.plan ~config ~seed:11 () in
  let d3 =
    (* applies the draws in reverse key order, yields them in forward
       order (rev_map applies head-first and reverses the result) *)
    List.rev_map
      (fun i -> Serve.Chaos.draw p3 ~rid:(i / 3) ~attempt:(i mod 3))
      (List.init 48 (fun i -> 47 - i))
  in
  Alcotest.(check bool) "order-independent" true (d1 = d3);
  let p4 = Serve.Chaos.plan ~config ~seed:12 () in
  Alcotest.(check bool) "different seed differs" true (d1 <> draws p4)

(* ---- server: deadlines, shutdown rejection, await-flush ---- *)

let test_serve_deadline_timeout () =
  let config = { Serve.Server.default_config with domains = 1 } in
  let server = Serve.Server.create ~config () in
  let submit deadline =
    let rq =
      { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = false;
        fault = None; deadline }
    in
    match Serve.Server.submit server rq with
    | `Accepted t -> Serve.Server.await t
    | `Rejected -> Alcotest.fail "rejected"
  in
  (* wupwise at scale 1 dispatches ~850 blocks: 64 must time out *)
  let tight =
    submit (Some { Serve.Server.wall_s = None; blocks = Some 64 })
  in
  (match tight.Serve.Server.resolution with
  | Serve.Server.Timed_out res ->
    Alcotest.(check bool) "outcome marks the deadline" true
      (res.Runtime.Driver.outcome = Runtime.Driver.Deadline_exceeded);
    (* the budget allows 64 full blocks; the 65th dispatch trips and
       is itself counted, so the partial stats read exactly budget+1 *)
    Alcotest.(check int) "partial stats stop at the budget" 65
      res.Runtime.Driver.stats.Runtime.Stats.blocks_dispatched;
    Alcotest.(check bool) "partial stats carry real work" true
      (res.Runtime.Driver.stats.Runtime.Stats.instrs_interpreted > 0)
  | _ -> Alcotest.fail "expected Timed_out");
  (* a generous budget changes nothing *)
  let loose =
    submit (Some { Serve.Server.wall_s = None; blocks = Some 100_000 })
  in
  (match loose.Serve.Server.resolution with
  | Serve.Server.Done res ->
    Alcotest.(check bool) "completed under budget" true
      (res.Runtime.Driver.stats.Runtime.Stats.blocks_dispatched < 100_000)
  | _ -> Alcotest.fail "expected Done");
  Serve.Server.shutdown server;
  let r = Serve.Server.report server in
  Alcotest.(check int) "timed_out counted" 1 r.Serve.Server.timed_out;
  Alcotest.(check int) "completed counted" 1 r.Serve.Server.completed;
  Alcotest.(check int) "timeouts are not errors" 0 r.Serve.Server.errors;
  Alcotest.(check int) "both latencies sampled" 2
    r.Serve.Server.total.Runtime.Percentiles.n

let test_serve_submit_after_shutdown_rejected () =
  let server = Serve.Server.create () in
  Serve.Server.shutdown server;
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None; deadline = None }
  in
  (match Serve.Server.submit server rq with
  | `Rejected -> ()
  | `Accepted _ -> Alcotest.fail "draining server must reject");
  let r = Serve.Server.report server in
  Alcotest.(check int) "rejection counted" 1 r.Serve.Server.rejected;
  Alcotest.(check int) "nothing accepted" 0 r.Serve.Server.submitted

let test_serve_await_flushes_own_batch () =
  (* batch=4 parks the request in a partial batch; await alone must
     dispatch it rather than deadlock on the undelivered batch *)
  let config = { Serve.Server.default_config with domains = 1; batch = 4 } in
  let server = Serve.Server.create ~config () in
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None; deadline = None }
  in
  let t =
    match Serve.Server.submit server rq with
    | `Accepted t -> t
    | `Rejected -> Alcotest.fail "rejected"
  in
  let reply = Serve.Server.await t in
  (match reply.Serve.Server.resolution with
  | Serve.Server.Done _ -> ()
  | _ -> Alcotest.fail "expected Done");
  Serve.Server.shutdown server;
  let r = Serve.Server.report server in
  Alcotest.(check int) "completed without an explicit flush" 1
    r.Serve.Server.completed

let test_pool_health_snapshot () =
  let pool = Exec.Pool.create ~domains:2 () in
  let h = Exec.Pool.health pool in
  Alcotest.(check int) "domains" 2 h.Exec.Pool.domains;
  Alcotest.(check bool) "running" false h.Exec.Pool.shutting_down;
  Alcotest.(check int) "no failures yet" 0 h.Exec.Pool.failed;
  Exec.Pool.submit pool (fun _ -> failwith "boom");
  Exec.Pool.shutdown pool;
  let h2 = Exec.Pool.health pool in
  Alcotest.(check bool) "shut down" true h2.Exec.Pool.shutting_down;
  Alcotest.(check int) "drained" 0 h2.Exec.Pool.queue_depth;
  Alcotest.(check int) "failure visible" 1 h2.Exec.Pool.failed

(* ---- soak: same seed, same report ---- *)

let test_soak_replay_deterministic () =
  let cfg =
    { Serve.Soak.default_config with
      Serve.Soak.requests = 32;
      tenants = 2;
      domains = 2;
    }
  in
  let a = Serve.Soak.run cfg in
  let b = Serve.Soak.run cfg in
  Alcotest.(check string) "deterministic core replays"
    (Serve.Soak.deterministic_json a)
    (Serve.Soak.deterministic_json b);
  Alcotest.(check bool) "every request resolved exactly once" true
    (Serve.Soak.fully_resolved a);
  Alcotest.(check int) "no unhandled errors" 0
    a.Serve.Soak.server.Serve.Server.errors;
  Alcotest.(check int) "no failed pool jobs" 0 a.Serve.Soak.pool.Exec.Pool.failed;
  (* the mix must actually exercise the resilience machinery: the heavy
     class (4 of 32 rids) deterministically exceeds its block budget *)
  Alcotest.(check int) "heavy class times out" 4
    a.Serve.Soak.server.Serve.Server.timed_out;
  Alcotest.(check bool) "chaos fired" true
    (a.Serve.Soak.server.Serve.Server.chaos_poisons > 0);
  Alcotest.(check bool) "faults injected" true
    (a.Serve.Soak.server.Serve.Server.injected_faults > 0);
  (* a different seed is a different campaign *)
  let c =
    Serve.Soak.run { cfg with Serve.Soak.chaos_seed = cfg.Serve.Soak.chaos_seed + 1 }
  in
  Alcotest.(check bool) "another seed diverges" true
    (Serve.Soak.deterministic_json a <> Serve.Soak.deterministic_json c)

let suite =
  ( "serve",
    [
      case "percentiles: empty" test_percentiles_empty;
      case "percentiles: nearest rank" test_percentiles_nearest_rank;
      case "percentiles: merge and summary" test_percentiles_merge_summary;
      case "pool: drains on shutdown" test_pool_drains_on_shutdown;
      case "pool: shutdown idempotent" test_pool_shutdown_idempotent;
      case "pool: failed jobs counted" test_pool_failed_jobs_counted;
      qcase ~count:200 "shards == independent stores (telemetry)"
        arb_shard_ops shards_match_independent_stores;
      case "shards: tenant eviction budgets isolate" test_tenant_budget_isolation;
      case "serve matrix == batch matrix (small, full stats)"
        test_serve_matrix_small_bit_identical;
      case "serve matrix: fig15 seed cycles (scale 5)"
        test_serve_matrix_fig15_seed_cycles;
      case "server: admission control" test_serve_admission_control;
      case "server: tenant shard reuse" test_serve_shared_cache_reuse;
      case "server: per-request fault campaigns replay"
        test_serve_fault_passthrough_deterministic;
      case "loadgen: closed loop" test_loadgen_closed_loop;
      case "retry: backoff shape and budgets" test_retry_backoff_and_budget;
      case "breaker: trip, shed, probe, recover" test_breaker_recovery;
      qcase ~count:300 "breaker: random outcomes walk legal edges"
        arb_outcomes breaker_transitions_legal;
      case "chaos: seeded draws replay" test_chaos_draw_deterministic;
      case "server: deadline resolves Timed_out with partial stats"
        test_serve_deadline_timeout;
      case "server: submit after shutdown rejects" 
        test_serve_submit_after_shutdown_rejected;
      case "server: await dispatches its own partial batch"
        test_serve_await_flushes_own_batch;
      case "pool: health snapshot" test_pool_health_snapshot;
      case "soak: same seed, same report" test_soak_replay_deterministic;
    ] )
