lib/sched/working_set.mli: Ir List_sched
