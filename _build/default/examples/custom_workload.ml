(* Build a custom workload with the kernel library and inspect what the
   optimizer does to its hot region: superblock shape, constraint
   counts, alias-register working set, and the effect of shrinking the
   register file.

     dune exec examples/custom_workload.exe *)

module I = Ir.Instr

let program () =
  let bld = Workload.Builder.create () in
  let regs =
    Workload.Kernels.
      { a = Ir.Reg.R 1; b = Ir.Reg.R 2; c = Ir.Reg.R 3; idx = Ir.Reg.R 4 }
  in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (regs.Workload.Kernels.a, I.Imm 0x100000);
         I.Mov (regs.Workload.Kernels.b, I.Imm 0x200000);
         I.Mov (regs.Workload.Kernels.c, I.Imm 0x300000);
         I.Mov (regs.Workload.Kernels.idx, I.Imm 500);
       ])
    ~next:"phase1";
  (* three-phase loop: a gather, an update in place, a scatter *)
  Workload.Builder.straight bld "phase1"
    (Workload.Kernels.stencil bld regs ~width:8 ~taps:6 ())
    ~next:"phase2";
  Workload.Builder.straight bld "phase2"
    (Workload.Kernels.rmw bld regs ~disp0:256 ~width:8 ~updates:3 ())
    ~next:"phase3";
  Workload.Builder.loop_back bld "phase3"
    (Workload.Kernels.stream bld regs ~disp0:64 ~width:8 ~lanes:3 ~depth:2 ()
    @ Workload.Kernels.bump_bases bld regs ~stride:512)
    ~counter:regs.Workload.Kernels.idx ~back_to:"phase1" ~exit_to:"done"
    ~iters:500;
  Workload.Builder.add_block bld "done" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let () =
  let p = program () in
  Printf.printf "custom workload: %d guest instructions in %d blocks\n\n"
    (Ir.Program.instr_count p)
    (List.length (Ir.Program.labels p));
  List.iter
    (fun ar_count ->
      let scheme = Smarq.Scheme.Smarq ar_count in
      let r = Smarq.run_program ~scheme p in
      let st = r.Runtime.Driver.stats in
      Printf.printf
        "smarq%-3d: %8d cycles; %4.1f mem ops/superblock; %d check + %d anti \
         constraints; window %d; nonspec regions %d\n"
        ar_count st.Runtime.Stats.total_cycles
        (Runtime.Stats.mem_ops_per_superblock st)
        st.Runtime.Stats.check_constraints st.Runtime.Stats.anti_constraints
        st.Runtime.Stats.working_set.Sched.Working_set.smarq
        st.Runtime.Stats.nonspec_mode_regions)
    [ 64; 16; 8; 4 ];
  print_endline
    "\nshrinking the register file forces the scheduler into its\n\
     non-speculation mode (and eventually a full fallback), which is\n\
     the scalability argument behind the paper's Figure 15."
