(* smarq_run: command-line driver for the SMARQ dynamic optimization
   system.

   smarq_run list                          -- benchmarks and schemes
   smarq_run run -b wupwise -s smarq64     -- run one benchmark
   smarq_run run -b mesa --fault-seed 7 --fault-rate 0.1 --oracle
                                           -- fault-injected + checked
   smarq_run compare -b mesa --scale 5     -- all schemes side by side
   smarq_run region -b ammp -s smarq64     -- show an annotated region
   smarq_run fuzz --seeds 3 --rate 0.05    -- fault campaign + report *)

open Cmdliner

let scheme_conv =
  let parse s =
    try Ok (Smarq.Scheme.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Smarq.Scheme.name s))

let bench_arg =
  let doc = "Benchmark name (see `smarq_run list')." in
  Arg.(
    required
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let scheme_arg =
  let doc =
    "Alias-detection scheme: smarq64, smarq16, smarqN, alat, efficeon, none."
  in
  Arg.(
    value
    & opt scheme_conv (Smarq.Scheme.Smarq 64)
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let scale_arg =
  let doc = "Multiply the benchmark's iteration count." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc)

let tcache_policy_conv =
  let parse s =
    try Ok (Smarq.Tcache.Policy.of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, Smarq.Tcache.Policy.pp)

let tcache_policy_arg =
  let doc =
    "Translation cache eviction policy: lru, fifo, flush-all, unbounded."
  in
  Arg.(
    value
    & opt tcache_policy_conv Smarq.Tcache.Policy.Unbounded
    & info [ "tcache-policy" ] ~docv:"POLICY" ~doc)

let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg "capacity must be positive")
    | None -> Error (`Msg (Printf.sprintf "invalid capacity %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let tcache_capacity_arg =
  let doc =
    "Translation cache capacity in scheduled-region instructions \
     (default: unlimited)."
  in
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "tcache-capacity" ] ~docv:"INSTRS" ~doc)

let fault_seed_arg =
  let doc =
    "Enable deterministic fault injection with this PRNG seed: spurious \
     alias violations, repeat-pair violations, violation storms, and \
     translation-cache invalidations/flushes, all drawn reproducibly from \
     the seed."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let rate_conv =
  let parse s =
    match float_of_string_opt s with
    | Some r when r >= 0.0 && r <= 1.0 -> Ok r
    | Some _ -> Error (`Msg "rate must be in [0, 1]")
    | None -> Error (`Msg (Printf.sprintf "invalid rate %S" s))
  in
  Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%.4f" r)

let fault_rate_arg =
  let doc =
    "Per-region-execution fault probability (default 0.05); only \
     meaningful with $(b,--fault-seed)."
  in
  Arg.(value & opt rate_conv 0.05 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let oracle_arg =
  let doc =
    "Differential oracle: also run the pure interpreter and verify the \
     optimized run converged to the same final guest state; exit non-zero \
     on divergence."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let verify_mode_conv =
  let parse s =
    match Check.Verifier.mode_of_string s with
    | Ok m -> Ok m
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun ppf m -> Format.pp_print_string ppf (Check.Verifier.mode_name m) )

let verify_regions_arg =
  let doc =
    "Static translation validation: $(b,off), $(b,sample) (a deterministic \
     subset of built regions), or $(b,all).  A region that fails \
     validation is never executed — its label degrades to \
     interpreter-only execution and the violated rules are counted in \
     the reject histogram; any rejection makes the command exit \
     non-zero."
  in
  Arg.(
    value
    & opt verify_mode_conv Check.Verifier.Off
    & info [ "verify-regions" ] ~docv:"MODE" ~doc)

let certify_arg =
  let doc =
    "Static alias certification: run the abstract-interpretation \
     disambiguator inside every translation.  Certified pairs carry \
     machine-checkable witnesses, skip their alias registers / ALAT \
     entries / mask bits, and promote any runtime alias fault on a \
     certified pair to a hard soundness error."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let translate_jobs_arg =
  let doc =
    "Translation job count: captured optimize requests are replayed \
     over that many worker domains ($(b,1) = the sequential fast path, \
     no pool).  Artifacts are bit-identical for every value."
  in
  Arg.(
    value
    & opt positive_int_conv 1
    & info [ "jt"; "translate-jobs" ] ~docv:"N" ~doc)

let policy_of_scheme = function
  | Smarq.Scheme.Smarq n -> Sched.Policy.smarq ~ar_count:n
  | Smarq.Scheme.Smarq_no_store_reorder n ->
    Sched.Policy.smarq_no_store_reorder ~ar_count:n
  | Smarq.Scheme.Naive_order n -> Sched.Policy.naive_order ~ar_count:n
  | Smarq.Scheme.Alat -> Sched.Policy.alat ()
  | Smarq.Scheme.Efficeon -> Sched.Policy.efficeon ()
  | Smarq.Scheme.None_ -> Sched.Policy.none ()
  | Smarq.Scheme.None_static -> Sched.Policy.none_with_analysis ()

let find_bench name =
  match Workload.Specfp.find name with
  | b -> b
  | exception Not_found ->
    Printf.eprintf "unknown benchmark %S; try `smarq_run list'\n" name;
    exit 1

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (b : Workload.Specfp.bench) ->
        Printf.printf "  %-10s %s\n" b.Workload.Specfp.name
          b.Workload.Specfp.description)
      Workload.Specfp.suite;
    print_endline "\nschemes:";
    List.iter
      (fun s -> Printf.printf "  %s\n" (Smarq.Scheme.name s))
      Smarq.Scheme.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and schemes")
    Term.(const run $ const ())

let run_cmd =
  let run bench scheme scale tcache_policy tcache_capacity fault_seed
      fault_rate oracle verify certify translate_jobs =
    let b = find_bench bench in
    let program = Workload.Specfp.program ~scale b in
    let fault =
      Option.map
        (fun seed -> Verify.Fault.plan ~seed ~rate:fault_rate ())
        fault_seed
    in
    let r =
      fst
        (Verify.Oracle.run_scheme ~fuel:2_000_000_000 ~tcache_policy
           ?tcache_capacity ?fault ~verify ~certify ~scheme program)
    in
    Printf.printf "%s under %s (scale %d, tcache %s%s%s):\n" bench
      (Smarq.Scheme.name scheme) scale
      (Smarq.Tcache.Policy.to_string tcache_policy)
      (match tcache_capacity with
      | Some c -> Printf.sprintf "/%d" c
      | None -> "")
      (match fault_seed with
      | Some seed -> Printf.sprintf ", faults seed %d rate %.3f" seed fault_rate
      | None -> "");
    Runtime.Stats.pp Format.std_formatter r.Runtime.Driver.stats;
    (match fault with
    | Some plan ->
      Format.printf "  fault kinds: %a@." Verify.Fault.pp_counters
        (Verify.Fault.counters plan)
    | None -> ());
    (match r.Runtime.Driver.outcome with
    | Runtime.Driver.Completed -> ()
    | Runtime.Driver.Fuel_exhausted ->
      print_endline "  (fuel exhausted before the program halted)"
    | Runtime.Driver.Deadline_exceeded ->
      print_endline "  (deadline exceeded before the program halted)");
    Format.print_flush ();
    let stats = r.Runtime.Driver.stats in
    if stats.Runtime.Stats.certified_alias_faults > 0 then begin
      Printf.eprintf
        "SOUNDNESS: %d alias faults hit statically certified pairs\n"
        stats.Runtime.Stats.certified_alias_faults;
      exit 1
    end;
    if stats.Runtime.Stats.rejected_regions > 0 then begin
      Printf.eprintf "verifier REJECTED %d of %d regions:\n"
        stats.Runtime.Stats.rejected_regions
        stats.Runtime.Stats.verified_regions;
      List.iter
        (fun (rule, n) -> Printf.eprintf "  %-24s %d\n" rule n)
        (Runtime.Stats.reject_histogram stats);
      exit 1
    end;
    if oracle then begin
      match r.Runtime.Driver.outcome with
      | Runtime.Driver.Fuel_exhausted | Runtime.Driver.Deadline_exceeded ->
        prerr_endline "oracle: skipped (run did not complete)";
        exit 2
      | Runtime.Driver.Completed ->
        let oracle_m = Verify.Oracle.reference program in
        if Vliw.Machine.equal_guest_state oracle_m r.Runtime.Driver.machine
        then print_endline "oracle: final guest state matches the interpreter"
        else begin
          prerr_endline "oracle: DIVERGENCE from the interpreter:";
          List.iter
            (fun d -> Printf.eprintf "  %s\n" d)
            (Vliw.Machine.diff_guest_state oracle_m r.Runtime.Driver.machine);
          exit 1
        end
    end;
    if translate_jobs > 1 then begin
      (* Replay the run's translations over the pool and hold the
         parallel path to the sequential one.  The capture run is
         fault-free: faults perturb which re-optimizations happen, but
         the replay invariant is per-request, not per-plan. *)
      let _, cfg, requests =
        Exec.Translate.capture_program ~fuel:2_000_000_000 ~tcache_policy
          ?tcache_capacity ~scheme program
      in
      let seq = Exec.Translate.replay ~jobs:1 ~config:cfg requests in
      let par =
        Exec.Translate.replay ~jobs:translate_jobs ~config:cfg requests
      in
      let identical =
        List.for_all2 Exec.Translate.equal_artifact
          seq.Exec.Translate.artifacts par.Exec.Translate.artifacts
      in
      Printf.printf
        "translate replay: %d requests, -jt 1 %.3fs, -jt %d %.3fs, \
         artifacts %s\n"
        (List.length requests) seq.Exec.Translate.wall_seconds translate_jobs
        par.Exec.Translate.wall_seconds
        (if identical then "bit-identical" else "DIVERGENT");
      if not identical then exit 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark under one scheme")
    Term.(
      const run $ bench_arg $ scheme_arg $ scale_arg $ tcache_policy_arg
      $ tcache_capacity_arg $ fault_seed_arg $ fault_rate_arg $ oracle_arg
      $ verify_regions_arg $ certify_arg $ translate_jobs_arg)

let jobs_arg =
  let doc =
    "Worker domains for the scheme matrix (default: all cores).  \
     Results are identical for every value."
  in
  Arg.(
    value
    & opt positive_int_conv (Exec.Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let compare_cmd =
  let run bench scale tcache_policy tcache_capacity domains =
    let b = find_bench bench in
    let schemes =
      [
        Smarq.Scheme.None_;
        Smarq.Scheme.Smarq 64;
        Smarq.Scheme.Smarq 16;
        Smarq.Scheme.Alat;
        Smarq.Scheme.Efficeon;
      ]
    in
    let outcomes =
      Exec.Matrix.run_matrix ~domains
        (List.map
           (fun s ->
             Exec.Matrix.of_bench ~fuel:2_000_000_000 ~tcache_policy
               ?tcache_capacity ~scale ~scheme:s b)
           schemes)
    in
    let baseline = ref 0 in
    Printf.printf "%-12s %12s %9s %9s %9s %9s\n" "scheme" "cycles" "speedup"
      "rollback" "reopts" "wall(s)";
    List.iter2
      (fun s (o : Exec.Matrix.outcome) ->
        let st = o.Exec.Matrix.result.Runtime.Driver.stats in
        if s = Smarq.Scheme.None_ then
          baseline := st.Runtime.Stats.total_cycles;
        let speedup =
          if !baseline = 0 then 0.0
          else
            float_of_int !baseline
            /. float_of_int st.Runtime.Stats.total_cycles
        in
        Printf.printf "%-12s %12d %9.3f %9d %9d %9.3f\n" (Smarq.Scheme.name s)
          st.Runtime.Stats.total_cycles speedup st.Runtime.Stats.rollbacks
          st.Runtime.Stats.reoptimizations o.Exec.Matrix.wall_seconds)
      schemes outcomes
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run one benchmark under every scheme")
    Term.(
      const run $ bench_arg $ scale_arg $ tcache_policy_arg
      $ tcache_capacity_arg $ jobs_arg)

let fuzz_cmd =
  let seeds_arg =
    let doc = "Number of fault seeds per (benchmark, scheme) cell." in
    Arg.(value & opt positive_int_conv 3 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let first_seed_arg =
    let doc = "First seed of the matrix (seeds are consecutive)." in
    Arg.(value & opt int 1 & info [ "first-seed" ] ~docv:"SEED" ~doc)
  in
  let rate_arg =
    let doc = "Fault probability per region execution." in
    Arg.(value & opt rate_conv 0.05 & info [ "rate" ] ~docv:"RATE" ~doc)
  in
  let bench_opt_arg =
    let doc =
      "Restrict the campaign to one benchmark (default: the whole suite)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let report_arg =
    let doc = "Write the JSON-lines campaign report to this file." in
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let run seeds first_seed rate bench scale certify report =
    let cfg =
      {
        Verify.Campaign.default_config with
        Verify.Campaign.seeds =
          List.init seeds (fun i -> first_seed + i);
        rate;
        scale;
        certify;
      }
    in
    let benches =
      match bench with
      | None -> Workload.Specfp.suite
      | Some name -> [ find_bench name ]
    in
    let result = Verify.Campaign.run_benches cfg benches in
    let lines =
      List.map (Verify.Campaign.json_line cfg) result.Verify.Campaign.runs
    in
    List.iter print_endline lines;
    (match report with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      Printf.printf "report written to %s\n" path);
    Verify.Campaign.pp_summary Format.std_formatter result;
    Format.print_flush ();
    if not (Verify.Campaign.ok result) then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fault-injection campaign: a (benchmark x scheme x seed) matrix \
          with every run checked against the interpreter oracle")
    Term.(
      const run $ seeds_arg $ first_seed_arg $ rate_arg $ bench_opt_arg
      $ scale_arg $ certify_arg $ report_arg)

(* Interpret until a block turns hot, then form its superblock — the
   artifact source for `region' and the mutation harness. *)
let hot_superblock program =
  let profiler = Frontend.Profiler.create ~hot_threshold:50 () in
  let machine = Vliw.Machine.create () in
  let rec warm label steps =
    if steps > 5000 then ()
    else begin
      Frontend.Profiler.note_execution profiler label;
      match
        Frontend.Interp.exec_block machine (Ir.Program.block program label)
      with
      | Some next -> warm next (steps + 1)
      | None -> ()
    end
  in
  warm program.Ir.Program.entry 0;
  match
    List.find_opt
      (fun l -> Frontend.Profiler.is_hot profiler l)
      (Ir.Program.labels program)
  with
  | None -> None
  | Some seed ->
    let liveness = Frontend.Liveness.analyze program in
    let fresh_id = ref (Ir.Program.max_instr_id program + 1) in
    Some
      (Frontend.Region_form.form ~program ~liveness ~profiler ~fresh_id seed,
       fresh_id)

let verify_cmd =
  let report_arg =
    let doc = "Write the JSON verification report to this file." in
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let schemes =
    [
      Smarq.Scheme.Smarq 64;
      Smarq.Scheme.Smarq 16;
      Smarq.Scheme.Smarq_no_store_reorder 64;
      Smarq.Scheme.Naive_order 64;
      Smarq.Scheme.Alat;
      Smarq.Scheme.Efficeon;
      Smarq.Scheme.None_;
    ]
  in
  let certify_schemes =
    [
      Smarq.Scheme.Smarq 64;
      Smarq.Scheme.Smarq 16;
      Smarq.Scheme.Alat;
      Smarq.Scheme.Efficeon;
    ]
  in
  let run scale domains report =
    (* phase 1: the full bench x scheme matrix under --verify-regions=all *)
    let jobs =
      List.concat_map
        (fun (b : Workload.Specfp.bench) ->
          List.map
            (fun s ->
              Exec.Matrix.of_bench ~fuel:2_000_000_000
                ~verify:Check.Verifier.All ~scale ~scheme:s b)
            schemes
          @ List.map
              (fun s ->
                (* certification changes the dependence graphs the
                   verifier replays; every certified region must still
                   pass, witnesses included *)
                Exec.Matrix.job ~fuel:2_000_000_000 ~verify:Check.Verifier.All
                  ~certify:true ~scheme:s
                  ~label:
                    (Printf.sprintf "%s/%s+cert" b.Workload.Specfp.name
                       (Smarq.Scheme.name s))
                  (fun () -> Workload.Specfp.program ~scale b))
              certify_schemes)
        Workload.Specfp.suite
    in
    let outcomes = Exec.Matrix.run_matrix ~domains jobs in
    let verified = ref 0 and rejected = ref 0 in
    let histogram : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let run_records =
      List.map
        (fun (o : Exec.Matrix.outcome) ->
          let st = o.Exec.Matrix.result.Runtime.Driver.stats in
          verified := !verified + st.Runtime.Stats.verified_regions;
          rejected := !rejected + st.Runtime.Stats.rejected_regions;
          List.iter
            (fun (rule, n) ->
              Hashtbl.replace histogram rule
                (n + Option.value (Hashtbl.find_opt histogram rule) ~default:0))
            (Runtime.Stats.reject_histogram st);
          Printf.sprintf
            "{\"label\":\"%s\",\"verified_regions\":%d,\
             \"rejected_regions\":%d}"
            o.Exec.Matrix.job.Exec.Matrix.label
            st.Runtime.Stats.verified_regions
            st.Runtime.Stats.rejected_regions)
        outcomes
    in
    Printf.printf "bench matrix: %d runs, %d regions verified, %d rejected\n"
      (List.length outcomes) !verified !rejected;
    Hashtbl.iter
      (fun rule n -> Printf.printf "  %-24s %d\n" rule n)
      histogram;
    (* phase 2: mutation testing over one hot-region artifact per
       (benchmark, scheme) cell *)
    let latency = Vliw.Config.latency Vliw.Config.default in
    let total_mutants = ref 0 and killed_mutants = ref 0 in
    let baseline_failures = ref [] in
    let survivors = ref [] in
    let mutation_records =
      List.concat_map
        (fun (b : Workload.Specfp.bench) ->
          let program = Workload.Specfp.program ~scale b in
          match hot_superblock program with
          | None -> []
          | Some (sb, fresh_id) ->
            let cells =
              List.map
                (fun scheme ->
                  (Smarq.Scheme.name scheme, policy_of_scheme scheme, sb))
                schemes
              @
              (* certified cells on an unrolled body: unrolling creates
                 the cross-iteration may-alias pairs the certifier
                 proves, so these artifacts carry witnesses and exercise
                 the witness-corruption mutants *)
              match Opt.Unroll.unroll ~factor:4 ~fresh_id sb with
              | None -> []
              | Some sb4 ->
                List.map
                  (fun scheme ->
                    ( Smarq.Scheme.name scheme ^ "+cert",
                      Sched.Policy.with_certify (policy_of_scheme scheme),
                      sb4 ))
                  certify_schemes
            in
            List.map
              (fun (scheme_label, policy, sb) ->
                let label =
                  Printf.sprintf "%s/%s" b.Workload.Specfp.name scheme_label
                in
                let o =
                  Opt.Optimizer.optimize ~policy ~issue_width:4 ~mem_ports:2
                    ~latency ~fresh_id sb
                in
                let s =
                  Check.Mutate.run ~issue_width:4 ~mem_ports:2 ~latency o
                in
                total_mutants := !total_mutants + s.Check.Mutate.total;
                killed_mutants := !killed_mutants + s.Check.Mutate.killed;
                if not s.Check.Mutate.baseline_pass then
                  baseline_failures := label :: !baseline_failures;
                List.iter
                  (fun (oc : Check.Mutate.outcome) ->
                    if not oc.Check.Mutate.killed then
                      survivors :=
                        Printf.sprintf "%s/%s" label
                          (Check.Mutate.mutation_name oc.Check.Mutate.mutation)
                        :: !survivors)
                  s.Check.Mutate.outcomes;
                Printf.sprintf
                  "{\"label\":\"%s\",\"baseline_pass\":%b,\"mutants\":%d,\
                   \"killed\":%d}"
                  label s.Check.Mutate.baseline_pass s.Check.Mutate.total
                  s.Check.Mutate.killed)
              cells)
        Workload.Specfp.suite
    in
    Printf.printf "mutation harness: %d mutants, %d killed\n" !total_mutants
      !killed_mutants;
    List.iter
      (fun l -> Printf.printf "  SURVIVED %s\n" l)
      (List.rev !survivors);
    List.iter
      (fun l -> Printf.printf "  BASELINE REJECTED %s\n" l)
      (List.rev !baseline_failures);
    (match report with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      let hist_json =
        Hashtbl.fold
          (fun rule n acc ->
            Printf.sprintf "{\"rule\":\"%s\",\"count\":%d}" rule n :: acc)
          histogram []
        |> List.sort compare
      in
      Printf.fprintf oc
        "{\"verified_regions\":%d,\"rejected_regions\":%d,\
         \"reject_histogram\":[%s],\"runs\":[%s],\"mutants\":%d,\
         \"mutants_killed\":%d,\"mutation_runs\":[%s]}\n"
        !verified !rejected
        (String.concat "," hist_json)
        (String.concat "," run_records)
        !total_mutants !killed_mutants
        (String.concat "," mutation_records);
      close_out oc;
      Printf.printf "report written to %s\n" path);
    if
      !rejected > 0
      || !killed_mutants < !total_mutants
      || !baseline_failures <> []
    then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Translation validation: run the benchmark suite under every \
          scheme with --verify-regions=all, then mutation-test the \
          verifier on hot-region artifacts; exit non-zero on any \
          rejected region or surviving mutant")
    Term.(const run $ scale_arg $ jobs_arg $ report_arg)

let region_cmd =
  let run bench scheme =
    let b = find_bench bench in
    let program = Workload.Specfp.program b in
    let sb, fresh_id =
      match hot_superblock program with
      | Some x -> x
      | None ->
        Printf.eprintf "no hot block found in %s\n" bench;
        exit 1
    in
    Format.printf "--- superblock ---@.%a@." Ir.Superblock.pp sb;
    let policy = policy_of_scheme scheme in
    let o =
      Opt.Optimizer.optimize ~policy ~issue_width:4 ~mem_ports:2
        ~latency:(Vliw.Config.latency Vliw.Config.default)
        ~fresh_id sb
    in
    Format.printf "--- optimized region (%s) ---@.%a@."
      (Smarq.Scheme.name scheme) Ir.Region.pp o.Opt.Optimizer.region;
    let st = o.Opt.Optimizer.stats.Opt.Optimizer.sched_stats in
    Printf.printf
      "schedule %d cycles; %d check / %d anti constraints; AR window %d; %d \
       loads + %d stores eliminated\n"
      st.Sched.List_sched.schedule_length st.Sched.List_sched.check_constraints
      st.Sched.List_sched.anti_constraints st.Sched.List_sched.ar_working_set
      o.Opt.Optimizer.stats.Opt.Optimizer.loads_eliminated
      o.Opt.Optimizer.stats.Opt.Optimizer.stores_eliminated
  in
  Cmd.v
    (Cmd.info "region"
       ~doc:"Show the annotated translation of a benchmark's hot region")
    Term.(const run $ bench_arg $ scheme_arg)

let translate_cmd =
  let unroll_arg =
    let doc = "Unroll self-loop superblocks this many times (larger regions)." in
    Arg.(value & opt positive_int_conv 8 & info [ "unroll" ] ~docv:"N" ~doc)
  in
  let reps_arg =
    let doc = "Replay repetitions per pipeline (timing stability)." in
    Arg.(value & opt positive_int_conv 1 & info [ "reps" ] ~docv:"N" ~doc)
  in
  let min_speedup_arg =
    let doc =
      "Exit non-zero unless the fast pipeline beats the seed reference \
       pipeline by at least this factor (translate-phase seconds)."
    in
    Arg.(
      value & opt (some float) None & info [ "min-speedup" ] ~docv:"X" ~doc)
  in
  let bench_opt_arg =
    let doc = "Restrict to one benchmark (default: the whole suite)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let report_arg =
    let doc = "Write the JSON translate report to this file." in
    Arg.(
      value & opt (some string) None & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let run scheme unroll reps jt min_speedup bench report =
    let benches =
      match bench with
      | None -> Workload.Specfp.suite
      | Some name -> [ find_bench name ]
    in
    (* capture once; every replay below reuses the same request lists *)
    let captured =
      List.map
        (fun (b : Workload.Specfp.bench) ->
          let _, cfg, reqs =
            Exec.Translate.capture_program ~fuel:2_000_000_000 ~unroll
              ~scheme (Workload.Specfp.program ~scale:1 b)
          in
          (cfg, reqs))
        benches
    in
    let n_requests =
      List.fold_left (fun acc (_, reqs) -> acc + List.length reqs) 0 captured
    in
    (* one persistent pool across every rep (and both pipelines) *)
    let pool = if jt > 1 then Some (Exec.Pool.create ~domains:jt ()) else None in
    let sweep ~pipeline ~jobs =
      let profile = Sched.Profile.create () in
      let wall = ref 0.0 in
      let artifacts = ref [] in
      for rep = 1 to reps do
        List.iter
          (fun (cfg, reqs) ->
            let r =
              Exec.Translate.replay ?pool ~jobs ~pipeline ~config:cfg reqs
            in
            Sched.Profile.accumulate ~into:profile r.Exec.Translate.profile;
            wall := !wall +. r.Exec.Translate.wall_seconds;
            if rep = 1 then
              artifacts := List.rev_append r.Exec.Translate.artifacts !artifacts)
          captured
      done;
      (profile, !wall, List.rev !artifacts)
    in
    let seq_p, seq_wall, seq_arts = sweep ~pipeline:Sched.Pipeline.Fast ~jobs:1 in
    let par_p, par_wall, par_arts =
      sweep ~pipeline:Sched.Pipeline.Fast ~jobs:jt
    in
    let ref_p, ref_wall, ref_arts =
      sweep ~pipeline:Sched.Pipeline.Reference ~jobs:1
    in
    (match pool with Some p -> Exec.Pool.shutdown p | None -> ());
    let identical =
      List.for_all2 Exec.Translate.equal_artifact seq_arts par_arts
      && List.for_all2 Exec.Translate.equal_artifact seq_arts ref_arts
    in
    (* the gate compares the canonical single-domain fast path against
       the seed pipeline (same axis as BENCH_TRANSLATE.json); the
       parallel row is reported on its own — on a single-core host its
       summed per-domain seconds include contention and would make the
       bar meaningless *)
    let speedup =
      let ft = Sched.Profile.total seq_p in
      if ft > 0.0 then Sched.Profile.total ref_p /. ft else 0.0
    in
    Printf.printf "suite=%s scheme=%s unroll=%d reps=%d jt=%d\n"
      (match bench with Some b -> b | None -> "specfp-kernels")
      (Smarq.Scheme.name scheme) unroll reps jt;
    let row name (p : Sched.Profile.t) wall =
      Printf.printf "%-14s %8.3fs translate %8.3fs wall %6d regions\n" name
        (Sched.Profile.total p) wall p.Sched.Profile.regions
    in
    row "fast -jt 1" seq_p seq_wall;
    row (Printf.sprintf "fast -jt %d" jt) par_p par_wall;
    row "reference" ref_p ref_wall;
    Printf.printf "artifacts: %s\nspeedup (reference / fast -jt 1): %.2fx\n"
      (if identical then "bit-identical across -jt and pipelines"
       else "DIVERGENT")
      speedup;
    (match report with
    | None -> ()
    | Some path ->
      let side (p : Sched.Profile.t) wall =
        Printf.sprintf
          "{\"translate_s\":%.6f,\"wall_s\":%.6f,\"regions\":%d}"
          (Sched.Profile.total p) wall p.Sched.Profile.regions
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\"experiment\":\"translate-cli\",\"scheme\":\"%s\",\"unroll\":%d,\
         \"reps\":%d,\"jt\":%d,\"requests\":%d,\"identical\":%b,\
         \"fast_jt1\":%s,\"fast_jtN\":%s,\"reference\":%s,\"speedup\":%.3f}\n"
        (Smarq.Scheme.name scheme) unroll reps jt n_requests identical
        (side seq_p seq_wall) (side par_p par_wall) (side ref_p ref_wall)
        speedup;
      close_out oc;
      Printf.printf "report written to %s\n" path);
    if not identical then begin
      prerr_endline "translate: parallel replay DIVERGED from sequential";
      exit 1
    end;
    match min_speedup with
    | Some m when speedup < m ->
      Printf.eprintf "translate: speedup %.2fx below the %.2fx bar\n" speedup m;
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:
         "Capture every optimize request of a suite run and replay the \
          batch: fast pipeline sequentially and at --translate-jobs, \
          plus the seed reference pipeline; exits non-zero if any \
          artifact diverges or the speedup misses --min-speedup")
    Term.(
      const run $ scheme_arg $ unroll_arg $ reps_arg $ translate_jobs_arg
      $ min_speedup_arg $ bench_opt_arg $ report_arg)

let serve_cmd =
  let requests_arg =
    let doc = "Total requests to issue." in
    Arg.(value & opt positive_int_conv 64 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let tenants_arg =
    let doc = "Round-robin tenant count (t0, t1, ...)." in
    Arg.(value & opt positive_int_conv 2 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let queue_limit_arg =
    let doc =
      "Admission bound: max accepted-but-unfinished requests; arrivals \
       beyond it are rejected (counted separately from errors)."
    in
    Arg.(
      value & opt positive_int_conv 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Requests per pool dispatch, per tenant (1 = no batching)." in
    Arg.(value & opt positive_int_conv 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let clients_arg =
    let doc = "Closed-loop pipeline depth (ignored with $(b,--rate))." in
    Arg.(value & opt positive_int_conv 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let arrival_rate_arg =
    let doc =
      "Open-loop arrival rate in requests/second; omit for a closed loop."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "rate"; "arrival-rate" ] ~docv:"RPS" ~doc)
  in
  let private_cache_arg =
    let doc =
      "Give every request a private translation cache instead of the \
       tenant's shared per-worker shard."
    in
    Arg.(value & flag & info [ "private-cache" ] ~doc)
  in
  let tenant_budget_arg =
    let doc =
      "Per-tenant eviction budget: capacity of every tenant shard in \
       scheduled-region instructions (default: unlimited)."
    in
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "tenant-budget" ] ~docv:"INSTRS" ~doc)
  in
  let shard_policy_arg =
    let doc = "Eviction policy of the tenant shards." in
    Arg.(
      value
      & opt tcache_policy_conv Smarq.Tcache.Policy.Lru
      & info [ "shard-policy" ] ~docv:"POLICY" ~doc)
  in
  let deadline_s_arg =
    let doc =
      "Per-request wall-clock deadline in seconds, end-to-end from \
       submission; an expired budget resolves the request timed-out with \
       its partial stats."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline-s" ] ~docv:"S" ~doc)
  in
  let deadline_blocks_arg =
    let doc =
      "Per-run deadline budget in dispatched guest blocks (deterministic, \
       unlike $(b,--deadline-s))."
    in
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "deadline-blocks" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Max retries per request (jittered exponential backoff) for \
       attempts that raise; 0 disables retries.  Exhausted requests fall \
       back to the interpreter-only degraded path."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_budget_arg =
    let doc =
      "Retry tokens per tenant (default: unlimited); a tenant out of \
       tokens fails over to the degraded path instead of retrying."
    in
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "retry-budget" ] ~docv:"N" ~doc)
  in
  let breaker_window_arg =
    let doc =
      "Enable per-(tenant, scheme) circuit breakers with this sliding \
       outcome window; 0 disables breakers."
    in
    Arg.(value & opt int 0 & info [ "breaker-window" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc = "Admissions an open breaker sheds before probing." in
    Arg.(
      value
      & opt positive_int_conv 4
      & info [ "breaker-cooldown" ] ~docv:"N" ~doc)
  in
  let chaos_seed_arg =
    let doc =
      "Enable the service-level chaos harness (worker stalls, poisoned \
       requests, shard flush storms) with this seed."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED" ~doc)
  in
  let chaos_rate_arg =
    let doc = "Rate of each chaos fault class (stall/poison/flush)." in
    Arg.(
      value & opt rate_conv 0.05 & info [ "chaos-rate" ] ~docv:"RATE" ~doc)
  in
  let report_arg =
    let doc = "Write the JSON service report to this file." in
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let bench_opt_arg =
    let doc =
      "Restrict the workload to one benchmark (default: the whole suite)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let run requests tenants domains queue_limit batch clients rate private_cache
      tenant_budget shard_policy scale bench scheme fault_seed fault_rate
      deadline_s deadline_blocks retries retry_budget breaker_window
      breaker_cooldown chaos_seed chaos_rate report =
    let benches =
      match bench with
      | None -> Workload.Specfp.suite
      | Some name -> [ find_bench name ]
    in
    let jobs =
      Array.of_list
        (List.map
           (fun b ->
             Exec.Matrix.of_bench ~fuel:2_000_000_000 ~scale ~scheme b)
           benches)
    in
    let config =
      {
        Serve.Server.domains;
        queue_limit;
        batch;
        shard_policy;
        tenant_budget;
        retry =
          (if retries > 0 then
             Some
               {
                 Serve.Retry.default_policy with
                 Serve.Retry.max_attempts = retries + 1;
               }
           else None);
        retry_budget;
        retry_seed = Option.value chaos_seed ~default:0;
        breaker =
          (if breaker_window > 0 then
             Some
               {
                 Serve.Breaker.default_config with
                 Serve.Breaker.window = breaker_window;
                 cooldown = breaker_cooldown;
               }
           else None);
        chaos =
          Option.map
            (fun seed ->
              Serve.Chaos.plan
                ~config:
                  {
                    Serve.Chaos.default_config with
                    Serve.Chaos.stall_rate = chaos_rate;
                    poison_rate = chaos_rate;
                    flush_rate = chaos_rate;
                  }
                ~seed ())
            chaos_seed;
      }
    in
    let server = Serve.Server.create ~config () in
    let mode =
      match rate with
      | Some rate -> Serve.Loadgen.Open { rate }
      | None -> Serve.Loadgen.Closed { clients }
    in
    let fault =
      Option.map
        (fun seed -> { Serve.Server.fault_seed = seed; fault_rate })
        fault_seed
    in
    let deadline =
      match (deadline_s, deadline_blocks) with
      | None, None -> None
      | wall_s, blocks -> Some { Serve.Server.wall_s; blocks }
    in
    let spec =
      {
        Serve.Loadgen.mode;
        requests;
        tenants;
        shared_cache = not private_cache;
        fault;
        deadline;
        jobs;
      }
    in
    let res = Serve.Loadgen.run server spec in
    Serve.Server.shutdown server;
    let r = res.Serve.Loadgen.report in
    Printf.printf
      "served %d requests on %d domains (%d tenants, %s loop): %.2f req/s\n"
      r.Serve.Server.completed domains tenants
      (match mode with
      | Serve.Loadgen.Open _ -> "open"
      | Serve.Loadgen.Closed _ -> "closed")
      res.Serve.Loadgen.throughput_rps;
    Format.printf "%a@." Serve.Server.pp_report r;
    Format.print_flush ();
    (match report with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\"domains\":%d,\"tenants\":%d,\"elapsed_s\":%.6f,\
         \"throughput_rps\":%.3f,%s\"report\":%s}\n"
        domains tenants res.Serve.Loadgen.elapsed_s
        res.Serve.Loadgen.throughput_rps
        (match res.Serve.Loadgen.offered_rps with
        | Some r -> Printf.sprintf "\"offered_rps\":%.3f," r
        | None -> "")
        (Serve.Server.report_json r);
      close_out oc;
      Printf.printf "report written to %s\n" path);
    if r.Serve.Server.errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Translation-as-a-service: run a multi-tenant request stream \
          against the sharded concurrent runtime and report throughput \
          and latency percentiles; exits non-zero if any request errors \
          (admission rejections are not errors)")
    Term.(
      const run $ requests_arg $ tenants_arg $ jobs_arg $ queue_limit_arg
      $ batch_arg $ clients_arg $ arrival_rate_arg $ private_cache_arg
      $ tenant_budget_arg $ shard_policy_arg $ scale_arg $ bench_opt_arg
      $ scheme_arg $ fault_seed_arg $ fault_rate_arg $ deadline_s_arg
      $ deadline_blocks_arg $ retries_arg $ retry_budget_arg
      $ breaker_window_arg $ breaker_cooldown_arg $ chaos_seed_arg
      $ chaos_rate_arg $ report_arg)

let soak_cmd =
  let requests_arg =
    let doc = "Total requests to issue across the mixed classes." in
    Arg.(
      value & opt positive_int_conv 240 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let tenants_arg =
    let doc = "Tenant count; each tenant keeps one request outstanding." in
    Arg.(value & opt positive_int_conv 4 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains in the service pool." in
    Arg.(value & opt positive_int_conv 2 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let scale_soak_arg =
    let doc = "Workload scale of the normal request classes." in
    Arg.(value & opt positive_int_conv 1 & info [ "scale" ] ~docv:"N" ~doc)
  in
  let chaos_seed_arg =
    let doc =
      "Chaos seed: the whole soak (fault placement, retries, breaker \
       transitions, every counted total) replays bit-for-bit from it."
    in
    Arg.(value & opt int 1 & info [ "chaos-seed" ] ~docv:"SEED" ~doc)
  in
  let poison_rate_arg =
    let doc = "Chaos poisoned-request rate." in
    Arg.(value & opt rate_conv 0.2 & info [ "poison-rate" ] ~docv:"RATE" ~doc)
  in
  let fault_rate_soak_arg =
    let doc = "Guest-level alias-fault rate of the fault-injected class." in
    Arg.(value & opt rate_conv 0.05 & info [ "fault-rate" ] ~docv:"RATE" ~doc)
  in
  let deadline_blocks_arg =
    let doc = "Dispatched-block deadline budget of the normal classes." in
    Arg.(
      value
      & opt positive_int_conv
          Serve.Soak.default_config.Serve.Soak.deadline_blocks
      & info [ "deadline-blocks" ] ~docv:"N" ~doc)
  in
  let heavy_blocks_arg =
    let doc =
      "Block budget of the heavy class (small by design: its requests \
       deterministically time out)."
    in
    Arg.(
      value
      & opt positive_int_conv Serve.Soak.default_config.Serve.Soak.heavy_blocks
      & info [ "heavy-blocks" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc = "Max retries per request." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_budget_arg =
    let doc = "Retry tokens per tenant." in
    Arg.(
      value & opt positive_int_conv 64 & info [ "retry-budget" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc =
      "Stop submitting after this many seconds (the report is then \
       wall-bounded and not seed-replayable)."
    in
    Arg.(
      value & opt (some float) None & info [ "duration-s" ] ~docv:"S" ~doc)
  in
  let max_heap_mb_arg =
    let doc =
      "Fail (exit 3) if the GC heap ceiling exceeds this many MB — the \
       unbounded-memory tripwire for CI."
    in
    Arg.(
      value & opt (some float) None & info [ "max-heap-mb" ] ~docv:"MB" ~doc)
  in
  let report_arg =
    let doc = "Write the JSON soak report to this file." in
    Arg.(
      value & opt (some string) None & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let run requests tenants domains scale chaos_seed poison_rate fault_rate
      deadline_blocks heavy_blocks retries retry_budget duration_s max_heap_mb
      report =
    if retries < 0 then begin
      prerr_endline "soak: --retries must be >= 0";
      exit 2
    end;
    let cfg =
      {
        Serve.Soak.default_config with
        Serve.Soak.requests;
        tenants;
        domains;
        scale;
        chaos_seed;
        chaos =
          {
            Serve.Chaos.default_config with
            Serve.Chaos.poison_rate;
          };
        fault_seed = chaos_seed;
        fault_rate;
        deadline_blocks;
        heavy_blocks;
        retry =
          {
            Serve.Retry.default_policy with
            Serve.Retry.max_attempts = retries + 1;
          };
        retry_budget;
        duration_s;
      }
    in
    let r = Serve.Soak.run cfg in
    Format.printf "%a@." Serve.Soak.pp r;
    Format.print_flush ();
    (match report with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Serve.Soak.report_json r);
      output_char oc '\n';
      close_out oc;
      Printf.printf "report written to %s\n" path);
    let sr = r.Serve.Soak.server in
    if sr.Serve.Server.errors > 0 || r.Serve.Soak.pool.Exec.Pool.failed > 0
    then begin
      prerr_endline "soak: unhandled request errors";
      exit 1
    end;
    if not (Serve.Soak.fully_resolved r) then begin
      prerr_endline
        "soak: request accounting broken (not every request resolved \
         exactly once)";
      exit 1
    end;
    match max_heap_mb with
    | Some cap when r.Serve.Soak.mem.Serve.Soak.top_heap_mb > cap ->
      Printf.eprintf "soak: heap ceiling %.1f MB exceeds the %.1f MB bound\n"
        r.Serve.Soak.mem.Serve.Soak.top_heap_mb cap;
      exit 3
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sustained soak: mixed plain/fault/verify/heavy traffic with \
          deadlines, retries, per-tenant circuit breakers and seeded \
          service-level chaos; reports p50/p95/p99/p99.9, breaker and \
          retry totals and the GC memory ceiling.  Exits non-zero on any \
          unhandled error, broken request accounting, or (with \
          --max-heap-mb) a blown memory bound")
    Term.(
      const run $ requests_arg $ tenants_arg $ domains_arg $ scale_soak_arg
      $ chaos_seed_arg $ poison_rate_arg $ fault_rate_soak_arg
      $ deadline_blocks_arg $ heavy_blocks_arg $ retries_arg
      $ retry_budget_arg $ duration_arg $ max_heap_mb_arg $ report_arg)

let () =
  let info =
    Cmd.info "smarq_run" ~version:"1.0"
      ~doc:"SMARQ dynamic binary optimization system"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            compare_cmd;
            region_cmd;
            fuzz_cmd;
            verify_cmd;
            translate_cmd;
            serve_cmd;
            soak_cmd;
          ]))
