lib/vliw/cache.mli:
