type t = {
  program_order : int;
  p_bit_order : int;
  smarq : int;
  lower_bound : int;
}

let zero = { program_order = 0; p_bit_order = 0; smarq = 0; lower_bound = 0 }

let add a b =
  {
    program_order = a.program_order + b.program_order;
    p_bit_order = a.p_bit_order + b.p_bit_order;
    smarq = a.smarq + b.smarq;
    lower_bound = a.lower_bound + b.lower_bound;
  }

(* Live-range lower bound: sweep the issue sequence counting ranges
   [issue(Y), last_checker_issue(Y)] that overlap each point. *)
let live_range_peak ~issue_pos ~check_edges =
  let last_use = Hashtbl.create 32 in
  List.iter
    (fun (e : Analysis.Constraints.edge) ->
      match e.kind with
      | Analysis.Constraints.Check ->
        let y = e.second and x = e.first in
        (match issue_pos x, issue_pos y with
        | Some px, Some py ->
          let cur = Option.value (Hashtbl.find_opt last_use y) ~default:py in
          Hashtbl.replace last_use y (max cur px)
        | _ -> ())
      | Analysis.Constraints.Anti -> ())
    check_edges;
  (* sweep: +1 at start, -1 after end *)
  let events = ref [] in
  Hashtbl.iter
    (fun y last ->
      match issue_pos y with
      | Some start ->
        events := (start, 1) :: (last + 1, -1) :: !events
      | None -> ())
    last_use;
  let sorted =
    List.sort
      (fun (a, da) (b, db) ->
        let c = Int.compare a b in
        if c <> 0 then c else Int.compare da db)
      !events
  in
  let peak = ref 0 and cur = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      if !cur > !peak then peak := !cur)
    sorted;
  !peak

let measure ~sb ~(outcome : List_sched.outcome) =
  let program_order = List.length (Ir.Superblock.memory_ops sb) in
  match outcome.List_sched.alloc_result with
  | None ->
    (* no integrated allocation (naive/mask/alat/none): the scheduler's
       window stands in; the other columns do not apply *)
    {
      program_order;
      p_bit_order = 0;
      smarq = outcome.List_sched.stats.List_sched.ar_working_set;
      lower_bound = 0;
    }
  | Some r ->
    let p_bit_order =
      Hashtbl.length r.Smarq_alloc.allocation.Analysis.Constraints.p_bit
    in
    let smarq = r.Smarq_alloc.max_offset + 1 in
    (* issue positions from the region's bundles *)
    let pos_tbl = Hashtbl.create 64 in
    List.iteri
      (fun idx (i : Ir.Instr.t) -> Hashtbl.replace pos_tbl i.id idx)
      (Ir.Region.instrs outcome.List_sched.region);
    let issue_pos id = Hashtbl.find_opt pos_tbl id in
    let lower_bound =
      live_range_peak ~issue_pos
        ~check_edges:(r.Smarq_alloc.check_edges @ r.Smarq_alloc.anti_edges)
    in
    { program_order; p_bit_order; smarq; lower_bound }
