(** Compile-time memory disambiguation for the dynamic optimizer.

    Dynamic optimizers cannot afford real alias analysis (Section 1 of
    the paper); what they can do cheaply is reason about addresses of
    the form [base + disp]:

    - same base register with no intervening redefinition of that base:
      the displacement intervals decide exactly (disjoint → no alias,
      overlapping → must alias);
    - anything else → may alias, which the optimizer speculates away
      and the hardware checks at runtime.

    [known_alias] pairs — learned from alias exceptions — override the
    verdict to must-alias so conservative re-optimization stops
    speculating on them. *)

type verdict =
  | No_alias  (** provably disjoint; no dependence, no runtime check *)
  | Must_alias  (** provably overlapping; hard dependence *)
  | May_alias  (** unknown; speculation candidate *)

type t

val analyze :
  ?known_alias:(int * int) list ->
  ?const_facts:Const_prop.t ->
  body:Ir.Instr.t list ->
  unit ->
  t
(** [body] is the superblock body in original program order.
    [known_alias] holds unordered instruction-id pairs to force to
    {!Must_alias}.  [const_facts] lets direct (constant-base) accesses
    be disambiguated across different base registers — the small win
    static binary analysis can deliver (related work [13]). *)

val verdict : t -> Ir.Instr.t -> Ir.Instr.t -> verdict
(** Verdict for two memory operations of the analyzed body (order of
    arguments is irrelevant).  Non-memory instructions yield
    [No_alias]. *)

val add_known_alias : t -> int -> int -> unit
(** Record a runtime-detected alias pair. *)

val set_certified : t -> (int * int) list -> unit
(** Install statically certified no-alias pairs (from [Disamb]);
    replaces any previously installed set.  A certified pair upgrades a
    {!May_alias} verdict to {!No_alias}; it never overrides known-alias
    pairs or pairs the base analysis decides exactly. *)

val certified : t -> int -> int -> bool
(** Is the (unordered) instruction-id pair statically certified? *)

val is_known : t -> int -> int -> bool
(** Is the (unordered) instruction-id pair a recorded alias? *)

val known_pairs : t -> (int * int) list
(** The recorded alias pairs, normalized to [(min, max)] id order; used
    by the swept dependence builder, which handles them out of band. *)

val const_base_value : t -> Ir.Instr.t -> int option
(** The provably constant value of a memory operation's base register
    at that operation, when constant facts were supplied — the input to
    the cross-base direct verdict, exposed so {!Depgraph} can evaluate
    it once per operation instead of once per pair. *)

val pp_verdict : Format.formatter -> verdict -> unit
