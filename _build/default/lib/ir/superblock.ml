type t = {
  entry : Instr.label;
  body : Instr.t list;
  final_exit : Instr.label option;
  source_blocks : Instr.label list;
  live_out : (int, Reg.Set.t) Hashtbl.t;
  final_live_out : Reg.Set.t;
}

let all_guest_set = Reg.Set.of_list Reg.all_guest

let make ~entry ~body ~final_exit ~source_blocks ?(live_out = [])
    ?(final_live_out = all_guest_set) () =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (id, set) -> Hashtbl.replace tbl id set) live_out;
  { entry; body; final_exit; source_blocks; live_out = tbl; final_live_out }

let exit_live_out t id =
  Option.value (Hashtbl.find_opt t.live_out id) ~default:all_guest_set

let memory_ops t = List.filter Instr.is_memory t.body
let side_exits t = List.filter Instr.is_side_exit t.body

let program_position t =
  let tbl = Hashtbl.create (List.length t.body * 2) in
  List.iteri (fun idx (i : Instr.t) -> Hashtbl.replace tbl i.id idx) t.body;
  tbl

let instr_count t = List.length t.body

let max_instr_id t =
  List.fold_left (fun acc (i : Instr.t) -> max acc i.id) 0 t.body

let pp ppf t =
  Format.fprintf ppf "superblock %s (from %s)@." t.entry
    (String.concat "," t.source_blocks);
  List.iter (fun i -> Format.fprintf ppf "  %a@." Instr.pp i) t.body;
  match t.final_exit with
  | Some l -> Format.fprintf ppf "  fallthrough -> %s@." l
  | None -> Format.fprintf ppf "  fallthrough -> halt@."
