(** Basic blocks of a guest program.

    A block is straight-line code ended by an explicit terminator: a
    fall-through [Jump], a conditional [Branch] followed by a [Jump]
    (two-way), or a [Halt] (end of program, encoded as [terminator =
    Halt]).  Guest programs never contain alias annotations, [Rotate],
    [Amov] or [Exit] instructions; those appear only in translated
    regions. *)

type terminator =
  | Fallthrough of Instr.label  (** unconditional jump *)
  | Cond of {
      cond : Instr.operand;
      taken : Instr.label;
      fallthrough : Instr.label;
      taken_probability : float;  (** profile-observed bias, in [0,1] *)
    }
  | Halt

type t = {
  label : Instr.label;
  body : Instr.t list;  (** straight-line, no branches *)
  terminator : terminator;
}

val make : label:Instr.label -> body:Instr.t list -> terminator -> t

val successors : t -> Instr.label list
(** In control-flow order: taken target first for conditionals. *)

val instr_count : t -> int
val pp : Format.formatter -> t -> unit
