test/suite_unroll.ml: Alcotest Frontend Helpers Int Ir List Opt Option Printf Runtime Smarq Vliw Workload
