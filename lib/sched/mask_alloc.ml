exception Mask_overflow of string

(* Which (protected, checker) pairs need a runtime check?  Exactly the
   pairs SMARQ would check: a dependence realized out of order, or an
   extended dependence in either order.  The protected op is whichever
   of the pair issues first; the checker issues second. *)
let check_pairs ~deps ~hazards ~pos =
  let pairs = ref [] in
  Analysis.Depgraph.iter_edges deps
    (fun ~first:a ~second:b ~kind ~strength ->
      match kind, strength with
      | Analysis.Depgraph.Real, Analysis.Depgraph.Hard ->
        (* order enforced by a hazard edge; never reordered, no check *)
        ()
      | Analysis.Depgraph.Real, Analysis.Depgraph.Speculative ->
        (* checked only if actually reordered (b issued before a) *)
        if pos b < pos a then pairs := (b, a) :: !pairs
      | Analysis.Depgraph.Extended, _ ->
        (* always checked, in whichever issue order the pair landed.
           Hard extended edges are checked too: unlike real hard
           edges no hazard pins the pair's order, so an elimination
           whose span a known-alias store crosses (reoptimization
           feeds observed pairs back as must-alias, and pairwise
           verdicts are not transitive) still needs its runtime
           guard — the SMARQ and ALAT annotators already cover
           extended edges of either strength. *)
        if pos a < pos b then pairs := (a, b) :: !pairs
        else pairs := (b, a) :: !pairs);
  (* only pairs whose edge was really dropped need checking; realized
     reorderings of dropped edges are already covered above, but a
     non-dropped pair cannot be reordered, so the filter is implicit *)
  ignore hazards;
  List.sort_uniq compare !pairs

let annotate ~deps ~hazards ~issue_order ~ar_count =
  let issue_pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (_, (i : Ir.Instr.t)) -> Hashtbl.replace issue_pos i.id idx)
    issue_order;
  let pos id = Option.value (Hashtbl.find_opt issue_pos id) ~default:max_int in
  let pairs = check_pairs ~deps ~hazards ~pos in
  (* protected -> last checker issue position *)
  let last_checker = Hashtbl.create 16 in
  List.iter
    (fun (p, c) ->
      let cur = Option.value (Hashtbl.find_opt last_checker p) ~default:(-1) in
      Hashtbl.replace last_checker p (max cur (pos c)))
    pairs;
  (* greedy register assignment in issue order *)
  let reg_of = Hashtbl.create 16 in
  let free_at = Array.make ar_count (-1) in  (* issue pos after which free *)
  List.iter
    (fun (_, (i : Ir.Instr.t)) ->
      match Hashtbl.find_opt last_checker i.id with
      | None -> ()
      | Some last ->
        let here = pos i.id in
        let rec find k =
          if k >= ar_count then
            raise
              (Mask_overflow
                 (Printf.sprintf "no free mask register for instr %d" i.id))
          else if free_at.(k) < here then k
          else find (k + 1)
        in
        let k = find 0 in
        free_at.(k) <- last;
        Hashtbl.replace reg_of i.id k)
    issue_order;
  (* build annotations *)
  let masks = Hashtbl.create 16 in
  List.iter
    (fun (p, c) ->
      match Hashtbl.find_opt reg_of p with
      | Some k ->
        let m = Option.value (Hashtbl.find_opt masks c) ~default:0 in
        Hashtbl.replace masks c (m lor (1 lsl k))
      | None -> ())
    pairs;
  List.filter_map
    (fun (_, (i : Ir.Instr.t)) ->
      let set_index = Hashtbl.find_opt reg_of i.id in
      let check_mask = Option.value (Hashtbl.find_opt masks i.id) ~default:0 in
      if set_index = None && check_mask = 0 then None
      else Some (i.id, Ir.Annot.mask ~set_index ~check_mask))
    issue_order
