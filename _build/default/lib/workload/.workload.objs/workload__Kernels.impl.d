lib/workload/kernels.ml: Builder Ir List
