lib/hw/efficeon.mli: Access Detector Ir
