(* The paper's worked examples as executable tests.

   Figure 2/4/6 live in suite_sched; here:
   - Figure 5/8: speculative load elimination and EXTENDED-DEPENDENCE 1
     (the intervening store must check the forwarding source even
     though nothing was reordered);
   - Figure 9/12: speculative store elimination and
     EXTENDED-DEPENDENCE 2 (the overwriting store must check the
     intervening loads), including the genuine-alias path: rollback and
     conservative re-optimization restore the eliminated store's
     visible effect. *)

open Helpers
module I = Ir.Instr
module C = Analysis.Constraints

(* Figure 5's shape: a load from [r0+4] forwarded to a later load of
   the same location, across stores through other bases. *)
let figure5 () =
  reset_ids ();
  let m1 = ld (f 1) (r 1) 0 in
  let m2 = ld (f 2) (r 0) 4 in
  let m3 = st (I.Imm 33) (r 0) 0 in
  let m4 = st (I.Imm 44) (r 1) 0 in
  let m5 = ld (f 4) (r 0) 4 in  (* same location as m2: eliminated *)
  (m1, m2, m3, m4, m5, [ m1; m2; m3; m4; m5 ])

let test_figure5_elimination_and_checks () =
  let _, m2, m3, m4, m5, body = figure5 () in
  let o = optimize (sb_of body) in
  Alcotest.(check int) "the load is eliminated" 1
    o.Opt.Optimizer.stats.Opt.Optimizer.loads_eliminated;
  match o.Opt.Optimizer.alloc_result with
  | None -> Alcotest.fail "queue allocation expected"
  | Some res ->
    let has_check f s =
      List.exists
        (fun (e : C.edge) -> e.C.first = f && e.C.second = s)
        res.Sched.Smarq_alloc.check_edges
    in
    (* EXTENDED-DEPENDENCE 1: the intervening may-alias store M4 must
       check the forwarding source M2 even though they are not
       reordered *)
    Alcotest.(check bool) "M4 checks M2" true (has_check m4.I.id m2.I.id);
    (* M3 is compiler-disjoint from [r0+4]: no check against M2 *)
    Alcotest.(check bool) "M3 does not check M2" false
      (has_check m3.I.id m2.I.id);
    (* the eliminated load is gone from the region *)
    Alcotest.(check bool) "M5 absent" true
      (List.for_all
         (fun (i : I.t) -> i.I.id <> m5.I.id)
         (Ir.Region.instrs o.Opt.Optimizer.region))

let test_figure5_detection_when_wrong () =
  (* r1 == r0+4 at runtime: M4 clobbers the forwarded location between
     M2 and M5's original position.  The forwarded value would be
     stale; detection + re-optimization must restore correctness. *)
  let _, _, _, _, _, body = figure5 () in
  let sb = sb_of body in
  let faults =
    run_to_commit
      ~init:[ (r 0, 1000); (r 1, 1004) ]
      sb
  in
  Alcotest.(check bool) "alias detected" true (faults >= 1)

let test_figure5_no_false_positive () =
  (* disjoint addresses: the full pipeline must commit first try, even
     though M1 may-aliases M3 statically *)
  let _, _, _, _, _, body = figure5 () in
  let faults =
    run_to_commit ~init:[ (r 0, 1000); (r 1, 2000) ] (sb_of body)
  in
  Alcotest.(check int) "no faults" 0 faults

(* Figure 9's shape: a store overwritten by a later store to the same
   location, with an intervening may-alias load. *)
let figure9 () =
  reset_ids ();
  let m1 = st (I.Imm 11) (r 4) 0 in  (* eliminated: overwritten by m4 *)
  let m2 = ld (f 1) (r 1) 0 in  (* intervening load, may alias [r4] *)
  let m3 = st (I.Imm 33) (r 2) 0 in
  let m4 = st (I.Imm 44) (r 4) 0 in  (* overwriter *)
  let m5 = ld (f 5) (r 0) 4 in
  (m1, m2, m3, m4, m5, [ m1; m2; m3; m4; m5 ])

let test_figure9_elimination_and_checks () =
  let m1, m2, m3, m4, _, body = figure9 () in
  let o = optimize (sb_of body) in
  Alcotest.(check int) "the store is eliminated" 1
    o.Opt.Optimizer.stats.Opt.Optimizer.stores_eliminated;
  Alcotest.(check bool) "M1 absent from the region" true
    (List.for_all
       (fun (i : I.t) -> i.I.id <> m1.I.id)
       (Ir.Region.instrs o.Opt.Optimizer.region));
  match o.Opt.Optimizer.alloc_result with
  | None -> Alcotest.fail "queue allocation expected"
  | Some res ->
    let has_check f s =
      List.exists
        (fun (e : C.edge) -> e.C.first = f && e.C.second = s)
        res.Sched.Smarq_alloc.check_edges
    in
    (* EXTENDED-DEPENDENCE 2: the overwriter checks the intervening
       load, not the intervening store *)
    Alcotest.(check bool) "M4 checks M2" true (has_check m4.I.id m2.I.id);
    Alcotest.(check bool) "no check against the store M3" false
      (has_check m4.I.id m3.I.id || has_check m3.I.id m4.I.id)

let test_figure9_detection_when_wrong () =
  (* r1 == r4: the intervening load reads the location the eliminated
     store wrote.  Original semantics: it must see 11.  Detection plus
     conservative re-optimization must converge to that. *)
  let _, m2, _, _, _, body = figure9 () in
  ignore m2;
  let sb = sb_of body in
  let faults =
    run_to_commit ~init:[ (r 4, 3000); (r 1, 3000); (r 0, 9000); (r 2, 5000) ]
      sb
  in
  Alcotest.(check bool) "alias detected" true (faults >= 1)

(* The paper's asymmetry: an intervening STORE aliasing the overwriter
   is harmless for the elimination (it is itself overwritten), so even
   when M3 truly aliases M4 at runtime, a correct run commits without
   faulting. *)
let test_figure9_store_between_benign () =
  let _, _, _, _, _, body = figure9 () in
  let faults =
    run_to_commit
      ~init:[ (r 4, 3000); (r 2, 3000); (r 1, 7000); (r 0, 9000) ]
      (sb_of body)
  in
  Alcotest.(check int) "benign store-store alias: no fault" 0 faults

(* The ORDERED-ALIAS-DETECTION-RULE under program-order allocation
   (Figure 4): M0 does not check M2 because the compiler proved them
   disjoint; the naive scheme still detects the genuinely reordered
   M3-vs-M2 pair. *)
let test_figure4_naive_detection () =
  reset_ids ();
  let m0 = st (I.Imm 10) (r 0) 4 in
  let m1 = ld (f 1) (r 1) 0 in
  let m2 = st (I.Imm 20) (r 0) 0 in
  let m3 = ld (f 3) (r 2) 0 in
  let body = [ m0; m1; m2; m3 ] in
  ignore m1;
  let faults =
    run_to_commit
      ~policy:(Sched.Policy.naive_order ~ar_count:64)
      ~detector:(Hw.Queue.detector (Hw.Queue.create ~size:64))
      ~init:[ (r 0, 1000); (r 1, 5000); (r 2, 1000) ]
      (sb_of body)
  in
  Alcotest.(check bool) "reordered alias detected under program order"
    true (faults >= 1)

let suite =
  ( "paper-examples",
    [
      case "figure 5/8: forwarding checks (ext dep 1)"
        test_figure5_elimination_and_checks;
      case "figure 5/8: stale forward detected" test_figure5_detection_when_wrong;
      case "figure 5/8: clean run commits" test_figure5_no_false_positive;
      case "figure 9/12: overwrite checks (ext dep 2)"
        test_figure9_elimination_and_checks;
      case "figure 9/12: hidden store detected" test_figure9_detection_when_wrong;
      case "figure 9/12: store-store stays benign"
        test_figure9_store_between_benign;
      case "figure 4: naive program-order detection" test_figure4_naive_detection;
    ] )
