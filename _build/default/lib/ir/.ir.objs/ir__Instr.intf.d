lib/ir/instr.mli: Annot Format Reg
