lib/sched/working_set.ml: Analysis Hashtbl Int Ir List List_sched Option Smarq_alloc
