module I = Ir.Instr

type control =
  | Fall_through
  | Goto of Ir.Instr.label
  | Leave_region of Ir.Instr.label

let operand_value m = function
  | I.Reg r -> Machine.get_reg m r
  | I.Imm n -> n

let addr_of m (a : I.addr) = Machine.get_reg m a.base + a.disp

let access_of m (i : I.t) =
  match i.op with
  | I.Load { addr; width; _ } | I.Store { addr; width; _ } ->
    Some (Hw.Access.make ~addr:(addr_of m addr) ~width)
  | _ -> None

let safe_div a b = if b = 0 then 0 else a / b

let binop_fn = function
  | I.Add -> ( + )
  | I.Sub -> ( - )
  | I.Mul -> ( * )
  | I.Div -> safe_div
  | I.And -> ( land )
  | I.Or -> ( lor )
  | I.Xor -> ( lxor )
  | I.Shl -> fun a b -> a lsl (b land 31)
  | I.Shr -> fun a b -> a asr (b land 31)

let fbinop_fn = function
  | I.Fadd -> ( + )
  | I.Fsub -> ( - )
  | I.Fmul -> ( * )
  | I.Fdiv -> safe_div

let cmp_fn = function
  | I.Eq -> ( = )
  | I.Ne -> ( <> )
  | I.Lt -> ( < )
  | I.Le -> ( <= )
  | I.Gt -> ( > )
  | I.Ge -> ( >= )

let exec_data m (i : I.t) =
  match i.op with
  | I.Nop | I.Branch _ | I.Jump _ | I.Exit _ | I.Rotate _ | I.Amov _ -> ()
  | I.Mov (d, s) -> Machine.set_reg m d (operand_value m s)
  | I.Unop_neg (d, s) -> Machine.set_reg m d (-operand_value m s)
  | I.Binop (op, d, a, b) ->
    Machine.set_reg m d (binop_fn op (operand_value m a) (operand_value m b))
  | I.Fbinop (op, d, a, b) ->
    Machine.set_reg m d (fbinop_fn op (operand_value m a) (operand_value m b))
  | I.Cmp (c, d, a, b) ->
    Machine.set_reg m d
      (if cmp_fn c (operand_value m a) (operand_value m b) then 1 else 0)
  | I.Load { dst; addr; width; _ } ->
    Machine.set_reg m dst (Machine.load m ~addr:(addr_of m addr) ~width)
  | I.Store { src; addr; width; _ } ->
    Machine.store m ~addr:(addr_of m addr) ~width (operand_value m src)

let exec_control m (i : I.t) =
  match i.op with
  | I.Branch { cond; target } ->
    if operand_value m cond <> 0 then Leave_region target else Fall_through
  | I.Jump l -> Goto l
  | I.Exit l -> Leave_region l
  | I.Nop | I.Mov _ | I.Unop_neg _ | I.Binop _ | I.Fbinop _ | I.Cmp _
  | I.Load _ | I.Store _ | I.Rotate _ | I.Amov _ ->
    Fall_through
