(* The optional cache hierarchy: hit/miss behaviour, LRU, and the
   robustness claim that enabling it preserves the scheme ordering. *)

open Helpers
module C = Vliw.Cache

let tiny_config =
  C.
    {
      l1 = { size_bytes = 256; line_bytes = 64; ways = 2; hit_latency = 0 };
      l2 = { size_bytes = 1024; line_bytes = 64; ways = 2; hit_latency = 5 };
      memory_latency = 50;
    }

let test_first_access_misses () =
  let c = C.create tiny_config in
  Alcotest.(check int) "cold miss pays memory" 50 (C.access c ~addr:0);
  Alcotest.(check int) "second access hits L1" 0 (C.access c ~addr:8);
  let st = C.stats c in
  Alcotest.(check int) "two accesses" 2 st.C.accesses;
  Alcotest.(check int) "one L1 miss" 1 st.C.l1_misses;
  Alcotest.(check int) "one L2 miss" 1 st.C.l2_misses

let test_l2_catches_l1_eviction () =
  let c = C.create tiny_config in
  (* L1 has 256/64/2 = 2 sets x 2 ways; lines 0, 2, 4 map to set 0 and
     evict line 0 from L1; L2 (8 lines, 2-way, 4 sets... lines 0,2,4
     map to L2 sets 0,2,0) still holds it *)
  ignore (C.access c ~addr:0);
  ignore (C.access c ~addr:(2 * 64));
  ignore (C.access c ~addr:(4 * 64));
  let penalty = C.access c ~addr:0 in
  Alcotest.(check int) "L2 hit after L1 eviction" 5 penalty

let test_lru_order () =
  let c = C.create tiny_config in
  ignore (C.access c ~addr:0);
  ignore (C.access c ~addr:(2 * 64));
  (* touch line 0 again: it becomes most-recent, so the next conflict
     evicts line 2 instead *)
  ignore (C.access c ~addr:0);
  ignore (C.access c ~addr:(4 * 64));
  Alcotest.(check int) "line 0 survived (L1 hit)" 0 (C.access c ~addr:0)

let test_reset_stats () =
  let c = C.create tiny_config in
  ignore (C.access c ~addr:0);
  C.reset_stats c;
  let st = C.stats c in
  Alcotest.(check int) "cleared" 0 st.C.accesses

let test_bad_line_size () =
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Cache: line size must be a power of two") (fun () ->
      ignore
        (C.create
           C.
             {
               tiny_config with
               l1 = { tiny_config.l1 with line_bytes = 48 };
             }))

let test_equivalence_with_cache () =
  (* enabling the hierarchy changes timing only, never results *)
  let config =
    Vliw.Config.with_cache Vliw.Config.default (Some C.default_config)
  in
  let b = Workload.Specfp.find "wupwise" in
  let program = Workload.Specfp.program b in
  let ref_m = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:50_000_000 ref_m program);
  let r =
    Smarq.run_program ~config ~fuel:50_000_000
      ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  Alcotest.(check bool) "state unchanged by cache" true
    (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)

let test_cache_slows_execution () =
  let b = Workload.Specfp.find "swim" in
  let program = Workload.Specfp.program b in
  let flat =
    Smarq.run_program ~fuel:50_000_000 ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  let cached =
    Smarq.run_program
      ~config:
        (Vliw.Config.with_alias_registers
           (Vliw.Config.with_cache Vliw.Config.default
              (Some C.default_config))
           64)
      ~fuel:50_000_000
      ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  Alcotest.(check bool) "miss stalls cost cycles" true
    (cached.Runtime.Driver.stats.Runtime.Stats.total_cycles
    > flat.Runtime.Driver.stats.Runtime.Stats.total_cycles)

let test_ordering_survives_cache () =
  let config =
    Vliw.Config.with_cache Vliw.Config.default (Some C.default_config)
  in
  let b = Workload.Specfp.find "wupwise" in
  let program = Workload.Specfp.program ~scale:3 b in
  let cycles scheme =
    (Smarq.run_program ~config ~fuel:100_000_000 ~scheme program)
      .Runtime.Driver.stats.Runtime.Stats.total_cycles
  in
  let smarq = cycles (Smarq.Scheme.Smarq 64) in
  let none = cycles Smarq.Scheme.None_ in
  Alcotest.(check bool) "smarq still wins under misses" true (smarq < none)

let suite =
  ( "cache",
    [
      case "cold miss, warm hit" test_first_access_misses;
      case "L2 catches L1 evictions" test_l2_catches_l1_eviction;
      case "LRU replacement" test_lru_order;
      case "stats reset" test_reset_stats;
      case "line size validation" test_bad_line_size;
      case "results unchanged by the hierarchy" test_equivalence_with_cache;
      case "misses cost cycles" test_cache_slows_execution;
      case "scheme ordering survives misses" test_ordering_survives_cache;
    ] )
