(** Seeded, deterministic fault injection for the dynamic optimizer.

    A {!plan} decides, per region execution and per dispatched block,
    whether to perturb the system, drawing every choice from a
    {!Prng.t} — so a (seed, rate) pair names one exact fault campaign,
    replayable anywhere.  Faults come in two families:

    - {b detector faults}, delivered by wrapping the scheme's
      {!Hw.Detector.t} ({!wrap}): spurious alias violations on
      arbitrary (setter, checker) pairs drawn from the memory
      operations the region actually executed; {e repeat-pair}
      violations that re-report one sticky pair (forcing the driver's
      pin path); and {e storms} — the same pair violated on many
      consecutive region executions, forcing the give-up rung and,
      past the watchdog, degradation to interpreter-only execution;
    - {b translation-cache faults}, delivered through
      {!Runtime.Driver.hooks} ({!hooks}): invalidation of the
      dispatched label or a full flush between region entries, as
      self-modifying guest code would cause.

    Every rung of the driver's recovery ladder (known-alias ordering →
    pinning → giving up speculation → watchdog degradation) is thereby
    reachable on demand, and the {!Oracle} can check that none of them
    corrupts guest state. *)

type kind =
  | Spurious  (** one violation on a fresh pair *)
  | Repeat_pair  (** a violation on the campaign's sticky pair *)
  | Storm  (** arm [storm_length] consecutive sticky-pair violations *)
  | Tcache_invalidate
  | Tcache_flush

type counters = {
  mutable spurious : int;
  mutable repeat_pair : int;
  mutable storm : int;  (** individual violations delivered by storms *)
  mutable tcache_invalidate : int;
  mutable tcache_flush : int;
}

type plan

val plan : ?storm_length:int -> seed:int -> rate:float -> unit -> plan
(** A random campaign: each region execution injects a detector fault
    with probability [rate], choosing among {!Spurious},
    {!Repeat_pair} and {!Storm}; each block dispatch injects a
    translation-cache fault with probability [rate /. 8].
    [storm_length] (default 16, clamped to >= 2) is how many
    consecutive region executions a storm covers — make it exceed the
    driver's [max_reopts] to reach the give-up rung and its [watchdog]
    to reach degradation.  [rate] is clamped to [0, 1]. *)

val forced_storm : ?length:int -> seed:int -> unit -> plan
(** A campaign that does nothing but storm: every region execution
    faults on the sticky pair ([length] default [max_int], i.e.
    forever).  Drives one hot region through the entire recovery
    ladder — the unit-test harness for known-alias → pin → give-up →
    degrade. *)

val seed : plan -> int
val rate : plan -> float
val total_injected : plan -> int
val counters : plan -> counters

val wrap : plan -> Hw.Detector.t -> Hw.Detector.t
(** Layer the plan's detector faults over a hardware model.  The
    wrapped detector shares the underlying state; genuine violations
    pass through unperturbed and are never counted as injected. *)

val hooks : plan -> Runtime.Driver.hooks
(** The driver hooks of this plan: translation-cache events before
    dispatch, injected-violation classification, and the final
    injected-fault count for [Stats]. *)

val pp_counters : Format.formatter -> counters -> unit
