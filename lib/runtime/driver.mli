(** The dynamic optimization system of Figure 1: interpret cold code
    while profiling, form superblocks at hot seeds, optimize them
    speculatively, execute the translations as atomic regions on the
    VLIW, and service alias exceptions by rolling back and
    re-optimizing conservatively.

    Re-optimization policy: the violating pair is added to the region's
    known-alias set; if the same pair violates again (possible only for
    schemes with false positives), both operations are pinned —
    excluded from speculation entirely; after [max_reopts] the region
    is rebuilt without speculation for good. *)

type scheme = {
  policy : Sched.Policy.t;
  detector : Hw.Detector.t;
}

val scheme_smarq : ?ar_count:int -> unit -> scheme
(** Defaults to 64 alias registers. *)

val scheme_smarq_no_store_reorder : ?ar_count:int -> unit -> scheme

(** Program-order allocation on the same ordered-queue hardware
    (the Section 2.4 baseline SMARQ improves on). *)
val scheme_naive_order : ?ar_count:int -> unit -> scheme

val scheme_alat : unit -> scheme
val scheme_efficeon : unit -> scheme
val scheme_none : unit -> scheme

val scheme_none_with_analysis : unit -> scheme
(** No hardware, but constant-base static disambiguation (related
    work [13]): the measure of how far software-only analysis gets. *)

type cache
(** A translation cache that outlives one {!run}: the serve subsystem
    keeps one per tenant shard and threads it through successive driver
    runs, so a tenant's hot regions stay translated across requests.
    The cached entry type (translation + re-optimization state) is
    private to the driver.  A cache must not be shared by two
    {e concurrent} runs — the serve layer guarantees this by keying
    shards per worker domain. *)

val make_cache : ?capacity:int -> policy:Tcache.Policy.t -> unit -> cache
(** As {!Tcache.Store.create}: [capacity] in scheduled-region
    instructions, bounding this shard's footprint (the per-tenant
    eviction budget). *)

val cache_telemetry : cache -> Tcache.Telemetry.t
(** Whole-life telemetry of the cache (a run's {!Stats.t} only folds in
    the delta accumulated during that run). *)

val cache_invalidate : cache -> Ir.Instr.label -> unit
(** Drop one label's translation, as cross-shard invalidation of
    self-modifying guest code requires.  Must not race a run using this
    cache. *)

val cache_flush : cache -> unit
val cache_length : cache -> int
val cache_resident_instrs : cache -> int

type outcome =
  | Completed  (** the guest program ran to halt *)
  | Fuel_exhausted
      (** the block budget ran out first; stats and machine hold the
          state accumulated up to that point *)
  | Deadline_exceeded
      (** [hooks.deadline] reported an expired budget; like
          [Fuel_exhausted], stats and machine hold the partial state
          (with [wall_seconds] set) *)

type result = {
  stats : Stats.t;
  machine : Vliw.Machine.t;
  outcome : outcome;
}

(** What a fault-injection harness may do to the dispatch loop between
    region entries. *)
type tcache_event =
  | Keep
  | Invalidate  (** drop this label's translation, as self-modifying
                    guest code would *)
  | Flush  (** drop every translation *)

(** Harness hooks threaded through a run.  [before_dispatch] is
    consulted once per dispatched block with its label;
    [is_injected v] classifies a violation as harness-made (counted as
    a spurious rollback); [injected_count] is read once at the end of
    the run into [Stats.injected_faults].  [deadline] is consulted once
    per dispatched block; returning [true] stops the run with the
    [Deadline_exceeded] outcome, preserving partial stats and machine
    state.  See [Verify.Fault] for the standard fault implementation;
    {!no_hooks} is the inert default. *)
type hooks = {
  before_dispatch : Ir.Instr.label -> tcache_event;
  is_injected : Hw.Detector.violation -> bool;
  injected_count : unit -> int;
  deadline : unit -> bool;
}

val no_hooks : hooks

val run :
  ?config:Vliw.Config.t ->
  ?max_blocks:int ->
  ?hot_threshold:int ->
  ?max_reopts:int ->
  ?fuel:int ->
  ?unroll:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  ?tcache:cache ->
  ?watchdog:int ->
  ?hooks:hooks ->
  ?pipeline:Sched.Pipeline.t ->
  ?verify:Check.Verifier.mode ->
  ?capture:(Opt.Optimizer.request -> unit) ->
  ?certify:bool ->
  scheme:scheme ->
  Ir.Program.t ->
  result
(** Runs the program to halt under the dynamic optimization system.
    [pipeline] selects the fast (default) or seed reference translation
    pipeline; regions, schedules, and every deterministic statistic are
    bit-identical between the two — only [translate]/[wall_seconds]
    differ.

    [fuel] bounds executed guest blocks (default 2,000,000); running
    out of fuel is not an exception but the [Fuel_exhausted] outcome,
    carrying the statistics and machine state accumulated so far (with
    [wall_seconds] set).  [unroll] (default 1)
    unrolls self-loop superblocks that many times before optimization —
    the larger-regions experiment of the paper's conclusion.

    [watchdog] (default [2 * max_reopts + 10]) is the livelock bound:
    a region that alias-faults more than [watchdog] times without a
    single commit in between — possible only when violations keep
    arriving after the re-optimization ladder has given speculation up,
    i.e. under fault injection or a pathologically false-positive
    detector — is degraded to interpreter-only execution (its
    translation is invalidated, the label blacklisted, and
    [Stats.degraded_regions] incremented).  Execution always makes
    forward progress because the interpreter cannot alias-fault.

    Translations live in a {!Tcache.Store.t}: [tcache_policy] (default
    [Unbounded], which reproduces the unbounded-cache behavior cycle
    for cycle) and [tcache_capacity] (scheduled-region instructions)
    bound the code cache; evicted regions are re-translated when their
    entry label turns hot again.  [tcache] substitutes a pre-existing
    {!cache} (e.g. a tenant's shard) for the run-private store — the
    policy/capacity arguments are then ignored, cached translations
    and their re-optimization state survive across runs of the same
    program, and the run's stats fold in only the telemetry delta
    accumulated during this run.  Degradation (watchdog and verifier
    blacklists) remains run-local even with a shared cache.  Committed region exits are chained to
    resident translations so repeat dispatches skip the cache lookup;
    the cache's telemetry is folded into the result's [stats].

    [verify] (default [Off]) runs the {!Check.Verifier} translation
    validator on freshly built and re-optimized regions before they are
    installed: [All] checks every one, [Sample] every 8th (a
    deterministic counter, so runs stay reproducible).  A region that
    fails validation is never executed — its label is degraded to
    interpreter-only execution exactly like a watchdog kill, and the
    verdict is recorded in [Stats.verified_regions],
    [Stats.rejected_regions] and the per-rule reject histogram.

    [capture], when given, is called once per translation the run
    performs (initial builds, re-optimizations, gave-up rebuilds alike),
    in execution order, with the exact {!Opt.Optimizer.request} the
    optimizer received — including the id counter at that moment, so
    each request replays bit-identically in isolation.  This is the
    feed for {!Exec.Translate}'s parallel replay. *)
