type t = {
  entry_index : int;
  records : bytes array;
}

let magic = 0x534d5251l (* "SMRQ" *)
let header_bytes = 16
let record_bytes = 16

let create ~entry_index ~count =
  if count < 0 then invalid_arg "Image.create: negative count";
  if entry_index < 0 || (count > 0 && entry_index >= count) then
    invalid_arg "Image.create: entry index out of range";
  { entry_index; records = Array.init count (fun _ -> Bytes.make record_bytes '\000') }

let entry_index t = t.entry_index
let count t = Array.length t.records
let size_bytes t = header_bytes + (count t * record_bytes)

let set_record t i record =
  if Bytes.length record <> record_bytes then
    invalid_arg "Image.set_record: record must be 16 bytes";
  if i < 0 || i >= count t then invalid_arg "Image.set_record: index";
  t.records.(i) <- Bytes.copy record

let get_record t i =
  if i < 0 || i >= count t then invalid_arg "Image.get_record: index";
  Bytes.copy t.records.(i)

let to_bytes t =
  let b = Bytes.make (size_bytes t) '\000' in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 1l (* version *);
  Bytes.set_int32_le b 8 (Int32.of_int t.entry_index);
  Bytes.set_int32_le b 12 (Int32.of_int (count t));
  Array.iteri
    (fun i r -> Bytes.blit r 0 b (header_bytes + (i * record_bytes)) record_bytes)
    t.records;
  b

let of_bytes b =
  if Bytes.length b < header_bytes then
    invalid_arg "Image.of_bytes: truncated header";
  if Bytes.get_int32_le b 0 <> magic then
    invalid_arg "Image.of_bytes: bad magic";
  let entry = Int32.to_int (Bytes.get_int32_le b 8) in
  let n = Int32.to_int (Bytes.get_int32_le b 12) in
  if n < 0 || Bytes.length b < header_bytes + (n * record_bytes) then
    invalid_arg "Image.of_bytes: truncated records";
  if entry < 0 || (n > 0 && entry >= n) then
    invalid_arg "Image.of_bytes: entry index out of range";
  let t = create ~entry_index:entry ~count:n in
  for i = 0 to n - 1 do
    let r = Bytes.make record_bytes '\000' in
    Bytes.blit b (header_bytes + (i * record_bytes)) r 0 record_bytes;
    t.records.(i) <- r
  done;
  t
