(** Jittered exponential backoff and per-tenant retry budgets.

    Delay randomness comes from a caller-owned [Verify.Prng], so a
    seeded server replays identical backoff sequences; budgets are
    atomic token pools shared across worker domains. *)

type policy = {
  max_attempts : int;  (** total attempts, first try included; >= 1 *)
  base_backoff_s : float;  (** delay after the first failure *)
  max_backoff_s : float;  (** clamp for the exponential growth *)
  jitter : float;
      (** fraction of each delay randomized away, in [0,1]; 0 is fully
          deterministic, 1 draws uniformly from [0, delay] *)
}

val default_policy : policy
(** 3 attempts, 1ms base, 50ms cap, 0.5 jitter. *)

val check_policy : policy -> policy
(** Validates field ranges; raises [Invalid_argument] otherwise. *)

val backoff_s : policy -> prng:Verify.Prng.t -> attempt:int -> float
(** Delay before the attempt after 1-based [attempt] failed:
    [base * 2^(attempt-1)] clamped to [max_backoff_s], minus up to
    [jitter] of itself drawn from [prng]. *)

type budget
(** A pool of retry tokens, safe to share across domains. *)

val budget : int -> budget
(** A pool with [n] tokens; each retry consumes one. *)

val unlimited : unit -> budget
(** Never refuses; still counts {!taken}. *)

val try_take : budget -> bool
(** Consume one token; [false] when the pool is exhausted (the caller
    must fail over instead of retrying). *)

val taken : budget -> int
(** Retries granted so far. *)

val remaining : budget -> int option
(** Tokens left, [None] for {!unlimited}. *)
