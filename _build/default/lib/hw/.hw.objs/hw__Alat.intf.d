lib/hw/alat.mli: Access Detector Ir
