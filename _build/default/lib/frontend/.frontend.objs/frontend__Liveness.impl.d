lib/frontend/liveness.ml: Hashtbl Ir List Option
