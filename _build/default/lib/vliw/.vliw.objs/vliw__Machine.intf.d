lib/vliw/machine.mli: Ir
