(** Speculation policy: what each alias-detection scheme lets the
    optimizer do.

    - SMARQ (ordered queue): every reordering and both eliminations.
    - ALAT: loads may be hoisted above earlier stores (the store snoops
      the table), but a store may never be hoisted above a load or
      another store (stores cannot be protected), and store-to-load
      forwarding / store elimination are unsupported.  Load-load
      forwarding works because the forwarding source is an advanced
      load.
    - Efficeon: everything SMARQ does, within 15 registers, with mask
      annotations.
    - none: no speculation whatsoever. *)

type annot_scheme =
  | Queue_scheme
  | Naive_queue_scheme
      (** program-order allocation on the same queue hardware
          (Section 2.4's baseline): no P/C filtering, no eliminations *)
  | Mask_scheme
  | Alat_scheme
  | No_scheme

type t = {
  name : string;
  scheme : annot_scheme;
  ar_count : int;  (** alias registers available to the allocator *)
  hoist_load_above_store : bool;
  sink_load_below_store : bool;
  reorder_store_store : bool;
  allow_load_load_forward : bool;
  allow_store_load_forward : bool;
  allow_store_elim : bool;
  static_disambiguation : bool;
      (** run constant propagation before alias analysis, letting
          direct (constant-base) accesses be disambiguated statically —
          the related-work [13] capability *)
  certify : bool;
      (** run the abstract-interpretation alias certifier
          ([Analysis.Disamb]) and attach proof witnesses to the
          artifact; certified pairs carry no dependence edge and no
          alias-register protection *)
}

val smarq : ar_count:int -> t

(** The Section 2.4 straw man: full reordering under order-based
    detection with one register per memory operation in program order;
    eliminations are impossible under it. *)
val naive_order : ar_count:int -> t

(** The Figure 16 ablation: SMARQ with store reordering disabled. *)
val smarq_no_store_reorder : ar_count:int -> t

val alat : unit -> t
val efficeon : unit -> t
val none : unit -> t

val none_with_analysis : unit -> t
(** No hardware detection, but static constant-base disambiguation —
    quantifies how far a fast binary-level alias analysis gets without
    any hardware support (related work [13]). *)

val with_certify : t -> t
(** Enable static alias certification; keeps the policy name, since
    certification changes which dependences exist, not the annotation
    scheme. *)

val speculates : t -> bool
(** True iff any speculation is enabled. *)

val may_drop_edge :
  t -> first:Ir.Instr.t -> second:Ir.Instr.t -> bool
(** May the scheduler reorder this may-alias dependence pair
    ([first] originally precedes [second])? *)
