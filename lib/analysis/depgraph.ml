type kind =
  | Real
  | Extended

type strength =
  | Hard
  | Speculative

type edge = {
  first : int;
  second : int;
  kind : kind;
  strength : strength;
}

type elimination =
  | Load_forwarded of {
      source : int;
      eliminated : int;
    }
  | Store_overwritten of {
      eliminated : int;
      overwriter : int;
    }

type t = {
  all : edge list;
  into_slot : (int, int) Hashtbl.t;  (* target instr id -> array slot *)
  into : edge list array;
}

let strength_of = function
  | May_alias.Must_alias -> Some Hard
  | May_alias.May_alias -> Some Speculative
  | May_alias.No_alias -> None

(* Real dependences: X before Y, may access same memory, >= 1 store.

   The reference builder is the seed's O(n^2) pairwise loop with a full
   may-alias verdict per pair; it is kept verbatim as the oracle the
   swept builder is differentially tested against. *)
let real_edges_reference ~body ~alias =
  let mems = Array.of_list (List.filter Ir.Instr.is_memory body) in
  let n = Array.length mems in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = mems.(i) and y = mems.(j) in
      if Ir.Instr.is_store x || Ir.Instr.is_store y then
        match strength_of (May_alias.verdict alias x y) with
        | Some strength ->
          acc := { first = x.id; second = y.id; kind = Real; strength } :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

(* The swept builder produces the same edge list (same pairs, same
   strengths, same order) without calling the pairwise verdict:

   - Memory operations are bucketed by (base register, generation),
     where an operation's generation counts the definitions of its base
     at strictly earlier body positions.  Two same-base operations see
     an intervening redefinition exactly when their generations differ
     (a self-defining load bumps the generation of everything after it
     but not its own, matching [May_alias.defined_in]'s half-open
     interval).
   - Within a bucket the displacement intervals decide exactly, so a
     disp-sorted sweep emits only the overlapping (hard) pairs and
     never touches the provably disjoint ones.
   - Across buckets every store-carrying pair is an edge (speculative
     unless a recorded alias or a constant-base proof upgrades or
     removes it), so enumerating them costs O(1) per emitted edge.
   - Recorded alias pairs are folded in out of band: they are the only
     way a within-bucket disjoint pair becomes an edge.

   Edges are emitted as packed [(i * n + j) * 2 + hard?] keys and
   sorted at the end, which restores the reference builder's
   (i, j)-lexicographic order. *)
let real_edges_swept ~body ~alias =
  let mems = Array.of_list (List.filter Ir.Instr.is_memory body) in
  let n = Array.length mems in
  if n = 0 then []
  else begin
    let id = Array.make n 0 in
    let base = Array.make n (Ir.Reg.R 0) in
    let disp = Array.make n 0 in
    let width = Array.make n 1 in
    let store = Array.make n false in
    let cbase = Array.make n None in
    let gen = Array.make n 0 in
    (* generations: one body walk, counting defs per register *)
    let def_count : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
    let slot_of_id = Hashtbl.create (n * 2) in
    let next = ref 0 in
    List.iter
      (fun (ins : Ir.Instr.t) ->
        (match Ir.Instr.mem_addr ins with
        | Some a ->
          let k = !next in
          incr next;
          id.(k) <- ins.id;
          base.(k) <- a.Ir.Instr.base;
          disp.(k) <- a.Ir.Instr.disp;
          width.(k) <- Option.value (Ir.Instr.mem_width ins) ~default:1;
          store.(k) <- Ir.Instr.is_store ins;
          cbase.(k) <- May_alias.const_base_value alias ins;
          gen.(k) <-
            Option.value (Hashtbl.find_opt def_count a.Ir.Instr.base)
              ~default:0;
          Hashtbl.replace slot_of_id ins.id k
        | None -> ());
        List.iter
          (fun r ->
            Hashtbl.replace def_count r
              (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0))
          (Ir.Instr.defs ins))
      body;
    (* dense bucket ids per (base, generation) *)
    let bucket_ids : (Ir.Reg.t * int, int) Hashtbl.t = Hashtbl.create 64 in
    let bucket = Array.make n 0 in
    let n_buckets = ref 0 in
    for k = 0 to n - 1 do
      let key = (base.(k), gen.(k)) in
      bucket.(k) <-
        (match Hashtbl.find_opt bucket_ids key with
        | Some b -> b
        | None ->
          let b = !n_buckets in
          incr n_buckets;
          Hashtbl.replace bucket_ids key b;
          b)
    done;
    let n_buckets = !n_buckets in
    (* growable key buffer *)
    let keys = ref (Array.make 64 0) in
    let n_keys = ref 0 in
    let emit i j hard =
      if !n_keys = Array.length !keys then begin
        let bigger = Array.make (2 * !n_keys) 0 in
        Array.blit !keys 0 bigger 0 !n_keys;
        keys := bigger
      end;
      !keys.(!n_keys) <- ((((i * n) + j) lsl 1) lor if hard then 1 else 0);
      incr n_keys
    in
    let members = Array.make n_buckets [] in
    for k = n - 1 downto 0 do
      members.(bucket.(k)) <- k :: members.(bucket.(k))
    done;
    (* pass 1: within-bucket disp-interval sweep (hard edges only) *)
    Array.iter
      (fun ms ->
        match ms with
        | [] | [ _ ] -> ()
        | ms ->
          let s = Array.of_list ms in
          Array.sort
            (fun a b ->
              let c = Int.compare disp.(a) disp.(b) in
              if c <> 0 then c else Int.compare a b)
            s;
          let k = Array.length s in
          for u = 0 to k - 2 do
            let du = disp.(s.(u)) and wu = width.(s.(u)) in
            let v = ref (u + 1) in
            while !v < k && disp.(s.(!v)) < du + wu do
              let a = s.(u) and b = s.(!v) in
              if store.(a) || store.(b) then
                emit (min a b) (max a b) true;
              incr v
            done
          done)
      members;
    (* pass 2: cross-bucket pairs, O(1) per emitted edge.  Iterating a
       registered bucket always yields edges (speculative by default),
       so the registry walk amortizes into the output. *)
    let stores_in = Array.make n_buckets [] in
    let mems_in = Array.make n_buckets [] in
    let store_buckets = ref [] in
    let mem_buckets = ref [] in
    for j = 0 to n - 1 do
      let bj = bucket.(j) in
      let classify i =
        (* same bucket is excluded at the registry level *)
        if May_alias.is_known alias id.(i) id.(j) then Some true
        else if Ir.Reg.equal base.(i) base.(j) then Some false
        else
          match cbase.(i), cbase.(j) with
          | Some bi, Some bj ->
            let d1 = bi + disp.(i) and d2 = bj + disp.(j) in
            if d1 < d2 + width.(j) && d2 < d1 + width.(i) then Some true
            else None
          | _ -> Some false
      in
      let scan bs lists =
        List.iter
          (fun b ->
            if b <> bj then
              List.iter
                (fun i ->
                  match classify i with
                  | Some hard -> emit i j hard
                  | None -> ())
                lists.(b))
          bs
      in
      if store.(j) then scan !mem_buckets mems_in
      else scan !store_buckets stores_in;
      if mems_in.(bj) = [] then mem_buckets := bj :: !mem_buckets;
      mems_in.(bj) <- j :: mems_in.(bj);
      if store.(j) then begin
        if stores_in.(bj) = [] then store_buckets := bj :: !store_buckets;
        stores_in.(bj) <- j :: stores_in.(bj)
      end
    done;
    (* pass 3: recorded alias pairs that fall inside a bucket but do not
       overlap — the one case the sweeps above never visit *)
    List.iter
      (fun (a, b) ->
        match Hashtbl.find_opt slot_of_id a, Hashtbl.find_opt slot_of_id b with
        | Some i, Some j when i <> j ->
          let i, j = (min i j, max i j) in
          if
            (store.(i) || store.(j))
            && bucket.(i) = bucket.(j)
            && not
                 (disp.(i) < disp.(j) + width.(j)
                 && disp.(j) < disp.(i) + width.(i))
          then emit i j true
        | _ -> ())
      (May_alias.known_pairs alias);
    let keys = Array.sub !keys 0 !n_keys in
    Array.sort (fun (a : int) b -> Int.compare a b) keys;
    Array.fold_right
      (fun key acc ->
        let pair = key lsr 1 in
        let i = pair / n and j = pair mod n in
        {
          first = id.(i);
          second = id.(j);
          kind = Real;
          strength = (if key land 1 = 1 then Hard else Speculative);
        }
        :: acc)
      keys []
  end

let find_instr body id = List.find_opt (fun (i : Ir.Instr.t) -> i.id = id) body

(* EXTENDED-DEPENDENCE 1: load Z forwarded from X; every intervening
   store Y that may alias X yields Y ->dep X (backward order). *)
let ext_load_forwarded ~alias ~source ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_store y) then None
      else
        match May_alias.verdict alias y source with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Speculative;
            })
    between

(* EXTENDED-DEPENDENCE 2: store X eliminated, overwritten by Z; every
   intervening load Y that may alias Z yields Z ->dep Y. *)
let ext_store_overwritten ~alias ~overwriter ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_load y) then None
      else
        match May_alias.verdict alias overwriter y with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Speculative;
            })
    between

let build ~body ~alias ?(eliminated = []) ?(reference = false) () =
  let real =
    if reference then real_edges_reference ~body ~alias
    else real_edges_swept ~body ~alias
  in
  let ext =
    List.concat_map
      (fun (elim, between) ->
        match elim with
        | Load_forwarded { source; eliminated = _ } ->
          (match find_instr body source with
          | Some src -> ext_load_forwarded ~alias ~source:src ~between
          | None -> [])
        | Store_overwritten { eliminated = _; overwriter } ->
          (match find_instr body overwriter with
          | Some ovw -> ext_store_overwritten ~alias ~overwriter:ovw ~between
          | None -> []))
      eliminated
  in
  (* Deduplicate: an extended edge may coincide with another extended
     edge from a different elimination. *)
  let seen = Hashtbl.create 64 in
  let all =
    List.filter
      (fun e ->
        let key = (e.first, e.second, e.kind) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (real @ ext)
  in
  (* int-indexed adjacency: slot per distinct target id, edges kept in
     occurrence order — the order the allocator consumes them in *)
  let into_slot = Hashtbl.create 64 in
  let n_targets = ref 0 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem into_slot e.second) then begin
        Hashtbl.replace into_slot e.second !n_targets;
        incr n_targets
      end)
    all;
  let into = Array.make (max 1 !n_targets) [] in
  List.iter
    (fun e ->
      let s = Hashtbl.find into_slot e.second in
      into.(s) <- e :: into.(s))
    all;
  Array.iteri (fun s l -> into.(s) <- List.rev l) into;
  { all; into_slot; into }

let edges t = t.all

let edges_into t id =
  match Hashtbl.find_opt t.into_slot id with
  | Some s -> t.into.(s)
  | None -> []

let mem_dep_pairs t =
  List.filter_map
    (fun e ->
      match e.kind with
      | Real -> Some (e.first, e.second, e.strength)
      | Extended -> None)
    t.all

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%d ->dep %d (%s, %s)@." e.first e.second
        (match e.kind with Real -> "real" | Extended -> "ext")
        (match e.strength with Hard -> "hard" | Speculative -> "spec"))
    t.all
