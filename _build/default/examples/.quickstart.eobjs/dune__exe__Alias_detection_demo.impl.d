examples/alias_detection_demo.ml: Format Hw Ir Opt Printf Sched Vliw
