test/suite_props.ml: Analysis Binary Frontend Hashtbl Helpers Hw Ir List Opt Printf QCheck Runtime Sched Smarq String Vliw Workload
