lib/opt/optimizer.ml: Analysis Elim Ir Sched
