lib/runtime/driver.mli: Hw Ir Sched Stats Vliw
