type verdict =
  | No_alias
  | Must_alias
  | May_alias

type t = {
  position : (int, int) Hashtbl.t;  (* instr id -> body index *)
  instrs : Ir.Instr.t array;  (* body, original order *)
  def_positions : (Ir.Reg.t, int list) Hashtbl.t;  (* sorted ascending *)
  known : (int * int, unit) Hashtbl.t;  (* normalized id pairs *)
  certified : (int * int, unit) Hashtbl.t;  (* statically proven disjoint *)
  const_facts : Const_prop.t option;
}

let norm_pair a b = if a <= b then (a, b) else (b, a)

let analyze ?(known_alias = []) ?const_facts ~body () =
  let instrs = Array.of_list body in
  let position = Hashtbl.create (Array.length instrs * 2) in
  Array.iteri (fun idx (i : Ir.Instr.t) -> Hashtbl.replace position i.id idx)
    instrs;
  let def_positions = Hashtbl.create 64 in
  Array.iteri
    (fun idx (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          let l = Option.value (Hashtbl.find_opt def_positions r) ~default:[] in
          Hashtbl.replace def_positions r (idx :: l))
        (Ir.Instr.defs i))
    instrs;
  Hashtbl.iter
    (fun r l -> Hashtbl.replace def_positions r (List.rev l))
    (Hashtbl.copy def_positions);
  let known = Hashtbl.create 16 in
  List.iter
    (fun (a, b) -> Hashtbl.replace known (norm_pair a b) ())
    known_alias;
  { position; instrs; def_positions; known;
    certified = Hashtbl.create 16; const_facts }

let add_known_alias t a b = Hashtbl.replace t.known (norm_pair a b) ()

let set_certified t pairs =
  Hashtbl.reset t.certified;
  List.iter (fun (a, b) -> Hashtbl.replace t.certified (norm_pair a b) ())
    pairs

let certified t a b = Hashtbl.mem t.certified (norm_pair a b)

(* Is [r] (re)defined at any body index in [lo, hi)? *)
let defined_in t r ~lo ~hi =
  match Hashtbl.find_opt t.def_positions r with
  | None -> false
  | Some l -> List.exists (fun k -> k >= lo && k < hi) l

let ranges_overlap d1 w1 d2 w2 = d1 < d2 + w2 && d2 < d1 + w1

(* Absolute-address verdict for direct accesses (both bases provably
   constant at their instruction). *)
let direct_verdict t (x : Ir.Instr.t) ax (y : Ir.Instr.t) ay =
  match t.const_facts with
  | None -> None
  | Some facts ->
    (match
       ( Const_prop.base_value_at facts ~instr_id:x.Ir.Instr.id
           ax.Ir.Instr.base,
         Const_prop.base_value_at facts ~instr_id:y.Ir.Instr.id
           ay.Ir.Instr.base )
     with
    | Some bx, Some by ->
      let wx = Option.value (Ir.Instr.mem_width x) ~default:1 in
      let wy = Option.value (Ir.Instr.mem_width y) ~default:1 in
      if ranges_overlap (bx + ax.Ir.Instr.disp) wx (by + ay.Ir.Instr.disp) wy
      then Some Must_alias
      else Some No_alias
    | _ -> None)

(* Base verdict, before static certification is consulted. *)
let base_verdict t (x : Ir.Instr.t) (y : Ir.Instr.t) =
  if Hashtbl.mem t.known (norm_pair x.id y.id) then Must_alias
  else
    match Ir.Instr.mem_addr x, Ir.Instr.mem_addr y with
    | Some ax, Some ay ->
      if not (Ir.Reg.equal ax.base ay.base) then begin
        match direct_verdict t x ax y ay with
        | Some v -> v
        | None -> May_alias
      end
      else begin
        match Hashtbl.find_opt t.position x.id, Hashtbl.find_opt t.position y.id
        with
        | Some px, Some py ->
          let lo = min px py and hi = max px py in
          if defined_in t ax.base ~lo ~hi then May_alias
          else begin
            let wx = Option.value (Ir.Instr.mem_width x) ~default:1 in
            let wy = Option.value (Ir.Instr.mem_width y) ~default:1 in
            if ranges_overlap ax.disp wx ay.disp wy then Must_alias
            else No_alias
          end
        | _ -> May_alias
      end
    | _ -> No_alias

(* Certification only ever upgrades a May verdict: known-alias pairs
   and pairs the base analysis decides exactly are never overridden. *)
let verdict t (x : Ir.Instr.t) (y : Ir.Instr.t) =
  match base_verdict t x y with
  | May_alias when Hashtbl.mem t.certified (norm_pair x.id y.id) -> No_alias
  | v -> v

let is_known t a b = Hashtbl.mem t.known (norm_pair a b)

let known_pairs t = Hashtbl.fold (fun p () acc -> p :: acc) t.known []

let const_base_value t (x : Ir.Instr.t) =
  match t.const_facts, Ir.Instr.mem_addr x with
  | Some facts, Some ax ->
    Const_prop.base_value_at facts ~instr_id:x.Ir.Instr.id ax.Ir.Instr.base
  | _ -> None

let pp_verdict ppf = function
  | No_alias -> Format.pp_print_string ppf "no-alias"
  | Must_alias -> Format.pp_print_string ppf "must-alias"
  | May_alias -> Format.pp_print_string ppf "may-alias"
