lib/analysis/constraints.ml: Format Hashtbl Int List Option Printf Set
