type t = Lru | Fifo | Flush_all | Unbounded

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Flush_all -> "flush-all"
  | Unbounded -> "unbounded"

let of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Lru
  | "fifo" -> Fifo
  | "flush" | "flush-all" | "flush_all" -> Flush_all
  | "unbounded" | "none" -> Unbounded
  | _ -> invalid_arg (Printf.sprintf "unknown tcache policy %S" s)

let all = [ Lru; Fifo; Flush_all; Unbounded ]
let pp ppf t = Format.pp_print_string ppf (to_string t)
