type entry = {
  range : Access.t;
  setter : int;
}

type t = {
  regs : entry option array;
  mutable checks : int;
}

let encoding_limit = 15

let create ?(size = encoding_limit) () =
  if size <= 0 || size > encoding_limit then
    invalid_arg
      (Printf.sprintf "Efficeon.create: size must be in 1..%d" encoding_limit);
  { regs = Array.make size None; checks = 0 }

let size t = Array.length t.regs
let reset t = Array.fill t.regs 0 (Array.length t.regs) None
let checks_performed t = t.checks

let on_mem t (instr : Ir.Instr.t) range =
  match Ir.Instr.annot instr with
  | Ir.Annot.Mask { set_index; check_mask } ->
    let n = Array.length t.regs in
    let rec scan i =
      if i >= n then Ok ()
      else if check_mask land (1 lsl i) = 0 then scan (i + 1)
      else begin
        t.checks <- t.checks + 1;
        match t.regs.(i) with
        | Some e when Access.overlap e.range range ->
          Error
            Detector.
              {
                checker = instr.id;
                setter = e.setter;
                false_positive_prone = false;
              }
        | Some _ | None -> scan (i + 1)
      end
    in
    let result = scan 0 in
    (match result with
    | Error _ as e -> e
    | Ok () ->
      (match set_index with
      | Some i when i >= 0 && i < n ->
        t.regs.(i) <- Some { range; setter = instr.id }
      | Some i ->
        invalid_arg
          (Printf.sprintf "Efficeon.on_mem: register %d out of range" i)
      | None -> ());
      Ok ())
  | Ir.Annot.No_annot | Ir.Annot.Queue _ | Ir.Annot.Alat _ -> Ok ()

let caps size =
  Detector.
    {
      scheme = "bit-mask";
      scalable = false;
      false_positives = false;
      detects_store_store = true;
      max_registers = Some size;
    }

let detector t =
  Detector.
    {
      name = Printf.sprintf "efficeon%d" (size t);
      caps = caps (size t);
      reset = (fun () -> reset t);
      on_mem = (fun i r -> on_mem t i r);
      on_rotate = (fun _ -> ());
      on_amov = (fun ~src:_ ~dst:_ -> ());
      checks_performed = (fun () -> checks_performed t);
    }
