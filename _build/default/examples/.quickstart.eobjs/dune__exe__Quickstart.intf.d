examples/quickstart.mli:
