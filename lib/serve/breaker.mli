(** Per-(tenant, scheme) circuit breaker: closed / open / half-open.

    Counted in events rather than wall time so that a deterministic
    request sequence yields a deterministic transition sequence (the
    soak harness replays breaker behavior bit-for-bit from a seed).
    Not internally locked — the owner serializes access (the server
    holds its mutex around {!admit}/{!observe}). *)

type config = {
  window : int;  (** sliding outcome window, >= 1 *)
  failure_threshold : float;
      (** failure fraction over a {e full} window that trips the
          breaker, in (0,1] *)
  cooldown : int;  (** admissions shed while open before probing, >= 1 *)
}

val default_config : config
(** window 8, threshold 0.5, cooldown 4. *)

val check_config : config -> config
(** Validates field ranges; raises [Invalid_argument] otherwise. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type decision =
  | Run  (** execute normally *)
  | Shed  (** skip straight to the degraded path (do not observe) *)
  | Probe  (** execute normally; this outcome decides recovery *)

type t

val create : ?config:config -> unit -> t
val state : t -> state

val admit : t -> decision
(** Ask before executing a request.  Closed always [Run]s; open sheds
    [cooldown] admissions then transitions to half-open and [Probe]s;
    half-open sheds everything except the single outstanding probe. *)

type observation = Success | Failure
(** Timeouts count as [Failure]. *)

val observe : t -> observation -> unit
(** Record the terminal outcome of an admitted ([Run]/[Probe]) request.
    Never call for [Shed] requests.  A full closed window at or above
    the threshold trips open; a half-open probe closes (success,
    clearing the window) or re-opens (failure). *)

val transitions : t -> int
(** State changes so far (closed->open, open->half-open,
    half-open->closed/open). *)

val shed_total : t -> int
(** Requests diverted to the degraded path by this breaker. *)
