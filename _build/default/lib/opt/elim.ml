type result = {
  body : Ir.Instr.t list;
  eliminations : (Analysis.Depgraph.elimination * Ir.Instr.t list) list;
  assumed_no_alias : (int * int) list;
  loads_eliminated : int;
  stores_eliminated : int;
}

(* Each original body slot holds the surviving instructions for that
   slot: captures movs around an op, a replacement mov, or nothing. *)
type cell = Ir.Instr.t list

let is_must alias a b =
  match Analysis.May_alias.verdict alias a b with
  | Analysis.May_alias.Must_alias -> true
  | Analysis.May_alias.May_alias | Analysis.May_alias.No_alias -> false

let is_may alias a b =
  match Analysis.May_alias.verdict alias a b with
  | Analysis.May_alias.May_alias -> true
  | Analysis.May_alias.Must_alias | Analysis.May_alias.No_alias -> false

(* Exact must-alias: same base, displacement and width, and the alias
   analysis agrees (which covers base redefinition between the two). *)
let exact_same_location alias (a : Ir.Instr.t) (b : Ir.Instr.t) =
  match Ir.Instr.mem_addr a, Ir.Instr.mem_addr b with
  | Some aa, Some ab ->
    Ir.Reg.equal aa.base ab.base
    && aa.disp = ab.disp
    && Ir.Instr.mem_width a = Ir.Instr.mem_width b
    && is_must alias a b
  | _ -> false

type state = {
  cells : cell array;  (* indexed by original position *)
  anchor : Ir.Instr.t array;  (* the original instruction per slot *)
  mutable dead : (int, unit) Hashtbl.t;  (* positions eliminated *)
  mutable elims : (Analysis.Depgraph.elimination * (int * int)) list;
      (* elimination + (lo, hi) original positions of the pair *)
  mutable assumed : (int * int) list;
  mutable loads_eliminated : int;
  mutable stores_eliminated : int;
  locked : (int, unit) Hashtbl.t;  (* instr ids that must stay intact *)
  fresh_id : int ref;
}

let make_state ~body ~fresh_id =
  let anchor = Array.of_list body in
  {
    cells = Array.map (fun i -> [ i ]) anchor;
    anchor;
    dead = Hashtbl.create 16;
    elims = [];
    assumed = [];
    loads_eliminated = 0;
    stores_eliminated = 0;
    locked = Hashtbl.create 16;
    fresh_id;
  }

let alive st pos = not (Hashtbl.mem st.dead pos)
let lock st (i : Ir.Instr.t) = Hashtbl.replace st.locked i.id ()
let is_locked st (i : Ir.Instr.t) = Hashtbl.mem st.locked i.id

let next_id st =
  let id = !(st.fresh_id) in
  incr st.fresh_id;
  id

(* Is [reg] (re)defined by any original instruction strictly between
   positions [lo] and [hi]?  (Replacement movs only define the same
   registers as the instructions they replace, so scanning the anchors
   is conservative and sufficient.) *)
let redefined_between st reg ~lo ~hi =
  let rec scan p =
    if p >= hi then false
    else if
      List.exists (Ir.Reg.equal reg) (Ir.Instr.defs st.anchor.(p))
    then true
    else scan (p + 1)
  in
  scan (lo + 1)

(* ---- Store elimination ---- *)

let store_elim st ~alias ~checking_stores =
  let n = Array.length st.anchor in
  for p = 0 to n - 1 do
    let x = st.anchor.(p) in
    if
      Ir.Instr.is_store x && alive st p
      && (not (is_locked st x))
      && not (Hashtbl.mem checking_stores x.id)
    then begin
      (* scan forward for an exact overwriter, giving up at a side
         exit or a must-alias load *)
      let rec scan q =
        if q >= n then None
        else
          let w = st.anchor.(q) in
          if not (alive st q) then scan (q + 1)
          else if Ir.Instr.is_side_exit w then None
          else if Ir.Instr.is_store w && exact_same_location alias x w then
            Some (q, w)
          else if Ir.Instr.is_load w && is_must alias x w then None
          else scan (q + 1)
      in
      match scan (p + 1) with
      | None -> ()
      | Some (q, z) ->
        (* speculate: intervening may-alias loads are checked by z *)
        let intervening = ref [] in
        for k = p + 1 to q - 1 do
          if alive st k then begin
            let y = st.anchor.(k) in
            if Ir.Instr.is_load y && is_may alias z y then begin
              intervening := y :: !intervening;
              st.assumed <- (z.id, y.id) :: st.assumed;
              (* y must stay a load so its P bit can protect it *)
              lock st y
            end
          end
        done;
        lock st z;
        Hashtbl.replace st.dead p ();
        st.cells.(p) <- [];
        st.stores_eliminated <- st.stores_eliminated + 1;
        st.elims <-
          ( Analysis.Depgraph.Store_overwritten
              { eliminated = x.id; overwriter = z.id },
            (p, q) )
          :: st.elims
    end
  done

(* ---- Load elimination ---- *)

let load_elim st ~alias ~policy ~checking_stores =
  let allow_ll = policy.Sched.Policy.allow_load_load_forward in
  let allow_sl = policy.Sched.Policy.allow_store_load_forward in
  if allow_ll || allow_sl then begin
    let n = Array.length st.anchor in
    for q = 0 to n - 1 do
      let z = st.anchor.(q) in
      if Ir.Instr.is_load z && alive st q && not (is_locked st z) then begin
        (* scan backward for the nearest live exact-location source *)
        let rec scan p intervening =
          if p < 0 then None
          else
            let w = st.anchor.(p) in
            if not (alive st p) then scan (p - 1) intervening
            else if Ir.Instr.is_memory w && exact_same_location alias w z then
              if Ir.Instr.is_store w then
                if allow_sl then Some (p, w, intervening) else None
              else if allow_ll then Some (p, w, intervening)
              else None
            else if Ir.Instr.is_store w && is_must alias w z then
              (* partially overlapping known store: unsafe to cross *)
              None
            else if Ir.Instr.is_store w && is_may alias w z then
              scan (p - 1) (w :: intervening)
            else scan (p - 1) intervening
        in
        match scan (q - 1) [] with
        | None -> ()
        | Some (p, src_op, intervening_stores) ->
          let dst =
            match z.op with
            | Ir.Instr.Load { dst; _ } -> dst
            | _ -> assert false
          in
          (* Forward directly through the source's register or
             immediate when it provably still holds the value at Z's
             position; otherwise capture it into a fresh temporary at
             the source.  Direct forwarding costs one move (or none at
             all for an immediate) instead of two. *)
          let forwarded_operand =
            match src_op.op with
            | Ir.Instr.Store { src = Ir.Instr.Imm n; _ } ->
              Some (Ir.Instr.Imm n)
            | Ir.Instr.Store { src = Ir.Instr.Reg rsrc; _ }
              when not (redefined_between st rsrc ~lo:p ~hi:q) ->
              Some (Ir.Instr.Reg rsrc)
            | Ir.Instr.Load { dst = src_dst; _ }
              when not (redefined_between st src_dst ~lo:p ~hi:q) ->
              Some (Ir.Instr.Reg src_dst)
            | Ir.Instr.Store _ | Ir.Instr.Load _ -> None
            | _ -> assert false
          in
          let replacement =
            match forwarded_operand with
            | Some operand -> Ir.Instr.Mov (dst, operand)
            | None ->
              let tmp = Ir.Reg.T (next_id st) in
              (match src_op.op with
              | Ir.Instr.Store { src; _ } ->
                let capture =
                  Ir.Instr.make ~id:(next_id st) (Ir.Instr.Mov (tmp, src))
                in
                st.cells.(p) <- capture :: st.cells.(p)
              | Ir.Instr.Load { dst = src_dst; _ } ->
                let capture =
                  Ir.Instr.make ~id:(next_id st)
                    (Ir.Instr.Mov (tmp, Ir.Instr.Reg src_dst))
                in
                st.cells.(p) <- st.cells.(p) @ [ capture ]
              | _ -> assert false);
              Ir.Instr.Mov (dst, Ir.Instr.Reg tmp)
          in
          let mov = Ir.Instr.make ~id:(next_id st) replacement in
          Hashtbl.replace st.dead q ();
          st.cells.(q) <- [ mov ];
          st.loads_eliminated <- st.loads_eliminated + 1;
          (* the source must stay so its register can be protected *)
          lock st src_op;
          List.iter
            (fun (w : Ir.Instr.t) ->
              (* w owes a runtime check against the source; it must not
                 be eliminated by the later store-elimination pass *)
              Hashtbl.replace checking_stores w.id ();
              st.assumed <- (src_op.id, w.id) :: st.assumed)
            intervening_stores;
          st.elims <-
            ( Analysis.Depgraph.Load_forwarded
                { source = src_op.id; eliminated = z.id },
              (p, q) )
            :: st.elims
      end
    done
  end

let finish st =
  let body = Array.to_list st.cells |> List.concat in
  let surviving = Hashtbl.create 64 in
  List.iter (fun (i : Ir.Instr.t) -> Hashtbl.replace surviving i.id i) body;
  let between (lo, hi) =
    let acc = ref [] in
    for k = hi - 1 downto lo + 1 do
      let a = st.anchor.(k) in
      match Hashtbl.find_opt surviving a.id with
      | Some i -> acc := i :: !acc
      | None -> ()
    done;
    !acc
  in
  let eliminations =
    List.rev_map (fun (e, span) -> (e, between span)) st.elims
  in
  {
    body;
    eliminations;
    assumed_no_alias = st.assumed;
    loads_eliminated = st.loads_eliminated;
    stores_eliminated = st.stores_eliminated;
  }

let run ~policy ~alias ~body ~fresh_id =
  let st = make_state ~body ~fresh_id in
  (* Load elimination first: it is the more profitable pass (it hides
     load latency) and it marks the stores that owe runtime checks so
     store elimination cannot remove them. *)
  let checking_stores = Hashtbl.create 16 in
  load_elim st ~alias ~policy ~checking_stores;
  if policy.Sched.Policy.allow_store_elim then
    store_elim st ~alias ~checking_stores;
  finish st
