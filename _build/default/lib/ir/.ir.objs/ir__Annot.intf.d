lib/ir/annot.mli: Format
