lib/ir/program.ml: Block Format Hashtbl Instr List Printf String
