(* Architectural state: registers, byte-level memory, checkpoints. *)

open Helpers
module M = Vliw.Machine

let test_regs_default_zero () =
  let m = M.create () in
  Alcotest.(check int) "unwritten reads 0" 0 (M.get_reg m (r 5));
  M.set_reg m (r 5) 42;
  Alcotest.(check int) "written value" 42 (M.get_reg m (r 5))

let test_memory_widths () =
  let m = M.create () in
  M.store m ~addr:100 ~width:4 0x11223344;
  Alcotest.(check int) "word read" 0x11223344 (M.load m ~addr:100 ~width:4);
  Alcotest.(check int) "byte 0 (little-endian)" 0x44 (M.load m ~addr:100 ~width:1);
  Alcotest.(check int) "byte 3" 0x11 (M.load m ~addr:103 ~width:1);
  (* partial overlap: store clobbers shared bytes only *)
  M.store m ~addr:102 ~width:2 0xBEEF;
  Alcotest.(check int) "partially overwritten" 0xBEEF3344
    (M.load m ~addr:100 ~width:4);
  Alcotest.check_raises "width 9 rejected"
    (Invalid_argument "Machine: unsupported access width 9") (fun () ->
      ignore (M.load m ~addr:0 ~width:9))

let test_checkpoint_rollback () =
  let m = M.create () in
  M.set_reg m (r 1) 1;
  M.store m ~addr:8 ~width:4 111;
  M.checkpoint m;
  M.set_reg m (r 1) 2;
  M.set_reg m (r 2) 3;
  M.store m ~addr:8 ~width:4 222;
  M.store m ~addr:16 ~width:8 333;
  M.rollback m;
  Alcotest.(check int) "r1 restored" 1 (M.get_reg m (r 1));
  Alcotest.(check int) "r2 restored to 0" 0 (M.get_reg m (r 2));
  Alcotest.(check int) "mem restored" 111 (M.load m ~addr:8 ~width:4);
  Alcotest.(check int) "fresh mem unwritten" 0 (M.load m ~addr:16 ~width:8);
  Alcotest.(check bool) "region ended" false (M.in_region m)

let test_checkpoint_commit () =
  let m = M.create () in
  M.checkpoint m;
  M.set_reg m (r 1) 7;
  M.store m ~addr:0 ~width:4 9;
  M.commit m;
  Alcotest.(check int) "reg kept" 7 (M.get_reg m (r 1));
  Alcotest.(check int) "mem kept" 9 (M.load m ~addr:0 ~width:4)

let test_no_nesting () =
  let m = M.create () in
  M.checkpoint m;
  Alcotest.check_raises "nested checkpoint rejected"
    (Invalid_argument "Machine.checkpoint: region already active") (fun () ->
      M.checkpoint m);
  M.commit m;
  Alcotest.check_raises "commit without region"
    (Invalid_argument "Machine.commit: no active region") (fun () ->
      M.commit m)

let test_copy_independence () =
  let m = M.create () in
  M.set_reg m (r 1) 5;
  M.store m ~addr:4 ~width:4 6;
  let c = M.copy m in
  M.set_reg m (r 1) 50;
  M.store m ~addr:4 ~width:4 60;
  Alcotest.(check int) "copied reg" 5 (M.get_reg c (r 1));
  Alcotest.(check int) "copied mem" 6 (M.load c ~addr:4 ~width:4)

let test_equality_ignores_temps () =
  let a = M.create () and b = M.create () in
  M.set_reg a (Ir.Reg.T 3) 99;
  Alcotest.(check bool) "temps invisible" true (M.equal_guest_state a b);
  M.set_reg a (r 3) 99;
  Alcotest.(check bool) "guest regs visible" false (M.equal_guest_state a b);
  let diffs = M.diff_guest_state a b in
  Alcotest.(check bool) "diff mentions r3" true
    (List.exists (fun s -> String.length s > 0 && String.sub s 0 6 = "reg r3") diffs)

let test_rollback_after_many_writes () =
  let m = M.create () in
  for i = 0 to 63 do
    M.store m ~addr:(i * 8) ~width:8 i
  done;
  let before = M.copy m in
  M.checkpoint m;
  for i = 0 to 63 do
    M.store m ~addr:(i * 8) ~width:8 (1000 + i)
  done;
  M.rollback m;
  Alcotest.(check bool) "full restore" true (M.equal_guest_state before m)

let suite =
  ( "machine",
    [
      case "registers default to zero" test_regs_default_zero;
      case "little-endian byte memory" test_memory_widths;
      case "checkpoint and rollback" test_checkpoint_rollback;
      case "checkpoint and commit" test_checkpoint_commit;
      case "regions do not nest" test_no_nesting;
      case "deep copy independence" test_copy_independence;
      case "equality ignores optimizer temps" test_equality_ignores_temps;
      case "rollback across many writes" test_rollback_after_many_writes;
    ] )
