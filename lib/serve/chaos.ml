(* Service-level chaos: a seeded, deterministic fault plan.

   Where PR 3's [Verify.Fault] corrupts the guest (alias violations,
   tcache storms), this layer attacks the service itself: worker
   stalls, poisoned requests (a job exception raised before the run),
   and shard flush storms.  Every decision is a pure function of
   (plan seed, request id, attempt number) — each draw builds a fresh
   splitmix stream from the combined key, so decisions are independent
   of worker scheduling and replay bit-for-bit from the seed no matter
   how requests interleave across domains. *)

type config = {
  stall_rate : float;  (* P(worker stalls before the attempt) *)
  stall_s : float;  (* stall duration; wall-clock only *)
  poison_rate : float;  (* P(the attempt raises [Poisoned]) *)
  flush_rate : float;  (* P(the request's own shard is flushed) *)
}

let default_config =
  { stall_rate = 0.02; stall_s = 0.002; poison_rate = 0.05; flush_rate = 0.02 }

let check_rate name r =
  if r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Serve.Chaos: %s not in [0,1]" name)

let check_config c =
  check_rate "stall_rate" c.stall_rate;
  check_rate "poison_rate" c.poison_rate;
  check_rate "flush_rate" c.flush_rate;
  if c.stall_s < 0.0 then invalid_arg "Serve.Chaos: stall_s < 0";
  c

type plan = {
  seed : int;
  config : config;
  stalls : int Atomic.t;
  poisons : int Atomic.t;
  flushes : int Atomic.t;
}

let plan ?(config = default_config) ~seed () =
  {
    seed;
    config = check_config config;
    stalls = Atomic.make 0;
    poisons = Atomic.make 0;
    flushes = Atomic.make 0;
  }

let seed p = p.seed

type event = {
  stall_s : float;  (* 0.0 = no stall *)
  poison : bool;
  flush : bool;
}

let inert = { stall_s = 0.0; poison = false; flush = false }

exception Poisoned of int

let poison_exn ~rid = Poisoned rid

(* Distinct odd multipliers keep (rid, attempt) keys from colliding for
   any realistic request count; splitmix64 scrambles the rest. *)
let draw p ~rid ~attempt =
  let key = p.seed + (rid * 1_000_003) + (attempt * 7919) in
  let g = Verify.Prng.create ~seed:key in
  let c = p.config in
  let stall = Verify.Prng.float g < c.stall_rate in
  let poison = Verify.Prng.float g < c.poison_rate in
  let flush = Verify.Prng.float g < c.flush_rate in
  if stall then Atomic.incr p.stalls;
  if poison then Atomic.incr p.poisons;
  if flush then Atomic.incr p.flushes;
  { stall_s = (if stall then c.stall_s else 0.0); poison; flush }

type counters = { stalls : int; poisons : int; flushes : int }

let counters (p : plan) =
  {
    stalls = Atomic.get p.stalls;
    poisons = Atomic.get p.poisons;
    flushes = Atomic.get p.flushes;
  }
