type kind =
  | Real
  | Extended

type strength =
  | Hard
  | Speculative

type edge = {
  first : int;
  second : int;
  kind : kind;
  strength : strength;
}

type elimination =
  | Load_forwarded of {
      source : int;
      eliminated : int;
    }
  | Store_overwritten of {
      eliminated : int;
      overwriter : int;
    }

type t = {
  all : edge list;
  into : (int, edge list) Hashtbl.t;
}

let strength_of = function
  | May_alias.Must_alias -> Some Hard
  | May_alias.May_alias -> Some Speculative
  | May_alias.No_alias -> None

(* Real dependences: X before Y, may access same memory, >= 1 store. *)
let real_edges ~body ~alias =
  let mems = Array.of_list (List.filter Ir.Instr.is_memory body) in
  let n = Array.length mems in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = mems.(i) and y = mems.(j) in
      if Ir.Instr.is_store x || Ir.Instr.is_store y then
        match strength_of (May_alias.verdict alias x y) with
        | Some strength ->
          acc := { first = x.id; second = y.id; kind = Real; strength } :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

let find_instr body id = List.find_opt (fun (i : Ir.Instr.t) -> i.id = id) body

(* EXTENDED-DEPENDENCE 1: load Z forwarded from X; every intervening
   store Y that may alias X yields Y ->dep X (backward order). *)
let ext_load_forwarded ~alias ~source ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_store y) then None
      else
        match May_alias.verdict alias y source with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Speculative;
            })
    between

(* EXTENDED-DEPENDENCE 2: store X eliminated, overwritten by Z; every
   intervening load Y that may alias Z yields Z ->dep Y. *)
let ext_store_overwritten ~alias ~overwriter ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_load y) then None
      else
        match May_alias.verdict alias overwriter y with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Speculative;
            })
    between

let build ~body ~alias ?(eliminated = []) () =
  let real = real_edges ~body ~alias in
  let ext =
    List.concat_map
      (fun (elim, between) ->
        match elim with
        | Load_forwarded { source; eliminated = _ } ->
          (match find_instr body source with
          | Some src -> ext_load_forwarded ~alias ~source:src ~between
          | None -> [])
        | Store_overwritten { eliminated = _; overwriter } ->
          (match find_instr body overwriter with
          | Some ovw -> ext_store_overwritten ~alias ~overwriter:ovw ~between
          | None -> []))
      eliminated
  in
  (* Deduplicate: an extended edge may coincide with another extended
     edge from a different elimination. *)
  let seen = Hashtbl.create 64 in
  let all =
    List.filter
      (fun e ->
        let key = (e.first, e.second, e.kind) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (real @ ext)
  in
  let into = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let l = Option.value (Hashtbl.find_opt into e.second) ~default:[] in
      Hashtbl.replace into e.second (e :: l))
    all;
  Hashtbl.iter (fun k l -> Hashtbl.replace into k (List.rev l)) (Hashtbl.copy into);
  { all; into }

let edges t = t.all
let edges_into t id = Option.value (Hashtbl.find_opt t.into id) ~default:[]

let mem_dep_pairs t =
  List.filter_map
    (fun e ->
      match e.kind with
      | Real -> Some (e.first, e.second, e.strength)
      | Extended -> None)
    t.all

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%d ->dep %d (%s, %s)@." e.first e.second
        (match e.kind with Real -> "real" | Extended -> "ext")
        (match e.strength with Hard -> "hard" | Speculative -> "spec"))
    t.all
