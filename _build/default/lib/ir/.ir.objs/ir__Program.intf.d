lib/ir/program.mli: Block Format Hashtbl Instr
