test/suite_hw.ml: Alcotest Helpers Hw Ir List
