(** Reference interpreter for guest programs.

    Defines the ground-truth semantics: the dynamic optimization system
    must produce exactly this final architectural state.  Also provides
    block-level stepping for the runtime driver and a superblock tracer
    used as the alias oracle in tests. *)

type stats = {
  mutable instrs_executed : int;
  block_counts : (Ir.Instr.label, int) Hashtbl.t;
}

val fresh_stats : unit -> stats

exception Out_of_fuel

val exec_block :
  ?stats:stats -> Vliw.Machine.t -> Ir.Block.t -> Ir.Instr.label option
(** Execute one basic block; return the next label ([None] = halt). *)

val run :
  ?fuel:int -> ?stats:stats -> Vliw.Machine.t -> Ir.Program.t -> stats
(** Run from the entry to halt.  [fuel] bounds executed instructions
    (default 10,000,000); raises [Out_of_fuel] beyond it. *)

(** Ground-truth trace of one superblock execution, used as the alias
    oracle by tests and by precision experiments. *)
type mem_event = {
  instr_id : int;
  range : Hw.Access.t;
  is_store : bool;
}

type trace = {
  taken_exit : Ir.Instr.label option;  (** label left to, [None] = ran through to [final_exit] *)
  events : mem_event list;  (** memory accesses in original order *)
  executed_ids : int list;  (** all instruction ids executed, in order *)
}

val trace_superblock : Vliw.Machine.t -> Ir.Superblock.t -> trace
(** Executes the superblock body in original program order on the given
    machine (mutating it), recording memory events, stopping at the
    first taken side exit. *)
