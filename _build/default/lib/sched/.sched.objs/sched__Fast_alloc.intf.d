lib/sched/fast_alloc.mli: Analysis Hashtbl
