lib/sched/policy.mli: Ir
