lib/analysis/const_prop.ml: Hashtbl Ir List
