(** Per-phase translation timers.

    One collector accumulates wall-clock seconds per pipeline phase
    (alias analysis, dependence graph, hazard graph + priorities,
    SMARQ allocation setup/finish, list scheduling, region emission)
    plus per-region instruction counts.  The optimizer and scheduler
    thread an optional collector through their phases; when absent,
    timing costs nothing.  Allocation work interleaved with the
    scheduling loop ([Smarq_alloc.on_schedule]) is charged to the
    scheduling phase — only allocator construction and finalization
    land in [alloc_s]. *)

type t = {
  mutable alias_s : float;
  mutable depgraph_s : float;
  mutable hazards_s : float;
  mutable alloc_s : float;
  mutable sched_s : float;
  mutable emit_s : float;
  mutable regions : int;  (** regions translated *)
  mutable instrs : int;  (** total instructions across those regions *)
}

val create : unit -> t

val now : unit -> float
(** [Unix.gettimeofday] — the pipeline's single time source. *)

val time : t option -> (t -> float -> unit) -> (unit -> 'a) -> 'a
(** [time profile add f] runs [f], charging its duration via [add]
    when a collector is present. *)

val add_alias : t -> float -> unit
val add_depgraph : t -> float -> unit
val add_hazards : t -> float -> unit
val add_alloc : t -> float -> unit
val add_sched : t -> float -> unit
val add_emit : t -> float -> unit
val note_region : t -> instrs:int -> unit
val total : t -> float
val accumulate : into:t -> t -> unit
val reset : t -> unit
