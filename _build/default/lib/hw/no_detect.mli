(** The null detector: no hardware alias detection at all.

    With this unit installed the optimizer cannot speculate across
    may-alias memory operations; it is the baseline of Figure 15. *)

val detector : unit -> Detector.t
