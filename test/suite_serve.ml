(* The translation service and its parts.

   - Percentiles: exact nearest-rank quantiles, merge, summaries.
   - The long-running pool: every accepted job drains on shutdown,
     shutdown is idempotent (sequential and concurrent), submission
     after shutdown raises, worker indices are in range.
   - Shards: a sharded cache with cross-shard invalidation observes the
     same telemetry as the same operations on independent per-(tenant,
     worker) stores (QCheck), and a tenant's eviction storm cannot
     evict another tenant's translations (budget isolation).
   - The server: matrix-via-service is bit-identical to the batch
     matrix (the fig15 seed matrix by cycle count, a small matrix by
     full stats and final guest state); admission control rejects
     deterministically and counts rejections apart from errors; tenant
     shards keep translations hot across requests; per-request fault
     campaigns replay deterministically. *)

open Helpers

(* ---- Runtime.Percentiles ---- *)

let test_percentiles_empty () =
  let p = Runtime.Percentiles.create () in
  Alcotest.(check int) "count" 0 (Runtime.Percentiles.count p);
  Alcotest.(check (float 0.0)) "p50 of empty" 0.0
    (Runtime.Percentiles.percentile p 0.5);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Runtime.Percentiles.mean p)

let test_percentiles_nearest_rank () =
  let p = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add p) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let q v = Runtime.Percentiles.percentile p v in
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (q 0.0);
  Alcotest.(check (float 0.0)) "p50 is median" 3.0 (q 0.5);
  Alcotest.(check (float 0.0)) "p95 is max of 5" 5.0 (q 0.95);
  Alcotest.(check (float 0.0)) "p100 is max" 5.0 (q 1.0);
  Alcotest.(check (float 0.0)) "total" 15.0 (Runtime.Percentiles.total p);
  (* adding after a query must invalidate the cached sorted view *)
  Runtime.Percentiles.add p 10.0;
  Alcotest.(check (float 0.0)) "new max visible" 10.0 (q 1.0);
  Alcotest.(check int) "count" 6 (Runtime.Percentiles.count p);
  (* even count: nearest rank picks the lower middle *)
  let e = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add e) [ 4.0; 1.0; 3.0; 2.0 ];
  Alcotest.(check (float 0.0)) "even-count median" 2.0
    (Runtime.Percentiles.percentile e 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Percentiles.percentile: q not in [0,1]") (fun () ->
      ignore (Runtime.Percentiles.percentile e 1.5))

let test_percentiles_merge_summary () =
  let a = Runtime.Percentiles.create () in
  let b = Runtime.Percentiles.create () in
  List.iter (Runtime.Percentiles.add a) [ 1.0; 2.0 ];
  List.iter (Runtime.Percentiles.add b) [ 30.0; 40.0 ];
  Runtime.Percentiles.merge ~into:a b;
  Alcotest.(check int) "merged count" 4 (Runtime.Percentiles.count a);
  let s = Runtime.Percentiles.summary a in
  Alcotest.(check int) "summary n" 4 s.Runtime.Percentiles.n;
  Alcotest.(check (float 0.0)) "summary min" 1.0 s.Runtime.Percentiles.min_v;
  Alcotest.(check (float 0.0)) "summary max" 40.0 s.Runtime.Percentiles.max_v;
  Alcotest.(check (float 0.0)) "summary p50" 2.0 s.Runtime.Percentiles.p50;
  Alcotest.(check (float 1e-9)) "summary mean" 18.25
    s.Runtime.Percentiles.mean_v

(* ---- Exec.Pool: the long-running pool ---- *)

let test_pool_drains_on_shutdown () =
  let pool = Exec.Pool.create ~domains:3 () in
  let done_count = Atomic.make 0 in
  let bad_worker = Atomic.make 0 in
  for _ = 1 to 50 do
    Exec.Pool.submit pool (fun worker ->
        if worker < 0 || worker >= Exec.Pool.size pool then
          Atomic.incr bad_worker;
        (* a little work so jobs are still queued when shutdown starts *)
        ignore (Digest.string (String.make 200 'x'));
        Atomic.incr done_count)
  done;
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "all jobs drained" 50 (Atomic.get done_count);
  Alcotest.(check int) "worker indices in range" 0 (Atomic.get bad_worker);
  Alcotest.(check int) "no failed jobs" 0 (Exec.Pool.failed_jobs pool)

let test_pool_shutdown_idempotent () =
  let pool = Exec.Pool.create ~domains:2 () in
  let done_count = Atomic.make 0 in
  for _ = 1 to 20 do
    Exec.Pool.submit pool (fun _ -> Atomic.incr done_count)
  done;
  (* a concurrent second shutdown must block until the same drain
     completes, not crash or double-join *)
  let racer = Domain.spawn (fun () -> Exec.Pool.shutdown pool) in
  Exec.Pool.shutdown pool;
  Domain.join racer;
  (* and a later third call is a no-op *)
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "all jobs drained" 20 (Atomic.get done_count);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Exec.Pool.submit: pool is shut down") (fun () ->
      Exec.Pool.submit pool (fun _ -> ()))

let test_pool_failed_jobs_counted () =
  let pool = Exec.Pool.create ~domains:2 () in
  let done_count = Atomic.make 0 in
  for i = 1 to 10 do
    Exec.Pool.submit pool (fun _ ->
        if i mod 2 = 0 then failwith "boom" else Atomic.incr done_count)
  done;
  Exec.Pool.shutdown pool;
  Alcotest.(check int) "good jobs ran" 5 (Atomic.get done_count);
  Alcotest.(check int) "failures counted" 5 (Exec.Pool.failed_jobs pool)

(* ---- Serve.Shards vs independent stores ---- *)

type shard_op =
  | Find of string * int * string  (* tenant, worker, label *)
  | Insert of string * int * string * int  (* + size *)
  | Invalidate_all of string  (* cross-shard *)
  | Flush_all

let pp_shard_op = function
  | Find (t, w, l) -> Printf.sprintf "find %s/%d %s" t w l
  | Insert (t, w, l, s) -> Printf.sprintf "insert %s/%d %s size=%d" t w l s
  | Invalidate_all l -> Printf.sprintf "invalidate* %s" l
  | Flush_all -> "flush*"

let gen_shard_op =
  let open QCheck.Gen in
  let tenant = oneofl [ "a"; "b"; "c" ] in
  let worker = int_range 0 2 in
  let label = map (Printf.sprintf "L%d") (int_range 0 5) in
  frequency
    [
      (4, map3 (fun t w l -> Find (t, w, l)) tenant worker label);
      ( 4,
        map3 (fun t w (l, s) -> Insert (t, w, l, s)) tenant worker
          (pair label (int_range 1 10)) );
      (1, map (fun l -> Invalidate_all l) label);
      (1, return Flush_all);
    ]

let arb_shard_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_shard_op ops))
    QCheck.Gen.(list_size (int_range 1 120) gen_shard_op)

let telemetry_fields t = Smarq.Tcache.Telemetry.fields t

(* the same operations applied to the sharded container and to a flat
   dictionary of independent stores must observe identical telemetry,
   aggregate and per tenant *)
let shards_match_independent_stores ops =
  let budget = 16 in
  let sharded =
    Serve.Shards.create ~tenant_budget:budget
      ~ops:(Serve.Shards.store_ops ~policy:Smarq.Tcache.Policy.Lru)
      ()
  in
  let independent : (string * int, int Smarq.Tcache.Store.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let model ~tenant ~worker =
    match Hashtbl.find_opt independent (tenant, worker) with
    | Some s -> s
    | None ->
      let s =
        Smarq.Tcache.Store.create ~capacity:budget
          ~policy:Smarq.Tcache.Policy.Lru ()
      in
      Hashtbl.replace independent (tenant, worker) s;
      s
  in
  List.iter
    (fun op ->
      match op with
      | Find (tenant, worker, l) ->
        ignore
          (Smarq.Tcache.Store.find (Serve.Shards.shard sharded ~tenant ~worker) l);
        ignore (Smarq.Tcache.Store.find (model ~tenant ~worker) l)
      | Insert (tenant, worker, l, size) ->
        Smarq.Tcache.Store.insert
          (Serve.Shards.shard sharded ~tenant ~worker)
          l ~size 0;
        Smarq.Tcache.Store.insert (model ~tenant ~worker) l ~size 0
      | Invalidate_all l ->
        Serve.Shards.invalidate sharded l;
        Hashtbl.iter
          (fun _ s -> Smarq.Tcache.Store.invalidate s l)
          independent
      | Flush_all ->
        Serve.Shards.flush sharded;
        Hashtbl.iter (fun _ s -> Smarq.Tcache.Store.flush s) independent)
    ops;
  let sum_independent ?tenant () =
    let acc = Smarq.Tcache.Telemetry.create () in
    Hashtbl.iter
      (fun (ten, _) s ->
        if match tenant with None -> true | Some t -> t = ten then
          Smarq.Tcache.Telemetry.add ~into:acc (Smarq.Tcache.Store.telemetry s))
      independent;
    acc
  in
  telemetry_fields (Serve.Shards.telemetry sharded)
  = telemetry_fields (sum_independent ())
  && List.for_all
       (fun tenant ->
         telemetry_fields (Serve.Shards.telemetry ~tenant sharded)
         = telemetry_fields (sum_independent ~tenant ()))
       [ "a"; "b"; "c" ]

let test_tenant_budget_isolation () =
  let shards =
    Serve.Shards.create ~tenant_budget:20
      ~ops:(Serve.Shards.store_ops ~policy:Smarq.Tcache.Policy.Lru)
      ()
  in
  let quiet = Serve.Shards.shard shards ~tenant:"quiet" ~worker:0 in
  Smarq.Tcache.Store.insert quiet "hot" ~size:10 0;
  (* a noisy tenant overflows its own budget many times over *)
  let noisy = Serve.Shards.shard shards ~tenant:"noisy" ~worker:0 in
  for i = 0 to 19 do
    Smarq.Tcache.Store.insert noisy (Printf.sprintf "n%d" i) ~size:10 0
  done;
  let noisy_t = Serve.Shards.telemetry ~tenant:"noisy" shards in
  let quiet_t = Serve.Shards.telemetry ~tenant:"quiet" shards in
  Alcotest.(check bool)
    "noisy tenant evicted" true
    (noisy_t.Smarq.Tcache.Telemetry.evictions > 0);
  Alcotest.(check int) "quiet tenant untouched" 0
    quiet_t.Smarq.Tcache.Telemetry.evictions;
  Alcotest.(check bool)
    "quiet translation still resident" true
    (Smarq.Tcache.Store.mem quiet "hot")

(* ---- matrix via the service == batch matrix ---- *)

let test_serve_matrix_small_bit_identical () =
  let batch = Exec.Matrix.run_matrix ~domains:2 (Suite_exec.small_matrix ()) in
  let served = Serve.Server.run_matrix ~domains:3 (Suite_exec.small_matrix ()) in
  Alcotest.(check int) "same length" (List.length batch) (List.length served);
  List.iter2
    (fun (a : Exec.Matrix.outcome) (b : Exec.Matrix.outcome) ->
      let label = a.Exec.Matrix.job.Exec.Matrix.label in
      Alcotest.(check string) "same label" label
        b.Exec.Matrix.job.Exec.Matrix.label;
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical stats" label)
        true
        (Suite_exec.strip_wall a.Exec.Matrix.result.Runtime.Driver.stats
        = Suite_exec.strip_wall b.Exec.Matrix.result.Runtime.Driver.stats);
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical final state" label)
        true
        (Vliw.Machine.equal_guest_state
           a.Exec.Matrix.result.Runtime.Driver.machine
           b.Exec.Matrix.result.Runtime.Driver.machine))
    batch served

let test_serve_matrix_fig15_seed_cycles () =
  let jobs =
    List.map
      (fun (bench, scheme, _) ->
        Exec.Matrix.of_bench ~scale:5 ~scheme (Workload.Specfp.find bench))
      Suite_exec.fig15_seed_reference
  in
  let outcomes = Serve.Server.run_matrix jobs in
  List.iter2
    (fun (bench, scheme, cycles) (o : Exec.Matrix.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "%s/%s cycles via service" bench
           (Smarq.Scheme.name scheme))
        cycles
        o.Exec.Matrix.result.Runtime.Driver.stats.Runtime.Stats.total_cycles)
    Suite_exec.fig15_seed_reference outcomes

(* ---- the server proper ---- *)

let one_job () =
  Exec.Matrix.of_bench ~scale:1 ~scheme:(Smarq.Scheme.Smarq 64)
    (Workload.Specfp.find "wupwise")

let test_serve_admission_control () =
  (* batch=2 parks the first request in a partial batch, so the second
     submission deterministically finds the queue full *)
  let config =
    { Serve.Server.default_config with domains = 1; queue_limit = 1; batch = 2 }
  in
  let server = Serve.Server.create ~config () in
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None }
  in
  let t1 =
    match Serve.Server.submit server rq with
    | `Accepted t -> t
    | `Rejected -> Alcotest.fail "first submission rejected"
  in
  (match Serve.Server.submit server rq with
  | `Rejected -> ()
  | `Accepted _ -> Alcotest.fail "queue_limit not enforced");
  Alcotest.(check int) "inflight" 1 (Serve.Server.inflight server);
  Serve.Server.flush server;
  let reply = Serve.Server.await t1 in
  Alcotest.(check bool) "request succeeded" true
    (Result.is_ok reply.Serve.Server.result);
  Serve.Server.shutdown server;
  let r = Serve.Server.report server in
  Alcotest.(check int) "accepted" 1 r.Serve.Server.submitted;
  Alcotest.(check int) "completed" 1 r.Serve.Server.completed;
  Alcotest.(check int) "rejected counted apart" 1 r.Serve.Server.rejected;
  Alcotest.(check int) "no errors" 0 r.Serve.Server.errors;
  Alcotest.(check int) "latency samples" 1
    r.Serve.Server.total.Runtime.Percentiles.n

let test_serve_shared_cache_reuse () =
  let config = { Serve.Server.default_config with domains = 1 } in
  let server = Serve.Server.create ~config () in
  let rq =
    { Serve.Server.tenant = "t0"; job = one_job (); shared_cache = true;
      fault = None }
  in
  let submit () =
    match Serve.Server.submit server rq with
    | `Accepted t -> Serve.Server.await t
    | `Rejected -> Alcotest.fail "rejected"
  in
  let first = submit () in
  let second = submit () in
  Serve.Server.shutdown server;
  let stats_of (r : Serve.Server.reply) =
    match r.Serve.Server.result with
    | Ok res -> res.Runtime.Driver.stats
    | Error e -> raise e
  in
  (* the first run populates the tenant shard; the second finds its hot
     regions already translated *)
  Alcotest.(check bool) "first run translates" true
    ((stats_of first).Runtime.Stats.regions_built > 0);
  Alcotest.(check int) "second run retranslates nothing" 0
    (stats_of second).Runtime.Stats.regions_built;
  Alcotest.(check bool) "second run hits the shard" true
    ((stats_of second).Runtime.Stats.tcache_hits > 0);
  Alcotest.(check int) "one shard" 1 (Serve.Server.shard_count server);
  let telem = Serve.Server.shards_telemetry server in
  Alcotest.(check bool) "shard telemetry saw the hits" true
    (telem.Smarq.Tcache.Telemetry.hits > 0);
  (* a warm shard changes the cost, never the answer: run 2 skips the
     cold interpret-and-profile phase (fewer simulated cycles) but must
     land on the same final guest state *)
  Alcotest.(check bool) "warm run is no slower" true
    ((stats_of second).Runtime.Stats.total_cycles
    <= (stats_of first).Runtime.Stats.total_cycles);
  let machine_of (r : Serve.Server.reply) =
    match r.Serve.Server.result with
    | Ok res -> res.Runtime.Driver.machine
    | Error e -> raise e
  in
  Alcotest.(check bool) "same final guest state" true
    (Vliw.Machine.equal_guest_state (machine_of first) (machine_of second))

let test_serve_fault_passthrough_deterministic () =
  let run_campaign () =
    let config = { Serve.Server.default_config with domains = 1 } in
    let server = Serve.Server.create ~config () in
    let replies =
      List.init 4 (fun _ ->
          let rq =
            {
              Serve.Server.tenant = "t0";
              job = one_job ();
              shared_cache = true;
              fault = Some { Serve.Server.fault_seed = 5; fault_rate = 0.3 };
            }
          in
          match Serve.Server.submit server rq with
          | `Accepted t -> Serve.Server.await t
          | `Rejected -> Alcotest.fail "rejected")
    in
    Serve.Server.shutdown server;
    let r = Serve.Server.report server in
    (replies, r)
  in
  let replies1, report1 = run_campaign () in
  let replies2, report2 = run_campaign () in
  Alcotest.(check int) "no errors" 0 report1.Serve.Server.errors;
  Alcotest.(check bool) "faults actually injected" true
    (report1.Serve.Server.injected_faults > 0);
  Alcotest.(check int) "campaign injects deterministically"
    report1.Serve.Server.injected_faults report2.Serve.Server.injected_faults;
  List.iter2
    (fun (a : Serve.Server.reply) (b : Serve.Server.reply) ->
      Alcotest.(check int) "per-request injection count"
        a.Serve.Server.injected b.Serve.Server.injected;
      match (a.Serve.Server.result, b.Serve.Server.result) with
      | Ok ra, Ok rb ->
        Alcotest.(check bool) "per-request stats replay" true
          (Suite_exec.strip_wall ra.Runtime.Driver.stats
          = Suite_exec.strip_wall rb.Runtime.Driver.stats)
      | _ -> Alcotest.fail "request errored")
    replies1 replies2;
  (* distinct requests get distinct campaigns (seed + sequence number):
     at rate 0.3 four identical runs injecting identically would mean
     the per-request derivation is broken *)
  let counts =
    List.map (fun (r : Serve.Server.reply) -> r.Serve.Server.injected) replies1
  in
  Alcotest.(check bool) "per-request campaigns differ" true
    (List.sort_uniq compare counts <> [ List.hd counts ]
    || List.length (List.sort_uniq compare counts) > 1)

let test_loadgen_closed_loop () =
  let config =
    { Serve.Server.default_config with domains = 2; queue_limit = 8 }
  in
  let server = Serve.Server.create ~config () in
  let spec =
    {
      Serve.Loadgen.mode = Serve.Loadgen.Closed { clients = 4 };
      requests = 8;
      tenants = 2;
      shared_cache = true;
      fault = None;
      jobs = [| one_job () |];
    }
  in
  let res = Serve.Loadgen.run server spec in
  Serve.Server.shutdown server;
  let r = res.Serve.Loadgen.report in
  Alcotest.(check int) "all completed" 8 r.Serve.Server.completed;
  Alcotest.(check int) "none rejected" 0 r.Serve.Server.rejected;
  Alcotest.(check int) "no errors" 0 r.Serve.Server.errors;
  Alcotest.(check bool) "throughput measured" true
    (res.Serve.Loadgen.throughput_rps > 0.0);
  Alcotest.(check int) "a latency sample per request" 8
    r.Serve.Server.queue_wait.Runtime.Percentiles.n;
  (* two tenants on up to two workers *)
  Alcotest.(check bool) "tenant shards created" true
    (Serve.Server.shard_count server >= 2)

let suite =
  ( "serve",
    [
      case "percentiles: empty" test_percentiles_empty;
      case "percentiles: nearest rank" test_percentiles_nearest_rank;
      case "percentiles: merge and summary" test_percentiles_merge_summary;
      case "pool: drains on shutdown" test_pool_drains_on_shutdown;
      case "pool: shutdown idempotent" test_pool_shutdown_idempotent;
      case "pool: failed jobs counted" test_pool_failed_jobs_counted;
      qcase ~count:200 "shards == independent stores (telemetry)"
        arb_shard_ops shards_match_independent_stores;
      case "shards: tenant eviction budgets isolate" test_tenant_budget_isolation;
      case "serve matrix == batch matrix (small, full stats)"
        test_serve_matrix_small_bit_identical;
      case "serve matrix: fig15 seed cycles (scale 5)"
        test_serve_matrix_fig15_seed_cycles;
      case "server: admission control" test_serve_admission_control;
      case "server: tenant shard reuse" test_serve_shared_cache_reuse;
      case "server: per-request fault campaigns replay"
        test_serve_fault_passthrough_deterministic;
      case "loadgen: closed loop" test_loadgen_closed_loop;
    ] )
