(** Alias-register allocation constraints (Sections 4 and 5.1).

    A check-constraint [X ->check Y] means X must check Y's alias
    register at runtime, which under the ordered-detection rule forces
    [order(X) <= order(Y)].  An anti-constraint [X ->anti Y] means Y
    must {e not} check X, forcing [order(X) < order(Y)].  Together they
    form the constraint graph the allocator traverses in topological
    order, and this module also provides the validator the test suite
    uses against any completed allocation. *)

type kind =
  | Check  (** order(first) <= order(second) *)
  | Anti  (** order(first) < order(second) *)

type edge = {
  first : int;
  second : int;
  kind : kind;
}

type allocation = {
  order : (int, int) Hashtbl.t;  (** instr id -> register order *)
  base : (int, int) Hashtbl.t;  (** instr id -> BASE at its execution *)
  p_bit : (int, unit) Hashtbl.t;
  c_bit : (int, unit) Hashtbl.t;
}

val empty_allocation : unit -> allocation

val offset : allocation -> int -> int option
(** [order - base] for an allocated instruction. *)

val validate :
  allocation -> edges:edge list -> ar_count:int -> (unit, string list) result
(** Checks the REGISTER-ALLOCATION-RULE for every edge, the
    [order = base + offset >= base] window discipline, and that no
    offset reaches [ar_count].  Returns all violations. *)

val has_cycle : edge list -> bool
(** True iff the constraint graph contains a directed cycle. *)

val cycle_edges : edge list -> ids:int list -> edge list
(** The edges remaining after iteratively stripping in-degree-zero
    nodes — a witness of the cyclic core ([[]] iff acyclic over
    [ids]).  Used for structured allocation-failure reports. *)

val topological_order : edge list -> ids:int list -> int list option
(** A topological order of [ids] under the edges ([None] on cycle);
    ties broken by ascending id for determinism. *)

val pp_edge : Format.formatter -> edge -> unit
