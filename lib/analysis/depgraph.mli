(** Memory dependences over a superblock body (Section 4.1 of the
    paper), including the extended dependences introduced by
    speculative load/store elimination.

    A {e real} dependence [X ->dep Y] exists when X precedes Y in the
    original program order, they may (or must) access the same memory,
    and at least one of them is a store.  Dependence strength mirrors
    the may-alias verdict: must-alias dependences are hard scheduling
    edges; may-alias dependences are the speculation candidates that
    the alias hardware checks.

    {e Extended} dependences run against the original order: when a
    load Z is eliminated by forwarding from X, every intervening store
    Y that may alias X yields [Y ->dep X]; when a store X is eliminated
    because a later store Z overwrites it, every intervening load Y
    that may alias Z yields [Z ->dep Y].  Intervening stores are
    deliberately excluded from the latter — a store between X and Z is
    itself overwritten by Z, so it never observes the elimination.

    Whatever the scheduler does with the pair, SMARQ's constraint
    machinery then guarantees that one of the two operations checks the
    other at runtime. *)

type kind =
  | Real  (** program-order memory dependence *)
  | Extended  (** introduced by a speculative elimination *)

type strength =
  | Hard  (** must-alias: the scheduler may never reorder the pair *)
  | Speculative  (** may-alias: reorderable under hardware detection *)

(** [first ->dep second]: the pair must be alias-checked unless the
    schedule provably preserves safety.  For [Real] edges [first]
    precedes [second] in the original order; for [Extended] edges it is
    the reverse. *)
type edge = {
  first : int;  (** instruction id *)
  second : int;
  kind : kind;
  strength : strength;
}

(** An elimination event reported by the optimizer. *)
type elimination =
  | Load_forwarded of {
      source : int;  (** X: forwarding source (load or store) *)
      eliminated : int;  (** Z: the removed load's original id *)
    }
  | Store_overwritten of {
      eliminated : int;  (** X: the removed store's original id *)
      overwriter : int;  (** Z: the later store *)
    }

type t

val build :
  body:Ir.Instr.t list ->
  alias:May_alias.t ->
  ?eliminated:(elimination * Ir.Instr.t list) list ->
  ?reference:bool ->
  ?arena:Arena.t ->
  unit ->
  t
(** [body] is the post-elimination superblock body in original order.
    Each elimination comes with the {e original} instruction list
    between the two endpoints (needed because eliminated instructions
    are no longer in [body]).

    By default real dependences are built by the near-linear swept
    builder (bucket memory operations by base-register generation;
    decide within-bucket pairs with a displacement-sorted interval
    sweep; enumerate cross-bucket pairs output-sensitively).
    [~reference:true] selects the seed O(n{^ 2}) pairwise builder
    instead; both produce the same edge list in the same order, and the
    test suite checks them against each other.

    [?arena] lends the swept builder reusable scratch buffers (see
    {!Arena}); the resulting graph never aliases arena storage. *)

val edges : t -> edge list

val edges_into : t -> int -> edge list
(** Edges whose [second] is the given instruction id — the set the
    allocator examines when that instruction is scheduled. *)

val mem_dep_pairs : t -> (int * int * strength) list
(** Real dependences as (earlier, later, strength) in original order,
    for the scheduler. *)

(** {2 Allocation-free traversal}

    The iterators walk the flat edge store directly, in the same order
    the list accessors above materialize; hot consumers (the hazard
    builder, the alias-register allocators) use these so the per-edge
    records never exist. *)

val iter_edges :
  t ->
  (first:int -> second:int -> kind:kind -> strength:strength -> unit) ->
  unit

val iter_into :
  t ->
  int ->
  (first:int -> second:int -> kind:kind -> strength:strength -> unit) ->
  unit
(** Edges whose [second] is the given id, in [edges_into] order. *)

val iter_mem_deps :
  t -> (first:int -> second:int -> strength:strength -> unit) -> unit
(** Real dependences only, in [mem_dep_pairs] order. *)

val pp : Format.formatter -> t -> unit
