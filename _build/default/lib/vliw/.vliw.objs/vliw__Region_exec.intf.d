lib/vliw/region_exec.mli: Cache Config Hw Ir Machine
