lib/sched/hazards.ml: Analysis Array Hashtbl Ir List Option Policy
