lib/ir/reg.ml: Format Int List Map Printf Set
