type entry = {
  range : Access.t;
  setter : int;
  set_by_load : bool;
}

type t = {
  qsize : int;
  mutable qbase : int;
  (* live entries keyed by logical order = base-at-set + offset *)
  entries : (int, entry) Hashtbl.t;
  mutable checks : int;
}

let create ~size =
  if size <= 0 then invalid_arg "Queue.create: size must be positive";
  { qsize = size; qbase = 0; entries = Hashtbl.create (size * 2); checks = 0 }

let size t = t.qsize
let base t = t.qbase

let reset t =
  t.qbase <- 0;
  Hashtbl.reset t.entries

let checks_performed t = t.checks

let check_offset t offset ~what =
  if offset < 0 || offset >= t.qsize then
    invalid_arg
      (Printf.sprintf
         "Queue.%s: offset %d outside alias register window of %d (software \
          overflow bug)"
         what offset t.qsize)

let rotate t n =
  if n < 0 then invalid_arg "Queue.rotate: negative rotation";
  t.qbase <- t.qbase + n;
  (* entries whose order slid below the new BASE are freed *)
  let stale =
    Hashtbl.fold
      (fun order _ acc -> if order < t.qbase then order :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

let amov t ~src ~dst =
  check_offset t src ~what:"amov";
  check_offset t dst ~what:"amov";
  let src_order = t.qbase + src and dst_order = t.qbase + dst in
  match Hashtbl.find_opt t.entries src_order with
  | None -> Hashtbl.remove t.entries dst_order
  | Some e ->
    Hashtbl.remove t.entries src_order;
    if src <> dst then Hashtbl.replace t.entries dst_order e

(* Check every set register at-or-after [my_order] against [range];
   loads skip registers set by loads. *)
let run_checks t ~checker ~is_load ~my_order ~range =
  let conflict =
    Hashtbl.fold
      (fun order e acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if order >= my_order && not (is_load && e.set_by_load) then begin
            t.checks <- t.checks + 1;
            if Access.overlap e.range range then Some e else None
          end
          else acc)
      t.entries None
  in
  match conflict with
  | None -> Ok ()
  | Some e ->
    Error
      Detector.{ checker; setter = e.setter; false_positive_prone = false }

let on_mem t (instr : Ir.Instr.t) range =
  match Ir.Instr.annot instr with
  | Ir.Annot.Queue { offset; p; c } ->
    check_offset t offset ~what:"on_mem";
    let my_order = t.qbase + offset in
    let is_load = Ir.Instr.is_load instr in
    let result =
      if c then
        run_checks t ~checker:instr.id ~is_load ~my_order ~range
      else Ok ()
    in
    (match result with
    | Error _ as e -> e
    | Ok () ->
      if p then
        Hashtbl.replace t.entries my_order
          { range; setter = instr.id; set_by_load = is_load };
      Ok ())
  | Ir.Annot.No_annot | Ir.Annot.Mask _ | Ir.Annot.Alat _ -> Ok ()

let live_entries t =
  Hashtbl.fold
    (fun order e acc -> (order, e.range, e.setter) :: acc)
    t.entries []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let caps size =
  Detector.
    {
      scheme = "ordered queue";
      scalable = true;
      false_positives = false;
      detects_store_store = true;
      max_registers = Some size;
    }

let detector t =
  Detector.
    {
      name = Printf.sprintf "smarq%d" t.qsize;
      caps = caps t.qsize;
      reset = (fun () -> reset t);
      on_mem = (fun i r -> on_mem t i r);
      on_rotate = (fun n -> rotate t n);
      on_amov = (fun ~src ~dst -> amov t ~src ~dst);
      checks_performed = (fun () -> checks_performed t);
    }
