lib/ir/region.ml: Array Format Instr List Superblock
