(* Differential tests for the O(n log n) translation pipeline: the
   swept dependence builder, the reduced hazard graph, and the heap
   scheduler must be indistinguishable from the seed implementations —
   identical edge lists for the depgraph, identical reachability for
   hazards, and bit-identical schedules (hence guest state and cycle
   counts) end to end. *)

open Helpers
module I = Ir.Instr

let params_gen =
  QCheck.Gen.(
    let* n_instrs = int_range 10 120 in
    let* mem_fraction = float_range 0.2 0.8 in
    let* store_fraction = float_range 0.1 0.7 in
    let* n_bases = int_range 1 6 in
    let* collide_fraction = float_range 0.0 0.5 in
    let* exits = opt (int_range 6 20) in
    return
      Workload.Genprog.
        {
          n_instrs;
          mem_fraction;
          store_fraction;
          n_bases;
          collide_fraction;
          side_exit_every = exits;
        })

let sb_arb =
  QCheck.make
    ~print:(fun (seed, p) ->
      Printf.sprintf "seed=%d n=%d mem=%.2f st=%.2f bases=%d collide=%.2f"
        seed p.Workload.Genprog.n_instrs p.Workload.Genprog.mem_fraction
        p.Workload.Genprog.store_fraction p.Workload.Genprog.n_bases
        p.Workload.Genprog.collide_fraction)
    QCheck.Gen.(pair (int_bound 1_000_000) params_gen)

(* Seed some recorded alias pairs so the swept builder's out-of-band
   known-pair pass is exercised, including same-bucket disjoint pairs
   that neither sweep would otherwise visit. *)
let known_pairs_of ~seed body =
  let mems = List.filter I.is_memory body in
  let ids = List.map (fun (i : I.t) -> i.I.id) mems in
  match ids with
  | a :: b :: c :: d :: _ when seed land 1 = 0 -> [ (a, d); (b, c) ]
  | a :: _ :: b :: _ when seed land 3 = 1 -> [ (b, a) ]
  | _ -> []

let depgraphs_of (seed, params) =
  let sb, _ = Workload.Genprog.superblock ~seed ~params in
  let body = sb.Ir.Superblock.body in
  let known_alias = known_pairs_of ~seed body in
  let const_facts = Analysis.Const_prop.analyze ~body in
  let alias = Analysis.May_alias.analyze ~known_alias ~const_facts ~body () in
  let fast = Analysis.Depgraph.build ~body ~alias () in
  let slow = Analysis.Depgraph.build ~body ~alias ~reference:true () in
  (body, fast, slow)

(* The swept builder must reproduce the pairwise builder's edge list
   exactly — same pairs, same strengths, same order. *)
let prop_depgraph_equal input =
  let _, fast, slow = depgraphs_of input in
  let pr d =
    Format.asprintf "%a" Analysis.Depgraph.pp d |> fun s ->
    if String.length s > 2000 then String.sub s 0 2000 else s
  in
  if Analysis.Depgraph.edges fast = Analysis.Depgraph.edges slow then true
  else
    QCheck.Test.fail_reportf "swept/reference mismatch@.fast:@.%s@.ref:@.%s"
      (pr fast) (pr slow)

(* edges_into must agree per target id as well (the allocator's view). *)
let prop_edges_into_equal input =
  let body, fast, slow = depgraphs_of input in
  List.for_all
    (fun (i : I.t) ->
      Analysis.Depgraph.edges_into fast i.I.id
      = Analysis.Depgraph.edges_into slow i.I.id)
    body

(* The reduced hazard graph (two-edge exit fences + transitive
   reduction) must have exactly the seed graph's transitive closure,
   and its edges must be a subset of the seed closure. *)
let hazards_of ~policy (seed, params) =
  let sb, _ = Workload.Genprog.superblock ~seed ~params in
  let body = sb.Ir.Superblock.body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let fast = Sched.Hazards.build ~sb ~deps ~policy () in
  let slow = Sched.Hazards.build ~sb ~deps ~policy ~reference:true () in
  (body, fast, slow)

let closure h body =
  (* reachable-from sets by id, memoized in reverse body order (the
     graph only runs forward in body position) *)
  let reach : (int, unit) Hashtbl.t array =
    Array.make (List.length body) (Hashtbl.create 0)
  in
  let index = Hashtbl.create 64 in
  List.iteri (fun p (i : I.t) -> Hashtbl.replace index i.I.id p) body;
  let arr = Array.of_list body in
  for p = Array.length arr - 1 downto 0 do
    let t = Hashtbl.create 8 in
    List.iter
      (fun sid ->
        Hashtbl.replace t sid ();
        Hashtbl.iter
          (fun x () -> Hashtbl.replace t x ())
          reach.(Hashtbl.find index sid))
      (Sched.Hazards.succs h arr.(p).I.id);
    reach.(p) <- t
  done;
  fun a b ->
    match Hashtbl.find_opt index a with
    | Some p -> Hashtbl.mem reach.(p) b
    | None -> false

let prop_hazard_closure_equal (seed, params) =
  List.for_all
    (fun policy ->
      let body, fast, slow = hazards_of ~policy (seed, params) in
      let fast_reaches = closure fast body and slow_reaches = closure slow body in
      List.for_all
        (fun (a : I.t) ->
          List.for_all
            (fun (b : I.t) ->
              fast_reaches a.I.id b.I.id = slow_reaches a.I.id b.I.id)
            body)
        body)
    [ Sched.Policy.smarq ~ar_count:64; Sched.Policy.none () ]

(* Every edge the reduced builder keeps exists in the seed graph too:
   reduction and reduced fences only ever remove redundancy, never
   invent precedence. *)
let prop_reduced_edges_subset (seed, params) =
  let body, fast, slow =
    hazards_of ~policy:(Sched.Policy.smarq ~ar_count:64) (seed, params)
  in
  let slow_reaches = closure slow body in
  List.for_all
    (fun (a : I.t) ->
      List.for_all
        (fun sid -> slow_reaches a.I.id sid)
        (Sched.Hazards.succs fast a.I.id))
    body

(* dropped is normalized — ascending (first, second), duplicate-free —
   and agrees with the reference builder's set. *)
let prop_dropped_normalized (seed, params) =
  let _, fast, slow =
    hazards_of ~policy:(Sched.Policy.smarq ~ar_count:64) (seed, params)
  in
  let d = Sched.Hazards.(fast.dropped) in
  let sorted_nodup = List.sort_uniq compare d = d in
  sorted_nodup
  && List.sort_uniq compare Sched.Hazards.(slow.dropped) = d

(* End to end through the full dynamic system: for every scheme, the
   fast and reference pipelines must agree on the final guest state AND
   on every deterministic statistic — total cycles above all. *)
let prog_arb =
  QCheck.make
    ~print:(fun (seed, loops, iters) ->
      Printf.sprintf "seed=%d loops=%d iters=%d" seed loops iters)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 60 200))

let strip_timing (st : Runtime.Stats.t) =
  {
    st with
    Runtime.Stats.wall_seconds = 0.0;
    translate = Runtime.Profile.create ();
  }

let prop_pipelines_bit_identical (seed, loops, iters) =
  let program = Workload.Genprog.program ~seed ~n_loops:loops ~iters in
  List.for_all
    (fun scheme ->
      let run pipeline =
        Smarq.run_program ~fuel:50_000_000 ~pipeline ~scheme program
      in
      let fast = run Sched.Pipeline.Fast
      and slow = run Sched.Pipeline.Reference in
      Vliw.Machine.equal_guest_state fast.Runtime.Driver.machine
        slow.Runtime.Driver.machine
      && strip_timing fast.Runtime.Driver.stats
         = strip_timing slow.Runtime.Driver.stats)
    [
      Smarq.Scheme.Smarq 64;
      Smarq.Scheme.Smarq 16;
      Smarq.Scheme.Naive_order 64;
      Smarq.Scheme.Alat;
      Smarq.Scheme.Efficeon;
      Smarq.Scheme.None_;
      Smarq.Scheme.None_static;
    ]

(* Parallel replay: for every scheme, capturing the driver's optimize
   requests and replaying them at -jt 1, 2 and 4 over the domain pool
   must yield bit-identical artifacts in submission order, and the
   merged profile must count the same regions and instructions.  (The
   timer fields are wall measurements and legitimately differ run to
   run; the integers and the artifacts may not.) *)
let all_schemes =
  [
    Smarq.Scheme.Smarq 64;
    Smarq.Scheme.Smarq 16;
    Smarq.Scheme.Naive_order 64;
    Smarq.Scheme.Alat;
    Smarq.Scheme.Efficeon;
    Smarq.Scheme.None_;
    Smarq.Scheme.None_static;
  ]

let prop_parallel_replay_identical (seed, loops, iters) =
  let program = Workload.Genprog.program ~seed ~n_loops:loops ~iters in
  let pool = Exec.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      List.for_all
        (fun scheme ->
          let _, cfg, reqs =
            Exec.Translate.capture_program ~fuel:50_000_000 ~scheme program
          in
          let seq = Exec.Translate.replay ~jobs:1 ~config:cfg reqs in
          List.length seq.Exec.Translate.artifacts = List.length reqs
          && List.for_all
               (fun jobs ->
                 let par =
                   Exec.Translate.replay ~pool ~jobs ~config:cfg reqs
                 in
                 List.for_all2 Exec.Translate.equal_artifact
                   seq.Exec.Translate.artifacts par.Exec.Translate.artifacts
                 && par.Exec.Translate.profile.Sched.Profile.regions
                    = seq.Exec.Translate.profile.Sched.Profile.regions
                 && par.Exec.Translate.profile.Sched.Profile.instrs
                    = seq.Exec.Translate.profile.Sched.Profile.instrs)
               [ 1; 2; 4 ])
        all_schemes)

(* The captured batch replayed under the reference pipeline must also
   match a reference driver run's artifacts — capture is a faithful
   record, not a fast-path-only trick. *)
let prop_replay_matches_either_pipeline (seed, loops, iters) =
  let program = Workload.Genprog.program ~seed ~n_loops:loops ~iters in
  let scheme = Smarq.Scheme.Smarq 64 in
  let _, cfg, reqs =
    Exec.Translate.capture_program ~fuel:50_000_000 ~scheme program
  in
  let fast =
    Exec.Translate.replay ~jobs:1 ~pipeline:Sched.Pipeline.Fast ~config:cfg
      reqs
  in
  let slow =
    Exec.Translate.replay ~jobs:1 ~pipeline:Sched.Pipeline.Reference
      ~config:cfg reqs
  in
  List.for_all2 Exec.Translate.equal_artifact fast.Exec.Translate.artifacts
    slow.Exec.Translate.artifacts

(* Deterministic spot check of the reduction itself: a WAW edge made
   redundant by a RAW/WAR path must be pruned yet stay enforced. *)
let test_reduction_prunes_redundant_waw () =
  reset_ids ();
  let w1 = mk (I.Binop (I.Add, r 1, I.Imm 1, I.Imm 2)) in
  let rd = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 0)) in
  let w2 = mk (I.Binop (I.Add, r 1, I.Imm 5, I.Imm 5)) in
  let body = [ w1; rd; w2 ] in
  let sb = sb_of body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let policy = Sched.Policy.smarq ~ar_count:64 in
  let fast = Sched.Hazards.build ~sb ~deps ~policy () in
  let slow = Sched.Hazards.build ~sb ~deps ~policy ~reference:true () in
  Alcotest.(check bool) "reference keeps the direct WAW" true
    (List.mem w1.I.id (Sched.Hazards.preds slow w2.I.id));
  Alcotest.(check bool) "fast prunes the redundant WAW" false
    (List.mem w1.I.id (Sched.Hazards.preds fast w2.I.id));
  let reaches = closure fast body in
  Alcotest.(check bool) "but w1 still precedes w2 transitively" true
    (reaches w1.I.id w2.I.id)

let suite =
  ( "translate pipeline",
    [
      qcase ~count:300 "swept depgraph = pairwise depgraph" sb_arb
        prop_depgraph_equal;
      qcase ~count:150 "edges_into agrees per target" sb_arb
        prop_edges_into_equal;
      qcase ~count:100 "reduced hazards: same transitive closure" sb_arb
        prop_hazard_closure_equal;
      qcase ~count:100 "reduced hazards: edges within seed closure" sb_arb
        prop_reduced_edges_subset;
      qcase ~count:100 "dropped pairs normalized and equal" sb_arb
        prop_dropped_normalized;
      qcase ~count:8 "fast and reference pipelines bit-identical" prog_arb
        prop_pipelines_bit_identical;
      qcase ~count:5 "parallel replay bit-identical at -jt 1/2/4" prog_arb
        prop_parallel_replay_identical;
      qcase ~count:5 "replay identical under both pipelines" prog_arb
        prop_replay_matches_either_pipeline;
      case "transitive reduction prunes redundant WAW"
        test_reduction_prunes_redundant_waw;
    ] )
