lib/analysis/may_alias.mli: Const_prop Format Ir
