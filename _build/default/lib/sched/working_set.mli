(** Alias-register working-set statistics (the paper's Figure 17).

    Four numbers per scheduled superblock, each an alias-register count:

    - [program_order]: one register per memory operation — the
      straightforward order-based allocation the paper normalizes to;
    - [p_bit_order]: one register per operation that actually sets a
      register (has a P bit) — program-order allocation restricted to
      protected operations;
    - [smarq]: SMARQ's sliding window, [max offset + 1];
    - [lower_bound]: the maximum number of simultaneously live
      protected ranges across the issue sequence — for every
      check-constraint [X ->check Y], Y's register is live from Y's
      issue to the last such X's issue; no allocation can beat the
      peak overlap. *)

type t = {
  program_order : int;
  p_bit_order : int;
  smarq : int;
  lower_bound : int;
}

val measure :
  sb:Ir.Superblock.t ->
  outcome:List_sched.outcome ->
  t
(** Requires an outcome produced with the queue scheme (otherwise
    [smarq]/[lower_bound] are 0). *)

val zero : t
val add : t -> t -> t
