lib/workload/genprog.mli: Ir
