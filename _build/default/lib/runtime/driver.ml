type scheme = {
  policy : Sched.Policy.t;
  detector : Hw.Detector.t;
}

let scheme_smarq ?(ar_count = 64) () =
  {
    policy = Sched.Policy.smarq ~ar_count;
    detector = Hw.Queue.detector (Hw.Queue.create ~size:ar_count);
  }

let scheme_smarq_no_store_reorder ?(ar_count = 64) () =
  {
    policy = Sched.Policy.smarq_no_store_reorder ~ar_count;
    detector = Hw.Queue.detector (Hw.Queue.create ~size:ar_count);
  }

let scheme_naive_order ?(ar_count = 64) () =
  {
    policy = Sched.Policy.naive_order ~ar_count;
    detector = Hw.Queue.detector (Hw.Queue.create ~size:ar_count);
  }

let scheme_alat () =
  {
    policy = Sched.Policy.alat ();
    detector = Hw.Alat.detector (Hw.Alat.create ());
  }

let scheme_efficeon () =
  {
    policy = Sched.Policy.efficeon ();
    detector = Hw.Efficeon.detector (Hw.Efficeon.create ());
  }

let scheme_none () =
  { policy = Sched.Policy.none (); detector = Hw.No_detect.detector () }

let scheme_none_with_analysis () =
  {
    policy = Sched.Policy.none_with_analysis ();
    detector = Hw.No_detect.detector ();
  }

type cache_entry = {
  mutable region : Ir.Region.t;
  mutable known_alias : (int * int) list;
  mutable pinned : int list;
  mutable reopts : int;
  mutable gave_up : bool;
  sb : Ir.Superblock.t;
}

type result = {
  stats : Stats.t;
  machine : Vliw.Machine.t;
}

let pair_mem pair pairs =
  let a, b = pair in
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) pairs

(* Expand pinned instructions into known-alias pairs against every
   memory operation of the superblock: the blunt but terminating way to
   take an operation out of speculation entirely. *)
let known_with_pins entry =
  match entry.pinned with
  | [] -> entry.known_alias
  | pins ->
    let mems = Ir.Superblock.memory_ops entry.sb in
    List.fold_left
      (fun acc pin ->
        List.fold_left
          (fun acc (m : Ir.Instr.t) ->
            if m.id = pin then acc else (pin, m.id) :: acc)
          acc mems)
      entry.known_alias pins

let run ?(config = Vliw.Config.default) ?(max_blocks = 8)
    ?(hot_threshold = 50) ?(max_reopts = 10) ?(fuel = 2_000_000)
    ?(unroll = 1) ~scheme program =
  let stats = Stats.create () in
  let machine = Vliw.Machine.create () in
  let profiler = Frontend.Profiler.create ~hot_threshold () in
  let liveness = Frontend.Liveness.analyze program in
  let fresh_id = ref (Ir.Program.max_instr_id program + 1) in
  let cache : (Ir.Instr.label, cache_entry) Hashtbl.t = Hashtbl.create 64 in
  let latency = Vliw.Config.latency config in
  let data_cache = Option.map Vliw.Cache.create config.Vliw.Config.cache in
  (* the scheme's register count governs the allocator; the machine
     must expose at least that many (the region executor guards it) *)
  let policy = scheme.policy in
  let charge_optimize n_instrs =
    let opt_cost = n_instrs * config.Vliw.Config.optimize_cycles_per_instr in
    let sched_cost = n_instrs * config.Vliw.Config.schedule_cycles_per_instr in
    stats.Stats.optimize_cycles <- stats.Stats.optimize_cycles + opt_cost;
    stats.Stats.schedule_cycles <- stats.Stats.schedule_cycles + sched_cost;
    stats.Stats.total_cycles <- stats.Stats.total_cycles + opt_cost
  in
  let optimize_superblock ~known_alias sb =
    Opt.Optimizer.optimize ~policy
      ~issue_width:config.Vliw.Config.issue_width
      ~mem_ports:config.Vliw.Config.mem_ports ~latency ~fresh_id ~known_alias
      sb
  in
  let build_region label =
    let sb =
      Frontend.Region_form.form
        ~params:
          {
            Frontend.Region_form.max_blocks;
            min_bias = Frontend.Region_form.default_params.Frontend.Region_form.min_bias;
          }
        ~program ~liveness ~profiler ~fresh_id label
    in
    let sb =
      if unroll > 1 then
        Option.value
          (Opt.Unroll.unroll ~factor:unroll ~fresh_id sb)
          ~default:sb
      else sb
    in
    let o = optimize_superblock ~known_alias:[] sb in
    let ws = Sched.Working_set.measure ~sb ~outcome:{
        Sched.List_sched.region = o.Opt.Optimizer.region;
        alloc_result = o.Opt.Optimizer.alloc_result;
        stats = o.Opt.Optimizer.stats.Opt.Optimizer.sched_stats;
      }
    in
    Stats.note_region_built stats o ~ws;
    charge_optimize o.Opt.Optimizer.stats.Opt.Optimizer.work_units;
    Hashtbl.replace cache label
      {
        region = o.Opt.Optimizer.region;
        known_alias = [];
        pinned = [];
        reopts = 0;
        gave_up = false;
        sb;
      }
  in
  let reoptimize entry (v : Hw.Detector.violation) =
    stats.Stats.reoptimizations <- stats.Stats.reoptimizations + 1;
    entry.reopts <- entry.reopts + 1;
    let pair = (v.Hw.Detector.setter, v.Hw.Detector.checker) in
    if entry.reopts > max_reopts then begin
      entry.gave_up <- true;
      stats.Stats.gave_up_regions <- stats.Stats.gave_up_regions + 1
    end
    else if pair_mem pair entry.known_alias then
      (* the same pair violated twice: pin both ops out of speculation *)
      entry.pinned <-
        v.Hw.Detector.setter :: v.Hw.Detector.checker :: entry.pinned
    else entry.known_alias <- pair :: entry.known_alias;
    let o =
      if entry.gave_up then
        Opt.Optimizer.optimize ~policy:(Sched.Policy.none ())
          ~issue_width:config.Vliw.Config.issue_width
          ~mem_ports:config.Vliw.Config.mem_ports ~latency ~fresh_id
          ~known_alias:[] entry.sb
      else optimize_superblock ~known_alias:(known_with_pins entry) entry.sb
    in
    charge_optimize o.Opt.Optimizer.stats.Opt.Optimizer.work_units;
    entry.region <- o.Opt.Optimizer.region
  in
  let blocks_left = ref fuel in
  let rec step label =
    if !blocks_left <= 0 then raise Frontend.Interp.Out_of_fuel;
    decr blocks_left;
    match Hashtbl.find_opt cache label with
    | Some entry ->
      stats.Stats.region_entries <- stats.Stats.region_entries + 1;
      let r =
        Vliw.Region_exec.run ~config ~detector:scheme.detector ~machine
          ?cache:data_cache entry.region
      in
      stats.Stats.region_cycles <- stats.Stats.region_cycles + r.Vliw.Region_exec.cycles;
      stats.Stats.total_cycles <- stats.Stats.total_cycles + r.Vliw.Region_exec.cycles;
      stats.Stats.alias_checks <-
        stats.Stats.alias_checks + r.Vliw.Region_exec.alias_checks;
      (match r.Vliw.Region_exec.outcome with
      | Vliw.Region_exec.Committed next ->
        stats.Stats.region_commits <- stats.Stats.region_commits + 1;
        (match next with
        | Some l ->
          if not (Some l = entry.region.Ir.Region.final_exit) then
            stats.Stats.side_exits_taken <- stats.Stats.side_exits_taken + 1;
          step l
        | None -> ())
      | Vliw.Region_exec.Alias_fault v ->
        stats.Stats.rollbacks <- stats.Stats.rollbacks + 1;
        let pair = (v.Hw.Detector.setter, v.Hw.Detector.checker) in
        if not (pair_mem pair entry.region.Ir.Region.assumed_no_alias) then
          stats.Stats.rollbacks_not_assumed <-
            stats.Stats.rollbacks_not_assumed + 1;
        reoptimize entry v;
        step label)
    | None ->
      let b = Ir.Program.block program label in
      Frontend.Profiler.note_execution profiler label;
      let next = Frontend.Interp.exec_block machine b in
      (match next with
      | Some l -> Frontend.Profiler.note_edge profiler label l
      | None -> ());
      let n = List.length b.Ir.Block.body + 1 in
      stats.Stats.instrs_interpreted <- stats.Stats.instrs_interpreted + n;
      let c = n * config.Vliw.Config.interp_cycles_per_instr in
      stats.Stats.interp_cycles <- stats.Stats.interp_cycles + c;
      stats.Stats.total_cycles <- stats.Stats.total_cycles + c;
      if Frontend.Profiler.is_hot profiler label then build_region label;
      (match next with
      | Some l -> step l
      | None -> ())
  in
  step program.Ir.Program.entry;
  { stats; machine }
