(* The VLIW region executor: atomic commit/rollback, side exits, cycle
   accounting, AMOV insertion under cycles. *)

open Helpers
module I = Ir.Instr
module RE = Vliw.Region_exec

let detector () = Hw.Queue.detector (Hw.Queue.create ~size:64)

let run_region ?(init = []) region =
  let machine = Vliw.Machine.create () in
  List.iter (fun (reg, v) -> Vliw.Machine.set_reg machine reg v) init;
  let r =
    RE.run ~config:Vliw.Config.default ~detector:(detector ()) ~machine region
  in
  (r, machine)

let test_commit_full_region () =
  reset_ids ();
  let body = [ movi (r 1) 5; st (I.Reg (r 1)) (r 2) 0 ] in
  let sb = sb_of body in
  let o = optimize sb in
  let res, machine = run_region ~init:[ (r 2, 100) ] o.Opt.Optimizer.region in
  (match res.RE.outcome with
  | RE.Committed None -> ()
  | _ -> Alcotest.fail "expected final-exit commit");
  Alcotest.(check int) "store visible" 5
    (Vliw.Machine.load machine ~addr:100 ~width:4);
  Alcotest.(check bool) "not mid-region" false (Vliw.Machine.in_region machine)

let test_side_exit_commits_prefix () =
  reset_ids ();
  let pre = st (I.Imm 1) (r 2) 0 in
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "elsewhere" }) in
  let post = st (I.Imm 2) (r 2) 8 in
  let sb = sb_of [ pre; br; post ] in
  let o = optimize sb in
  let res, machine =
    run_region ~init:[ (r 2, 200); (r 5, 1) ] o.Opt.Optimizer.region
  in
  (match res.RE.outcome with
  | RE.Committed (Some "elsewhere") -> ()
  | _ -> Alcotest.fail "expected the side exit");
  Alcotest.(check int) "pre-exit store committed" 1
    (Vliw.Machine.load machine ~addr:200 ~width:4);
  Alcotest.(check int) "post-exit store suppressed" 0
    (Vliw.Machine.load machine ~addr:208 ~width:4)

let test_fault_rolls_everything_back () =
  reset_ids ();
  (* store then later load through another base; aliased at runtime *)
  let s1 = st (I.Imm 77) (r 1) 0 in
  let l1 = ld (f 1) (r 2) 0 in
  let consume = fadd (f 2) (f 1) (f 1) in
  let sb = sb_of [ s1; l1; consume ] in
  let o = optimize sb in
  (* the load hoists above the store; make them truly alias *)
  let res, machine =
    run_region ~init:[ (r 1, 300); (r 2, 300) ] o.Opt.Optimizer.region
  in
  (match res.RE.outcome with
  | RE.Alias_fault v ->
    Alcotest.(check int) "setter is the load" l1.I.id v.Hw.Detector.setter;
    Alcotest.(check int) "checker is the store" s1.I.id v.Hw.Detector.checker
  | RE.Committed _ -> Alcotest.fail "expected a fault");
  Alcotest.(check int) "memory rolled back" 0
    (Vliw.Machine.load machine ~addr:300 ~width:4);
  Alcotest.(check int) "register rolled back" 0
    (Vliw.Machine.get_reg machine (f 1))

let test_fault_costs_rollback_penalty () =
  reset_ids ();
  let s1 = st (I.Imm 77) (r 1) 0 in
  let l1 = ld (f 1) (r 2) 0 in
  let sb = sb_of [ s1; l1 ] in
  let o = optimize sb in
  let res, _ =
    run_region ~init:[ (r 1, 300); (r 2, 300) ] o.Opt.Optimizer.region
  in
  Alcotest.(check bool) "penalty charged" true
    (res.RE.cycles >= Vliw.Config.default.Vliw.Config.rollback_cycles)

let test_window_guard () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let sb = sb_of [ l1 ] in
  let region =
    Ir.Region.make ~entry:"t" ~bundles:[| [ l1 ] |] ~final_exit:None
      ~ar_window:100 ~assumed_no_alias:[] ~source:sb ()
  in
  let machine = Vliw.Machine.create () in
  Alcotest.check_raises "window too large"
    (Invalid_argument
       "Region_exec: region needs 100 alias registers, machine has 64")
    (fun () ->
      ignore
        (RE.run ~config:Vliw.Config.default ~detector:(detector ()) ~machine
           region))

(* A deterministic generated superblock that forces AMOV insertion
   (found by search over Genprog seeds; kept as a regression anchor for
   the Figure 12 cycle-breaking machinery). *)
let amov_superblock () =
  let params =
    Workload.Genprog.
      {
        n_instrs = 24;
        mem_fraction = 0.6;
        store_fraction = 0.5;
        n_bases = 3;
        collide_fraction = 0.0;
        side_exit_every = None;
      }
  in
  fst (Workload.Genprog.superblock ~seed:12 ~params)

let test_amov_cycle_breaking () =
  let sb = amov_superblock () in
  let o = optimize sb in
  let st = o.Opt.Optimizer.stats.Opt.Optimizer.sched_stats in
  Alcotest.(check bool) "AMOVs inserted" true
    (st.Sched.List_sched.amov_fresh + st.Sched.List_sched.amov_clear > 0);
  (* the region contains actual Amov instructions *)
  let amovs =
    List.filter
      (fun (i : I.t) ->
        match i.I.op with
        | I.Amov _ -> true
        | _ -> false)
      (Ir.Region.instrs o.Opt.Optimizer.region)
  in
  Alcotest.(check bool) "Amov in the code" true (List.length amovs > 0);
  (* and the constraint graph is acyclic after breaking *)
  match o.Opt.Optimizer.alloc_result with
  | Some res ->
    Alcotest.(check bool) "acyclic" false
      (Analysis.Constraints.has_cycle
         (res.Sched.Smarq_alloc.check_edges @ res.Sched.Smarq_alloc.anti_edges))
  | None -> Alcotest.fail "queue allocation expected"

let test_amov_region_executes_correctly () =
  let sb = amov_superblock () in
  let init =
    Workload.Genprog.setup_machine_regs
      ~params:
        Workload.Genprog.
          {
            n_instrs = 24;
            mem_fraction = 0.6;
            store_fraction = 0.5;
            n_bases = 3;
            collide_fraction = 0.0;
            side_exit_every = None;
          }
      ~bases:(fun k -> 0x10000 * (k + 1))
  in
  let faults = run_to_commit ~init sb in
  Alcotest.(check int) "no faults despite AMOVs (no genuine aliases)" 0 faults

let test_rotate_amov_are_free_slots () =
  (* Rotate/Amov do not consume issue slots: the region executes them
     inline without extending bundles *)
  let sb = amov_superblock () in
  let o = optimize sb in
  let region = o.Opt.Optimizer.region in
  Array.iter
    (fun bundle ->
      let real =
        List.filter
          (fun (i : I.t) ->
            match i.I.op with
            | I.Rotate _ | I.Amov _ -> false
            | _ -> true)
          bundle
      in
      Alcotest.(check bool) "real ops within width" true
        (List.length real <= 4))
    region.Ir.Region.bundles

let suite =
  ( "region-exec",
    [
      case "full region commits" test_commit_full_region;
      case "side exit commits the prefix" test_side_exit_commits_prefix;
      case "alias fault rolls back everything" test_fault_rolls_everything_back;
      case "fault pays the rollback penalty" test_fault_costs_rollback_penalty;
      case "window guard" test_window_guard;
      case "cycles break via AMOV (Fig 12)" test_amov_cycle_breaking;
      case "AMOV regions execute correctly" test_amov_region_executes_correctly;
      case "rotate/amov cost no issue slots" test_rotate_amov_are_free_slots;
    ] )
