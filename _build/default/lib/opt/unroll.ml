let copy_instr ~fresh_id (i : Ir.Instr.t) =
  let id = !fresh_id in
  incr fresh_id;
  Ir.Instr.make ~id i.Ir.Instr.op

let unroll ~factor ~fresh_id (sb : Ir.Superblock.t) =
  if factor <= 1 then None
  else
    match sb.Ir.Superblock.final_exit with
    | Some l when String.equal l sb.Ir.Superblock.entry ->
      let copies = ref [ sb.Ir.Superblock.body ] in
      let live_out = ref [] in
      Hashtbl.iter
        (fun id set -> live_out := (id, set) :: !live_out)
        sb.Ir.Superblock.live_out;
      for _ = 2 to factor do
        let copy =
          List.map
            (fun (i : Ir.Instr.t) ->
              let i' = copy_instr ~fresh_id i in
              (* side exits of the copy leave to the same labels with
                 the same live sets *)
              (match Hashtbl.find_opt sb.Ir.Superblock.live_out i.Ir.Instr.id
               with
              | Some set -> live_out := (i'.Ir.Instr.id, set) :: !live_out
              | None -> ());
              i')
            sb.Ir.Superblock.body
        in
        copies := copy :: !copies
      done;
      Some
        (Ir.Superblock.make ~entry:sb.Ir.Superblock.entry
           ~body:(List.concat (List.rev !copies))
           ~final_exit:sb.Ir.Superblock.final_exit
           ~source_blocks:sb.Ir.Superblock.source_blocks
           ~live_out:!live_out
           ~final_live_out:sb.Ir.Superblock.final_live_out ())
    | Some _ | None -> None
