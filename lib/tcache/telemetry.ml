type t = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable rejections : int;
  mutable chains_installed : int;
  mutable chains_broken : int;
  mutable chain_follows : int;
  mutable peak_resident_instrs : int;
}

let create () =
  {
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    flushes = 0;
    invalidations = 0;
    rejections = 0;
    chains_installed = 0;
    chains_broken = 0;
    chain_follows = 0;
    peak_resident_instrs = 0;
  }

let fields t =
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("insertions", t.insertions);
    ("evictions", t.evictions);
    ("flushes", t.flushes);
    ("invalidations", t.invalidations);
    ("rejections", t.rejections);
    ("chains_installed", t.chains_installed);
    ("chains_broken", t.chains_broken);
    ("chain_follows", t.chain_follows);
    ("peak_resident_instrs", t.peak_resident_instrs);
  ]

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-26s %d@." name v)
    (fields t)
