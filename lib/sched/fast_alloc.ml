type t = {
  order : (int, int) Hashtbl.t;
  base : (int, int) Hashtbl.t;
  max_offset : int;
}

type error = { cycle : Analysis.Constraints.edge list }

let allocate ~issue_order ~p_bit ~c_bit ~edges =
  let ids = List.filter (fun id -> p_bit id || c_bit id) issue_order in
  match Analysis.Constraints.topological_order edges ~ids with
  | None -> Error { cycle = Analysis.Constraints.cycle_edges edges ~ids }
  | Some topo ->
    let order = Hashtbl.create 64 in
    let next = ref 0 in
    List.iter
      (fun id ->
        Hashtbl.replace order id !next;
        if p_bit id then incr next)
      topo;
    (* MAX-BASE: base(X) = min order over ops issuing at or after X,
       via a right-to-left scan of the issue order *)
    let base = Hashtbl.create 64 in
    let rev = List.rev ids in
    let running = ref max_int in
    let bases_rev =
      List.map
        (fun id ->
          (match Hashtbl.find_opt order id with
          | Some o -> running := min !running o
          | None -> ());
          (id, !running))
        rev
    in
    List.iter
      (fun (id, b) ->
        Hashtbl.replace base id (if b = max_int then 0 else b))
      bases_rev;
    let max_offset =
      List.fold_left
        (fun acc id ->
          match Hashtbl.find_opt order id, Hashtbl.find_opt base id with
          | Some o, Some b -> max acc (o - b)
          | _ -> acc)
        (-1) ids
    in
    Ok { order; base; max_offset }
