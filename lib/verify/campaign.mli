(** Fault campaigns: a (benchmark × scheme × seed) matrix of
    fault-injected runs, each checked against the interpreter oracle.

    This is the smoke harness CI runs: fixed seeds, every scheme, and
    a machine-readable JSON-lines report so regressions in the
    recovery ladder show up as a failing artifact rather than a
    lucky benchmark. *)

type config = {
  seeds : int list;
  rate : float;
  schemes : Smarq.Scheme.t list;
  scale : int;  (** workload scale for suite benchmarks *)
  fuel : int;  (** guest blocks per optimized run *)
  verify : Check.Verifier.mode;
      (** static translation validation inside each driver run; a
          rejected region fails its run's entry like a divergence *)
  certify : bool;
      (** run the static alias certifier inside every translation; a
          non-injected alias fault on a certified pair fails its run's
          entry like a divergence *)
}

val default_config : config
(** Seeds [1; 2; 3], rate 0.05, every scheme in [Smarq.Scheme.all]
    plus [None_static], scale 1, fuel 1e9, verification on ([All]),
    certification off. *)

type run = {
  bench : string;
  seed : int;
  entry : Oracle.entry;
}

type result = {
  config : config;
  runs : run list;
}

val ok : result -> bool

(** Agreement between a run's static verdict and the dynamic oracle's.
    [Static_reject_only] is a conservative verifier false alarm (the
    rejected region was degraded, so the run still converged);
    [Dynamic_diverge_only] is the serious direction — a divergence the
    verifier failed to predict. *)
type cross_check =
  | Both_ok
  | Static_reject_only
  | Dynamic_diverge_only
  | Both_flag

val cross_check_of_entry : Oracle.entry -> cross_check
val cross_check_name : cross_check -> string

val run_program :
  config -> name:string -> (unit -> Ir.Program.t) -> run list
(** One campaign cell: the program under every configured scheme and
    seed, oracle-checked.  The thunk is re-evaluated per run so guest
    programs never share mutable state. *)

val run_benches : config -> Workload.Specfp.bench list -> result
(** The campaign over suite benchmarks (at [config.scale]). *)

val json_line : config -> run -> string
(** One self-contained JSON object per run:
    benchmark, scheme, seed, rate, outcome, oracle verdict, fault and
    recovery counters, total cycles. *)

val pp_summary : Format.formatter -> result -> unit
