(** Parallel per-region translation: capture the optimize requests a
    driver run performs, then replay them over the domain pool.

    The driver's lazy dispatch loop discovers hot regions one at a
    time, so it never holds more than one pending translation; the
    parallelism is in the requests themselves, which are pure functions
    of their captured inputs and independent of each other.  Replay at
    any job count produces bit-identical artifacts and a
    deterministically-ordered profile merge — the test suite's
    differential battery holds it to that. *)

(** The pure-data outputs of one translation.  (The full
    {!Opt.Optimizer.t} also carries analysis structures whose physical
    hashtable layout is insertion-order dependent; the artifact is
    exactly the part where structural equality means "same
    translation".) *)
type artifact = {
  region : Ir.Region.t;
  issue_seq : (int * Ir.Instr.t) list;
  stats : Opt.Optimizer.opt_stats;
  policy_used : Sched.Policy.t;
}

val artifact_of : Opt.Optimizer.t -> artifact
val equal_artifact : artifact -> artifact -> bool

type result = {
  artifacts : artifact list;
      (** one per request, in submission order regardless of which
          domain translated what *)
  profile : Sched.Profile.t;
      (** per-phase timers: each request times into a private
          collector, merged in submission order, so the aggregate's
          float-sum order is identical at every job count *)
  wall_seconds : float;
}

val capture_program :
  ?config:Vliw.Config.t ->
  ?fuel:int ->
  ?unroll:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  ?pipeline:Sched.Pipeline.t ->
  ?verify:Check.Verifier.mode ->
  scheme:Smarq.Scheme.t ->
  Ir.Program.t ->
  Runtime.Driver.result * Vliw.Config.t * Opt.Optimizer.request list
(** Run the program under the driver, recording every translation
    request (initial builds, re-optimizations, gave-up rebuilds) in
    execution order.  Returns the driver result, the VLIW configuration
    the run used (replay must use the same one), and the requests. *)

val replay :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?pipeline:Sched.Pipeline.t ->
  config:Vliw.Config.t ->
  Opt.Optimizer.request list ->
  result
(** Translate every request.  [jobs = 1] (the default without a pool)
    replays sequentially on the calling domain with one shared arena —
    the fast single-domain path.  With [jobs > 1], requests fan out
    over [pool] (reused, not shut down — the service hands its
    long-running pool here rather than nesting pools) or, when no pool
    is given, over a private pool of [jobs] domains that is shut down
    before returning.  A sliding window bounds in-flight requests to
    [jobs] even on a larger shared pool.  Each worker domain keeps its
    own scratch arena, indexed by the pool's worker id. *)
