(** Statistics collected by the dynamic optimization system — the raw
    material for every figure in the paper's evaluation. *)

type t = {
  (* cycle accounting *)
  mutable total_cycles : int;
  mutable interp_cycles : int;
  mutable region_cycles : int;
  mutable optimize_cycles : int;  (** total optimizer cost (Fig 18) *)
  mutable schedule_cycles : int;  (** scheduling share of the above *)
  (* dynamic events *)
  mutable instrs_interpreted : int;
  mutable blocks_dispatched : int;
  mutable region_entries : int;
  mutable region_commits : int;
  mutable side_exits_taken : int;
  mutable rollbacks : int;
  mutable rollbacks_not_assumed : int;
      (** rollbacks whose pair was not a recorded speculation — false
          positives by construction *)
  mutable reoptimizations : int;
  mutable pinned_ops : int;
      (** operations pinned out of speculation after repeat violations *)
  mutable gave_up_regions : int;
  mutable alias_checks : int;
  (* fault injection and graceful degradation *)
  mutable injected_faults : int;
      (** detector/tcache faults injected by a {!Runtime.Driver.hooks}
          harness during this run (0 without fault injection) *)
  mutable spurious_rollbacks : int;
      (** rollbacks whose violation the harness marked as injected —
          recovery work caused by the campaign, not the workload *)
  mutable degraded_regions : int;
      (** regions the livelock watchdog blacklisted to interpreter-only
          execution after faulting repeatedly without a commit *)
  (* translation validation *)
  mutable verified_regions : int;
      (** regions the static verifier examined (0 with verification off) *)
  mutable rejected_regions : int;
      (** regions the verifier rejected; each is also degraded to
          interpreter-only execution *)
  reject_rules : (string, int) Hashtbl.t;
      (** rule name -> number of rejected regions that violated it (a
          region violating a rule several times counts once) *)
  (* translation cache (copied from [Tcache.Telemetry] after a run) *)
  mutable tcache_hits : int;
  mutable tcache_misses : int;
  mutable tcache_evictions : int;
  mutable tcache_flushes : int;
  mutable tcache_invalidations : int;
  mutable tcache_chain_follows : int;
      (** dispatches that skipped the lookup via a region chain link *)
  mutable tcache_peak_resident : int;
      (** high-water mark of resident scheduled instructions *)
  (* static, per region built *)
  mutable regions_built : int;
  mutable superblock_instrs : int;
  mutable superblock_mem_ops : int;
  mutable p_bits : int;
  mutable c_bits : int;
  mutable check_constraints : int;
  mutable anti_constraints : int;
  mutable amov_fresh : int;
  mutable amov_clear : int;
  mutable loads_eliminated : int;
  mutable stores_eliminated : int;
  mutable overflow_fallbacks : int;
  mutable nonspec_mode_regions : int;
  mutable dropped_edges : int;
      (** speculated-away may-alias dependence pairs, summed over all
          regions built — the speculation volume behind the rollback
          counters *)
  mutable certified_pairs : int;
      (** memory pairs statically certified [No_alias] by the abstract
          interpreter, summed over all regions built *)
  mutable alias_regs_saved : int;
      (** certified-pair endpoints that finished the build without
          consuming any alias-detection resource (queue slot, ALAT
          entry, or mask bit) *)
  mutable certified_alias_faults : int;
      (** non-injected runtime alias faults on a certified pair —
          always a soundness bug in the certifier; must stay zero *)
  mutable working_set : Sched.Working_set.t;
  (* host cost *)
  mutable wall_seconds : float;
      (** wall-clock host time of the driver run that produced these
          stats; non-deterministic (excluded from run-equality
          comparisons, together with [translate]) *)
  mutable translate : Profile.t;
      (** per-phase translation timers and per-region instruction
          counts, accumulated across every optimize call of the run *)
}

val create : unit -> t

val note_region_built : t -> Opt.Optimizer.t -> ws:Sched.Working_set.t -> unit

val note_reject : t -> string list -> unit
(** Record a rejected region; the list holds the names of the violated
    rules (deduplicated before counting). *)

val reject_histogram : t -> (string * int) list
(** (rule, count) pairs in ascending rule order — deterministic for
    JSON emission. *)

val note_tcache : t -> Tcache.Telemetry.t -> unit
(** Fold a translation cache's telemetry into the run's statistics
    (counters add; the peak takes the max). *)

val mem_ops_per_superblock : t -> float
val constraints_per_mem_op : t -> float * float
(** (check, anti) per memory operation. *)

val optimize_fraction : t -> float * float
(** (total optimization, scheduling only) as fractions of total
    cycles. *)

val pp : Format.formatter -> t -> unit
