test/suite_sched.ml: Alcotest Analysis Array Hashtbl Helpers Int Ir List Option Printf Sched String Vliw
