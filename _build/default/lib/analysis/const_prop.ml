module I = Ir.Instr
module RM = Ir.Reg.Map

type t = {
  (* per memory instruction: known constant value of its base register
     just before it executes *)
  base_facts : (int, int) Hashtbl.t;
}

let eval_operand env = function
  | I.Imm n -> Some n
  | I.Reg r -> RM.find_opt r env

let transfer env (i : I.t) =
  let kill env = List.fold_left (fun e r -> RM.remove r e) env (I.defs i) in
  match i.op with
  | I.Mov (d, src) ->
    (match eval_operand env src with
    | Some v -> RM.add d v (kill env)
    | None -> kill env)
  | I.Unop_neg (d, src) ->
    (match eval_operand env src with
    | Some v -> RM.add d (-v) (kill env)
    | None -> kill env)
  | I.Binop (op, d, a, b) ->
    (match eval_operand env a, eval_operand env b with
    | Some va, Some vb ->
      let f =
        match op with
        | I.Add -> ( + )
        | I.Sub -> ( - )
        | I.Mul -> ( * )
        | I.Div -> fun x y -> if y = 0 then 0 else x / y
        | I.And -> ( land )
        | I.Or -> ( lor )
        | I.Xor -> ( lxor )
        | I.Shl -> fun x y -> x lsl (y land 31)
        | I.Shr -> fun x y -> x asr (y land 31)
      in
      RM.add d (f va vb) (kill env)
    | _ -> kill env)
  | I.Fbinop _ | I.Cmp _ | I.Load _ -> kill env
  | I.Nop | I.Store _ | I.Branch _ | I.Jump _ | I.Exit _ | I.Rotate _
  | I.Amov _ ->
    env

let analyze ~body =
  let base_facts = Hashtbl.create 64 in
  let _ =
    List.fold_left
      (fun env (i : I.t) ->
        (match I.mem_addr i with
        | Some a ->
          (match RM.find_opt a.I.base env with
          | Some v -> Hashtbl.replace base_facts i.id v
          | None -> ())
        | None -> ());
        transfer env i)
      RM.empty body
  in
  { base_facts }

let base_value_at t ~instr_id reg =
  ignore reg;
  Hashtbl.find_opt t.base_facts instr_id

let known_count t = Hashtbl.length t.base_facts
