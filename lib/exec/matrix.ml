type job = {
  label : string;
  scheme : Smarq.Scheme.t;
  config : Vliw.Config.t option;
  fuel : int;
  unroll : int;
  tcache_policy : Tcache.Policy.t;
  tcache_capacity : int option;
  verify : Check.Verifier.mode;
  certify : bool;
  program : unit -> Ir.Program.t;
}

type outcome = {
  job : job;
  result : Runtime.Driver.result;
  wall_seconds : float;
}

let job ?config ?(fuel = 1_000_000_000) ?(unroll = 1)
    ?(tcache_policy = Tcache.Policy.Unbounded) ?tcache_capacity
    ?(verify = Check.Verifier.Off) ?(certify = false) ~scheme ~label program =
  { label; scheme; config; fuel; unroll; tcache_policy; tcache_capacity;
    verify; certify; program }

let of_bench ?config ?fuel ?unroll ?tcache_policy ?tcache_capacity ?verify
    ?certify ?(scale = 1) ~scheme (b : Workload.Specfp.bench) =
  job ?config ?fuel ?unroll ?tcache_policy ?tcache_capacity ?verify ?certify
    ~scheme
    ~label:(Printf.sprintf "%s/%s" b.Workload.Specfp.name (Smarq.Scheme.name scheme))
    (fun () -> Workload.Specfp.program ~scale b)

let run_job j =
  let t0 = Unix.gettimeofday () in
  let result =
    Smarq.run_program ?config:j.config ~fuel:j.fuel ~unroll:j.unroll
      ~tcache_policy:j.tcache_policy ?tcache_capacity:j.tcache_capacity
      ~verify:j.verify ~certify:j.certify ~scheme:j.scheme
      (j.program ())
  in
  { job = j; result; wall_seconds = Unix.gettimeofday () -. t0 }

let run_matrix ?domains jobs = Pool.map ?domains run_job jobs

let total_wall outcomes =
  List.fold_left (fun acc o -> acc +. o.wall_seconds) 0.0 outcomes
