examples/binary_translation.ml: Array Binary Bytes Char Frontend Ir List Printf Runtime Smarq Sys Vliw Workload
