(* IR-level tests: instructions, blocks, programs, superblocks. *)

open Helpers
module I = Ir.Instr

let test_defs_uses () =
  reset_ids ();
  let i = ld (f 1) (r 2) 8 in
  Alcotest.(check (list string))
    "load defs" [ "f1" ]
    (List.map Ir.Reg.to_string (I.defs i));
  Alcotest.(check (list string))
    "load uses" [ "r2" ]
    (List.map Ir.Reg.to_string (I.uses i));
  let s = st (I.Reg (f 3)) (r 4) 0 in
  Alcotest.(check (list string)) "store defs" [] (List.map Ir.Reg.to_string (I.defs s));
  Alcotest.(check (list string))
    "store uses" [ "f3"; "r4" ]
    (List.map Ir.Reg.to_string (I.uses s));
  let b = mk (I.Binop (I.Add, r 1, I.Reg (r 2), I.Imm 3)) in
  Alcotest.(check (list string)) "binop defs" [ "r1" ] (List.map Ir.Reg.to_string (I.defs b));
  Alcotest.(check (list string)) "binop uses" [ "r2" ] (List.map Ir.Reg.to_string (I.uses b))

let test_classification () =
  reset_ids ();
  let l = ld (f 0) (r 0) 0 and s = st (I.Imm 1) (r 0) 0 in
  Alcotest.(check bool) "load is memory" true (I.is_memory l);
  Alcotest.(check bool) "load is load" true (I.is_load l);
  Alcotest.(check bool) "load not store" false (I.is_store l);
  Alcotest.(check bool) "store is store" true (I.is_store s);
  let br = mk (I.Branch { cond = I.Reg (r 1); target = "x" }) in
  Alcotest.(check bool) "branch is branch" true (I.is_branch br);
  Alcotest.(check bool) "branch is side exit" true (I.is_side_exit br);
  Alcotest.(check bool) "branch not memory" false (I.is_memory br);
  let rot = mk (I.Rotate 2) and am = mk (I.Amov { src_offset = 1; dst_offset = 0 }) in
  Alcotest.(check bool) "rotate not memory" false (I.is_memory rot);
  Alcotest.(check bool) "amov not memory" false (I.is_memory am)

let test_with_annot () =
  reset_ids ();
  let l = ld (f 0) (r 0) 0 in
  let a = Ir.Annot.queue ~offset:3 ~p:true ~c:false in
  let l' = I.with_annot l a in
  Alcotest.(check bool) "annot applied" true (Ir.Annot.equal (I.annot l') a);
  Alcotest.(check int) "id preserved" l.I.id l'.I.id;
  (* non-memory unchanged *)
  let n = mk I.Nop in
  let n' = I.with_annot n a in
  Alcotest.(check bool) "nop annot stays none" true
    (Ir.Annot.equal (I.annot n') Ir.Annot.No_annot)

let test_reg_basics () =
  Alcotest.(check bool) "R equal" true (Ir.Reg.equal (r 3) (r 3));
  Alcotest.(check bool) "R/F distinct" false (Ir.Reg.equal (r 3) (f 3));
  Alcotest.(check bool) "temp" true (Ir.Reg.is_temp (Ir.Reg.T 1));
  Alcotest.(check bool) "guest not temp" false (Ir.Reg.is_temp (r 1));
  Alcotest.(check int) "all guest count"
    (Ir.Reg.int_count + Ir.Reg.float_count)
    (List.length Ir.Reg.all_guest);
  Alcotest.(check bool) "ordering total" true
    (Ir.Reg.compare (r 1) (f 0) < 0 && Ir.Reg.compare (f 0) (Ir.Reg.T 0) < 0)

let test_program_validation () =
  reset_ids ();
  let b1 = Ir.Block.make ~label:"a" ~body:[ movi (r 1) 5 ] (Ir.Block.Fallthrough "b") in
  let b2 = Ir.Block.make ~label:"b" ~body:[] Ir.Block.Halt in
  let p = Ir.Program.make ~entry:"a" [ b1; b2 ] in
  Alcotest.(check bool) "valid" true (Result.is_ok (Ir.Program.validate p));
  Alcotest.(check int) "instr count" 1 (Ir.Program.instr_count p);
  Alcotest.check_raises "duplicate labels rejected"
    (Invalid_argument "Program.make: duplicate label a") (fun () ->
      ignore (Ir.Program.make ~entry:"a" [ b1; b1; b2 ]));
  Alcotest.check_raises "unknown successor rejected"
    (Invalid_argument "Program.make: a branches to unknown label b") (fun () ->
      ignore (Ir.Program.make ~entry:"a" [ b1 ]));
  Alcotest.check_raises "missing entry rejected"
    (Invalid_argument "Program.make: missing entry block z") (fun () ->
      ignore (Ir.Program.make ~entry:"z" [ b2 ]))

let test_block_successors () =
  reset_ids ();
  let cond =
    Ir.Block.Cond
      {
        cond = I.Reg (r 1);
        taken = "t";
        fallthrough = "f";
        taken_probability = 0.9;
      }
  in
  let b = Ir.Block.make ~label:"x" ~body:[] cond in
  Alcotest.(check (list string)) "cond successors" [ "t"; "f" ]
    (Ir.Block.successors b);
  let h = Ir.Block.make ~label:"y" ~body:[] Ir.Block.Halt in
  Alcotest.(check (list string)) "halt successors" [] (Ir.Block.successors h)

let test_superblock_utils () =
  reset_ids ();
  let l1 = ld (f 0) (r 1) 0 in
  let s1 = st (I.Reg (f 0)) (r 2) 0 in
  let br = mk (I.Branch { cond = I.Reg (r 3); target = "out" }) in
  let sb =
    Ir.Superblock.make ~entry:"e" ~body:[ l1; br; s1 ] ~final_exit:(Some "n")
      ~source_blocks:[ "e" ] ()
  in
  Alcotest.(check int) "memory ops" 2 (List.length (Ir.Superblock.memory_ops sb));
  Alcotest.(check int) "side exits" 1 (List.length (Ir.Superblock.side_exits sb));
  let pos = Ir.Superblock.program_position sb in
  Alcotest.(check int) "position of store" 2 (Hashtbl.find pos s1.I.id);
  (* default liveness is conservative: every guest register live *)
  let live = Ir.Superblock.exit_live_out sb br.I.id in
  Alcotest.(check bool) "conservative live" true
    (Ir.Reg.Set.mem (r 0) live && Ir.Reg.Set.mem (f 31) live)

let test_region_utils () =
  reset_ids ();
  let l1 = ld (f 0) (r 1) 0 in
  let sb = sb_of [ l1 ] in
  let region =
    Ir.Region.make ~entry:"e" ~bundles:[| [ l1 ]; []; [ mk I.Nop ] |]
      ~final_exit:None ~ar_window:0 ~assumed_no_alias:[] ~source:sb ()
  in
  Alcotest.(check int) "schedule length" 3 (Ir.Region.schedule_length region);
  Alcotest.(check int) "instr count" 2 (Ir.Region.instr_count region);
  Alcotest.(check int) "memory ops" 1 (Ir.Region.memory_op_count region)

let test_annot_pp_roundtrip () =
  let a = Ir.Annot.queue ~offset:5 ~p:true ~c:true in
  Alcotest.(check string) "queue annot rendering" "@5PC"
    (Format.asprintf "%a" Ir.Annot.pp a);
  let m = Ir.Annot.mask ~set_index:(Some 2) ~check_mask:0b101 in
  Alcotest.(check bool) "mask annot equal" true (Ir.Annot.equal m m);
  Alcotest.(check bool) "mask/queue differ" false (Ir.Annot.equal m a)

let suite =
  ( "ir",
    [
      case "defs and uses" test_defs_uses;
      case "instruction classification" test_classification;
      case "with_annot" test_with_annot;
      case "registers" test_reg_basics;
      case "program validation" test_program_validation;
      case "block successors" test_block_successors;
      case "superblock utilities" test_superblock_utils;
      case "region utilities" test_region_utils;
      case "annotation printing/equality" test_annot_pp_roundtrip;
    ] )
