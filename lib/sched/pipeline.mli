(** Translation-pipeline selector.

    [Fast] (the default everywhere) is the O(n log n) pipeline: swept
    dependence builder, reduced hazard graph, heap-based list
    scheduler.  [Reference] is the seed's quadratic implementation of
    all three, kept as the oracle: both pipelines must produce
    bit-identical regions, which the differential property tests and
    the translate benchmark check. *)

type t =
  | Fast
  | Reference

val is_reference : t -> bool
val to_string : t -> string
val of_string : string -> t option
