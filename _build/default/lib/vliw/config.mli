(** VLIW machine parameters (the paper's Table 2).

    The paper evaluates an internal Intel VLIW modeled by a
    cycle-accurate simulator with 64 alias registers and atomic-region
    support.  These parameters control our timing model; the paper's
    results are relative speedups, which survive any reasonable
    instantiation. *)

type t = {
  issue_width : int;  (** instructions issued per cycle *)
  mem_ports : int;  (** memory operations issued per cycle *)
  alias_registers : int;  (** alias register queue size *)
  load_latency : int;
  int_alu_latency : int;
  mul_latency : int;
  div_latency : int;
  fp_latency : int;
  fdiv_latency : int;
  checkpoint_cycles : int;  (** atomic-region entry cost *)
  rollback_cycles : int;  (** alias-exception rollback penalty *)
  interp_cycles_per_instr : int;  (** interpretation cost of cold code *)
  optimize_cycles_per_instr : int;
      (** dynamic-optimizer cost charged per IR instruction processed *)
  schedule_cycles_per_instr : int;
      (** portion of the optimizer cost spent in scheduling/allocation *)
  cache : Cache.config option;
      (** [None] = flat load latency (the calibrated default); [Some]
          adds per-access miss stalls from the hierarchy *)
}

val with_cache : t -> Cache.config option -> t

val default : t
(** 4-wide, 2 memory ports, 64 alias registers — the paper's machine. *)

val with_alias_registers : t -> int -> t

val latency : t -> Ir.Instr.t -> int
(** Instruction latency under this configuration. *)

val pp : Format.formatter -> t -> unit
(** Renders the Table 2-style parameter listing. *)
