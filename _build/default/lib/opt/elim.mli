(** Speculative load and store elimination (Section 4's two "general
    speculative optimizations" beyond reordering).

    {b Store elimination}: a store X whose exact location is
    overwritten by a later store Z (same base, displacement and width,
    base not redefined between, no side exit between, no intervening
    must-alias load) is removed.  Intervening {e may}-alias loads are
    the speculation; they are reported so the dependence graph gains
    the EXTENDED-DEPENDENCE-2 edges that make Z check them at runtime.

    {b Load elimination}: a load Z whose exact location was last
    accessed by an earlier memory operation X (store → store-to-load
    forwarding, load → redundant-load elimination) is replaced by a
    register move through a fresh optimizer temporary captured at X.
    Intervening {e may}-alias stores are the speculation, reported for
    EXTENDED-DEPENDENCE-1.

    Interactions are prevented by locking: overwriters cannot
    themselves be eliminated, and loads protected by a store
    elimination stay loads. *)

type result = {
  body : Ir.Instr.t list;  (** transformed body, original order *)
  eliminations : (Analysis.Depgraph.elimination * Ir.Instr.t list) list;
      (** with the surviving instructions strictly between the pair *)
  assumed_no_alias : (int * int) list;
      (** speculation assumptions: (protected op, intervening op) *)
  loads_eliminated : int;
  stores_eliminated : int;
}

val run :
  policy:Sched.Policy.t ->
  alias:Analysis.May_alias.t ->
  body:Ir.Instr.t list ->
  fresh_id:int ref ->
  result
(** [alias] must have been built over [body].  With a policy that
    forbids both eliminations this is the identity. *)
