type label = string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Shr

type fbinop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type operand =
  | Reg of Reg.t
  | Imm of int

type addr = {
  base : Reg.t;
  disp : int;
}

type op =
  | Nop
  | Mov of Reg.t * operand
  | Unop_neg of Reg.t * operand
  | Binop of binop * Reg.t * operand * operand
  | Fbinop of fbinop * Reg.t * operand * operand
  | Cmp of cmp * Reg.t * operand * operand
  | Load of {
      dst : Reg.t;
      addr : addr;
      width : int;
      annot : Annot.t;
    }
  | Store of {
      src : operand;
      addr : addr;
      width : int;
      annot : Annot.t;
    }
  | Branch of {
      cond : operand;
      target : label;
    }
  | Jump of label
  | Exit of label
  | Rotate of int
  | Amov of {
      src_offset : int;
      dst_offset : int;
    }

type t = {
  id : int;
  op : op;
}

let make ~id op = { id; op }

let is_memory i =
  match i.op with
  | Load _ | Store _ -> true
  | Nop | Mov _ | Unop_neg _ | Binop _ | Fbinop _ | Cmp _ | Branch _ | Jump _
  | Exit _ | Rotate _ | Amov _ ->
    false

let is_load i =
  match i.op with
  | Load _ -> true
  | _ -> false

let is_store i =
  match i.op with
  | Store _ -> true
  | _ -> false

let is_branch i =
  match i.op with
  | Branch _ | Jump _ | Exit _ -> true
  | _ -> false

let is_side_exit i =
  match i.op with
  | Branch _ -> true
  | _ -> false

let mem_addr i =
  match i.op with
  | Load { addr; _ } | Store { addr; _ } -> Some addr
  | _ -> None

let mem_width i =
  match i.op with
  | Load { width; _ } | Store { width; _ } -> Some width
  | _ -> None

let annot i =
  match i.op with
  | Load { annot; _ } | Store { annot; _ } -> annot
  | _ -> Annot.none

let with_annot i annot =
  match i.op with
  | Load l -> { i with op = Load { l with annot } }
  | Store s -> { i with op = Store { s with annot } }
  | _ -> i

let operand_reg = function
  | Reg r -> [ r ]
  | Imm _ -> []

let defs i =
  match i.op with
  | Mov (d, _) | Unop_neg (d, _) | Binop (_, d, _, _) | Fbinop (_, d, _, _)
  | Cmp (_, d, _, _) ->
    [ d ]
  | Load { dst; _ } -> [ dst ]
  | Nop | Store _ | Branch _ | Jump _ | Exit _ | Rotate _ | Amov _ -> []

let uses i =
  match i.op with
  | Nop | Jump _ | Exit _ | Rotate _ | Amov _ -> []
  | Mov (_, s) | Unop_neg (_, s) -> operand_reg s
  | Binop (_, _, a, b) | Fbinop (_, _, a, b) | Cmp (_, _, a, b) ->
    operand_reg a @ operand_reg b
  | Load { addr; _ } -> [ addr.base ]
  | Store { src; addr; _ } -> operand_reg src @ [ addr.base ]
  | Branch { cond; _ } -> operand_reg cond

let latency i =
  match i.op with
  | Load _ -> 3
  | Binop ((Mul | Shl | Shr), _, _, _) -> 3
  | Binop (Div, _, _, _) -> 8
  | Fbinop (Fdiv, _, _, _) -> 12
  | Fbinop ((Fadd | Fsub | Fmul), _, _, _) -> 4
  | Nop | Mov _ | Unop_neg _
  | Binop ((Add | Sub | And | Or | Xor), _, _, _)
  | Cmp _ | Store _ | Branch _ | Jump _ | Exit _ | Rotate _ | Amov _ ->
    1

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let cmp_name = function
  | Eq -> "cmpeq"
  | Ne -> "cmpne"
  | Lt -> "cmplt"
  | Le -> "cmple"
  | Gt -> "cmpgt"
  | Ge -> "cmpge"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Format.pp_print_int ppf n

let pp_addr ppf { base; disp } =
  if disp = 0 then Format.fprintf ppf "[%a]" Reg.pp base
  else Format.fprintf ppf "[%a%+d]" Reg.pp base disp

let pp_annot ppf annot =
  match annot with
  | Annot.No_annot -> ()
  | _ -> Format.fprintf ppf "  {%a}" Annot.pp annot

let pp ppf i =
  match i.op with
  | Nop -> Format.pp_print_string ppf "nop"
  | Mov (d, s) -> Format.fprintf ppf "mov %a = %a" Reg.pp d pp_operand s
  | Unop_neg (d, s) -> Format.fprintf ppf "neg %a = %a" Reg.pp d pp_operand s
  | Binop (b, d, x, y) ->
    Format.fprintf ppf "%s %a = %a, %a" (binop_name b) Reg.pp d pp_operand x
      pp_operand y
  | Fbinop (b, d, x, y) ->
    Format.fprintf ppf "%s %a = %a, %a" (fbinop_name b) Reg.pp d pp_operand x
      pp_operand y
  | Cmp (c, d, x, y) ->
    Format.fprintf ppf "%s %a = %a, %a" (cmp_name c) Reg.pp d pp_operand x
      pp_operand y
  | Load { dst; addr; width; annot } ->
    Format.fprintf ppf "ld%d %a = %a%a" width Reg.pp dst pp_addr addr pp_annot
      annot
  | Store { src; addr; width; annot } ->
    Format.fprintf ppf "st%d %a = %a%a" width pp_addr addr pp_operand src
      pp_annot annot
  | Branch { cond; target } ->
    Format.fprintf ppf "br %a -> %s" pp_operand cond target
  | Jump l -> Format.fprintf ppf "jmp %s" l
  | Exit l -> Format.fprintf ppf "exit -> %s" l
  | Rotate n -> Format.fprintf ppf "rotate %d" n
  | Amov { src_offset; dst_offset } ->
    Format.fprintf ppf "amov %d, %d" src_offset dst_offset

let to_string i = Format.asprintf "%a" pp i
