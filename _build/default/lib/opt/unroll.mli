(** Superblock loop unrolling — the "larger regions" direction the
    paper's conclusion points at ("we believe SMARQ is even more
    promising for larger region and loop level optimizations",
    Section 6.1).

    A superblock whose fall-through returns to its own entry is a
    self-loop region; unrolling concatenates [factor] copies of its
    body (fresh instruction ids per copy, side exits preserved), giving
    the scheduler a region with [factor] times the memory operations —
    more reordering freedom, and proportionally more alias-register
    pressure, which is exactly what separates a 64-register queue from
    a 16-register one. *)

val unroll :
  factor:int -> fresh_id:int ref -> Ir.Superblock.t -> Ir.Superblock.t option
(** [None] when the superblock is not a self-loop or [factor <= 1].
    The result's [final_exit] still returns to the entry. *)
