module I = Ir.Instr

exception Unencodable of string

(* ---- opcodes ---- *)

let op_nop = 0
let op_mov = 1
let op_neg = 2
let op_binop_base = 10  (* + binop ordinal *)
let op_fbinop_base = 20
let op_cmp_base = 30
let op_load = 40
let op_store = 41
let op_br = 50
let op_jmp = 51
let op_halt = 52

let binop_ord = function
  | I.Add -> 0
  | I.Sub -> 1
  | I.Mul -> 2
  | I.Div -> 3
  | I.And -> 4
  | I.Or -> 5
  | I.Xor -> 6
  | I.Shl -> 7
  | I.Shr -> 8

let binop_of_ord = function
  | 0 -> I.Add
  | 1 -> I.Sub
  | 2 -> I.Mul
  | 3 -> I.Div
  | 4 -> I.And
  | 5 -> I.Or
  | 6 -> I.Xor
  | 7 -> I.Shl
  | 8 -> I.Shr
  | n -> invalid_arg (Printf.sprintf "Codec: bad binop ordinal %d" n)

let fbinop_ord = function
  | I.Fadd -> 0
  | I.Fsub -> 1
  | I.Fmul -> 2
  | I.Fdiv -> 3

let fbinop_of_ord = function
  | 0 -> I.Fadd
  | 1 -> I.Fsub
  | 2 -> I.Fmul
  | 3 -> I.Fdiv
  | n -> invalid_arg (Printf.sprintf "Codec: bad fbinop ordinal %d" n)

let cmp_ord = function
  | I.Eq -> 0
  | I.Ne -> 1
  | I.Lt -> 2
  | I.Le -> 3
  | I.Gt -> 4
  | I.Ge -> 5

let cmp_of_ord = function
  | 0 -> I.Eq
  | 1 -> I.Ne
  | 2 -> I.Lt
  | 3 -> I.Le
  | 4 -> I.Gt
  | 5 -> I.Ge
  | n -> invalid_arg (Printf.sprintf "Codec: bad cmp ordinal %d" n)

(* ---- register and operand encoding ---- *)

let imm_marker = 0xff

let encode_reg = function
  | Ir.Reg.R i when i >= 0 && i < 64 -> i
  | Ir.Reg.F i when i >= 0 && i < 64 -> 0x40 lor i
  | Ir.Reg.R _ | Ir.Reg.F _ ->
    raise (Unencodable "register index out of range")
  | Ir.Reg.T _ ->
    raise (Unencodable "optimizer temporaries have no binary encoding")

let decode_reg b =
  let idx = b land 0x3f in
  if b land 0x40 <> 0 then Ir.Reg.F idx else Ir.Reg.R idx

(* ---- record encoding ---- *)

let blank () = Bytes.make Image.record_bytes '\000'

let set_op r v = Bytes.set_uint8 r 0 v
let set_dst r v = Bytes.set_uint8 r 1 v
let set_a r v = Bytes.set_uint8 r 2 v
let set_b r v = Bytes.set_uint8 r 3 v
let set_width r v = Bytes.set_uint8 r 5 v
let set_imm_a r v =
  if v < -32768 || v > 32767 then
    raise (Unencodable "operand-a immediate outside 16 bits");
  Bytes.set_int16_le r 6 v
let set_imm_b r v = Bytes.set_int64_le r 8 (Int64.of_int v)

let get_op r = Bytes.get_uint8 r 0
let get_dst r = Bytes.get_uint8 r 1
let get_a r = Bytes.get_uint8 r 2
let get_b r = Bytes.get_uint8 r 3
let get_width r = Bytes.get_uint8 r 5
let get_imm_a r = Bytes.get_int16_le r 6
let get_imm_b r = Int64.to_int (Bytes.get_int64_le r 8)

let encode_operand_a rec_ = function
  | I.Reg r -> set_a rec_ (encode_reg r)
  | I.Imm n ->
    set_a rec_ imm_marker;
    set_imm_a rec_ n

let encode_operand_b rec_ = function
  | I.Reg r -> set_b rec_ (encode_reg r)
  | I.Imm n ->
    set_b rec_ imm_marker;
    set_imm_b rec_ n

let decode_operand_a rec_ =
  let a = get_a rec_ in
  if a = imm_marker then I.Imm (get_imm_a rec_) else I.Reg (decode_reg a)

let decode_operand_b rec_ =
  let b = get_b rec_ in
  if b = imm_marker then I.Imm (get_imm_b rec_) else I.Reg (decode_reg b)

let encode_instr (i : I.t) =
  let r = blank () in
  (match i.I.op with
  | I.Nop -> set_op r op_nop
  | I.Mov (d, src) ->
    set_op r op_mov;
    set_dst r (encode_reg d);
    encode_operand_b r src
  | I.Unop_neg (d, src) ->
    set_op r op_neg;
    set_dst r (encode_reg d);
    encode_operand_b r src
  | I.Binop (op, d, a, b) ->
    set_op r (op_binop_base + binop_ord op);
    set_dst r (encode_reg d);
    encode_operand_a r a;
    encode_operand_b r b
  | I.Fbinop (op, d, a, b) ->
    set_op r (op_fbinop_base + fbinop_ord op);
    set_dst r (encode_reg d);
    encode_operand_a r a;
    encode_operand_b r b
  | I.Cmp (op, d, a, b) ->
    set_op r (op_cmp_base + cmp_ord op);
    set_dst r (encode_reg d);
    encode_operand_a r a;
    encode_operand_b r b
  | I.Load { dst; addr; width; annot } ->
    if annot <> Ir.Annot.No_annot then
      raise (Unencodable "annotated memory operation in guest code");
    set_op r op_load;
    set_dst r (encode_reg dst);
    set_a r (encode_reg addr.I.base);
    set_width r width;
    set_imm_b r addr.I.disp
  | I.Store { src; addr; width; annot } ->
    if annot <> Ir.Annot.No_annot then
      raise (Unencodable "annotated memory operation in guest code");
    set_op r op_store;
    set_dst r (encode_reg addr.I.base);
    encode_operand_a r src;
    set_width r width;
    set_imm_b r addr.I.disp
  | I.Branch _ | I.Jump _ ->
    raise (Unencodable "raw branches are emitted from terminators")
  | I.Exit _ | I.Rotate _ | I.Amov _ ->
    raise (Unencodable "region-only instruction in guest code"));
  r

(* store instructions put the source in operand-a: immediates must fit
   16 bits there, so wide store immediates go through the b slot...
   they cannot: b holds the displacement.  Reject them instead. *)

let encode_br ~target =
  fun cond ->
   let r = blank () in
   set_op r op_br;
   encode_operand_a r cond;
   set_imm_b r target;
   r

let encode_jmp target =
  let r = blank () in
  set_op r op_jmp;
  set_imm_b r target;
  r

let encode_halt () =
  let r = blank () in
  set_op r op_halt;
  r

(* ---- assembling a program ---- *)

let assemble (p : Ir.Program.t) =
  let labels = Ir.Program.labels p in
  let ordered =
    p.Ir.Program.entry
    :: List.filter (fun l -> not (String.equal l p.Ir.Program.entry)) labels
  in
  (* first pass: index of each block's first instruction *)
  let index_of = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun l ->
      Hashtbl.replace index_of l !next;
      let b = Ir.Program.block p l in
      next := !next + List.length b.Ir.Block.body;
      next :=
        !next
        +
        match b.Ir.Block.terminator with
        | Ir.Block.Fallthrough _ | Ir.Block.Halt -> 1
        | Ir.Block.Cond _ -> 2)
    ordered;
  let image = Image.create ~entry_index:0 ~count:!next in
  let pos = ref 0 in
  let emit r =
    Image.set_record image !pos r;
    incr pos
  in
  List.iter
    (fun l ->
      let b = Ir.Program.block p l in
      List.iter (fun i -> emit (encode_instr i)) b.Ir.Block.body;
      match b.Ir.Block.terminator with
      | Ir.Block.Halt -> emit (encode_halt ())
      | Ir.Block.Fallthrough l' ->
        emit (encode_jmp (Hashtbl.find index_of l'))
      | Ir.Block.Cond { cond; taken; fallthrough; taken_probability = _ } ->
        emit (encode_br ~target:(Hashtbl.find index_of taken) cond);
        emit (encode_jmp (Hashtbl.find index_of fallthrough)))
    ordered;
  Image.to_bytes image

(* ---- disassembling ---- *)

type raw =
  | Plain of I.op
  | Br of I.operand * int
  | Jmp of int
  | Halt_r

let decode_record r =
  let op = get_op r in
  if op = op_nop then Plain I.Nop
  else if op = op_mov then Plain (I.Mov (decode_reg (get_dst r), decode_operand_b r))
  else if op = op_neg then
    Plain (I.Unop_neg (decode_reg (get_dst r), decode_operand_b r))
  else if op >= op_binop_base && op < op_binop_base + 9 then
    Plain
      (I.Binop
         ( binop_of_ord (op - op_binop_base),
           decode_reg (get_dst r),
           decode_operand_a r,
           decode_operand_b r ))
  else if op >= op_fbinop_base && op < op_fbinop_base + 4 then
    Plain
      (I.Fbinop
         ( fbinop_of_ord (op - op_fbinop_base),
           decode_reg (get_dst r),
           decode_operand_a r,
           decode_operand_b r ))
  else if op >= op_cmp_base && op < op_cmp_base + 6 then
    Plain
      (I.Cmp
         ( cmp_of_ord (op - op_cmp_base),
           decode_reg (get_dst r),
           decode_operand_a r,
           decode_operand_b r ))
  else if op = op_load then
    Plain
      (I.Load
         {
           dst = decode_reg (get_dst r);
           addr = { I.base = decode_reg (get_a r); disp = get_imm_b r };
           width = get_width r;
           annot = Ir.Annot.none;
         })
  else if op = op_store then
    Plain
      (I.Store
         {
           src = decode_operand_a r;
           addr = { I.base = decode_reg (get_dst r); disp = get_imm_b r };
           width = get_width r;
           annot = Ir.Annot.none;
         })
  else if op = op_br then Br (decode_operand_a r, get_imm_b r)
  else if op = op_jmp then Jmp (get_imm_b r)
  else if op = op_halt then Halt_r
  else invalid_arg (Printf.sprintf "Codec: unknown opcode %d" op)

let label_of idx = Printf.sprintf "L%d" idx

let disassemble bytes_ =
  let image = Image.of_bytes bytes_ in
  let n = Image.count image in
  let raws = Array.init n (fun i -> decode_record (Image.get_record image i)) in
  (* leaders: entry, branch targets, successors of control records *)
  let is_leader = Array.make (max n 1) false in
  if n > 0 then is_leader.(Image.entry_index image) <- true;
  Array.iteri
    (fun i raw ->
      match raw with
      | Br (_, t) ->
        if t < 0 || t >= n then invalid_arg "Codec: branch target out of range";
        is_leader.(t) <- true;
        if i + 1 < n then is_leader.(i + 1) <- true
      | Jmp t ->
        if t < 0 || t >= n then invalid_arg "Codec: jump target out of range";
        is_leader.(t) <- true;
        if i + 1 < n then is_leader.(i + 1) <- true
      | Halt_r -> if i + 1 < n then is_leader.(i + 1) <- true
      | Plain _ -> ())
    raws;
  (* build blocks *)
  let next_id = ref 1 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let body = ref [] in
    let terminator = ref None in
    let continue = ref true in
    while !continue && !i < n do
      (match raws.(!i) with
      | Plain op ->
        body := I.make ~id:(fresh ()) op :: !body;
        incr i;
        (* a leader right after a plain record splits the block *)
        if !i < n && is_leader.(!i) then begin
          terminator := Some (Ir.Block.Fallthrough (label_of !i));
          continue := false
        end
      | Br (cond, t) ->
        (* BR falls through to the next record *)
        if !i + 1 >= n then invalid_arg "Codec: branch at end of image";
        terminator :=
          Some
            (Ir.Block.Cond
               {
                 cond;
                 taken = label_of t;
                 fallthrough = label_of (!i + 1);
                 taken_probability = 0.5;
               });
        incr i;
        continue := false
      | Jmp t ->
        terminator := Some (Ir.Block.Fallthrough (label_of t));
        incr i;
        continue := false
      | Halt_r ->
        terminator := Some Ir.Block.Halt;
        incr i;
        continue := false)
    done;
    let terminator =
      match !terminator with
      | Some t -> t
      | None -> Ir.Block.Halt  (* ran off the image end *)
    in
    blocks :=
      Ir.Block.make ~label:(label_of start) ~body:(List.rev !body) terminator
      :: !blocks
  done;
  Ir.Program.make
    ~entry:(label_of (Image.entry_index image))
    (List.rev !blocks)
