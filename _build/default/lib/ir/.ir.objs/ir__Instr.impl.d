lib/ir/instr.ml: Annot Format Reg
