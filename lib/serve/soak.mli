(** Sustained soak: mixed plain / fault / verify / heavy traffic
    against one server with deadlines, retries, breakers, and chaos all
    enabled, reporting tail latency (through p99.9), breaker and retry
    totals, and the GC memory ceiling.

    The harness is deterministic by construction: one outstanding
    request per tenant (so per-tenant breakers and retry budgets see a
    total event order), counted budgets everywhere (block deadlines,
    admission-count cooldowns, (seed, rid, attempt)-keyed chaos), and
    private caches for the classes whose counted outcome could depend
    on cache warmth.  Two runs with the same config produce identical
    {!deterministic_json} strings; wall clocks only reach the latency
    summaries. *)

type config = {
  requests : int;
  tenants : int;
  domains : int;
  benches : string array;  (** suite benchmark names, cycled by class *)
  scale : int;  (** workload scale of the normal classes *)
  heavy_scale : int;  (** workload scale of the timeout class *)
  chaos_seed : int;  (** seeds chaos and backoff jitter *)
  chaos : Chaos.config;
  fault_seed : int;  (** PR-3 guest-fault campaigns (plus rid) *)
  fault_rate : float;
  deadline_blocks : int;  (** per-run block budget, normal classes *)
  heavy_blocks : int;  (** block budget the heavy class cannot meet *)
  retry : Retry.policy;
  retry_budget : int;  (** retry tokens per tenant *)
  breaker : Breaker.config;
  shard_policy : Tcache.Policy.t;
  tenant_budget : int option;
  duration_s : float option;
      (** stop submitting past this wall bound; sets [wall_bounded]
          (the report is then not seed-replayable) *)
  gc_every : int;  (** heap-sample cadence, in collected replies *)
}

val default_config : config

type mem = {
  heap_mb_start : float;
  heap_mb_peak : float;  (** sampled every [gc_every] replies *)
  heap_mb_end : float;
  top_heap_mb : float;  (** [Gc.top_heap_words]: the true ceiling *)
  major_collections : int;
}

type report = {
  cfg : config;
  server : Server.report;
  issued : int;  (** requests accepted (equals submissions here) *)
  elapsed_s : float;
  throughput_rps : float;
  mem : mem;
  pool : Exec.Pool.health;  (** snapshot taken just before shutdown *)
  wall_bounded : bool;
}

val run : config -> report
(** Drive the soak to completion (all replies collected, server shut
    down).  Raises [Invalid_argument] on out-of-range config. *)

val deterministic_json : report -> string
(** The seed-replayable core: every counted quantity, no wall clocks.
    Two runs of the same config must return equal strings. *)

val fully_resolved : report -> bool
(** [completed + timed_out + degraded + errors = issued] — every
    accepted request resolved exactly once. *)

val report_json : report -> string
(** The full report: config echo, [deterministic] core, latency
    summaries (p50/p95/p99/p99.9), memory, pool health. *)

val pp : Format.formatter -> report -> unit
