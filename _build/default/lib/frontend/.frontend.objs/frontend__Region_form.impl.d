lib/frontend/region_form.ml: Hashtbl Ir List Liveness Profiler
