lib/runtime/stats.ml: Format Opt Sched
