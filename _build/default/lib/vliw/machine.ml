type journal_entry =
  | Mem_byte of int * int option  (* address, previous byte (None = unset) *)
  | Reg of Ir.Reg.t * int option

type t = {
  regs : (Ir.Reg.t, int) Hashtbl.t;
  mem : (int, int) Hashtbl.t;  (* byte address -> byte value *)
  mutable journal : journal_entry list option;  (* Some = region active *)
}

let create () =
  { regs = Hashtbl.create 64; mem = Hashtbl.create 1024; journal = None }

let copy t =
  {
    regs = Hashtbl.copy t.regs;
    mem = Hashtbl.copy t.mem;
    journal = None;
  }

let get_reg t r = Option.value (Hashtbl.find_opt t.regs r) ~default:0

let set_reg t r v =
  (match t.journal with
  | Some entries ->
    t.journal <- Some (Reg (r, Hashtbl.find_opt t.regs r) :: entries)
  | None -> ());
  Hashtbl.replace t.regs r v

let check_width width =
  if width <= 0 || width > 8 then
    invalid_arg (Printf.sprintf "Machine: unsupported access width %d" width)

let get_byte t addr = Option.value (Hashtbl.find_opt t.mem addr) ~default:0

let set_byte t addr b =
  (match t.journal with
  | Some entries ->
    t.journal <- Some (Mem_byte (addr, Hashtbl.find_opt t.mem addr) :: entries)
  | None -> ());
  Hashtbl.replace t.mem addr (b land 0xff)

let load t ~addr ~width =
  check_width width;
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((acc lsl 8) lor get_byte t (addr + i))
  in
  go (width - 1) 0

let store t ~addr ~width v =
  check_width width;
  for i = 0 to width - 1 do
    set_byte t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

let checkpoint t =
  match t.journal with
  | Some _ -> invalid_arg "Machine.checkpoint: region already active"
  | None -> t.journal <- Some []

let commit t =
  match t.journal with
  | None -> invalid_arg "Machine.commit: no active region"
  | Some _ -> t.journal <- None

let rollback t =
  match t.journal with
  | None -> invalid_arg "Machine.rollback: no active region"
  | Some entries ->
    t.journal <- None;
    let undo = function
      | Mem_byte (addr, Some b) -> Hashtbl.replace t.mem addr b
      | Mem_byte (addr, None) -> Hashtbl.remove t.mem addr
      | Reg (r, Some v) -> Hashtbl.replace t.regs r v
      | Reg (r, None) -> Hashtbl.remove t.regs r
    in
    List.iter undo entries

let in_region t = Option.is_some t.journal

let guest_regs t =
  Hashtbl.fold
    (fun r v acc -> if Ir.Reg.is_temp r then acc else (r, v) :: acc)
    t.regs []
  |> List.filter (fun (_, v) -> v <> 0)
  |> List.sort (fun (a, _) (b, _) -> Ir.Reg.compare a b)

let mem_bytes t =
  Hashtbl.fold (fun a b acc -> if b <> 0 then (a, b) :: acc else acc) t.mem []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let equal_guest_state a b = guest_regs a = guest_regs b && mem_bytes a = mem_bytes b

let diff_guest_state a b =
  let diffs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  let regs_a = guest_regs a and regs_b = guest_regs b in
  if regs_a <> regs_b then begin
    let tbl = Hashtbl.create 32 in
    List.iter (fun (r, v) -> Hashtbl.replace tbl r (Some v, None)) regs_a;
    List.iter
      (fun (r, v) ->
        match Hashtbl.find_opt tbl r with
        | Some (x, _) -> Hashtbl.replace tbl r (x, Some v)
        | None -> Hashtbl.replace tbl r (None, Some v))
      regs_b;
    Hashtbl.iter
      (fun r (x, y) ->
        if x <> y then
          note "reg %s: %s vs %s" (Ir.Reg.to_string r)
            (match x with Some v -> string_of_int v | None -> "0")
            (match y with Some v -> string_of_int v | None -> "0"))
      tbl
  end;
  let mem_a = mem_bytes a and mem_b = mem_bytes b in
  if mem_a <> mem_b then begin
    let tbl = Hashtbl.create 64 in
    List.iter (fun (ad, v) -> Hashtbl.replace tbl ad (Some v, None)) mem_a;
    List.iter
      (fun (ad, v) ->
        match Hashtbl.find_opt tbl ad with
        | Some (x, _) -> Hashtbl.replace tbl ad (x, Some v)
        | None -> Hashtbl.replace tbl ad (None, Some v))
      mem_b;
    Hashtbl.iter
      (fun ad (x, y) ->
        if x <> y then
          note "mem[%d]: %s vs %s" ad
            (match x with Some v -> string_of_int v | None -> "0")
            (match y with Some v -> string_of_int v | None -> "0"))
      tbl
  end;
  List.rev !diffs

let touched_addresses t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.mem [] |> List.sort Int.compare
