lib/vliw/region_exec.ml: Array Cache Config Eval Hw Ir List Machine Printf
