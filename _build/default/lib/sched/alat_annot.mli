(** ALAT (Itanium-like) annotation post-pass.

    Marks as {e advanced} every load whose protection the table must
    provide: loads that actually issued before a may-alias store they
    originally followed (a dropped dependence realized by the
    schedule), and loads acting as forwarding sources of a speculative
    load elimination (extended dependences).  Stores snoop the table
    implicitly; they receive a plain [Alat] annotation for
    readability. *)

val annotate :
  sb:Ir.Superblock.t ->
  deps:Analysis.Depgraph.t ->
  hazards:Hazards.t ->
  issue_order:(int * Ir.Instr.t) list ->
  (int * Ir.Annot.t) list
