type queue = {
  offset : int;
  p : bool;
  c : bool;
}

type mask = {
  set_index : int option;
  check_mask : int;
}

type alat = { advanced : bool }

type t =
  | No_annot
  | Queue of queue
  | Mask of mask
  | Alat of alat

let none = No_annot
let queue ~offset ~p ~c = Queue { offset; p; c }
let mask ~set_index ~check_mask = Mask { set_index; check_mask }
let alat ~advanced = Alat { advanced }

let equal a b =
  match a, b with
  | No_annot, No_annot -> true
  | Queue x, Queue y -> x.offset = y.offset && x.p = y.p && x.c = y.c
  | Mask x, Mask y -> x.set_index = y.set_index && x.check_mask = y.check_mask
  | Alat x, Alat y -> x.advanced = y.advanced
  | (No_annot | Queue _ | Mask _ | Alat _), _ -> false

let pp ppf = function
  | No_annot -> ()
  | Queue { offset; p; c } ->
    Format.fprintf ppf "@@%d%s%s" offset (if p then "P" else "")
      (if c then "C" else "")
  | Mask { set_index; check_mask } ->
    (match set_index with
    | Some i -> Format.fprintf ppf "set:%d" i
    | None -> ());
    if check_mask <> 0 then Format.fprintf ppf " chk:%#x" check_mask
  | Alat { advanced } -> if advanced then Format.pp_print_string ppf "ld.a"
