(* The robustness layer: deterministic fault injection, the livelock
   watchdog's graceful degradation, structured fuel exhaustion, and the
   differential interpreter oracle. *)

open Helpers
module I = Ir.Instr

(* The suite_runtime colliding loop: a genuine periodic alias, so
   injected faults land on top of real recovery traffic. *)
let colliding_loop ~iters =
  let bld = Workload.Builder.create () in
  let a = r 1 and b = r 2 and idx = r 4 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x1000);
         I.Mov (b, I.Imm 0x2000);
         I.Mov (idx, I.Imm iters);
       ])
    ~next:"loop";
  let body =
    Workload.Builder.instrs bld
      [
        I.Binop (I.And, r 6, I.Reg idx, I.Imm 7);
        I.Binop (I.Mul, r 6, I.Reg (r 6), I.Imm 64);
        I.Binop (I.Add, r 7, I.Reg a, I.Reg (r 6));
        I.Load { dst = f 1; addr = { I.base = b; disp = 0 }; width = 8;
                 annot = Ir.Annot.none };
        I.Store { src = I.Reg (f 1); addr = { I.base = r 7; disp = 0 };
                  width = 8; annot = Ir.Annot.none };
        I.Load { dst = f 2; addr = { I.base = a; disp = 0 }; width = 8;
                 annot = Ir.Annot.none };
        I.Fbinop (I.Fadd, f 3, I.Reg (f 2), I.Reg (f 1));
        I.Store { src = I.Reg (f 3); addr = { I.base = b; disp = 8 };
                  width = 8; annot = Ir.Annot.none };
      ]
  in
  Workload.Builder.loop_back bld "loop" body ~counter:idx ~back_to:"loop"
    ~exit_to:"end" ~iters;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let schemes =
  [
    Smarq.Scheme.Smarq 64;
    Smarq.Scheme.Smarq 16;
    Smarq.Scheme.Alat;
    Smarq.Scheme.Efficeon;
    Smarq.Scheme.None_;
  ]

let test_prng_deterministic () =
  let a = Verify.Prng.create ~seed:42 in
  let b = Verify.Prng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Verify.Prng.next a)
      (Verify.Prng.next b)
  done;
  let c = Verify.Prng.create ~seed:43 in
  Alcotest.(check bool) "different seeds diverge" true
    (Verify.Prng.next a <> Verify.Prng.next c);
  let f = Verify.Prng.float a in
  Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
  let i = Verify.Prng.int a 7 in
  Alcotest.(check bool) "int in bound" true (i >= 0 && i < 7)

(* The acceptance property, as a fixed smoke here and as a QCheck
   property below: with fault injection at any seed, every scheme's
   final guest state equals the interpreter oracle's. *)
let check_campaign ~seed ~rate =
  let program = colliding_loop ~iters:120 in
  let report =
    Verify.Oracle.check
      ~fault:(fun ~seed ~rate () -> Verify.Fault.plan ~seed ~rate ())
      ~seed ~rate ~name:"colliding_loop" ~schemes program
  in
  if not (Verify.Oracle.ok report) then
    Alcotest.failf "campaign diverged (seed %d rate %.3f):@.%a" seed rate
      Verify.Oracle.pp_report report;
  report

let test_oracle_no_faults () =
  let report =
    Verify.Oracle.check ~name:"colliding_loop" ~schemes
      (colliding_loop ~iters:200)
  in
  Alcotest.(check bool) "all schemes match oracle" true
    (Verify.Oracle.ok report);
  List.iter
    (fun (e : Verify.Oracle.entry) ->
      Alcotest.(check int) "nothing injected" 0 e.Verify.Oracle.injected;
      Alcotest.(check int) "no spurious rollbacks" 0
        e.Verify.Oracle.stats.Runtime.Stats.spurious_rollbacks)
    report.Verify.Oracle.entries

let test_campaign_injects () =
  (* at a meaty rate the campaign must actually perturb the run, and
     the stats plumbing must see it *)
  let report = check_campaign ~seed:7 ~rate:0.4 in
  let total_injected =
    List.fold_left
      (fun acc (e : Verify.Oracle.entry) -> acc + e.Verify.Oracle.injected)
      0 report.Verify.Oracle.entries
  in
  Alcotest.(check bool) "faults were injected" true (total_injected > 0);
  List.iter
    (fun (e : Verify.Oracle.entry) ->
      Alcotest.(check int) "injected flows into stats"
        e.Verify.Oracle.injected
        e.Verify.Oracle.stats.Runtime.Stats.injected_faults)
    report.Verify.Oracle.entries

let test_campaign_deterministic () =
  let stats_fingerprint (r : Verify.Oracle.report) =
    List.map
      (fun (e : Verify.Oracle.entry) ->
        ( e.Verify.Oracle.scheme,
          e.Verify.Oracle.injected,
          e.Verify.Oracle.stats.Runtime.Stats.total_cycles,
          e.Verify.Oracle.stats.Runtime.Stats.rollbacks ))
      r.Verify.Oracle.entries
  in
  let a = check_campaign ~seed:11 ~rate:0.2 in
  let b = check_campaign ~seed:11 ~rate:0.2 in
  Alcotest.(check bool) "same seed, same campaign" true
    (stats_fingerprint a = stats_fingerprint b)

let qtest_campaign_converges =
  qcase ~count:12 "any (seed, rate): optimized state = oracle state"
    (QCheck.make
       ~print:(fun (seed, rate) -> Printf.sprintf "seed=%d rate=%.3f" seed rate)
       QCheck.Gen.(pair (int_bound 1_000_000) (float_range 0.0 0.35)))
    (fun (seed, rate) ->
      ignore (check_campaign ~seed ~rate);
      true)

let test_storm_walks_the_ladder () =
  (* an endless violation storm on one hot region must climb every
     rung — known-alias, pin, give-up — and then be degraded by the
     watchdog instead of livelocking, still converging to the oracle *)
  let program = colliding_loop ~iters:300 in
  let oracle = Verify.Oracle.reference program in
  let plan = Verify.Fault.forced_storm ~seed:5 () in
  let scheme = Runtime.Driver.scheme_smarq ~ar_count:64 () in
  let scheme =
    {
      scheme with
      Runtime.Driver.detector =
        Verify.Fault.wrap plan scheme.Runtime.Driver.detector;
    }
  in
  let r =
    Runtime.Driver.run
      ~config:(Vliw.Config.with_alias_registers Vliw.Config.default 64)
      ~max_reopts:5 ~watchdog:9 ~fuel:10_000_000
      ~hooks:(Verify.Fault.hooks plan) ~scheme program
  in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "completed" true
    (r.Runtime.Driver.outcome = Runtime.Driver.Completed);
  Alcotest.(check bool) "storm injected repeatedly" true
    (st.Runtime.Stats.injected_faults >= 10);
  Alcotest.(check bool) "pin rung reached (two distinct ops)" true
    (st.Runtime.Stats.pinned_ops >= 2);
  Alcotest.(check int) "give-up rung reached exactly once" 1
    st.Runtime.Stats.gave_up_regions;
  Alcotest.(check int) "watchdog degraded the region" 1
    st.Runtime.Stats.degraded_regions;
  Alcotest.(check bool) "no livelock: bounded rollbacks" true
    (st.Runtime.Stats.rollbacks <= 12);
  Alcotest.(check int) "every rollback was injected"
    st.Runtime.Stats.rollbacks st.Runtime.Stats.spurious_rollbacks;
  Alcotest.(check bool) "state equals oracle despite the storm" true
    (Vliw.Machine.equal_guest_state oracle r.Runtime.Driver.machine)

let test_degraded_region_stays_interpreted () =
  let program = colliding_loop ~iters:300 in
  let plan = Verify.Fault.forced_storm ~seed:5 () in
  let scheme = Runtime.Driver.scheme_smarq ~ar_count:64 () in
  let scheme =
    {
      scheme with
      Runtime.Driver.detector =
        Verify.Fault.wrap plan scheme.Runtime.Driver.detector;
    }
  in
  let r =
    Runtime.Driver.run
      ~config:(Vliw.Config.with_alias_registers Vliw.Config.default 64)
      ~max_reopts:5 ~watchdog:9 ~fuel:10_000_000
      ~hooks:(Verify.Fault.hooks plan) ~scheme program
  in
  let st = r.Runtime.Driver.stats in
  (* after degradation the loop runs interpreted: region entries stop
     at the watchdog bound while interpreted instructions dominate *)
  Alcotest.(check bool) "region entries bounded by the watchdog" true
    (st.Runtime.Stats.region_entries <= 12);
  Alcotest.(check bool) "the loop ran interpreted afterwards" true
    (st.Runtime.Stats.instrs_interpreted > 2000)

let test_tcache_faults_survivable () =
  (* a campaign heavy enough that translation-cache invalidations and
     flushes actually happen, and the system still converges *)
  let program = colliding_loop ~iters:250 in
  let oracle = Verify.Oracle.reference program in
  let plan = Verify.Fault.plan ~seed:3 ~rate:0.6 () in
  let r, _injected =
    Verify.Oracle.run_scheme ~fault:plan ~scheme:(Smarq.Scheme.Smarq 64)
      program
  in
  let c = Verify.Fault.counters plan in
  Alcotest.(check bool) "tcache faults delivered" true
    (c.Verify.Fault.tcache_invalidate + c.Verify.Fault.tcache_flush > 0);
  Alcotest.(check bool) "completed" true
    (r.Runtime.Driver.outcome = Runtime.Driver.Completed);
  Alcotest.(check bool) "state equals oracle" true
    (Vliw.Machine.equal_guest_state oracle r.Runtime.Driver.machine)

let test_fuel_exhaustion_structured () =
  let program = colliding_loop ~iters:100_000 in
  let r =
    Runtime.Driver.run ~fuel:500
      ~scheme:(Runtime.Driver.scheme_smarq ~ar_count:64 ())
      ~config:(Vliw.Config.with_alias_registers Vliw.Config.default 64)
      program
  in
  Alcotest.(check bool) "fuel exhaustion is an outcome, not an exception"
    true
    (r.Runtime.Driver.outcome = Runtime.Driver.Fuel_exhausted);
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "partial stats survive" true
    (st.Runtime.Stats.total_cycles > 0
    && st.Runtime.Stats.instrs_interpreted > 0);
  Alcotest.(check bool) "wall clock set on the fuel path" true
    (st.Runtime.Stats.wall_seconds >= 0.0
    && st.Runtime.Stats.wall_seconds < 60.0)

let test_campaign_runner () =
  let cfg =
    {
      Verify.Campaign.default_config with
      Verify.Campaign.seeds = [ 1; 2 ];
      rate = 0.1;
      schemes = [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Alat ];
    }
  in
  let runs =
    Verify.Campaign.run_program cfg ~name:"colliding_loop" (fun () ->
        colliding_loop ~iters:150)
  in
  Alcotest.(check int) "seeds x schemes runs" 4 (List.length runs);
  List.iter
    (fun (c : Verify.Campaign.run) ->
      if not (Verify.Oracle.entry_ok c.Verify.Campaign.entry) then
        Alcotest.failf "campaign cell failed: %a" Verify.Oracle.pp_entry
          c.Verify.Campaign.entry;
      let line = Verify.Campaign.json_line cfg c in
      Alcotest.(check bool) "json line shape" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}'))
    runs

let suite =
  ( "verify",
    [
      case "prng is seed-deterministic" test_prng_deterministic;
      case "oracle: all schemes match without faults" test_oracle_no_faults;
      case "fault campaign injects and counts" test_campaign_injects;
      case "fault campaign is seed-deterministic" test_campaign_deterministic;
      qtest_campaign_converges;
      case "violation storm walks known-alias -> pin -> give-up -> degrade"
        test_storm_walks_the_ladder;
      case "degraded region stays interpreter-only"
        test_degraded_region_stays_interpreted;
      case "tcache invalidation/flush faults are survivable"
        test_tcache_faults_survivable;
      case "fuel exhaustion returns a structured outcome"
        test_fuel_exhaustion_structured;
      case "campaign runner emits one ok JSON line per cell"
        test_campaign_runner;
    ] )
