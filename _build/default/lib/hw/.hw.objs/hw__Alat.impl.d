lib/hw/alat.ml: Access Detector Ir List
