(** Execution-count profiling for hot-region detection.

    The dynamic optimization system interprets cold code while counting
    basic-block executions; when a block's count crosses
    [hot_threshold] it becomes a region seed (Section 6: "when a hot
    block is identified ... the dynamic optimizer forms a region along
    the hot execution paths ... until it reaches a cold block"). *)

type t

val create : ?hot_threshold:int -> ?cold_fraction:float -> unit -> t
(** [hot_threshold] defaults to 50 executions; a block is {e cold}
    relative to a seed when its count is below [cold_fraction] (default
    0.25) of the seed's count. *)

val note_execution : t -> Ir.Instr.label -> unit

val note_edge : t -> Ir.Instr.label -> Ir.Instr.label -> unit
(** Record one traversal of the control edge [from -> to].  Binary
    images carry no branch-probability hints, so edge counts are the
    only source of bias for region formation on disassembled code. *)

val edge_bias :
  t -> from_:Ir.Instr.label -> taken:Ir.Instr.label ->
  fallthrough:Ir.Instr.label -> float option
(** Profiled probability of the taken arm; [None] until at least 16
    traversals of the conditional have been observed. *)

val count : t -> Ir.Instr.label -> int
val is_hot : t -> Ir.Instr.label -> bool
val is_cold_relative : t -> seed_count:int -> Ir.Instr.label -> bool
val hot_threshold : t -> int
