module RS = Ir.Reg.Set

type t = {
  live_in_tbl : (Ir.Instr.label, RS.t) Hashtbl.t;
  program : Ir.Program.t;
}

let all_guest = RS.of_list Ir.Reg.all_guest

let operand_regs = function
  | Ir.Instr.Reg r -> [ r ]
  | Ir.Instr.Imm _ -> []

let terminator_uses (b : Ir.Block.t) =
  match b.terminator with
  | Ir.Block.Cond { cond; _ } -> operand_regs cond
  | Ir.Block.Fallthrough _ | Ir.Block.Halt -> []

(* live-in(b) = use(b) U (live-out(b) \ def(b)), computed backwards
   through the straight-line body. *)
let transfer (b : Ir.Block.t) live_out =
  let after_body =
    List.fold_left (fun acc r -> RS.add r acc) live_out (terminator_uses b)
  in
  List.fold_right
    (fun (i : Ir.Instr.t) live ->
      let live = List.fold_left (fun acc r -> RS.remove r acc) live
          (Ir.Instr.defs i)
      in
      List.fold_left (fun acc r -> RS.add r acc) live (Ir.Instr.uses i))
    b.body after_body

let analyze program =
  let labels = Ir.Program.labels program in
  let live_in_tbl = Hashtbl.create (List.length labels * 2) in
  List.iter (fun l -> Hashtbl.replace live_in_tbl l RS.empty) labels;
  let live_in l = Option.value (Hashtbl.find_opt live_in_tbl l) ~default:RS.empty in
  let live_out_of (b : Ir.Block.t) =
    match b.terminator with
    | Ir.Block.Halt -> all_guest
    | Ir.Block.Fallthrough l -> live_in l
    | Ir.Block.Cond { taken; fallthrough; _ } ->
      RS.union (live_in taken) (live_in fallthrough)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let b = Ir.Program.block program l in
        let new_in = transfer b (live_out_of b) in
        if not (RS.equal new_in (live_in l)) then begin
          Hashtbl.replace live_in_tbl l new_in;
          changed := true
        end)
      labels
  done;
  { live_in_tbl; program }

let live_in t l =
  Option.value (Hashtbl.find_opt t.live_in_tbl l) ~default:all_guest

let live_out_of_block t (b : Ir.Block.t) =
  match b.terminator with
  | Ir.Block.Halt -> all_guest
  | Ir.Block.Fallthrough l -> live_in t l
  | Ir.Block.Cond { taken; fallthrough; _ } ->
    RS.union (live_in t taken) (live_in t fallthrough)
