(** Reusable code shapes for the synthetic benchmark suite.

    Each kernel emits the body of one basic block.  Address bases are
    guest integer registers the caller set up to point at distinct
    memory regions, so loads and stores through different bases are
    may-alias to the optimizer yet rarely (or never) collide at
    runtime — exactly the speculation opportunity the paper targets. *)

type regs = {
  a : Ir.Reg.t;  (** array A base *)
  b : Ir.Reg.t;  (** array B base *)
  c : Ir.Reg.t;  (** array C base *)
  idx : Ir.Reg.t;  (** loop counter (counts down) *)
}

val stream :
  Builder.t -> regs -> ?disp0:int -> width:int -> lanes:int -> depth:int ->
  unit -> Ir.Instr.t list
(** [lanes] independent A[i] = f(B[i], C[i]) chains of FP [depth];
    loads through [b]/[c], stores through [a].  [disp0] offsets the
    displacement window so different blocks touch distinct elements. *)

val stencil :
  Builder.t -> regs -> ?disp0:int -> width:int -> taps:int -> unit ->
  Ir.Instr.t list
(** A[i] = sum of [taps] neighbouring B elements — many loads per
    store, long reduction chain. *)

val pointer_chase :
  Builder.t -> regs -> width:int -> hops:int -> Ir.Instr.t list
(** Serially dependent loads (each feeds the next address) interleaved
    with stores through [a]; the chased base defeats compile-time
    disambiguation entirely. *)

val reduction :
  Builder.t -> regs -> ?disp0:int -> width:int -> terms:int -> acc:Ir.Reg.t ->
  unit -> Ir.Instr.t list
(** acc += B[i] * C[i] over [terms] elements. *)

val store_burst :
  Builder.t -> regs -> ?disp0:int -> ?lane:int -> width:int ->
  slow_chain:int -> stores:int -> unit -> Ir.Instr.t list
(** One store whose datum needs a [slow_chain]-deep FP chain, followed
    by [stores] cheap stores through a different base: profitable only
    when stores may reorder (the mesa pattern of Figure 16). *)

val rmw :
  Builder.t -> regs -> ?disp0:int -> ?chain:int -> width:int ->
  updates:int -> unit -> Ir.Instr.t list
(** A cross-base store followed by [updates] read-modify-write pairs
    on array A.  The loads hoist above the store; the same-location
    store that follows each load is provably ordered — benign — yet an
    ALAT store snoop hits the advanced load's entry: the canonical
    Itanium false positive (Figure 3 of the paper).  SMARQ's
    anti-constraints keep the benign pair check-free. *)

val alias_probe :
  Builder.t -> regs -> ?slow:int -> width:int -> period_log2:int ->
  store:bool -> unit -> Ir.Instr.t list
(** A slow store to A[0] followed by a cheap probe access through a
    base precomputed by the previous iteration; the probe overtakes the
    slow store under speculation and genuinely collides with it every
    [2^period_log2] iterations (when the loop stride matches the masked
    counter) — the source of real rollbacks.  [store] selects a
    store-store collision (detected only by schemes that reorder and
    check stores) or a load-store one. *)

val reread :
  Builder.t -> regs -> ?disp0:int -> width:int -> pairs:int -> unit ->
  Ir.Instr.t list
(** Redundant load and overwritten-store pairs around cross-base
    accesses: fodder for speculative load-load forwarding and store
    elimination, exercising both EXTENDED-DEPENDENCE rules at
    runtime. *)

val direct :
  Builder.t -> regs -> region:int -> width:int -> pairs:int -> unit ->
  Ir.Instr.t list
(** Absolute-address store/load pairs whose bases are materialized from
    immediates in the block: invisible to the base-register heuristic,
    fully disambiguated by constant propagation (related work [13]). *)

val filler : Builder.t -> regs -> chains:int -> depth:int -> Ir.Instr.t list
(** [chains] independent integer ALU chains of length [depth] — slot
    filler that narrows the gap between speculative and conservative
    schedules the way real scalar work does. *)

val bump_bases : Builder.t -> regs -> stride:int -> Ir.Instr.t list
(** Advance the three array bases by [stride] bytes. *)
