test/suite_runtime.ml: Alcotest Frontend Helpers Ir List Runtime Smarq Vliw Workload
