test/suite_binary.ml: Alcotest Binary Bytes Frontend Helpers Ir List Printf Runtime Smarq Vliw Workload
