type annot_scheme =
  | Queue_scheme
  | Naive_queue_scheme
  | Mask_scheme
  | Alat_scheme
  | No_scheme

type t = {
  name : string;
  scheme : annot_scheme;
  ar_count : int;
  hoist_load_above_store : bool;
  sink_load_below_store : bool;
  reorder_store_store : bool;
  allow_load_load_forward : bool;
  allow_store_load_forward : bool;
  allow_store_elim : bool;
  static_disambiguation : bool;
  certify : bool;
}

let smarq ~ar_count =
  {
    name = Printf.sprintf "smarq%d" ar_count;
    scheme = Queue_scheme;
    ar_count;
    hoist_load_above_store = true;
    sink_load_below_store = true;
    reorder_store_store = true;
    allow_load_load_forward = true;
    allow_store_load_forward = true;
    allow_store_elim = true;
    static_disambiguation = false;
    certify = false;
  }

let naive_order ~ar_count =
  {
    name = Printf.sprintf "naive%d" ar_count;
    scheme = Naive_queue_scheme;
    ar_count;
    hoist_load_above_store = true;
    sink_load_below_store = true;
    reorder_store_store = true;
    allow_load_load_forward = false;
    allow_store_load_forward = false;
    allow_store_elim = false;
    static_disambiguation = false;
    certify = false;
  }

let smarq_no_store_reorder ~ar_count =
  {
    (smarq ~ar_count) with
    name = Printf.sprintf "smarq%d-nostreorder" ar_count;
    reorder_store_store = false;
  }

let alat () =
  {
    name = "alat";
    scheme = Alat_scheme;
    ar_count = 32;
    hoist_load_above_store = true;
    sink_load_below_store = false;
    reorder_store_store = false;
    allow_load_load_forward = true;
    allow_store_load_forward = false;
    allow_store_elim = false;
    static_disambiguation = false;
    certify = false;
  }

let efficeon () =
  {
    name = "efficeon";
    scheme = Mask_scheme;
    ar_count = 15;
    hoist_load_above_store = true;
    sink_load_below_store = true;
    reorder_store_store = true;
    allow_load_load_forward = true;
    allow_store_load_forward = true;
    allow_store_elim = true;
    static_disambiguation = false;
    certify = false;
  }

let none () =
  {
    name = "none";
    scheme = No_scheme;
    ar_count = 0;
    hoist_load_above_store = false;
    sink_load_below_store = false;
    reorder_store_store = false;
    allow_load_load_forward = false;
    allow_store_load_forward = false;
    allow_store_elim = false;
    static_disambiguation = false;
    certify = false;
  }

let none_with_analysis () =
  { (none ()) with name = "none+static"; static_disambiguation = true }

(* The name is deliberately left alone: certification changes which
   dependences exist, not which scheme the region is annotated for. *)
let with_certify t = { t with certify = true }

let speculates t =
  t.hoist_load_above_store || t.sink_load_below_store
  || t.reorder_store_store || t.allow_load_load_forward
  || t.allow_store_load_forward || t.allow_store_elim

let may_drop_edge t ~first ~second =
  match Ir.Instr.is_store first, Ir.Instr.is_store second with
  | true, true -> t.reorder_store_store
  | true, false -> t.hoist_load_above_store  (* load hoisted above store *)
  | false, true -> t.sink_load_below_store  (* store hoisted above load *)
  | false, false -> false  (* load-load pairs carry no dependence *)
