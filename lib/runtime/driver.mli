(** The dynamic optimization system of Figure 1: interpret cold code
    while profiling, form superblocks at hot seeds, optimize them
    speculatively, execute the translations as atomic regions on the
    VLIW, and service alias exceptions by rolling back and
    re-optimizing conservatively.

    Re-optimization policy: the violating pair is added to the region's
    known-alias set; if the same pair violates again (possible only for
    schemes with false positives), both operations are pinned —
    excluded from speculation entirely; after [max_reopts] the region
    is rebuilt without speculation for good. *)

type scheme = {
  policy : Sched.Policy.t;
  detector : Hw.Detector.t;
}

val scheme_smarq : ?ar_count:int -> unit -> scheme
(** Defaults to 64 alias registers. *)

val scheme_smarq_no_store_reorder : ?ar_count:int -> unit -> scheme

(** Program-order allocation on the same ordered-queue hardware
    (the Section 2.4 baseline SMARQ improves on). *)
val scheme_naive_order : ?ar_count:int -> unit -> scheme

val scheme_alat : unit -> scheme
val scheme_efficeon : unit -> scheme
val scheme_none : unit -> scheme

val scheme_none_with_analysis : unit -> scheme
(** No hardware, but constant-base static disambiguation (related
    work [13]): the measure of how far software-only analysis gets. *)

type result = {
  stats : Stats.t;
  machine : Vliw.Machine.t;
}

val run :
  ?config:Vliw.Config.t ->
  ?max_blocks:int ->
  ?hot_threshold:int ->
  ?max_reopts:int ->
  ?fuel:int ->
  ?unroll:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  scheme:scheme ->
  Ir.Program.t ->
  result
(** Runs the program to halt under the dynamic optimization system.
    [fuel] bounds executed guest blocks (default 2,000,000); raises
    [Frontend.Interp.Out_of_fuel] beyond it.  [unroll] (default 1)
    unrolls self-loop superblocks that many times before optimization —
    the larger-regions experiment of the paper's conclusion.

    Translations live in a {!Tcache.Store.t}: [tcache_policy] (default
    [Unbounded], which reproduces the unbounded-cache behavior cycle
    for cycle) and [tcache_capacity] (scheduled-region instructions)
    bound the code cache; evicted regions are re-translated when their
    entry label turns hot again.  Committed region exits are chained to
    resident translations so repeat dispatches skip the cache lookup;
    the cache's telemetry is folded into the result's [stats]. *)
