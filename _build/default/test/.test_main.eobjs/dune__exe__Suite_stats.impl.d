test/suite_stats.ml: Alcotest Format Helpers Runtime Sched Smarq String
