(* Speculative elimination passes and the optimizer pipeline. *)

open Helpers
module I = Ir.Instr
module DG = Analysis.Depgraph

let run_elim ?(policy = Sched.Policy.smarq ~ar_count:64) body =
  let alias = Analysis.May_alias.analyze ~body () in
  let fresh_id = ref 1000 in
  Opt.Elim.run ~policy ~alias ~body ~fresh_id

let count_loads body = List.length (List.filter I.is_load body)
let count_stores body = List.length (List.filter I.is_store body)

let test_load_load_forwarding () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let s = st (I.Imm 9) (r 2) 0 in  (* may-alias store in between *)
  let l2 = ld (f 2) (r 1) 0 in
  let res = run_elim [ l1; s; l2 ] in
  Alcotest.(check int) "one load eliminated" 1 res.Opt.Elim.loads_eliminated;
  Alcotest.(check int) "one load remains" 1 (count_loads res.Opt.Elim.body);
  Alcotest.(check bool) "speculation recorded" true
    (List.mem (l1.I.id, s.I.id) res.Opt.Elim.assumed_no_alias);
  match res.Opt.Elim.eliminations with
  | [ (DG.Load_forwarded { source; eliminated }, between) ] ->
    Alcotest.(check int) "source is first load" l1.I.id source;
    Alcotest.(check int) "eliminated is second" l2.I.id eliminated;
    Alcotest.(check bool) "store in between set" true
      (List.exists (fun (i : I.t) -> i.I.id = s.I.id) between)
  | _ -> Alcotest.fail "expected one load forwarding"

let test_store_load_forwarding () =
  reset_ids ();
  let s1 = st (I.Reg (f 5)) (r 1) 8 in
  let l = ld (f 2) (r 1) 8 in
  let res = run_elim [ s1; l ] in
  Alcotest.(check int) "load eliminated" 1 res.Opt.Elim.loads_eliminated;
  (* the captured value flows through a temp; semantics preserved even
     when the source register is clobbered in between *)
  let m = Vliw.Machine.create () in
  Vliw.Machine.set_reg m (r 1) 100;
  Vliw.Machine.set_reg m (f 5) 42;
  List.iter (Vliw.Eval.exec_data m) res.Opt.Elim.body;
  Alcotest.(check int) "forwarded value" 42 (Vliw.Machine.get_reg m (f 2))

let test_forwarding_through_clobbered_source () =
  reset_ids ();
  let s1 = st (I.Reg (f 5)) (r 1) 8 in
  let clobber = mk (I.Mov (f 5, I.Imm 0)) in
  let l = ld (f 2) (r 1) 8 in
  let res = run_elim [ s1; clobber; l ] in
  Alcotest.(check int) "load eliminated" 1 res.Opt.Elim.loads_eliminated;
  let m = Vliw.Machine.create () in
  Vliw.Machine.set_reg m (r 1) 100;
  Vliw.Machine.set_reg m (f 5) 42;
  List.iter (Vliw.Eval.exec_data m) res.Opt.Elim.body;
  Alcotest.(check int) "captured before clobber" 42 (Vliw.Machine.get_reg m (f 2))

let test_no_forwarding_across_must_alias_store () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let killer = st ~width:8 (I.Imm 7) (r 1) 0 in  (* same location *)
  let l2 = ld (f 2) (r 1) 0 in
  let res = run_elim [ l1; killer; l2 ] in
  (* l2 forwards from the store (store-to-load), not from l1 *)
  (match res.Opt.Elim.eliminations with
  | [ (DG.Load_forwarded { source; _ }, _) ] ->
    Alcotest.(check int) "forwards from the store" killer.I.id source
  | [] -> ()  (* also acceptable: width mismatch blocks it *)
  | _ -> Alcotest.fail "unexpected eliminations");
  ignore l1

let test_width_mismatch_blocks_forwarding () =
  reset_ids ();
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l = ld ~width:4 (f 1) (r 1) 0 in
  let res = run_elim [ s1; l ] in
  Alcotest.(check int) "no elimination across widths" 0
    res.Opt.Elim.loads_eliminated

let test_base_redefinition_blocks_forwarding () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let bump = mk (I.Binop (I.Add, r 1, I.Reg (r 1), I.Imm 8)) in
  let l2 = ld (f 2) (r 1) 0 in
  let res = run_elim [ l1; bump; l2 ] in
  Alcotest.(check int) "different addresses, kept" 0
    res.Opt.Elim.loads_eliminated

let test_store_elimination () =
  reset_ids ();
  let x = st (I.Imm 1) (r 1) 0 in
  let other = st (I.Imm 2) (r 2) 0 in
  let z = st (I.Imm 3) (r 1) 0 in
  let res = run_elim [ x; other; z ] in
  Alcotest.(check int) "one store eliminated" 1 res.Opt.Elim.stores_eliminated;
  Alcotest.(check int) "two stores remain" 2 (count_stores res.Opt.Elim.body);
  match res.Opt.Elim.eliminations with
  | [ (DG.Store_overwritten { eliminated; overwriter }, _) ] ->
    Alcotest.(check int) "eliminated X" x.I.id eliminated;
    Alcotest.(check int) "overwriter Z" z.I.id overwriter
  | _ -> Alcotest.fail "expected one store elimination"

let test_store_elim_blocked_by_must_alias_load () =
  reset_ids ();
  let x = st (I.Imm 1) (r 1) 0 in
  let reader = ld (f 1) (r 1) 0 in  (* must read X's value *)
  let z = st (I.Imm 3) (r 1) 0 in
  let res = run_elim [ x; reader; z ] in
  Alcotest.(check int) "blocked" 0 res.Opt.Elim.stores_eliminated

let test_store_elim_blocked_by_side_exit () =
  reset_ids ();
  let x = st (I.Imm 1) (r 1) 0 in
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "out" }) in
  let z = st (I.Imm 3) (r 1) 0 in
  let res = run_elim [ x; br; z ] in
  Alcotest.(check int) "no elimination across exits" 0
    res.Opt.Elim.stores_eliminated

let test_store_elim_speculates_past_may_alias_load () =
  reset_ids ();
  let x = st (I.Imm 1) (r 1) 0 in
  let spec_load = ld (f 1) (r 2) 0 in  (* may alias *)
  let z = st (I.Imm 3) (r 1) 0 in
  let res = run_elim [ x; spec_load; z ] in
  Alcotest.(check int) "eliminated speculatively" 1
    res.Opt.Elim.stores_eliminated;
  Alcotest.(check bool) "assumption recorded" true
    (List.mem (z.I.id, spec_load.I.id) res.Opt.Elim.assumed_no_alias);
  match res.Opt.Elim.eliminations with
  | [ (DG.Store_overwritten _, between) ] ->
    Alcotest.(check bool) "load in between set" true
      (List.exists (fun (i : I.t) -> i.I.id = spec_load.I.id) between)
  | _ -> Alcotest.fail "expected store elimination"

let test_overwriter_never_eliminated () =
  reset_ids ();
  (* chain x1; x2; z all same location: at most the first two go and z
     stays (locked as an overwriter) *)
  let x1 = st (I.Imm 1) (r 1) 0 in
  let x2 = st (I.Imm 2) (r 1) 0 in
  let z = st (I.Imm 3) (r 1) 0 in
  let res = run_elim [ x1; x2; z ] in
  Alcotest.(check bool) "z survives" true
    (List.exists (fun (i : I.t) -> i.I.id = z.I.id) res.Opt.Elim.body);
  Alcotest.(check bool) "at least one eliminated" true
    (res.Opt.Elim.stores_eliminated >= 1)

let test_checking_store_never_eliminated () =
  reset_ids ();
  (* the intervening store of a load forwarding owes a check; it must
     not be store-eliminated even if overwritten later *)
  let l1 = ld (f 1) (r 1) 0 in
  let w = st (I.Imm 9) (r 2) 0 in  (* intervening may-alias store *)
  let l2 = ld (f 2) (r 1) 0 in  (* forwarded from l1 *)
  let z = st (I.Imm 10) (r 2) 0 in  (* overwrites w *)
  let res = run_elim [ l1; w; l2; z ] in
  Alcotest.(check int) "load forwarded" 1 res.Opt.Elim.loads_eliminated;
  Alcotest.(check bool) "checking store kept" true
    (List.exists (fun (i : I.t) -> i.I.id = w.I.id) res.Opt.Elim.body);
  Alcotest.(check int) "no store elimination" 0 res.Opt.Elim.stores_eliminated

let test_policy_gates () =
  reset_ids ();
  let s1 = st (I.Reg (f 5)) (r 1) 8 in
  let l = ld (f 2) (r 1) 8 in
  let res = run_elim ~policy:(Sched.Policy.alat ()) [ s1; l ] in
  Alcotest.(check int) "ALAT: no store-load forwarding" 0
    res.Opt.Elim.loads_eliminated;
  reset_ids ();
  let x = st (I.Imm 1) (r 1) 0 in
  let z = st (I.Imm 3) (r 1) 0 in
  let res2 = run_elim ~policy:(Sched.Policy.alat ()) [ x; z ] in
  Alcotest.(check int) "ALAT: no store elimination" 0
    res2.Opt.Elim.stores_eliminated;
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let l2 = ld (f 2) (r 1) 0 in
  let res3 = run_elim ~policy:(Sched.Policy.alat ()) [ l1; l2 ] in
  Alcotest.(check int) "ALAT: load-load forwarding allowed" 1
    res3.Opt.Elim.loads_eliminated;
  let res4 = run_elim ~policy:(Sched.Policy.none ()) [ l1; l2 ] in
  Alcotest.(check int) "none: nothing" 0 res4.Opt.Elim.loads_eliminated

let test_elim_semantics_preserved () =
  reset_ids ();
  (* a mixed body: run original and transformed on identical machines
     and compare (no runtime aliasing among cross-base ops here) *)
  let body =
    [
      st (I.Imm 11) (r 1) 0;
      ld (f 1) (r 1) 0;
      st (I.Reg (f 1)) (r 2) 8;
      ld (f 2) (r 2) 8;
      st (I.Imm 22) (r 1) 0;
      ld (f 3) (r 1) 0;
      fadd (f 4) (f 2) (f 3);
    ]
  in
  let res = run_elim body in
  Alcotest.(check bool) "something was eliminated" true
    (res.Opt.Elim.loads_eliminated + res.Opt.Elim.stores_eliminated > 0);
  let init m =
    Vliw.Machine.set_reg m (r 1) 1000;
    Vliw.Machine.set_reg m (r 2) 2000
  in
  let m1 = Vliw.Machine.create () and m2 = Vliw.Machine.create () in
  init m1;
  init m2;
  List.iter (Vliw.Eval.exec_data m1) body;
  List.iter (Vliw.Eval.exec_data m2) res.Opt.Elim.body;
  Alcotest.(check bool) "same final state" true
    (Vliw.Machine.equal_guest_state m1 m2)

let test_optimizer_fallback () =
  reset_ids ();
  (* 1 alias register cannot host any speculation; the optimizer must
     fall back rather than emit an overflowing region *)
  let body =
    List.concat
      (List.init 10 (fun k ->
           [ ld (f (k mod 8)) (r (10 + (k mod 8))) (k * 8);
             st (I.Imm k) (r (20 + (k mod 8))) (k * 8) ]))
  in
  let sb = sb_of body in
  let o = optimize ~policy:(Sched.Policy.smarq ~ar_count:1) sb in
  Alcotest.(check bool) "window fits" true
    (o.Opt.Optimizer.region.Ir.Region.ar_window <= 1)

let test_optimizer_known_alias_conservative () =
  reset_ids ();
  let s1 = st (I.Imm 1) (r 1) 0 in
  let l1 = ld (f 1) (r 2) 0 in
  let body = [ s1; l1 ] in
  let sb = sb_of body in
  let o = optimize sb in
  let pos_tbl o =
    let tbl = Hashtbl.create 8 in
    List.iteri
      (fun idx (i : I.t) -> Hashtbl.replace tbl i.I.id idx)
      (Ir.Region.instrs o.Opt.Optimizer.region);
    tbl
  in
  let p1 = pos_tbl o in
  Alcotest.(check bool) "speculated above" true
    (Hashtbl.find p1 l1.I.id < Hashtbl.find p1 s1.I.id);
  let o2 = optimize ~known_alias:[ (s1.I.id, l1.I.id) ] sb in
  let p2 = pos_tbl o2 in
  Alcotest.(check bool) "conservative after learning" true
    (Hashtbl.find p2 l1.I.id > Hashtbl.find p2 s1.I.id)

let suite =
  ( "opt",
    [
      case "load-load forwarding" test_load_load_forwarding;
      case "store-to-load forwarding" test_store_load_forwarding;
      case "forwarding captures before clobber"
        test_forwarding_through_clobbered_source;
      case "must-alias store fences forwarding"
        test_no_forwarding_across_must_alias_store;
      case "width mismatch blocks forwarding" test_width_mismatch_blocks_forwarding;
      case "base redefinition blocks forwarding"
        test_base_redefinition_blocks_forwarding;
      case "store elimination" test_store_elimination;
      case "store elim blocked by must-alias load"
        test_store_elim_blocked_by_must_alias_load;
      case "store elim blocked by side exit" test_store_elim_blocked_by_side_exit;
      case "store elim speculates past may-alias load"
        test_store_elim_speculates_past_may_alias_load;
      case "overwriters are locked" test_overwriter_never_eliminated;
      case "checking stores are locked" test_checking_store_never_eliminated;
      case "per-scheme policy gates" test_policy_gates;
      case "elimination preserves semantics" test_elim_semantics_preserved;
      case "optimizer falls back on overflow" test_optimizer_fallback;
      case "known aliases disable speculation"
        test_optimizer_known_alias_conservative;
    ] )
