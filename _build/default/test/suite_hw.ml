(* Hardware model tests: access ranges, the order-based alias register
   queue (Sections 2.4/3 of the paper), Efficeon bit-mask, ALAT, and
   the Table 1 capability comparison. *)

open Helpers
module I = Ir.Instr

let access = Hw.Access.make

let test_access_overlap () =
  let a = access ~addr:100 ~width:4 in
  Alcotest.(check bool) "self overlap" true (Hw.Access.overlap a a);
  Alcotest.(check bool) "adjacent disjoint" false
    (Hw.Access.overlap a (access ~addr:104 ~width:4));
  Alcotest.(check bool) "one byte shared" true
    (Hw.Access.overlap a (access ~addr:103 ~width:4));
  Alcotest.(check bool) "contained" true
    (Hw.Access.overlap (access ~addr:100 ~width:8) (access ~addr:102 ~width:2));
  Alcotest.check_raises "zero width rejected"
    (Invalid_argument "Access.make: width must be positive") (fun () ->
      ignore (access ~addr:0 ~width:0))

(* Build a memory op with a queue annotation for direct HW tests. *)
let qop ?(load = true) ~id ~offset ~p ~c () =
  let op =
    if load then
      I.Load
        {
          dst = f 0;
          addr = { I.base = r 0; disp = 0 };
          width = 4;
          annot = Ir.Annot.queue ~offset ~p ~c;
        }
    else
      I.Store
        {
          src = I.Imm 0;
          addr = { I.base = r 0; disp = 0 };
          width = 4;
          annot = Ir.Annot.queue ~offset ~p ~c;
        }
  in
  I.make ~id op

let ok_or_fail = function
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected %a" Hw.Detector.pp_violation v

let expect_violation ~setter ~checker = function
  | Ok () -> Alcotest.fail "expected a violation"
  | Error (v : Hw.Detector.violation) ->
    Alcotest.(check int) "setter" setter v.Hw.Detector.setter;
    Alcotest.(check int) "checker" checker v.Hw.Detector.checker

(* The Figure 2 scenario: a protected range checked by a later store at
   an equal-or-earlier register order is detected on overlap. *)
let test_queue_basic_detection () =
  let q = Hw.Queue.create ~size:8 in
  (* M1 (load, AR0, P) sets [0,3]; M2 (store, AR0, C) checks. *)
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  expect_violation ~setter:1 ~checker:2
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:2 ~offset:0 ~p:false ~c:true ())
       (access ~addr:2 ~width:4))

let test_queue_order_rule () =
  (* A checker at a LATER order must not see earlier registers: the
     ordered-detection rule's "not later" condition. *)
  let q = Hw.Queue.create ~size:8 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  (* checker at offset 1 > setter's order 0: no check *)
  ok_or_fail
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:2 ~offset:1 ~p:false ~c:true ())
       (access ~addr:0 ~width:4));
  (* checker at offset 0 does check *)
  expect_violation ~setter:1 ~checker:3
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:3 ~offset:0 ~p:false ~c:true ())
       (access ~addr:0 ~width:4))

let test_queue_load_load_exemption () =
  (* Hardware marks registers set by loads; later loads skip them. *)
  let q = Hw.Queue.create ~size:8 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~load:true ~id:2 ~offset:0 ~p:false ~c:true ())
       (access ~addr:0 ~width:4));
  (* but a store at the same range IS caught *)
  expect_violation ~setter:1 ~checker:3
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:3 ~offset:0 ~p:false ~c:true ())
       (access ~addr:0 ~width:4))

let test_queue_pc_same_op () =
  (* P and C on the same operation: check happens before set, so the
     operation never detects itself. *)
  let q = Hw.Queue.create ~size:8 in
  ok_or_fail
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:1 ~offset:0 ~p:true ~c:true ())
       (access ~addr:0 ~width:4));
  (* a second PC store at the same offset checks the first *)
  expect_violation ~setter:1 ~checker:2
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:2 ~offset:0 ~p:true ~c:true ())
       (access ~addr:0 ~width:4))

let test_queue_rotation () =
  (* Rotation frees the register sliding off the front (Figure 7). *)
  let q = Hw.Queue.create ~size:2 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  Hw.Queue.rotate q 1;
  Alcotest.(check int) "base advanced" 1 (Hw.Queue.base q);
  Alcotest.(check int) "entry freed" 0 (List.length (Hw.Queue.live_entries q));
  (* offset 0 now refers to order 1; a fresh set works in the freed slot *)
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:2 ~offset:0 ~p:true ~c:false ())
       (access ~addr:8 ~width:4));
  let entries = Hw.Queue.live_entries q in
  Alcotest.(check int) "one live entry" 1 (List.length entries);
  (match entries with
  | [ (order, _, setter) ] ->
    Alcotest.(check int) "order is base+offset" 1 order;
    Alcotest.(check int) "setter id" 2 setter
  | _ -> Alcotest.fail "unexpected entries")

let test_queue_rotation_preserves_later () =
  (* An entry set at offset 1 survives a rotation by 1 and is then
     addressable at offset 0. *)
  let q = Hw.Queue.create ~size:4 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:7 ~offset:1 ~p:true ~c:false ())
       (access ~addr:16 ~width:4));
  Hw.Queue.rotate q 1;
  expect_violation ~setter:7 ~checker:8
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:8 ~offset:0 ~p:false ~c:true ())
       (access ~addr:16 ~width:4))

let test_queue_amov_move_and_clear () =
  let q = Hw.Queue.create ~size:4 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:2 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  (* move 2 -> 0: original setter id travels with the range *)
  Hw.Queue.amov q ~src:2 ~dst:0;
  expect_violation ~setter:1 ~checker:9
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:9 ~offset:0 ~p:false ~c:true ())
       (access ~addr:0 ~width:4));
  (* pure clear: amov src=dst removes the range *)
  let q2 = Hw.Queue.create ~size:4 in
  ok_or_fail
    (Hw.Queue.on_mem q2 (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  Hw.Queue.amov q2 ~src:0 ~dst:0;
  ok_or_fail
    (Hw.Queue.on_mem q2
       (qop ~load:false ~id:2 ~offset:0 ~p:false ~c:true ())
       (access ~addr:0 ~width:4))

let test_queue_overflow_guard () =
  let q = Hw.Queue.create ~size:2 in
  Alcotest.check_raises "offset beyond window"
    (Invalid_argument
       "Queue.on_mem: offset 2 outside alias register window of 2 (software \
        overflow bug)") (fun () ->
      ignore
        (Hw.Queue.on_mem q (qop ~id:1 ~offset:2 ~p:true ~c:false ())
           (access ~addr:0 ~width:4)))

let test_queue_reset () =
  let q = Hw.Queue.create ~size:4 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  Hw.Queue.rotate q 2;
  Hw.Queue.reset q;
  Alcotest.(check int) "base reset" 0 (Hw.Queue.base q);
  Alcotest.(check int) "entries cleared" 0
    (List.length (Hw.Queue.live_entries q))

let mop ~id ~annot ~store =
  let op =
    if store then
      I.Store { src = I.Imm 0; addr = { I.base = r 0; disp = 0 }; width = 4; annot }
    else
      I.Load { dst = f 0; addr = { I.base = r 0; disp = 0 }; width = 4; annot }
  in
  I.make ~id op

let test_efficeon_mask () =
  let e = Hw.Efficeon.create () in
  ok_or_fail
    (Hw.Efficeon.on_mem e
       (mop ~id:1 ~annot:(Ir.Annot.mask ~set_index:(Some 3) ~check_mask:0)
          ~store:false)
       (access ~addr:0 ~width:4));
  (* mask not covering register 3: no detection even on overlap *)
  ok_or_fail
    (Hw.Efficeon.on_mem e
       (mop ~id:2 ~annot:(Ir.Annot.mask ~set_index:None ~check_mask:0b0111)
          ~store:true)
       (access ~addr:0 ~width:4));
  (* mask covering register 3: detected *)
  expect_violation ~setter:1 ~checker:3
    (Hw.Efficeon.on_mem e
       (mop ~id:3 ~annot:(Ir.Annot.mask ~set_index:None ~check_mask:0b1000)
          ~store:true)
       (access ~addr:0 ~width:4))

let test_efficeon_store_store () =
  (* stores may be protected and checked: store-store detection works *)
  let e = Hw.Efficeon.create () in
  ok_or_fail
    (Hw.Efficeon.on_mem e
       (mop ~id:1 ~annot:(Ir.Annot.mask ~set_index:(Some 0) ~check_mask:0)
          ~store:true)
       (access ~addr:0 ~width:4));
  expect_violation ~setter:1 ~checker:2
    (Hw.Efficeon.on_mem e
       (mop ~id:2 ~annot:(Ir.Annot.mask ~set_index:None ~check_mask:1)
          ~store:true)
       (access ~addr:2 ~width:4))

let test_efficeon_encoding_limit () =
  Alcotest.check_raises "16 registers rejected"
    (Invalid_argument "Efficeon.create: size must be in 1..15") (fun () ->
      ignore (Hw.Efficeon.create ~size:16 ()))

let test_alat_false_positive () =
  (* every store snoops every entry: a benign overlap still fires *)
  let a = Hw.Alat.create () in
  ok_or_fail
    (Hw.Alat.on_mem a
       (mop ~id:1 ~annot:(Ir.Annot.alat ~advanced:true) ~store:false)
       (access ~addr:0 ~width:4));
  (match
     Hw.Alat.on_mem a
       (mop ~id:2 ~annot:Ir.Annot.No_annot ~store:true)
       (access ~addr:0 ~width:4)
   with
  | Ok () -> Alcotest.fail "expected ALAT hit"
  | Error v ->
    Alcotest.(check bool) "flagged FP-prone" true
      v.Hw.Detector.false_positive_prone)

let test_alat_no_load_load () =
  let a = Hw.Alat.create () in
  ok_or_fail
    (Hw.Alat.on_mem a
       (mop ~id:1 ~annot:(Ir.Annot.alat ~advanced:true) ~store:false)
       (access ~addr:0 ~width:4));
  (* a later load never checks the table *)
  ok_or_fail
    (Hw.Alat.on_mem a
       (mop ~id:2 ~annot:(Ir.Annot.alat ~advanced:false) ~store:false)
       (access ~addr:0 ~width:4))

let test_alat_capacity_eviction () =
  let a = Hw.Alat.create ~size:2 () in
  List.iter
    (fun id ->
      ok_or_fail
        (Hw.Alat.on_mem a
           (mop ~id ~annot:(Ir.Annot.alat ~advanced:true) ~store:false)
           (access ~addr:(id * 100) ~width:4)))
    [ 1; 2; 3 ];
  Alcotest.(check int) "bounded" 2 (Hw.Alat.live_count a);
  (* entry 1 evicted: store to its range passes silently *)
  ok_or_fail
    (Hw.Alat.on_mem a
       (mop ~id:4 ~annot:Ir.Annot.No_annot ~store:true)
       (access ~addr:100 ~width:4))

(* Table 1 of the paper as a machine-checked fact. *)
let test_table1_capabilities () =
  let queue = (Hw.Queue.detector (Hw.Queue.create ~size:64)).Hw.Detector.caps in
  let eff = (Hw.Efficeon.detector (Hw.Efficeon.create ())).Hw.Detector.caps in
  let alat = (Hw.Alat.detector (Hw.Alat.create ())).Hw.Detector.caps in
  Alcotest.(check bool) "efficeon not scalable" false eff.Hw.Detector.scalable;
  Alcotest.(check bool) "efficeon precise" false eff.Hw.Detector.false_positives;
  Alcotest.(check bool) "efficeon st-st" true eff.Hw.Detector.detects_store_store;
  Alcotest.(check bool) "alat scalable" true alat.Hw.Detector.scalable;
  Alcotest.(check bool) "alat has FPs" true alat.Hw.Detector.false_positives;
  Alcotest.(check bool) "alat no st-st" false alat.Hw.Detector.detects_store_store;
  Alcotest.(check bool) "queue scalable" true queue.Hw.Detector.scalable;
  Alcotest.(check bool) "queue precise" false queue.Hw.Detector.false_positives;
  Alcotest.(check bool) "queue st-st" true queue.Hw.Detector.detects_store_store

let test_checks_counter () =
  let q = Hw.Queue.create ~size:8 in
  ok_or_fail
    (Hw.Queue.on_mem q (qop ~id:1 ~offset:0 ~p:true ~c:false ())
       (access ~addr:0 ~width:4));
  ignore
    (Hw.Queue.on_mem q
       (qop ~load:false ~id:2 ~offset:0 ~p:false ~c:true ())
       (access ~addr:1000 ~width:4));
  Alcotest.(check int) "one comparison" 1 (Hw.Queue.checks_performed q)

let suite =
  ( "hw",
    [
      case "access overlap" test_access_overlap;
      case "queue: basic detection (Fig 2)" test_queue_basic_detection;
      case "queue: ordered-detection rule" test_queue_order_rule;
      case "queue: load-load exemption" test_queue_load_load_exemption;
      case "queue: P+C checks before set" test_queue_pc_same_op;
      case "queue: rotation frees front" test_queue_rotation;
      case "queue: rotation preserves later entries"
        test_queue_rotation_preserves_later;
      case "queue: AMOV move and clear" test_queue_amov_move_and_clear;
      case "queue: window overflow is a software bug" test_queue_overflow_guard;
      case "queue: reset" test_queue_reset;
      case "efficeon: explicit mask checks" test_efficeon_mask;
      case "efficeon: store-store detection" test_efficeon_store_store;
      case "efficeon: encoding limit" test_efficeon_encoding_limit;
      case "alat: blanket snoop false positive" test_alat_false_positive;
      case "alat: loads never check" test_alat_no_load_load;
      case "alat: capacity eviction" test_alat_capacity_eviction;
      case "table 1 capabilities" test_table1_capabilities;
      case "energy proxy counter" test_checks_counter;
    ] )
