examples/custom_workload.ml: Ir List Printf Runtime Sched Smarq Workload
