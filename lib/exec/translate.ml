(* Parallel per-region translation by capture and replay.

   The driver's dispatch loop is inherently serial — it translates a
   region the moment its entry turns hot, executes it, and only then
   discovers the next hot label — so there is never more than one
   pending translation to hand a pool.  What IS parallel is the work
   itself: after Frontend.Region_form every request the driver issues is
   a pure function of its captured inputs (superblock, policy,
   known-alias set, id-counter base), independent of every other
   request.  So the driver records each request as it happens
   ([Driver.run ?capture]) and this module replays the batch over the
   persistent domain pool, reassembling artifacts and per-phase timers
   in submission order.  Replay at any job count is bit-identical to
   sequential replay by construction; the test suite checks it anyway. *)

type artifact = {
  region : Ir.Region.t;
  issue_seq : (int * Ir.Instr.t) list;
  stats : Opt.Optimizer.opt_stats;
  policy_used : Sched.Policy.t;
}

(* [Opt.Optimizer.t] also carries the depgraph, hazard graph and the
   allocator's internal result — hashtable-bearing structures whose
   physical layout depends on insertion history.  The artifact keeps
   only the pure-data outputs, so structural equality is exactly
   "same translation". *)
let artifact_of (o : Opt.Optimizer.t) =
  {
    region = o.Opt.Optimizer.region;
    issue_seq = o.Opt.Optimizer.issue_seq;
    stats = o.Opt.Optimizer.stats;
    policy_used = o.Opt.Optimizer.policy_used;
  }

let equal_artifact (a : artifact) (b : artifact) = a = b

type result = {
  artifacts : artifact list;  (* in submission order *)
  profile : Sched.Profile.t;  (* per-phase timers, merged in order *)
  wall_seconds : float;
}

let capture_program ?config ?fuel ?unroll ?tcache_policy ?tcache_capacity
    ?pipeline ?verify ~scheme program =
  let cfg =
    match config with Some c -> c | None -> Smarq.config_for scheme
  in
  let reqs = ref [] in
  let driver_result =
    Smarq.run_program ~config:cfg ?fuel ?unroll ?tcache_policy
      ?tcache_capacity ?pipeline ?verify
      ~capture:(fun r -> reqs := r :: !reqs)
      ~scheme program
  in
  (driver_result, cfg, List.rev !reqs)

let replay ?pool ?jobs ?(pipeline = Sched.Pipeline.Fast) ~config requests =
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let t0 = Unix.gettimeofday () in
  let issue_width = config.Vliw.Config.issue_width in
  let mem_ports = config.Vliw.Config.mem_ports in
  let latency = Vliw.Config.latency config in
  (* per-request collectors: each request times into its own profile,
     and the merge below walks them in submission order — so the
     float-sum order of the aggregate is the same at every job count *)
  let profiles = Array.init n (fun _ -> Sched.Profile.create ()) in
  let artifacts = Array.make n None in
  let run_one ~arena i =
    let o =
      Opt.Optimizer.run_request ~issue_width ~mem_ports ~latency ~pipeline
        ~profile:profiles.(i) ~arena reqs.(i)
    in
    artifacts.(i) <- Some (artifact_of o)
  in
  let sequential () =
    let arena = Analysis.Arena.create () in
    for i = 0 to n - 1 do
      run_one ~arena i
    done
  in
  (match pool, jobs with
  | None, (None | Some 1) -> sequential ()
  | Some _, Some 1 ->
    (* one job: not worth a queue round-trip per request *)
    sequential ()
  | _ ->
    let owned, p =
      match pool with
      | Some p -> (false, p)
      | None -> (true, Pool.create ?domains:jobs ())
    in
    let window =
      min
        (match jobs with Some j -> max 1 j | None -> Pool.size p)
        (max 1 n)
    in
    (* Sliding window: at most [window] requests are in flight, so a
       shared pool larger than [jobs] still translates with exactly
       [jobs]-way concurrency (the service's pool serves other work
       with the remaining workers).  Each worker keeps its own arena,
       indexed by the worker id the pool hands every job. *)
    let arenas = Array.init (Pool.size p) (fun _ -> Analysis.Arena.create ()) in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    let completed = ref 0 in
    let next = ref 0 in
    let failure = ref None in
    let rec submit_next () =
      (* under [m] *)
      if !next < n then begin
        let i = !next in
        incr next;
        Pool.submit p (fun w ->
            (try run_one ~arena:arenas.(w) i
             with e ->
               Mutex.lock m;
               if !failure = None then
                 (failure := Some (e, Printexc.get_raw_backtrace ()));
               Mutex.unlock m);
            Mutex.lock m;
            incr completed;
            submit_next ();
            if !completed = n then Condition.signal all_done;
            Mutex.unlock m)
      end
    in
    Mutex.lock m;
    for _ = 1 to window do
      submit_next ()
    done;
    while !completed < n do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    if owned then Pool.shutdown p;
    (match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()));
  let profile = Sched.Profile.create () in
  Array.iter (fun p -> Sched.Profile.accumulate ~into:profile p) profiles;
  let artifacts =
    Array.to_list artifacts
    |> List.map (function Some a -> a | None -> assert false)
  in
  { artifacts; profile; wall_seconds = Unix.gettimeofday () -. t0 }
