lib/analysis/constraints.mli: Format Hashtbl
