type terminator =
  | Fallthrough of Instr.label
  | Cond of {
      cond : Instr.operand;
      taken : Instr.label;
      fallthrough : Instr.label;
      taken_probability : float;
    }
  | Halt

type t = {
  label : Instr.label;
  body : Instr.t list;
  terminator : terminator;
}

let make ~label ~body terminator =
  assert (not (List.exists Instr.is_branch body));
  { label; body; terminator }

let successors b =
  match b.terminator with
  | Fallthrough l -> [ l ]
  | Cond { taken; fallthrough; _ } -> [ taken; fallthrough ]
  | Halt -> []

let instr_count b = List.length b.body

let pp_terminator ppf = function
  | Fallthrough l -> Format.fprintf ppf "  jmp %s" l
  | Cond { cond; taken; fallthrough; taken_probability } ->
    Format.fprintf ppf "  br %a -> %s (p=%.2f) else %s" Instr.pp_operand cond
      taken taken_probability fallthrough
  | Halt -> Format.fprintf ppf "  halt"

let pp ppf b =
  Format.fprintf ppf "%s:@." b.label;
  List.iter (fun i -> Format.fprintf ppf "  %a@." Instr.pp i) b.body;
  Format.fprintf ppf "%a@." pp_terminator b.terminator
