type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  (* pre-scramble so seed 0 does not start the stream at mix(golden)'s
     low-entropy neighborhood of seed 1, etc. *)
  { state = mix (Int64.add (Int64.of_int seed) golden) }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 53 high bits; modulo bias is irrelevant at harness bounds *)
  Int64.to_int (Int64.shift_right_logical (next t) 11) mod bound

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t = Int64.shift_right_logical (next t) 63 = 1L
