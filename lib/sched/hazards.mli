(** Scheduling precedence edges for a superblock body.

    Three families of hard edges:
    - register dependences (RAW, WAR, WAW);
    - memory dependences from the dependence graph: must-alias edges
      always, may-alias edges only when the policy forbids reordering
      that pair;
    - control edges around side exits: stores never cross a branch in
      either direction; a definition of a register live at an exit
      never crosses that exit; branches stay ordered among themselves.

    Dropped may-alias edges are returned separately — they are the
    speculation assumptions the region records for re-optimization.
    The list is normalized: ascending (first, second) order, no
    duplicates.

    The default builder emits the {e reduced} graph: exit fences become
    two edges per instruction (nearest blocking exit on each side, with
    the branch chain carrying transitivity) instead of all blocked
    (instruction, exit) pairs, and a transitive reduction prunes
    redundant edges.  Because every latency is at least one cycle, any
    edge set with the seed's transitive closure schedules identically
    (see DESIGN.md); [~reference:true] requests the seed's explicit
    all-pairs, unreduced graph, which the differential tests compare
    against. *)

type t = {
  ids : int array;  (** instruction ids in body order *)
  index : (int, int) Hashtbl.t;  (** instr id -> body position *)
  preds_of : int list array;  (** body position -> predecessor ids *)
  succs_of : int list array;  (** body position -> successor ids *)
  dropped : (int * int) list;  (** speculated-away may-alias pairs *)
}

val build :
  sb:Ir.Superblock.t ->
  deps:Analysis.Depgraph.t ->
  policy:Policy.t ->
  ?reference:bool ->
  ?arena:Analysis.Arena.t ->
  unit ->
  t
(** [?arena] lends the default builder reusable scratch buffers (see
    {!Analysis.Arena}); the result never aliases arena storage.  The
    reference builder ignores it. *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val instr_ids : t -> int array
(** Instruction ids in body order — the dense index shared with the
    scheduler. *)
