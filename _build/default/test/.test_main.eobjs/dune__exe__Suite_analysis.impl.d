test/suite_analysis.ml: Alcotest Analysis Hashtbl Helpers Ir List Result
