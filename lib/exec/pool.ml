(* A flat Domain-based worker pool.

   Jobs are indexed into an array; workers race on an atomic cursor and
   each result lands in its submission slot, so the output order is the
   input order no matter which domain ran what.  The calling domain
   works too: [domains = 1] (or a single job) degenerates to List.map
   with no domain spawned at all. *)

let default_domains () = Domain.recommended_domain_count ()

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let n = List.length xs in
  if n <= 1 || domains = 1 then List.map f xs
  else begin
    let jobs = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (try Done (f jobs.(i))
           with e -> Failed (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned =
      Array.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Done r -> r
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)
  end
