lib/sched/naive_alloc.mli: Ir
