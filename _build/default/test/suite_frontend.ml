(* Liveness, profiling and superblock region formation. *)

open Helpers
module I = Ir.Instr

(* A diamond CFG: entry -> (hot | cold) -> join -> halt, with the hot
   side biased 0.9. *)
let diamond () =
  reset_ids ();
  let entry =
    Ir.Block.make ~label:"entry"
      ~body:[ movi (r 1) 1; mk (I.Cmp (I.Gt, r 2, I.Reg (r 1), I.Imm 0)) ]
      (Ir.Block.Cond
         {
           cond = I.Reg (r 2);
           taken = "hot";
           fallthrough = "cold";
           taken_probability = 0.9;
         })
  in
  let hot =
    Ir.Block.make ~label:"hot"
      ~body:[ movi (r 3) 7 ]
      (Ir.Block.Fallthrough "join")
  in
  let cold =
    Ir.Block.make ~label:"cold"
      ~body:[ movi (r 3) 8; movi (r 4) 9 ]
      (Ir.Block.Fallthrough "join")
  in
  let join =
    Ir.Block.make ~label:"join"
      ~body:[ mk (I.Binop (I.Add, r 5, I.Reg (r 3), I.Imm 1)) ]
      Ir.Block.Halt
  in
  Ir.Program.make ~entry:"entry" [ entry; hot; cold; join ]

let test_liveness_basic () =
  let p = diamond () in
  let lv = Frontend.Liveness.analyze p in
  (* r3 is live into join (used there) *)
  let live_join = Frontend.Liveness.live_in lv "join" in
  Alcotest.(check bool) "r3 live into join" true (Ir.Reg.Set.mem (r 3) live_join);
  (* r3 is NOT live into hot (hot defines it before join uses it)...
     it is redefined in hot, so live_in hot excludes it *)
  let live_hot = Frontend.Liveness.live_in lv "hot" in
  Alcotest.(check bool) "r3 dead into hot" false (Ir.Reg.Set.mem (r 3) live_hot);
  (* halt boundary: every guest register is live at join's out edge *)
  let out_join = Frontend.Liveness.live_out_of_block lv (Ir.Program.block p "join") in
  Alcotest.(check int) "halt is fully live"
    (List.length Ir.Reg.all_guest)
    (Ir.Reg.Set.cardinal out_join)

let test_liveness_loop () =
  reset_ids ();
  (* loop-carried use keeps the counter live around the back edge *)
  let loop =
    Ir.Block.make ~label:"loop"
      ~body:
        [
          mk (I.Binop (I.Sub, r 1, I.Reg (r 1), I.Imm 1));
          mk (I.Cmp (I.Gt, r 2, I.Reg (r 1), I.Imm 0));
        ]
      (Ir.Block.Cond
         {
           cond = I.Reg (r 2);
           taken = "loop";
           fallthrough = "out";
           taken_probability = 0.9;
         })
  in
  let out = Ir.Block.make ~label:"out" ~body:[] Ir.Block.Halt in
  let p = Ir.Program.make ~entry:"loop" [ loop; out ] in
  let lv = Frontend.Liveness.analyze p in
  Alcotest.(check bool) "counter live around back edge" true
    (Ir.Reg.Set.mem (r 1) (Frontend.Liveness.live_in lv "loop"))

let test_profiler () =
  let pr = Frontend.Profiler.create ~hot_threshold:3 () in
  Alcotest.(check bool) "cold initially" false (Frontend.Profiler.is_hot pr "a");
  Frontend.Profiler.note_execution pr "a";
  Frontend.Profiler.note_execution pr "a";
  Alcotest.(check bool) "still cold at 2" false (Frontend.Profiler.is_hot pr "a");
  Frontend.Profiler.note_execution pr "a";
  Alcotest.(check bool) "hot at 3" true (Frontend.Profiler.is_hot pr "a");
  Alcotest.(check bool) "relative cold" true
    (Frontend.Profiler.is_cold_relative pr ~seed_count:100 "b")

let warm_profiler p rounds =
  let pr = Frontend.Profiler.create ~hot_threshold:1 () in
  let m = Vliw.Machine.create () in
  for _ = 1 to rounds do
    let rec go label =
      Frontend.Profiler.note_execution pr label;
      match Frontend.Interp.exec_block m (Ir.Program.block p label) with
      | Some l -> go l
      | None -> ()
    in
    go p.Ir.Program.entry
  done;
  pr

let test_region_formation_follows_bias () =
  let p = diamond () in
  let pr = warm_profiler p 10 in
  let lv = Frontend.Liveness.analyze p in
  let fresh_id = ref (Ir.Program.max_instr_id p + 1) in
  let sb =
    Frontend.Region_form.form ~program:p ~liveness:lv ~profiler:pr ~fresh_id
      "entry"
  in
  (* region follows entry -> hot -> join; cold becomes a side exit *)
  Alcotest.(check (list string)) "merged blocks" [ "entry"; "hot"; "join" ]
    sb.Ir.Superblock.source_blocks;
  Alcotest.(check int) "one side exit" 1
    (List.length (Ir.Superblock.side_exits sb));
  Alcotest.(check (option string)) "ends at halt" None
    sb.Ir.Superblock.final_exit;
  (* the taken arm was followed, so the guard is inverted through a temp *)
  match Ir.Superblock.side_exits sb with
  | [ br ] ->
    (match br.I.op with
    | I.Branch { target; _ } ->
      Alcotest.(check string) "exit to the cold side" "cold" target
    | _ -> Alcotest.fail "not a branch")
  | _ -> Alcotest.fail "expected one exit"

let test_region_formation_stops_on_loop () =
  reset_ids ();
  let loop =
    Ir.Block.make ~label:"loop"
      ~body:
        [
          mk (I.Binop (I.Sub, r 1, I.Reg (r 1), I.Imm 1));
          mk (I.Cmp (I.Gt, r 2, I.Reg (r 1), I.Imm 0));
        ]
      (Ir.Block.Cond
         {
           cond = I.Reg (r 2);
           taken = "loop";
           fallthrough = "out";
           taken_probability = 0.95;
         })
  in
  let out = Ir.Block.make ~label:"out" ~body:[] Ir.Block.Halt in
  let p = Ir.Program.make ~entry:"loop" [ loop; out ] in
  let pr = warm_profiler p 3 in
  let lv = Frontend.Liveness.analyze p in
  let fresh_id = ref (Ir.Program.max_instr_id p + 1) in
  let sb =
    Frontend.Region_form.form ~program:p ~liveness:lv ~profiler:pr ~fresh_id
      "loop"
  in
  Alcotest.(check (list string)) "loop body once" [ "loop" ]
    sb.Ir.Superblock.source_blocks;
  Alcotest.(check (option string)) "falls back to the loop head"
    (Some "loop") sb.Ir.Superblock.final_exit

let test_region_formation_semantics_preserved () =
  (* executing the formed superblock must equal executing the blocks *)
  let p = diamond () in
  let pr = warm_profiler p 10 in
  let lv = Frontend.Liveness.analyze p in
  let fresh_id = ref (Ir.Program.max_instr_id p + 1) in
  let sb =
    Frontend.Region_form.form ~program:p ~liveness:lv ~profiler:pr ~fresh_id
      "entry"
  in
  let m_ref = Vliw.Machine.create () in
  ignore (Frontend.Interp.run m_ref p);
  let m_sb = Vliw.Machine.create () in
  let t = Frontend.Interp.trace_superblock m_sb sb in
  Alcotest.(check (option string)) "no exit taken" None
    t.Frontend.Interp.taken_exit;
  Alcotest.(check bool) "same final state" true
    (Vliw.Machine.equal_guest_state m_ref m_sb)

let test_region_max_blocks () =
  reset_ids ();
  (* a long fallthrough chain is cut at max_blocks *)
  let blocks =
    List.init 12 (fun k ->
        let lbl = Printf.sprintf "b%d" k in
        let next = Printf.sprintf "b%d" (k + 1) in
        if k = 11 then Ir.Block.make ~label:lbl ~body:[] Ir.Block.Halt
        else
          Ir.Block.make ~label:lbl ~body:[ movi (r (k mod 8)) k ]
            (Ir.Block.Fallthrough next))
  in
  let p = Ir.Program.make ~entry:"b0" blocks in
  let pr = warm_profiler p 2 in
  let lv = Frontend.Liveness.analyze p in
  let fresh_id = ref (Ir.Program.max_instr_id p + 1) in
  let sb =
    Frontend.Region_form.form
      ~params:{ Frontend.Region_form.max_blocks = 4; min_bias = 0.6 }
      ~program:p ~liveness:lv ~profiler:pr ~fresh_id "b0"
  in
  Alcotest.(check int) "four blocks merged" 4
    (List.length sb.Ir.Superblock.source_blocks);
  Alcotest.(check (option string)) "exits into the rest" (Some "b4")
    sb.Ir.Superblock.final_exit

let suite =
  ( "frontend",
    [
      case "liveness: diamond" test_liveness_basic;
      case "liveness: loop-carried" test_liveness_loop;
      case "profiler thresholds" test_profiler;
      case "region formation follows bias" test_region_formation_follows_bias;
      case "region formation stops at loop back edge"
        test_region_formation_stops_on_loop;
      case "region formation preserves semantics"
        test_region_formation_semantics_preserved;
      case "region formation respects max blocks" test_region_max_blocks;
    ] )
