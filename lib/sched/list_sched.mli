(** List scheduler with integrated alias-register allocation.

    Classic cycle-driven list scheduling over the hazard edges
    (critical-path priority, issue-width and memory-port limits, one
    branch per cycle), extended with the two SMARQ integrations of
    Section 5.3:

    - every scheduled memory operation is reported to the
      {!Smarq_alloc} allocator, which builds constraints and allocates
      register orders on the fly;
    - before each cycle the scheduler asks the allocator for overflow
      risk; while risk is high it runs in {e non-speculation mode},
      forcing memory operations to issue in original program order so
      no new reordering constraints (hence no new registers) appear.

    On completion the issue sequence is materialized into VLIW bundles
    with AMOV insertions, rotations, and per-operation annotations for
    the selected scheme. *)

type stats = {
  schedule_length : int;
  instr_count : int;
  mem_ops : int;
  p_bits : int;
  c_bits : int;
  check_constraints : int;
  anti_constraints : int;
  amov_fresh : int;  (** AMOVs that needed a new register *)
  amov_clear : int;  (** AMOVs that only clear the source *)
  ar_working_set : int;  (** max alias-register offset + 1 *)
  dropped_pairs : int;  (** speculated may-alias dependences *)
  used_nonspec_mode : bool;
}

type outcome = {
  region : Ir.Region.t;
  alloc_result : Smarq_alloc.result option;  (** queue scheme only *)
  stats : stats;
  hazards : Hazards.t;
      (** the hazard graph the schedule was built against, kept for
          translation validation ({!Check.Verifier}) *)
  issue_seq : (int * Ir.Instr.t) list;
      (** (cycle, instruction) in issue order — the schedule before
          materialization splices AMOV/ROTATE ops in *)
}

exception Unschedulable of string

val schedule :
  sb:Ir.Superblock.t ->
  deps:Analysis.Depgraph.t ->
  policy:Policy.t ->
  issue_width:int ->
  mem_ports:int ->
  latency:(Ir.Instr.t -> int) ->
  fresh_id:int ref ->
  ?extra_assumed:(int * int) list ->
  ?pipeline:Pipeline.t ->
  ?profile:Profile.t ->
  ?arena:Analysis.Arena.t ->
  unit ->
  outcome
(** [extra_assumed] lists speculation assumptions made by earlier
    optimization passes (eliminations); they are recorded in the
    region together with the dropped dependence pairs.  May raise
    {!Smarq_alloc.Overflow} when even non-speculation mode cannot fit
    the physical alias registers — callers fall back to a
    non-speculative build of the region.

    [pipeline] selects between the incremental ready-queue scheduler
    over the reduced hazard graph ({!Pipeline.Fast}, default) and the
    seed per-cycle rescan over the unreduced graph
    ({!Pipeline.Reference}); both produce bit-identical regions.
    [profile] accumulates per-phase translation timers when given;
    [arena] lends the hazard builder reusable scratch buffers. *)
