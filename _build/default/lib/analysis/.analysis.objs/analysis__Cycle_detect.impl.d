lib/analysis/cycle_detect.ml: Hashtbl List Option
