examples/quickstart.ml: Frontend Ir List Printf Runtime Smarq Vliw Workload
