type t = {
  n : int;
  bits : Bytes.t;
}

let bytes_for n = (n + 7) lsr 3

let create n = { n; bits = Bytes.make (bytes_for n) '\000' }
let length t = t.n

let mem t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let lease ~prev n =
  let need = bytes_for n in
  match prev with
  | Some p when Bytes.length p.bits >= need ->
    Bytes.fill p.bits 0 need '\000';
    { n; bits = p.bits }
  | Some _ | None -> create n

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: universe mismatch";
  let len = Bytes.length dst.bits in
  for b = 0 to len - 1 do
    Bytes.unsafe_set dst.bits b
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst.bits b)
         lor Char.code (Bytes.unsafe_get src.bits b)))
  done

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

module Matrix = struct
  type m = {
    cols : int;
    stride : int;  (* bytes per row *)
    bits : Bytes.t;
  }

  let create ~rows ~cols =
    let stride = bytes_for cols in
    { cols; stride; bits = Bytes.make (max 1 (rows * stride)) '\000' }

  let mem m ~row i =
    Char.code (Bytes.unsafe_get m.bits ((row * m.stride) + (i lsr 3)))
    land (1 lsl (i land 7))
    <> 0

  let add m ~row i =
    let byte = (row * m.stride) + (i lsr 3) in
    Bytes.unsafe_set m.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get m.bits byte) lor (1 lsl (i land 7))))

  let union_rows m ~dst ~src =
    let d0 = dst * m.stride and s0 = src * m.stride in
    for b = 0 to m.stride - 1 do
      Bytes.unsafe_set m.bits (d0 + b)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get m.bits (d0 + b))
           lor Char.code (Bytes.unsafe_get m.bits (s0 + b))))
    done

  let lease ~prev ~rows ~cols =
    let stride = bytes_for cols in
    let need = max 1 (rows * stride) in
    match prev with
    | Some p when Bytes.length p.bits >= need ->
      Bytes.fill p.bits 0 need '\000';
      { cols; stride; bits = p.bits }
    | Some _ | None -> create ~rows ~cols
end
