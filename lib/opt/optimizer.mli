(** The dynamic optimizer: superblock in, translated region out.

    Pipeline: may-alias analysis → speculative eliminations → dependence
    graph (with extended dependences) → list scheduling with integrated
    alias-register allocation → region materialization.

    [known_alias] carries pairs learned from alias exceptions; they are
    treated as must-alias, which disables both the reordering and the
    eliminations that speculated on them — the paper's conservative
    re-optimization.

    When the allocator overflows the physical alias registers (or the
    mask encoding), the optimizer falls back to a fully
    non-speculative build of the same superblock and reports it. *)

type opt_stats = {
  sched_stats : Sched.List_sched.stats;
  loads_eliminated : int;
  stores_eliminated : int;
  fell_back : bool;  (** overflow forced a non-speculative rebuild *)
  work_units : int;  (** IR instructions processed, for overhead accounting *)
}

type t = {
  region : Ir.Region.t;
  alloc_result : Sched.Smarq_alloc.result option;
  stats : opt_stats;
  deps : Analysis.Depgraph.t;
      (** dependence graph of the final (post-elimination) body *)
  hazards : Sched.Hazards.t;
      (** hazard graph the schedule was built against *)
  issue_seq : (int * Ir.Instr.t) list;
      (** (cycle, instruction) issue order before materialization *)
  policy_used : Sched.Policy.t;
      (** policy of the attempt that actually produced the region —
          differs from the requested policy after an overflow fallback *)
  cert : Analysis.Disamb.t option;
      (** alias certificate: proof witnesses for every pair upgraded to
          no-alias, present iff the producing attempt's policy had
          [certify] set.  [Check.Verifier] replays these witnesses
          independently; the region's [certified_no_alias] list is the
          runtime-facing projection. *)
}

val optimize :
  policy:Sched.Policy.t ->
  issue_width:int ->
  mem_ports:int ->
  latency:(Ir.Instr.t -> int) ->
  fresh_id:int ref ->
  ?known_alias:(int * int) list ->
  ?pipeline:Sched.Pipeline.t ->
  ?profile:Sched.Profile.t ->
  ?arena:Analysis.Arena.t ->
  Ir.Superblock.t ->
  t
(** [pipeline] selects the fast (default) or reference translation
    pipeline — both produce bit-identical regions.  [profile], when
    given, accumulates per-phase translation timers and per-region
    instruction counts across every attempt (including fallback
    rebuilds).  [arena] lends the depgraph and hazard builders reusable
    scratch buffers; one arena serves one sequence of translations and
    must never be shared between domains. *)

(** A self-contained translation request: everything [optimize] reads,
    captured at the moment the driver would have translated.  Replaying
    a request is deterministic and independent of every other request —
    the basis for parallel translation ({!Exec.Translate}). *)
type request = {
  sb : Ir.Superblock.t;
  policy : Sched.Policy.t;
  known_alias : (int * int) list;
  fresh_base : int;  (** driver id counter at capture time *)
}

val run_request :
  issue_width:int ->
  mem_ports:int ->
  latency:(Ir.Instr.t -> int) ->
  ?pipeline:Sched.Pipeline.t ->
  ?profile:Sched.Profile.t ->
  ?arena:Analysis.Arena.t ->
  request ->
  t
(** Replay a captured request; bit-identical to the optimize call it
    was captured from. *)
