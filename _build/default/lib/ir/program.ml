type t = {
  entry : Instr.label;
  blocks : (Instr.label, Block.t) Hashtbl.t;
}

let validate_block_list ~entry bs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem seen b.label then
        invalid_arg (Printf.sprintf "Program.make: duplicate label %s" b.label);
      Hashtbl.add seen b.label ())
    bs;
  if not (Hashtbl.mem seen entry) then
    invalid_arg (Printf.sprintf "Program.make: missing entry block %s" entry);
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then
            invalid_arg
              (Printf.sprintf "Program.make: %s branches to unknown label %s"
                 b.label l))
        (Block.successors b))
    bs

let make ~entry bs =
  validate_block_list ~entry bs;
  let blocks = Hashtbl.create (List.length bs * 2) in
  List.iter (fun (b : Block.t) -> Hashtbl.replace blocks b.label b) bs;
  { entry; blocks }

let block t label = Hashtbl.find t.blocks label

let labels t =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.blocks []
  |> List.sort String.compare

let blocks t = List.map (block t) (labels t)

let instr_count t =
  List.fold_left (fun acc b -> acc + Block.instr_count b) 0 (blocks t)

let max_instr_id t =
  List.fold_left
    (fun acc (b : Block.t) ->
      List.fold_left (fun acc (i : Instr.t) -> max acc i.id) acc b.body)
    0 (blocks t)

let validate t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if not (Hashtbl.mem t.blocks t.entry) then
    note "entry block %s not present" t.entry;
  Hashtbl.iter
    (fun label (b : Block.t) ->
      if not (String.equal label b.label) then
        note "block %s registered under label %s" b.label label;
      List.iter
        (fun l ->
          if not (Hashtbl.mem t.blocks l) then
            note "block %s has unknown successor %s" b.label l)
        (Block.successors b);
      List.iter
        (fun (i : Instr.t) ->
          if Instr.is_branch i then
            note "block %s body contains branch (id %d)" b.label i.id;
          match i.op with
          | Instr.Rotate _ | Instr.Amov _ | Instr.Exit _ ->
            note "block %s contains region-only instruction (id %d)" b.label
              i.id
          | _ -> ())
        b.body)
    t.blocks;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let pp ppf t =
  Format.fprintf ppf "entry: %s@." t.entry;
  List.iter (fun b -> Block.pp ppf b) (blocks t)
