type opt_stats = {
  sched_stats : Sched.List_sched.stats;
  loads_eliminated : int;
  stores_eliminated : int;
  fell_back : bool;
  work_units : int;
}

type t = {
  region : Ir.Region.t;
  alloc_result : Sched.Smarq_alloc.result option;
  stats : opt_stats;
  deps : Analysis.Depgraph.t;
  hazards : Sched.Hazards.t;
  issue_seq : (int * Ir.Instr.t) list;
  policy_used : Sched.Policy.t;
  cert : Analysis.Disamb.t option;
}

type request = {
  sb : Ir.Superblock.t;
  policy : Sched.Policy.t;
  known_alias : (int * int) list;
  fresh_base : int;
}

let build_once ~policy ~issue_width ~mem_ports ~latency ~fresh_id ~known_alias
    ~pipeline ~profile ~arena (sb : Ir.Superblock.t) =
  let module P = Sched.Profile in
  let facts_for body =
    if policy.Sched.Policy.static_disambiguation then
      Some (Analysis.Const_prop.analyze ~body)
    else None
  in
  (* Eager certification keeps the artifact a pure function of the
     superblock: both pipelines derive identical witnesses in one shot
     instead of memoizing on verdict-consultation order. *)
  let certify_into alias body =
    if policy.Sched.Policy.certify then begin
      let cert = Analysis.Disamb.certify ~alias ~body in
      Analysis.May_alias.set_certified alias (Analysis.Disamb.pairs cert);
      Some cert
    end
    else None
  in
  let alias =
    P.time profile P.add_alias (fun () ->
        Analysis.May_alias.analyze ~known_alias
          ?const_facts:(facts_for sb.Ir.Superblock.body)
          ~body:sb.Ir.Superblock.body ())
  in
  ignore (certify_into alias sb.Ir.Superblock.body : Analysis.Disamb.t option);
  let elim =
    Elim.run ~policy ~alias ~body:sb.Ir.Superblock.body ~fresh_id
  in
  let sb' = { sb with Ir.Superblock.body = elim.Elim.body } in
  (* positions changed: rebuild the analysis over the final body *)
  let alias' =
    P.time profile P.add_alias (fun () ->
        Analysis.May_alias.analyze ~known_alias
          ?const_facts:(facts_for elim.Elim.body)
          ~body:elim.Elim.body ())
  in
  let cert = certify_into alias' elim.Elim.body in
  let deps =
    P.time profile P.add_depgraph (fun () ->
        Analysis.Depgraph.build ~body:elim.Elim.body ~alias:alias'
          ~eliminated:elim.Elim.eliminations
          ~reference:(Sched.Pipeline.is_reference pipeline)
          ?arena ())
  in
  let outcome =
    Sched.List_sched.schedule ~sb:sb' ~deps ~policy ~issue_width ~mem_ports
      ~latency ~fresh_id ~extra_assumed:elim.Elim.assumed_no_alias ~pipeline
      ?profile ?arena ()
  in
  (outcome, elim, deps, cert)

let optimize ~policy ~issue_width ~mem_ports ~latency ~fresh_id
    ?(known_alias = []) ?(pipeline = Sched.Pipeline.Fast) ?profile ?arena sb =
  let work_units = 2 * Ir.Superblock.instr_count sb in
  let finish ~fell_back ~policy_used
      ( (outcome : Sched.List_sched.outcome),
        (elim : Elim.result),
        (deps : Analysis.Depgraph.t),
        (cert : Analysis.Disamb.t option) ) =
    Option.iter
      (fun p ->
        Sched.Profile.note_region p ~instrs:(Ir.Superblock.instr_count sb))
      profile;
    let region = outcome.Sched.List_sched.region in
    let region =
      match cert with
      | None -> region
      | Some c ->
        {
          region with
          Ir.Region.certified_no_alias = Analysis.Disamb.pairs c;
        }
    in
    {
      region;
      alloc_result = outcome.Sched.List_sched.alloc_result;
      stats =
        {
          sched_stats = outcome.Sched.List_sched.stats;
          loads_eliminated = elim.Elim.loads_eliminated;
          stores_eliminated = elim.Elim.stores_eliminated;
          fell_back;
          work_units;
        };
      deps;
      hazards = outcome.Sched.List_sched.hazards;
      issue_seq = outcome.Sched.List_sched.issue_seq;
      policy_used;
      cert;
    }
  in
  let attempt policy =
    build_once ~policy ~issue_width ~mem_ports ~latency ~fresh_id ~known_alias
      ~pipeline ~profile ~arena sb
  in
  let has_elims =
    policy.Sched.Policy.allow_load_load_forward
    || policy.Sched.Policy.allow_store_load_forward
    || policy.Sched.Policy.allow_store_elim
  in
  try finish ~fell_back:false ~policy_used:policy (attempt policy) with
  | Sched.Smarq_alloc.Overflow _
  | Sched.Mask_alloc.Mask_overflow _
  | Sched.Naive_alloc.Naive_overflow _
  | Sched.Alat_annot.Alat_overflow _
  | Sched.List_sched.Unschedulable _ ->
    (* Middle tier: eliminations are the register hogs (their extended
       dependences keep registers live across long spans); retry with
       reordering only, where non-speculation mode can always fit.
       Only if even that overflows, build without speculation. *)
    let reorder_only =
      {
        policy with
        Sched.Policy.allow_load_load_forward = false;
        allow_store_load_forward = false;
        allow_store_elim = false;
      }
    in
    (try
       if has_elims then
         finish ~fell_back:true ~policy_used:reorder_only
           (attempt reorder_only)
       else
         let none = Sched.Policy.none () in
         finish ~fell_back:true ~policy_used:none (attempt none)
     with
    | Sched.Smarq_alloc.Overflow _
    | Sched.Mask_alloc.Mask_overflow _
    | Sched.Naive_alloc.Naive_overflow _
    | Sched.Alat_annot.Alat_overflow _
    | Sched.List_sched.Unschedulable _ ->
      let none = Sched.Policy.none () in
      finish ~fell_back:true ~policy_used:none (attempt none))

(* Replaying a captured request is bit-identical to the original run by
   construction: [fresh_base] restores the id counter the driver held
   when it issued the request, and the ids a translation consumes are a
   pure function of the superblock and that base (every other input is
   in the request).  The private ref also makes replay order-free —
   requests share no mutable state, which is what lets Exec.Translate
   fan them out across domains. *)
let run_request ~issue_width ~mem_ports ~latency ?pipeline ?profile ?arena r =
  optimize ~policy:r.policy ~issue_width ~mem_ports ~latency
    ~fresh_id:(ref r.fresh_base) ~known_alias:r.known_alias ?pipeline ?profile
    ?arena r.sb
