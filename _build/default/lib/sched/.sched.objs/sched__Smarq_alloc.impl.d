lib/sched/smarq_alloc.ml: Analysis Hashtbl Ir List Option Printf Queue String
