(* Architectural state on the hot path of the simulator.

   Registers live in dense [int array]s indexed by [Ir.Reg.index] (one
   array per register class), memory in fixed-size [Bytes] pages hung
   off a page table keyed by [addr asr page_bits].  Unwritten registers
   and bytes read 0, so a missing page is indistinguishable from a page
   of zeros and rollback may restore a byte to 0 instead of removing
   it.  A one-entry page cache short-circuits the table lookup for the
   streaming accesses that dominate region execution.

   Atomic regions journal the previous value of every touched word and
   register, so checkpoint is O(1) and rollback is O(journal), never
   O(whole state). *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type journal_entry =
  | Mem of int * int * int  (* address, width, previous value *)
  | Reg of Ir.Reg.t * int  (* register, previous value *)

type t = {
  mutable ints : int array;
  mutable floats : int array;
  mutable temps : int array;
  pages : (int, Bytes.t) Hashtbl.t;
  mutable cached_idx : int;  (* page cache; [min_int] = empty *)
  mutable cached_page : Bytes.t;
  mutable journal : journal_entry list option;  (* Some = region active *)
}

let create () =
  {
    ints = Array.make Ir.Reg.int_count 0;
    floats = Array.make Ir.Reg.float_count 0;
    temps = Array.make 64 0;
    pages = Hashtbl.create 16;
    cached_idx = min_int;
    cached_page = Bytes.empty;
    journal = None;
  }

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages * 2) in
  Hashtbl.iter (fun idx page -> Hashtbl.replace pages idx (Bytes.copy page)) t.pages;
  {
    ints = Array.copy t.ints;
    floats = Array.copy t.floats;
    temps = Array.copy t.temps;
    pages;
    cached_idx = min_int;
    cached_page = Bytes.empty;
    journal = None;
  }

(* -- registers -- *)

let grown a i =
  let n = Array.length a in
  let a' = Array.make (max (i + 1) (n * 2)) 0 in
  Array.blit a 0 a' 0 n;
  a'

let get_reg t r =
  match r with
  | Ir.Reg.R i -> if i < Array.length t.ints then t.ints.(i) else 0
  | Ir.Reg.F i -> if i < Array.length t.floats then t.floats.(i) else 0
  | Ir.Reg.T i -> if i < Array.length t.temps then t.temps.(i) else 0

let set_reg t r v =
  (match t.journal with
  | Some entries -> t.journal <- Some (Reg (r, get_reg t r) :: entries)
  | None -> ());
  match r with
  | Ir.Reg.R i ->
    if i >= Array.length t.ints then t.ints <- grown t.ints i;
    t.ints.(i) <- v
  | Ir.Reg.F i ->
    if i >= Array.length t.floats then t.floats <- grown t.floats i;
    t.floats.(i) <- v
  | Ir.Reg.T i ->
    if i >= Array.length t.temps then t.temps <- grown t.temps i;
    t.temps.(i) <- v

(* -- memory -- *)

let check_width width =
  if width <= 0 || width > 8 then
    invalid_arg (Printf.sprintf "Machine: unsupported access width %d" width)

(* [asr] floors, so page indices work unchanged for negative addresses:
   page p covers [p * page_size, (p + 1) * page_size). *)
let page_index addr = addr asr page_bits

let find_page t idx =
  if idx = t.cached_idx then Some t.cached_page
  else
    match Hashtbl.find_opt t.pages idx with
    | Some page ->
      t.cached_idx <- idx;
      t.cached_page <- page;
      Some page
    | None -> None

let ensure_page t idx =
  match find_page t idx with
  | Some page -> page
  | None ->
    let page = Bytes.make page_size '\000' in
    Hashtbl.replace t.pages idx page;
    t.cached_idx <- idx;
    t.cached_page <- page;
    page

let read_raw t addr width =
  let idx = page_index addr in
  if page_index (addr + width - 1) = idx then
    (* fast path: the access sits inside one page *)
    match find_page t idx with
    | None -> 0
    | Some page ->
      let off = addr land page_mask in
      let rec go i acc =
        if i < 0 then acc
        else go (i - 1) ((acc lsl 8) lor Char.code (Bytes.unsafe_get page (off + i)))
      in
      go (width - 1) 0
  else
    let byte i =
      match find_page t (page_index (addr + i)) with
      | None -> 0
      | Some page -> Char.code (Bytes.unsafe_get page ((addr + i) land page_mask))
    in
    let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl 8) lor byte i) in
    go (width - 1) 0

let write_raw t addr width v =
  let idx = page_index addr in
  if page_index (addr + width - 1) = idx then begin
    let page = ensure_page t idx in
    let off = addr land page_mask in
    for i = 0 to width - 1 do
      Bytes.unsafe_set page (off + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
    done
  end
  else
    for i = 0 to width - 1 do
      let page = ensure_page t (page_index (addr + i)) in
      Bytes.unsafe_set page
        ((addr + i) land page_mask)
        (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
    done

let load t ~addr ~width =
  check_width width;
  read_raw t addr width

let store t ~addr ~width v =
  check_width width;
  (match t.journal with
  | Some entries ->
    (* an 8-byte word has 64 bits and does not round-trip through a
       63-bit OCaml int, so journal it as two 4-byte halves *)
    let entries =
      if width = 8 then
        Mem (addr + 4, 4, read_raw t (addr + 4) 4)
        :: Mem (addr, 4, read_raw t addr 4)
        :: entries
      else Mem (addr, width, read_raw t addr width) :: entries
    in
    t.journal <- Some entries
  | None -> ());
  write_raw t addr width v

(* -- atomic regions -- *)

let checkpoint t =
  match t.journal with
  | Some _ -> invalid_arg "Machine.checkpoint: region already active"
  | None -> t.journal <- Some []

let commit t =
  match t.journal with
  | None -> invalid_arg "Machine.commit: no active region"
  | Some _ -> t.journal <- None

let rollback t =
  match t.journal with
  | None -> invalid_arg "Machine.rollback: no active region"
  | Some entries ->
    (* newest-first: the oldest entry for an address or register is
       applied last and wins, restoring the checkpointed value *)
    t.journal <- None;
    let undo = function
      | Mem (addr, width, prev) -> write_raw t addr width prev
      | Reg (r, prev) -> set_reg t r prev
    in
    List.iter undo entries

let in_region t = Option.is_some t.journal

(* -- observation (cold paths: tests, diffs, dumps) -- *)

let dump_regs t =
  let collect mk a acc =
    let out = ref acc in
    for i = Array.length a - 1 downto 0 do
      if a.(i) <> 0 then out := (mk i, a.(i)) :: !out
    done;
    !out
  in
  (* index order per class = [Ir.Reg.compare] order, no sort needed *)
  collect (fun i -> Ir.Reg.R i) t.ints
    (collect (fun i -> Ir.Reg.F i) t.floats [])

let dump_mem t =
  let page_idxs =
    Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages []
    |> List.sort Int.compare
  in
  List.concat_map
    (fun idx ->
      let page = Hashtbl.find t.pages idx in
      let base = idx * page_size in
      let out = ref [] in
      for off = page_size - 1 downto 0 do
        let b = Char.code (Bytes.unsafe_get page off) in
        if b <> 0 then out := (base + off, b) :: !out
      done;
      !out)
    page_idxs

let zero_page = Bytes.make page_size '\000'

let equal_regs a b =
  let le x y =
    (* every value in [x] matches [y] (missing slots read 0) *)
    let ny = Array.length y in
    let ok = ref true in
    Array.iteri (fun i v -> if v <> (if i < ny then y.(i) else 0) then ok := false) x;
    !ok
  in
  le a b && le b a

let equal_mem a b =
  let covered_by x y =
    Hashtbl.fold
      (fun idx page acc ->
        acc
        &&
        match Hashtbl.find_opt y.pages idx with
        | Some page' -> Bytes.equal page page'
        | None -> Bytes.equal page zero_page)
      x.pages true
  in
  covered_by a b && covered_by b a

let equal_guest_state a b =
  equal_regs a.ints b.ints && equal_regs a.floats b.floats && equal_mem a b

let diff_guest_state a b =
  let diffs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  let regs_a = dump_regs a and regs_b = dump_regs b in
  if regs_a <> regs_b then begin
    let tbl = Hashtbl.create 32 in
    List.iter (fun (r, v) -> Hashtbl.replace tbl r (Some v, None)) regs_a;
    List.iter
      (fun (r, v) ->
        match Hashtbl.find_opt tbl r with
        | Some (x, _) -> Hashtbl.replace tbl r (x, Some v)
        | None -> Hashtbl.replace tbl r (None, Some v))
      regs_b;
    Hashtbl.iter
      (fun r (x, y) ->
        if x <> y then
          note "reg %s: %s vs %s" (Ir.Reg.to_string r)
            (match x with Some v -> string_of_int v | None -> "0")
            (match y with Some v -> string_of_int v | None -> "0"))
      tbl
  end;
  let mem_a = dump_mem a and mem_b = dump_mem b in
  if mem_a <> mem_b then begin
    let tbl = Hashtbl.create 64 in
    List.iter (fun (ad, v) -> Hashtbl.replace tbl ad (Some v, None)) mem_a;
    List.iter
      (fun (ad, v) ->
        match Hashtbl.find_opt tbl ad with
        | Some (x, _) -> Hashtbl.replace tbl ad (x, Some v)
        | None -> Hashtbl.replace tbl ad (None, Some v))
      mem_b;
    Hashtbl.iter
      (fun ad (x, y) ->
        if x <> y then
          note "mem[%d]: %s vs %s" ad
            (match x with Some v -> string_of_int v | None -> "0")
            (match y with Some v -> string_of_int v | None -> "0"))
      tbl
  end;
  List.rev !diffs
