lib/opt/elim.mli: Analysis Ir Sched
