test/suite_machine.ml: Alcotest Helpers Ir List String Vliw
