lib/binary/image.mli:
