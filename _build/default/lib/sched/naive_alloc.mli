(** The straightforward order-based allocation of Section 2.4 of the
    paper, made executable: every memory operation takes one alias
    register in original program order, always sets it, and always
    checks (no P/C filtering, the source of the "unnecessary alias
    detection" energy cost of Section 2.5).

    Registers are released through greedy rotation: once the complete
    program-order prefix up to order [k] has issued, no later-executing
    operation may check a register at or below [k] (they all hold
    strictly larger orders), so BASE may rotate past it.  Even with
    that help the working set is far larger than SMARQ's — and the
    scheme cannot support load/store elimination at all, since
    detection between non-reordered operations needs constraints that
    program-order allocation cannot express (Section 2.4). *)

exception Naive_overflow of string

type result = {
  annots : (int * Ir.Annot.t) list;
  rotations : (int * int) list;  (** after instr id, rotate by n *)
  max_offset : int;
}

val annotate :
  body:Ir.Instr.t list ->
  issue_order:(int * Ir.Instr.t) list ->
  ar_count:int ->
  result
(** [body] in original program order defines register orders;
    [issue_order] is the schedule.  Raises {!Naive_overflow} when an
    offset would reach [ar_count]. *)
