(** The standalone FAST ALGORITHM of Section 5.1, for acyclic
    constraint graphs.

    Given final P/C bits, constraint edges and the issue order, it
    allocates register orders by topological traversal of the
    constraint graph ([order(X) = next_order], [next_order++] only for
    P operations) and then maximizes each operation's BASE with the
    MAX-BASE formula ([base(X)] = min order over operations issuing at
    or after X).

    The integrated allocator of {!Smarq_alloc} must agree with this
    algorithm on the working set for reorder-only regions; the test
    suite checks that. *)

type t = {
  order : (int, int) Hashtbl.t;
  base : (int, int) Hashtbl.t;
  max_offset : int;
}

type error = {
  cycle : Analysis.Constraints.edge list;
      (** witness: the constraint edges forming the cyclic core *)
}

val allocate :
  issue_order:int list ->
  p_bit:(int -> bool) ->
  c_bit:(int -> bool) ->
  edges:Analysis.Constraints.edge list ->
  (t, error) result
(** [Error] when the constraint graph has a cycle (the integrated
    algorithm would have inserted an AMOV); the witness lists the
    edges of the cyclic core so callers can report {e why}. *)
