lib/vliw/eval.ml: Hw Ir Machine
