type t = {
  ids : int array;
  index : (int, int) Hashtbl.t;
  preds_of : int list array;
  succs_of : int list array;
  dropped : (int * int) list;
}

(* RAW, WAR, WAW edges over the straight-line body (positions). *)
let register_edges ~arr ~add =
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let uses_since_def : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          (* RAW: reader depends on the last writer *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d pos
          | None -> ());
          let l = Option.value (Hashtbl.find_opt uses_since_def r) ~default:[] in
          Hashtbl.replace uses_since_def r (pos :: l))
        (Ir.Instr.uses i);
      List.iter
        (fun r ->
          (* WAW on the previous writer, WAR on readers since then *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d pos
          | None -> ());
          List.iter
            (fun u -> add u pos)
            (Option.value (Hashtbl.find_opt uses_since_def r) ~default:[]);
          Hashtbl.replace last_def r pos;
          Hashtbl.replace uses_since_def r [])
        (Ir.Instr.defs i))
    arr

(* Memory edges: hard dependences always; speculative ones unless the
   policy may drop them. *)
let memory_edges ~arr ~pos_of ~deps ~policy ~add =
  let dropped = ref [] in
  List.iter
    (fun (first, second, strength) ->
      match Hashtbl.find_opt pos_of first, Hashtbl.find_opt pos_of second with
      | Some pf, Some ps ->
        (match strength with
        | Analysis.Depgraph.Hard -> add pf ps
        | Analysis.Depgraph.Speculative ->
          if Policy.may_drop_edge policy ~first:arr.(pf) ~second:arr.(ps) then
            dropped := (first, second) :: !dropped
          else add pf ps)
      | _ -> ())
    (Analysis.Depgraph.mem_dep_pairs deps);
  !dropped

let crosses_exit_blocked (i : Ir.Instr.t) live =
  Ir.Instr.is_store i
  || List.exists (fun r -> Ir.Reg.Set.mem r live) (Ir.Instr.defs i)

(* Branch-branch program order: consecutive side exits chain, which
   also carries exit-fence transitivity for the reduced builder. *)
let branch_chain ~arr ~add =
  let last_branch = ref None in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      if Ir.Instr.is_side_exit i then begin
        (match !last_branch with
        | Some b -> add b pos
        | None -> ());
        last_branch := Some pos
      end)
    arr

(* Control edges around side exits, seed form: for every (instruction,
   exit) pair whose crossing is blocked, an explicit edge — O(n^2). *)
let control_edges_reference ~sb ~arr ~add =
  branch_chain ~arr ~add;
  let n = Array.length arr in
  let exits = ref [] in
  for idx = 0 to n - 1 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      (* earlier instructions that must stay before this exit *)
      for k = 0 to idx - 1 do
        let j = arr.(k) in
        if (not (Ir.Instr.is_side_exit j)) && crosses_exit_blocked j live then
          add k idx
      done;
      exits := (idx, live) :: !exits
    end
    else
      (* later instruction blocked from hoisting above earlier exits *)
      List.iter
        (fun (bpos, live) -> if crosses_exit_blocked i live then add bpos idx)
        !exits
  done

(* Reduced control edges: one backward and one forward sweep.

   Per instruction only two exit edges are emitted — to the nearest
   following exit that blocks it and from the latest preceding exit
   that blocks it.  The branch chain supplies transitivity: if j is
   blocked at exit e then it is blocked-by-order at every exit after e
   (forward) resp. before e (backward), so the chained graph has the
   same transitive closure as the seed's all-pairs form.  Since every
   latency is >= 1, equal closure means the list scheduler makes
   identical decisions (see DESIGN.md, "Translation pipeline").

   Blockedness is per-exit (it depends on the exit's live-out set), so
   the sweeps track, per register, the nearest exit at which that
   register is live; stores are blocked at every exit. *)
let control_edges_reduced ~sb ~arr ~add =
  branch_chain ~arr ~add;
  let n = Array.length arr in
  (* forward sweep: latest preceding blocked exit per instruction *)
  let latest_exit = ref (-1) in
  let latest_live : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  for idx = 0 to n - 1 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      latest_exit := idx;
      Ir.Reg.Set.iter (fun r -> Hashtbl.replace latest_live r idx) live
    end
    else begin
      let e =
        if Ir.Instr.is_store i then !latest_exit
        else
          List.fold_left
            (fun acc r ->
              max acc (Option.value (Hashtbl.find_opt latest_live r) ~default:(-1)))
            (-1) (Ir.Instr.defs i)
      in
      if e >= 0 then add e idx
    end
  done;
  (* backward sweep: nearest following blocked exit per instruction *)
  let next_exit = ref (-1) in
  let next_live : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  for idx = n - 1 downto 0 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      next_exit := idx;
      Ir.Reg.Set.iter (fun r -> Hashtbl.replace next_live r idx) live
    end
    else begin
      let e =
        if Ir.Instr.is_store i then !next_exit
        else
          List.fold_left
            (fun acc r ->
              match Hashtbl.find_opt next_live r with
              | Some e -> if acc < 0 then e else min acc e
              | None -> acc)
            (-1) (Ir.Instr.defs i)
      in
      if e >= 0 then add idx e
    end
  done

(* On-the-fly transitive reduction.  All edges run forward in body
   position, so processing nodes in reverse order with a Bytes-backed
   reachability row per node lets each successor list be pruned with
   one bitset probe per edge: walking successors in ascending position,
   an edge is redundant exactly when its target is already reachable
   through a kept predecessor-in-the-list.  Equal transitive closure
   with unit-or-larger latencies preserves the schedule bit for bit.

   The matrix costs n^2 bits and each kept edge a row union, so
   pathologically dense graphs skip the reduction (deterministically —
   the choice depends only on the graph, never on timing). *)
let transitive_reduce ~n ~edge_count succs_pos =
  let row_bytes = (n + 7) / 8 in
  if n = 0 || n > 8192 || edge_count * row_bytes > 64_000_000 then ()
  else begin
    let m = Analysis.Bitset.Matrix.create ~rows:n ~cols:n in
    for v = n - 1 downto 0 do
      let ss = List.sort_uniq Int.compare succs_pos.(v) in
      let kept =
        List.filter
          (fun u ->
            if Analysis.Bitset.Matrix.mem m ~row:v u then false
            else begin
              Analysis.Bitset.Matrix.add m ~row:v u;
              Analysis.Bitset.Matrix.union_rows m ~dst:v ~src:u;
              true
            end)
          ss
      in
      succs_pos.(v) <- kept
    done
  end

let build ~sb ~deps ~policy ?(reference = false) () =
  let body = sb.Ir.Superblock.body in
  let arr = Array.of_list body in
  let n = Array.length arr in
  let ids = Array.map (fun (i : Ir.Instr.t) -> i.Ir.Instr.id) arr in
  let index = Hashtbl.create (2 * max 1 n) in
  Array.iteri (fun pos id -> Hashtbl.replace index id pos) ids;
  let succs_pos = Array.make (max 1 n) [] in
  let seen = Hashtbl.create 1024 in
  let edge_count = ref 0 in
  let add a b =
    if a <> b then begin
      let key = (a * n) + b in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        succs_pos.(a) <- b :: succs_pos.(a);
        incr edge_count
      end
    end
  in
  register_edges ~arr ~add;
  let dropped = memory_edges ~arr ~pos_of:index ~deps ~policy ~add in
  if reference then control_edges_reference ~sb ~arr ~add
  else begin
    control_edges_reduced ~sb ~arr ~add;
    transitive_reduce ~n ~edge_count:!edge_count succs_pos
  end;
  let preds_of = Array.make (max 1 n) [] in
  let succs_of = Array.make (max 1 n) [] in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        preds_of.(b) <- ids.(a) :: preds_of.(b);
        succs_of.(a) <- ids.(b) :: succs_of.(a))
      succs_pos.(a)
  done;
  (* normalized speculation record: ascending (first, second), no dups *)
  let dropped = List.sort_uniq compare dropped in
  { ids; index; preds_of; succs_of; dropped }

let preds t id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> t.preds_of.(pos)
  | None -> []

let succs t id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> t.succs_of.(pos)
  | None -> []

let instr_ids t = t.ids
