let caps =
  Detector.
    {
      scheme = "none";
      scalable = false;
      false_positives = false;
      detects_store_store = false;
      max_registers = Some 0;
    }

let detector () =
  Detector.
    {
      name = "none";
      caps;
      reset = (fun () -> ());
      on_mem = (fun _ _ -> Ok ());
      on_rotate = (fun _ -> ());
      on_amov = (fun ~src:_ ~dst:_ -> ());
      checks_performed = (fun () -> 0);
    }
