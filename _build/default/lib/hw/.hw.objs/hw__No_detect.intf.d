lib/hw/no_detect.mli: Detector
