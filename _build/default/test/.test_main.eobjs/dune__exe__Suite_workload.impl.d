test/suite_workload.ml: Alcotest Frontend Helpers Ir List Printf Runtime Smarq Vliw Workload
