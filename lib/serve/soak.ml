(* The sustained soak: minutes of mixed plain / fault / verify / heavy
   traffic against one server with every resilience feature on —
   deadlines, retries, per-(tenant, scheme) breakers, and service-level
   chaos — reporting tail latency (p50..p99.9), breaker transitions,
   retry totals, and the GC-derived memory ceiling.

   Determinism is the load-bearing wall: [smarq_run soak --chaos-seed S]
   run twice must produce identical reports modulo wall-clock fields.
   Three choices make that hold under any worker interleaving:

   - The driver serializes per tenant: each tenant has at most one
     outstanding request, refilled round-robin, so every breaker and
     retry budget (both per-tenant) sees a total, reproducible event
     order no matter which domain runs what.
   - Every budget is counted, not timed: deadlines are dispatched-block
     budgets, breaker cooldowns are admission counts, chaos decisions
     are pure functions of (seed, rid, attempt).  Wall clocks appear
     only in latency percentiles, which the replay test masks out.
   - The classes whose deterministic outcome depends on cache state
     (fault-injected and deadline-heavy requests) run private caches;
     the shared-shard classes use warmth only for speed, never for a
     counted decision.

   Request classes, by submission id [rid mod 8]:
     0,3,6  Plain     shared shard, smarq64 / alat
     1,5    Faulty    private cache, PR-3 fault campaign, smarq16
     2      Verified  shared shard, --verify-regions=all, smarq64
     4      Heavy     private cache, larger scale, a block budget it
                      cannot meet — the deterministic timeout source
                      (and, via its own scheme, the breaker driver)
     7      Plain     shared shard, alat *)

type config = {
  requests : int;
  tenants : int;
  domains : int;
  benches : string array;  (* suite benchmark names, cycled by class *)
  scale : int;
  heavy_scale : int;
  chaos_seed : int;
  chaos : Chaos.config;
  fault_seed : int;
  fault_rate : float;
  deadline_blocks : int;  (* block budget for every normal class *)
  heavy_blocks : int;  (* block budget the heavy class cannot meet *)
  retry : Retry.policy;
  retry_budget : int;  (* tokens per tenant *)
  breaker : Breaker.config;
  shard_policy : Tcache.Policy.t;
  tenant_budget : int option;
  duration_s : float option;  (* stop submitting past this; makes the
                                 report wall-bounded (not replayable) *)
  gc_every : int;  (* GC sample cadence, in collected replies *)
}

let default_config =
  {
    requests = 240;
    tenants = 4;
    domains = 2;
    benches = [| "wupwise"; "swim" |];
    scale = 1;
    heavy_scale = 3;
    chaos_seed = 1;
    chaos = { Chaos.default_config with poison_rate = 0.2 };
    fault_seed = 1;
    fault_rate = 0.05;
    (* calibrated: normal classes dispatch ~900 blocks at scale 1, the
       heavy class ~2_300 at heavy_scale 3 — so the normal budget never
       trips below scale ~200 and the heavy budget always does *)
    deadline_blocks = 200_000;
    heavy_blocks = 64;
    retry = { Retry.default_policy with max_attempts = 2 };
    retry_budget = 64;
    (* tighter than the server default so the heavy class's repeated
       timeouts visibly trip, shed, probe and re-open within one run *)
    breaker = { Breaker.window = 4; failure_threshold = 0.5; cooldown = 2 };
    shard_policy = Tcache.Policy.Lru;
    tenant_budget = None;
    duration_s = None;
    gc_every = 32;
  }

type mem = {
  heap_mb_start : float;
  heap_mb_peak : float;
  heap_mb_end : float;
  top_heap_mb : float;  (* the memory ceiling: max major heap ever *)
  major_collections : int;
}

type report = {
  cfg : config;
  server : Server.report;
  issued : int;
  elapsed_s : float;
  throughput_rps : float;
  mem : mem;
  pool : Exec.Pool.health;
  wall_bounded : bool;  (* duration_s cut submission short *)
}

let words_to_mb w = float_of_int w *. float_of_int (Sys.word_size / 8) /. 1e6

let heap_mb () = words_to_mb (Gc.quick_stat ()).Gc.heap_words

let validate cfg =
  if cfg.requests < 0 then invalid_arg "Serve.Soak: requests < 0";
  if cfg.tenants < 1 then invalid_arg "Serve.Soak: tenants < 1";
  if cfg.domains < 1 then invalid_arg "Serve.Soak: domains < 1";
  if Array.length cfg.benches = 0 then invalid_arg "Serve.Soak: no benches";
  if cfg.deadline_blocks < 1 || cfg.heavy_blocks < 1 then
    invalid_arg "Serve.Soak: block budgets < 1";
  if cfg.gc_every < 1 then invalid_arg "Serve.Soak: gc_every < 1";
  ignore (Retry.check_policy cfg.retry);
  ignore (Breaker.check_config cfg.breaker);
  ignore (Chaos.check_config cfg.chaos)

(* The request for submission id [rid]; tenant is [rid mod tenants]
   because the driver below issues round-robin in rid order. *)
let request_of cfg benches rid =
  let tenant = "t" ^ string_of_int (rid mod cfg.tenants) in
  let bench i = benches.(i mod Array.length benches) in
  let deadline blocks = Some { Server.wall_s = None; blocks = Some blocks } in
  match rid mod 8 with
  | 1 | 5 ->
    {
      Server.tenant;
      job =
        Exec.Matrix.of_bench ~scale:cfg.scale ~scheme:(Smarq.Scheme.Smarq 16)
          (bench 1);
      shared_cache = false;
      fault =
        Some
          { Server.fault_seed = cfg.fault_seed; fault_rate = cfg.fault_rate };
      deadline = deadline cfg.deadline_blocks;
    }
  | 2 ->
    {
      Server.tenant;
      job =
        Exec.Matrix.of_bench ~verify:Check.Verifier.All ~scale:cfg.scale
          ~scheme:(Smarq.Scheme.Smarq 64) (bench 0);
      shared_cache = true;
      fault = None;
      deadline = deadline cfg.deadline_blocks;
    }
  | 4 ->
    {
      Server.tenant;
      job =
        Exec.Matrix.of_bench ~scale:cfg.heavy_scale
          ~scheme:Smarq.Scheme.Efficeon (bench 0);
      shared_cache = false;
      fault = None;
      deadline = deadline cfg.heavy_blocks;
    }
  | 7 ->
    {
      Server.tenant;
      job =
        Exec.Matrix.of_bench ~scale:cfg.scale ~scheme:Smarq.Scheme.Alat
          (bench 1);
      shared_cache = true;
      fault = None;
      deadline = deadline cfg.deadline_blocks;
    }
  | _ ->
    {
      Server.tenant;
      job =
        Exec.Matrix.of_bench ~scale:cfg.scale ~scheme:(Smarq.Scheme.Smarq 64)
          (bench 0);
      shared_cache = true;
      fault = None;
      deadline = deadline cfg.deadline_blocks;
    }

let run cfg =
  validate cfg;
  let benches = Array.map Workload.Specfp.find cfg.benches in
  let chaos_plan = Chaos.plan ~config:cfg.chaos ~seed:cfg.chaos_seed () in
  let server =
    Server.create
      ~config:
        {
          Server.domains = cfg.domains;
          (* one outstanding request per tenant: the bound can never
             reject, every admission decision is the breakers' *)
          queue_limit = max 4 (2 * cfg.tenants);
          batch = 1;
          shard_policy = cfg.shard_policy;
          tenant_budget = cfg.tenant_budget;
          retry = Some cfg.retry;
          retry_budget = Some cfg.retry_budget;
          retry_seed = cfg.chaos_seed;
          breaker = Some cfg.breaker;
          chaos = Some chaos_plan;
        }
      ()
  in
  let heap_mb_start = heap_mb () in
  let heap_mb_peak = ref heap_mb_start in
  let collected = ref 0 in
  let sample_gc () =
    if !collected mod cfg.gc_every = 0 then
      heap_mb_peak := Float.max !heap_mb_peak (heap_mb ())
  in
  let collect ticket =
    ignore (Server.await ticket);
    incr collected;
    sample_gc ()
  in
  (* round-robin, one outstanding request per tenant: tenant [k]'s
     requests execute strictly in rid order, which is what makes every
     per-tenant counter (breakers, retry budgets) replay exactly *)
  let outstanding : Server.ticket option array = Array.make cfg.tenants None in
  let t0 = Unix.gettimeofday () in
  let over_duration () =
    match cfg.duration_s with
    | None -> false
    | Some d -> Unix.gettimeofday () -. t0 >= d
  in
  let issued = ref 0 in
  let wall_bounded = ref false in
  (try
     for i = 0 to cfg.requests - 1 do
       if over_duration () then begin
         wall_bounded := true;
         raise_notrace Exit
       end;
       let k = i mod cfg.tenants in
       (match outstanding.(k) with
       | Some ticket ->
         outstanding.(k) <- None;
         collect ticket
       | None -> ());
       match Server.submit server (request_of cfg benches i) with
       | `Accepted ticket ->
         incr issued;
         outstanding.(k) <- Some ticket
       | `Rejected ->
         (* unreachable: at most [tenants] outstanding < queue_limit *)
         ()
     done
   with Exit -> ());
  Array.iteri
    (fun k ticket ->
      match ticket with
      | Some ticket ->
        outstanding.(k) <- None;
        collect ticket
      | None -> ())
    outstanding;
  let pool = Server.pool_health server in
  Server.shutdown server;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let server_report = Server.report server in
  let q = Gc.quick_stat () in
  {
    cfg;
    server = server_report;
    issued = !issued;
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0.0 then float_of_int !collected /. elapsed_s else 0.0);
    mem =
      {
        heap_mb_start;
        heap_mb_peak = Float.max !heap_mb_peak (heap_mb ());
        heap_mb_end = heap_mb ();
        top_heap_mb = words_to_mb q.Gc.top_heap_words;
        major_collections = q.Gc.major_collections;
      };
    pool;
    wall_bounded = !wall_bounded;
  }

(* Exactly the fields two same-seed runs must agree on: every counted
   quantity, no wall clocks.  The replay test and the CLI determinism
   check compare this string. *)
let deterministic_json (r : report) =
  let s = r.server in
  Printf.sprintf
    "{\"chaos_seed\":%d,\"issued\":%d,\"completed\":%d,\"timed_out\":%d,\
     \"degraded\":%d,\"rejected\":%d,\"errors\":%d,\"retries\":%d,\
     \"retry_budget_exhausted\":%d,\"breaker_transitions\":%d,\
     \"breaker_sheds\":%d,\"chaos_stalls\":%d,\"chaos_poisons\":%d,\
     \"chaos_flushes\":%d,\"injected_faults\":%d,\"pool_failed_jobs\":%d}"
    r.cfg.chaos_seed r.issued s.Server.completed s.Server.timed_out
    s.Server.degraded s.Server.rejected s.Server.errors s.Server.retries
    s.Server.retry_budget_exhausted s.Server.breaker_transitions
    s.Server.breaker_sheds s.Server.chaos_stalls s.Server.chaos_poisons
    s.Server.chaos_flushes s.Server.injected_faults r.pool.Exec.Pool.failed

(* Every accepted request must resolve as exactly one of
   completed / timed-out / degraded / failed. *)
let fully_resolved (r : report) =
  let s = r.server in
  s.Server.completed + s.Server.timed_out + s.Server.degraded
  + s.Server.errors
  = r.issued

let report_json (r : report) =
  Printf.sprintf
    "{\"requests\":%d,\"tenants\":%d,\"domains\":%d,\"deadline_blocks\":%d,\
     \"heavy_blocks\":%d,\"wall_bounded\":%b,\"deterministic\":%s,\
     \"elapsed_s\":%.3f,\"throughput_rps\":%.3f,\
     \"mem\":{\"heap_mb_start\":%.2f,\"heap_mb_peak\":%.2f,\
     \"heap_mb_end\":%.2f,\"top_heap_mb\":%.2f,\"major_collections\":%d},\
     \"pool\":{\"queue_depth\":%d,\"failed_jobs\":%d,\"shutting_down\":%b,\
     \"domains\":%d},\"server\":%s}"
    r.cfg.requests r.cfg.tenants r.cfg.domains r.cfg.deadline_blocks
    r.cfg.heavy_blocks r.wall_bounded (deterministic_json r) r.elapsed_s
    r.throughput_rps r.mem.heap_mb_start r.mem.heap_mb_peak r.mem.heap_mb_end
    r.mem.top_heap_mb r.mem.major_collections r.pool.Exec.Pool.queue_depth
    r.pool.Exec.Pool.failed r.pool.Exec.Pool.shutting_down
    r.pool.Exec.Pool.domains
    (Server.report_json r.server)

let pp ppf (r : report) =
  Format.fprintf ppf
    "@[<v>soak: %d issued over %.1fs (%.1f req/s)%s@,%a@,\
     memory: %.1f MB start, %.1f MB peak, %.1f MB end, ceiling %.1f MB \
     (%d major GCs)@,pool: %d queued, %d failed jobs@]"
    r.issued r.elapsed_s r.throughput_rps
    (if r.wall_bounded then " [wall-bounded]" else "")
    Server.pp_report r.server r.mem.heap_mb_start r.mem.heap_mb_peak
    r.mem.heap_mb_end r.mem.top_heap_mb r.mem.major_collections
    r.pool.Exec.Pool.queue_depth r.pool.Exec.Pool.failed
