(** Translation-as-a-service: many guest programs, one SMARQ runtime.

    A server owns a long-running {!Exec.Pool} of worker domains and a
    {!Shards} partition of translation caches.  Clients {!submit}
    requests — each one full dynamic-optimization run of one guest
    program under one scheme, on behalf of a tenant — and {!await} the
    reply on the returned ticket.

    {b Admission control}: at most [queue_limit] requests may be
    accepted-but-unfinished at once; past that, {!submit} returns
    [`Rejected] immediately (no queue entry, no blocking), which is the
    backpressure signal an open-loop client must observe.  A server
    that has begun {!shutdown} also rejects rather than raising, so a
    draining server degrades gracefully.  Rejections are counted
    separately from errors in the {!report}.

    {b Batching}: accepted requests buffer per tenant and dispatch to
    the pool in groups of [batch] (default 1 = no batching); a partial
    batch is dispatched by {!flush}, {!shutdown}, or — since the
    resilience rework — by {!await} itself when the awaited request is
    still buffered, so blocking on a ticket can no longer deadlock
    against the caller's own undelivered batch.

    {b Caching}: a request with [shared_cache = true] runs against the
    tenant's per-worker shard ({!Shards}), so its hot regions stay
    translated across requests; [shared_cache = false] gives the
    run a private cache, reproducing batch-mode behavior exactly.

    {b Fault injection}: a request carrying a {!fault_spec} replays the
    PR-3 fault campaign [(seed + rid, rate)] where [rid] is the
    request's submission sequence number — per-request deterministic,
    and degradation stays local to that request's run (tenant-local by
    construction; see [Runtime.Driver.run]).

    {b Resilience} (all off by default): a request may carry a
    {!deadline} budget (wall clock and/or dispatched guest blocks)
    enforced through the driver's deadline hook — an expired budget
    resolves the request [Timed_out] with its partial stats.  A
    configured {!Retry.policy} re-runs attempts that raised, with
    jittered exponential backoff seeded per request by
    [retry_seed + rid], each retry paid from the tenant's
    [retry_budget].  A configured {!Breaker.config} keeps one
    closed/open/half-open breaker per (tenant, scheme); an open breaker
    sheds requests to the degraded path instead of rejecting them.  The
    degraded path — also the fallback once retries are exhausted — runs
    the request interpreter-only (no regions, so it cannot alias-fault)
    on a private cache and resolves it [Degraded].  A configured
    {!Chaos.plan} injects worker stalls, poisoned attempts, and shard
    flushes, deterministically in (seed, rid, attempt).  Every request
    therefore resolves as exactly one of
    completed / timed-out / degraded / failed — or is rejected with no
    ticket at all. *)

type fault_spec = {
  fault_seed : int;  (** base seed; each request adds its sequence number *)
  fault_rate : float;
}

type deadline = {
  wall_s : float option;
      (** end-to-end wall budget from submission (includes queue wait);
          checked every 64th dispatched block *)
  blocks : int option;
      (** guest blocks dispatched per driver run — a deterministic
          budget, the one the soak harness replays *)
}

type config = {
  domains : int;  (** worker domains in the pool *)
  queue_limit : int;  (** max accepted-but-unfinished requests *)
  batch : int;  (** requests per pool dispatch, per tenant *)
  shard_policy : Tcache.Policy.t;  (** eviction policy of every shard *)
  tenant_budget : int option;
      (** per-shard capacity (scheduled-region instructions): the
          per-tenant eviction budget.  [None] = unbounded. *)
  retry : Retry.policy option;  (** [None] = no retries *)
  retry_budget : int option;
      (** retry tokens per tenant; [None] = unlimited *)
  retry_seed : int;  (** backoff-jitter seed (plus request rid) *)
  breaker : Breaker.config option;  (** [None] = no breakers *)
  chaos : Chaos.plan option;  (** [None] = no service-level chaos *)
}

val default_config : config
(** 2 domains, queue limit 64, batch 1, LRU shards, unbounded budget,
    every resilience feature off. *)

type request = {
  tenant : string;
  job : Exec.Matrix.job;
  shared_cache : bool;
  fault : fault_spec option;
  deadline : deadline option;
}

type resolution =
  | Done of Runtime.Driver.result  (** a normal attempt completed *)
  | Timed_out of Runtime.Driver.result
      (** deadline budget expired; the result carries the partial stats
          and machine state accumulated up to the cutoff *)
  | Degraded of Runtime.Driver.result
      (** served by the interpreter-only fallback (breaker shed, or
          retries exhausted) *)
  | Failed of exn
      (** the degraded fallback itself raised, or — with retries and
          breakers both off — the single attempt raised *)

type reply = {
  request : request;
  resolution : resolution;
  queue_wait_s : float;  (** submit to worker pickup *)
  service_s : float;  (** the terminal run itself *)
  translate_s : float;  (** translation share of service *)
  execute_s : float;  (** [service_s - translate_s] *)
  worker : int;  (** which worker domain ran it *)
  injected : int;  (** faults injected by this request's plan *)
  attempts : int;  (** runs performed, degraded fallback included *)
}

type ticket
type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on [queue_limit < 1], [batch < 1], or
    out-of-range retry/breaker settings. *)

val submit : t -> request -> [ `Accepted of ticket | `Rejected ]
(** Never blocks, never raises: a full queue and a shut-down server
    both reject (counted). *)

val flush : t -> unit
(** Dispatch every partial per-tenant batch now. *)

val await : ticket -> reply
(** Block until the request finishes.  If the request is still sitting
    in its tenant's partial batch, that batch is dispatched first — no
    prior {!flush} required. *)

val shutdown : t -> unit
(** Dispatch partial batches, drain every accepted request, join the
    pool.  Idempotent; concurrent callers all block until the single
    drain completes. *)

val translate :
  t ->
  ?jobs:int ->
  ?pipeline:Sched.Pipeline.t ->
  config:Vliw.Config.t ->
  Opt.Optimizer.request list ->
  Exec.Translate.result
(** {!Exec.Translate.replay} on the server's own pool: parallel
    translation shares the long-running worker domains with request
    service rather than nesting a second pool.  [jobs] bounds in-flight
    requests (default: the pool size); artifacts come back in
    submission order.  Raises [Invalid_argument] after {!shutdown}. *)

val invalidate : t -> string -> unit
(** Cross-shard invalidation of a guest label (self-modifying-code
    shootdown).  Call while no request is running. *)

val shards_telemetry : ?tenant:string -> t -> Tcache.Telemetry.t
(** Aggregate shard telemetry, optionally for one shard key (note shard
    tenants are keyed ["tenant|job-label"]). *)

val shard_count : t -> int

val inflight : t -> int
(** Accepted-but-unfinished requests right now. *)

val pool_health : t -> Exec.Pool.health
(** Point-in-time worker-pool snapshot (queue depth, failed jobs,
    shutting-down flag) for the soak report. *)

val run_matrix : ?domains:int -> Exec.Matrix.job list -> Exec.Matrix.outcome list
(** {!Exec.Matrix.run_matrix} as a service client: one fresh-cache
    no-fault request per job on a private server, outcomes in job-list
    order, first job exception re-raised.  Results are bit-identical to
    the batch path because workers execute the same
    {!Exec.Matrix.run_job} unit. *)

type report = {
  submitted : int;  (** accepted requests *)
  completed : int;  (** resolved [Done] *)
  rejected : int;  (** admission rejections (not errors) *)
  errors : int;  (** resolved [Failed] *)
  timed_out : int;  (** resolved [Timed_out] *)
  degraded : int;  (** resolved [Degraded] *)
  retries : int;  (** extra attempts granted across all tenants *)
  retry_budget_exhausted : int;  (** retries refused for lack of tokens *)
  breaker_transitions : int;  (** state changes summed over breakers *)
  breaker_sheds : int;  (** requests diverted to the degraded path *)
  breakers_open : int;  (** breakers open at snapshot time *)
  chaos_stalls : int;
  chaos_poisons : int;
  chaos_flushes : int;
  injected_faults : int;
  sim_seconds : float;  (** sum of per-request service time *)
  queue_wait : Runtime.Percentiles.summary;
  service : Runtime.Percentiles.summary;
  translate : Runtime.Percentiles.summary;
  execute : Runtime.Percentiles.summary;
  total : Runtime.Percentiles.summary;  (** queue wait + service *)
}

val report : t -> report
(** A consistent snapshot of the counters and latency summaries. *)

val report_json : report -> string
(** One JSON object (counters plus the five latency summaries, each
    through {!Runtime.Percentiles.summary_json}). *)

val pp_report : Format.formatter -> report -> unit
