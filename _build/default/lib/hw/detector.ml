type violation = {
  checker : int;
  setter : int;
  false_positive_prone : bool;
}

type caps = {
  scheme : string;
  scalable : bool;
  false_positives : bool;
  detects_store_store : bool;
  max_registers : int option;
}

type t = {
  name : string;
  caps : caps;
  reset : unit -> unit;
  on_mem : Ir.Instr.t -> Access.t -> (unit, violation) result;
  on_rotate : int -> unit;
  on_amov : src:int -> dst:int -> unit;
  checks_performed : unit -> int;
}

let exceeds_window _ _ = false

let pp_violation ppf v =
  Format.fprintf ppf "alias violation: instr %d checked instr %d%s" v.checker
    v.setter
    (if v.false_positive_prone then " (possibly spurious)" else "")
