test/suite_paper.ml: Alcotest Analysis Helpers Hw Ir List Opt Sched
