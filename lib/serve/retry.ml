(* Jittered exponential backoff and per-tenant retry budgets.

   Backoff delays are drawn from a caller-supplied [Verify.Prng] so a
   seeded service replays the exact same delay sequence; budgets are a
   simple atomic token pool so retry storms from one tenant cannot
   amplify overload for everyone (the paper's rollback ladder, lifted
   to the request level: bounded recovery, never unbounded re-try). *)

type policy = {
  max_attempts : int;  (* total attempts, first try included *)
  base_backoff_s : float;
  max_backoff_s : float;
  jitter : float;  (* fraction of the delay randomized away, [0,1] *)
}

let default_policy =
  { max_attempts = 3; base_backoff_s = 0.001; max_backoff_s = 0.05; jitter = 0.5 }

let check_policy p =
  if p.max_attempts < 1 then invalid_arg "Serve.Retry: max_attempts < 1";
  if p.base_backoff_s < 0.0 || p.max_backoff_s < p.base_backoff_s then
    invalid_arg "Serve.Retry: backoff bounds";
  if p.jitter < 0.0 || p.jitter > 1.0 then
    invalid_arg "Serve.Retry: jitter not in [0,1]";
  p

(* Attempt [n] (1-based) just failed: the delay before attempt [n+1]
   doubles per failure, clamps at [max_backoff_s], then loses up to
   [jitter] of itself uniformly at random (decorrelating tenants that
   fail in lockstep). *)
let backoff_s p ~prng ~attempt =
  if attempt < 1 then invalid_arg "Serve.Retry.backoff_s: attempt < 1";
  let exp =
    p.base_backoff_s *. (2.0 ** float_of_int (min 30 (attempt - 1)))
  in
  let clamped = Float.min p.max_backoff_s exp in
  clamped *. (1.0 -. (p.jitter *. Verify.Prng.float prng))

type budget = {
  tokens : int Atomic.t option;  (* None = unlimited *)
  used : int Atomic.t;
}

let budget n =
  if n < 0 then invalid_arg "Serve.Retry.budget: negative";
  { tokens = Some (Atomic.make n); used = Atomic.make 0 }

let unlimited () = { tokens = None; used = Atomic.make 0 }

(* Take one retry token; [false] means the budget is spent and the
   caller must stop retrying.  Lock-free: a failed decrement undoes
   itself, so concurrent takers never push the pool negative for an
   observer that reads after the dust settles. *)
let try_take b =
  match b.tokens with
  | None ->
    Atomic.incr b.used;
    true
  | Some tk ->
    let got = Atomic.fetch_and_add tk (-1) > 0 in
    if got then Atomic.incr b.used else Atomic.incr tk;
    got

let taken b = Atomic.get b.used

let remaining b =
  match b.tokens with None -> None | Some tk -> Some (max 0 (Atomic.get tk))
