(** Sharded translation cache: per-tenant, per-worker partitions.

    A shard is one private cache store, keyed by [(tenant, worker)]:

    - the {b tenant} axis gives eviction-budget isolation — every shard
      is created with [tenant_budget] as its capacity, so a noisy
      tenant evicts only its own translations;
    - the {b worker} axis gives lock-free steady-state operation — a
      shard is only ever used by the worker domain it is keyed under,
      so the driver's cache operations inside a run need no mutex (only
      the shard {e lookup} and the cross-shard operations lock).

    The container is generic over the store type through an {!ops}
    record, so the same sharding (and the same property tests) covers
    both raw {!Tcache.Store.t}s and the driver's opaque
    {!Runtime.Driver.cache}. *)

type 'c ops = {
  make : capacity:int option -> 'c;
  invalidate : 'c -> string -> unit;
  flush : 'c -> unit;
  telemetry : 'c -> Tcache.Telemetry.t;
}

val store_ops : policy:Tcache.Policy.t -> 'a Tcache.Store.t ops
(** The {!ops} of a plain value store under [policy]. *)

type 'c t

val create : ?tenant_budget:int -> ops:'c ops -> unit -> 'c t
(** [tenant_budget] (scheduled-region instructions, default unlimited)
    caps every shard independently.  Raises [Invalid_argument] when
    non-positive. *)

val shard : 'c t -> tenant:string -> worker:int -> 'c
(** The (lazily created) store for this tenant on this worker.  Safe to
    call from any domain; the returned store must then only be mutated
    by worker [worker]. *)

val shard_count : 'c t -> int
val tenants : 'c t -> string list

val invalidate : 'c t -> string -> unit
(** Cross-shard invalidation: drop [label]'s translation from {e every}
    shard, as a self-modifying-code shootdown requires.  Call only
    while no request is mid-run (the server issues these between
    dispatches). *)

val flush : 'c t -> unit
(** Cross-shard flush of every store.  Same quiescence requirement as
    {!invalidate}. *)

val telemetry : ?tenant:string -> 'c t -> Tcache.Telemetry.t
(** Aggregate telemetry over all shards, or over one tenant's shards:
    counters sum, the peak takes the max ({!Tcache.Telemetry.add}). *)
