(* The executable program-order allocation baseline of Section 2.4:
   annotation shape, greedy rotation, detection soundness, and the
   comparisons against SMARQ the ablation experiment relies on. *)

open Helpers
module I = Ir.Instr

let build_naive ?(ar_count = 64) body =
  let sb = sb_of body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let fresh_id = ref (Ir.Superblock.max_instr_id sb + 100) in
  Sched.List_sched.schedule ~sb ~deps
    ~policy:(Sched.Policy.naive_order ~ar_count)
    ~issue_width:4 ~mem_ports:2 ~latency:default_latency ~fresh_id ()

let test_every_memop_annotated () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let s1 = st (I.Imm 1) (r 2) 0 in
  let l2 = ld (f 2) (r 3) 0 in
  let outcome = build_naive [ l1; s1; l2 ] in
  let instrs = Ir.Region.instrs outcome.Sched.List_sched.region in
  List.iter
    (fun (i : I.t) ->
      if I.is_memory i then
        match I.annot i with
        | Ir.Annot.Queue { p; c; _ } ->
          Alcotest.(check bool) "P set" true p;
          Alcotest.(check bool) "C set" true c
        | _ -> Alcotest.fail "memory op without queue annotation")
    instrs

let test_orders_follow_program_order () =
  reset_ids ();
  (* the store issues before the hoistable loads under scheduling, but
     its register order (0-based program position among memops) must
     still reflect the original order *)
  let s1 = st (I.Imm 1) (r 1) 0 in
  let l1 = ld (f 1) (r 2) 0 in
  let outcome = build_naive [ s1; l1 ] in
  let instrs = Ir.Region.instrs outcome.Sched.List_sched.region in
  let offset_of id =
    List.find_map
      (fun (i : I.t) ->
        if i.I.id = id then
          match I.annot i with
          | Ir.Annot.Queue { offset; _ } -> Some offset
          | _ -> None
        else None)
      instrs
  in
  (* no rotation can happen before both issue, so offsets = orders *)
  Alcotest.(check (option int)) "store is memop 0" (Some 0) (offset_of s1.I.id);
  Alcotest.(check (option int)) "load is memop 1" (Some 1) (offset_of l1.I.id)

let test_naive_detects_reordered_alias () =
  reset_ids ();
  let s1 = st (I.Imm 7) (r 1) 0 in
  let l1 = ld (f 1) (r 2) 0 in
  let use = fadd (f 2) (f 1) (f 1) in
  let sb = sb_of [ s1; l1; use ] in
  (* aliased at runtime: the naive queue must catch it like SMARQ *)
  let faults =
    run_to_commit
      ~policy:(Sched.Policy.naive_order ~ar_count:64)
      ~detector:(Hw.Queue.detector (Hw.Queue.create ~size:64))
      ~init:[ (r 1, 500); (r 2, 500) ]
      sb
  in
  Alcotest.(check bool) "alias detected then converged" true (faults >= 1)

let test_naive_window_grows_with_reordering () =
  reset_ids ();
  (* interleaved cross-base pairs: SMARQ's constraint-order allocation
     needs a smaller window than program-order allocation *)
  let body =
    List.concat
      (List.init 10 (fun k ->
           [
             st (I.Imm k) (r 1) (k * 8);
             ld (f (k mod 8)) (r 2) (k * 8);
           ]))
  in
  let naive = build_naive body in
  let sb = sb_of body in
  let smarq = optimize sb in
  let nw = naive.Sched.List_sched.region.Ir.Region.ar_window in
  let sw = smarq.Opt.Optimizer.region.Ir.Region.ar_window in
  Alcotest.(check bool)
    (Printf.sprintf "smarq window (%d) <= naive window (%d)" sw nw)
    true (sw <= nw)

let test_naive_overflow_falls_back () =
  reset_ids ();
  (* more memory operations in flight than registers: the optimizer
     must deliver a working (non-speculative) region *)
  let body =
    List.concat
      (List.init 8 (fun k ->
           [ st (I.Imm k) (r 1) (k * 8); ld (f (k mod 8)) (r 2) (k * 8) ]))
  in
  let sb = sb_of body in
  let fresh_id = ref (Ir.Superblock.max_instr_id sb + 100) in
  let o =
    Opt.Optimizer.optimize
      ~policy:(Sched.Policy.naive_order ~ar_count:3)
      ~issue_width:4 ~mem_ports:2 ~latency:default_latency ~fresh_id sb
  in
  Alcotest.(check bool) "window fits the tiny file" true
    (o.Opt.Optimizer.region.Ir.Region.ar_window <= 3)

let test_naive_never_eliminates () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let l2 = ld (f 2) (r 1) 0 in
  let x = st (I.Imm 1) (r 2) 0 in
  let z = st (I.Imm 2) (r 2) 0 in
  let body = [ l1; l2; x; z ] in
  let alias = Analysis.May_alias.analyze ~body () in
  let fresh_id = ref 100 in
  let res =
    Opt.Elim.run
      ~policy:(Sched.Policy.naive_order ~ar_count:64)
      ~alias ~body ~fresh_id
  in
  Alcotest.(check int) "no loads eliminated" 0 res.Opt.Elim.loads_eliminated;
  Alcotest.(check int) "no stores eliminated" 0 res.Opt.Elim.stores_eliminated

let test_naive_more_checks_than_smarq () =
  let b = Workload.Specfp.find "apsi" in
  let program = Workload.Specfp.program b in
  let checks scheme =
    (Smarq.run_program ~fuel:100_000_000 ~scheme program).Runtime.Driver.stats
      .Runtime.Stats.alias_checks
  in
  let s = checks (Smarq.Scheme.Smarq 64) in
  let n = checks (Smarq.Scheme.Naive_order 64) in
  Alcotest.(check bool)
    (Printf.sprintf "naive (%d) performs more checks than smarq (%d)" n s)
    true (n > s)

let test_naive_equivalent_on_suite () =
  List.iter
    (fun name ->
      let b = Workload.Specfp.find name in
      let program = Workload.Specfp.program b in
      let ref_m = Vliw.Machine.create () in
      ignore (Frontend.Interp.run ~fuel:50_000_000 ref_m program);
      let r =
        Smarq.run_program ~fuel:100_000_000
          ~scheme:(Smarq.Scheme.Naive_order 64) program
      in
      if not (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)
      then Alcotest.failf "%s diverged under naive64" name)
    [ "wupwise"; "mesa"; "art"; "ammp" ]

let suite =
  ( "naive-order",
    [
      case "every memory op gets P and C" test_every_memop_annotated;
      case "register orders follow program order"
        test_orders_follow_program_order;
      case "reordered aliases are detected" test_naive_detects_reordered_alias;
      case "SMARQ window never larger" test_naive_window_grows_with_reordering;
      case "overflow falls back cleanly" test_naive_overflow_falls_back;
      case "eliminations are disabled" test_naive_never_eliminates;
      case "more checks than SMARQ (energy)" test_naive_more_checks_than_smarq;
      case "suite equivalence under naive64" test_naive_equivalent_on_suite;
    ] )
