module I = Ir.Instr

type outcome =
  | Committed of Ir.Instr.label option
  | Alias_fault of Hw.Detector.violation

type result = {
  outcome : outcome;
  cycles : int;
  alias_checks : int;
}

exception Fault of Hw.Detector.violation
exception Exit_taken of Ir.Instr.label

let exec_instr ~detector ~machine ~cache ~stalls (i : I.t) =
  match i.op with
  | I.Rotate n -> detector.Hw.Detector.on_rotate n
  | I.Amov { src_offset; dst_offset } ->
    detector.Hw.Detector.on_amov ~src:src_offset ~dst:dst_offset
  | I.Branch _ | I.Exit _ ->
    (match Eval.exec_control machine i with
    | Eval.Leave_region l -> raise (Exit_taken l)
    | Eval.Fall_through -> ()
    | Eval.Goto _ -> assert false)
  | I.Jump _ ->
    (* regions are straight-line; jumps do not appear *)
    invalid_arg "Region_exec: jump inside region"
  | _ ->
    (match Eval.access_of machine i with
    | Some range ->
      (match cache with
      | Some c ->
        stalls := !stalls + Cache.access c ~addr:range.Hw.Access.lo
      | None -> ());
      (match detector.Hw.Detector.on_mem i range with
      | Ok () -> ()
      | Error v -> raise (Fault v))
    | None -> ());
    Eval.exec_data machine i

let run ~config ~detector ~machine ?cache (region : Ir.Region.t) =
  if region.ar_window > config.Config.alias_registers then
    invalid_arg
      (Printf.sprintf
         "Region_exec: region needs %d alias registers, machine has %d"
         region.ar_window config.Config.alias_registers);
  let checks_before = detector.Hw.Detector.checks_performed () in
  detector.Hw.Detector.reset ();
  Machine.checkpoint machine;
  let bundles = region.bundles in
  let n = Array.length bundles in
  let finish outcome ~cycles =
    {
      outcome;
      cycles;
      alias_checks = detector.Hw.Detector.checks_performed () - checks_before;
    }
  in
  let executed = ref 0 in
  let stalls = ref 0 in
  let rec go cycle =
    if cycle >= n then begin
      Machine.commit machine;
      finish
        (Committed region.final_exit)
        ~cycles:(config.Config.checkpoint_cycles + n + !stalls)
    end
    else begin
      executed := cycle + 1;
      List.iter (exec_instr ~detector ~machine ~cache ~stalls) bundles.(cycle);
      go (cycle + 1)
    end
  in
  try go 0 with
  | Fault v ->
    Machine.rollback machine;
    finish (Alias_fault v)
      ~cycles:
        (config.Config.checkpoint_cycles + !executed + !stalls
        + config.Config.rollback_cycles)
  | Exit_taken l ->
    Machine.commit machine;
    finish
      (Committed (Some l))
      ~cycles:(config.Config.checkpoint_cycles + !executed + !stalls)
