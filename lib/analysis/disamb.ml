type fact = {
  instr : int;
  width : int;
  origin : Absint.origin;
  scale : int;
  off : Absint.cset;
}

type reason = Ranges | Congruence of int

type witness = {
  x : fact;
  y : fact;
  reason : reason;
}

type t = { table : (int * int, witness) Hashtbl.t }

let norm_pair a b = if a <= b then (a, b) else (b, a)

let fact_of_value instr width (v : Absint.value) =
  {
    instr;
    width;
    origin = v.Absint.origin;
    scale = v.Absint.scale;
    off = v.Absint.off;
  }

let certify ~alias ~body =
  let table = Hashtbl.create 32 in
  let facts = Absint.analyze ~body in
  let mems =
    List.filter Ir.Instr.is_memory body |> Array.of_list
  in
  let n = Array.length mems in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = mems.(i) and y = mems.(j) in
      if Ir.Instr.is_store x || Ir.Instr.is_store y then
        if May_alias.verdict alias x y = May_alias.May_alias then begin
          match
            ( Absint.address facts x.Ir.Instr.id,
              Absint.address facts y.Ir.Instr.id )
          with
          | Some (vx, wx), Some (vy, wy) -> (
            match Absint.separated vx wx vy wy with
            | Some sep ->
              let reason =
                match sep with
                | Absint.Ranges -> Ranges
                | Absint.Congruence g -> Congruence g
              in
              Hashtbl.replace table
                (norm_pair x.Ir.Instr.id y.Ir.Instr.id)
                {
                  x = fact_of_value x.Ir.Instr.id wx vx;
                  y = fact_of_value y.Ir.Instr.id wy vy;
                  reason;
                }
            | None -> ())
          | _ -> ()
        end
    done
  done;
  { table }

let no_alias t a b = Hashtbl.mem t.table (norm_pair a b)

let pairs t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.table [] |> List.sort compare

let witnesses t =
  Hashtbl.fold (fun p w acc -> (p, w) :: acc) t.table []
  |> List.sort (fun (p1, _) (p2, _) -> compare p1 p2)
  |> List.map snd

let of_witnesses ws =
  let table = Hashtbl.create (List.length ws * 2) in
  List.iter
    (fun w -> Hashtbl.replace table (norm_pair w.x.instr w.y.instr) w)
    ws;
  { table }

let count t = Hashtbl.length t.table

let pp_reason ppf = function
  | Ranges -> Format.pp_print_string ppf "ranges"
  | Congruence g -> Format.fprintf ppf "congruence(mod %d)" g

let pp_fact ppf f =
  Format.fprintf ppf "#%d[%db] = %a" f.instr f.width Absint.pp_value
    { Absint.origin = f.origin; scale = f.scale; off = f.off }

let pp_witness ppf w =
  Format.fprintf ppf "%a  ⟂  %a  by %a" pp_fact w.x pp_fact w.y pp_reason
    w.reason

let origin_json = function
  | Absint.Const -> {|{"kind":"const"}|}
  | Absint.Entry r ->
    Printf.sprintf {|{"kind":"entry","reg":%S}|}
      (Format.asprintf "%a" Ir.Reg.pp r)
  | Absint.Opaque id -> Printf.sprintf {|{"kind":"opaque","def":%d}|} id

let fact_json f =
  Printf.sprintf
    {|{"instr":%d,"width":%d,"origin":%s,"scale":%d,"lo":%d,"hi":%d,"stride":%d,"rem":%d}|}
    f.instr f.width (origin_json f.origin) f.scale f.off.Absint.lo
    f.off.Absint.hi f.off.Absint.stride f.off.Absint.rem

let witness_to_json w =
  let reason =
    match w.reason with
    | Ranges -> {|{"kind":"ranges"}|}
    | Congruence g -> Printf.sprintf {|{"kind":"congruence","gcd":%d}|} g
  in
  Printf.sprintf {|{"x":%s,"y":%s,"reason":%s}|} (fact_json w.x)
    (fact_json w.y) reason
