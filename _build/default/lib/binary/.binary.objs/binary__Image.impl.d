lib/binary/image.ml: Array Bytes Int32
