type kind =
  | Real
  | Extended

type strength =
  | Hard
  | Speculative

type edge = {
  first : int;
  second : int;
  kind : kind;
  strength : strength;
}

type elimination =
  | Load_forwarded of {
      source : int;
      eliminated : int;
    }
  | Store_overwritten of {
      eliminated : int;
      overwriter : int;
    }

(* Flat struct-of-arrays edge store.  Edge [k] is
   (e_first.(k), e_second.(k), flags) with the kind and strength packed
   into one byte; [into_*] is a CSR adjacency over distinct target ids
   (edges grouped by [second] in occurrence order — the order the
   allocator consumes them in).  No per-edge records survive
   construction; the list-returning accessors below materialize on
   demand for the cold consumers (verifier, mutation harness, tests). *)
type t = {
  n_edges : int;
  e_first : int array;
  e_second : int array;
  e_flags : Bytes.t;  (* bit 0: Extended, bit 1: Hard *)
  into_slot : (int, int) Hashtbl.t;  (* target instr id -> CSR slot *)
  into_start : int array;  (* n_targets + 1 *)
  into_edge : int array;  (* edge indices grouped by target slot *)
}

let flag_of_edge e =
  (match e.kind with Real -> 0 | Extended -> 1)
  lor match e.strength with Speculative -> 0 | Hard -> 2

let kind_at t k = if Char.code (Bytes.get t.e_flags k) land 1 = 0 then Real else Extended

let strength_at t k =
  if Char.code (Bytes.get t.e_flags k) land 2 = 0 then Speculative else Hard

let edge_at t k =
  {
    first = t.e_first.(k);
    second = t.e_second.(k);
    kind = kind_at t k;
    strength = strength_at t k;
  }

(* Assemble the final store from per-edge writers.  [fill] must call
   [set] exactly [n_edges] times, in edge order. *)
let assemble ~n_edges fill =
  let e_first = Array.make (max 1 n_edges) 0 in
  let e_second = Array.make (max 1 n_edges) 0 in
  let e_flags = Bytes.make (max 1 n_edges) '\000' in
  let pos = ref 0 in
  fill (fun ~first ~second ~flags ->
      let k = !pos in
      incr pos;
      e_first.(k) <- first;
      e_second.(k) <- second;
      Bytes.set e_flags k (Char.chr flags));
  assert (!pos = n_edges);
  let into_slot = Hashtbl.create 64 in
  let n_targets = ref 0 in
  for k = 0 to n_edges - 1 do
    if not (Hashtbl.mem into_slot e_second.(k)) then begin
      Hashtbl.replace into_slot e_second.(k) !n_targets;
      incr n_targets
    end
  done;
  let n_targets = !n_targets in
  let into_start = Array.make (n_targets + 1) 0 in
  for k = 0 to n_edges - 1 do
    let s = Hashtbl.find into_slot e_second.(k) in
    into_start.(s + 1) <- into_start.(s + 1) + 1
  done;
  for s = 1 to n_targets do
    into_start.(s) <- into_start.(s) + into_start.(s - 1)
  done;
  let cursor = Array.copy into_start in
  let into_edge = Array.make (max 1 n_edges) 0 in
  for k = 0 to n_edges - 1 do
    let s = Hashtbl.find into_slot e_second.(k) in
    into_edge.(cursor.(s)) <- k;
    cursor.(s) <- cursor.(s) + 1
  done;
  { n_edges; e_first; e_second; e_flags; into_slot; into_start; into_edge }

let of_edge_list all =
  let n_edges = List.length all in
  assemble ~n_edges (fun set ->
      List.iter
        (fun e -> set ~first:e.first ~second:e.second ~flags:(flag_of_edge e))
        all)

let strength_of = function
  | May_alias.Must_alias -> Some Hard
  | May_alias.May_alias -> Some Speculative
  | May_alias.No_alias -> None

(* Real dependences: X before Y, may access same memory, >= 1 store.

   The reference builder is the seed's O(n^2) pairwise loop with a full
   may-alias verdict per pair; it is kept verbatim as the oracle the
   swept builder is differentially tested against. *)
let real_edges_reference ~body ~alias =
  let mems = Array.of_list (List.filter Ir.Instr.is_memory body) in
  let n = Array.length mems in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = mems.(i) and y = mems.(j) in
      if Ir.Instr.is_store x || Ir.Instr.is_store y then
        match strength_of (May_alias.verdict alias x y) with
        | Some strength ->
          acc := { first = x.id; second = y.id; kind = Real; strength } :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

(* The swept builder produces the same edge list (same pairs, same
   strengths, same order) without calling the pairwise verdict:

   - Memory operations are bucketed by (base register, generation),
     where an operation's generation counts the definitions of its base
     at strictly earlier body positions.  Two same-base operations see
     an intervening redefinition exactly when their generations differ
     (a self-defining load bumps the generation of everything after it
     but not its own, matching [May_alias.defined_in]'s half-open
     interval).
   - Within a bucket the displacement intervals decide exactly, so a
     disp-sorted sweep emits only the overlapping (hard) pairs and
     never touches the provably disjoint ones.
   - Across buckets every store-carrying pair is an edge (speculative
     unless a recorded alias or a constant-base proof upgrades or
     removes it), so enumerating them costs O(1) per emitted edge.
   - Recorded alias pairs are folded in out of band: they are the only
     way a within-bucket disjoint pair becomes an edge.

   Edges are emitted as packed [(i * n + j) * 2 + hard?] keys into an
   arena vector and sorted at the end, which restores the reference
   builder's (i, j)-lexicographic order.  All node attributes live in
   arena-leased struct-of-arrays buffers (bases as compact reg codes,
   absent constant bases as [min_int]); the maps are open-addressed
   arena intmaps.  Nothing here allocates once the arena is warm. *)
let no_cbase = min_int

let real_edges_swept ~arena ~body ~alias ~emit_edges =
  let module A = Arena in
  let n = List.fold_left (fun acc i -> if Ir.Instr.is_memory i then acc + 1 else acc) 0 body in
  if n = 0 then ()
  else begin
    let id = A.ints arena ~slot:0 n in
    let bcode = A.ints arena ~slot:1 n in
    let disp = A.ints arena ~slot:2 n in
    let width = A.ints arena ~slot:3 n in
    let store = A.ints arena ~slot:4 n in
    let cbase = A.ints arena ~slot:5 n in
    let gen = A.ints arena ~slot:6 n in
    (* generations: one body walk, counting defs per register code *)
    let def_count = A.map arena ~slot:0 in
    let slot_of_id = A.map arena ~slot:1 in
    let next = ref 0 in
    List.iter
      (fun (ins : Ir.Instr.t) ->
        (match Ir.Instr.mem_addr ins with
        | Some a ->
          let k = !next in
          incr next;
          id.(k) <- ins.id;
          bcode.(k) <- A.reg_code a.Ir.Instr.base;
          disp.(k) <- a.Ir.Instr.disp;
          width.(k) <- Option.value (Ir.Instr.mem_width ins) ~default:1;
          store.(k) <- (if Ir.Instr.is_store ins then 1 else 0);
          cbase.(k) <-
            (match May_alias.const_base_value alias ins with
            | Some v -> v
            | None -> no_cbase);
          gen.(k) <- A.map_get def_count bcode.(k) ~default:0;
          A.map_set slot_of_id ins.id k
        | None -> ());
        List.iter
          (fun r ->
            let c = A.reg_code r in
            A.map_set def_count c (1 + A.map_get def_count c ~default:0))
          (Ir.Instr.defs ins))
      body;
    (* dense bucket ids per (base code, generation) *)
    let bucket_ids = A.map arena ~slot:2 in
    let bucket = A.ints arena ~slot:7 n in
    let n_buckets = ref 0 in
    for k = 0 to n - 1 do
      let key = (bcode.(k) * (n + 1)) + gen.(k) in
      bucket.(k) <-
        (match A.map_get bucket_ids key ~default:(-1) with
        | -1 ->
          let b = !n_buckets in
          incr n_buckets;
          A.map_set bucket_ids key b;
          b
        | b -> b)
    done;
    let n_buckets = !n_buckets in
    let keys = A.vec arena ~slot:0 in
    let emit i j hard =
      A.vec_push keys ((((i * n) + j) lsl 1) lor if hard then 1 else 0)
    in
    (* bucket membership as a counting-sorted CSR (ascending slots,
       like the seed's prepend-backwards member lists) *)
    let bstart = A.filled_ints arena ~slot:8 (n_buckets + 1) 0 in
    for k = 0 to n - 1 do
      bstart.(bucket.(k) + 1) <- bstart.(bucket.(k) + 1) + 1
    done;
    for b = 1 to n_buckets do
      bstart.(b) <- bstart.(b) + bstart.(b - 1)
    done;
    let bitems = A.ints arena ~slot:9 n in
    let cursor = A.ints arena ~slot:10 (n_buckets + 1) in
    Array.blit bstart 0 cursor 0 (n_buckets + 1);
    for k = 0 to n - 1 do
      bitems.(cursor.(bucket.(k))) <- k;
      cursor.(bucket.(k)) <- cursor.(bucket.(k)) + 1
    done;
    (* pass 1: within-bucket disp-interval sweep (hard edges only) *)
    for b = 0 to n_buckets - 1 do
      let lo = bstart.(b) and hi = bstart.(b + 1) in
      if hi - lo >= 2 then begin
        A.sort_by bitems ~lo ~hi ~cmp:(fun a b ->
            let c = Int.compare disp.(a) disp.(b) in
            if c <> 0 then c else Int.compare a b);
        for u = lo to hi - 2 do
          let du = disp.(bitems.(u)) and wu = width.(bitems.(u)) in
          let v = ref (u + 1) in
          while !v < hi && disp.(bitems.(!v)) < du + wu do
            let a = bitems.(u) and b = bitems.(!v) in
            if store.(a) = 1 || store.(b) = 1 then
              emit (min a b) (max a b) true;
            incr v
          done
        done
      end
    done;
    (* pass 2: cross-bucket pairs, O(1) per emitted edge.  Per-bucket
       membership chains (newest-first, like the seed's prepend lists)
       and bucket registries as arena vectors. *)
    let mem_head = A.filled_ints arena ~slot:11 n_buckets (-1) in
    let store_head = A.filled_ints arena ~slot:12 n_buckets (-1) in
    let mem_next = A.ints arena ~slot:13 n in
    let store_next = A.ints arena ~slot:14 n in
    let mem_buckets = A.vec arena ~slot:1 in
    let store_buckets = A.vec arena ~slot:2 in
    for j = 0 to n - 1 do
      let bj = bucket.(j) in
      let classify i =
        (* same bucket is excluded at the registry level *)
        if May_alias.is_known alias id.(i) id.(j) then 1
        else if bcode.(i) = bcode.(j) then
          (* same base, different generation: may-alias unless the
             certifier proved the pair disjoint *)
          if May_alias.certified alias id.(i) id.(j) then -1 else 0
        else if cbase.(i) <> no_cbase && cbase.(j) <> no_cbase then begin
          let d1 = cbase.(i) + disp.(i) and d2 = cbase.(j) + disp.(j) in
          if d1 < d2 + width.(j) && d2 < d1 + width.(i) then 1 else -1
        end
        else if May_alias.certified alias id.(i) id.(j) then -1
        else 0
      in
      let scan (bs : A.vec) head next =
        (* newest-first, matching the seed's prepended registry list *)
        for r = bs.A.len - 1 downto 0 do
          let b = bs.A.buf.(r) in
          if b <> bj then begin
            let i = ref head.(b) in
            while !i >= 0 do
              (match classify !i with
              | 1 -> emit !i j true
              | 0 -> emit !i j false
              | _ -> ());
              i := next.(!i)
            done
          end
        done
      in
      if store.(j) = 1 then scan mem_buckets mem_head mem_next
      else scan store_buckets store_head store_next;
      if mem_head.(bj) < 0 then A.vec_push mem_buckets bj;
      mem_next.(j) <- mem_head.(bj);
      mem_head.(bj) <- j;
      if store.(j) = 1 then begin
        if store_head.(bj) < 0 then A.vec_push store_buckets bj;
        store_next.(j) <- store_head.(bj);
        store_head.(bj) <- j
      end
    done;
    (* pass 3: recorded alias pairs that fall inside a bucket but do not
       overlap — the one case the sweeps above never visit *)
    List.iter
      (fun (a, b) ->
        match
          A.map_get slot_of_id a ~default:(-1), A.map_get slot_of_id b ~default:(-1)
        with
        | -1, _ | _, -1 -> ()
        | i, j when i <> j ->
          let i, j = (min i j, max i j) in
          if
            (store.(i) = 1 || store.(j) = 1)
            && bucket.(i) = bucket.(j)
            && not
                 (disp.(i) < disp.(j) + width.(j)
                 && disp.(j) < disp.(i) + width.(i))
          then emit i j true
        | _ -> ())
      (May_alias.known_pairs alias);
    A.sort_ints keys.A.buf ~lo:0 ~hi:keys.A.len;
    emit_edges ~n ~id ~keys
  end

let find_instr body id = List.find_opt (fun (i : Ir.Instr.t) -> i.id = id) body

(* EXTENDED-DEPENDENCE 1: load Z forwarded from X; every intervening
   store Y that may alias X yields Y ->dep X (backward order). *)
let ext_load_forwarded ~alias ~source ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_store y) then None
      else
        match May_alias.verdict alias y source with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = y.id;
              second = source.Ir.Instr.id;
              kind = Extended;
              strength = Speculative;
            })
    between

(* EXTENDED-DEPENDENCE 2: store X eliminated, overwritten by Z; every
   intervening load Y that may alias Z yields Z ->dep Y. *)
let ext_store_overwritten ~alias ~overwriter ~between =
  List.filter_map
    (fun (y : Ir.Instr.t) ->
      if not (Ir.Instr.is_load y) then None
      else
        match May_alias.verdict alias overwriter y with
        | May_alias.No_alias -> None
        | May_alias.Must_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Hard;
            }
        | May_alias.May_alias ->
          Some
            {
              first = overwriter.Ir.Instr.id;
              second = y.id;
              kind = Extended;
              strength = Speculative;
            })
    between

let ext_edges ~body ~alias ~eliminated =
  List.concat_map
    (fun (elim, between) ->
      match elim with
      | Load_forwarded { source; eliminated = _ } ->
        (match find_instr body source with
        | Some src -> ext_load_forwarded ~alias ~source:src ~between
        | None -> [])
      | Store_overwritten { eliminated = _; overwriter } ->
        (match find_instr body overwriter with
        | Some ovw -> ext_store_overwritten ~alias ~overwriter:ovw ~between
        | None -> []))
    eliminated

(* Deduplicate by (first, second, kind): an extended edge may coincide
   with another extended edge from a different elimination. *)
let dedup_edges all =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      let key = (e.first, e.second, e.kind) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    all

let build ~body ~alias ?(eliminated = []) ?(reference = false) ?arena () =
  let ext = ext_edges ~body ~alias ~eliminated in
  if reference then
    of_edge_list (dedup_edges (real_edges_reference ~body ~alias @ ext))
  else begin
    let arena = match arena with Some a -> a | None -> Arena.create () in
    (* the swept pass emits unique pairs, so only sorted-adjacent
       duplicate keys (a pair recorded twice by pass 3) and ext-vs-ext
       collisions need deduplication — real and extended edges can
       never collide on (first, second, kind) *)
    let ext = dedup_edges ext in
    let n_ext = List.length ext in
    let result = ref None in
    real_edges_swept ~arena ~body ~alias ~emit_edges:(fun ~n ~id ~keys ->
        let n_real = ref 0 in
        for k = 0 to keys.Arena.len - 1 do
          if k = 0 || keys.Arena.buf.(k) <> keys.Arena.buf.(k - 1) then
            incr n_real
        done;
        let n_real = !n_real in
        result :=
          Some
            (assemble ~n_edges:(n_real + n_ext) (fun set ->
                 for k = 0 to keys.Arena.len - 1 do
                   let key = keys.Arena.buf.(k) in
                   if k = 0 || key <> keys.Arena.buf.(k - 1) then begin
                     let pair = key lsr 1 in
                     set ~first:id.(pair / n) ~second:id.(pair mod n)
                       ~flags:(if key land 1 = 1 then 2 else 0)
                   end
                 done;
                 List.iter
                   (fun e ->
                     set ~first:e.first ~second:e.second
                       ~flags:(flag_of_edge e))
                   ext)));
    match !result with
    | Some t -> t
    | None -> of_edge_list ext (* no memory operations in the body *)
  end

let edges t =
  let acc = ref [] in
  for k = t.n_edges - 1 downto 0 do
    acc := edge_at t k :: !acc
  done;
  !acc

let iter_edges t f =
  for k = 0 to t.n_edges - 1 do
    f ~first:t.e_first.(k) ~second:t.e_second.(k) ~kind:(kind_at t k)
      ~strength:(strength_at t k)
  done

let edges_into t id =
  match Hashtbl.find_opt t.into_slot id with
  | Some s ->
    let acc = ref [] in
    for x = t.into_start.(s + 1) - 1 downto t.into_start.(s) do
      acc := edge_at t t.into_edge.(x) :: !acc
    done;
    !acc
  | None -> []

let iter_into t id f =
  match Hashtbl.find_opt t.into_slot id with
  | Some s ->
    for x = t.into_start.(s) to t.into_start.(s + 1) - 1 do
      let k = t.into_edge.(x) in
      f ~first:t.e_first.(k) ~second:t.e_second.(k) ~kind:(kind_at t k)
        ~strength:(strength_at t k)
    done
  | None -> ()

let mem_dep_pairs t =
  let acc = ref [] in
  for k = t.n_edges - 1 downto 0 do
    match kind_at t k with
    | Real -> acc := (t.e_first.(k), t.e_second.(k), strength_at t k) :: !acc
    | Extended -> ()
  done;
  !acc

let iter_mem_deps t f =
  for k = 0 to t.n_edges - 1 do
    match kind_at t k with
    | Real -> f ~first:t.e_first.(k) ~second:t.e_second.(k) ~strength:(strength_at t k)
    | Extended -> ()
  done

let pp ppf t =
  iter_edges t (fun ~first ~second ~kind ~strength ->
      Format.fprintf ppf "%d ->dep %d (%s, %s)@." first second
        (match kind with Real -> "real" | Extended -> "ext")
        (match strength with Hard -> "hard" | Speculative -> "spec"))
