module I = Ir.Instr

type bench = {
  name : string;
  default_iters : int;
  make : iters:int -> Ir.Program.t;
  description : string;
}

let program ?(scale = 1) b = b.make ~iters:(b.default_iters * scale)

(* Region layout: three arrays a megabyte apart; strides keep a whole
   run inside its region. *)
let region_a = 0x100000
let region_b = 0x200000
let region_c = 0x300000

let std_regs =
  Kernels.{ a = Ir.Reg.R 1; b = Ir.Reg.R 2; c = Ir.Reg.R 3; idx = Ir.Reg.R 4 }

(* Seed region C with node offsets so pointer chases walk a real
   cycle. *)
let seed_chain bld (regs : Kernels.regs) =
  List.concat_map
    (fun k ->
      Builder.instrs bld
        [
          I.Mov (Ir.Reg.R 20, I.Imm ((k * 40) land 0xf8));
          I.Store
            {
              src = I.Reg (Ir.Reg.R 20);
              addr = Builder.addr regs.Kernels.c (k * 8);
              width = 8;
              annot = Ir.Annot.none;
            };
        ])
    [ 0; 1; 2; 3; 4; 5 ]

let make_loop_bench ~name ~description ~iters ~stride ?(seed = false)
    ?(filler_chains = 4) ?(filler_depth = 5) ~body_blocks () =
  let make ~iters =
    let bld = Builder.create () in
    let regs = std_regs in
    let n = List.length body_blocks in
    let body_labels =
      List.init n (fun k -> Printf.sprintf "%s_body%d" name k)
    in
    let init_label = name ^ "_init" and done_label = name ^ "_done" in
    let init_body =
      Builder.instrs bld
        [
          I.Mov (regs.Kernels.a, I.Imm region_a);
          I.Mov (regs.Kernels.b, I.Imm region_b);
          I.Mov (regs.Kernels.c, I.Imm region_c);
          I.Mov (regs.Kernels.idx, I.Imm iters);
        ]
      @ (if seed then seed_chain bld regs else [])
    in
    Builder.straight bld init_label init_body ~next:(List.hd body_labels);
    List.iteri
      (fun k gen ->
        let lbl = List.nth body_labels k in
        let body =
          gen bld regs k
          @ Kernels.filler bld regs ~chains:filler_chains ~depth:filler_depth
        in
        if k < n - 1 then
          Builder.straight bld lbl body ~next:(List.nth body_labels (k + 1))
        else
          Builder.loop_back bld lbl
            (body @ Kernels.bump_bases bld regs ~stride)
            ~counter:regs.Kernels.idx ~back_to:(List.hd body_labels)
            ~exit_to:done_label ~iters)
      body_blocks;
    Builder.add_block bld done_label [] Ir.Block.Halt;
    Builder.program bld ~entry:init_label
  in
  { name; default_iters = iters; make; description }

let w = 8 (* FP element width in bytes *)

let wupwise =
  make_loop_bench ~name:"wupwise"
    ~description:"streaming SU(3) products: balanced load/FP mix"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 64) ~width:w ~lanes:3 ~depth:3 ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 64) ~width:w ~terms:2
            ~acc:(Ir.Reg.F 5) ());
        (fun bld regs k ->
          Kernels.rmw bld regs ~disp0:(256 + (k * 16)) ~chain:3 ~width:w
            ~updates:3 ());
        (fun bld regs k ->
          Kernels.reread bld regs ~disp0:(448 + (k * 32)) ~width:w ~pairs:2 ());
      ]
    ()

let swim =
  make_loop_bench ~name:"swim"
    ~description:"shallow-water stencils: load-heavy, long FP chains"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 64) ~width:w ~taps:6 ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 64) ~width:w ~lanes:2 ~depth:5 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 64) ~width:w ~taps:5 ());
        (fun bld regs k ->
          Kernels.rmw bld regs ~disp0:(320 + (k * 16)) ~chain:3 ~width:w
            ~updates:2 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 64) ~width:w ~taps:4 ());
      ]
    ()

let mgrid =
  make_loop_bench ~name:"mgrid"
    ~description:"multigrid relaxation: wide stencils, few stores"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 80) ~width:w ~taps:8 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 80) ~width:w ~taps:7 ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 80) ~width:w ~lanes:2 ~depth:3 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 80) ~width:w ~taps:6 ());
      ]
    ()

let applu =
  make_loop_bench ~name:"applu"
    ~description:"SSOR sweeps: stream/reduction blend"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 48) ~width:w ~lanes:2 ~depth:3 ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 48) ~width:w ~terms:3
            ~acc:(Ir.Reg.F 6) ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 48) ~width:w ~lanes:3 ~depth:2 ());
        (fun bld regs k ->
          Kernels.rmw bld regs ~disp0:(288 + (k * 16)) ~chain:3 ~width:w
            ~updates:3 ());
        (fun bld regs k ->
          Kernels.reread bld regs ~disp0:(400 + (k * 24)) ~width:w ~pairs:2 ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 48) ~width:w ~lanes:2 ~depth:4 ());
      ]
    ()

let mesa =
  make_loop_bench ~name:"mesa" ~filler_chains:2 ~filler_depth:3
    ~description:"rasterization-style store bursts behind slow data: \
                  store reordering is decisive (Figure 16)"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.store_burst bld regs ~disp0:(k * 64) ~lane:0 ~width:w
            ~slow_chain:3 ~stores:4 ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(640 + (k * 32)) ~width:w ~lanes:2
            ~depth:3 ());
        (fun bld regs k ->
          Kernels.store_burst bld regs ~disp0:(256 + (k * 64)) ~lane:1 ~width:w
            ~slow_chain:3 ~stores:4 ());
        (fun bld regs k ->
          Kernels.rmw bld regs ~disp0:(384 + (k * 16)) ~chain:2 ~width:w
            ~updates:2 ());
      ]
    ()

let art =
  make_loop_bench ~name:"art"
    ~description:"neural-net simulation: pointer chasing with occasional \
                  genuine aliases"
    ~iters:700 ~stride:512 ~seed:true
    ~body_blocks:
      [
        (fun bld regs _ -> Kernels.pointer_chase bld regs ~width:w ~hops:4);
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(64 + (k * 32)) ~width:w ~lanes:2
            ~depth:2 ());
        (fun bld regs _ ->
          Kernels.alias_probe bld regs ~width:w ~period_log2:7 ~store:false ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 32) ~width:w ~terms:2
            ~acc:(Ir.Reg.F 9) ());
      ]
    ()

let equake =
  make_loop_bench ~name:"equake"
    ~description:"sparse earthquake kernel: scatter stores that \
                  occasionally collide"
    ~iters:700 ~stride:512 ~seed:true
    ~body_blocks:
      [
        (fun bld regs _ -> Kernels.pointer_chase bld regs ~width:w ~hops:3);
        (fun bld regs _ ->
          Kernels.alias_probe bld regs ~width:w ~period_log2:8 ~store:true ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(128 + (k * 32)) ~width:w ~lanes:2
            ~depth:3 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 32) ~width:w ~taps:4 ());
      ]
    ()

let ammp =
  make_loop_bench ~name:"ammp" ~filler_chains:2 ~filler_depth:3
    ~description:"molecular dynamics: very large superblocks, many distinct \
                  memory operations (drives the 16-vs-64 register gap); rare \
                  store-store collisions"
    ~iters:700 ~stride:1024
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 96) ~width:w ~lanes:3 ~depth:2 ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 96) ~width:w ~terms:3
            ~acc:(Ir.Reg.F 10) ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 96) ~width:w ~lanes:3 ~depth:2 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 96) ~width:w ~taps:6 ());
        (fun bld regs _ ->
          Kernels.alias_probe bld regs ~width:w ~period_log2:9 ~store:true ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 96) ~width:w ~lanes:3 ~depth:2 ());
        (fun bld regs k ->
          Kernels.reread bld regs ~disp0:(768 + (k * 32)) ~width:w ~pairs:3 ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 96) ~width:w ~lanes:2 ~depth:3 ());
      ]
    ()

let apsi =
  make_loop_bench ~name:"apsi"
    ~description:"pollutant transport: mixed stencil/stream"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 56) ~width:w ~lanes:2 ~depth:3 ());
        (fun bld regs k ->
          Kernels.stencil bld regs ~disp0:(k * 56) ~width:w ~taps:5 ());
        (fun bld regs k ->
          Kernels.rmw bld regs ~disp0:(320 + (k * 16)) ~chain:3 ~width:w
            ~updates:3 ());
        (fun bld regs k ->
          Kernels.reread bld regs ~disp0:(448 + (k * 24)) ~width:w ~pairs:2 ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 56) ~width:w ~terms:2
            ~acc:(Ir.Reg.F 12) ());
      ]
    ()

let sixtrack =
  make_loop_bench ~name:"sixtrack"
    ~description:"particle tracking: reduction-dominated, long FP chains"
    ~iters:700 ~stride:512
    ~body_blocks:
      [
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 48) ~width:w ~terms:4
            ~acc:(Ir.Reg.F 13) ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 48) ~width:w ~lanes:1 ~depth:6 ());
        (fun bld regs k ->
          Kernels.reduction bld regs ~disp0:(k * 48) ~width:w ~terms:3
            ~acc:(Ir.Reg.F 14) ());
        (fun bld regs k ->
          Kernels.stream bld regs ~disp0:(k * 48) ~width:w ~lanes:2 ~depth:4 ());
      ]
    ()

let suite =
  [ wupwise; swim; mgrid; applu; mesa; art; equake; ammp; apsi; sixtrack ]

let find name = List.find (fun b -> String.equal b.name name) suite
let names = List.map (fun b -> b.name) suite
