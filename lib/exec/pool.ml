(* A flat Domain-based worker pool.

   Jobs are indexed into an array; workers race on an atomic cursor and
   each result lands in its submission slot, so the output order is the
   input order no matter which domain ran what.  The calling domain
   works too: [domains = 1] (or a single job) degenerates to List.map
   with no domain spawned at all. *)

let default_domains () = Domain.recommended_domain_count ()

(* ---- a long-running pool for the serve subsystem ----

   [map] below spins domains up and down per call, which is fine for
   one-shot matrix runs but wrong for a service: the server needs
   workers that outlive any single request, a submission queue, and a
   shutdown that (a) drains everything already accepted and (b) is
   safe to call twice (the CLI calls it on the normal path and again
   from cleanup).  Jobs receive their worker index so callers can keep
   per-worker state (e.g. a tenant's per-domain cache shard) without
   locks. *)

type t = {
  m : Mutex.t;
  work_available : Condition.t;
  finished : Condition.t;  (* signalled when the join completes *)
  jobs : (int -> unit) Queue.t;
  mutable shutting_down : bool;  (* no new submissions; drain and exit *)
  mutable joined : bool;
  failed_jobs : int Atomic.t;  (* jobs that raised (a bug in the caller:
                                  service jobs catch their own errors) *)
  mutable workers : unit Domain.t array;
}

let create ?domains () =
  let n =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      finished = Condition.create ();
      jobs = Queue.create ();
      shutting_down = false;
      joined = false;
      failed_jobs = Atomic.make 0;
      workers = [||];
    }
  in
  let worker id =
    Mutex.lock t.m;
    let rec loop () =
      if not (Queue.is_empty t.jobs) then begin
        let job = Queue.pop t.jobs in
        Mutex.unlock t.m;
        (try job id with _ -> Atomic.incr t.failed_jobs);
        Mutex.lock t.m;
        loop ()
      end
      else if t.shutting_down then Mutex.unlock t.m
      else begin
        Condition.wait t.work_available t.m;
        loop ()
      end
    in
    loop ()
  in
  t.workers <- Array.init n (fun id -> Domain.spawn (fun () -> worker id));
  t

let size t = Array.length t.workers
let failed_jobs t = Atomic.get t.failed_jobs

type health = {
  queue_depth : int;
  failed : int;
  shutting_down : bool;
  domains : int;
}

let health t =
  Mutex.lock t.m;
  let queue_depth = Queue.length t.jobs in
  let shutting_down = t.shutting_down in
  Mutex.unlock t.m;
  {
    queue_depth;
    failed = Atomic.get t.failed_jobs;
    shutting_down;
    domains = Array.length t.workers;
  }

let submit t job =
  Mutex.lock t.m;
  if t.shutting_down then begin
    Mutex.unlock t.m;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.work_available;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.shutting_down then begin
    (* another caller is (or was) already joining: wait it out, so a
       double shutdown still returns only once the pool is drained *)
    while not t.joined do
      Condition.wait t.finished t.m
    done;
    Mutex.unlock t.m
  end
  else begin
    t.shutting_down <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    (* workers exit only once the queue is empty, so every job accepted
       before shutdown completes before join returns *)
    Array.iter Domain.join t.workers;
    Mutex.lock t.m;
    t.joined <- true;
    Condition.broadcast t.finished;
    Mutex.unlock t.m
  end

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let n = List.length xs in
  if n <= 1 || domains = 1 then List.map f xs
  else begin
    let jobs = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (try Done (f jobs.(i))
           with e -> Failed (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned =
      Array.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Done r -> r
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)
  end
