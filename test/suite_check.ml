(* Translation validation: the static region verifier, its mutation
   harness, and the driver/campaign wiring.

   - Clean-verify property: every region any scheme produces from a
     random program must verify [Pass] — the verifier may be
     conservative but must never reject an honestly built region.
   - Mutation kill tests: every mutation class the harness can apply
     must be rejected, with (at least one of) its expected rule ids.
   - Driver wiring: --verify-regions counts verified regions, leaves
     execution results untouched, and degrades rejected regions.
   - Campaign wiring: the JSON verdict stream carries the static
     counters and the cross-check verdict. *)

open Helpers
module V = Check.Verifier
module M = Check.Mutate

let verify o =
  V.verify ~issue_width:4 ~mem_ports:2 ~latency:default_latency o

let pp_violations vs =
  String.concat "; "
    (List.map
       (fun (v : V.violation) -> V.rule_name v.V.rule ^ ": " ^ v.V.detail)
       vs)

(* the seven schemes of the acceptance matrix, as scheduler policies *)
let scheme_policies =
  [
    ("smarq64", fun () -> Sched.Policy.smarq ~ar_count:64);
    ("smarq16", fun () -> Sched.Policy.smarq ~ar_count:16);
    ("smarq64-nosr", fun () -> Sched.Policy.smarq_no_store_reorder ~ar_count:64);
    ("naive64", fun () -> Sched.Policy.naive_order ~ar_count:64);
    ("alat", fun () -> Sched.Policy.alat ());
    ("efficeon", fun () -> Sched.Policy.efficeon ());
    ("none", fun () -> Sched.Policy.none ());
  ]

(* ---- clean-verify: honest artifacts always pass ---- *)

let prop_verifies_clean (seed, params) =
  let sb, _ = Workload.Genprog.superblock ~seed ~params in
  List.for_all
    (fun (name, mk) ->
      let o = optimize ~policy:(mk ()) sb in
      match verify o with
      | V.Pass -> true
      | V.Reject vs ->
        QCheck.Test.fail_reportf "%s rejected an honest region: %s" name
          (pp_violations vs))
    scheme_policies

(* a fixed deterministic sweep on top of the property, so a verifier
   regression fails even with QCheck seeds shuffled *)
let test_clean_fixed_seeds () =
  let params =
    Workload.Genprog.
      {
        n_instrs = 60;
        mem_fraction = 0.6;
        store_fraction = 0.5;
        n_bases = 3;
        collide_fraction = 0.3;
        side_exit_every = Some 12;
      }
  in
  for seed = 1 to 12 do
    let sb, _ = Workload.Genprog.superblock ~seed ~params in
    List.iter
      (fun (name, mk) ->
        let o = optimize ~policy:(mk ()) sb in
        match verify o with
        | V.Pass -> ()
        | V.Reject vs ->
          Alcotest.failf "%s seed %d rejected: %s" name seed (pp_violations vs))
      scheme_policies
  done

(* ---- mutation testing: every class generated, every mutant killed
   with an expected rule ---- *)

let mutation_classes =
  [
    M.Drop_check;
    M.Swap_orders;
    M.Widen_offset;
    M.Delete_amov;
    M.Drop_advanced;
    M.Clear_mask_bit;
    M.Hoist_across_hazard;
    M.Delete_instr;
    M.Over_rotate;
  ]

let test_mutants_killed () =
  let params =
    Workload.Genprog.
      {
        n_instrs = 60;
        mem_fraction = 0.6;
        store_fraction = 0.5;
        n_bases = 3;
        collide_fraction = 0.3;
        side_exit_every = Some 12;
      }
  in
  let seen : (M.mutation, unit) Hashtbl.t = Hashtbl.create 16 in
  for seed = 1 to 25 do
    let sb, _ = Workload.Genprog.superblock ~seed ~params in
    List.iter
      (fun (name, mk) ->
        let o = optimize ~policy:(mk ()) sb in
        let s =
          M.run ~issue_width:4 ~mem_ports:2 ~latency:default_latency o
        in
        if not s.M.baseline_pass then
          Alcotest.failf "%s seed %d: baseline rejected" name seed;
        List.iter
          (fun (oc : M.outcome) ->
            Hashtbl.replace seen oc.M.mutation ();
            if not oc.M.killed then
              Alcotest.failf "%s seed %d: mutant %s SURVIVED (rules hit: %s)"
                name seed
                (M.mutation_name oc.M.mutation)
                (String.concat ", " (List.map V.rule_name oc.M.rules_hit));
            (* killed means an expected rule fired — re-assert the rule
               id mapping explicitly so it can't drift silently *)
            if
              not
                (List.exists
                   (fun r -> List.mem r (M.expected_rules oc.M.mutation))
                   oc.M.rules_hit)
            then
              Alcotest.failf "%s seed %d: mutant %s killed by wrong rule" name
                seed
                (M.mutation_name oc.M.mutation))
          s.M.outcomes)
      scheme_policies
  done;
  List.iter
    (fun m ->
      if not (Hashtbl.mem seen m) then
        Alcotest.failf "mutation class %s was never generated" (M.mutation_name m))
    mutation_classes

(* ---- Fast_alloc structured cycle witness ---- *)

let test_fast_alloc_cycle_witness () =
  (* two memory ops with a check edge each way: unschedulable without
     an AMOV, so the topological pass must fail and name the cycle *)
  reset_ids ();
  let a = ld (f 1) (r 1) 0 in
  let b = st (I.Reg (f 1)) (r 2) 0 in
  let edges =
    [
      { Analysis.Constraints.first = a.I.id; second = b.I.id;
        kind = Analysis.Constraints.Anti };
      { Analysis.Constraints.first = b.I.id; second = a.I.id;
        kind = Analysis.Constraints.Anti };
    ]
  in
  match
    Sched.Fast_alloc.allocate ~issue_order:[ a.I.id; b.I.id ]
      ~p_bit:(fun _ -> true)
      ~c_bit:(fun _ -> true)
      ~edges
  with
  | Ok _ -> Alcotest.fail "cyclic constraint graph allocated"
  | Error { Sched.Fast_alloc.cycle } ->
    Alcotest.(check bool) "witness is non-empty" true (cycle <> []);
    List.iter
      (fun (e : Analysis.Constraints.edge) ->
        Alcotest.(check bool) "witness edges are on the cycle" true
          (List.mem e.Analysis.Constraints.first [ a.I.id; b.I.id ]
          && List.mem e.Analysis.Constraints.second [ a.I.id; b.I.id ]))
      cycle

(* ---- driver wiring: --verify-regions ---- *)

let counting_program ~iters =
  let bld = Workload.Builder.create () in
  let a = r 1 and b = r 2 and idx = r 4 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x1000);
         I.Mov (b, I.Imm 0x2000);
         I.Mov (idx, I.Imm iters);
       ])
    ~next:"loop";
  let body =
    Workload.Builder.instrs bld
      [
        I.Load { dst = f 1; addr = { I.base = a; disp = 0 }; width = 8;
                 annot = Ir.Annot.none };
        I.Store { src = I.Reg (f 1); addr = { I.base = b; disp = 0 };
                  width = 8; annot = Ir.Annot.none };
        I.Load { dst = f 2; addr = { I.base = a; disp = 8 }; width = 8;
                 annot = Ir.Annot.none };
        I.Fbinop (I.Fadd, f 3, I.Reg (f 2), I.Reg (f 1));
        I.Store { src = I.Reg (f 3); addr = { I.base = b; disp = 8 };
                  width = 8; annot = Ir.Annot.none };
      ]
  in
  Workload.Builder.loop_back bld "loop" body ~counter:idx ~back_to:"loop"
    ~exit_to:"end" ~iters;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let test_driver_verify_all () =
  let program = counting_program ~iters:400 in
  let off = Smarq.run_program ~scheme:(Smarq.Scheme.Smarq 64) program in
  let all =
    Smarq.run_program ~verify:V.All ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  let off_st = off.Runtime.Driver.stats and all_st = all.Runtime.Driver.stats in
  Alcotest.(check int) "off mode verifies nothing" 0
    off_st.Runtime.Stats.verified_regions;
  Alcotest.(check bool) "all mode verifies every built region" true
    (all_st.Runtime.Stats.verified_regions
    = all_st.Runtime.Stats.regions_built
    + all_st.Runtime.Stats.reoptimizations);
  Alcotest.(check int) "no honest region is rejected" 0
    all_st.Runtime.Stats.rejected_regions;
  Alcotest.(check (list (pair string int))) "empty histogram" []
    (Runtime.Stats.reject_histogram all_st);
  Alcotest.(check int) "verification does not change simulated time"
    off_st.Runtime.Stats.total_cycles all_st.Runtime.Stats.total_cycles;
  Alcotest.(check bool) "final states agree" true
    (Vliw.Machine.equal_guest_state off.Runtime.Driver.machine
       all.Runtime.Driver.machine)

let test_driver_verify_sample () =
  let program = counting_program ~iters:400 in
  let sample =
    Smarq.run_program ~verify:V.Sample ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  let st = sample.Runtime.Driver.stats in
  Alcotest.(check bool) "sample mode verifies a subset" true
    (st.Runtime.Stats.verified_regions >= 1
    && st.Runtime.Stats.verified_regions
       <= st.Runtime.Stats.regions_built + st.Runtime.Stats.reoptimizations);
  Alcotest.(check int) "no rejects" 0 st.Runtime.Stats.rejected_regions

let test_stats_note_reject () =
  let st = Runtime.Stats.create () in
  Runtime.Stats.note_reject st [ "b_rule"; "a_rule"; "b_rule" ];
  Runtime.Stats.note_reject st [ "b_rule" ];
  Alcotest.(check int) "two regions rejected" 2
    st.Runtime.Stats.rejected_regions;
  Alcotest.(check (list (pair string int)))
    "histogram dedups per region and sorts"
    [ ("a_rule", 1); ("b_rule", 2) ]
    (Runtime.Stats.reject_histogram st)

(* ---- campaign verdict stream ---- *)

let test_campaign_static_verdicts () =
  let cfg =
    {
      Verify.Campaign.default_config with
      Verify.Campaign.seeds = [ 1 ];
      schemes = [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Alat ];
    }
  in
  let runs =
    Verify.Campaign.run_program cfg ~name:"counting" (fun () ->
        counting_program ~iters:300)
  in
  Alcotest.(check int) "one run per scheme" 2 (List.length runs);
  List.iter
    (fun (c : Verify.Campaign.run) ->
      let e = c.Verify.Campaign.entry in
      Alcotest.(check bool) "campaign verifies regions" true
        (e.Verify.Oracle.stats.Runtime.Stats.verified_regions > 0);
      Alcotest.(check bool) "static verdict clean" true
        (Verify.Oracle.entry_static_ok e);
      Alcotest.(check bool) "cross-check agrees" true
        (Verify.Campaign.cross_check_of_entry e = Verify.Campaign.Both_ok);
      let line = Verify.Campaign.json_line cfg c in
      let contains field =
        let n = String.length line and m = String.length field in
        let rec scan i =
          i + m <= n && (String.sub line i m = field || scan (i + 1))
        in
        scan 0
      in
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (Printf.sprintf "json has %s" field)
            true (contains field))
        [
          "\"verified_regions\":";
          "\"rejected_regions\":0";
          "\"static_ok\":true";
          "\"cross_check\":\"both_ok\"";
        ])
    runs

let suite =
  ( "check",
    [
      qcase ~count:60 "every scheme's regions verify clean"
        Suite_props.sb_arb prop_verifies_clean;
      case "fixed-seed clean sweep over 7 schemes" test_clean_fixed_seeds;
      case "every mutation class generated and killed" test_mutants_killed;
      case "fast alloc reports a cycle witness" test_fast_alloc_cycle_witness;
      case "driver --verify-regions=all" test_driver_verify_all;
      case "driver --verify-regions=sample" test_driver_verify_sample;
      case "stats reject histogram" test_stats_note_reject;
      case "campaign static verdict stream" test_campaign_static_verdicts;
    ] )
