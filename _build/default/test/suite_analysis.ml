(* Compile-time analyses: may-alias verdicts, the dependence graph with
   extended dependences, constraint validation, cycle detection. *)

open Helpers
module I = Ir.Instr
module MA = Analysis.May_alias
module DG = Analysis.Depgraph
module C = Analysis.Constraints
module CD = Analysis.Cycle_detect

let check_verdict = Alcotest.of_pp MA.pp_verdict

let test_same_base_disjoint () =
  reset_ids ();
  let a = st (I.Imm 1) (r 1) 0 in
  let b = ld (f 0) (r 1) 4 in
  let alias = MA.analyze ~body:[ a; b ] () in
  Alcotest.check check_verdict "same base, disjoint" MA.No_alias
    (MA.verdict alias a b)

let test_same_base_overlap () =
  reset_ids ();
  let a = st ~width:8 (I.Imm 1) (r 1) 0 in
  let b = ld ~width:4 (f 0) (r 1) 4 in
  let alias = MA.analyze ~body:[ a; b ] () in
  Alcotest.check check_verdict "same base, overlapping" MA.Must_alias
    (MA.verdict alias a b)

let test_different_base () =
  reset_ids ();
  let a = st (I.Imm 1) (r 1) 0 in
  let b = ld (f 0) (r 2) 0 in
  let alias = MA.analyze ~body:[ a; b ] () in
  Alcotest.check check_verdict "different bases are unknown" MA.May_alias
    (MA.verdict alias a b)

let test_base_redefinition () =
  reset_ids ();
  let a = ld (f 0) (r 1) 0 in
  let redef = mk (I.Binop (I.Add, r 1, I.Reg (r 1), I.Imm 8)) in
  let b = ld (f 1) (r 1) 0 in
  let s = st (I.Imm 0) (r 9) 0 in
  ignore s;
  let alias = MA.analyze ~body:[ a; redef; b ] () in
  Alcotest.check check_verdict "redefined base defeats reasoning" MA.May_alias
    (MA.verdict alias a b)

let test_self_defining_load () =
  reset_ids ();
  (* pointer chase: ld r1 = [r1+8]; the def at the first op means the
     two uses of r1 denote different values *)
  let a =
    mk (I.Load { dst = r 1; addr = { I.base = r 1; disp = 8 }; width = 4;
                 annot = Ir.Annot.none })
  in
  let b = ld (f 0) (r 1) 8 in
  let alias = MA.analyze ~body:[ a; b ] () in
  Alcotest.check check_verdict "self-defining load" MA.May_alias
    (MA.verdict alias a b)

let test_known_alias_override () =
  reset_ids ();
  let a = st (I.Imm 1) (r 1) 0 in
  let b = ld (f 0) (r 2) 0 in
  let alias = MA.analyze ~known_alias:[ (b.I.id, a.I.id) ] ~body:[ a; b ] () in
  Alcotest.check check_verdict "known pair forced to must" MA.Must_alias
    (MA.verdict alias a b);
  let alias2 = MA.analyze ~body:[ a; b ] () in
  MA.add_known_alias alias2 a.I.id b.I.id;
  Alcotest.check check_verdict "added at runtime" MA.Must_alias
    (MA.verdict alias2 b a)

let test_dependence_rule () =
  reset_ids ();
  (* DEPENDENCE: ordered pair, may access same memory, >= 1 store *)
  let l1 = ld (f 0) (r 1) 0 in
  let l2 = ld (f 1) (r 2) 0 in
  let s1 = st (I.Imm 0) (r 3) 0 in
  let body = [ l1; l2; s1 ] in
  let alias = MA.analyze ~body () in
  let dg = DG.build ~body ~alias () in
  let pairs = List.map (fun (e : DG.edge) -> (e.DG.first, e.second)) (DG.edges dg) in
  (* load-load pair carries no dependence *)
  Alcotest.(check bool) "no load-load dep" false
    (List.mem (l1.I.id, l2.I.id) pairs);
  Alcotest.(check bool) "load-store dep" true (List.mem (l1.I.id, s1.I.id) pairs);
  Alcotest.(check bool) "load-store dep 2" true
    (List.mem (l2.I.id, s1.I.id) pairs)

let test_dependence_strengths () =
  reset_ids ();
  let s1 = st ~width:8 (I.Imm 0) (r 1) 0 in
  let l_overlap = ld ~width:4 (f 0) (r 1) 4 in
  let l_far = ld (f 1) (r 1) 32 in
  let l_other = ld (f 2) (r 2) 0 in
  let body = [ s1; l_overlap; l_far; l_other ] in
  let alias = MA.analyze ~body () in
  let dg = DG.build ~body ~alias () in
  let strength a b =
    List.find_map
      (fun (e : DG.edge) ->
        if e.DG.first = a && e.second = b then Some e.strength else None)
      (DG.edges dg)
  in
  Alcotest.(check bool) "must-alias is hard" true
    (strength s1.I.id l_overlap.I.id = Some DG.Hard);
  Alcotest.(check bool) "disjoint has no edge" true
    (strength s1.I.id l_far.I.id = None);
  Alcotest.(check bool) "cross-base is speculative" true
    (strength s1.I.id l_other.I.id = Some DG.Speculative)

let test_extended_dep_load_forward () =
  reset_ids ();
  (* X (store) forwards to Z (load, eliminated); intervening store Y
     may-aliasing X yields the backward edge Y ->dep X *)
  let x = st (I.Imm 5) (r 1) 0 in
  let y = st (I.Imm 6) (r 2) 0 in
  let y_load = ld (f 3) (r 2) 8 in
  let body = [ x; y; y_load ] in
  let alias = MA.analyze ~body () in
  let elim =
    ( DG.Load_forwarded { source = x.I.id; eliminated = 999 },
      [ y; y_load ] )
  in
  let dg = DG.build ~body ~alias ~eliminated:[ elim ] () in
  let ext =
    List.filter (fun (e : DG.edge) -> e.DG.kind = DG.Extended) (DG.edges dg)
  in
  Alcotest.(check int) "one extended edge" 1 (List.length ext);
  (match ext with
  | [ e ] ->
    Alcotest.(check int) "first is intervening store" y.I.id e.DG.first;
    Alcotest.(check int) "second is source" x.I.id e.second
  | _ -> Alcotest.fail "unexpected");
  (* intervening LOADS are exempt in EXTENDED-DEPENDENCE 1 *)
  Alcotest.(check bool) "no edge from intervening load" true
    (List.for_all (fun (e : DG.edge) -> e.DG.first <> y_load.I.id) ext)

let test_extended_dep_store_overwrite () =
  reset_ids ();
  (* X (store) eliminated, overwritten by Z; intervening LOAD Y
     may-aliasing Z yields Z ->dep Y; intervening stores are exempt *)
  let x = st (I.Imm 1) (r 1) 0 in
  let y_load = ld (f 0) (r 2) 0 in
  let y_store = st (I.Imm 2) (r 3) 0 in
  let z = st (I.Imm 3) (r 1) 0 in
  let body = [ y_load; y_store; z ] in
  (* x already removed from body *)
  let alias = MA.analyze ~body () in
  let elim =
    ( DG.Store_overwritten { eliminated = x.I.id; overwriter = z.I.id },
      [ y_load; y_store ] )
  in
  let dg = DG.build ~body ~alias ~eliminated:[ elim ] () in
  let ext =
    List.filter (fun (e : DG.edge) -> e.DG.kind = DG.Extended) (DG.edges dg)
  in
  Alcotest.(check int) "one extended edge" 1 (List.length ext);
  match ext with
  | [ e ] ->
    Alcotest.(check int) "first is overwriter" z.I.id e.DG.first;
    Alcotest.(check int) "second is intervening load" y_load.I.id e.second
  | _ -> Alcotest.fail "unexpected"

let test_constraint_validation () =
  let a = C.empty_allocation () in
  Hashtbl.replace a.C.order 1 0;
  Hashtbl.replace a.C.base 1 0;
  Hashtbl.replace a.C.order 2 1;
  Hashtbl.replace a.C.base 2 0;
  let check = { C.first = 1; second = 2; kind = C.Check } in
  let anti = { C.first = 1; second = 2; kind = C.Anti } in
  Alcotest.(check bool) "satisfied" true
    (Result.is_ok (C.validate a ~edges:[ check; anti ] ~ar_count:4));
  (* violate the anti-constraint: equal orders *)
  Hashtbl.replace a.C.order 2 0;
  Alcotest.(check bool) "check <= still ok alone" true
    (Result.is_ok (C.validate a ~edges:[ check ] ~ar_count:4));
  Alcotest.(check bool) "anti < violated" false
    (Result.is_ok (C.validate a ~edges:[ anti ] ~ar_count:4));
  (* window discipline *)
  Hashtbl.replace a.C.order 2 9;
  Alcotest.(check bool) "offset beyond window flagged" false
    (Result.is_ok (C.validate a ~edges:[] ~ar_count:4))

let test_topological_order () =
  let edges =
    [
      { C.first = 1; second = 2; kind = C.Check };
      { C.first = 2; second = 3; kind = C.Anti };
    ]
  in
  (match C.topological_order edges ~ids:[ 1; 2; 3 ] with
  | Some order -> Alcotest.(check (list int)) "topo" [ 1; 2; 3 ] order
  | None -> Alcotest.fail "unexpected cycle");
  let cyc = { C.first = 3; second = 1; kind = C.Check } :: edges in
  Alcotest.(check bool) "cycle detected" true (C.has_cycle cyc);
  Alcotest.(check bool) "no order under cycle" true
    (C.topological_order cyc ~ids:[ 1; 2; 3 ] = None)

let test_cycle_detect_invariance () =
  let cd = CD.create () in
  List.iteri (fun i id -> ignore (CD.init_t cd id i)) [ 1; 2; 3 ];
  (* check-constraint 3 -> 1 lowers T 3 below T 1 *)
  CD.lower_for_check cd ~x:3 ~y:1;
  Alcotest.(check bool) "T lowered" true (CD.get_t cd 3 < CD.get_t cd 1);
  (* anti 1 -> 3 would now conflict: T 1 >= T 3, but 1 is not reachable
     from 3... 3 -> 1 edge exists, so 1 IS reachable from 3: cycle *)
  (match CD.try_add_anti cd ~x:1 ~y:3 with
  | CD.Cycle h -> Alcotest.(check bool) "1 in component" true (List.mem 1 h)
  | _ -> Alcotest.fail "expected cycle");
  (* an anti between unrelated nodes shifts the component *)
  ignore (CD.init_t cd 10 0);
  ignore (CD.init_t cd 11 0);
  match CD.try_add_anti cd ~x:10 ~y:11 with
  | CD.Ok_shifted h ->
    Alcotest.(check bool) "11 shifted" true (List.mem 11 h);
    Alcotest.(check bool) "invariance restored" true
      (CD.get_t cd 10 < CD.get_t cd 11)
  | CD.Ok_already -> Alcotest.fail "T was equal, shift expected"
  | CD.Cycle _ -> Alcotest.fail "no cycle exists"

let test_cycle_detect_remove_edge () =
  let cd = CD.create () in
  ignore (CD.init_t cd 1 0);
  ignore (CD.init_t cd 2 1);
  CD.add_edge cd 1 2;
  CD.add_edge cd 1 2;
  CD.remove_edge cd 1 2;
  (* one occurrence removed, one remains *)
  Alcotest.(check bool) "still reachable" true
    (List.mem 2 (CD.reachable_from cd 1));
  CD.remove_edge cd 1 2;
  Alcotest.(check bool) "now unreachable" false
    (List.mem 2 (CD.reachable_from cd 1))

let suite =
  ( "analysis",
    [
      case "may-alias: same base disjoint" test_same_base_disjoint;
      case "may-alias: same base overlap" test_same_base_overlap;
      case "may-alias: different bases" test_different_base;
      case "may-alias: base redefinition" test_base_redefinition;
      case "may-alias: self-defining load" test_self_defining_load;
      case "may-alias: known-alias override" test_known_alias_override;
      case "dependences: DEPENDENCE rule" test_dependence_rule;
      case "dependences: strengths" test_dependence_strengths;
      case "extended dependence 1 (load forward)"
        test_extended_dep_load_forward;
      case "extended dependence 2 (store overwrite)"
        test_extended_dep_store_overwrite;
      case "constraint validation" test_constraint_validation;
      case "topological order and cycles" test_topological_order;
      case "incremental cycle detection" test_cycle_detect_invariance;
      case "cycle detector edge removal" test_cycle_detect_remove_edge;
    ] )
