type t = {
  torder : (int, int) Hashtbl.t;
  out : (int, int list) Hashtbl.t;
}

let create () = { torder = Hashtbl.create 64; out = Hashtbl.create 64 }

let init_t t id v =
  Hashtbl.replace t.torder id v;
  v

let get_t t id = Hashtbl.find t.torder id
let set_t t id v = Hashtbl.replace t.torder id v

let add_edge t x y =
  let l = Option.value (Hashtbl.find_opt t.out x) ~default:[] in
  Hashtbl.replace t.out x (y :: l)

let remove_edge t x y =
  match Hashtbl.find_opt t.out x with
  | None -> ()
  | Some l ->
    let removed = ref false in
    let l' =
      List.filter
        (fun s ->
          if (not !removed) && s = y then begin
            removed := true;
            false
          end
          else true)
        l
    in
    Hashtbl.replace t.out x l'

let remove_edges_from t x = Hashtbl.remove t.out x

let reachable_from t start =
  let visited = Hashtbl.create 32 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      List.iter go (Option.value (Hashtbl.find_opt t.out id) ~default:[])
    end
  in
  go start;
  Hashtbl.fold (fun id () acc -> id :: acc) visited []

type verdict =
  | Ok_already
  | Ok_shifted of int list
  | Cycle of int list

let try_add_anti t ~x ~y =
  let tx = get_t t x and ty = get_t t y in
  if tx < ty then begin
    add_edge t x y;
    Ok_already
  end
  else begin
    let h = reachable_from t y in
    if List.mem x h then Cycle h
    else begin
      (* Shift the component reachable from y above x so T x < T y. *)
      let delta = tx - (ty - 1) in
      List.iter (fun z -> set_t t z (get_t t z + delta)) h;
      add_edge t x y;
      Ok_shifted h
    end
  end

let lower_for_check t ~x ~y =
  let tx = get_t t x and ty = get_t t y in
  if tx >= ty then set_t t x (ty - 1);
  add_edge t x y
