(* The paper's Figure 2 example, end to end.

   Original program:
     M0: st [r0+4] = 10
     M1: f1 = ld [r1]
     M2: st [r0]   = 20
     M3: f3 = ld [r2]

   The optimizer hoists both loads above the stores, annotating them to
   set alias registers (P bits) and the stores to check (C bits).  We
   then execute the region twice:

   - with r2 pointing far away: the speculation holds, the region
     commits, and the final state matches the reference interpreter;
   - with r2 == r0: the hoisted load at M3 and the store at M2 truly
     alias, the queue raises an alias exception, the machine rolls
     back, and a conservative re-optimization (with the detected pair
     treated as must-alias) commits correctly.

   Note the precision at work: M1 (ld [r1]) is NOT checked against M2
   even if r1 aliases r0, because the pair was never reordered — the
   alias is benign, and order-based detection with anti-constraints
   never raises for it.

     dune exec examples/alias_detection_demo.exe *)

module I = Ir.Instr

let next_id = ref 1

let mk op =
  let id = !next_id in
  incr next_id;
  I.make ~id op

let figure2_superblock () =
  next_id := 1;
  let m0 =
    mk (I.Store { src = I.Imm 10; addr = { I.base = Ir.Reg.R 0; disp = 4 };
                  width = 4; annot = Ir.Annot.none })
  in
  let m1 =
    mk (I.Load { dst = Ir.Reg.F 1; addr = { I.base = Ir.Reg.R 1; disp = 0 };
                 width = 4; annot = Ir.Annot.none })
  in
  let m2 =
    mk (I.Store { src = I.Imm 20; addr = { I.base = Ir.Reg.R 0; disp = 0 };
                  width = 4; annot = Ir.Annot.none })
  in
  let m3 =
    mk (I.Load { dst = Ir.Reg.F 3; addr = { I.base = Ir.Reg.R 2; disp = 0 };
                 width = 4; annot = Ir.Annot.none })
  in
  Ir.Superblock.make ~entry:"fig2" ~body:[ m0; m1; m2; m3 ] ~final_exit:None
    ~source_blocks:[ "fig2" ] ()

let optimize sb =
  let fresh_id = ref 100 in
  Opt.Optimizer.optimize
    ~policy:(Sched.Policy.smarq ~ar_count:64)
    ~issue_width:4 ~mem_ports:2
    ~latency:(Vliw.Config.latency Vliw.Config.default)
    ~fresh_id sb

let execute ~r2 region =
  let machine = Vliw.Machine.create () in
  Vliw.Machine.set_reg machine (Ir.Reg.R 0) 1000;
  Vliw.Machine.set_reg machine (Ir.Reg.R 1) 5000;
  Vliw.Machine.set_reg machine (Ir.Reg.R 2) r2;
  let detector = Hw.Queue.detector (Hw.Queue.create ~size:64) in
  let r =
    Vliw.Region_exec.run ~config:Vliw.Config.default ~detector ~machine region
  in
  (r, machine)

let () =
  let sb = figure2_superblock () in
  let o = optimize sb in
  Format.printf "annotated translation:@.%a@." Ir.Region.pp
    o.Opt.Optimizer.region;

  (* case 1: no runtime alias *)
  let r, _ = execute ~r2:2000 o.Opt.Optimizer.region in
  (match r.Vliw.Region_exec.outcome with
  | Vliw.Region_exec.Committed _ ->
    Printf.printf "r2 = 2000 (disjoint): committed in %d cycles\n"
      r.Vliw.Region_exec.cycles
  | Vliw.Region_exec.Alias_fault v ->
    Format.printf "unexpected: %a@." Hw.Detector.pp_violation v);

  (* case 2: the speculation is wrong -- r2 aliases the store at [r0] *)
  let r, machine = execute ~r2:1000 o.Opt.Optimizer.region in
  (match r.Vliw.Region_exec.outcome with
  | Vliw.Region_exec.Alias_fault v ->
    Format.printf
      "r2 = r0 = 1000 (aliased): %a; rolled back after %d cycles@."
      Hw.Detector.pp_violation v r.Vliw.Region_exec.cycles;
    (* the runtime would now re-optimize with the pair known to alias *)
    let o2 =
      let fresh_id = ref 200 in
      Opt.Optimizer.optimize
        ~policy:(Sched.Policy.smarq ~ar_count:64)
        ~issue_width:4 ~mem_ports:2
        ~latency:(Vliw.Config.latency Vliw.Config.default)
        ~fresh_id
        ~known_alias:[ (v.Hw.Detector.setter, v.Hw.Detector.checker) ]
        sb
    in
    Format.printf "conservative re-optimization:@.%a@." Ir.Region.pp
      o2.Opt.Optimizer.region;
    let detector = Hw.Queue.detector (Hw.Queue.create ~size:64) in
    let r2 =
      Vliw.Region_exec.run ~config:Vliw.Config.default ~detector ~machine
        o2.Opt.Optimizer.region
    in
    (match r2.Vliw.Region_exec.outcome with
    | Vliw.Region_exec.Committed _ ->
      Printf.printf "re-execution committed; f3 = %d (the freshly stored value)\n"
        (Vliw.Machine.get_reg machine (Ir.Reg.F 3))
    | Vliw.Region_exec.Alias_fault _ ->
      print_endline "unexpected second fault")
  | Vliw.Region_exec.Committed _ ->
    print_endline "unexpected commit despite the alias")
