(* Property-based tests (QCheck): the paper's core guarantees checked
   over random superblocks and programs.

   - Soundness + end-to-end equivalence: speculate, detect, roll back,
     re-optimize until commit; the final state must equal the reference
     interpreter's, under every scheme.
   - Precision: when none of the region's speculation assumptions
     actually alias at runtime, the queue detector must stay silent.
   - Allocation validity: every allocation satisfies the
     REGISTER-ALLOCATION-RULE and the window discipline.
   - Scheduler validity: hard dependences and exit fences hold for
     every schedule. *)

open Helpers
module I = Ir.Instr
module C = Analysis.Constraints

let params_gen =
  QCheck.Gen.(
    let* n_instrs = int_range 10 80 in
    let* mem_fraction = float_range 0.2 0.75 in
    let* store_fraction = float_range 0.2 0.65 in
    let* n_bases = int_range 2 6 in
    let* collide_fraction = float_range 0.0 0.4 in
    let* exits = opt (int_range 8 20) in
    return
      Workload.Genprog.
        {
          n_instrs;
          mem_fraction;
          store_fraction;
          n_bases;
          collide_fraction;
          side_exit_every = exits;
        })

let sb_arb =
  QCheck.make
    ~print:(fun (seed, p) ->
      Printf.sprintf "seed=%d n=%d mem=%.2f st=%.2f bases=%d collide=%.2f"
        seed p.Workload.Genprog.n_instrs p.Workload.Genprog.mem_fraction
        p.Workload.Genprog.store_fraction p.Workload.Genprog.n_bases
        p.Workload.Genprog.collide_fraction)
    QCheck.Gen.(pair (int_bound 1_000_000) params_gen)

let make_sb (seed, params) =
  let sb, bases = Workload.Genprog.superblock ~seed ~params in
  let init = Workload.Genprog.setup_machine_regs ~params ~bases in
  (sb, init)

let policies =
  [
    (fun () ->
      ( Sched.Policy.smarq ~ar_count:64,
        Hw.Queue.detector (Hw.Queue.create ~size:64) ));
    (fun () ->
      ( Sched.Policy.smarq ~ar_count:16,
        Hw.Queue.detector (Hw.Queue.create ~size:16) ));
    (fun () ->
      ( Sched.Policy.naive_order ~ar_count:64,
        Hw.Queue.detector (Hw.Queue.create ~size:64) ));
    (fun () ->
      (Sched.Policy.alat (), Hw.Alat.detector (Hw.Alat.create ())));
    (fun () ->
      ( Sched.Policy.efficeon (),
        Hw.Efficeon.detector (Hw.Efficeon.create ()) ));
    (fun () -> (Sched.Policy.none (), Hw.No_detect.detector ()));
  ]

(* End-to-end: every scheme converges to the reference state. *)
let prop_end_to_end (seed, params) =
  let sb, init = make_sb (seed, params) in
  List.for_all
    (fun mk_scheme ->
      let policy, detector = mk_scheme () in
      ignore (run_to_commit ~policy ~detector ~init sb);
      true)
    policies

(* Precision: with no genuine collisions the queue must never fault. *)
let prop_no_false_positives (seed, params) =
  let params = { params with Workload.Genprog.collide_fraction = 0.0 } in
  let sb, init = make_sb (seed, params) in
  let faults =
    run_to_commit
      ~policy:(Sched.Policy.smarq ~ar_count:64)
      ~detector:(Hw.Queue.detector (Hw.Queue.create ~size:64))
      ~init sb
  in
  faults = 0

(* Allocation validity on arbitrary (collision-rich) superblocks. *)
let prop_allocation_valid (seed, params) =
  let sb, _ = make_sb (seed, params) in
  let o = optimize ~policy:(Sched.Policy.smarq ~ar_count:64) sb in
  match o.Opt.Optimizer.alloc_result with
  | None -> true  (* fell back to no speculation *)
  | Some r ->
    (match
       C.validate r.Sched.Smarq_alloc.allocation
         ~edges:
           (r.Sched.Smarq_alloc.check_edges @ r.Sched.Smarq_alloc.anti_edges)
         ~ar_count:64
     with
    | Ok () -> true
    | Error msgs -> QCheck.Test.fail_report (String.concat "; " msgs))

(* The final constraint graph is acyclic (AMOVs broke every cycle). *)
let prop_constraints_acyclic (seed, params) =
  let sb, _ = make_sb (seed, params) in
  let o = optimize ~policy:(Sched.Policy.smarq ~ar_count:64) sb in
  match o.Opt.Optimizer.alloc_result with
  | None -> true
  | Some r ->
    not
      (C.has_cycle
         (r.Sched.Smarq_alloc.check_edges @ r.Sched.Smarq_alloc.anti_edges))

(* Hard scheduling edges hold in the final issue order. *)
let prop_schedule_respects_hazards (seed, params) =
  let sb, _ = make_sb (seed, params) in
  let body = sb.Ir.Superblock.body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let policy = Sched.Policy.smarq ~ar_count:64 in
  let hazards = Sched.Hazards.build ~sb ~deps ~policy () in
  let fresh_id = ref 100_000 in
  let outcome =
    Sched.List_sched.schedule ~sb ~deps ~policy ~issue_width:4 ~mem_ports:2
      ~latency:default_latency ~fresh_id ()
  in
  let pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (i : I.t) -> Hashtbl.replace pos i.I.id idx)
    (Ir.Region.instrs outcome.Sched.List_sched.region);
  List.for_all
    (fun (i : I.t) ->
      List.for_all
        (fun p ->
          match Hashtbl.find_opt pos p, Hashtbl.find_opt pos i.I.id with
          | Some pp, Some pi -> pp < pi
          | _ -> false)
        (Sched.Hazards.preds hazards i.I.id))
    body

(* Working set never exceeds the physical count under the small file. *)
let prop_window_fits_16 (seed, params) =
  let sb, _ = make_sb (seed, params) in
  let o = optimize ~policy:(Sched.Policy.smarq ~ar_count:16) sb in
  o.Opt.Optimizer.region.Ir.Region.ar_window <= 16

(* Whole-program equivalence through the full dynamic system. *)
let prog_arb =
  QCheck.make
    ~print:(fun (seed, loops, iters) ->
      Printf.sprintf "seed=%d loops=%d iters=%d" seed loops iters)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 60 200))

let prop_dynamic_system_equivalent (seed, loops, iters) =
  let program = Workload.Genprog.program ~seed ~n_loops:loops ~iters in
  let ref_machine = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:50_000_000 ref_machine program);
  List.for_all
    (fun scheme ->
      let r = Smarq.run_program ~fuel:50_000_000 ~scheme program in
      Vliw.Machine.equal_guest_state ref_machine r.Runtime.Driver.machine)
    [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Smarq 16; Smarq.Scheme.Alat;
      Smarq.Scheme.None_ ]

(* Binary roundtrip: assembling and disassembling any generated guest
   program preserves behaviour exactly. *)
let prop_binary_roundtrip (seed, loops, iters) =
  let program = Workload.Genprog.program ~seed ~n_loops:loops ~iters in
  let decoded = Binary.Codec.disassemble (Binary.Codec.assemble program) in
  (match Ir.Program.validate decoded with
  | Ok () -> ()
  | Error m -> QCheck.Test.fail_report m);
  let run p =
    let m = Vliw.Machine.create () in
    ignore (Frontend.Interp.run ~fuel:50_000_000 m p);
    m
  in
  Vliw.Machine.equal_guest_state (run program) (run decoded)

(* For reorder-only speculation (the only thing program-order
   allocation supports at all), SMARQ's constraint-order window never
   exceeds the naive greedy-rotation window.  Eliminations are excluded
   from the comparison: their extended dependences deliberately keep
   registers live across long spans the naive scheme never attempts. *)
let prop_naive_window_dominates (seed, params) =
  let sb, _ = make_sb (seed, params) in
  let reorder_only =
    {
      (Sched.Policy.smarq ~ar_count:64) with
      Sched.Policy.allow_load_load_forward = false;
      allow_store_load_forward = false;
      allow_store_elim = false;
    }
  in
  let smarq = optimize ~policy:reorder_only sb in
  let naive = optimize ~policy:(Sched.Policy.naive_order ~ar_count:64) sb in
  match
    ( smarq.Opt.Optimizer.stats.Opt.Optimizer.fell_back,
      naive.Opt.Optimizer.stats.Opt.Optimizer.fell_back )
  with
  | false, false ->
    smarq.Opt.Optimizer.region.Ir.Region.ar_window
    <= naive.Opt.Optimizer.region.Ir.Region.ar_window
  | _ -> true  (* fallbacks have no meaningful window to compare *)

(* Translation cache: under any bounded policy, no sequence of
   operations ever leaves more resident instructions than the capacity,
   and the accounting always equals the sum of resident sizes. *)
let tcache_ops_arb =
  let open QCheck.Gen in
  let key = map (fun i -> Printf.sprintf "r%d" i) (int_bound 7) in
  let op =
    frequency
      [
        (5, map2 (fun k s -> `Insert (k, s)) key (int_range 1 40));
        (3, map (fun k -> `Find k) key);
        (1, map (fun k -> `Invalidate k) key);
        (2, map2 (fun a b -> `Chain (a, b)) key key);
        (2, map2 (fun a b -> `Follow (a, b)) key key);
        (2, map2 (fun k s -> `Replace (k, s)) key (int_range 1 40));
        (1, return `Flush);
      ]
  in
  QCheck.make
    ~print:(fun (cap, pol, ops) ->
      Printf.sprintf "cap=%d policy=%d ops=%d" cap pol (List.length ops))
    (triple (int_range 20 100) (int_bound 2) (list_size (int_range 1 120) op))

let prop_tcache_capacity_never_exceeded (capacity, pol_idx, ops) =
  let module P = Smarq.Tcache.Policy in
  let module S = Smarq.Tcache.Store in
  let policy = [| P.Lru; P.Fifo; P.Flush_all |].(pol_idx) in
  let c : int S.t = S.create ~capacity ~policy () in
  (* shadow model: the last size given for each label; the store's
     accounting must equal the sum over the labels still resident *)
  let sizes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let check_invariants () =
    let sum =
      Hashtbl.fold
        (fun k s acc -> if S.mem c k then acc + s else acc)
        sizes 0
    in
    S.resident_instrs c <= capacity
    && S.resident_instrs c = sum
    && (S.telemetry c).Smarq.Tcache.Telemetry.peak_resident_instrs <= capacity
  in
  List.for_all
    (fun op ->
      (match op with
      | `Insert (k, s) ->
        S.insert c k ~size:s s;
        Hashtbl.replace sizes k s
      | `Find k -> ignore (S.find c k)
      | `Invalidate k -> S.invalidate c k
      | `Chain (a, b) -> S.chain c ~from:a ~exit:b
      | `Follow (a, b) -> ignore (S.follow c ~from:a ~exit:b)
      | `Replace (k, s) ->
        if S.mem c k then Hashtbl.replace sizes k s;
        S.replace c k ~size:s
      | `Flush -> S.flush c);
      check_invariants ())
    ops

let suite =
  ( "properties",
    [
      qcase ~count:60 "end-to-end equivalence, all schemes" sb_arb
        prop_end_to_end;
      qcase ~count:60 "queue precision: no spurious faults" sb_arb
        prop_no_false_positives;
      qcase ~count:80 "allocation satisfies constraints" sb_arb
        prop_allocation_valid;
      qcase ~count:80 "constraint graph acyclic" sb_arb
        prop_constraints_acyclic;
      qcase ~count:60 "schedules respect hazards" sb_arb
        prop_schedule_respects_hazards;
      qcase ~count:60 "window fits 16 registers" sb_arb prop_window_fits_16;
      qcase ~count:12 "dynamic system equals interpreter" prog_arb
        prop_dynamic_system_equivalent;
      qcase ~count:25 "binary roundtrip preserves behaviour" prog_arb
        prop_binary_roundtrip;
      qcase ~count:40 "SMARQ window never exceeds program order" sb_arb
        prop_naive_window_dominates;
      qcase ~count:300 "tcache capacity never exceeded" tcache_ops_arb
        prop_tcache_capacity_never_exceeded;
    ] )
