(* Loop unrolling of self-loop superblocks. *)

open Helpers
module I = Ir.Instr

let self_loop_sb () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let s1 = st (I.Reg (f 1)) (r 2) 0 in
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "out" }) in
  Ir.Superblock.make ~entry:"loop" ~body:[ l1; s1; br ]
    ~final_exit:(Some "loop") ~source_blocks:[ "loop" ]
    ~live_out:[ (br.I.id, Ir.Reg.Set.of_list [ r 5; f 1 ]) ]
    ()

let test_unroll_shape () =
  let sb = self_loop_sb () in
  let fresh_id = ref 100 in
  match Opt.Unroll.unroll ~factor:3 ~fresh_id sb with
  | None -> Alcotest.fail "self-loop should unroll"
  | Some u ->
    Alcotest.(check int) "tripled body" (3 * Ir.Superblock.instr_count sb)
      (Ir.Superblock.instr_count u);
    Alcotest.(check (option string)) "still a self loop" (Some "loop")
      u.Ir.Superblock.final_exit;
    (* ids are unique across copies *)
    let ids =
      List.map (fun (i : I.t) -> i.I.id) u.Ir.Superblock.body
    in
    Alcotest.(check int) "unique ids" (List.length ids)
      (List.length (List.sort_uniq Int.compare ids));
    (* every copy's side exit carries the original live set *)
    List.iter
      (fun (i : I.t) ->
        if I.is_side_exit i then
          Alcotest.(check bool) "live set copied" true
            (Ir.Reg.Set.mem (f 1) (Ir.Superblock.exit_live_out u i.I.id)))
      u.Ir.Superblock.body

let test_unroll_refusals () =
  let sb = self_loop_sb () in
  let fresh_id = ref 100 in
  Alcotest.(check bool) "factor 1 refuses" true
    (Opt.Unroll.unroll ~factor:1 ~fresh_id sb = None);
  let not_loop = { sb with Ir.Superblock.final_exit = Some "elsewhere" } in
  Alcotest.(check bool) "non-loop refuses" true
    (Opt.Unroll.unroll ~factor:2 ~fresh_id not_loop = None)

let test_unroll_semantics () =
  (* executing the unrolled body once equals executing the original
     body [factor] times, when no side exit fires *)
  let sb = self_loop_sb () in
  let fresh_id = ref 100 in
  let u = Option.get (Opt.Unroll.unroll ~factor:4 ~fresh_id sb) in
  let init m =
    Vliw.Machine.set_reg m (r 1) 100;
    Vliw.Machine.set_reg m (r 2) 200;
    Vliw.Machine.store m ~addr:100 ~width:4 77
  in
  let m1 = Vliw.Machine.create () in
  init m1;
  for _ = 1 to 4 do
    ignore (Frontend.Interp.trace_superblock m1 sb)
  done;
  let m2 = Vliw.Machine.create () in
  init m2;
  ignore (Frontend.Interp.trace_superblock m2 u);
  Alcotest.(check bool) "same state" true
    (Vliw.Machine.equal_guest_state m1 m2)

let test_unrolled_system_equivalent () =
  (* the whole dynamic system with unrolling enabled still matches the
     interpreter on the benchmark suite's trickiest members *)
  List.iter
    (fun name ->
      let b = Workload.Specfp.find name in
      let program = Workload.Specfp.program b in
      let ref_m = Vliw.Machine.create () in
      ignore (Frontend.Interp.run ~fuel:50_000_000 ref_m program);
      List.iter
        (fun unroll ->
          let res =
            Smarq.run_program ~fuel:100_000_000 ~unroll
              ~scheme:(Smarq.Scheme.Smarq 64) program
          in
          if
            not
              (Vliw.Machine.equal_guest_state ref_m
                 res.Runtime.Driver.machine)
          then Alcotest.failf "%s diverged at unroll %d" name unroll)
        [ 2; 3 ])
    [ "wupwise"; "art"; "ammp" ]

let test_unrolled_amortizes_loop_overhead () =
  (* larger regions schedule at least as well per iteration *)
  let b = Workload.Specfp.find "wupwise" in
  let program = Workload.Specfp.program ~scale:5 b in
  let region_cycles unroll =
    (Smarq.run_program ~fuel:200_000_000 ~unroll
       ~scheme:(Smarq.Scheme.Smarq 64) program)
      .Runtime.Driver.stats.Runtime.Stats.region_cycles
  in
  let c1 = region_cycles 1 and c2 = region_cycles 2 in
  Alcotest.(check bool)
    (Printf.sprintf "unrolled (%d) <= rolled (%d) region cycles" c2 c1)
    true
    (c2 <= c1 + (c1 / 20))

let suite =
  ( "unroll",
    [
      case "unrolled shape" test_unroll_shape;
      case "refusals" test_unroll_refusals;
      case "semantics preserved" test_unroll_semantics;
      case "dynamic system equivalent when unrolling"
        test_unrolled_system_equivalent;
      case "larger regions schedule no worse"
        test_unrolled_amortizes_loop_overhead;
    ] )
