(** Service-level chaos harness: a seeded, deterministic fault plan
    injecting worker stalls, poisoned requests, and shard flush storms
    above the PR 3 guest-level faults.

    Every decision is a pure function of (seed, request id, attempt):
    {!draw} builds a fresh PRNG stream per key, so fault placement is
    independent of worker scheduling and replays bit-for-bit from the
    seed.  Counters are atomic; with a deterministic request/attempt
    schedule the totals replay exactly too. *)

type config = {
  stall_rate : float;  (** P(worker stalls before an attempt) *)
  stall_s : float;  (** stall duration (wall-clock only; does not
                        perturb any deterministic statistic) *)
  poison_rate : float;  (** P(attempt raises {!Poisoned} pre-run) *)
  flush_rate : float;  (** P(the request's own cache shard is flushed
                           before the attempt) *)
}

val default_config : config
val check_config : config -> config

type plan

val plan : ?config:config -> seed:int -> unit -> plan
val seed : plan -> int

type event = {
  stall_s : float;  (** 0.0 = no stall *)
  poison : bool;
  flush : bool;
}

val inert : event
(** The no-chaos event (used when no plan is configured). *)

exception Poisoned of int
(** Raised by the server in place of running a poisoned attempt; the
    payload is the request id. *)

val poison_exn : rid:int -> exn

val draw : plan -> rid:int -> attempt:int -> event
(** The chaos verdict for one attempt; deterministic in
    (seed, rid, attempt), counted on every call. *)

type counters = { stalls : int; poisons : int; flushes : int }

val counters : plan -> counters
(** Snapshot of draws that fired so far. *)
