lib/workload/specfp.ml: Builder Ir Kernels List Printf String
