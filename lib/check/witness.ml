(* Independent replay of alias-certification witnesses.

   The certifier (Analysis.Disamb / Analysis.Absint) claims, per
   certified pair, two abstract address facts and a separation
   argument.  This module re-derives the facts with its own forward
   evaluator — it never calls the engine — and checks three things:

   - the claimed facts are {e entailed} by the replayed ones (the
     claim may be weaker than what replay derives, never stronger);
   - the claimed facts arithmetically imply disjointness under the
     claimed reason;
   - the certificate is complete and consistent with the artifact: no
     certified pair kept a dependence edge, no may-alias pair is both
     edge-less and witness-less, and the region's certified list
     matches the certificate.

   Entailment (rather than equality) keeps an honest checker from
   rejecting artifacts over precision differences: any claim at least
   as weak as the replayed fact, that still implies disjointness, is a
   valid proof. *)

type violation =
  | Endpoints of string
  | Derivation of string
  | Separation of string
  | Edge_kept of string
  | Dep_missing of string
  | Region_sync of string

(* --- replay evaluator --------------------------------------------- *)

type anchor = A_const | A_entry of Ir.Reg.t | A_opaque of int

(* members: rlo <= n <= rhi, and n = rres (mod rstep) when rstep > 0;
   rstep = 0 marks the singleton {rlo}. *)
type strided = {
  rlo : int;
  rhi : int;
  rstep : int;
  rres : int;
}

type rvalue = {
  anchor : anchor;
  mul : int;
  k : strided;
}

let mag = 1 lsl 50
let sing n = { rlo = n; rhi = n; rstep = 0; rres = 0 }
let wrap a m = ((a mod m) + m) mod m
let res s = if s.rstep = 0 then s.rlo else s.rres

let rec gcd_pos a b = if b = 0 then a else gcd_pos b (a mod b)
let merge_step a b = if a = 0 then b else if b = 0 then a else gcd_pos a b

let s_norm s =
  if s.rlo = s.rhi then sing s.rlo else { s with rres = wrap s.rres s.rstep }

let s_guard s = if abs s.rlo > mag || abs s.rhi > mag then None else Some s

let s_add s1 s2 =
  let rstep = merge_step s1.rstep s2.rstep in
  let rres = if rstep = 0 then 0 else wrap (res s1 + res s2) rstep in
  s_guard (s_norm { rlo = s1.rlo + s2.rlo; rhi = s1.rhi + s2.rhi; rstep; rres })

let s_neg s =
  let rres = if s.rstep = 0 then 0 else wrap (-res s) s.rstep in
  s_norm { rlo = -s.rhi; rhi = -s.rlo; rstep = s.rstep; rres }

let s_scale k s =
  if k = 0 then Some (sing 0)
  else
    let rlo, rhi =
      if k > 0 then (s.rlo * k, s.rhi * k) else (s.rhi * k, s.rlo * k)
    in
    let rstep = s.rstep * abs k in
    let rres = if rstep = 0 then 0 else wrap (res s * k) rstep in
    s_guard (s_norm { rlo; rhi; rstep; rres })

let r_const n = { anchor = A_const; mul = 0; k = sing n }
let r_entry r = { anchor = A_entry r; mul = 1; k = sing 0 }
let r_opaque id = { anchor = A_opaque id; mul = 1; k = sing 0 }

let anchors_equal a b =
  match (a, b) with
  | A_const, A_const -> true
  | A_entry r1, A_entry r2 -> Ir.Reg.equal r1 r2
  | A_opaque i, A_opaque j -> i = j
  | _ -> false

let r_const_of v =
  match v.anchor with
  | A_const when v.k.rstep = 0 -> Some v.k.rlo
  | _ -> None

let refit v = if v.mul = 0 then { v with anchor = A_const } else v

let r_add v1 v2 =
  if v1.anchor = A_const then
    Option.map (fun k -> { v2 with k }) (s_add v2.k v1.k)
  else if v2.anchor = A_const then
    Option.map (fun k -> { v1 with k }) (s_add v1.k v2.k)
  else if anchors_equal v1.anchor v2.anchor then
    Option.map
      (fun k -> refit { v1 with mul = v1.mul + v2.mul; k })
      (s_add v1.k v2.k)
  else None

let r_sub v1 v2 =
  if v2.anchor = A_const then
    Option.map (fun k -> { v1 with k }) (s_add v1.k (s_neg v2.k))
  else if anchors_equal v1.anchor v2.anchor then
    Option.map
      (fun k -> refit { v1 with mul = v1.mul - v2.mul; k })
      (s_add v1.k (s_neg v2.k))
  else None

let r_scale k v =
  if k = 0 then Some (r_const 0)
  else Option.map (fun k' -> { v with mul = v.mul * k; k = k' }) (s_scale k v.k)

let r_mask m =
  if m = 0 then Some (r_const 0)
  else
    let tz =
      let rec go i = if m land (1 lsl i) <> 0 then i else go (i + 1) in
      go 0
    in
    Some
      {
        anchor = A_const;
        mul = 0;
        k = { rlo = 0; rhi = m; rstep = 1 lsl tz; rres = 0 };
      }

(* exact integer semantics, identical to the VLIW evaluator's *)
let exact (op : Ir.Instr.binop) a b =
  match op with
  | Ir.Instr.Add -> a + b
  | Ir.Instr.Sub -> a - b
  | Ir.Instr.Mul -> a * b
  | Ir.Instr.Div -> if b = 0 then 0 else a / b
  | Ir.Instr.And -> a land b
  | Ir.Instr.Or -> a lor b
  | Ir.Instr.Xor -> a lxor b
  | Ir.Instr.Shl -> a lsl (b land 31)
  | Ir.Instr.Shr -> a asr (b land 31)

let r_binop op v1 v2 =
  match (r_const_of v1, r_const_of v2) with
  | Some a, Some b ->
    let n = exact op a b in
    if abs n <= mag then Some (r_const n) else None
  | _ -> (
    match op with
    | Ir.Instr.Add -> r_add v1 v2
    | Ir.Instr.Sub -> r_sub v1 v2
    | Ir.Instr.Mul -> (
      match (r_const_of v1, r_const_of v2) with
      | Some c, _ -> r_scale c v2
      | _, Some c -> r_scale c v1
      | _ -> None)
    | Ir.Instr.Shl -> (
      match r_const_of v2 with
      | Some c when c land 31 < 50 -> r_scale (1 lsl (c land 31)) v1
      | _ -> None)
    | Ir.Instr.And -> (
      match (r_const_of v1, r_const_of v2) with
      | Some m, _ when m >= 0 && m <= mag -> r_mask m
      | _, Some m when m >= 0 && m <= mag -> r_mask m
      | _ -> None)
    | _ -> None)

(* Forward pass: abstract address (and width) per memory instruction. *)
let replay_addresses body =
  let env : (Ir.Reg.t, rvalue) Hashtbl.t = Hashtbl.create 64 in
  let lookup r =
    match Hashtbl.find_opt env r with Some v -> v | None -> r_entry r
  in
  let operand = function
    | Ir.Instr.Reg r -> lookup r
    | Ir.Instr.Imm n -> r_const n
  in
  let addrs = Hashtbl.create 32 in
  let record id (a : Ir.Instr.addr) width =
    match r_add (lookup a.Ir.Instr.base) (r_const a.Ir.Instr.disp) with
    | Some v -> Hashtbl.replace addrs id (v, width)
    | None -> ()
  in
  List.iter
    (fun (i : Ir.Instr.t) ->
      let opaque () = r_opaque i.Ir.Instr.id in
      match i.Ir.Instr.op with
      | Ir.Instr.Mov (d, src) -> Hashtbl.replace env d (operand src)
      | Ir.Instr.Unop_neg (d, src) ->
        Hashtbl.replace env d
          (Option.value (r_scale (-1) (operand src)) ~default:(opaque ()))
      | Ir.Instr.Binop (op, d, a, b) ->
        Hashtbl.replace env d
          (Option.value (r_binop op (operand a) (operand b))
             ~default:(opaque ()))
      | Ir.Instr.Cmp (_, d, _, _) ->
        Hashtbl.replace env d
          { anchor = A_const; mul = 0;
            k = { rlo = 0; rhi = 1; rstep = 1; rres = 0 } }
      | Ir.Instr.Fbinop (_, d, _, _) -> Hashtbl.replace env d (opaque ())
      | Ir.Instr.Load { dst; addr = a; width; _ } ->
        record i.Ir.Instr.id a width;
        Hashtbl.replace env dst (opaque ())
      | Ir.Instr.Store { addr = a; width; _ } -> record i.Ir.Instr.id a width
      | Ir.Instr.Branch _ | Ir.Instr.Jump _ | Ir.Instr.Exit _
      | Ir.Instr.Nop | Ir.Instr.Rotate _ | Ir.Instr.Amov _ ->
        ())
    body;
  addrs

(* --- entailment: replayed value ⊆ claimed fact -------------------- *)

let anchor_matches (o : Analysis.Absint.origin) a =
  match (o, a) with
  | Analysis.Absint.Const, A_const -> true
  | Analysis.Absint.Entry r, A_entry r' -> Ir.Reg.equal r r'
  | Analysis.Absint.Opaque i, A_opaque j -> i = j
  | _ -> false

let claimed_covers_set (c : Analysis.Absint.cset) (s : strided) =
  c.Analysis.Absint.lo <= s.rlo
  && s.rhi <= c.Analysis.Absint.hi
  &&
  if c.Analysis.Absint.stride = 0 then s.rstep = 0 && s.rlo = c.Analysis.Absint.lo
  else
    wrap (res s) c.Analysis.Absint.stride = c.Analysis.Absint.rem
    && (s.rstep = 0 || s.rstep mod c.Analysis.Absint.stride = 0)

let entails (f : Analysis.Disamb.fact) (v : rvalue) =
  anchor_matches f.Analysis.Disamb.origin v.anchor
  && f.Analysis.Disamb.scale = v.mul
  && claimed_covers_set f.Analysis.Disamb.off v.k

(* --- disjointness from the claimed facts alone -------------------- *)

let range_cond (cx : Analysis.Absint.cset) wx (cy : Analysis.Absint.cset) wy =
  cy.Analysis.Absint.lo > cx.Analysis.Absint.hi + (wx - 1)
  || cx.Analysis.Absint.lo > cy.Analysis.Absint.hi + (wy - 1)

let claim_residue (c : Analysis.Absint.cset) =
  if c.Analysis.Absint.stride = 0 then c.Analysis.Absint.lo
  else c.Analysis.Absint.rem

let claimed_disjoint (w : Analysis.Disamb.witness) =
  let fx = w.Analysis.Disamb.x and fy = w.Analysis.Disamb.y in
  if
    not
      (fx.Analysis.Disamb.scale = fy.Analysis.Disamb.scale
      &&
      match (fx.Analysis.Disamb.origin, fy.Analysis.Disamb.origin) with
      | Analysis.Absint.Const, Analysis.Absint.Const -> true
      | Analysis.Absint.Entry r1, Analysis.Absint.Entry r2 -> Ir.Reg.equal r1 r2
      | Analysis.Absint.Opaque i, Analysis.Absint.Opaque j -> i = j
      | _ -> false)
  then false
  else
    let cx = fx.Analysis.Disamb.off and cy = fy.Analysis.Disamb.off in
    let wx = fx.Analysis.Disamb.width and wy = fy.Analysis.Disamb.width in
    match w.Analysis.Disamb.reason with
    | Analysis.Disamb.Ranges -> range_cond cx wx cy wy
    | Analysis.Disamb.Congruence g ->
      g >= 1
      && g = merge_step cx.Analysis.Absint.stride cy.Analysis.Absint.stride
      &&
      let d0 = wrap (claim_residue cy - claim_residue cx) g in
      let hit = ref false in
      for d = -(wy - 1) to wx - 1 do
        if wrap d g = d0 then hit := true
      done;
      not !hit

(* --- the checker --------------------------------------------------- *)

let norm_pair a b = if a <= b then (a, b) else (b, a)

let check ~(cert : Analysis.Disamb.t) ~(body : Ir.Instr.t list)
    ~(region_certified : (int * int) list) ~(deps : Analysis.Depgraph.t) :
    violation list =
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let ws = Analysis.Disamb.witnesses cert in
  let by_id = Hashtbl.create 64 in
  let pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (i : Ir.Instr.t) ->
      Hashtbl.replace by_id i.Ir.Instr.id i;
      Hashtbl.replace pos i.Ir.Instr.id idx)
    body;
  let addrs = replay_addresses body in

  (* endpoints *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (w : Analysis.Disamb.witness) ->
      let fx = w.Analysis.Disamb.x and fy = w.Analysis.Disamb.y in
      let xi = fx.Analysis.Disamb.instr and yi = fy.Analysis.Disamb.instr in
      let p = norm_pair xi yi in
      if Hashtbl.mem seen p then
        flag (Endpoints (Printf.sprintf "duplicate witness for pair (%d,%d)"
                           (fst p) (snd p)));
      Hashtbl.replace seen p ();
      match (Hashtbl.find_opt by_id xi, Hashtbl.find_opt by_id yi) with
      | Some ix, Some iy ->
        if xi = yi then
          flag (Endpoints (Printf.sprintf "witness relates #%d to itself" xi))
        else if not (Ir.Instr.is_memory ix && Ir.Instr.is_memory iy) then
          flag
            (Endpoints
               (Printf.sprintf "witness endpoints #%d/#%d are not both memory"
                  xi yi))
        else if not (Ir.Instr.is_store ix || Ir.Instr.is_store iy) then
          flag
            (Endpoints
               (Printf.sprintf
                  "witness pair (%d,%d) is load-load: nothing to certify" xi yi))
        else begin
          if Hashtbl.find pos xi >= Hashtbl.find pos yi then
            flag
              (Endpoints
                 (Printf.sprintf "witness pair (%d,%d) is not in program order"
                    xi yi));
          let check_width f (i : Ir.Instr.t) =
            match Ir.Instr.mem_width i with
            | Some wd when wd = f.Analysis.Disamb.width -> ()
            | _ ->
              flag
                (Endpoints
                   (Printf.sprintf "witness width %d of #%d mismatches body"
                      f.Analysis.Disamb.width i.Ir.Instr.id))
          in
          check_width fx ix;
          check_width fy iy
        end
      | _ ->
        flag
          (Endpoints
             (Printf.sprintf "witness endpoints #%d/#%d not in region body" xi
                yi)))
    ws;

  (* derivation: replay and entailment, then separation arithmetic *)
  List.iter
    (fun (w : Analysis.Disamb.witness) ->
      let fx = w.Analysis.Disamb.x and fy = w.Analysis.Disamb.y in
      (match
         ( Hashtbl.find_opt addrs fx.Analysis.Disamb.instr,
           Hashtbl.find_opt addrs fy.Analysis.Disamb.instr )
       with
      | Some (vx, _), Some (vy, _) ->
        if not (entails fx vx) then
          flag
            (Derivation
               (Printf.sprintf
                  "claimed fact for #%d is not entailed by replay"
                  fx.Analysis.Disamb.instr));
        if not (entails fy vy) then
          flag
            (Derivation
               (Printf.sprintf
                  "claimed fact for #%d is not entailed by replay"
                  fy.Analysis.Disamb.instr))
      | _ ->
        flag
          (Derivation
             (Printf.sprintf
                "replay derives no address for pair (%d,%d)"
                fx.Analysis.Disamb.instr fy.Analysis.Disamb.instr)));
      if not (claimed_disjoint w) then
        flag
          (Separation
             (Printf.sprintf
                "claimed facts for pair (%d,%d) do not imply disjointness"
                fx.Analysis.Disamb.instr fy.Analysis.Disamb.instr)))
    ws;

  (* no certified pair may keep a dependence edge *)
  Analysis.Depgraph.iter_edges deps
    (fun ~first ~second ~kind:_ ~strength:_ ->
      if Analysis.Disamb.no_alias cert first second then
        flag
          (Edge_kept
             (Printf.sprintf
                "certified pair (%d,%d) still carries a dependence edge"
                (min first second) (max first second))));

  (* completeness: every replay-may pair needs an edge or a witness *)
  let edge_pairs = Hashtbl.create 64 in
  Analysis.Depgraph.iter_edges deps
    (fun ~first ~second ~kind:_ ~strength:_ ->
      Hashtbl.replace edge_pairs (norm_pair first second) ());
  let def_pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          let l = Option.value (Hashtbl.find_opt def_pos r) ~default:[] in
          Hashtbl.replace def_pos r (idx :: l))
        (Ir.Instr.defs i))
    body;
  let defined_between r ~lo ~hi =
    match Hashtbl.find_opt def_pos r with
    | None -> false
    | Some l -> List.exists (fun k -> k >= lo && k < hi) l
  in
  (* Mirrors the precision of the base may-alias analysis (same-base
     displacement rule plus constant-address disambiguation), NOT the
     abstract-interpretation engine: a pair the base analysis can only
     call "may" must carry either a dependence edge or a witness, so a
     certificate that silently loses a witness is caught even though
     the engine could re-prove the pair. *)
  let replay_may (x : Ir.Instr.t) (y : Ir.Instr.t) =
    match (Ir.Instr.mem_addr x, Ir.Instr.mem_addr y) with
    | Some ax, Some ay ->
      let wx = Option.value (Ir.Instr.mem_width x) ~default:1 in
      let wy = Option.value (Ir.Instr.mem_width y) ~default:1 in
      if Ir.Reg.equal ax.Ir.Instr.base ay.Ir.Instr.base then
        defined_between ax.Ir.Instr.base
          ~lo:(Hashtbl.find pos x.Ir.Instr.id)
          ~hi:(Hashtbl.find pos y.Ir.Instr.id)
        || ax.Ir.Instr.disp < ay.Ir.Instr.disp + wy
           && ay.Ir.Instr.disp < ax.Ir.Instr.disp + wx
      else begin
        (* different bases: only provably constant addresses decide *)
        match
          ( Hashtbl.find_opt addrs x.Ir.Instr.id,
            Hashtbl.find_opt addrs y.Ir.Instr.id )
        with
        | Some (v1, _), Some (v2, _) -> (
          match (r_const_of v1, r_const_of v2) with
          | Some a1, Some a2 -> a1 < a2 + wy && a2 < a1 + wx
          | _ -> true)
        | _ -> true
      end
    | _ -> false
  in
  let mems = List.filter Ir.Instr.is_memory body |> Array.of_list in
  let n = Array.length mems in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = mems.(i) and y = mems.(j) in
      if Ir.Instr.is_store x || Ir.Instr.is_store y then begin
        let p = norm_pair x.Ir.Instr.id y.Ir.Instr.id in
        if
          (not (Hashtbl.mem edge_pairs p))
          && (not (Analysis.Disamb.no_alias cert x.Ir.Instr.id y.Ir.Instr.id))
          && replay_may x y
        then
          flag
            (Dep_missing
               (Printf.sprintf
                  "may-alias pair (%d,%d) has neither an edge nor a witness"
                  (fst p) (snd p)))
      end
    done
  done;

  (* region list must be exactly the certificate's pair set *)
  let cert_pairs = Analysis.Disamb.pairs cert in
  let region_pairs =
    List.map (fun (a, b) -> norm_pair a b) region_certified
    |> List.sort_uniq compare
  in
  if cert_pairs <> region_pairs then
    flag
      (Region_sync
         (Printf.sprintf
            "region lists %d certified pairs, certificate has %d (or they differ)"
            (List.length region_pairs) (List.length cert_pairs)));

  List.rev !violations
