lib/ir/annot.ml: Format
