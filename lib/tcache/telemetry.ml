type t = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable rejections : int;
  mutable chains_installed : int;
  mutable chains_broken : int;
  mutable chain_follows : int;
  mutable peak_resident_instrs : int;
}

let create () =
  {
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    flushes = 0;
    invalidations = 0;
    rejections = 0;
    chains_installed = 0;
    chains_broken = 0;
    chain_follows = 0;
    peak_resident_instrs = 0;
  }

let snapshot t =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    flushes = t.flushes;
    invalidations = t.invalidations;
    rejections = t.rejections;
    chains_installed = t.chains_installed;
    chains_broken = t.chains_broken;
    chain_follows = t.chain_follows;
    peak_resident_instrs = t.peak_resident_instrs;
  }

let delta ~since t =
  {
    hits = t.hits - since.hits;
    misses = t.misses - since.misses;
    insertions = t.insertions - since.insertions;
    evictions = t.evictions - since.evictions;
    flushes = t.flushes - since.flushes;
    invalidations = t.invalidations - since.invalidations;
    rejections = t.rejections - since.rejections;
    chains_installed = t.chains_installed - since.chains_installed;
    chains_broken = t.chains_broken - since.chains_broken;
    chain_follows = t.chain_follows - since.chain_follows;
    peak_resident_instrs = t.peak_resident_instrs;
  }

let add ~into t =
  into.hits <- into.hits + t.hits;
  into.misses <- into.misses + t.misses;
  into.insertions <- into.insertions + t.insertions;
  into.evictions <- into.evictions + t.evictions;
  into.flushes <- into.flushes + t.flushes;
  into.invalidations <- into.invalidations + t.invalidations;
  into.rejections <- into.rejections + t.rejections;
  into.chains_installed <- into.chains_installed + t.chains_installed;
  into.chains_broken <- into.chains_broken + t.chains_broken;
  into.chain_follows <- into.chain_follows + t.chain_follows;
  into.peak_resident_instrs <-
    max into.peak_resident_instrs t.peak_resident_instrs

let fields t =
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("insertions", t.insertions);
    ("evictions", t.evictions);
    ("flushes", t.flushes);
    ("invalidations", t.invalidations);
    ("rejections", t.rejections);
    ("chains_installed", t.chains_installed);
    ("chains_broken", t.chains_broken);
    ("chain_follows", t.chain_follows);
    ("peak_resident_instrs", t.peak_resident_instrs);
  ]

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-26s %d@." name v)
    (fields t)
