test/suite_frontend.ml: Alcotest Frontend Helpers Ir List Printf Vliw
