(* Exact quantiles over a growing sample set.

   Samples land in a doubling float array; queries sort a copy on
   demand and cache the sorted view until the next [add].  At service
   scale (thousands of requests per bench point) exactness is cheaper
   than a sketch and keeps every report deterministic. *)

type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : float array option;  (* cache, invalidated by add *)
  mutable sum : float;
}

let create () =
  { samples = Array.make 64 0.0; len = 0; sorted = None; sum = 0.0 }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sorted <- None

let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.samples 0 t.len in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

(* Nearest-rank: the smallest sample with at least [q * n] samples at
   or below it.  p 0.0 is the minimum, p 1.0 the maximum. *)
let percentile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Percentiles.percentile: q not in [0,1]";
  if t.len = 0 then 0.0
  else begin
    let a = sorted t in
    let rank = int_of_float (ceil (q *. float_of_int t.len)) in
    a.(max 0 (min (t.len - 1) (rank - 1)))
  end

let min_value t = if t.len = 0 then 0.0 else (sorted t).(0)
let max_value t = if t.len = 0 then 0.0 else (sorted t).(t.len - 1)

let merge ~into t =
  for i = 0 to t.len - 1 do
    add into t.samples.(i)
  done

type summary = {
  n : int;
  mean_v : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let summary t =
  {
    n = count t;
    mean_v = mean t;
    min_v = min_value t;
    max_v = max_value t;
    p50 = percentile t 0.50;
    p95 = percentile t 0.95;
    p99 = percentile t 0.99;
    p999 = percentile t 0.999;
  }

let summary_json ~unit s =
  Printf.sprintf
    "{\"count\":%d,\"mean_%s\":%.6f,\"min_%s\":%.6f,\"max_%s\":%.6f,\
     \"p50_%s\":%.6f,\"p95_%s\":%.6f,\"p99_%s\":%.6f,\"p999_%s\":%.6f}"
    s.n unit s.mean_v unit s.min_v unit s.max_v unit s.p50 unit s.p95 unit
    s.p99 unit s.p999

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4f p50=%.4f p95=%.4f p99=%.4f p99.9=%.4f max=%.4f" s.n
    s.mean_v s.p50 s.p95 s.p99 s.p999 s.max_v
