lib/sched/mask_alloc.mli: Analysis Hazards Ir
