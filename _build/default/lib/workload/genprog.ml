module I = Ir.Instr

type params = {
  n_instrs : int;
  mem_fraction : float;
  store_fraction : float;
  n_bases : int;
  collide_fraction : float;
  side_exit_every : int option;
}

let default_params =
  {
    n_instrs = 40;
    mem_fraction = 0.45;
    store_fraction = 0.4;
    n_bases = 4;
    collide_fraction = 0.15;
    side_exit_every = None;
  }

let base_reg k = Ir.Reg.R (10 + k)
let base_addr k = 0x10000 * (k + 1)

(* A tiny deterministic PRNG (xorshift) so tests never depend on the
   global Random state. *)
type rng = { mutable s : int }

let rng_create seed = { s = (seed lxor 0x9e3779b9) lor 1 }

let rng_int r bound =
  let x = r.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.s <- x land max_int;
  r.s mod bound

let rng_float r = float_of_int (rng_int r 1_000_000) /. 1_000_000.0

let superblock ~seed ~params =
  let rng = rng_create seed in
  let next_id = ref 1 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let body = ref [] in
  let emit op = body := I.make ~id:(fresh ()) op :: !body in
  (* recently used (base index, disp) pairs, to produce collisions *)
  let recent = ref [] in
  let pick_addr () =
    if !recent <> [] && rng_float rng < params.collide_fraction then
      List.nth !recent (rng_int rng (List.length !recent))
    else begin
      let k = rng_int rng params.n_bases in
      let disp = rng_int rng 16 * 8 in
      let a = (k, disp) in
      recent := a :: (if List.length !recent > 8 then List.filteri (fun i _ -> i < 8) !recent else !recent);
      a
    end
  in
  let data_regs = Array.init 8 (fun i -> Ir.Reg.F i) in
  let any_data () = data_regs.(rng_int rng 8) in
  for step = 0 to params.n_instrs - 1 do
    (match params.side_exit_every with
    | Some n when step > 0 && step mod n = 0 ->
      (* side exit guarded by a temp that is always 0 at runtime so
         traces run the whole block; liveness still constrains code
         motion around it *)
      let t = Ir.Reg.T (fresh ()) in
      emit (I.Cmp (I.Lt, t, I.Reg (base_reg 0), I.Imm 1));
      emit (I.Branch { cond = I.Reg t; target = "exit_side" })
    | Some _ | None -> ());
    if rng_float rng < params.mem_fraction then begin
      let k, disp = pick_addr () in
      if rng_float rng < params.store_fraction then
        emit
          (I.Store
             {
               src = I.Reg (any_data ());
               addr = { I.base = base_reg k; disp };
               width = 8;
               annot = Ir.Annot.none;
             })
      else
        emit
          (I.Load
             {
               dst = any_data ();
               addr = { I.base = base_reg k; disp };
               width = 8;
               annot = Ir.Annot.none;
             })
    end
    else
      match rng_int rng 3 with
      | 0 ->
        emit (I.Fbinop (I.Fadd, any_data (), I.Reg (any_data ()),
                        I.Reg (any_data ())))
      | 1 ->
        emit (I.Fbinop (I.Fmul, any_data (), I.Reg (any_data ()),
                        I.Imm (1 + rng_int rng 7)))
      | _ ->
        emit (I.Binop (I.Add, any_data (), I.Reg (any_data ()),
                       I.Imm (rng_int rng 100)))
  done;
  let sb =
    Ir.Superblock.make ~entry:"sb_entry" ~body:(List.rev !body)
      ~final_exit:None ~source_blocks:[ "sb_entry" ] ()
  in
  (sb, base_addr)

let setup_machine_regs ~params ~bases =
  List.init params.n_bases (fun k -> (base_reg k, bases k))

let program ~seed ~n_loops ~iters =
  let rng = rng_create seed in
  let bld = Builder.create () in
  let regs = Kernels.{ a = Ir.Reg.R 1; b = Ir.Reg.R 2; c = Ir.Reg.R 3;
                       idx = Ir.Reg.R 4 }
  in
  let init =
    Builder.instrs bld
      [
        I.Mov (regs.Kernels.a, I.Imm 0x100000);
        I.Mov (regs.Kernels.b, I.Imm 0x200000);
        I.Mov (regs.Kernels.c, I.Imm 0x300000);
      ]
  in
  let loop_labels = List.init n_loops (fun k -> Printf.sprintf "loop%d" k) in
  let done_label = "prog_done" in
  Builder.straight bld "prog_init"
    (init @ Builder.instrs bld [ I.Mov (regs.Kernels.idx, I.Imm iters) ])
    ~next:(List.hd loop_labels);
  List.iteri
    (fun k lbl ->
      let pick () =
        match rng_int rng 4 with
        | 0 -> Kernels.stream bld regs ~disp0:(rng_int rng 8 * 32) ~width:8
                 ~lanes:(1 + rng_int rng 3) ~depth:(1 + rng_int rng 4) ()
        | 1 -> Kernels.stencil bld regs ~disp0:(rng_int rng 8 * 32) ~width:8
                 ~taps:(2 + rng_int rng 5) ()
        | 2 -> Kernels.reduction bld regs ~disp0:(rng_int rng 8 * 32) ~width:8
                 ~terms:(1 + rng_int rng 3) ~acc:(Ir.Reg.F (16 + k land 7)) ()
        | _ -> Kernels.store_burst bld regs ~disp0:(rng_int rng 8 * 32) ~width:8
                 ~slow_chain:(2 + rng_int rng 6) ~stores:(1 + rng_int rng 4) ()
      in
      let body = pick () @ pick () in
      (* each loop after the first re-arms the counter in a preheader,
         and its predecessor exits into that preheader *)
      let next_label =
        if k = n_loops - 1 then done_label
        else List.nth loop_labels (k + 1) ^ "_pre"
      in
      if k > 0 then
        Builder.straight bld (lbl ^ "_pre")
          (Builder.instrs bld [ I.Mov (regs.Kernels.idx, I.Imm iters) ])
          ~next:lbl;
      Builder.loop_back bld lbl
        (body @ Kernels.bump_bases bld regs ~stride:64)
        ~counter:regs.Kernels.idx ~back_to:lbl ~exit_to:next_label ~iters)
    loop_labels;
  Builder.add_block bld done_label [] Ir.Block.Halt;
  Builder.program bld ~entry:"prog_init"
