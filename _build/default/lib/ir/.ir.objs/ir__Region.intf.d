lib/ir/region.mli: Format Instr Superblock
