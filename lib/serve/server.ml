(* The translation service: accept requests, admit or reject, batch,
   run on the domain pool, record latency.

   One request = one full dynamic-optimization run (interpret, profile,
   translate, cache, execute) of one guest program under one scheme.
   Admission is a single bounded count of accepted-but-unfinished
   requests; everything past the bound is rejected at submit time with
   no queue entry, which is the backpressure signal.  Accepted requests
   buffer into per-tenant batches of [cfg.batch] and each full batch is
   dispatched to the pool as one job, running its requests back to back
   on one worker (amortizing dispatch overhead and giving consecutive
   same-tenant requests shard affinity for free).

   Latency is recorded per request in four slices, all through
   [Runtime.Percentiles]: queue wait (submit -> worker pickup), service
   (the run itself), and the translate/execute split of service, where
   translate comes from the run's [Runtime.Stats.translate] profile. *)

type fault_spec = {
  fault_seed : int;
  fault_rate : float;
}

type config = {
  domains : int;
  queue_limit : int;
  batch : int;
  shard_policy : Tcache.Policy.t;
  tenant_budget : int option;
}

let default_config =
  {
    domains = 2;
    queue_limit = 64;
    batch = 1;
    shard_policy = Tcache.Policy.Lru;
    tenant_budget = None;
  }

type request = {
  tenant : string;
  job : Exec.Matrix.job;
  shared_cache : bool;
  fault : fault_spec option;
}

type reply = {
  request : request;
  result : (Runtime.Driver.result, exn) Stdlib.result;
  queue_wait_s : float;
  service_s : float;
  translate_s : float;
  execute_s : float;
  worker : int;
  injected : int;
}

type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable reply : reply option;
}

type pending = {
  p_request : request;
  p_ticket : ticket;
  p_submitted : float;
  p_rid : int;  (* submission sequence number, also the per-request
                   fault-seed offset *)
}

type t = {
  cfg : config;
  pool : Exec.Pool.t;
  shards : Runtime.Driver.cache Shards.t;
  inflight : int Atomic.t;  (* accepted and not yet finished *)
  m : Mutex.t;  (* guards everything below *)
  buffers : (string, pending Queue.t) Hashtbl.t;  (* per-tenant batches *)
  mutable next_rid : int;
  mutable closed : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable errors : int;
  mutable injected_faults : int;
  lat_queue : Runtime.Percentiles.t;
  lat_service : Runtime.Percentiles.t;
  lat_translate : Runtime.Percentiles.t;
  lat_execute : Runtime.Percentiles.t;
  lat_total : Runtime.Percentiles.t;
}

let create ?(config = default_config) () =
  if config.queue_limit < 1 then
    invalid_arg "Serve.Server.create: queue_limit < 1";
  if config.batch < 1 then invalid_arg "Serve.Server.create: batch < 1";
  {
    cfg = config;
    pool = Exec.Pool.create ~domains:config.domains ();
    shards =
      Shards.create ?tenant_budget:config.tenant_budget
        ~ops:
          {
            Shards.make =
              (fun ~capacity ->
                Runtime.Driver.make_cache ?capacity
                  ~policy:config.shard_policy ());
            invalidate = Runtime.Driver.cache_invalidate;
            flush = Runtime.Driver.cache_flush;
            telemetry = Runtime.Driver.cache_telemetry;
          }
        ();
    inflight = Atomic.make 0;
    m = Mutex.create ();
    buffers = Hashtbl.create 8;
    next_rid = 0;
    closed = false;
    submitted = 0;
    completed = 0;
    rejected = 0;
    errors = 0;
    injected_faults = 0;
    lat_queue = Runtime.Percentiles.create ();
    lat_service = Runtime.Percentiles.create ();
    lat_translate = Runtime.Percentiles.create ();
    lat_execute = Runtime.Percentiles.create ();
    lat_total = Runtime.Percentiles.create ();
  }

(* Translations are specific to (program, scheme, unroll, ...) — all of
   which [job.label] names for matrix-built jobs — so the shard
   partition key must include it, or two programs sharing a guest
   label ("init") would hit each other's translations. *)
let shard_key rq = rq.tenant ^ "|" ^ rq.job.Exec.Matrix.label

(* One request, on worker [worker].  The no-fault fresh-cache path runs
   the exact batch-mode job function, which is what makes the matrix
   client bit-identical to [Exec.Matrix.run_matrix]; the other paths
   build the driver call directly so they can thread the shard and the
   per-request fault plan. *)
let run_one t ~worker (p : pending) =
  let rq = p.p_request in
  let j = rq.job in
  match (rq.fault, rq.shared_cache) with
  | None, false ->
    let o = Exec.Matrix.run_job j in
    (o.Exec.Matrix.result, o.Exec.Matrix.wall_seconds, 0)
  | fault, shared ->
    let config =
      match j.Exec.Matrix.config with
      | Some c -> c
      | None -> Smarq.config_for j.Exec.Matrix.scheme
    in
    let scheme = Smarq.Scheme.to_driver j.Exec.Matrix.scheme in
    let plan =
      Option.map
        (fun f ->
          (* seed + rid: each request replays its own deterministic
             campaign, fixed by the submission sequence *)
          Verify.Fault.plan ~seed:(f.fault_seed + p.p_rid) ~rate:f.fault_rate
            ())
        fault
    in
    let scheme =
      match plan with
      | None -> scheme
      | Some plan ->
        {
          scheme with
          Runtime.Driver.detector =
            Verify.Fault.wrap plan scheme.Runtime.Driver.detector;
        }
    in
    let hooks = Option.map Verify.Fault.hooks plan in
    let program = j.Exec.Matrix.program () in
    let t0 = Unix.gettimeofday () in
    let result =
      if shared then
        let tcache = Shards.shard t.shards ~tenant:(shard_key rq) ~worker in
        Runtime.Driver.run ~config ~fuel:j.Exec.Matrix.fuel
          ~unroll:j.Exec.Matrix.unroll ~tcache ?hooks
          ~verify:j.Exec.Matrix.verify ~scheme program
      else
        Runtime.Driver.run ~config ~fuel:j.Exec.Matrix.fuel
          ~unroll:j.Exec.Matrix.unroll
          ~tcache_policy:j.Exec.Matrix.tcache_policy
          ?tcache_capacity:j.Exec.Matrix.tcache_capacity ?hooks
          ~verify:j.Exec.Matrix.verify ~scheme program
    in
    let wall = Unix.gettimeofday () -. t0 in
    let injected =
      match plan with Some p -> Verify.Fault.total_injected p | None -> 0
    in
    (result, wall, injected)

let exec_one t ~worker (p : pending) =
  let started = Unix.gettimeofday () in
  let queue_wait_s = max 0.0 (started -. p.p_submitted) in
  let outcome =
    try
      let result, wall, injected = run_one t ~worker p in
      Ok (result, wall, injected)
    with e -> Error e
  in
  let reply =
    match outcome with
    | Ok (result, wall, injected) ->
      let translate_s =
        Runtime.Profile.total result.Runtime.Driver.stats.Runtime.Stats.translate
      in
      {
        request = p.p_request;
        result = Ok result;
        queue_wait_s;
        service_s = wall;
        translate_s;
        execute_s = max 0.0 (wall -. translate_s);
        worker;
        injected;
      }
    | Error e ->
      {
        request = p.p_request;
        result = Error e;
        queue_wait_s;
        service_s = Unix.gettimeofday () -. started;
        translate_s = 0.0;
        execute_s = 0.0;
        worker;
        injected = 0;
      }
  in
  Mutex.lock t.m;
  (match reply.result with
  | Ok _ -> t.completed <- t.completed + 1
  | Error _ -> t.errors <- t.errors + 1);
  t.injected_faults <- t.injected_faults + reply.injected;
  Runtime.Percentiles.add t.lat_queue reply.queue_wait_s;
  Runtime.Percentiles.add t.lat_service reply.service_s;
  Runtime.Percentiles.add t.lat_translate reply.translate_s;
  Runtime.Percentiles.add t.lat_execute reply.execute_s;
  Runtime.Percentiles.add t.lat_total (reply.queue_wait_s +. reply.service_s);
  Mutex.unlock t.m;
  Atomic.decr t.inflight;
  Mutex.lock p.p_ticket.tm;
  p.p_ticket.reply <- Some reply;
  Condition.broadcast p.p_ticket.tc;
  Mutex.unlock p.p_ticket.tm

let dispatch t batch =
  Exec.Pool.submit t.pool (fun worker ->
      List.iter (exec_one t ~worker) batch)

(* callers hold t.m *)
let drain_buffer t tenant q =
  if not (Queue.is_empty q) then begin
    let batch = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    Hashtbl.remove t.buffers tenant;
    dispatch t batch
  end

let flush t =
  Mutex.lock t.m;
  let tenants =
    Hashtbl.fold (fun tenant q acc -> (tenant, q) :: acc) t.buffers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (tenant, q) -> drain_buffer t tenant q) tenants;
  Mutex.unlock t.m

let submit t request =
  let n = Atomic.fetch_and_add t.inflight 1 in
  if n >= t.cfg.queue_limit then begin
    (* over the admission bound: reject with no queue entry — the
       backpressure half of admission control *)
    Atomic.decr t.inflight;
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Serve.Server.submit: server is shut down"
    end;
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.m;
    `Rejected
  end
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      Atomic.decr t.inflight;
      Mutex.unlock t.m;
      invalid_arg "Serve.Server.submit: server is shut down"
    end;
    let ticket = { tm = Mutex.create (); tc = Condition.create (); reply = None } in
    let p =
      {
        p_request = request;
        p_ticket = ticket;
        p_submitted = Unix.gettimeofday ();
        p_rid = t.next_rid;
      }
    in
    t.next_rid <- t.next_rid + 1;
    t.submitted <- t.submitted + 1;
    let q =
      match Hashtbl.find_opt t.buffers request.tenant with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.buffers request.tenant q;
        q
    in
    Queue.push p q;
    if Queue.length q >= t.cfg.batch then drain_buffer t request.tenant q;
    Mutex.unlock t.m;
    `Accepted ticket
  end

let await ticket =
  Mutex.lock ticket.tm;
  let rec wait () =
    match ticket.reply with
    | Some r ->
      Mutex.unlock ticket.tm;
      r
    | None ->
      Condition.wait ticket.tc ticket.tm;
      wait ()
  in
  wait ()

(* Batch translation on the service's own pool: the server owns the
   long-running worker domains, so parallel replay rides them directly
   instead of nesting a second pool inside a pool worker. *)
let translate t ?jobs ?pipeline ~config requests =
  Mutex.lock t.m;
  let closed = t.closed in
  Mutex.unlock t.m;
  if closed then invalid_arg "Serve.Server.translate: server is shut down";
  Exec.Translate.replay ~pool:t.pool ?jobs ?pipeline ~config requests

let invalidate t label = Shards.invalidate t.shards label
let shards_telemetry ?tenant t = Shards.telemetry ?tenant t.shards
let shard_count t = Shards.shard_count t.shards
let inflight t = Atomic.get t.inflight

let shutdown t =
  Mutex.lock t.m;
  let already = t.closed in
  t.closed <- true;
  if not already then begin
    (* dispatch the partial batches so shutdown drains them too *)
    let tenants =
      Hashtbl.fold (fun tenant q acc -> (tenant, q) :: acc) t.buffers []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter (fun (tenant, q) -> drain_buffer t tenant q) tenants
  end;
  Mutex.unlock t.m;
  (* idempotent and drains in-flight work; see Exec.Pool *)
  Exec.Pool.shutdown t.pool

(* The matrix as a service client: every job becomes one fresh-cache
   no-fault request (so the worker executes [Exec.Matrix.run_job]
   verbatim), the queue bound admits all of them, and the outcomes are
   awaited in job-list order — the same semantics as
   [Exec.Matrix.run_matrix], bit-identical modulo wall clocks. *)
let run_matrix ?domains jobs =
  let domains =
    match domains with Some d -> d | None -> Exec.Pool.default_domains ()
  in
  let config =
    {
      default_config with
      domains;
      queue_limit = max 1 (List.length jobs);
      batch = 1;
    }
  in
  let t = create ~config () in
  let tickets =
    List.map
      (fun job ->
        match
          submit t { tenant = "matrix"; job; shared_cache = false; fault = None }
        with
        | `Accepted ticket -> ticket
        | `Rejected ->
          (* unreachable: queue_limit covers the whole job list *)
          shutdown t;
          invalid_arg "Serve.Server.run_matrix: rejected"
      )
      jobs
  in
  let replies = List.map await tickets in
  shutdown t;
  List.map
    (fun r ->
      match r.result with
      | Ok result ->
        {
          Exec.Matrix.job = r.request.job;
          result;
          wall_seconds = r.service_s;
        }
      | Error e -> raise e)
    replies

type report = {
  submitted : int;
  completed : int;
  rejected : int;
  errors : int;
  injected_faults : int;
  sim_seconds : float;  (* sum of per-request service time *)
  queue_wait : Runtime.Percentiles.summary;
  service : Runtime.Percentiles.summary;
  translate : Runtime.Percentiles.summary;
  execute : Runtime.Percentiles.summary;
  total : Runtime.Percentiles.summary;
}

let report_json (r : report) =
  Printf.sprintf
    "{\"submitted\":%d,\"completed\":%d,\"rejected\":%d,\"errors\":%d,\
     \"injected_faults\":%d,\"sim_seconds\":%.6f,\"queue_wait\":%s,\
     \"service\":%s,\"translate\":%s,\"execute\":%s,\"total\":%s}"
    r.submitted r.completed r.rejected r.errors r.injected_faults r.sim_seconds
    (Runtime.Percentiles.summary_json ~unit:"s" r.queue_wait)
    (Runtime.Percentiles.summary_json ~unit:"s" r.service)
    (Runtime.Percentiles.summary_json ~unit:"s" r.translate)
    (Runtime.Percentiles.summary_json ~unit:"s" r.execute)
    (Runtime.Percentiles.summary_json ~unit:"s" r.total)

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>requests: %d accepted, %d completed, %d rejected, %d errors%s@,"
    r.submitted r.completed r.rejected r.errors
    (if r.injected_faults > 0 then
       Printf.sprintf " (%d faults injected)" r.injected_faults
     else "");
  Format.fprintf ppf "queue wait: %a@," Runtime.Percentiles.pp_summary
    r.queue_wait;
  Format.fprintf ppf "service:    %a@," Runtime.Percentiles.pp_summary
    r.service;
  Format.fprintf ppf "translate:  %a@," Runtime.Percentiles.pp_summary
    r.translate;
  Format.fprintf ppf "execute:    %a@," Runtime.Percentiles.pp_summary
    r.execute;
  Format.fprintf ppf "total:      %a@]" Runtime.Percentiles.pp_summary r.total

let report t =
  Mutex.lock t.m;
  let r =
    {
      submitted = t.submitted;
      completed = t.completed;
      rejected = t.rejected;
      errors = t.errors;
      injected_faults = t.injected_faults;
      sim_seconds = Runtime.Percentiles.total t.lat_service;
      queue_wait = Runtime.Percentiles.summary t.lat_queue;
      service = Runtime.Percentiles.summary t.lat_service;
      translate = Runtime.Percentiles.summary t.lat_translate;
      execute = Runtime.Percentiles.summary t.lat_execute;
      total = Runtime.Percentiles.summary t.lat_total;
    }
  in
  Mutex.unlock t.m;
  r
