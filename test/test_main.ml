let () =
  Alcotest.run "smarq"
    [
      Suite_ir.suite;
      Suite_hw.suite;
      Suite_machine.suite;
      Suite_interp.suite;
      Suite_frontend.suite;
      Suite_analysis.suite;
      Suite_sched.suite;
      Suite_opt.suite;
      Suite_workload.suite;
      Suite_regionexec.suite;
      Suite_cache.suite;
      Suite_naive.suite;
      Suite_constprop.suite;
      Suite_paper.suite;
      Suite_unroll.suite;
      Suite_hazards.suite;
      Suite_binary.suite;
      Suite_stats.suite;
      Suite_tcache.suite;
      Suite_props.suite;
      Suite_translate.suite;
      Suite_runtime.suite;
      Suite_verify.suite;
      Suite_exec.suite;
    ]
