(* Workload generators: structural validity, determinism, and the
   benchmark characteristics the experiments rely on. *)

open Helpers

let test_suite_valid () =
  List.iter
    (fun (b : Workload.Specfp.bench) ->
      let p = Workload.Specfp.program b in
      match Ir.Program.validate p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" b.Workload.Specfp.name m)
    Workload.Specfp.suite

let test_suite_deterministic () =
  List.iter
    (fun (b : Workload.Specfp.bench) ->
      let run () =
        let m = Vliw.Machine.create () in
        ignore (Frontend.Interp.run ~fuel:50_000_000 m
                  (Workload.Specfp.program b));
        m
      in
      let m1 = run () and m2 = run () in
      if not (Vliw.Machine.equal_guest_state m1 m2) then
        Alcotest.failf "%s not deterministic" b.Workload.Specfp.name)
    Workload.Specfp.suite

let test_suite_terminates () =
  List.iter
    (fun (b : Workload.Specfp.bench) ->
      let m = Vliw.Machine.create () in
      let stats = Frontend.Interp.run ~fuel:50_000_000 m
          (Workload.Specfp.program b)
      in
      Alcotest.(check bool)
        (b.Workload.Specfp.name ^ " does work")
        true
        (stats.Frontend.Interp.instrs_executed > 1000))
    Workload.Specfp.suite

let test_scale_parameter () =
  let b = Workload.Specfp.find "wupwise" in
  let count scale =
    let m = Vliw.Machine.create () in
    let stats =
      Frontend.Interp.run ~fuel:100_000_000 m
        (Workload.Specfp.program ~scale b)
    in
    stats.Frontend.Interp.instrs_executed
  in
  let c1 = count 1 and c3 = count 3 in
  Alcotest.(check bool) "scale multiplies work" true
    (c3 > (2 * c1) && c3 < (4 * c1))

let test_ammp_has_biggest_superblocks () =
  let memops name =
    let r =
      Smarq.run_benchmark ~fuel:100_000_000 ~scheme:(Smarq.Scheme.Smarq 64)
        name
    in
    Runtime.Stats.mem_ops_per_superblock r.Runtime.Driver.stats
  in
  let ammp = memops "ammp" in
  List.iter
    (fun other ->
      Alcotest.(check bool)
        (Printf.sprintf "ammp (%f) > %s" ammp other)
        true
        (ammp > memops other))
    [ "wupwise"; "art"; "sixtrack" ]

let test_alias_probe_produces_rollbacks () =
  (* art's probe makes genuine aliases; SMARQ must see at least one
     rollback and then converge via conservative re-optimization *)
  let r =
    Smarq.run_benchmark ~fuel:100_000_000 ~scheme:(Smarq.Scheme.Smarq 64)
      "art"
  in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "some rollbacks" true (st.Runtime.Stats.rollbacks >= 1);
  Alcotest.(check bool) "bounded rollbacks" true
    (st.Runtime.Stats.rollbacks <= 10)

let test_rmw_punishes_alat_only () =
  (* the rmw kernels create ALAT false positives; SMARQ stays clean on
     benchmarks without genuine collisions *)
  let rollbacks scheme name =
    (Smarq.run_benchmark ~fuel:100_000_000 ~scheme name).Runtime.Driver.stats
      .Runtime.Stats.rollbacks
  in
  Alcotest.(check int) "wupwise smarq clean" 0
    (rollbacks (Smarq.Scheme.Smarq 64) "wupwise");
  Alcotest.(check bool) "wupwise alat hits FPs" true
    (rollbacks Smarq.Scheme.Alat "wupwise" >= 1)

let test_genprog_deterministic () =
  let params = Workload.Genprog.default_params in
  let sb1, _ = Workload.Genprog.superblock ~seed:7 ~params in
  let sb2, _ = Workload.Genprog.superblock ~seed:7 ~params in
  Alcotest.(check int) "same length"
    (Ir.Superblock.instr_count sb1)
    (Ir.Superblock.instr_count sb2);
  List.iter2
    (fun (a : Ir.Instr.t) (b : Ir.Instr.t) ->
      Alcotest.(check string) "same instruction" (Ir.Instr.to_string a)
        (Ir.Instr.to_string b))
    sb1.Ir.Superblock.body sb2.Ir.Superblock.body;
  let sb3, _ = Workload.Genprog.superblock ~seed:8 ~params in
  Alcotest.(check bool) "different seed differs" true
    (List.map Ir.Instr.to_string sb3.Ir.Superblock.body
    <> List.map Ir.Instr.to_string sb1.Ir.Superblock.body)

let test_genprog_program_valid () =
  for seed = 0 to 10 do
    let p = Workload.Genprog.program ~seed ~n_loops:2 ~iters:50 in
    match Ir.Program.validate p with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s" seed m
  done

let test_builder_rejects_branch_in_body () =
  let bld = Workload.Builder.create () in
  let br =
    Workload.Builder.instr bld
      (Ir.Instr.Branch { cond = Ir.Instr.Imm 1; target = "x" })
  in
  match Workload.Builder.add_block bld "a" [ br ] Ir.Block.Halt with
  | exception Assert_failure _ -> ()
  | () -> Alcotest.fail "branch inside block body accepted"

let suite =
  ( "workload",
    [
      case "suite programs validate" test_suite_valid;
      case "suite is deterministic" test_suite_deterministic;
      case "suite terminates with real work" test_suite_terminates;
      case "scale multiplies iterations" test_scale_parameter;
      case "ammp has the biggest superblocks" test_ammp_has_biggest_superblocks;
      case "alias probes cause bounded rollbacks"
        test_alias_probe_produces_rollbacks;
      case "rmw pattern punishes only ALAT" test_rmw_punishes_alat_only;
      case "genprog superblocks deterministic" test_genprog_deterministic;
      case "genprog programs validate" test_genprog_program_valid;
      case "builder rejects branches in bodies"
        test_builder_rejects_branch_in_body;
    ] )
