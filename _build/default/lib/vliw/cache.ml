type level_config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
  hit_latency : int;
}

type config = {
  l1 : level_config;
  l2 : level_config;
  memory_latency : int;
}

let default_config =
  {
    l1 = { size_bytes = 16_384; line_bytes = 64; ways = 4; hit_latency = 0 };
    l2 = { size_bytes = 262_144; line_bytes = 64; ways = 8; hit_latency = 8 };
    memory_latency = 40;
  }

(* One set-associative level: sets.(i) holds tags, most recent first. *)
type level = {
  cfg : level_config;
  sets : int list array;
  n_sets : int;
}

type stats = {
  mutable accesses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}

type t = {
  l1 : level;
  l2 : level;
  memory_latency : int;
  st : stats;
}

let power_of_two n = n > 0 && n land (n - 1) = 0

let make_level cfg =
  if not (power_of_two cfg.line_bytes) then
    invalid_arg "Cache: line size must be a power of two";
  let n_sets = max 1 (cfg.size_bytes / (cfg.line_bytes * cfg.ways)) in
  { cfg; sets = Array.make n_sets []; n_sets }

let create (config : config) =
  {
    l1 = make_level config.l1;
    l2 = make_level config.l2;
    memory_latency = config.memory_latency;
    st = { accesses = 0; l1_misses = 0; l2_misses = 0 };
  }

(* Returns true on hit; inserts the line (LRU) either way. *)
let touch level ~addr =
  let line = addr / level.cfg.line_bytes in
  let idx = line mod level.n_sets in
  let set = level.sets.(idx) in
  let hit = List.mem line set in
  let without = List.filter (fun l -> l <> line) set in
  let updated = line :: without in
  level.sets.(idx) <-
    (if List.length updated > level.cfg.ways then
       List.filteri (fun i _ -> i < level.cfg.ways) updated
     else updated);
  hit

let access t ~addr =
  t.st.accesses <- t.st.accesses + 1;
  if touch t.l1 ~addr then t.l1.cfg.hit_latency
  else begin
    t.st.l1_misses <- t.st.l1_misses + 1;
    if touch t.l2 ~addr then t.l2.cfg.hit_latency
    else begin
      t.st.l2_misses <- t.st.l2_misses + 1;
      t.memory_latency
    end
  end

let stats t = t.st

let reset_stats t =
  t.st.accesses <- 0;
  t.st.l1_misses <- 0;
  t.st.l2_misses <- 0
