(** Superblocks: single-entry, multiple-exit straight-line regions
    formed along hot paths (Section 4 of the paper optimizes within
    superblock regions).

    The body holds instructions in {e original program execution
    order}; conditional [Branch] instructions are side exits that leave
    the region towards a guest label.  [final_exit] is the guest label
    control falls through to when the whole superblock executes (or
    [None] when the region ends the program).

    [live_out] maps each side exit's instruction id to the set of guest
    registers live when that exit is taken; [final_live_out] is the set
    live at the fall-through.  The scheduler uses these to decide which
    instructions may move across an exit while keeping committed state
    exact.  When a liveness analysis is not available, the conservative
    default (every guest register live everywhere) is always sound. *)

type t = {
  entry : Instr.label;  (** guest label of the first block *)
  body : Instr.t list;  (** original order, side exits included *)
  final_exit : Instr.label option;
  source_blocks : Instr.label list;  (** guest blocks merged, in order *)
  live_out : (int, Reg.Set.t) Hashtbl.t;  (** side-exit id -> live regs *)
  final_live_out : Reg.Set.t;
}

val make :
  entry:Instr.label ->
  body:Instr.t list ->
  final_exit:Instr.label option ->
  source_blocks:Instr.label list ->
  ?live_out:(int * Reg.Set.t) list ->
  ?final_live_out:Reg.Set.t ->
  unit ->
  t
(** Omitted liveness information defaults to all guest registers. *)

val exit_live_out : t -> int -> Reg.Set.t
(** Live set at the side exit with the given instruction id
    (conservative default if unknown). *)

val memory_ops : t -> Instr.t list
(** Loads and stores, in original order. *)

val side_exits : t -> Instr.t list

val program_position : t -> (int, int) Hashtbl.t
(** Map from instruction id to its 0-based index in [body] — the
    original program execution order used by dependence analysis. *)

val instr_count : t -> int
val max_instr_id : t -> int
val pp : Format.formatter -> t -> unit
