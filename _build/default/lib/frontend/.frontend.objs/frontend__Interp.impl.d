lib/frontend/interp.ml: Hashtbl Hw Ir List Option Vliw
