(* Guest binary images: encoding, disassembly, and the full
   dynamic-binary-translation path with edge profiling. *)

open Helpers
module I = Ir.Instr

let roundtrip p = Binary.Codec.disassemble (Binary.Codec.assemble p)

let run_interp p =
  let m = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:100_000_000 m p);
  m

let test_image_header () =
  let img = Binary.Image.create ~entry_index:2 ~count:5 in
  let b = Binary.Image.to_bytes img in
  Alcotest.(check int) "size" (16 + (5 * 16)) (Bytes.length b);
  let img2 = Binary.Image.of_bytes b in
  Alcotest.(check int) "entry" 2 (Binary.Image.entry_index img2);
  Alcotest.(check int) "count" 5 (Binary.Image.count img2);
  Bytes.set b 0 'X';
  Alcotest.check_raises "bad magic"
    (Invalid_argument "Image.of_bytes: bad magic") (fun () ->
      ignore (Binary.Image.of_bytes b))

let test_truncated_image () =
  let img = Binary.Image.create ~entry_index:0 ~count:3 in
  let b = Binary.Image.to_bytes img in
  let cut = Bytes.sub b 0 (Bytes.length b - 8) in
  Alcotest.check_raises "truncated"
    (Invalid_argument "Image.of_bytes: truncated records") (fun () ->
      ignore (Binary.Image.of_bytes cut))

let test_suite_roundtrip_state () =
  List.iter
    (fun (b : Workload.Specfp.bench) ->
      let p = Workload.Specfp.program b in
      let p2 = roundtrip p in
      (match Ir.Program.validate p2 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" b.Workload.Specfp.name m);
      if not (Vliw.Machine.equal_guest_state (run_interp p) (run_interp p2))
      then Alcotest.failf "%s roundtrip diverged" b.Workload.Specfp.name)
    Workload.Specfp.suite

let test_instruction_count_preserved () =
  let b = Workload.Specfp.find "wupwise" in
  let p = Workload.Specfp.program b in
  let p2 = roundtrip p in
  (* plain instruction payload is identical; only terminator encodings
     (BR+JMP pairs, trampolines) may add control records *)
  let plain prog =
    List.fold_left
      (fun acc (blk : Ir.Block.t) -> acc + List.length blk.Ir.Block.body)
      0 (Ir.Program.blocks prog)
  in
  Alcotest.(check int) "same plain instruction count" (plain p) (plain p2)

let test_unencodable_rejected () =
  reset_ids ();
  let temp_instr = mk (I.Mov (Ir.Reg.T 5, I.Imm 1)) in
  let blk = Ir.Block.make ~label:"a" ~body:[ temp_instr ] Ir.Block.Halt in
  let p = Ir.Program.make ~entry:"a" [ blk ] in
  (match Binary.Codec.assemble p with
  | exception Binary.Codec.Unencodable _ -> ()
  | _ -> Alcotest.fail "temporaries must not encode");
  reset_ids ();
  let annotated =
    I.with_annot (ld (f 1) (r 1) 0) (Ir.Annot.queue ~offset:0 ~p:true ~c:false)
  in
  let blk2 = Ir.Block.make ~label:"a" ~body:[ annotated ] Ir.Block.Halt in
  let p2 = Ir.Program.make ~entry:"a" [ blk2 ] in
  match Binary.Codec.assemble p2 with
  | exception Binary.Codec.Unencodable _ -> ()
  | _ -> Alcotest.fail "annotated guest code must not encode"

let test_probability_hints_do_not_survive () =
  let b = Workload.Specfp.find "wupwise" in
  let p = Workload.Specfp.program b in
  let p2 = roundtrip p in
  let all_half =
    List.for_all
      (fun (blk : Ir.Block.t) ->
        match blk.Ir.Block.terminator with
        | Ir.Block.Cond { taken_probability; _ } -> taken_probability = 0.5
        | Ir.Block.Fallthrough _ | Ir.Block.Halt -> true)
      (Ir.Program.blocks p2)
  in
  Alcotest.(check bool) "no hints in the binary" true all_half

let test_edge_profiling_recovers_bias () =
  let pr = Frontend.Profiler.create () in
  Alcotest.(check bool) "no verdict before samples" true
    (Frontend.Profiler.edge_bias pr ~from_:"a" ~taken:"t" ~fallthrough:"f"
    = None);
  for _ = 1 to 30 do
    Frontend.Profiler.note_edge pr "a" "t"
  done;
  for _ = 1 to 10 do
    Frontend.Profiler.note_edge pr "a" "f"
  done;
  match Frontend.Profiler.edge_bias pr ~from_:"a" ~taken:"t" ~fallthrough:"f"
  with
  | Some bias -> Alcotest.(check (float 0.01)) "bias" 0.75 bias
  | None -> Alcotest.fail "expected a verdict"

let test_dbt_performance_parity () =
  (* a disassembled binary must reach the same steady state as the
     original CFG: edge profiling substitutes for the lost hints *)
  let b = Workload.Specfp.find "wupwise" in
  let p = Workload.Specfp.program ~scale:2 b in
  let p2 = roundtrip p in
  let cycles prog =
    (Smarq.run_program ~fuel:200_000_000 ~scheme:(Smarq.Scheme.Smarq 64)
       prog).Runtime.Driver.stats.Runtime.Stats.total_cycles
  in
  let c1 = cycles p and c2 = cycles p2 in
  let ratio = float_of_int c2 /. float_of_int c1 in
  Alcotest.(check bool)
    (Printf.sprintf "decoded within 2%% of original (%.3f)" ratio)
    true
    (ratio < 1.02)

let test_dbt_equivalence_all_schemes () =
  let b = Workload.Specfp.find "art" in
  let p2 = roundtrip (Workload.Specfp.program b) in
  let ref_m = run_interp p2 in
  List.iter
    (fun scheme ->
      let r = Smarq.run_program ~fuel:100_000_000 ~scheme p2 in
      if not (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)
      then
        Alcotest.failf "decoded art diverged under %s"
          (Smarq.Scheme.name scheme))
    [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Alat; Smarq.Scheme.None_ ]

let suite =
  ( "binary",
    [
      case "image header roundtrip" test_image_header;
      case "truncated images rejected" test_truncated_image;
      case "suite roundtrips bit-exactly in behaviour"
        test_suite_roundtrip_state;
      case "plain instruction payload preserved"
        test_instruction_count_preserved;
      case "region-only content is unencodable" test_unencodable_rejected;
      case "probability hints do not survive assembly"
        test_probability_hints_do_not_survive;
      case "edge profiling recovers branch bias"
        test_edge_profiling_recovers_bias;
      case "decoded binaries optimize at parity" test_dbt_performance_parity;
      case "decoded binaries stay equivalent, all schemes"
        test_dbt_equivalence_all_schemes;
    ] )
