lib/sched/priority.ml: Hashtbl Hazards Ir List
