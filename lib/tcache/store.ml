type 'a node = {
  key : string;
  value : 'a;
  mutable size : int;
  mutable tick : int;  (* last-use stamp (Lru) *)
  seq : int;  (* insertion stamp (Fifo) *)
  mutable out_links : (string * 'a node) list;  (* exit label -> target *)
  mutable in_links : 'a node list;  (* sources chaining into us *)
}

type 'a t = {
  pol : Policy.t;
  cap : int;  (* max_int = unlimited *)
  tbl : (string, 'a node) Hashtbl.t;
  tel : Telemetry.t;
  mutable clock : int;
  mutable resident : int;
}

let create ?capacity ~policy () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Tcache.Store.create: capacity <= 0"
  | _ -> ());
  {
    pol = policy;
    cap = (match policy, capacity with
          | Policy.Unbounded, _ | _, None -> max_int
          | _, Some c -> c);
    tbl = Hashtbl.create 64;
    tel = Telemetry.create ();
    clock = 0;
    resident = 0;
  }

let policy t = t.pol
let capacity t = if t.cap = max_int then None else Some t.cap
let telemetry t = t.tel
let resident_instrs t = t.resident
let length t = Hashtbl.length t.tbl
let mem t key = Hashtbl.mem t.tbl key
let iter t f = Hashtbl.iter (fun k n -> f k n.value) t.tbl

let tick t node =
  t.clock <- t.clock + 1;
  node.tick <- t.clock

(* Break every link out of, then into, [node].  The in_links list can
   name the same source several times (two exits of one region chained
   into us); de-duplication by physical identity keeps the count of
   broken links honest. *)
let unchain t node =
  List.iter
    (fun (_, target) ->
      target.in_links <- List.filter (fun n -> n != node) target.in_links;
      t.tel.Telemetry.chains_broken <- t.tel.Telemetry.chains_broken + 1)
    node.out_links;
  node.out_links <- [];
  let sources =
    List.fold_left
      (fun acc src -> if List.memq src acc then acc else src :: acc)
      [] node.in_links
  in
  List.iter
    (fun src ->
      let kept = List.filter (fun (_, tgt) -> tgt != node) src.out_links in
      t.tel.Telemetry.chains_broken <-
        t.tel.Telemetry.chains_broken
        + (List.length src.out_links - List.length kept);
      src.out_links <- kept)
    sources;
  node.in_links <- []

let unchain_outgoing t node =
  List.iter
    (fun (_, target) ->
      target.in_links <- List.filter (fun n -> n != node) target.in_links;
      t.tel.Telemetry.chains_broken <- t.tel.Telemetry.chains_broken + 1)
    node.out_links;
  node.out_links <- []

let remove_node t node =
  unchain t node;
  Hashtbl.remove t.tbl node.key;
  t.resident <- t.resident - node.size

(* Lru / Fifo victim: the resident node (other than [keep]) with the
   smallest stamp.  Linear in resident translations, which stay few —
   a production cache would keep an intrusive recency list instead. *)
let victim t ~keep =
  let stamp n =
    match t.pol with Policy.Fifo -> n.seq | _ -> n.tick
  in
  Hashtbl.fold
    (fun _ n best ->
      if (match keep with Some k -> n == k | None -> false) then best
      else
        match best with
        | Some b when stamp b <= stamp n -> best
        | _ -> Some n)
    t.tbl None

let flush_links t =
  Hashtbl.iter
    (fun _ n ->
      t.tel.Telemetry.chains_broken <-
        t.tel.Telemetry.chains_broken + List.length n.out_links;
      n.out_links <- [];
      n.in_links <- [])
    t.tbl

let flush_keeping t ~keep =
  flush_links t;
  Hashtbl.reset t.tbl;
  (match keep with
  | Some n -> Hashtbl.replace t.tbl n.key n
  | None -> ());
  t.resident <- (match keep with Some n -> n.size | None -> 0);
  t.tel.Telemetry.flushes <- t.tel.Telemetry.flushes + 1

let flush t = flush_keeping t ~keep:None

(* Make room for [need] more instructions, never evicting [keep]. *)
let make_room t ~need ~keep =
  match t.pol with
  | Policy.Unbounded -> ()
  | Policy.Lru | Policy.Fifo ->
    let rec go () =
      if t.resident + need > t.cap then
        match victim t ~keep with
        | Some v ->
          remove_node t v;
          t.tel.Telemetry.evictions <- t.tel.Telemetry.evictions + 1;
          go ()
        | None -> ()
    in
    go ()
  | Policy.Flush_all ->
    if t.resident + need > t.cap then flush_keeping t ~keep

let note_peak t =
  if t.resident > t.tel.Telemetry.peak_resident_instrs then
    t.tel.Telemetry.peak_resident_instrs <- t.resident

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    t.tel.Telemetry.hits <- t.tel.Telemetry.hits + 1;
    tick t node;
    Some node.value
  | None ->
    t.tel.Telemetry.misses <- t.tel.Telemetry.misses + 1;
    None

let insert t key ~size value =
  if size < 0 then invalid_arg "Tcache.Store.insert: negative size";
  (match Hashtbl.find_opt t.tbl key with
  | Some old -> remove_node t old  (* silent replace, not an eviction *)
  | None -> ());
  if size > t.cap then
    t.tel.Telemetry.rejections <- t.tel.Telemetry.rejections + 1
  else begin
    make_room t ~need:size ~keep:None;
    t.clock <- t.clock + 1;
    let node =
      {
        key;
        value;
        size;
        tick = t.clock;
        seq = t.clock;
        out_links = [];
        in_links = [];
      }
    in
    Hashtbl.replace t.tbl key node;
    t.resident <- t.resident + size;
    t.tel.Telemetry.insertions <- t.tel.Telemetry.insertions + 1;
    note_peak t
  end

let replace t key ~size =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    unchain_outgoing t node;
    t.resident <- t.resident - node.size + size;
    node.size <- size;
    tick t node;
    if size > t.cap then begin
      (* cannot fit even alone: drop it rather than break the bound *)
      remove_node t node;
      t.tel.Telemetry.rejections <- t.tel.Telemetry.rejections + 1
    end
    else begin
      make_room t ~need:0 ~keep:(Some node);
      note_peak t
    end

let invalidate t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    remove_node t node;
    t.tel.Telemetry.invalidations <- t.tel.Telemetry.invalidations + 1

let chain t ~from ~exit =
  match Hashtbl.find_opt t.tbl from, Hashtbl.find_opt t.tbl exit with
  | Some src, Some target ->
    if not (List.mem_assoc exit src.out_links) then begin
      src.out_links <- (exit, target) :: src.out_links;
      target.in_links <- src :: target.in_links;
      t.tel.Telemetry.chains_installed <-
        t.tel.Telemetry.chains_installed + 1
    end
  | _ -> ()

let follow t ~from ~exit =
  match Hashtbl.find_opt t.tbl from with
  | None -> None
  | Some src ->
    (match List.assoc_opt exit src.out_links with
    | None -> None
    | Some target ->
      t.tel.Telemetry.chain_follows <- t.tel.Telemetry.chain_follows + 1;
      tick t target;
      Some target.value)
