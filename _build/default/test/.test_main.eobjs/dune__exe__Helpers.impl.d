test/helpers.ml: Alcotest Frontend Hw Ir List Opt QCheck QCheck_alcotest Sched String Vliw
