(** A small set-associative cache hierarchy for the VLIW memory system.

    The paper's simulator models a real memory hierarchy; our default
    configuration uses a flat load latency instead (the relative claims
    survive either way), but enabling the hierarchy lets experiments
    check that the scheme ordering is not an artifact of perfect
    memory: a miss adds stall cycles to the issuing region, which
    shrinks the relative benefit of latency-hiding reorderings without
    changing who wins.

    Two levels with LRU replacement; stores allocate (write-allocate,
    write-back is immaterial since timing is all we model). *)

type level_config = {
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  ways : int;
  hit_latency : int;  (** extra cycles beyond the pipeline's load slot *)
}

type config = {
  l1 : level_config;
  l2 : level_config;
  memory_latency : int;
}

val default_config : config
(** 16 KiB 4-way L1 (+0), 256 KiB 8-way L2 (+8), memory +40. *)

type t

type stats = {
  mutable accesses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}

val create : config -> t

val access : t -> addr:int -> int
(** Touch the line holding [addr]; returns the stall penalty in cycles
    (0 on an L1 hit). *)

val stats : t -> stats
val reset_stats : t -> unit
