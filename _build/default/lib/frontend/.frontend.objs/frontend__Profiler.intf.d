lib/frontend/profiler.mli: Ir
