type entry = {
  scheme : string;
  outcome : Runtime.Driver.outcome;
  stats : Runtime.Stats.t;
  injected : int;
  divergence : string list;
}

type report = {
  program : string;
  entries : entry list;
}

let entry_static_ok e = e.stats.Runtime.Stats.rejected_regions = 0
let entry_cert_ok e = e.stats.Runtime.Stats.certified_alias_faults = 0

let entry_ok e =
  e.outcome = Runtime.Driver.Completed
  && e.divergence = [] && entry_static_ok e && entry_cert_ok e

let ok r = List.for_all entry_ok r.entries

let reference ?(fuel = 200_000_000) program =
  let m = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel m program);
  m

let run_scheme ?config ?(fuel = 1_000_000_000) ?tcache_policy
    ?tcache_capacity ?watchdog ?fault ?verify ?certify ~scheme program =
  let config =
    match config with Some c -> c | None -> Smarq.config_for scheme
  in
  let driver_scheme = Smarq.Scheme.to_driver scheme in
  let driver_scheme, hooks, injected_before =
    match fault with
    | None -> (driver_scheme, None, 0)
    | Some plan ->
      ( {
          driver_scheme with
          Runtime.Driver.detector =
            Fault.wrap plan driver_scheme.Runtime.Driver.detector;
        },
        Some (Fault.hooks plan),
        Fault.total_injected plan )
  in
  let r =
    Runtime.Driver.run ~config ~fuel ?tcache_policy ?tcache_capacity
      ?watchdog ?hooks ?verify ?certify ~scheme:driver_scheme program
  in
  let injected =
    match fault with
    | None -> 0
    | Some plan -> Fault.total_injected plan - injected_before
  in
  (r, injected)

let check ?config ?fuel ?interp_fuel ?watchdog ?fault ?verify ?certify
    ?(seed = 1) ?(rate = 0.05) ?(name = "program") ~schemes program =
  let oracle = reference ?fuel:interp_fuel program in
  let entries =
    List.map
      (fun scheme ->
        let plan =
          Option.map (fun mk -> mk ~seed ~rate ()) fault
        in
        let r, injected =
          run_scheme ?config ?fuel ?watchdog ?fault:plan ?verify ?certify
            ~scheme program
        in
        let divergence =
          match r.Runtime.Driver.outcome with
          | Runtime.Driver.Fuel_exhausted | Runtime.Driver.Deadline_exceeded
            ->
            (* partial state cannot be compared against a completed
               oracle; the non-Completed outcome already fails the
               entry *)
            []
          | Runtime.Driver.Completed ->
            if
              Vliw.Machine.equal_guest_state oracle r.Runtime.Driver.machine
            then []
            else Vliw.Machine.diff_guest_state oracle r.Runtime.Driver.machine
        in
        {
          scheme = Smarq.Scheme.name scheme;
          outcome = r.Runtime.Driver.outcome;
          stats = r.Runtime.Driver.stats;
          injected;
          divergence;
        })
      schemes
  in
  { program = name; entries }

let pp_entry ppf e =
  let st = e.stats in
  Format.fprintf ppf
    "%-14s %-9s injected %4d, spurious %4d, degraded %2d%s%s%s"
    e.scheme
    (match e.outcome with
    | Runtime.Driver.Completed -> "completed"
    | Runtime.Driver.Fuel_exhausted -> "OUT-OF-FUEL"
    | Runtime.Driver.Deadline_exceeded -> "DEADLINE")
    e.injected st.Runtime.Stats.spurious_rollbacks
    st.Runtime.Stats.degraded_regions
    (if entry_static_ok e then ""
     else
       Printf.sprintf ", STATIC REJECT: %d/%d regions"
         st.Runtime.Stats.rejected_regions st.Runtime.Stats.verified_regions)
    (if entry_cert_ok e then ""
     else
       Printf.sprintf ", CERT FAULTS: %d on %d certified pairs"
         st.Runtime.Stats.certified_alias_faults
         st.Runtime.Stats.certified_pairs)
    (match e.divergence with
    | [] -> ", state = oracle"
    | d :: _ -> Printf.sprintf ", DIVERGED: %s" d)

let pp_report ppf r =
  Format.fprintf ppf "oracle report for %s (%s):@." r.program
    (if ok r then "ok" else "FAILED");
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_entry e) r.entries
