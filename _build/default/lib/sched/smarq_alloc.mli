(** The SMARQ alias-register allocator, integrated with list scheduling
    (the paper's Figure 13).

    The list scheduler notifies the allocator each time it schedules a
    memory operation, in issue order.  The allocator incrementally
    builds check- and anti-constraints from the dependence graph, keeps
    the constraint graph acyclic through incremental cycle detection
    (breaking would-be cycles with AMOV instructions), and allocates
    alias-register {e orders} lazily: an operation's register order is
    fixed only when its last constraint source has been allocated,
    which lets the BASE pointer rotate past the register immediately
    afterwards and keeps the offset window — the alias-register working
    set — minimal.

    After the last memory operation has been scheduled, {!finish}
    returns everything the scheduler needs to materialize the region:
    per-instruction annotations, rotation amounts to insert after given
    instructions, AMOV instructions to insert before given
    instructions, and statistics. *)

type amov_insertion = {
  amov_id : int;  (** fresh instruction id for the AMOV *)
  before : int;  (** insert immediately before this instruction id *)
  src_instr : int;  (** original op whose range moves *)
  dst_is_fresh : bool;  (** false = pure clear (src = dst) *)
  src_offset : int;
  dst_offset : int;
}

type result = {
  annots : (int * Ir.Annot.t) list;  (** memory-op id -> annotation *)
  rotations : (int * int) list;  (** after instr id, rotate by n *)
  amovs : amov_insertion list;
  max_offset : int;  (** -1 when no register was used *)
  check_edges : Analysis.Constraints.edge list;
  anti_edges : Analysis.Constraints.edge list;
  allocation : Analysis.Constraints.allocation;
      (** final orders/bases/bits, for validation and statistics *)
}

exception Overflow of string
(** Raised when an offset would reach the physical register count even
    after rotation; the caller falls back to a non-speculative
    schedule. *)

type t

val create :
  body:Ir.Instr.t list ->
  deps:Analysis.Depgraph.t ->
  ar_count:int ->
  fresh_id:int ref ->
  t
(** [body] in original program order (positions initialize the cycle
    detector's partial order [T]); [fresh_id] supplies AMOV ids. *)

val on_schedule : t -> Ir.Instr.t -> unit
(** Must be called for every memory operation, in issue order.
    May raise {!Overflow}. *)

val overflow_risk : t -> lookahead_p:int -> bool
(** Conservative estimate (paper lines 21-31): would scheduling
    speculation that adds [lookahead_p] more protected registers risk
    exceeding the physical count?  The scheduler switches to
    non-speculation mode while this is true. *)

val unscheduled_ext_p : t -> int
(** Number of not-yet-scheduled operations that extended dependences
    will force to take a register even without reordering. *)

val finish : t -> result
(** Call once after all memory operations are scheduled. *)
