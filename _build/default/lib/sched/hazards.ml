type t = {
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  dropped : (int * int) list;
}

let add_edge ~preds ~succs ~seen a b =
  if a <> b && not (Hashtbl.mem seen (a, b)) then begin
    Hashtbl.replace seen (a, b) ();
    let p = Option.value (Hashtbl.find_opt preds b) ~default:[] in
    Hashtbl.replace preds b (a :: p);
    let s = Option.value (Hashtbl.find_opt succs a) ~default:[] in
    Hashtbl.replace succs a (b :: s)
  end

(* RAW, WAR, WAW edges over the straight-line body. *)
let register_edges ~body ~add =
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let uses_since_def : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          (* RAW: reader depends on the last writer *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d i.id
          | None -> ());
          let l = Option.value (Hashtbl.find_opt uses_since_def r) ~default:[] in
          Hashtbl.replace uses_since_def r (i.id :: l))
        (Ir.Instr.uses i);
      List.iter
        (fun r ->
          (* WAW on the previous writer, WAR on readers since then *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d i.id
          | None -> ());
          List.iter
            (fun u -> add u i.id)
            (Option.value (Hashtbl.find_opt uses_since_def r) ~default:[]);
          Hashtbl.replace last_def r i.id;
          Hashtbl.replace uses_since_def r [])
        (Ir.Instr.defs i))
    body

(* Memory edges: hard dependences always; speculative ones unless the
   policy may drop them. *)
let memory_edges ~body ~deps ~policy ~add =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (i : Ir.Instr.t) -> Hashtbl.replace by_id i.id i) body;
  let dropped = ref [] in
  List.iter
    (fun (first, second, strength) ->
      match strength with
      | Analysis.Depgraph.Hard -> add first second
      | Analysis.Depgraph.Speculative ->
        (match Hashtbl.find_opt by_id first, Hashtbl.find_opt by_id second with
        | Some fi, Some si ->
          if Policy.may_drop_edge policy ~first:fi ~second:si then
            dropped := (first, second) :: !dropped
          else add first second
        | _ -> add first second))
    (Analysis.Depgraph.mem_dep_pairs deps);
  !dropped

(* Control edges around side exits:
   - branch-branch program order;
   - a store or a definition of a register live at an exit stays on
     its original side of that exit (edges in both directions). *)
let control_edges ~sb ~add =
  let body = sb.Ir.Superblock.body in
  let last_branch = ref None in
  List.iter
    (fun (i : Ir.Instr.t) ->
      if Ir.Instr.is_side_exit i then begin
        (match !last_branch with
        | Some b -> add b i.id
        | None -> ());
        last_branch := Some i.id
      end)
    body;
  let crosses_exit_blocked (i : Ir.Instr.t) live =
    Ir.Instr.is_store i
    || List.exists (fun r -> Ir.Reg.Set.mem r live) (Ir.Instr.defs i)
  in
  let arr = Array.of_list body in
  let n = Array.length arr in
  let exits = ref [] in
  for idx = 0 to n - 1 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.id in
      (* earlier instructions that must stay before this exit *)
      for k = 0 to idx - 1 do
        let j = arr.(k) in
        if (not (Ir.Instr.is_side_exit j)) && crosses_exit_blocked j live then
          add j.id i.id
      done;
      exits := (i.id, live) :: !exits
    end
    else
      (* later instruction blocked from hoisting above earlier exits *)
      List.iter
        (fun (bid, live) ->
          if crosses_exit_blocked i live then add bid i.id)
        !exits
  done

let build ~sb ~deps ~policy =
  let preds = Hashtbl.create 256 and succs = Hashtbl.create 256 in
  let seen = Hashtbl.create 1024 in
  let add a b = add_edge ~preds ~succs ~seen a b in
  let body = sb.Ir.Superblock.body in
  register_edges ~body ~add;
  let dropped = memory_edges ~body ~deps ~policy ~add in
  control_edges ~sb ~add;
  { preds; succs; dropped }

let preds t id = Option.value (Hashtbl.find_opt t.preds id) ~default:[]
let succs t id = Option.value (Hashtbl.find_opt t.succs id) ~default:[]
