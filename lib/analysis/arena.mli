(** Reusable scratch buffers for the translation hot path.

    One arena serves one sequence of region translations — a driver
    run, or one worker domain of a parallel replay.  Each lease resets
    the logical contents but keeps the backing storage, so buffers grow
    to the high-water mark of the regions seen and are then reused:
    once warm, the depgraph and hazard builders allocate nothing on the
    OCaml heap.

    Arenas are single-owner: nothing leased may escape the build that
    leased it, and an arena must never be shared between domains.
    Slot numbers namespace concurrent leases within one build; the
    depgraph builder uses slots 0–15, the hazard builder 16–31. *)

type t

val create : unit -> t

val ints : t -> slot:int -> int -> int array
(** [ints t ~slot n] is a scratch array of capacity >= [n].  Contents
    are stale — initialize everything you read. *)

val filled_ints : t -> slot:int -> int -> int -> int array
(** [filled_ints t ~slot n x] is [ints] with the first [n] cells set
    to [x]. *)

(** {2 Growable int vector} *)

type vec = {
  mutable buf : int array;
  mutable len : int;
}

val vec : t -> slot:int -> vec
(** Lease the vector at [slot], cleared to length 0. *)

val vec_push : vec -> int -> unit

(** {2 Open-addressed int->int map}

    Epoch-stamped slots make [map] (the lease) O(1); lookups and
    insertions never allocate once warm.  Keys must be >= 0. *)

type intmap

val map : t -> slot:int -> intmap
(** Lease the map at [slot], logically empty. *)

val map_set : intmap -> int -> int -> unit
val map_get : intmap -> int -> default:int -> int

(** {2 Bitset scratch} *)

val seen : t -> int -> Bitset.t
(** A cleared bitset over [0, n), reusing the arena's buffer. *)

val reach : t -> rows:int -> cols:int -> Bitset.Matrix.m
(** A cleared reachability matrix, reusing the arena's buffer. *)

(** {2 In-place sorting}

    Deterministic quicksort (insertion-sort tail) over an array range
    [lo, hi) — the stdlib lacks a range sort, and copying slices out
    defeats the arena. *)

val sort_ints : int array -> lo:int -> hi:int -> unit
val sort_by : int array -> lo:int -> hi:int -> cmp:(int -> int -> int) -> unit

val reg_code : Ir.Reg.t -> int
(** Compact non-negative encoding of a register for direct array
    indexing: [3 * index + rank]. *)
