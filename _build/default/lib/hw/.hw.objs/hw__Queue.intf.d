lib/hw/queue.mli: Access Detector Ir
