(** Translation validation: an independent static verifier for
    translated regions.

    Given a completed optimizer artifact (region, dependence graph,
    hazard graph, issue order, allocation), [verify] re-derives the
    paper's statically checkable invariants from first principles —
    without executing the region and without trusting the scheduler or
    allocator internals — and reports every violation it finds:

    - {b IR well-formedness}: the region holds exactly the superblock
      body (plus AMOV/ROTATE splices), definitions reach their uses
      respecting latencies, side exits stay ordered and are never
      crossed by blocked instructions (independent re-derivation of
      the register and control hazards);
    - {b schedule legality}: every recorded hazard edge and the
      issue-width / memory-port / one-branch-per-cycle resource limits
      are respected;
    - {b speculation-coverage soundness}: every dependence edge whose
      endpoints execute in reversed order is protected by a runtime
      check under the active scheme — the SMARQ order window
      ([order(checker) <= order(holder)] with AMOV holder tracking and
      BASE replay against ROTATE instructions), ALAT advanced-load
      marking with capacity-window eviction analysis, or Efficeon mask
      set/check bit matching with clobber analysis — and dropped
      may-alias edges were legal to drop under the policy.

    The verifier collects all violations rather than stopping at the
    first, so mutation testing and reject histograms see the full
    picture. *)

type rule =
  | Def_before_use  (** register RAW/WAR/WAW violated in the schedule *)
  | Branch_order  (** side exits not in original order *)
  | Exit_crossed  (** blocked instruction crossed a side exit *)
  | Sched_hazard  (** recorded hazard edge violated *)
  | Sched_width  (** issue-width / mem-port / branch limit exceeded *)
  | Sched_complete  (** region body diverges from the superblock *)
  | Dropped_illegal  (** dropped pair not a droppable speculative dep *)
  | Hard_reordered  (** must-alias dependence executed in reverse *)
  | Nospec_reordered  (** reordering under the no-speculation scheme *)
  | Annot_scheme  (** annotation kind inconsistent with the scheme *)
  | Annot_alloc_sync  (** annotations diverge from the allocation *)
  | Alloc_constraint  (** check/anti constraint violated by orders *)
  | Alloc_window  (** offset outside the [0, ar_count) window *)
  | Alloc_cycle  (** constraint graph cyclic without an AMOV *)
  | Queue_uncovered  (** reordered pair not covered by a queue check *)
  | Queue_base_sync  (** replayed BASE diverges from the allocation *)
  | Queue_rotate  (** non-positive rotation *)
  | Amov_bounds  (** AMOV offsets outside the window *)
  | Alat_unmarked  (** protected load not marked advanced *)
  | Alat_capacity  (** protection window outlives the ALAT capacity *)
  | Mask_uncovered  (** reordered pair not covered by set/check bits *)
  | Mask_clobbered  (** protected register reused inside the window *)
  | Mask_bounds  (** mask register index or bit-mask out of range *)
  | Cert_endpoints  (** witness endpoints malformed (ids, order, widths) *)
  | Cert_derivation  (** claimed fact not entailed by independent replay *)
  | Cert_separation  (** claimed facts do not imply disjointness *)
  | Cert_edge_kept  (** certified pair still carries a dependence edge *)
  | Cert_dep_missing  (** may-alias pair with neither edge nor witness *)
  | Cert_region_sync  (** region certified list diverges from certificate *)

val rule_name : rule -> string
(** Stable snake_case identifier, used in reject histograms and
    reports. *)

type violation = {
  rule : rule;
  detail : string;
}

type verdict =
  | Pass
  | Reject of violation list  (** non-empty *)

type mode =
  | Off  (** never verify *)
  | Sample  (** verify a deterministic subset of built regions *)
  | All  (** verify every built region *)

val mode_of_string : string -> (mode, string) result
(** Parses ["off"], ["sample"], ["all"]. *)

val mode_name : mode -> string

val verify :
  issue_width:int ->
  mem_ports:int ->
  latency:(Ir.Instr.t -> int) ->
  Opt.Optimizer.t ->
  verdict
(** [issue_width], [mem_ports] and [latency] must match the
    configuration the region was scheduled under; the scheme and
    register count come from the artifact's [policy_used]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_verdict : Format.formatter -> verdict -> unit
