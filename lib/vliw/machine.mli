(** Architectural state: register file and byte-addressed sparse memory,
    with checkpoint/rollback support for atomic-region execution.

    Registers live in dense arrays indexed by register number; memory is
    a page table of fixed-size [Bytes] pages, so the simulator's
    innermost loads and stores touch flat storage instead of hashing.
    Values are plain OCaml integers; loads and stores move [width]
    little-endian bytes so overlapping accesses of different widths
    interact exactly as alias detection expects.  Checkpoints journal
    the previous value of each touched word and register, so checkpoint
    is O(1) and rollback cost is proportional to the region's write
    footprint, never to total state size. *)

type t

val create : unit -> t

val copy : t -> t
(** Deep copy (registers and memory) — used to run a reference
    interpreter beside the optimized execution in equivalence tests. *)

val get_reg : t -> Ir.Reg.t -> int
(** Unwritten registers read 0. *)

val set_reg : t -> Ir.Reg.t -> int -> unit

val load : t -> addr:int -> width:int -> int
(** Little-endian; unwritten bytes read 0.  Raises [Invalid_argument]
    for non-positive width or widths above 8. *)

val store : t -> addr:int -> width:int -> int -> unit

val checkpoint : t -> unit
(** Begin journaling.  Raises [Invalid_argument] if a checkpoint is
    already active (regions do not nest). *)

val commit : t -> unit
(** Discard the active checkpoint, keeping all effects. *)

val rollback : t -> unit
(** Restore state to the active checkpoint. *)

val in_region : t -> bool

val equal_guest_state : t -> t -> bool
(** Registers (guest-visible only) and memory agree.  Optimizer
    temporaries are excluded — they are dead outside regions.  Compares
    dense state directly, order-insensitively: no sorting, no
    intermediate lists. *)

val diff_guest_state : t -> t -> string list
(** Human-readable discrepancies, for test failure messages. *)

val dump_regs : t -> (Ir.Reg.t * int) list
(** Non-zero guest registers in [Ir.Reg.compare] order.  Cold path:
    walks the register file; for equality use {!equal_guest_state}. *)

val dump_mem : t -> (int * int) list
(** Non-zero bytes, sorted by address.  Cold path: walks every resident
    page; for equality use {!equal_guest_state}. *)
