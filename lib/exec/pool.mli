(** Domain-based worker pool: parallel [map] with deterministic output
    order.

    Results come back in submission order regardless of which domain
    executed which job, so a parallel run is observationally identical
    to the sequential one as long as [f] touches no shared mutable
    state.  The first job exception (in submission order) is re-raised
    with its original backtrace after all workers drain. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element using up to
    [domains] domains (default {!default_domains}; the calling domain
    participates).  [~domains:1] runs sequentially in the caller with
    no domain spawned. *)
