(** Scheduling precedence edges for a superblock body.

    Three families of hard edges:
    - register dependences (RAW, WAR, WAW);
    - memory dependences from the dependence graph: must-alias edges
      always, may-alias edges only when the policy forbids reordering
      that pair;
    - control edges around side exits: stores never cross a branch in
      either direction; a definition of a register live at an exit
      never crosses that exit; branches stay ordered among themselves.

    Dropped may-alias edges are returned separately — they are the
    speculation assumptions the region records for re-optimization. *)

type t = {
  preds : (int, int list) Hashtbl.t;  (** instr id -> predecessor ids *)
  succs : (int, int list) Hashtbl.t;
  dropped : (int * int) list;  (** speculated-away may-alias pairs *)
}

val build :
  sb:Ir.Superblock.t ->
  deps:Analysis.Depgraph.t ->
  policy:Policy.t ->
  t

val preds : t -> int -> int list
val succs : t -> int -> int list
