lib/hw/no_detect.ml: Detector
