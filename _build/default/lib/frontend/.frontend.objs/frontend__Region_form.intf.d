lib/frontend/region_form.mli: Ir Liveness Profiler
