lib/sched/naive_alloc.ml: Hashtbl Ir List Printf
