lib/opt/unroll.mli: Ir
