lib/vliw/cache.ml: Array List
