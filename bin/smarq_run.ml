(* smarq_run: command-line driver for the SMARQ dynamic optimization
   system.

   smarq_run list                          -- benchmarks and schemes
   smarq_run run -b wupwise -s smarq64     -- run one benchmark
   smarq_run compare -b mesa --scale 5     -- all schemes side by side
   smarq_run region -b ammp -s smarq64     -- show an annotated region *)

open Cmdliner

let scheme_conv =
  let parse s =
    try Ok (Smarq.Scheme.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Smarq.Scheme.name s))

let bench_arg =
  let doc = "Benchmark name (see `smarq_run list')." in
  Arg.(
    required
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let scheme_arg =
  let doc =
    "Alias-detection scheme: smarq64, smarq16, smarqN, alat, efficeon, none."
  in
  Arg.(
    value
    & opt scheme_conv (Smarq.Scheme.Smarq 64)
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let scale_arg =
  let doc = "Multiply the benchmark's iteration count." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc)

let tcache_policy_conv =
  let parse s =
    try Ok (Smarq.Tcache.Policy.of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, Smarq.Tcache.Policy.pp)

let tcache_policy_arg =
  let doc =
    "Translation cache eviction policy: lru, fifo, flush-all, unbounded."
  in
  Arg.(
    value
    & opt tcache_policy_conv Smarq.Tcache.Policy.Unbounded
    & info [ "tcache-policy" ] ~docv:"POLICY" ~doc)

let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg "capacity must be positive")
    | None -> Error (`Msg (Printf.sprintf "invalid capacity %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let tcache_capacity_arg =
  let doc =
    "Translation cache capacity in scheduled-region instructions \
     (default: unlimited)."
  in
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "tcache-capacity" ] ~docv:"INSTRS" ~doc)

let find_bench name =
  match Workload.Specfp.find name with
  | b -> b
  | exception Not_found ->
    Printf.eprintf "unknown benchmark %S; try `smarq_run list'\n" name;
    exit 1

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (b : Workload.Specfp.bench) ->
        Printf.printf "  %-10s %s\n" b.Workload.Specfp.name
          b.Workload.Specfp.description)
      Workload.Specfp.suite;
    print_endline "\nschemes:";
    List.iter
      (fun s -> Printf.printf "  %s\n" (Smarq.Scheme.name s))
      Smarq.Scheme.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and schemes")
    Term.(const run $ const ())

let run_cmd =
  let run bench scheme scale tcache_policy tcache_capacity =
    let b = find_bench bench in
    let program = Workload.Specfp.program ~scale b in
    let r =
      Smarq.run_program ~fuel:2_000_000_000 ~tcache_policy ?tcache_capacity
        ~scheme program
    in
    Printf.printf "%s under %s (scale %d, tcache %s%s):\n" bench
      (Smarq.Scheme.name scheme) scale
      (Smarq.Tcache.Policy.to_string tcache_policy)
      (match tcache_capacity with
      | Some c -> Printf.sprintf "/%d" c
      | None -> "");
    Runtime.Stats.pp Format.std_formatter r.Runtime.Driver.stats;
    Format.print_flush ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark under one scheme")
    Term.(
      const run $ bench_arg $ scheme_arg $ scale_arg $ tcache_policy_arg
      $ tcache_capacity_arg)

let jobs_arg =
  let doc =
    "Worker domains for the scheme matrix (default: all cores).  \
     Results are identical for every value."
  in
  Arg.(
    value
    & opt positive_int_conv (Exec.Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let compare_cmd =
  let run bench scale tcache_policy tcache_capacity domains =
    let b = find_bench bench in
    let schemes =
      [
        Smarq.Scheme.None_;
        Smarq.Scheme.Smarq 64;
        Smarq.Scheme.Smarq 16;
        Smarq.Scheme.Alat;
        Smarq.Scheme.Efficeon;
      ]
    in
    let outcomes =
      Exec.Matrix.run_matrix ~domains
        (List.map
           (fun s ->
             Exec.Matrix.of_bench ~fuel:2_000_000_000 ~tcache_policy
               ?tcache_capacity ~scale ~scheme:s b)
           schemes)
    in
    let baseline = ref 0 in
    Printf.printf "%-12s %12s %9s %9s %9s %9s\n" "scheme" "cycles" "speedup"
      "rollback" "reopts" "wall(s)";
    List.iter2
      (fun s (o : Exec.Matrix.outcome) ->
        let st = o.Exec.Matrix.result.Runtime.Driver.stats in
        if s = Smarq.Scheme.None_ then
          baseline := st.Runtime.Stats.total_cycles;
        let speedup =
          if !baseline = 0 then 0.0
          else
            float_of_int !baseline
            /. float_of_int st.Runtime.Stats.total_cycles
        in
        Printf.printf "%-12s %12d %9.3f %9d %9d %9.3f\n" (Smarq.Scheme.name s)
          st.Runtime.Stats.total_cycles speedup st.Runtime.Stats.rollbacks
          st.Runtime.Stats.reoptimizations o.Exec.Matrix.wall_seconds)
      schemes outcomes
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run one benchmark under every scheme")
    Term.(
      const run $ bench_arg $ scale_arg $ tcache_policy_arg
      $ tcache_capacity_arg $ jobs_arg)

let region_cmd =
  let run bench scheme =
    let b = find_bench bench in
    let program = Workload.Specfp.program b in
    (* profile until the first body block is hot, then form + optimize *)
    let profiler = Frontend.Profiler.create ~hot_threshold:50 () in
    let machine = Vliw.Machine.create () in
    let rec warm label steps =
      if steps > 5000 then ()
      else begin
        Frontend.Profiler.note_execution profiler label;
        match
          Frontend.Interp.exec_block machine (Ir.Program.block program label)
        with
        | Some next -> warm next (steps + 1)
        | None -> ()
      end
    in
    warm program.Ir.Program.entry 0;
    let seed =
      List.find
        (fun l -> Frontend.Profiler.is_hot profiler l)
        (Ir.Program.labels program)
    in
    let liveness = Frontend.Liveness.analyze program in
    let fresh_id = ref (Ir.Program.max_instr_id program + 1) in
    let sb =
      Frontend.Region_form.form ~program ~liveness ~profiler ~fresh_id seed
    in
    Format.printf "--- superblock ---@.%a@." Ir.Superblock.pp sb;
    let policy =
      match scheme with
      | Smarq.Scheme.Smarq n -> Sched.Policy.smarq ~ar_count:n
      | Smarq.Scheme.Smarq_no_store_reorder n ->
        Sched.Policy.smarq_no_store_reorder ~ar_count:n
      | Smarq.Scheme.Naive_order n -> Sched.Policy.naive_order ~ar_count:n
      | Smarq.Scheme.Alat -> Sched.Policy.alat ()
      | Smarq.Scheme.Efficeon -> Sched.Policy.efficeon ()
      | Smarq.Scheme.None_ -> Sched.Policy.none ()
      | Smarq.Scheme.None_static -> Sched.Policy.none_with_analysis ()
    in
    let o =
      Opt.Optimizer.optimize ~policy ~issue_width:4 ~mem_ports:2
        ~latency:(Vliw.Config.latency Vliw.Config.default)
        ~fresh_id sb
    in
    Format.printf "--- optimized region (%s) ---@.%a@."
      (Smarq.Scheme.name scheme) Ir.Region.pp o.Opt.Optimizer.region;
    let st = o.Opt.Optimizer.stats.Opt.Optimizer.sched_stats in
    Printf.printf
      "schedule %d cycles; %d check / %d anti constraints; AR window %d; %d \
       loads + %d stores eliminated\n"
      st.Sched.List_sched.schedule_length st.Sched.List_sched.check_constraints
      st.Sched.List_sched.anti_constraints st.Sched.List_sched.ar_working_set
      o.Opt.Optimizer.stats.Opt.Optimizer.loads_eliminated
      o.Opt.Optimizer.stats.Opt.Optimizer.stores_eliminated
  in
  Cmd.v
    (Cmd.info "region"
       ~doc:"Show the annotated translation of a benchmark's hot region")
    Term.(const run $ bench_arg $ scheme_arg)

let () =
  let info =
    Cmd.info "smarq_run" ~version:"1.0"
      ~doc:"SMARQ dynamic binary optimization system"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; compare_cmd; region_cmd ]))
