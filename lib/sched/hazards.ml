type t = {
  ids : int array;
  index : (int, int) Hashtbl.t;
  preds_of : int list array;
  succs_of : int list array;
  dropped : (int * int) list;
}

(* RAW, WAR, WAW edges over the straight-line body (positions) — the
   seed's hashtable walk, kept for the reference oracle. *)
let register_edges ~arr ~add =
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let uses_since_def : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          (* RAW: reader depends on the last writer *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d pos
          | None -> ());
          let l = Option.value (Hashtbl.find_opt uses_since_def r) ~default:[] in
          Hashtbl.replace uses_since_def r (pos :: l))
        (Ir.Instr.uses i);
      List.iter
        (fun r ->
          (* WAW on the previous writer, WAR on readers since then *)
          (match Hashtbl.find_opt last_def r with
          | Some d -> add d pos
          | None -> ());
          List.iter
            (fun u -> add u pos)
            (Option.value (Hashtbl.find_opt uses_since_def r) ~default:[]);
          Hashtbl.replace last_def r pos;
          Hashtbl.replace uses_since_def r [])
        (Ir.Instr.defs i))
    arr

(* The same walk on arena-leased flat arrays: registers as compact
   codes, last-def as a direct array, uses-since-def as per-register
   token chains (newest-first, matching the seed's prepend lists).
   Identical edges in identical emission order, zero allocation. *)
let register_edges_flat ~arena ~arr ~nr ~n_uses ~add =
  let module A = Analysis.Arena in
  let last_def = A.filled_ints arena ~slot:16 nr (-1) in
  let use_head = A.filled_ints arena ~slot:17 nr (-1) in
  let use_pos = A.ints arena ~slot:18 (max 1 n_uses) in
  let use_next = A.ints arena ~slot:19 (max 1 n_uses) in
  let tok = ref 0 in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          let c = A.reg_code r in
          if last_def.(c) >= 0 then add last_def.(c) pos;
          use_pos.(!tok) <- pos;
          use_next.(!tok) <- use_head.(c);
          use_head.(c) <- !tok;
          incr tok)
        (Ir.Instr.uses i);
      List.iter
        (fun r ->
          let c = A.reg_code r in
          if last_def.(c) >= 0 then add last_def.(c) pos;
          let u = ref use_head.(c) in
          while !u >= 0 do
            add use_pos.(!u) pos;
            u := use_next.(!u)
          done;
          last_def.(c) <- pos;
          use_head.(c) <- -1)
        (Ir.Instr.defs i))
    arr

(* Memory edges: hard dependences always; speculative ones unless the
   policy may drop them. *)
let memory_edges ~arr ~pos_of ~deps ~policy ~add =
  let dropped = ref [] in
  Analysis.Depgraph.iter_mem_deps deps (fun ~first ~second ~strength ->
      match Hashtbl.find_opt pos_of first, Hashtbl.find_opt pos_of second with
      | Some pf, Some ps ->
        (match strength with
        | Analysis.Depgraph.Hard -> add pf ps
        | Analysis.Depgraph.Speculative ->
          if Policy.may_drop_edge policy ~first:arr.(pf) ~second:arr.(ps) then
            dropped := (first, second) :: !dropped
          else add pf ps)
      | _ -> ());
  !dropped

let crosses_exit_blocked (i : Ir.Instr.t) live =
  Ir.Instr.is_store i
  || List.exists (fun r -> Ir.Reg.Set.mem r live) (Ir.Instr.defs i)

(* Branch-branch program order: consecutive side exits chain, which
   also carries exit-fence transitivity for the reduced builder. *)
let branch_chain ~arr ~add =
  let last_branch = ref None in
  Array.iteri
    (fun pos (i : Ir.Instr.t) ->
      if Ir.Instr.is_side_exit i then begin
        (match !last_branch with
        | Some b -> add b pos
        | None -> ());
        last_branch := Some pos
      end)
    arr

(* Control edges around side exits, seed form: for every (instruction,
   exit) pair whose crossing is blocked, an explicit edge — O(n^2). *)
let control_edges_reference ~sb ~arr ~add =
  branch_chain ~arr ~add;
  let n = Array.length arr in
  let exits = ref [] in
  for idx = 0 to n - 1 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      (* earlier instructions that must stay before this exit *)
      for k = 0 to idx - 1 do
        let j = arr.(k) in
        if (not (Ir.Instr.is_side_exit j)) && crosses_exit_blocked j live then
          add k idx
      done;
      exits := (idx, live) :: !exits
    end
    else
      (* later instruction blocked from hoisting above earlier exits *)
      List.iter
        (fun (bpos, live) -> if crosses_exit_blocked i live then add bpos idx)
        !exits
  done

(* Reduced control edges: one backward and one forward sweep.

   Per instruction only two exit edges are emitted — to the nearest
   following exit that blocks it and from the latest preceding exit
   that blocks it.  The branch chain supplies transitivity: if j is
   blocked at exit e then it is blocked-by-order at every exit after e
   (forward) resp. before e (backward), so the chained graph has the
   same transitive closure as the seed's all-pairs form.  Since every
   latency is >= 1, equal closure means the list scheduler makes
   identical decisions (see DESIGN.md, "Translation pipeline").

   Blockedness is per-exit (it depends on the exit's live-out set), so
   the sweeps track, per register, the nearest exit at which that
   register is live; stores are blocked at every exit.  The per-register
   trackers are arena arrays indexed by compact reg code. *)
let control_edges_reduced ~arena ~sb ~arr ~nr ~add =
  let module A = Analysis.Arena in
  branch_chain ~arr ~add;
  let n = Array.length arr in
  (* forward sweep: latest preceding blocked exit per instruction *)
  let latest_exit = ref (-1) in
  let latest_live = A.filled_ints arena ~slot:20 nr (-1) in
  for idx = 0 to n - 1 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      latest_exit := idx;
      Ir.Reg.Set.iter (fun r -> latest_live.(A.reg_code r) <- idx) live
    end
    else begin
      let e =
        if Ir.Instr.is_store i then !latest_exit
        else
          List.fold_left
            (fun acc r -> max acc latest_live.(A.reg_code r))
            (-1) (Ir.Instr.defs i)
      in
      if e >= 0 then add e idx
    end
  done;
  (* backward sweep: nearest following blocked exit per instruction *)
  let next_exit = ref (-1) in
  let next_live = A.filled_ints arena ~slot:21 nr (-1) in
  for idx = n - 1 downto 0 do
    let i = arr.(idx) in
    if Ir.Instr.is_side_exit i then begin
      let live = Ir.Superblock.exit_live_out sb i.Ir.Instr.id in
      next_exit := idx;
      Ir.Reg.Set.iter (fun r -> next_live.(A.reg_code r) <- idx) live
    end
    else begin
      let e =
        if Ir.Instr.is_store i then !next_exit
        else
          List.fold_left
            (fun acc r ->
              let e = next_live.(A.reg_code r) in
              if e < 0 then acc else if acc < 0 then e else min acc e)
            (-1) (Ir.Instr.defs i)
      in
      if e >= 0 then add idx e
    end
  done

(* The reduction is skipped (deterministically — the choice depends
   only on the graph, never on timing) for pathologically dense graphs,
   where the reachability matrix would not pay for itself. *)
let skip_reduce ~n ~edge_count =
  let row_bytes = (n + 7) / 8 in
  n = 0 || n > 8192 || edge_count * row_bytes > 64_000_000

(* Reference builder: the seed's list-and-hashtable construction,
   verbatim — the oracle the flat builder is differentially tested
   against. *)
let build_reference ~sb ~arr ~n ~ids ~index ~deps ~policy =
  let succs_pos = Array.make (max 1 n) [] in
  let seen = Hashtbl.create 1024 in
  let add a b =
    if a <> b then begin
      let key = (a * n) + b in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        succs_pos.(a) <- b :: succs_pos.(a)
      end
    end
  in
  register_edges ~arr ~add;
  let dropped = memory_edges ~arr ~pos_of:index ~deps ~policy ~add in
  control_edges_reference ~sb ~arr ~add;
  let preds_of = Array.make (max 1 n) [] in
  let succs_of = Array.make (max 1 n) [] in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        preds_of.(b) <- ids.(a) :: preds_of.(b);
        succs_of.(a) <- ids.(b) :: succs_of.(a))
      succs_pos.(a)
  done;
  let dropped = List.sort_uniq compare dropped in
  { ids; index; preds_of; succs_of; dropped }

(* Flat builder: edges are packed [a * n + b] keys pushed into an arena
   vector, deduplicated by an arena bitset (hashtable fallback above
   the matrix gate), sorted once — which also puts every successor row
   in ascending order, exactly what the seed's [sort_uniq] produced —
   then transitively reduced on the CSR form with an arena-leased
   reachability matrix.  Kept edges materialize into the same
   descending [preds_of]/[succs_of] id lists the seed built.  When the
   reduction is gated off, the rows are still sorted (the seed left
   them in insertion order); every consumer folds or counts over the
   lists, so only the order, never the set, differs. *)
let build_flat ~arena ~sb ~arr ~n ~ids ~index ~deps ~policy =
  let module A = Analysis.Arena in
  (* one prescan: compact-code bound over defs, uses and exit live-out
     sets, plus the use-token count for the register-edge chains *)
  let max_code = ref (-1) and n_uses = ref 0 in
  Array.iter
    (fun (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          max_code := max !max_code (A.reg_code r);
          incr n_uses)
        (Ir.Instr.uses i);
      List.iter (fun r -> max_code := max !max_code (A.reg_code r)) (Ir.Instr.defs i);
      if Ir.Instr.is_side_exit i then
        Ir.Reg.Set.iter
          (fun r -> max_code := max !max_code (A.reg_code r))
          (Ir.Superblock.exit_live_out sb i.Ir.Instr.id))
    arr;
  let nr = !max_code + 1 in
  let edge_keys = A.vec arena ~slot:16 in
  let use_bitset = n > 0 && n <= 8192 in
  let seen_bits =
    if use_bitset then Some (A.seen arena (n * n)) else None
  in
  let seen_tbl = if use_bitset then None else Some (Hashtbl.create 1024) in
  let add a b =
    if a <> b then begin
      let key = (a * n) + b in
      let fresh =
        match seen_bits with
        | Some bs ->
          if Analysis.Bitset.mem bs key then false
          else begin
            Analysis.Bitset.add bs key;
            true
          end
        | None ->
          let tbl = Option.get seen_tbl in
          if Hashtbl.mem tbl key then false
          else begin
            Hashtbl.replace tbl key ();
            true
          end
      in
      if fresh then A.vec_push edge_keys key
    end
  in
  register_edges_flat ~arena ~arr ~nr ~n_uses:!n_uses ~add;
  let dropped = memory_edges ~arr ~pos_of:index ~deps ~policy ~add in
  control_edges_reduced ~arena ~sb ~arr ~nr ~add;
  A.sort_ints edge_keys.A.buf ~lo:0 ~hi:edge_keys.A.len;
  let edge_count = edge_keys.A.len in
  let final_keys, final_len =
    if skip_reduce ~n ~edge_count then (edge_keys.A.buf, edge_count)
    else begin
      (* CSR over positions; rows are ascending after the key sort *)
      let row_start = A.filled_ints arena ~slot:22 (n + 1) 0 in
      for x = 0 to edge_count - 1 do
        let a = edge_keys.A.buf.(x) / n in
        row_start.(a + 1) <- row_start.(a + 1) + 1
      done;
      for a = 1 to n do
        row_start.(a) <- row_start.(a) + row_start.(a - 1)
      done;
      let m = A.reach arena ~rows:n ~cols:n in
      let kept = A.vec arena ~slot:17 in
      for v = n - 1 downto 0 do
        for x = row_start.(v) to row_start.(v + 1) - 1 do
          let u = edge_keys.A.buf.(x) mod n in
          if not (Analysis.Bitset.Matrix.mem m ~row:v u) then begin
            Analysis.Bitset.Matrix.add m ~row:v u;
            Analysis.Bitset.Matrix.union_rows m ~dst:v ~src:u;
            A.vec_push kept ((v * n) + u)
          end
        done
      done;
      A.sort_ints kept.A.buf ~lo:0 ~hi:kept.A.len;
      (kept.A.buf, kept.A.len)
    end
  in
  let preds_of = Array.make (max 1 n) [] in
  let succs_of = Array.make (max 1 n) [] in
  for x = 0 to final_len - 1 do
    let key = final_keys.(x) in
    let a = key / n and b = key mod n in
    preds_of.(b) <- ids.(a) :: preds_of.(b);
    succs_of.(a) <- ids.(b) :: succs_of.(a)
  done;
  let dropped = List.sort_uniq compare dropped in
  { ids; index; preds_of; succs_of; dropped }

let build ~sb ~deps ~policy ?(reference = false) ?arena () =
  let body = sb.Ir.Superblock.body in
  let arr = Array.of_list body in
  let n = Array.length arr in
  let ids = Array.map (fun (i : Ir.Instr.t) -> i.Ir.Instr.id) arr in
  let index = Hashtbl.create (2 * max 1 n) in
  Array.iteri (fun pos id -> Hashtbl.replace index id pos) ids;
  if reference then build_reference ~sb ~arr ~n ~ids ~index ~deps ~policy
  else
    let arena =
      match arena with Some a -> a | None -> Analysis.Arena.create ()
    in
    build_flat ~arena ~sb ~arr ~n ~ids ~index ~deps ~policy

let preds t id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> t.preds_of.(pos)
  | None -> []

let succs t id =
  match Hashtbl.find_opt t.index id with
  | Some pos -> t.succs_of.(pos)
  | None -> []

let instr_ids t = t.ids
