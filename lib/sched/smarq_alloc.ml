module C = Analysis.Constraints
module CD = Analysis.Cycle_detect

type amov_insertion = {
  amov_id : int;
  before : int;
  src_instr : int;
  dst_is_fresh : bool;
  src_offset : int;
  dst_offset : int;
}

type result = {
  annots : (int * Ir.Annot.t) list;
  rotations : (int * int) list;
  amovs : amov_insertion list;
  max_offset : int;
  check_edges : C.edge list;
  anti_edges : C.edge list;
  allocation : C.allocation;
}

exception Overflow of string

(* A pending AMOV whose offsets are backpatched once orders are known.
   [dst_instr = None] means a pure clear (src offset reused). *)
type pending_amov = {
  p_amov_id : int;
  p_before : int;
  p_src : int;
  p_dst : int option;
  p_base : int;  (* BASE at the AMOV's execution point *)
}

type t = {
  deps : Analysis.Depgraph.t;
  ar_count : int;
  fresh_id : int ref;
  cd : CD.t;
  alloc : C.allocation;  (* orders, bases, P/C bits *)
  scheduled : (int, unit) Hashtbl.t;
  allocated : (int, unit) Hashtbl.t;
  (* constraint graph bookkeeping *)
  mutable check_edges : C.edge list;
  mutable anti_edges : C.edge list;
  out_edges : (int, int list) Hashtbl.t;  (* allocation-order successors *)
  indeg : (int, int) Hashtbl.t;
  check_pairs : (int * int, unit) Hashtbl.t;  (* existing check (f,s) *)
  (* check edges into a not-yet-scheduled checkee, for AMOV retarget:
     checkee id -> checker ids that are not yet scheduled *)
  pending_checkers : (int, int list) Hashtbl.t;
  mutable next_order : int;
  ready_queue : int Queue.t;
  in_delay : (int, unit) Hashtbl.t;
  mutable rotations : (int * int) list;
  mutable amovs : pending_amov list;
  (* ids of unscheduled ops that extended deps will force to P *)
  ext_p_unscheduled : (int, unit) Hashtbl.t;
  (* after "AMOV x -> x'", x's protected range lives in x's register no
     longer: holder maps each op to the pseudo-op currently holding its
     range (absent = itself) *)
  holder : (int, int) Hashtbl.t;
}

let rec resolve_holder t id =
  match Hashtbl.find_opt t.holder id with
  | None -> id
  | Some h -> resolve_holder t h

let has_p t id = Hashtbl.mem t.alloc.C.p_bit id
let has_c t id = Hashtbl.mem t.alloc.C.c_bit id
let set_p t id = Hashtbl.replace t.alloc.C.p_bit id ()
let set_c t id = Hashtbl.replace t.alloc.C.c_bit id ()
let is_scheduled t id = Hashtbl.mem t.scheduled id
let is_allocated t id = Hashtbl.mem t.allocated id
let indeg_of t id = Option.value (Hashtbl.find_opt t.indeg id) ~default:0

let create ~body ~deps ~ar_count ~fresh_id =
  let cd = CD.create () in
  List.iteri
    (fun idx (i : Ir.Instr.t) -> ignore (CD.init_t cd i.id idx))
    body;
  let ext_p_unscheduled = Hashtbl.create 16 in
  Analysis.Depgraph.iter_edges deps
    (fun ~first:_ ~second ~kind ~strength:_ ->
      match kind with
      | Analysis.Depgraph.Extended ->
        (* at [second]'s scheduling, an unscheduled [first] forces
           P(second); count every potential target *)
        Hashtbl.replace ext_p_unscheduled second ()
      | Analysis.Depgraph.Real -> ());
  {
    deps;
    ar_count;
    fresh_id;
    cd;
    alloc = C.empty_allocation ();
    scheduled = Hashtbl.create 64;
    allocated = Hashtbl.create 64;
    check_edges = [];
    anti_edges = [];
    out_edges = Hashtbl.create 64;
    indeg = Hashtbl.create 64;
    check_pairs = Hashtbl.create 64;
    pending_checkers = Hashtbl.create 64;
    next_order = 0;
    ready_queue = Queue.create ();
    in_delay = Hashtbl.create 64;
    rotations = [];
    amovs = [];
    ext_p_unscheduled;
    holder = Hashtbl.create 16;
  }

let add_graph_edge t f s =
  let l = Option.value (Hashtbl.find_opt t.out_edges f) ~default:[] in
  Hashtbl.replace t.out_edges f (s :: l);
  Hashtbl.replace t.indeg s (indeg_of t s + 1)

let add_check t f s =
  if not (Hashtbl.mem t.check_pairs (f, s)) then begin
    Hashtbl.replace t.check_pairs (f, s) ();
    t.check_edges <- { C.first = f; second = s; kind = C.Check } :: t.check_edges;
    add_graph_edge t f s;
    let l = Option.value (Hashtbl.find_opt t.pending_checkers s) ~default:[] in
    Hashtbl.replace t.pending_checkers s (f :: l)
  end

let add_anti t f s =
  t.anti_edges <- { C.first = f; second = s; kind = C.Anti } :: t.anti_edges;
  add_graph_edge t f s

let has_check t f s = Hashtbl.mem t.check_pairs (f, s)

(* Allocate every ready operation; each allocation may unblock more. *)
let drain t =
  while not (Queue.is_empty t.ready_queue) do
    let x = Queue.pop t.ready_queue in
    let base_x = Hashtbl.find t.alloc.C.base x in
    let off = t.next_order - base_x in
    if off >= t.ar_count then
      raise
        (Overflow
           (Printf.sprintf "instr %d would need offset %d of %d registers" x
              off t.ar_count));
    Hashtbl.replace t.alloc.C.order x t.next_order;
    Hashtbl.replace t.allocated x ();
    Hashtbl.remove t.in_delay x;
    if has_p t x then t.next_order <- t.next_order + 1;
    List.iter
      (fun z ->
        let d = indeg_of t z - 1 in
        Hashtbl.replace t.indeg z d;
        if d = 0 && Hashtbl.mem t.in_delay z then Queue.push z t.ready_queue)
      (Option.value (Hashtbl.find_opt t.out_edges x) ~default:[]);
    Hashtbl.remove t.out_edges x
  done

let allocate_reg t id =
  Hashtbl.replace t.alloc.C.base id t.next_order;
  if indeg_of t id = 0 then Queue.push id t.ready_queue
  else Hashtbl.replace t.in_delay id ();
  let base_before = t.next_order in
  drain t;
  if t.next_order > base_before then
    t.rotations <- (id, t.next_order - base_before) :: t.rotations

(* Break a would-be cycle from anti-constraint x -> y by inserting an
   AMOV before y that takes over x's protected range (Section 5.2). *)
let break_cycle t ~x ~y =
  let unsched_checkers =
    List.filter
      (fun z -> not (is_scheduled t z))
      (Option.value (Hashtbl.find_opt t.pending_checkers x) ~default:[])
  in
  let amov_id = !(t.fresh_id) in
  incr t.fresh_id;
  if unsched_checkers = [] then
    (* nobody will check x's register any more: a pure clear removes
       the range so y cannot hit it *)
    t.amovs <-
      {
        p_amov_id = amov_id;
        p_before = y;
        p_src = x;
        p_dst = None;
        p_base = t.next_order;
      }
      :: t.amovs
  else begin
    (* the AMOV becomes a new protected pseudo-op x' *)
    let x' = amov_id in
    ignore (CD.init_t t.cd x' (CD.get_t t.cd y - 1));
    set_p t x';
    (* retarget future checks z ->check x to z ->check x' *)
    List.iter
      (fun z ->
        (* remove z->x *)
        Hashtbl.remove t.check_pairs (z, x);
        t.check_edges <-
          List.filter
            (fun (e : C.edge) -> not (e.C.first = z && e.C.second = x))
            t.check_edges;
        (match Hashtbl.find_opt t.out_edges z with
        | Some l ->
          let removed = ref false in
          let l' =
            List.filter
              (fun s ->
                if (not !removed) && s = x then begin
                  removed := true;
                  false
                end
                else true)
              l
          in
          Hashtbl.replace t.out_edges z l'
        | None -> ());
        Hashtbl.replace t.indeg x (indeg_of t x - 1);
        CD.remove_edge t.cd z x;
        add_check t z x';
        CD.add_edge t.cd z x';
        (* unscheduled checkers have no incoming constraints, so their
           T may be lowered freely to restore the invariant *)
        if CD.get_t t.cd z >= CD.get_t t.cd x' then
          CD.set_t t.cd z (CD.get_t t.cd x' - 1))
      unsched_checkers;
    (* the retargeting may have made x itself allocatable *)
    if indeg_of t x = 0 && Hashtbl.mem t.in_delay x then
      Queue.push x t.ready_queue;
    Hashtbl.replace t.pending_checkers x
      (List.filter (fun z -> is_scheduled t z)
         (Option.value (Hashtbl.find_opt t.pending_checkers x) ~default:[]));
    (* x' is delayed until its checkers are allocated *)
    Hashtbl.replace t.alloc.C.base x' t.next_order;
    Hashtbl.replace t.in_delay x' ();
    Hashtbl.replace t.scheduled x' ();
    (* anti x' -> y so y never checks the moved range either *)
    (match CD.try_add_anti t.cd ~x:x' ~y with
    | CD.Ok_already | CD.Ok_shifted _ -> add_anti t x' y
    | CD.Cycle _ ->
      (* impossible: x' is fresh with T = T(y) - 1 and y has no path
         to x' *)
      assert false);
    Hashtbl.replace t.holder x x';
    t.amovs <-
      {
        p_amov_id = amov_id;
        p_before = y;
        p_src = x;
        p_dst = Some x';
        p_base = t.next_order;
      }
      :: t.amovs
  end

let on_schedule t (instr : Ir.Instr.t) =
  let y = instr.id in
  Analysis.Depgraph.iter_into t.deps y
    (fun ~first:x ~second:_ ~kind:_ ~strength:_ ->
      if not (is_scheduled t x) then begin
        (* x executes after y although the dependence says the pair
           must be alias-checked: x checks y *)
        set_c t x;
        set_p t y;
        add_check t x y;
        CD.lower_for_check t.cd ~x ~y
      end
      else begin
        (* The range X set may have been moved to a pseudo-op by an
           earlier AMOV; every ordering obligation applies to whichever
           register currently holds it. *)
        let xh = resolve_holder t x in
        if
          (not (is_allocated t xh))
          && has_p t xh && has_c t y
          && not (has_check t y xh)
        then begin
          match CD.try_add_anti t.cd ~x:xh ~y with
          | CD.Ok_already | CD.Ok_shifted _ -> add_anti t xh y
          | CD.Cycle _ -> break_cycle t ~x:xh ~y
        end
      end);
  Hashtbl.replace t.scheduled y ();
  Hashtbl.remove t.ext_p_unscheduled y;
  if has_p t y || has_c t y then allocate_reg t y

let unscheduled_ext_p t = Hashtbl.length t.ext_p_unscheduled

let overflow_risk t ~lookahead_p =
  let min_base =
    Hashtbl.fold
      (fun id () acc ->
        match Hashtbl.find_opt t.alloc.C.base id with
        | Some b -> min b acc
        | None -> acc)
      t.in_delay t.next_order
  in
  let delayed_p =
    Hashtbl.fold
      (fun id () acc -> if has_p t id then acc + 1 else acc)
      t.in_delay 0
  in
  let max_order =
    t.next_order + delayed_p + unscheduled_ext_p t + lookahead_p
  in
  max_order - min_base >= t.ar_count

let finish t =
  (* drain everything that can still be allocated; remaining delayed
     ops indicate a bug (their checkers never got scheduled) *)
  drain t;
  if Hashtbl.length t.in_delay > 0 then begin
    let stuck =
      Hashtbl.fold (fun id () acc -> string_of_int id :: acc) t.in_delay []
    in
    invalid_arg
      ("Smarq_alloc.finish: unallocated operations remain: "
      ^ String.concat "," stuck)
  end;
  let annots =
    Hashtbl.fold
      (fun id order acc ->
        let p = has_p t id and c = has_c t id in
        if p || c then begin
          match Hashtbl.find_opt t.alloc.C.base id with
          | Some base -> (id, Ir.Annot.queue ~offset:(order - base) ~p ~c) :: acc
          | None -> acc
        end
        else acc)
      t.alloc.C.order []
  in
  let amovs =
    List.rev_map
      (fun p ->
        let src_order = Hashtbl.find t.alloc.C.order p.p_src in
        let src_offset = src_order - p.p_base in
        let dst_offset =
          match p.p_dst with
          | None -> src_offset
          | Some d -> Hashtbl.find t.alloc.C.order d - p.p_base
        in
        if
          src_offset < 0 || dst_offset < 0
          || src_offset >= t.ar_count
          || dst_offset >= t.ar_count
        then
          raise
            (Overflow
               (Printf.sprintf "amov %d offsets %d,%d outside window %d"
                  p.p_amov_id src_offset dst_offset t.ar_count));
        {
          amov_id = p.p_amov_id;
          before = p.p_before;
          src_instr = p.p_src;
          dst_is_fresh = Option.is_some p.p_dst;
          src_offset;
          dst_offset;
        })
      t.amovs
  in
  let max_offset =
    let from_annots =
      List.fold_left
        (fun acc (_, a) ->
          match a with
          | Ir.Annot.Queue { offset; _ } -> max acc offset
          | _ -> acc)
        (-1) annots
    in
    List.fold_left
      (fun acc (a : amov_insertion) ->
        max acc (max a.src_offset a.dst_offset))
      from_annots amovs
  in
  {
    annots;
    rotations = List.rev t.rotations;
    amovs;
    max_offset;
    check_edges = List.rev t.check_edges;
    anti_edges = List.rev t.anti_edges;
    allocation = t.alloc;
  }
