(** Dense bitsets over [0, n) backed by [Bytes], plus a rectangular
    matrix variant used as a reachability cache.

    The dependence and hazard passes index instructions by their body
    position, so sets of instructions are just sets of small integers;
    a flat [Bytes] buffer beats hashtables by an order of magnitude for
    the membership tests and unions those passes are made of. *)

type t

val create : int -> t
(** [create n] is the empty set over the universe [0, n). *)

val length : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val clear : t -> unit
val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst]; the two
    must share a universe size. *)

val iter : (int -> unit) -> t -> unit

val lease : prev:t option -> int -> t
(** [lease ~prev n] is an empty set over [0, n) that reuses [prev]'s
    buffer when it is large enough (clearing the used prefix), else
    allocates.  [prev] must not be used afterwards. *)

(** A matrix of [rows] bitsets, each over [0, cols), in one allocation.
    Row [i] caches, e.g., the set of body positions reachable from
    position [i]. *)
module Matrix : sig
  type m

  val create : rows:int -> cols:int -> m
  val mem : m -> row:int -> int -> bool
  val add : m -> row:int -> int -> unit

  val union_rows : m -> dst:int -> src:int -> unit
  (** OR row [src] into row [dst]. *)

  val lease : prev:m option -> rows:int -> cols:int -> m
  (** Like {!Bitset.lease}: reuse [prev]'s buffer when large enough
      (clearing the used region), else allocate fresh. *)
end
