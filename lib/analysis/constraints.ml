type kind =
  | Check
  | Anti

type edge = {
  first : int;
  second : int;
  kind : kind;
}

type allocation = {
  order : (int, int) Hashtbl.t;
  base : (int, int) Hashtbl.t;
  p_bit : (int, unit) Hashtbl.t;
  c_bit : (int, unit) Hashtbl.t;
}

let empty_allocation () =
  {
    order = Hashtbl.create 64;
    base = Hashtbl.create 64;
    p_bit = Hashtbl.create 64;
    c_bit = Hashtbl.create 64;
  }

let offset a id =
  match Hashtbl.find_opt a.order id, Hashtbl.find_opt a.base id with
  | Some o, Some b -> Some (o - b)
  | _ -> None

let validate a ~edges ~ar_count =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun e ->
      match Hashtbl.find_opt a.order e.first, Hashtbl.find_opt a.order e.second
      with
      | Some o1, Some o2 ->
        (match e.kind with
        | Check ->
          if not (o1 <= o2) then
            note "check-constraint %d->%d violated: order %d > %d" e.first
              e.second o1 o2
        | Anti ->
          if not (o1 < o2) then
            note "anti-constraint %d->%d violated: order %d >= %d" e.first
              e.second o1 o2)
      | None, _ -> note "constraint %d->%d: %d not allocated" e.first e.second e.first
      | _, None -> note "constraint %d->%d: %d not allocated" e.first e.second e.second)
    edges;
  Hashtbl.iter
    (fun id order ->
      match Hashtbl.find_opt a.base id with
      | None -> note "instr %d has order but no base" id
      | Some base ->
        let off = order - base in
        if off < 0 then note "instr %d has negative offset %d" id off;
        if off >= ar_count then
          note "instr %d offset %d exceeds %d alias registers" id off ar_count)
    a.order;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (List.rev ps)

let adjacency edges =
  let out = Hashtbl.create 64 and indeg = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let l = Option.value (Hashtbl.find_opt out e.first) ~default:[] in
      Hashtbl.replace out e.first (e.second :: l);
      let d = Option.value (Hashtbl.find_opt indeg e.second) ~default:0 in
      Hashtbl.replace indeg e.second (d + 1))
    edges;
  (out, indeg)

let topological_order edges ~ids =
  let out, indeg = adjacency edges in
  let degree id = Option.value (Hashtbl.find_opt indeg id) ~default:0 in
  let module IS = Set.Make (Int) in
  let ready =
    ref (IS.of_list (List.filter (fun id -> degree id = 0) ids))
  in
  let in_ids = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_ids id ()) ids;
  let result = ref [] in
  let count = ref 0 in
  while not (IS.is_empty !ready) do
    let id = IS.min_elt !ready in
    ready := IS.remove id !ready;
    result := id :: !result;
    incr count;
    List.iter
      (fun succ ->
        if Hashtbl.mem in_ids succ then begin
          let d = degree succ - 1 in
          Hashtbl.replace indeg succ d;
          if d = 0 then ready := IS.add succ !ready
        end)
      (Option.value (Hashtbl.find_opt out id) ~default:[])
  done;
  if !count = List.length ids then Some (List.rev !result) else None

let cycle_edges edges ~ids =
  (* Kahn in reverse: iteratively strip nodes of in-degree zero; the
     edges among whatever survives all lie on (or between) cycles. *)
  let out, indeg = adjacency edges in
  let degree id = Option.value (Hashtbl.find_opt indeg id) ~default:0 in
  let alive = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace alive id ()) ids;
  let ready = Queue.create () in
  List.iter (fun id -> if degree id = 0 then Queue.add id ready) ids;
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    Hashtbl.remove alive id;
    List.iter
      (fun succ ->
        if Hashtbl.mem alive succ then begin
          let d = degree succ - 1 in
          Hashtbl.replace indeg succ d;
          if d = 0 then Queue.add succ ready
        end)
      (Option.value (Hashtbl.find_opt out id) ~default:[])
  done;
  List.filter
    (fun e -> Hashtbl.mem alive e.first && Hashtbl.mem alive e.second)
    edges

let has_cycle edges =
  let ids =
    List.concat_map (fun e -> [ e.first; e.second ]) edges
    |> List.sort_uniq Int.compare
  in
  Option.is_none (topological_order edges ~ids)

let pp_edge ppf e =
  Format.fprintf ppf "%d ->%s %d" e.first
    (match e.kind with Check -> "check" | Anti -> "anti")
    e.second
