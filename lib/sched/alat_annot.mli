(** ALAT (Itanium-like) annotation post-pass.

    Marks as {e advanced} every load whose protection the table must
    provide: loads that actually issued before a may-alias store they
    originally followed (a dropped dependence realized by the
    schedule), and loads acting as forwarding sources of a speculative
    load elimination (extended dependences).  Stores snoop the table
    implicitly; they receive a plain [Alat] annotation for
    readability. *)

exception Alat_overflow of string
(** A protection window holds more advanced loads than the table.  The
    modeled ALAT evicts its oldest entry silently on overflow, so when
    [ar_count] or more advanced loads issue between a hoisted load and
    the store it must be checked against, the entry can be gone before
    the store snoops the table — the optimizer must fall back rather
    than emit such a region. *)

val annotate :
  sb:Ir.Superblock.t ->
  deps:Analysis.Depgraph.t ->
  hazards:Hazards.t ->
  issue_order:(int * Ir.Instr.t) list ->
  ar_count:int ->
  (int * Ir.Annot.t) list
(** @raise Alat_overflow when a protection window holds [ar_count] or
    more advanced loads. *)
