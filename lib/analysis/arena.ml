(* Reusable per-domain scratch for the translation hot path.

   One arena serves one sequence of region translations (a driver run,
   or one worker domain of a parallel replay).  Buffers grow to the
   high-water mark of the regions seen and are then reused, so the
   depgraph and hazard builders stop allocating (and stop dragging the
   GC write barrier) once warm.  Nothing leased from an arena may
   escape the build that leased it. *)

type vec = {
  mutable buf : int array;
  mutable len : int;
}

let vec_make () = { buf = Array.make 64 0; len = 0 }
let vec_clear v = v.len <- 0

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let bigger = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 bigger 0 v.len;
    v.buf <- bigger
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

(* Open-addressed int->int map with epoch-stamped slots: [reset] is
   O(1), lookups never allocate.  Keys must be >= 0. *)
type intmap = {
  mutable keys : int array;
  mutable vals : int array;
  mutable stamps : int array;
  mutable epoch : int;
  mutable mask : int;
  mutable used : int;
}

let map_make () =
  {
    keys = Array.make 64 0;
    vals = Array.make 64 0;
    stamps = Array.make 64 (-1);
    epoch = 0;
    mask = 63;
    used = 0;
  }

let map_reset m =
  m.epoch <- m.epoch + 1;
  m.used <- 0

(* Fibonacci-style multiplicative hash; deterministic within a run. *)
let hash_int k = (k * 0x2545F4914F6CDD1D) land max_int

let map_slot m k =
  let i = ref (hash_int k land m.mask) in
  while m.stamps.(!i) = m.epoch && m.keys.(!i) <> k do
    i := (!i + 1) land m.mask
  done;
  !i

let map_grow m =
  let old_keys = m.keys
  and old_vals = m.vals
  and old_stamps = m.stamps
  and old_cap = m.mask + 1 in
  let cap = 2 * old_cap in
  m.keys <- Array.make cap 0;
  m.vals <- Array.make cap 0;
  m.stamps <- Array.make cap (-1);
  m.mask <- cap - 1;
  for i = 0 to old_cap - 1 do
    if old_stamps.(i) = m.epoch then begin
      let s = map_slot m old_keys.(i) in
      m.keys.(s) <- old_keys.(i);
      m.vals.(s) <- old_vals.(i);
      m.stamps.(s) <- m.epoch
    end
  done

let map_set m k v =
  if 2 * (m.used + 1) > m.mask + 1 then map_grow m;
  let s = map_slot m k in
  if m.stamps.(s) <> m.epoch then begin
    m.stamps.(s) <- m.epoch;
    m.keys.(s) <- k;
    m.used <- m.used + 1
  end;
  m.vals.(s) <- v

let map_get m k ~default =
  let s = map_slot m k in
  if m.stamps.(s) = m.epoch then m.vals.(s) else default

type t = {
  mutable slots : int array array;
  mutable seen : Bitset.t option;
  mutable reach : Bitset.Matrix.m option;
  mutable vecs : vec array;
  mutable maps : intmap array;
}

let create () =
  { slots = Array.make 24 [||]; seen = None; reach = None; vecs = [||]; maps = [||] }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(* Scratch int array of capacity >= n; contents are stale — callers
   must initialize everything they read. *)
let ints t ~slot n =
  if slot >= Array.length t.slots then begin
    let bigger = Array.make (next_pow2 (slot + 1) 1) [||] in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end;
  let a = t.slots.(slot) in
  if Array.length a >= n then a
  else begin
    let b = Array.make (next_pow2 (max 64 n) 64) 0 in
    t.slots.(slot) <- b;
    b
  end

let filled_ints t ~slot n x =
  let a = ints t ~slot n in
  Array.fill a 0 n x;
  a

let vec t ~slot =
  if slot >= Array.length t.vecs then begin
    let bigger = Array.init (next_pow2 (slot + 1) 1) (fun _ -> vec_make ()) in
    Array.blit t.vecs 0 bigger 0 (Array.length t.vecs);
    t.vecs <- bigger
  end;
  let v = t.vecs.(slot) in
  vec_clear v;
  v

let map t ~slot =
  if slot >= Array.length t.maps then begin
    let bigger = Array.init (next_pow2 (slot + 1) 1) (fun _ -> map_make ()) in
    Array.blit t.maps 0 bigger 0 (Array.length t.maps);
    t.maps <- bigger
  end;
  let m = t.maps.(slot) in
  map_reset m;
  m

let seen t n =
  let s = Bitset.lease ~prev:t.seen n in
  t.seen <- Some s;
  s

let reach t ~rows ~cols =
  let m = Bitset.Matrix.lease ~prev:t.reach ~rows ~cols in
  t.reach <- Some m;
  m

(* In-place ascending sort of [a.(lo), a.(hi)): quicksort with an
   insertion-sort tail, median-of-three pivot.  Deterministic. *)
let sort_ints a ~lo ~hi =
  let rec qsort lo hi =
    if hi - lo <= 12 then
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let p1 = a.(lo) and p2 = a.(mid) and p3 = a.(hi - 1) in
      let pivot =
        if p1 <= p2 then if p2 <= p3 then p2 else max p1 p3
        else if p1 <= p3 then p1
        else max p2 p3
      in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while a.(!i) < pivot do incr i done;
        while a.(!j) > pivot do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo (!j + 1);
      qsort !i hi
    end
  in
  if hi - lo > 1 then qsort lo hi

(* Same, under an arbitrary total order. *)
let sort_by a ~lo ~hi ~cmp =
  let rec qsort lo hi =
    if hi - lo <= 12 then
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && cmp a.(!j) x > 0 do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let p1 = a.(lo) and p2 = a.(mid) and p3 = a.(hi - 1) in
      let pivot =
        if cmp p1 p2 <= 0 then
          if cmp p2 p3 <= 0 then p2 else if cmp p1 p3 >= 0 then p1 else p3
        else if cmp p1 p3 <= 0 then p1
        else if cmp p2 p3 >= 0 then p2
        else p3
      in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while cmp a.(!i) pivot < 0 do incr i done;
        while cmp a.(!j) pivot > 0 do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo (!j + 1);
      qsort !i hi
    end
  in
  if hi - lo > 1 then qsort lo hi

(* Compact encoding of [Ir.Reg.t] as a non-negative int, for direct
   array indexing: 3 * index + rank. *)
let reg_code = function
  | Ir.Reg.R i -> 3 * i
  | Ir.Reg.F i -> (3 * i) + 1
  | Ir.Reg.T i -> (3 * i) + 2
