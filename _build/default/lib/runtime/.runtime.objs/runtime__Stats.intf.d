lib/runtime/stats.mli: Format Opt Sched
