(** Constant propagation over a superblock body — the "simple and fast
    binary-level alias analysis" of the paper's related work (its
    [13]): it can disambiguate only direct memory accesses, i.e. those
    whose base register provably holds a compile-time constant at the
    access.

    A forward pass tracks registers holding known integers (from
    immediate moves and arithmetic on known values).  {!May_alias} can
    consume the facts to resolve cross-base pairs whose absolute
    addresses are both known — the small subset of aliases static
    analysis reaches, per the paper's argument that dynamic optimizers
    must rely on hardware for the rest. *)

type t

val analyze : body:Ir.Instr.t list -> t

val base_value_at : t -> instr_id:int -> Ir.Reg.t -> int option
(** The constant value of [reg] immediately {e before} the instruction
    with the given id executes, if provable. *)

val known_count : t -> int
(** Number of (instruction, base register) pairs resolved — a coverage
    metric for experiments. *)
