lib/sched/alat_annot.mli: Analysis Hazards Ir
