(* Statistics plumbing: the numbers every figure is computed from. *)

open Helpers

let run name =
  (Smarq.run_benchmark ~fuel:100_000_000 ~scheme:(Smarq.Scheme.Smarq 64) name)
    .Runtime.Driver.stats

let test_cycle_partition () =
  let st = run "wupwise" in
  Alcotest.(check int) "total = interp + region + optimize"
    st.Runtime.Stats.total_cycles
    (st.Runtime.Stats.interp_cycles + st.Runtime.Stats.region_cycles
    + st.Runtime.Stats.optimize_cycles);
  Alcotest.(check bool) "scheduling within optimization" true
    (st.Runtime.Stats.schedule_cycles <= st.Runtime.Stats.optimize_cycles)

let test_commit_accounting () =
  let st = run "wupwise" in
  Alcotest.(check int) "entries = commits + rollbacks"
    st.Runtime.Stats.region_entries
    (st.Runtime.Stats.region_commits + st.Runtime.Stats.rollbacks)

let test_derived_metrics () =
  let st = run "mesa" in
  let m = Runtime.Stats.mem_ops_per_superblock st in
  Alcotest.(check bool) "memops/superblock positive" true (m > 1.0);
  let chk, anti = Runtime.Stats.constraints_per_mem_op st in
  Alcotest.(check bool) "check density sane" true (chk > 0.0 && chk < 10.0);
  Alcotest.(check bool) "anti density sane" true (anti >= 0.0 && anti < 5.0);
  let opt, sched = Runtime.Stats.optimize_fraction st in
  Alcotest.(check bool) "fractions in (0,1)" true
    (opt > 0.0 && opt < 1.0 && sched > 0.0 && sched <= opt)

let test_empty_stats () =
  let st = Runtime.Stats.create () in
  Alcotest.(check (float 0.0001)) "no superblocks" 0.0
    (Runtime.Stats.mem_ops_per_superblock st);
  let chk, anti = Runtime.Stats.constraints_per_mem_op st in
  Alcotest.(check (float 0.0001)) "no checks" 0.0 chk;
  Alcotest.(check (float 0.0001)) "no antis" 0.0 anti;
  let opt, _ = Runtime.Stats.optimize_fraction st in
  Alcotest.(check (float 0.0001)) "no cycles" 0.0 opt

let test_working_set_add () =
  let a =
    Sched.Working_set.
      { program_order = 3; p_bit_order = 2; smarq = 1; lower_bound = 1 }
  in
  let s = Sched.Working_set.add a a in
  Alcotest.(check int) "sums program order" 6 s.Sched.Working_set.program_order;
  Alcotest.(check int) "sums smarq" 2 s.Sched.Working_set.smarq;
  Alcotest.(check bool) "zero is neutral" true
    (Sched.Working_set.add Sched.Working_set.zero a = a)

let test_pp_smoke () =
  let st = run "sixtrack" in
  let s = Format.asprintf "%a" Runtime.Stats.pp st in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions cycles" true
    (String.length s > 100 && contains s "total cycles")

let suite =
  ( "stats",
    [
      case "cycle partition" test_cycle_partition;
      case "commit accounting" test_commit_accounting;
      case "derived metrics" test_derived_metrics;
      case "empty stats are safe" test_empty_stats;
      case "working-set addition" test_working_set_add;
      case "pretty-printer smoke" test_pp_smoke;
    ] )
