examples/alias_detection_demo.mli:
