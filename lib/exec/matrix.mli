(** The experiment matrix: independent [(benchmark, scheme, config)]
    jobs fanned out over a {!Pool} and collected in submission order.

    Each job builds its own program inside the worker domain (program
    construction is cheap and keeps domains from sharing IR), runs the
    full dynamic-optimization driver, and reports the result together
    with its wall-clock cost.  Simulated cycle counts are deterministic
    across [domains] values: a job's outcome depends only on the job. *)

type job = {
  label : string;  (** for reports, e.g. ["ammp/smarq64"] *)
  scheme : Smarq.Scheme.t;
  config : Vliw.Config.t option;
      (** [None] lets {!Smarq.run_program} derive the config from the
          scheme (alias-register count), as the sequential paths did. *)
  fuel : int;
  unroll : int;
  tcache_policy : Tcache.Policy.t;
  tcache_capacity : int option;
  verify : Check.Verifier.mode;
      (** static translation validation mode for the job's driver run *)
  certify : bool;  (** run the static alias certifier in each translation *)
  program : unit -> Ir.Program.t;  (** called in the worker domain *)
}

type outcome = {
  job : job;
  result : Runtime.Driver.result;
  wall_seconds : float;  (** wall-clock cost of this job alone *)
}

val job :
  ?config:Vliw.Config.t ->
  ?fuel:int ->
  ?unroll:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  ?verify:Check.Verifier.mode ->
  ?certify:bool ->
  scheme:Smarq.Scheme.t ->
  label:string ->
  (unit -> Ir.Program.t) ->
  job
(** Defaults: fuel 1e9, no unrolling, unbounded translation cache,
    verification and certification off. *)

val of_bench :
  ?config:Vliw.Config.t ->
  ?fuel:int ->
  ?unroll:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  ?verify:Check.Verifier.mode ->
  ?certify:bool ->
  ?scale:int ->
  scheme:Smarq.Scheme.t ->
  Workload.Specfp.bench ->
  job
(** A job over a suite benchmark at [scale] (default 1), labelled
    ["bench/scheme"]. *)

val run_job : job -> outcome
(** Run one job in the calling domain — the deterministic unit both
    {!run_matrix} and the serve subsystem's matrix client fan out, so
    the two paths are bit-identical by construction. *)

val run_matrix : ?domains:int -> job list -> outcome list
(** Run every job, using up to [domains] domains (default
    {!Pool.default_domains}); outcomes are in job-list order. *)

val total_wall : outcome list -> float
(** Sum of per-job wall clocks (CPU-seconds of simulation, not elapsed
    time when jobs overlapped). *)
