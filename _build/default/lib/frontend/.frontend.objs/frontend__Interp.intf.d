lib/frontend/interp.mli: Hashtbl Hw Ir Vliw
