(** Translation-as-a-service: many guest programs, one SMARQ runtime.

    A server owns a long-running {!Exec.Pool} of worker domains and a
    {!Shards} partition of translation caches.  Clients {!submit}
    requests — each one full dynamic-optimization run of one guest
    program under one scheme, on behalf of a tenant — and {!await} the
    reply on the returned ticket.

    {b Admission control}: at most [queue_limit] requests may be
    accepted-but-unfinished at once; past that, {!submit} returns
    [`Rejected] immediately (no queue entry, no blocking), which is the
    backpressure signal an open-loop client must observe.  Rejections
    are counted separately from errors in the {!report}.

    {b Batching}: accepted requests buffer per tenant and dispatch to
    the pool in groups of [batch] (default 1 = no batching); a partial
    batch is dispatched by {!flush} or {!shutdown}.  A client that
    blocks awaiting a ticket must {!flush} first or the partial batch
    deadlocks against it.

    {b Caching}: a request with [shared_cache = true] runs against the
    tenant's per-worker shard ({!Shards}), so its hot regions stay
    translated across requests; [shared_cache = false] gives the
    run a private cache, reproducing batch-mode behavior exactly.

    {b Fault injection}: a request carrying a {!fault_spec} replays the
    PR-3 fault campaign [(seed + rid, rate)] where [rid] is the
    request's submission sequence number — per-request deterministic,
    and degradation stays local to that request's run (tenant-local by
    construction; see [Runtime.Driver.run]). *)

type fault_spec = {
  fault_seed : int;  (** base seed; each request adds its sequence number *)
  fault_rate : float;
}

type config = {
  domains : int;  (** worker domains in the pool *)
  queue_limit : int;  (** max accepted-but-unfinished requests *)
  batch : int;  (** requests per pool dispatch, per tenant *)
  shard_policy : Tcache.Policy.t;  (** eviction policy of every shard *)
  tenant_budget : int option;
      (** per-shard capacity (scheduled-region instructions): the
          per-tenant eviction budget.  [None] = unbounded. *)
}

val default_config : config
(** 2 domains, queue limit 64, batch 1, LRU shards, unbounded budget. *)

type request = {
  tenant : string;
  job : Exec.Matrix.job;
  shared_cache : bool;
  fault : fault_spec option;
}

type reply = {
  request : request;
  result : (Runtime.Driver.result, exn) Stdlib.result;
      (** [Error] carries the exception the run raised; admission
          rejections never produce a reply at all. *)
  queue_wait_s : float;  (** submit to worker pickup *)
  service_s : float;  (** the run itself *)
  translate_s : float;  (** translation share of service *)
  execute_s : float;  (** [service_s - translate_s] *)
  worker : int;  (** which worker domain ran it *)
  injected : int;  (** faults injected by this request's plan *)
}

type ticket
type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on [queue_limit < 1] or [batch < 1]. *)

val submit : t -> request -> [ `Accepted of ticket | `Rejected ]
(** Never blocks.  Raises [Invalid_argument] after {!shutdown}. *)

val flush : t -> unit
(** Dispatch every partial per-tenant batch now. *)

val await : ticket -> reply
(** Block until the request finishes.  Remember to {!flush} first if
    batching is on. *)

val shutdown : t -> unit
(** Dispatch partial batches, drain every accepted request, join the
    pool.  Idempotent; concurrent callers all block until the single
    drain completes. *)

val translate :
  t ->
  ?jobs:int ->
  ?pipeline:Sched.Pipeline.t ->
  config:Vliw.Config.t ->
  Opt.Optimizer.request list ->
  Exec.Translate.result
(** {!Exec.Translate.replay} on the server's own pool: parallel
    translation shares the long-running worker domains with request
    service rather than nesting a second pool.  [jobs] bounds in-flight
    requests (default: the pool size); artifacts come back in
    submission order.  Raises [Invalid_argument] after {!shutdown}. *)

val invalidate : t -> string -> unit
(** Cross-shard invalidation of a guest label (self-modifying-code
    shootdown).  Call while no request is running. *)

val shards_telemetry : ?tenant:string -> t -> Tcache.Telemetry.t
(** Aggregate shard telemetry, optionally for one shard key (note shard
    tenants are keyed ["tenant|job-label"]). *)

val shard_count : t -> int

val inflight : t -> int
(** Accepted-but-unfinished requests right now. *)

val run_matrix : ?domains:int -> Exec.Matrix.job list -> Exec.Matrix.outcome list
(** {!Exec.Matrix.run_matrix} as a service client: one fresh-cache
    no-fault request per job on a private server, outcomes in job-list
    order, first job exception re-raised.  Results are bit-identical to
    the batch path because workers execute the same
    {!Exec.Matrix.run_job} unit. *)

type report = {
  submitted : int;  (** accepted requests *)
  completed : int;  (** replies with [Ok] *)
  rejected : int;  (** admission rejections (not errors) *)
  errors : int;  (** replies with [Error] *)
  injected_faults : int;
  sim_seconds : float;  (** sum of per-request service time *)
  queue_wait : Runtime.Percentiles.summary;
  service : Runtime.Percentiles.summary;
  translate : Runtime.Percentiles.summary;
  execute : Runtime.Percentiles.summary;
  total : Runtime.Percentiles.summary;  (** queue wait + service *)
}

val report : t -> report
(** A consistent snapshot of the counters and latency summaries. *)

val report_json : report -> string
(** One JSON object (counters plus the five latency summaries, each
    through {!Runtime.Percentiles.summary_json}). *)

val pp_report : Format.formatter -> report -> unit
