(** Efficeon-like bit-mask alias register allocation (Section 2.2).

    Under the mask scheme every protected operation takes a {e named}
    register and every checker carries an explicit bit-mask of the
    registers it must compare against.  Registers are assigned greedily
    in issue order and freed after their last checker issues; the
    narrow encoding (at most 15 registers) is the scheme's documented
    scaling limit. *)

exception Mask_overflow of string
(** No free register (the encoding limit bites); the caller rebuilds
    the region without speculation. *)

val annotate :
  deps:Analysis.Depgraph.t ->
  hazards:Hazards.t ->
  issue_order:(int * Ir.Instr.t) list ->
  ar_count:int ->
  (int * Ir.Annot.t) list
