(** SMARQ — the public facade.

    Re-exports the subsystem libraries under one roof and provides the
    high-level entry points most users want: run a benchmark under an
    alias-detection scheme, compare schemes, and compute speedups. *)

module Ir = Ir
module Hw = Hw
module Vliw = Vliw
module Frontend = Frontend
module Analysis = Analysis
module Sched = Sched
module Opt = Opt
module Runtime = Runtime
module Tcache = Tcache
module Workload = Workload
module Check = Check

(** Named alias-detection schemes for the command line and harness. *)
module Scheme = struct
  type t =
    | Smarq of int  (** ordered queue with n alias registers *)
    | Smarq_no_store_reorder of int
    | Naive_order of int
        (** program-order allocation on the queue (Section 2.4) *)
    | Alat
    | Efficeon
    | None_
    | None_static  (** no hardware, constant-base static analysis only *)

  let to_driver = function
    | Smarq n -> Runtime.Driver.scheme_smarq ~ar_count:n ()
    | Smarq_no_store_reorder n ->
      Runtime.Driver.scheme_smarq_no_store_reorder ~ar_count:n ()
    | Naive_order n -> Runtime.Driver.scheme_naive_order ~ar_count:n ()
    | Alat -> Runtime.Driver.scheme_alat ()
    | Efficeon -> Runtime.Driver.scheme_efficeon ()
    | None_ -> Runtime.Driver.scheme_none ()
    | None_static -> Runtime.Driver.scheme_none_with_analysis ()

  let name = function
    | Smarq n -> Printf.sprintf "smarq%d" n
    | Smarq_no_store_reorder n -> Printf.sprintf "smarq%d-nosr" n
    | Naive_order n -> Printf.sprintf "naive%d" n
    | Alat -> "alat"
    | Efficeon -> "efficeon"
    | None_ -> "none"
    | None_static -> "none+static"

  let of_string s =
    match String.lowercase_ascii s with
    | "alat" | "itanium" -> Alat
    | "efficeon" -> Efficeon
    | "none" | "baseline" -> None_
    | "none+static" | "static" -> None_static
    | s when String.length s > 5 && String.sub s 0 5 = "smarq" ->
      (match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n -> Smarq n
      | None -> invalid_arg (Printf.sprintf "unknown scheme %S" s))
    | "smarq" -> Smarq 64
    | s when String.length s > 5 && String.sub s 0 5 = "naive" ->
      (match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n -> Naive_order n
      | None -> invalid_arg (Printf.sprintf "unknown scheme %S" s))
    | "naive" -> Naive_order 64
    | _ -> invalid_arg (Printf.sprintf "unknown scheme %S" s)

  let all = [ Smarq 64; Smarq 16; Alat; Efficeon; None_ ]
end

(** The VLIW configuration a scheme runs under by default: schemes with
    an alias-register count size the machine's window to match. *)
let config_for = function
  | Scheme.Smarq n | Scheme.Smarq_no_store_reorder n | Scheme.Naive_order n ->
    Vliw.Config.with_alias_registers Vliw.Config.default n
  | Scheme.Alat | Scheme.Efficeon | Scheme.None_ | Scheme.None_static ->
    Vliw.Config.default

let run_program ?config ?fuel ?unroll ?tcache_policy ?tcache_capacity
    ?pipeline ?verify ?capture ?certify ~scheme program =
  let cfg = match config with Some c -> c | None -> config_for scheme in
  Runtime.Driver.run ~config:cfg ?fuel ?unroll ?tcache_policy ?tcache_capacity
    ?pipeline ?verify ?capture ?certify
    ~scheme:(Scheme.to_driver scheme)
    program

let run_benchmark ?config ?fuel ?scale ?tcache_policy ?tcache_capacity
    ?pipeline ?verify ?certify ~scheme name =
  let bench = Workload.Specfp.find name in
  run_program ?config ?fuel ?tcache_policy ?tcache_capacity ?pipeline ?verify
    ?certify ~scheme
    (Workload.Specfp.program ?scale bench)

(** [speedup ~baseline ~improved] is baseline-cycles / improved-cycles
    (> 1 means [improved] is faster). *)
let speedup ~(baseline : Runtime.Stats.t) ~(improved : Runtime.Stats.t) =
  if improved.Runtime.Stats.total_cycles = 0 then 0.0
  else
    float_of_int baseline.Runtime.Stats.total_cycles
    /. float_of_int improved.Runtime.Stats.total_cycles

(** Run one benchmark under several schemes and return
    (scheme name, stats) in order. *)
let compare_schemes ?config ?fuel ?scale ~schemes name =
  List.map
    (fun s ->
      let r = run_benchmark ?config ?fuel ?scale ~scheme:s name in
      (Scheme.name s, r.Runtime.Driver.stats))
    schemes
