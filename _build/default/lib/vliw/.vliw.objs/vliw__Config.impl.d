lib/vliw/config.ml: Cache Format Ir Printf
