lib/hw/access.ml: Format
