test/suite_regionexec.ml: Alcotest Analysis Array Helpers Hw Ir List Opt Sched Vliw Workload
