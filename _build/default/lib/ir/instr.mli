(** Instructions of the optimizer IR.

    The IR is a load/store RISC with explicit memory-operation
    annotations for hardware alias detection, plus the two
    SMARQ-specific instructions of Section 3 of the paper:
    [Rotate] (advance the alias-register queue's [BASE] pointer) and
    [Amov] (move / clear an alias-register's access range).

    Every instruction carries a unique [id] (unique within a region)
    used by the dependence analysis, constraint graph and scheduler. *)

type label = string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Shr

type fbinop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type operand =
  | Reg of Reg.t
  | Imm of int

(** A memory address: [base + displacement] bytes. *)
type addr = {
  base : Reg.t;
  disp : int;
}

type op =
  | Nop
  | Mov of Reg.t * operand  (** dst <- src *)
  | Unop_neg of Reg.t * operand  (** dst <- -src *)
  | Binop of binop * Reg.t * operand * operand
  | Fbinop of fbinop * Reg.t * operand * operand
  | Cmp of cmp * Reg.t * operand * operand  (** dst <- (a cmp b) ? 1 : 0 *)
  | Load of {
      dst : Reg.t;
      addr : addr;
      width : int;  (** bytes accessed, 4 or 8 *)
      annot : Annot.t;
    }
  | Store of {
      src : operand;
      addr : addr;
      width : int;
      annot : Annot.t;
    }
  | Branch of {
      cond : operand;  (** taken iff non-zero *)
      target : label;
    }
  | Jump of label
  | Exit of label  (** leave the translated region towards guest [label] *)
  | Rotate of int  (** advance alias-register [BASE] by [n] *)
  | Amov of {
      src_offset : int;
      dst_offset : int;
    }  (** move access range between alias-register offsets; clears src *)

type t = {
  id : int;
  op : op;
}

val make : id:int -> op -> t

val is_memory : t -> bool
(** Loads and stores; [Rotate]/[Amov] are alias-queue management, not
    memory operations. *)

val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
(** Conditional branches and jumps and region exits. *)

val is_side_exit : t -> bool
(** Conditional branches (superblock side exits). *)

val mem_addr : t -> addr option
val mem_width : t -> int option

val annot : t -> Annot.t
(** [No_annot] for non-memory operations. *)

val with_annot : t -> Annot.t -> t
(** Replace the alias annotation of a memory operation.  Identity on
    non-memory operations. *)

val defs : t -> Reg.t list
(** Registers written. *)

val uses : t -> Reg.t list
(** Registers read (including address bases and store sources). *)

val latency : t -> int
(** Default issue-to-result latency in cycles (loads 3, multiplies 3,
    divides 8, FP 4 except fdiv 12, everything else 1).  The VLIW
    configuration may override these. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_addr : Format.formatter -> addr -> unit
