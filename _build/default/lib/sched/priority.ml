let heights ~body ~hazards ~latency =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (i : Ir.Instr.t) -> Hashtbl.replace by_id i.id i) body;
  let memo = Hashtbl.create 64 in
  let rec height id =
    match Hashtbl.find_opt memo id with
    | Some h -> h
    | None ->
      (* mark to guard against accidental cycles (hard edges are acyclic
         by construction; a cycle here is a bug worth failing loudly) *)
      Hashtbl.replace memo id min_int;
      let lat =
        match Hashtbl.find_opt by_id id with
        | Some i -> latency i
        | None -> 1
      in
      let succ_best =
        List.fold_left
          (fun acc s ->
            let h = height s in
            if h = min_int then
              invalid_arg "Priority.heights: cycle in hard precedence edges"
            else max acc h)
          0
          (Hazards.succs hazards id)
      in
      let h = lat + succ_best in
      Hashtbl.replace memo id h;
      h
  in
  List.iter (fun (i : Ir.Instr.t) -> ignore (height i.id)) body;
  memo
