type t = {
  lo : int;
  hi : int;
}

let make ~addr ~width =
  if width <= 0 then invalid_arg "Access.make: width must be positive";
  { lo = addr; hi = addr + width - 1 }

let overlap a b = a.lo <= b.hi && b.lo <= a.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf { lo; hi } = Format.fprintf ppf "[%d,%d]" lo hi
