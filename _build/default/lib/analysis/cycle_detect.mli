(** Incremental cycle detection for the constraint graph (the paper's
    reference [12], inlined in Figure 13).

    The structure maintains a partial order [T] over instruction ids
    with the invariant: for every constraint edge [X -> Y] currently in
    the graph, [T(X) < T(Y)].  Adding a check-constraint (whose source
    is not yet scheduled, hence has no incoming edges) only requires
    lowering [T(source)]; adding an anti-constraint may create a cycle,
    which the caller breaks by inserting an AMOV instruction. *)

type t

val create : unit -> t

val init_t : t -> int -> int -> int
(** [init_t t id v] initializes (or refreshes) [T id] to [v]; returns
    [v]. *)

val get_t : t -> int -> int
(** Raises [Not_found] for an id never initialized. *)

val set_t : t -> int -> int -> unit

val add_edge : t -> int -> int -> unit
(** Record the edge for reachability queries (caller keeps its own
    richer edge structures too). *)

val remove_edge : t -> int -> int -> unit
(** Remove one occurrence of the edge [x -> y], if present. *)

val remove_edges_from : t -> int -> unit

(** Result of attempting to add an edge [x -> y] under the invariant. *)
type verdict =
  | Ok_already  (** [T x < T y] held; edge added *)
  | Ok_shifted of int list
      (** invariance restored by shifting [T] of the returned set of
          ids (the component reachable from [y]); edge added *)
  | Cycle of int list
      (** [x] is reachable from [y]: adding the edge would close a
          cycle; edge {e not} added; returned set is the reachable
          component *)

val try_add_anti : t -> x:int -> y:int -> verdict

val lower_for_check : t -> x:int -> y:int -> unit
(** For a check-constraint [x -> y] whose [x] has no incoming edges:
    if [T x >= T y], set [T x = T y - 1]; then record the edge. *)

val reachable_from : t -> int -> int list
(** Ids reachable from the given id, itself included. *)
