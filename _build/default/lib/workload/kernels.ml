module I = Ir.Instr

type regs = {
  a : Ir.Reg.t;
  b : Ir.Reg.t;
  c : Ir.Reg.t;
  idx : Ir.Reg.t;
}

let freg n = Ir.Reg.F (n land 31)

let stream bld regs ?(disp0 = 0) ~width ~lanes ~depth () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  for lane = 0 to lanes - 1 do
    let fb = freg (lane * 3) and fc = freg ((lane * 3) + 1) in
    let facc = freg ((lane * 3) + 2) in
    let d = disp0 + (lane * width) in
    emit (I.Load { dst = fb; addr = Builder.addr regs.b d;
                   width; annot = Ir.Annot.none });
    emit (I.Load { dst = fc; addr = Builder.addr regs.c d;
                   width; annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fmul, facc, I.Reg fb, I.Reg fc));
    for _ = 2 to depth do
      emit (I.Fbinop (I.Fadd, facc, I.Reg facc, I.Reg fb))
    done;
    emit (I.Store { src = I.Reg facc; addr = Builder.addr regs.a d;
                    width; annot = Ir.Annot.none })
  done;
  List.rev !ops

let stencil bld regs ?(disp0 = 0) ~width ~taps () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  let acc = freg 20 in
  emit (I.Load { dst = acc; addr = Builder.addr regs.b disp0; width;
                 annot = Ir.Annot.none });
  for k = 1 to taps - 1 do
    let t = freg (20 + (k land 7)) in
    emit (I.Load { dst = t; addr = Builder.addr regs.b (disp0 + (k * width));
                   width; annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fadd, acc, I.Reg acc, I.Reg t))
  done;
  emit (I.Store { src = I.Reg acc; addr = Builder.addr regs.a disp0; width;
                  annot = Ir.Annot.none });
  List.rev !ops

let pointer_chase bld regs ~width ~hops =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  (* r28 walks a linked structure inside region C; each node holds the
     byte offset of the next node, kept in-bounds with a mask *)
  let cursor = Ir.Reg.R 28 and tmp = Ir.Reg.R 27 in
  emit (I.Mov (cursor, I.Reg regs.c));
  for h = 0 to hops - 1 do
    emit (I.Load { dst = tmp; addr = Builder.addr cursor 0; width;
                   annot = Ir.Annot.none });
    emit (I.Binop (I.And, tmp, I.Reg tmp, I.Imm 0xf8));
    emit (I.Binop (I.Add, cursor, I.Reg regs.c, I.Reg tmp));
    emit (I.Store { src = I.Reg tmp; addr = Builder.addr regs.a (h * width);
                    width; annot = Ir.Annot.none })
  done;
  List.rev !ops

let reduction bld regs ?(disp0 = 0) ~width ~terms ~acc () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  for k = 0 to terms - 1 do
    let fb = freg (8 + (k land 3)) and fc = freg (12 + (k land 3)) in
    emit (I.Load { dst = fb; addr = Builder.addr regs.b (disp0 + (k * width));
                   width; annot = Ir.Annot.none });
    emit (I.Load { dst = fc; addr = Builder.addr regs.c (disp0 + (k * width));
                   width; annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fmul, fb, I.Reg fb, I.Reg fc));
    emit (I.Fbinop (I.Fadd, acc, I.Reg acc, I.Reg fb))
  done;
  List.rev !ops

let store_burst bld regs ?(disp0 = 0) ?(lane = 0) ~width ~slow_chain ~stores
    () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  let slow = freg (16 + (lane land 3)) in
  emit (I.Load { dst = slow; addr = Builder.addr regs.b disp0; width;
                 annot = Ir.Annot.none });
  for _ = 1 to slow_chain do
    emit (I.Fbinop (I.Fmul, slow, I.Reg slow, I.Reg slow))
  done;
  (* the slow store comes first in program order... *)
  emit (I.Store { src = I.Reg slow; addr = Builder.addr regs.a disp0; width;
                  annot = Ir.Annot.none });
  (* ...and blocks these cheap stores unless stores may reorder *)
  for k = 0 to stores - 1 do
    let v = freg (20 + (k land 3)) in
    emit (I.Load { dst = v; addr = Builder.addr regs.c (disp0 + (k * width));
                   width; annot = Ir.Annot.none });
    emit (I.Store { src = I.Reg v;
                    addr = Builder.addr regs.b (disp0 + ((k + 1) * width));
                    width; annot = Ir.Annot.none })
  done;
  List.rev !ops

(* Read-modify-write into array A after cross-base stores: the load
   hoists above the store through [b] (advanced under ALAT), and the
   same-location store that follows is benign -- the compiler proves
   the pair ordered -- yet Itanium's blanket store snoop hits the
   advanced load's entry: the canonical false positive of the paper's
   Figure 3.  SMARQ's anti-constraints keep the pair check-free. *)
let rmw bld regs ?(disp0 = 0) ?(chain = 1) ~width ~updates () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  (* a store the RMW loads can speculatively hoist above *)
  emit (I.Store { src = I.Reg (freg 6); addr = Builder.addr regs.b disp0;
                  width; annot = Ir.Annot.none });
  for k = 0 to updates - 1 do
    let v = freg (24 + (k land 3)) in
    let d = disp0 + (k * width) in
    emit (I.Load { dst = v; addr = Builder.addr regs.a d; width;
                   annot = Ir.Annot.none });
    for _ = 1 to chain do
      emit (I.Fbinop (I.Fadd, v, I.Reg v, I.Reg (freg 6)))
    done;
    emit (I.Store { src = I.Reg v; addr = Builder.addr regs.a d; width;
                    annot = Ir.Annot.none })
  done;
  List.rev !ops

let alias_probe bld regs ?(slow = 3) ~width ~period_log2 ~store () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  let cur = Ir.Reg.R 25 and t = Ir.Reg.R 26 in
  (* a slow store to A[0]: its datum needs an FP chain, so a cheap
     access can overtake it under speculation *)
  let slow_reg = freg 28 in
  for _ = 1 to slow do
    emit (I.Fbinop (I.Fmul, slow_reg, I.Reg slow_reg, I.Reg slow_reg))
  done;
  emit (I.Store { src = I.Reg slow_reg; addr = Builder.addr regs.a 0; width;
                  annot = Ir.Annot.none });
  (* the probe access goes through [cur], precomputed by the previous
     iteration, so its address is ready immediately and the scheduler
     hoists it above the slow store.  [cur] equals this iteration's
     A[0] exactly when the masked counter hit stride/(8*width) last
     time, i.e. every 2^period_log2 iterations: a genuine, rare alias
     that only runtime detection can catch. *)
  if store then
    emit (I.Store { src = I.Reg t; addr = Builder.addr cur 0; width;
                    annot = Ir.Annot.none })
  else begin
    let d = freg 30 in
    emit (I.Load { dst = d; addr = Builder.addr cur 0; width;
                   annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fadd, freg 31, I.Reg (freg 31), I.Reg d))
  end;
  (* precompute the next iteration's probe base *)
  let mask = (1 lsl period_log2) - 1 in
  emit (I.Binop (I.And, t, I.Reg regs.idx, I.Imm mask));
  emit (I.Binop (I.Mul, t, I.Reg t, I.Imm (width * 8)));
  emit (I.Binop (I.Add, cur, I.Reg regs.a, I.Reg t));
  List.rev !ops

(* Redundant accesses with speculation windows: the same B element is
   loaded twice around a cross-base store (speculative load-load
   forwarding, EXTENDED-DEPENDENCE 1), and the same A element is
   stored twice around a cross-base load (speculative store
   elimination, EXTENDED-DEPENDENCE 2). *)
let reread bld regs ?(disp0 = 0) ~width ~pairs () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  for k = 0 to pairs - 1 do
    let d = disp0 + (k * width) in
    let v = freg (8 + (k land 3)) and u = freg (12 + (k land 3)) in
    emit (I.Load { dst = v; addr = Builder.addr regs.b d; width;
                   annot = Ir.Annot.none });
    emit (I.Store { src = I.Reg v; addr = Builder.addr regs.a d; width;
                    annot = Ir.Annot.none });
    (* the re-load forwards from the first load, guarded by a check on
       the intervening store through a different base *)
    emit (I.Load { dst = u; addr = Builder.addr regs.b d; width;
                   annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fadd, u, I.Reg u, I.Reg v));
    (* the first store of this pair is overwritten here, guarded by a
       check on the intervening load *)
    emit (I.Load { dst = v; addr = Builder.addr regs.c d; width;
                   annot = Ir.Annot.none });
    emit (I.Store { src = I.Reg u; addr = Builder.addr regs.a d; width;
                    annot = Ir.Annot.none })
  done;
  List.rev !ops

(* Direct (absolute) addressing: base registers materialized from
   immediates inside the block.  Compile-time constant propagation can
   fully disambiguate these accesses -- the one class of aliases a
   fast binary-level static analysis resolves (the paper's related
   work [13]). *)
let direct bld _regs ~region ~width ~pairs () =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  let pa = Ir.Reg.R 23 and pb = Ir.Reg.R 24 in
  for k = 0 to pairs - 1 do
    let off = k * width * 4 in
    emit (I.Mov (pa, I.Imm (region + off)));
    emit (I.Mov (pb, I.Imm (region + off + (width * 2))));
    let v = freg (24 + (k land 3)) in
    emit (I.Store { src = I.Reg v; addr = Builder.addr pa 0; width;
                    annot = Ir.Annot.none });
    emit (I.Load { dst = v; addr = Builder.addr pb 0; width;
                   annot = Ir.Annot.none });
    emit (I.Fbinop (I.Fadd, v, I.Reg v, I.Reg v))
  done;
  List.rev !ops

(* Independent integer work that any scheme can overlap with memory
   latency: models the address arithmetic and loop scalar work real FP
   code carries alongside its memory traffic. *)
let filler bld _regs ~chains ~depth =
  let ops = ref [] in
  let emit op = ops := Builder.instr bld op :: !ops in
  for c = 0 to chains - 1 do
    let reg = Ir.Reg.R (16 + (c land 7)) in
    emit (I.Binop (I.Xor, reg, I.Reg reg, I.Imm (c + 1)));
    for k = 1 to depth - 1 do
      emit (I.Binop (I.Add, reg, I.Reg reg, I.Imm k))
    done
  done;
  List.rev !ops

let bump_bases bld regs ~stride =
  Builder.instrs bld
    [
      I.Binop (I.Add, regs.a, I.Reg regs.a, I.Imm stride);
      I.Binop (I.Add, regs.b, I.Reg regs.b, I.Imm stride);
      I.Binop (I.Add, regs.c, I.Reg regs.c, I.Imm stride);
    ]
