(** Deterministic pseudo-random stream for the fault-injection harness.

    A splitmix64 generator: tiny state, good diffusion, and — the
    property the harness actually needs — fully reproducible from a
    seed, with no dependence on wall clock, [Random]'s global state, or
    self-init.  The same seed therefore replays the same fault
    campaign instruction for instruction. *)

type t

val create : seed:int -> t
(** Any seed is fine, including 0 (the state is pre-scrambled). *)

val copy : t -> t
(** Independent generator continuing from the same point. *)

val next : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
