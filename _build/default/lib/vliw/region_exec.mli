(** Atomic execution of a translated region on the VLIW.

    The executor creates a checkpoint, resets the alias-detection unit,
    then issues the region's bundles in order.  Memory operations feed
    their runtime access range to the detector; a reported violation
    raises an alias exception: the machine rolls back to the checkpoint
    and the outcome names the offending instruction pair so the runtime
    can re-optimize.  A taken side exit commits (the scheduler
    guarantees committed state is exact at every side exit) and leaves
    towards the guest label.  Falling off the end commits and continues
    at the region's final exit.

    Cycle accounting: checkpoint cost + one cycle per bundle (the list
    scheduler already folded latencies and resource limits into bundle
    placement) + rollback penalty on an exception. *)

type outcome =
  | Committed of Ir.Instr.label option
      (** ran to a (side or final) exit; [None] means program end *)
  | Alias_fault of Hw.Detector.violation  (** rolled back *)

type result = {
  outcome : outcome;
  cycles : int;  (** includes cache stall cycles when a cache is given *)
  alias_checks : int;  (** range comparisons performed by the detector *)
}

val run :
  config:Config.t ->
  detector:Hw.Detector.t ->
  machine:Machine.t ->
  ?cache:Cache.t ->
  Ir.Region.t ->
  result
(** Raises [Invalid_argument] on malformed regions (e.g. an alias
    register offset outside the configured window — a software
    allocation bug, which tests treat as fatal). *)
