(** Itanium ALAT-like alias detection (Section 2.3 of the paper).

    Advanced loads insert entries into the Advanced Load Address Table;
    every store automatically checks {e all} live entries without
    naming the registers it must check.  That yields false positives —
    a store may hit an entry whose alias does not endanger any
    optimization — and the table cannot detect aliases between stores,
    so store reordering must be disabled by the optimizer when this
    scheme is in use. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the table capacity (default 32); inserting into a full
    table evicts the oldest entry, which silently loses protection —
    the optimizer avoids this by bounding live advanced loads. *)

val size : t -> int
val detector : t -> Detector.t
val reset : t -> unit
val on_mem : t -> Ir.Instr.t -> Access.t -> (unit, Detector.violation) result
val live_count : t -> int
val checks_performed : t -> int
