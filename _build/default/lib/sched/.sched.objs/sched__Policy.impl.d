lib/sched/policy.ml: Ir Printf
