(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 6).  Run with no arguments for the full
   set, or with a subset of: table1 table2 fig14 fig15 fig16 fig17
   fig18 fig19 micro.  `-j N` bounds the worker domains used to fan the
   benchmark × scheme matrix out in parallel (default: all cores);
   simulated results are identical for every N.

   Absolute numbers come from our synthetic workloads and VLIW timing
   model; the claims under test are the paper's *shapes*: which scheme
   wins, by roughly what factor, and where the costs sit.  Paper
   reference values are printed beside every measured series; see
   EXPERIMENTS.md for the recorded comparison.

   Every experiment's wall clock is appended to bench_timings.json (and
   echoed as a JSON line) so runner/simulator speed regressions are
   measurable run over run. *)

(* BENCH_SCALE overrides the fig15-family workload scale — CI smoke
   runs set it low; the figures themselves need the defaults. *)
let fig15_scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 40)
  | None -> 40

let fig18_scale = 10 * fig15_scale
let fig18_benchmarks = [ "wupwise"; "mesa"; "ammp" ]

(* BENCH_VERIFY=off|sample|all runs the static region verifier inside
   every matrix job — the CI verify-smoke configuration.  Rejections
   show up in the per-experiment JSON counters. *)
let bench_verify =
  match Sys.getenv_opt "BENCH_VERIFY" with
  | Some s ->
    (match Check.Verifier.mode_of_string (String.trim s) with
    | Ok m -> m
    | Error msg ->
      Printf.eprintf "BENCH_VERIFY: %s\n" msg;
      exit 1)
  | None -> Check.Verifier.Off

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let schemes_fig15 =
  [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Smarq 16; Smarq.Scheme.Alat ]

(* per-experiment accounting, folded into bench_timings.json *)
let jobs_this_experiment = ref 0
let sim_seconds_this_experiment = ref 0.0

(* fault/recovery counters summed over the experiment's runs, so
   BENCH_* trajectories can track recovery overhead; all zero unless an
   experiment injects faults *)
let injected_this_experiment = ref 0
let spurious_this_experiment = ref 0
let degraded_this_experiment = ref 0

(* translation-validation counters, nonzero only under BENCH_VERIFY
   (or experiments that verify on their own, like the fault campaign) *)
let verified_this_experiment = ref 0
let rejected_this_experiment = ref 0

let note_fault_stats (st : Runtime.Stats.t) =
  injected_this_experiment :=
    !injected_this_experiment + st.Runtime.Stats.injected_faults;
  spurious_this_experiment :=
    !spurious_this_experiment + st.Runtime.Stats.spurious_rollbacks;
  degraded_this_experiment :=
    !degraded_this_experiment + st.Runtime.Stats.degraded_regions;
  verified_this_experiment :=
    !verified_this_experiment + st.Runtime.Stats.verified_regions;
  rejected_this_experiment :=
    !rejected_this_experiment + st.Runtime.Stats.rejected_regions

let run_matrix ~domains jobs =
  jobs_this_experiment := !jobs_this_experiment + List.length jobs;
  let outcomes = Exec.Matrix.run_matrix ~domains jobs in
  sim_seconds_this_experiment :=
    !sim_seconds_this_experiment +. Exec.Matrix.total_wall outcomes;
  List.iter
    (fun (o : Exec.Matrix.outcome) ->
      note_fault_stats o.Exec.Matrix.result.Runtime.Driver.stats)
    outcomes;
  outcomes

let stats_of (o : Exec.Matrix.outcome) = o.Exec.Matrix.result.Runtime.Driver.stats

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let group, rest = take n [] l in
    group :: chunk n rest

let suite_matrix ~domains ?config ?(scale = fig15_scale) schemes =
  let jobs =
    List.concat_map
      (fun (b : Workload.Specfp.bench) ->
        List.map
          (fun scheme ->
            Exec.Matrix.of_bench ?config ~verify:bench_verify ~scale ~scheme b)
          schemes)
      Workload.Specfp.suite
  in
  chunk (List.length schemes) (run_matrix ~domains jobs)
  |> List.map2 (fun b row -> (b, row)) Workload.Specfp.suite

(* ---- Table 1: qualitative comparison of HW alias detection ---- *)

let table1 ~domains:_ =
  hr "Table 1: comparison between HW alias detection schemes";
  let detectors =
    [
      ("Efficeon", Hw.Efficeon.detector (Hw.Efficeon.create ()));
      ("Itanium", Hw.Alat.detector (Hw.Alat.create ()));
      ("Order-Based", Hw.Queue.detector (Hw.Queue.create ~size:64));
    ]
  in
  Printf.printf "%-24s %-14s %-12s %-14s %s\n" "" "Mechanism" "Scalability"
    "False positive" "Detects store-store";
  List.iter
    (fun (name, (d : Hw.Detector.t)) ->
      let c = d.Hw.Detector.caps in
      Printf.printf "%-24s %-14s %-12s %-14s %s\n" name c.Hw.Detector.scheme
        (if c.Hw.Detector.scalable then "Good" else "Poor")
        (if c.Hw.Detector.false_positives then "Yes" else "No")
        (if c.Hw.Detector.detects_store_store then "Yes" else "No"))
    detectors;
  print_newline ();
  Printf.printf
    "paper: Efficeon bit-mask = poor scaling / no FP / st-st yes;\n\
    \       Itanium ALAT = good scaling / FP yes / st-st no;\n\
    \       order-based = good scaling / no FP / st-st yes  -- matched.\n"

(* ---- Table 2: VLIW architecture parameters ---- *)

let table2 ~domains:_ =
  hr "Table 2: VLIW architecture parameters";
  Format.printf "%a@." Vliw.Config.pp Vliw.Config.default

(* ---- Figure 14: memory operations per superblock ---- *)

let fig14 ~domains =
  hr "Figure 14: average memory operations per superblock";
  Printf.printf "%-10s %s\n" "benchmark" "mem ops / superblock";
  let rows = suite_matrix ~domains ~scale:1 [ Smarq.Scheme.Smarq 64 ] in
  let total = ref 0.0 and n = ref 0 in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      let v = Runtime.Stats.mem_ops_per_superblock (stats_of (List.hd row)) in
      total := !total +. v;
      incr n;
      Printf.printf "%-10s %6.1f\n" b.Workload.Specfp.name v)
    rows;
  Printf.printf "%-10s %6.1f\n" "average" (!total /. float_of_int !n);
  Printf.printf
    "paper: tens of memory operations per superblock, with ammp the\n\
     largest (its big superblocks drive the register-count scaling).\n"

(* ---- Figure 15: speedups of the three schemes over no detection ---- *)

let fig15 ~domains =
  hr "Figure 15: speedup with different alias detection (vs none)";
  Printf.printf "%-10s %9s %9s %9s\n" "benchmark" "SMARQ" "SMARQ16" "Itanium";
  let rows = suite_matrix ~domains (Smarq.Scheme.None_ :: schemes_fig15) in
  let sums = Array.make 3 0.0 in
  let n = ref 0 in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      match List.map (fun o -> (stats_of o).Runtime.Stats.total_cycles) row with
      | base :: rest ->
        let speedups =
          List.map (fun c -> float_of_int base /. float_of_int c) rest
        in
        incr n;
        List.iteri (fun i v -> sums.(i) <- sums.(i) +. log v) speedups;
        (match speedups with
        | [ a; b16; c ] ->
          Printf.printf "%-10s %9.3f %9.3f %9.3f\n" b.Workload.Specfp.name a
            b16 c
        | _ -> ())
      | [] -> ())
    rows;
  let geo i = exp (sums.(i) /. float_of_int !n) in
  Printf.printf "%-10s %9.3f %9.3f %9.3f\n" "average" (geo 0) (geo 1) (geo 2);
  Printf.printf
    "paper: average 1.39 / 1.29 / 1.26; ammp gains ~30%% from 64-vs-16\n\
     registers and ~47%% over the Itanium-like scheme.\n"

(* ---- Figure 16: impact of disabling store reordering ---- *)

let fig16 ~domains =
  hr "Figure 16: impact of disabling store reordering (SMARQ64)";
  Printf.printf "%-10s %10s %12s %9s\n" "benchmark" "with (cyc)"
    "without (cyc)" "impact";
  let rows =
    suite_matrix ~domains
      [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Smarq_no_store_reorder 64 ]
  in
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      match List.map (fun o -> (stats_of o).Runtime.Stats.total_cycles) row with
      | [ c1; c2 ] ->
        let impact = (100.0 *. float_of_int c2 /. float_of_int c1) -. 100.0 in
        sum := !sum +. impact;
        incr n;
        Printf.printf "%-10s %10d %12d %+8.1f%%\n" b.Workload.Specfp.name c1 c2
          impact
      | _ -> ())
    rows;
  Printf.printf "%-10s %10s %12s %+8.1f%%\n" "average" "" ""
    (!sum /. float_of_int !n);
  Printf.printf
    "paper: average +2.6%%, mesa +13%%; ammp slightly negative (its\n\
     reordered stores occasionally alias at runtime and roll back).\n"

(* ---- Figure 17: alias register working set ---- *)

let fig17 ~domains =
  hr "Figure 17: alias register working set (normalized to #mem ops)";
  Printf.printf "%-10s %8s %8s %12s\n" "benchmark" "P-bits" "SMARQ"
    "lower bound";
  let rows = suite_matrix ~domains ~scale:1 [ Smarq.Scheme.Smarq 64 ] in
  let acc = ref Sched.Working_set.zero in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      let ws = (stats_of (List.hd row)).Runtime.Stats.working_set in
      acc := Sched.Working_set.add !acc ws;
      let norm v =
        float_of_int v
        /. float_of_int (max 1 ws.Sched.Working_set.program_order)
      in
      Printf.printf "%-10s %8.2f %8.2f %12.2f\n" b.Workload.Specfp.name
        (norm ws.Sched.Working_set.p_bit_order)
        (norm ws.Sched.Working_set.smarq)
        (norm ws.Sched.Working_set.lower_bound))
    rows;
  let ws = !acc in
  let norm v =
    float_of_int v /. float_of_int (max 1 ws.Sched.Working_set.program_order)
  in
  Printf.printf "%-10s %8.2f %8.2f %12.2f\n" "average"
    (norm ws.Sched.Working_set.p_bit_order)
    (norm ws.Sched.Working_set.smarq)
    (norm ws.Sched.Working_set.lower_bound);
  Printf.printf
    "paper: SMARQ ~0.26 of program-order allocation (74%% reduction),\n\
     ~25%% below P-bit-only allocation, and close to the live-range\n\
     lower bound.\n"

(* ---- Figure 18: optimization overhead ---- *)

let fig18 ~domains =
  hr "Figure 18: optimization overhead (% of execution time)";
  Printf.printf "%-10s %14s %14s\n" "benchmark" "optimization" "scheduling";
  let outcomes =
    run_matrix ~domains
      (List.map
         (fun name ->
           Exec.Matrix.of_bench ~verify:bench_verify ~scale:fig18_scale
             ~scheme:(Smarq.Scheme.Smarq 64) (Workload.Specfp.find name))
         fig18_benchmarks)
  in
  let s1 = ref 0.0 and s2 = ref 0.0 and n = ref 0 in
  List.iter2
    (fun name o ->
      let opt, sched = Runtime.Stats.optimize_fraction (stats_of o) in
      s1 := !s1 +. opt;
      s2 := !s2 +. sched;
      incr n;
      Printf.printf "%-10s %13.3f%% %13.3f%%\n" name (100.0 *. opt)
        (100.0 *. sched))
    fig18_benchmarks outcomes;
  Printf.printf "%-10s %13.3f%% %13.3f%%\n" "average"
    (100.0 *. !s1 /. float_of_int !n)
    (100.0 *. !s2 /. float_of_int !n);
  Printf.printf
    "paper: ~0.05%% overall, about half of it in scheduling.  Overhead\n\
     decays with region reuse; our runs are ~10^4 region executions vs\n\
     SPEC's ~10^8, so the measured fraction sits higher at the same\n\
     per-instruction optimizer cost.\n"

(* ---- Figure 19: constraint and AMOV statistics ---- *)

let fig19 ~domains =
  hr "Figure 19: constraints per memory operation";
  Printf.printf "%-10s %8s %8s %9s %9s\n" "benchmark" "check" "anti"
    "amov(new)" "amov(clr)";
  let rows = suite_matrix ~domains ~scale:1 [ Smarq.Scheme.Smarq 64 ] in
  let tc = ref 0 and ta = ref 0 and tm = ref 0 and tf = ref 0 and tk = ref 0 in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      let st = stats_of (List.hd row) in
      let chk, anti = Runtime.Stats.constraints_per_mem_op st in
      tc := !tc + st.Runtime.Stats.check_constraints;
      ta := !ta + st.Runtime.Stats.anti_constraints;
      tm := !tm + st.Runtime.Stats.superblock_mem_ops;
      tf := !tf + st.Runtime.Stats.amov_fresh;
      tk := !tk + st.Runtime.Stats.amov_clear;
      Printf.printf "%-10s %8.2f %8.2f %9d %9d\n" b.Workload.Specfp.name chk
        anti st.Runtime.Stats.amov_fresh st.Runtime.Stats.amov_clear)
    rows;
  Printf.printf "%-10s %8.2f %8.2f %9d %9d\n" "average"
    (float_of_int !tc /. float_of_int (max 1 !tm))
    (float_of_int !ta /. float_of_int (max 1 !tm))
    !tf !tk;
  Printf.printf
    "paper: ~1.3 check- and ~0.1 anti-constraints per memory operation\n\
     (a very sparse constraint graph); AMOVs are rare and often only\n\
     clear a register rather than take a new one.\n"

(* ---- Bechamel microbenchmarks: optimizer cost, supporting the
   "fast algorithm" claim behind Figure 18 ---- *)

let micro ~domains:_ =
  hr "Microbenchmarks: scheduling + allocation cost (host time)";
  let make_superblock n_mem =
    let params =
      Workload.Genprog.
        {
          n_instrs = n_mem * 2;
          mem_fraction = 0.5;
          store_fraction = 0.4;
          n_bases = 4;
          collide_fraction = 0.0;
          side_exit_every = None;
        }
    in
    fst (Workload.Genprog.superblock ~seed:42 ~params)
  in
  let latency = Vliw.Config.latency Vliw.Config.default in
  let optimize_once sb () =
    let fresh_id = ref 100_000 in
    ignore
      (Opt.Optimizer.optimize
         ~policy:(Sched.Policy.smarq ~ar_count:64)
         ~issue_width:4 ~mem_ports:2 ~latency ~fresh_id sb)
  in
  let tests =
    List.map
      (fun n ->
        let sb = make_superblock n in
        Bechamel.Test.make
          ~name:(Printf.sprintf "optimize %3d-instr superblock" (n * 2))
          (Bechamel.Staged.stage (optimize_once sb)))
      [ 8; 16; 32; 64; 128 ]
  in
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second 0.25)
      ()
  in
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Benchmark.all cfg [ instance ]
      (Bechamel.Test.make_grouped ~name:"optimizer" tests)
  in
  let analyzed = Bechamel.Analyze.all ols instance results in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) analyzed []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols_result) ->
      match Bechamel.Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-44s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-44s (no estimate)\n" name)
    rows;
  Printf.printf
    "allocation itself is a single topological pass; the all-pairs\n\
     dependence scan dominates at large sizes (quadratic), but at real\n\
     superblock sizes (tens of memory operations) one optimization\n\
     costs microseconds -- why the paper's overhead is noise.\n"

(* ---- Ablation: SMARQ vs program-order allocation (Section 2.4/2.5)
   on identical ordered-queue hardware ---- *)

let ablation ~domains =
  hr "Ablation: SMARQ vs straightforward program-order allocation";
  Printf.printf "%-10s %12s %12s %10s %10s %8s %8s\n" "benchmark" "smarq cyc"
    "naive cyc" "smarq chk" "naive chk" "ws(s)" "ws(n)";
  let rows =
    suite_matrix ~domains ~scale:4
      [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Naive_order 64 ]
  in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      match List.map stats_of row with
      | [ ss; ns ] ->
        Printf.printf "%-10s %12d %12d %10d %10d %8d %8d\n"
          b.Workload.Specfp.name ss.Runtime.Stats.total_cycles
          ns.Runtime.Stats.total_cycles ss.Runtime.Stats.alias_checks
          ns.Runtime.Stats.alias_checks
          ss.Runtime.Stats.working_set.Sched.Working_set.smarq
          ns.Runtime.Stats.working_set.Sched.Working_set.smarq
      | _ -> ())
    rows;
  Printf.printf
    "paper (Sections 2.4-2.5): program-order allocation wastes alias\n\
    \     registers (larger working set), performs unnecessary checks (the\n\
    \     energy argument), and cannot support load/store elimination at\n\
    \     all -- SMARQ's constraint-order allocation fixes all three on the\n\
    \     same hardware.\n"

(* ---- Robustness: the Figure 15 ordering with a real memory
   hierarchy instead of a flat load latency ---- *)

let cache_exp ~domains =
  hr "Robustness: scheme ordering with the cache hierarchy enabled";
  let config =
    Vliw.Config.with_cache Vliw.Config.default
      (Some Vliw.Cache.default_config)
  in
  Printf.printf "%-10s %9s %9s %9s\n" "benchmark" "SMARQ" "SMARQ16" "Itanium";
  let rows =
    suite_matrix ~domains ~config ~scale:10
      (Smarq.Scheme.None_ :: schemes_fig15)
  in
  let sums = Array.make 3 0.0 in
  let n = ref 0 in
  List.iter
    (fun ((b : Workload.Specfp.bench), row) ->
      match List.map (fun o -> (stats_of o).Runtime.Stats.total_cycles) row with
      | base :: rest ->
        incr n;
        Printf.printf "%-10s" b.Workload.Specfp.name;
        List.iteri
          (fun i c ->
            let sp = float_of_int base /. float_of_int c in
            sums.(i) <- sums.(i) +. log sp;
            Printf.printf " %9.3f" sp)
          rest;
        print_newline ()
      | [] -> ())
    rows;
  Printf.printf "%-10s" "average";
  Array.iter (fun s -> Printf.printf " %9.3f" (exp (s /. float_of_int !n))) sums;
  print_newline ();
  Printf.printf
    "miss stalls shrink every speedup (latency hiding matters less when\n\
    \     the machine stalls on misses anyway) but the ordering of the three\n\
    \     schemes must survive -- the paper's conclusion is not an artifact\n\
    \     of perfect memory.\n"

(* ---- Ablation: how far does static analysis get without hardware?
   (the related-work [13] question) ---- *)

let static_exp ~domains =
  hr "Ablation: static constant-base disambiguation without hardware";
  (* a direct-addressing-heavy workload where a fast static analysis
     has something to find *)
  let make ~iters () =
    let bld = Workload.Builder.create () in
    let regs =
      Workload.Kernels.
        { a = Ir.Reg.R 1; b = Ir.Reg.R 2; c = Ir.Reg.R 3; idx = Ir.Reg.R 4 }
    in
    Workload.Builder.straight bld "init"
      (Workload.Builder.instrs bld
         [
           Ir.Instr.Mov (regs.Workload.Kernels.a, Ir.Instr.Imm 0x100000);
           Ir.Instr.Mov (regs.Workload.Kernels.b, Ir.Instr.Imm 0x200000);
           Ir.Instr.Mov (regs.Workload.Kernels.c, Ir.Instr.Imm 0x300000);
           Ir.Instr.Mov (regs.Workload.Kernels.idx, Ir.Instr.Imm iters);
         ])
      ~next:"body0";
    Workload.Builder.straight bld "body0"
      (Workload.Kernels.direct bld regs ~region:0x500000 ~width:8 ~pairs:4 ())
      ~next:"body1";
    Workload.Builder.loop_back bld "body1"
      (Workload.Kernels.stream bld regs ~width:8 ~lanes:2 ~depth:3 ()
      @ Workload.Kernels.direct bld regs ~region:0x600000 ~width:8 ~pairs:3 ()
      @ Workload.Kernels.bump_bases bld regs ~stride:256)
      ~counter:regs.Workload.Kernels.idx ~back_to:"body0" ~exit_to:"done"
      ~iters;
    Workload.Builder.add_block bld "done" [] Ir.Block.Halt;
    Workload.Builder.program bld ~entry:"init"
  in
  let schemes =
    [ Smarq.Scheme.None_; Smarq.Scheme.None_static; Smarq.Scheme.Smarq 64 ]
  in
  let outcomes =
    run_matrix ~domains
      (List.map
         (fun s ->
           Exec.Matrix.job ~verify:bench_verify ~scheme:s
             ~label:(Printf.sprintf "static/%s" (Smarq.Scheme.name s))
             (make ~iters:8000))
         schemes)
  in
  Printf.printf "%-14s %12s %9s\n" "scheme" "cycles" "speedup";
  let base = ref 0 in
  List.iter2
    (fun s o ->
      let c = (stats_of o).Runtime.Stats.total_cycles in
      if s = Smarq.Scheme.None_ then base := c;
      Printf.printf "%-14s %12d %9.3f\n" (Smarq.Scheme.name s) c
        (if !base = 0 then 1.0 else float_of_int !base /. float_of_int c))
    schemes outcomes;
  Printf.printf
    "paper (Section 7, its [13]/[14]): fast binary-level alias analysis\n\
    \     resolves only direct accesses; it recovers part of the gap on this\n\
    \     direct-heavy kernel, but hardware detection is still needed for\n\
    \     the dynamic (base-register) majority.\n"

(* ---- Extension: larger regions via loop unrolling (the conclusion's
   "SMARQ is even more promising for larger region and loop level
   optimizations") ---- *)

let unroll_exp ~domains =
  hr "Extension: loop unrolling widens the register-count gap";
  Printf.printf "%-10s %7s %12s %12s %9s %8s\n" "benchmark" "unroll"
    "smarq64 cyc" "smarq16 cyc" "gap" "nonspec16";
  let cells =
    List.concat_map
      (fun name ->
        List.map (fun unroll -> (name, unroll)) [ 1; 2; 3 ])
      [ "wupwise"; "swim" ]
  in
  let jobs =
    List.concat_map
      (fun (name, unroll) ->
        List.map
          (fun scheme ->
            Exec.Matrix.of_bench ~verify:bench_verify ~unroll ~scale:30 ~scheme
              (Workload.Specfp.find name))
          [ Smarq.Scheme.Smarq 64; Smarq.Scheme.Smarq 16 ])
      cells
  in
  List.iter2
    (fun (name, unroll) row ->
      match List.map stats_of row with
      | [ s64; s16 ] ->
        let c64 = s64.Runtime.Stats.region_cycles in
        let c16 = s16.Runtime.Stats.region_cycles in
        let ns16 = s16.Runtime.Stats.nonspec_mode_regions in
        Printf.printf "%-10s %7d %12d %12d %+8.1f%% %8d\n" name unroll c64 c16
          (100.0 *. ((float_of_int c16 /. float_of_int c64) -. 1.0))
          ns16
      | _ -> ())
    cells
    (chunk 2 (run_matrix ~domains jobs));
  Printf.printf
    "larger regions schedule slightly better under 64 registers and\n\
    \     force the 16-register queue into non-speculation mode: the\n\
    \     scalability argument of Sections 2.2/6.1, extrapolated the way the\n\
    \     paper's conclusion suggests.\n"

(* ---- Translation cache pressure: more hot regions than the cache
   can hold, so the eviction policy matters.  Emits one JSON object per
   policy for downstream tooling. ---- *)

let tcache_pressure_program ~loops ~inner ~outer () =
  let bld = Workload.Builder.create () in
  let module I = Ir.Instr in
  let a = Ir.Reg.R 1 and b = Ir.Reg.R 2 in
  let idx = Ir.Reg.R 4 and outer_c = Ir.Reg.R 10 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x10000);
         I.Mov (b, I.Imm 0x20000);
         I.Mov (outer_c, I.Imm outer);
       ])
    ~next:"setup_0";
  for k = 0 to loops - 1 do
    let setup = Printf.sprintf "setup_%d" k in
    let loop = Printf.sprintf "loop_%d" k in
    let next =
      if k = loops - 1 then "outer_latch" else Printf.sprintf "setup_%d" (k + 1)
    in
    Workload.Builder.straight bld setup
      (Workload.Builder.instrs bld [ I.Mov (idx, I.Imm inner) ])
      ~next:loop;
    (* each loop touches its own slice, so every region is distinct *)
    let disp = k * 64 in
    let body =
      Workload.Builder.instrs bld
        [
          I.Load
            { dst = Ir.Reg.F 1; addr = { I.base = a; disp }; width = 8;
              annot = Ir.Annot.none };
          I.Load
            { dst = Ir.Reg.F 2; addr = { I.base = b; disp }; width = 8;
              annot = Ir.Annot.none };
          I.Fbinop (I.Fadd, Ir.Reg.F 3, I.Reg (Ir.Reg.F 1),
                    I.Reg (Ir.Reg.F 2));
          I.Store
            { src = I.Reg (Ir.Reg.F 3); addr = { I.base = a; disp = disp + 8 };
              width = 8; annot = Ir.Annot.none };
          I.Binop (I.Add, Ir.Reg.R 6, I.Reg (Ir.Reg.R 6), I.Imm (k + 1));
        ]
    in
    Workload.Builder.loop_back bld loop body ~counter:idx ~back_to:loop
      ~exit_to:next ~iters:inner
  done;
  Workload.Builder.loop_back bld "outer_latch" [] ~counter:outer_c
    ~back_to:"setup_0" ~exit_to:"done" ~iters:outer;
  Workload.Builder.add_block bld "done" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let tcache_exp ~domains =
  hr "Translation cache: eviction policies under region pressure (JSON)";
  let loops = 8 and inner = 80 and outer = 40 in
  let program = tcache_pressure_program ~loops ~inner ~outer in
  let policy_job ~policy ?capacity () =
    Exec.Matrix.job ~tcache_policy:policy ?tcache_capacity:capacity
      ~verify:bench_verify ~scheme:(Smarq.Scheme.Smarq 64)
      ~label:(Printf.sprintf "tcache/%s" (Smarq.Tcache.Policy.to_string policy))
      program
  in
  let emit policy capacity (st : Runtime.Stats.t) =
    Printf.printf
      "{\"scenario\":\"tcache_pressure\",\"policy\":\"%s\",\"capacity\":%s,\
       \"hot_regions\":%d,\"total_cycles\":%d,\"regions_built\":%d,\
       \"wall_s\":%.6f,\
       \"tcache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"flushes\":%d,\
       \"chain_follows\":%d,\"peak_resident_instrs\":%d}}\n"
      (Smarq.Tcache.Policy.to_string policy)
      (match capacity with Some c -> string_of_int c | None -> "null")
      loops st.Runtime.Stats.total_cycles st.Runtime.Stats.regions_built
      st.Runtime.Stats.wall_seconds
      st.Runtime.Stats.tcache_hits st.Runtime.Stats.tcache_misses
      st.Runtime.Stats.tcache_evictions st.Runtime.Stats.tcache_flushes
      st.Runtime.Stats.tcache_chain_follows
      st.Runtime.Stats.tcache_peak_resident
  in
  (* size the bounded runs off the unbounded footprint: half the full
     resident set forces evictions while any single region still fits *)
  let unbounded =
    match run_matrix ~domains [ policy_job ~policy:Smarq.Tcache.Policy.Unbounded () ] with
    | [ o ] -> stats_of o
    | _ -> assert false
  in
  let capacity = max 1 (unbounded.Runtime.Stats.tcache_peak_resident / 2) in
  emit Smarq.Tcache.Policy.Unbounded None unbounded;
  let bounded_policies =
    [ Smarq.Tcache.Policy.Lru; Smarq.Tcache.Policy.Fifo;
      Smarq.Tcache.Policy.Flush_all ]
  in
  let bounded =
    run_matrix ~domains
      (List.map (fun policy -> policy_job ~policy ~capacity ()) bounded_policies)
  in
  List.iter2
    (fun policy o -> emit policy (Some capacity) (stats_of o))
    bounded_policies bounded;
  Printf.printf
    "the %d hot loops exceed the bounded capacity, so lru/fifo evict and\n\
     re-translate while flush-all drops everything on overflow; unbounded\n\
     is the no-pressure reference.  Chain follows count dispatches that\n\
     skipped the cache lookup entirely.\n"
    loops

(* ---- Translate throughput: the arena fast pipeline vs the seed
   reference pipeline, plus the cores-vs-throughput curve of the
   parallel replay path.  The suite is run once under the driver with
   request capture; every measurement below replays the same captured
   batch, so all sides translate exactly the same regions and the
   artifacts are asserted bit-identical across pipelines and job
   counts.  Writes BENCH_TRANSLATE.json at the repo root. ---- *)

let translate_out_path =
  match Sys.getenv_opt "BENCH_TRANSLATE" with
  | Some p -> p
  | None -> "BENCH_TRANSLATE.json"

let translate_exp ~domains:_ =
  hr "Translate throughput: fast vs reference pipeline, parallel replay";
  let unroll =
    match Sys.getenv_opt "BENCH_TRANSLATE_UNROLL" with
    | Some s -> (try max 8 (int_of_string (String.trim s)) with _ -> 8)
    | None -> 8
  in
  let reps =
    match Sys.getenv_opt "BENCH_TRANSLATE_REPS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
    | None -> 3
  in
  let scheme = Smarq.Scheme.Smarq 64 in
  (* capture once: the driver runs (and executes) each benchmark while
     recording every optimize request it performs *)
  let captured =
    List.map
      (fun (b : Workload.Specfp.bench) ->
        let r, cfg, reqs =
          Exec.Translate.capture_program ~unroll ~verify:bench_verify ~scheme
            (Workload.Specfp.program ~scale:1 b)
        in
        incr jobs_this_experiment;
        sim_seconds_this_experiment :=
          !sim_seconds_this_experiment
          +. r.Runtime.Driver.stats.Runtime.Stats.wall_seconds;
        note_fault_stats r.Runtime.Driver.stats;
        (cfg, reqs))
      Workload.Specfp.suite
  in
  (* one persistent pool serves every parallel point and every rep *)
  let recommended = Exec.Pool.default_domains () in
  let curve_jobs =
    List.sort_uniq Int.compare [ 1; 2; 4; recommended ]
  in
  let max_jobs = List.fold_left max 1 curve_jobs in
  let pool =
    if max_jobs > 1 then Some (Exec.Pool.create ~domains:max_jobs ()) else None
  in
  let replay_suite ~pipeline ~jobs =
    let acc = Runtime.Profile.create () in
    let wall = ref 0.0 in
    let artifacts = ref [] in
    for rep = 1 to reps do
      List.iter
        (fun (cfg, reqs) ->
          let r =
            if jobs = 1 then Exec.Translate.replay ~jobs:1 ~pipeline ~config:cfg reqs
            else Exec.Translate.replay ?pool ~jobs ~pipeline ~config:cfg reqs
          in
          Runtime.Profile.accumulate ~into:acc r.Exec.Translate.profile;
          wall := !wall +. r.Exec.Translate.wall_seconds;
          if rep = 1 then
            artifacts := List.rev_append r.Exec.Translate.artifacts !artifacts)
        captured
    done;
    (acc, !wall, List.rev !artifacts)
  in
  let fast, fast_wall, fast_arts =
    replay_suite ~pipeline:Sched.Pipeline.Fast ~jobs:1
  in
  let slow, _, slow_arts =
    replay_suite ~pipeline:Sched.Pipeline.Reference ~jobs:1
  in
  let identical = ref (List.for_all2 Exec.Translate.equal_artifact fast_arts slow_arts) in
  (* cores-vs-throughput curve: same captured batch, same persistent
     pool, only the job window changes *)
  let curve =
    List.map
      (fun jobs ->
        let p, wall, arts = replay_suite ~pipeline:Sched.Pipeline.Fast ~jobs in
        identical :=
          !identical && List.for_all2 Exec.Translate.equal_artifact fast_arts arts;
        let regions_per_s =
          if wall > 0.0 then float_of_int p.Sched.Profile.regions /. wall
          else 0.0
        in
        (jobs, wall, regions_per_s))
      curve_jobs
  in
  (match pool with Some p -> Exec.Pool.shutdown p | None -> ());
  let row name (p : Runtime.Profile.t) =
    Printf.printf "%-10s %8.3fs %7d regions %8d instrs %10.0f regions/s\n"
      name (Runtime.Profile.total p) p.Sched.Profile.regions
      p.Sched.Profile.instrs
      (Runtime.Profile.regions_per_second p)
  in
  Printf.printf "suite=specfp-kernels unroll=%d reps=%d scheme=%s\n\n" unroll
    reps (Smarq.Scheme.name scheme);
  row "fast" fast;
  row "reference" slow;
  let speedup =
    let ft = Runtime.Profile.total fast in
    if ft > 0.0 then Runtime.Profile.total slow /. ft else 0.0
  in
  Printf.printf "\nper-phase seconds (fast | reference):\n";
  List.iter2
    (fun (name, f) (_, s) -> Printf.printf "  %-9s %9.4f  %9.4f\n" name f s)
    (Runtime.Profile.phases fast)
    (Runtime.Profile.phases slow);
  Printf.printf "\ntranslate speedup (reference / fast): %.2fx\n" speedup;
  let jt1_wall = match curve with (1, w, _) :: _ -> w | _ -> fast_wall in
  Printf.printf
    "\nparallel replay (wall clock, %d worker domains recommended here):\n"
    recommended;
  List.iter
    (fun (jobs, wall, rps) ->
      Printf.printf "  jobs=%-2d %8.3fs wall %10.1f regions/s %6.2fx vs jobs=1\n"
        jobs wall rps
        (if wall > 0.0 then jt1_wall /. wall else 0.0))
    curve;
  Printf.printf "artifacts %s across pipelines and job counts\n"
    (if !identical then "bit-identical" else "DIVERGENT");
  if not !identical then begin
    prerr_endline "translate: replay DIVERGED — aborting";
    exit 1
  end;
  let side (p : Runtime.Profile.t) =
    let fields =
      List.map
        (fun (name, v) -> Printf.sprintf "\"%s_s\":%.6f" name v)
        (Runtime.Profile.phases p)
    in
    Printf.sprintf
      "{%s,\"total_s\":%.6f,\"regions\":%d,\"instrs\":%d,\
       \"regions_per_s\":%.1f,\"instrs_per_s\":%.1f}"
      (String.concat "," fields)
      (Runtime.Profile.total p)
      p.Sched.Profile.regions p.Sched.Profile.instrs
      (Runtime.Profile.regions_per_second p)
      (Runtime.Profile.instrs_per_second p)
  in
  let parallel_json =
    List.map
      (fun (jobs, wall, rps) ->
        Printf.sprintf
          "{\"jobs\":%d,\"wall_s\":%.6f,\"regions_per_s\":%.1f,\
           \"speedup_vs_jobs1\":%.3f}"
          jobs wall rps
          (if wall > 0.0 then jt1_wall /. wall else 0.0))
      curve
    |> String.concat ","
  in
  let json =
    Printf.sprintf
      "{\"experiment\":\"translate\",\"suite\":\"specfp-kernels\",\
       \"scheme\":\"%s\",\"unroll\":%d,\"reps\":%d,\
       \"fast\":%s,\"reference\":%s,\"speedup\":%.3f,\
       \"recommended_domains\":%d,\"identical\":%b,\"parallel\":[%s]}"
      (Smarq.Scheme.name scheme) unroll reps (side fast) (side slow) speedup
      recommended !identical parallel_json
  in
  let oc = open_out translate_out_path in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" translate_out_path;
  Printf.printf
    "the arena-backed builders and heap scheduler replace the seed's\n\
     quadratic, allocation-heavy passes; the parallel rows replay the\n\
     same captured requests over the persistent domain pool (the curve\n\
     is only as good as the cores this host offers).\n"

(* ---- Translation service: throughput and latency percentiles under
   load.  A closed loop measures each domain count's sustainable
   throughput, then an open-loop arrival-rate sweep (0.5x / 1x / 2x of
   that capacity) drives the service below, at, and past saturation —
   the 2x point is where admission control must reject rather than
   queue without bound.  Rejections are counted separately from errors
   throughout.  Writes BENCH_SERVE.json at the repo root. ---- *)

let serve_out_path =
  match Sys.getenv_opt "BENCH_SERVE" with
  | Some p -> p
  | None -> "BENCH_SERVE.json"

let serve_exp ~domains:_ =
  hr "Translation service: throughput and latency under load (JSON)";
  let requests =
    match Sys.getenv_opt "BENCH_SERVE_REQS" with
    | Some s -> (try max 4 (int_of_string (String.trim s)) with _ -> 48)
    | None -> 48
  in
  let tenants = 2 in
  let jobs =
    Array.of_list
      (List.map
         (fun (b : Workload.Specfp.bench) ->
           Exec.Matrix.of_bench ~verify:bench_verify
             ~scheme:(Smarq.Scheme.Smarq 64) b)
         Workload.Specfp.suite)
  in
  let run_point ~domains ~mode =
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.domains;
        queue_limit = 4 * domains;
      }
    in
    let server = Serve.Server.create ~config () in
    let spec =
      {
        Serve.Loadgen.mode;
        requests;
        tenants;
        shared_cache = true;
        fault = None;
        deadline = None;
        jobs;
      }
    in
    let res = Serve.Loadgen.run server spec in
    Serve.Server.shutdown server;
    let r = res.Serve.Loadgen.report in
    jobs_this_experiment := !jobs_this_experiment + r.Serve.Server.completed;
    sim_seconds_this_experiment :=
      !sim_seconds_this_experiment +. r.Serve.Server.sim_seconds;
    injected_this_experiment :=
      !injected_this_experiment + r.Serve.Server.injected_faults;
    res
  in
  let point_json ~domains (res : Serve.Loadgen.result) =
    Printf.sprintf
      "{\"mode\":\"%s\",\"domains\":%d,\"offered_rps\":%s,\
       \"elapsed_s\":%.6f,\"throughput_rps\":%.3f,\"report\":%s}"
      (match res.Serve.Loadgen.offered_rps with
      | Some _ -> "open"
      | None -> "closed")
      domains
      (match res.Serve.Loadgen.offered_rps with
      | Some r -> Printf.sprintf "%.3f" r
      | None -> "null")
      res.Serve.Loadgen.elapsed_s res.Serve.Loadgen.throughput_rps
      (Serve.Server.report_json res.Serve.Loadgen.report)
  in
  let row ~domains (res : Serve.Loadgen.result) =
    let r = res.Serve.Loadgen.report in
    Printf.printf
      "%-6s %2dd %9s %9.2f %5d %5d %4d %8.4f %8.4f %8.4f\n"
      (match res.Serve.Loadgen.offered_rps with
      | Some _ -> "open"
      | None -> "closed")
      domains
      (match res.Serve.Loadgen.offered_rps with
      | Some r -> Printf.sprintf "%.1f" r
      | None -> "-")
      res.Serve.Loadgen.throughput_rps r.Serve.Server.completed
      r.Serve.Server.rejected r.Serve.Server.errors
      r.Serve.Server.total.Runtime.Percentiles.p50
      r.Serve.Server.total.Runtime.Percentiles.p95
      r.Serve.Server.total.Runtime.Percentiles.p99
  in
  Printf.printf "%-6s %3s %9s %9s %5s %5s %4s %8s %8s %8s\n" "mode" "dom"
    "offered" "rps" "done" "rej" "err" "p50(s)" "p95(s)" "p99(s)";
  let points = ref [] in
  let errors = ref 0 in
  List.iter
    (fun domains ->
      let closed =
        run_point ~domains
          ~mode:(Serve.Loadgen.Closed { clients = 2 * domains })
      in
      row ~domains closed;
      points := point_json ~domains closed :: !points;
      errors :=
        !errors + closed.Serve.Loadgen.report.Serve.Server.errors;
      let capacity = max 1.0 closed.Serve.Loadgen.throughput_rps in
      List.iter
        (fun mult ->
          let rate = capacity *. mult in
          let opened =
            run_point ~domains ~mode:(Serve.Loadgen.Open { rate })
          in
          row ~domains opened;
          points := point_json ~domains opened :: !points;
          errors :=
            !errors + opened.Serve.Loadgen.report.Serve.Server.errors)
        [ 0.5; 1.0; 2.0 ])
    [ 1; 2 ];
  let json =
    Printf.sprintf
      "{\"experiment\":\"serve\",\"requests_per_point\":%d,\"tenants\":%d,\
       \"benchmarks\":%d,\"points\":[%s]}"
      requests tenants (Array.length jobs)
      (String.concat "," (List.rev !points))
  in
  let oc = open_out serve_out_path in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" serve_out_path;
  Printf.printf
    "closed loop measures sustainable throughput per domain count; the\n\
     open-loop sweep shows latency climbing toward saturation and the\n\
     2x point shedding load through admission control (rejections, not\n\
     errors).  Tenant shards keep hot regions translated across\n\
     requests.\n";
  if !errors > 0 then
    Printf.printf "WARNING: %d requests failed with errors\n" !errors

(* ---- Sustained soak: minutes of mixed plain/fault/verify/heavy
   traffic with deadlines, retries, per-(tenant, scheme) breakers and
   seeded service-level chaos.  First a small same-seed replay pair
   proves the deterministic core reproduces bit-for-bit, then the long
   run reports tail latency through p99.9, breaker/retry totals and the
   GC memory ceiling.  Writes BENCH_SOAK.json at the repo root;
   BENCH_SOAK / BENCH_SOAK_REQS override path and length. ---- *)

let soak_out_path =
  match Sys.getenv_opt "BENCH_SOAK" with
  | Some p -> p
  | None -> "BENCH_SOAK.json"

let soak_exp ~domains:_ =
  hr "Sustained soak: resilience under chaos (JSON)";
  let requests =
    match Sys.getenv_opt "BENCH_SOAK_REQS" with
    | Some s -> (try max 8 (int_of_string (String.trim s)) with _ -> 480)
    | None -> 480
  in
  let cfg requests =
    { Serve.Soak.default_config with Serve.Soak.requests }
  in
  (* replay pair: the deterministic core must reproduce from the seed *)
  let small = cfg (min requests 48) in
  let a = Serve.Soak.run small in
  let b = Serve.Soak.run small in
  let replay_ok =
    Serve.Soak.deterministic_json a = Serve.Soak.deterministic_json b
  in
  Printf.printf "same-seed replay (x2, %d requests): %s\n"
    small.Serve.Soak.requests
    (if replay_ok then "identical" else "DIVERGED");
  let r = Serve.Soak.run (cfg requests) in
  Format.printf "%a@." Serve.Soak.pp r;
  Format.print_flush ();
  let sr = r.Serve.Soak.server in
  jobs_this_experiment :=
    !jobs_this_experiment + sr.Serve.Server.completed
    + sr.Serve.Server.timed_out + sr.Serve.Server.degraded;
  sim_seconds_this_experiment :=
    !sim_seconds_this_experiment +. sr.Serve.Server.sim_seconds;
  injected_this_experiment :=
    !injected_this_experiment + sr.Serve.Server.injected_faults;
  let oc = open_out soak_out_path in
  Printf.fprintf oc "{\"experiment\":\"soak\",\"replay_identical\":%b,%s\n"
    replay_ok
    (let j = Serve.Soak.report_json r in
     String.sub j 1 (String.length j - 1));
  close_out oc;
  Printf.printf "wrote %s\n" soak_out_path;
  if (not replay_ok) || sr.Serve.Server.errors > 0
     || not (Serve.Soak.fully_resolved r)
  then begin
    Printf.printf
      "WARNING: soak failed (replay %b, errors %d, resolved %b)\n" replay_ok
      sr.Serve.Server.errors
      (Serve.Soak.fully_resolved r);
    exit 1
  end

(* ---- Fault campaign: seeded injection across schemes, every run
   checked against the interpreter oracle.  Emits the same JSON lines
   as `smarq_run fuzz`, so BENCH_* trajectories can track recovery
   overhead next to the performance tables. ---- *)

let faults_exp ~domains:_ =
  hr "Fault injection: recovery ladder under a seeded campaign (JSON)";
  let cfg =
    { Verify.Campaign.default_config with Verify.Campaign.seeds = [ 1; 2 ] }
  in
  let benches =
    List.map Workload.Specfp.find [ "wupwise"; "equake" ]
  in
  let result = Verify.Campaign.run_benches cfg benches in
  List.iter
    (fun (r : Verify.Campaign.run) ->
      print_endline (Verify.Campaign.json_line cfg r);
      note_fault_stats r.Verify.Campaign.entry.Verify.Oracle.stats;
      incr jobs_this_experiment;
      sim_seconds_this_experiment :=
        !sim_seconds_this_experiment
        +. r.Verify.Campaign.entry.Verify.Oracle.stats
             .Runtime.Stats.wall_seconds)
    result.Verify.Campaign.runs;
  Format.printf "%a" Verify.Campaign.pp_summary result;
  if not (Verify.Campaign.ok result) then
    Printf.printf "WARNING: fault campaign diverged from the oracle\n"

(* ---- Static alias certification: the abstract-interpretation
   disambiguator certifies may-alias pairs No_alias, so their
   dependence edges disappear before annotation — fewer queue slots,
   ALAT entries, and mask bits at the same guest state.  Every cell
   runs certify-off and certify-on over the same program at unroll 8
   and diffs the alias-resource statistics; guest state must be
   bit-identical.  Writes BENCH_DISAMB.json at the repo root. ---- *)

let disamb_json_path =
  match Sys.getenv_opt "BENCH_DISAMB" with
  | Some p -> p
  | None -> "BENCH_DISAMB.json"

(* A workload whose speculation pressure is statically refutable: a
   slow store (FP-chained datum) to A[w], overtaken every iteration by
   two early-address probe loads through a masked index — one
   congruence-disjoint (offsets = 0 mod 2w against the store's [w,2w)
   byte range), one range-disjoint (displaced past the masked span).
   Without certification every hoisted probe consumes an alias
   register; the certifier proves all of them [No_alias], so the
   working set collapses.  This is the class of pair a compiler
   disambiguates statically (the paper's Section 2 premise); the
   specfp suite's pressure is dominated by cross-base pairs that no
   sound intra-region analysis can separate. *)
let disamb_probe_program ~iters () =
  let bld = Workload.Builder.create () in
  let module I = Ir.Instr in
  let w = 8 in
  let a = Ir.Reg.R 1 and idx = Ir.Reg.R 4 in
  let cur = Ir.Reg.R 25 and t = Ir.Reg.R 26 in
  let cur2 = Ir.Reg.R 27 and t2 = Ir.Reg.R 28 in
  let slow = Ir.Reg.F 28 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [ I.Mov (a, I.Imm 0x10000); I.Mov (idx, I.Imm iters) ])
    ~next:"loop";
  let body =
    Workload.Builder.instrs bld
      [
        I.Fbinop (I.Fmul, slow, I.Reg slow, I.Reg slow);
        I.Fbinop (I.Fmul, slow, I.Reg slow, I.Reg slow);
        I.Fbinop (I.Fmul, slow, I.Reg slow, I.Reg slow);
        I.Store
          { src = I.Reg slow; addr = { I.base = a; disp = w }; width = w;
            annot = Ir.Annot.none };
        I.Binop (I.And, t, I.Reg idx, I.Imm 127);
        I.Binop (I.Mul, t, I.Reg t, I.Imm (2 * w));
        I.Binop (I.Add, cur, I.Reg a, I.Reg t);
        I.Load
          { dst = Ir.Reg.F 30; addr = { I.base = cur; disp = 0 }; width = w;
            annot = Ir.Annot.none };
        I.Fbinop (I.Fadd, Ir.Reg.F 31, I.Reg (Ir.Reg.F 31),
                  I.Reg (Ir.Reg.F 30));
        I.Binop (I.And, t2, I.Reg idx, I.Imm 127);
        I.Binop (I.Mul, t2, I.Reg t2, I.Imm (2 * w));
        I.Binop (I.Add, cur2, I.Reg a, I.Reg t2);
        I.Load
          { dst = Ir.Reg.F 29; addr = { I.base = cur2; disp = 4096 };
            width = w; annot = Ir.Annot.none };
        I.Fbinop (I.Fadd, Ir.Reg.F 31, I.Reg (Ir.Reg.F 31),
                  I.Reg (Ir.Reg.F 29));
      ]
  in
  Workload.Builder.loop_back bld "loop" body ~counter:idx ~back_to:"loop"
    ~exit_to:"done" ~iters;
  Workload.Builder.add_block bld "done" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let disamb_exp ~domains =
  hr "Static alias certification: resource deltas at unroll 8 (JSON)";
  let unroll = 8 in
  let schemes =
    [
      Smarq.Scheme.Smarq 64;
      Smarq.Scheme.Smarq 16;
      Smarq.Scheme.Alat;
      Smarq.Scheme.Efficeon;
    ]
  in
  let suite_cells =
    List.concat_map
      (fun (b : Workload.Specfp.bench) ->
        List.map
          (fun scheme ->
            ( b.Workload.Specfp.name,
              scheme,
              fun certify ->
                Exec.Matrix.of_bench ~verify:bench_verify ~unroll
                  ~scale:fig15_scale ~certify ~scheme b ))
          schemes)
      Workload.Specfp.suite
  in
  let probe_cells =
    List.map
      (fun scheme ->
        ( "probe",
          scheme,
          fun certify ->
            Exec.Matrix.job ~verify:bench_verify ~unroll ~certify ~scheme
              ~label:(Printf.sprintf "probe/%s" (Smarq.Scheme.name scheme))
              (disamb_probe_program ~iters:(200 * fig15_scale)) ))
      schemes
  in
  let cells = suite_cells @ probe_cells in
  let jobs =
    List.concat_map (fun (_, _, mk) -> [ mk false; mk true ]) cells
  in
  let rows = chunk 2 (run_matrix ~domains jobs) in
  Printf.printf "%-10s %-10s %7s %7s %7s %7s %6s %6s %6s\n" "benchmark"
    "scheme" "ws off" "ws on" "ovf off" "ovf on" "cert" "saved" "fault";
  let lines = ref [] in
  (* per-scheme aggregate resource deltas, for the acceptance gate *)
  let ws_delta = Hashtbl.create 8 and ovf_delta = Hashtbl.create 8 in
  let bump tbl k d = Hashtbl.replace tbl k (d + try Hashtbl.find tbl k with Not_found -> 0) in
  let total_cert = ref 0 and total_fault = ref 0 and mismatches = ref 0 in
  List.iter2
    (fun (bench, scheme, _) row ->
      match row with
      | [ off; on ] ->
        let s_off = stats_of off and s_on = stats_of on in
        let sname = Smarq.Scheme.name scheme in
        if
          not
            (Vliw.Machine.equal_guest_state
               off.Exec.Matrix.result.Runtime.Driver.machine
               on.Exec.Matrix.result.Runtime.Driver.machine)
        then begin
          incr mismatches;
          Printf.printf "  GUEST STATE MISMATCH: %s/%s\n" bench sname
        end;
        let ws (st : Runtime.Stats.t) =
          st.Runtime.Stats.working_set.Sched.Working_set.smarq
        in
        bump ws_delta sname (ws s_off - ws s_on);
        bump ovf_delta sname
          (s_off.Runtime.Stats.overflow_fallbacks
          - s_on.Runtime.Stats.overflow_fallbacks);
        total_cert := !total_cert + s_on.Runtime.Stats.certified_pairs;
        total_fault :=
          !total_fault + s_on.Runtime.Stats.certified_alias_faults;
        Printf.printf "%-10s %-10s %7d %7d %7d %7d %6d %6d %6d\n" bench sname
          (ws s_off) (ws s_on) s_off.Runtime.Stats.overflow_fallbacks
          s_on.Runtime.Stats.overflow_fallbacks
          s_on.Runtime.Stats.certified_pairs
          s_on.Runtime.Stats.alias_regs_saved
          s_on.Runtime.Stats.certified_alias_faults;
        let line =
          Printf.sprintf
            "{\"bench\":\"%s\",\"scheme\":\"%s\",\"unroll\":%d,\
             \"certified_pairs\":%d,\"alias_regs_saved\":%d,\
             \"certified_alias_faults\":%d,\"state_identical\":%b,\
             \"working_set_off\":%d,\"working_set_on\":%d,\
             \"overflow_off\":%d,\"overflow_on\":%d,\
             \"nonspec_off\":%d,\"nonspec_on\":%d,\
             \"dropped_edges_off\":%d,\"dropped_edges_on\":%d,\
             \"p_bits_off\":%d,\"p_bits_on\":%d,\
             \"c_bits_off\":%d,\"c_bits_on\":%d,\
             \"cycles_off\":%d,\"cycles_on\":%d}"
            bench sname unroll s_on.Runtime.Stats.certified_pairs
            s_on.Runtime.Stats.alias_regs_saved
            s_on.Runtime.Stats.certified_alias_faults
            (Vliw.Machine.equal_guest_state
               off.Exec.Matrix.result.Runtime.Driver.machine
               on.Exec.Matrix.result.Runtime.Driver.machine)
            (ws s_off) (ws s_on) s_off.Runtime.Stats.overflow_fallbacks
            s_on.Runtime.Stats.overflow_fallbacks
            s_off.Runtime.Stats.nonspec_mode_regions
            s_on.Runtime.Stats.nonspec_mode_regions
            s_off.Runtime.Stats.dropped_edges s_on.Runtime.Stats.dropped_edges
            s_off.Runtime.Stats.p_bits s_on.Runtime.Stats.p_bits
            s_off.Runtime.Stats.c_bits s_on.Runtime.Stats.c_bits
            s_off.Runtime.Stats.total_cycles s_on.Runtime.Stats.total_cycles
        in
        lines := line :: !lines
      | _ -> ())
    cells rows;
  let improved =
    List.filter
      (fun scheme ->
        let k = Smarq.Scheme.name scheme in
        let d tbl = try Hashtbl.find tbl k with Not_found -> 0 in
        d ws_delta > 0 || d ovf_delta > 0)
      schemes
  in
  Printf.printf
    "%d pairs certified; schemes with a reduced working set or overflow \
     count: %s\n"
    !total_cert
    (String.concat ", " (List.map Smarq.Scheme.name improved));
  let oc = open_out disamb_json_path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !lines));
  output_string oc "\n]\n";
  close_out oc;
  let fail msg =
    Printf.printf "FAILED: %s\n" msg;
    exit 1
  in
  if !mismatches > 0 then
    fail "certification changed guest state (soundness bug)";
  if !total_fault > 0 then
    fail "runtime alias fault on a certified pair (soundness bug)";
  if !total_cert = 0 then fail "no pair certified at unroll 8";
  if List.length improved < 2 then
    fail "expected a resource reduction on at least 2 schemes"

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("ablation", ablation);
    ("cache", cache_exp);
    ("static", static_exp);
    ("unroll", unroll_exp);
    ("tcache", tcache_exp);
    ("translate", translate_exp);
    ("serve", serve_exp);
    ("soak", soak_exp);
    ("faults", faults_exp);
    ("disamb", disamb_exp);
    ("micro", micro);
  ]

let timings_path =
  match Sys.getenv_opt "BENCH_TIMINGS" with
  | Some p -> p
  | None -> "bench_timings.json"

let () =
  let rec parse names domains = function
    | [] -> (List.rev names, domains)
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 1 -> parse names d rest
      | _ ->
        Printf.eprintf "-j expects a positive integer, got %S\n" n;
        exit 1)
    | name :: rest -> parse (name :: names) domains rest
  in
  let names, domains =
    match Array.to_list Sys.argv with
    | _ :: args -> parse [] (Exec.Pool.default_domains ()) args
    | [] -> ([], Exec.Pool.default_domains ())
  in
  let requested = if names = [] then List.map fst experiments else names in
  let timings = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some fn ->
        jobs_this_experiment := 0;
        sim_seconds_this_experiment := 0.0;
        injected_this_experiment := 0;
        spurious_this_experiment := 0;
        degraded_this_experiment := 0;
        verified_this_experiment := 0;
        rejected_this_experiment := 0;
        let t0 = Unix.gettimeofday () in
        fn ~domains;
        let wall = Unix.gettimeofday () -. t0 in
        let line =
          Printf.sprintf
            "{\"experiment\":\"%s\",\"wall_s\":%.3f,\"sim_s\":%.3f,\
             \"jobs\":%d,\"domains\":%d,\"injected_faults\":%d,\
             \"spurious_rollbacks\":%d,\"degraded_regions\":%d,\
             \"verified_regions\":%d,\"rejected_regions\":%d}"
            name wall !sim_seconds_this_experiment !jobs_this_experiment
            domains !injected_this_experiment !spurious_this_experiment
            !degraded_this_experiment !verified_this_experiment
            !rejected_this_experiment
        in
        print_endline line;
        timings := line :: !timings
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  let oc = open_out timings_path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !timings));
  output_string oc "\n]\n";
  close_out oc
