test/suite_constprop.ml: Alcotest Analysis Frontend Hashtbl Helpers Ir List Opt Runtime Sched Smarq Vliw Workload
