lib/sched/priority.mli: Hashtbl Hazards Ir
