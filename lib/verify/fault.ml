type kind =
  | Spurious
  | Repeat_pair
  | Storm
  | Tcache_invalidate
  | Tcache_flush

type counters = {
  mutable spurious : int;
  mutable repeat_pair : int;
  mutable storm : int;
  mutable tcache_invalidate : int;
  mutable tcache_flush : int;
}

type mode =
  | Random
  | Forced_storm

type plan = {
  prng : Prng.t;
  seed : int;
  rate : float;
  storm_length : int;
  mode : mode;
  counters : counters;
  mutable total : int;
  mutable storm_left : int;
  mutable sticky_pair : (int * int) option;
      (* the pair Repeat_pair and Storm keep re-reporting; picked from
         real executed instruction ids at first use *)
  (* per-region-execution injection state, rolled at detector reset *)
  mutable pending : kind option;
  mutable target : int;
  mutable mem_index : int;
  mutable seen : int list;
  mutable last_violation : Hw.Detector.violation option;
}

let make ~seed ~rate ~storm_length ~mode =
  {
    prng = Prng.create ~seed;
    seed;
    rate = Float.max 0.0 (Float.min 1.0 rate);
    storm_length = max 2 storm_length;
    mode;
    counters =
      {
        spurious = 0;
        repeat_pair = 0;
        storm = 0;
        tcache_invalidate = 0;
        tcache_flush = 0;
      };
    total = 0;
    (* a forced storm is armed from the first region execution *)
    storm_left = (match mode with Forced_storm -> max 2 storm_length | Random -> 0);
    sticky_pair = None;
    pending = None;
    target = 0;
    mem_index = 0;
    seen = [];
    last_violation = None;
  }

let plan ?(storm_length = 16) ~seed ~rate () =
  make ~seed ~rate ~storm_length ~mode:Random

let forced_storm ?(length = max_int) ~seed () =
  make ~seed ~rate:1.0 ~storm_length:length ~mode:Forced_storm

let seed p = p.seed
let rate p = p.rate
let total_injected p = p.total
let counters p = p.counters

(* Region entry (detector reset): decide whether, what and where to
   inject during the coming region execution. *)
let decide_region p =
  p.mem_index <- 0;
  p.seen <- [];
  if p.storm_left > 0 then begin
    p.storm_left <- p.storm_left - 1;
    p.pending <- Some Storm;
    (* storms hit the second memory operation, so the sticky pair gets
       a genuine (earlier setter, later checker) id pair and the pin
       rung pins two distinct operations *)
    p.target <- 1
  end
  else
    match p.mode with
    | Forced_storm -> p.pending <- None  (* the one storm has run dry *)
    | Random ->
      if Prng.float p.prng < p.rate then begin
        let k =
          match Prng.int p.prng 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 -> Spurious
          | 6 | 7 | 8 -> Repeat_pair
          | _ -> Storm
        in
        if k = Storm then p.storm_left <- p.storm_length - 1;
        p.pending <- Some k;
        p.target <- Prng.int p.prng 8
      end
      else p.pending <- None

let count p k =
  p.total <- p.total + 1;
  match k with
  | Spurious -> p.counters.spurious <- p.counters.spurious + 1
  | Repeat_pair -> p.counters.repeat_pair <- p.counters.repeat_pair + 1
  | Storm -> p.counters.storm <- p.counters.storm + 1
  | Tcache_invalidate ->
    p.counters.tcache_invalidate <- p.counters.tcache_invalidate + 1
  | Tcache_flush -> p.counters.tcache_flush <- p.counters.tcache_flush + 1

let inject p kind (i : Ir.Instr.t) =
  let fresh_pair () =
    let checker = i.Ir.Instr.id in
    let setter =
      match p.seen with
      | [] -> checker
      | l -> List.nth l (Prng.int p.prng (List.length l))
    in
    (setter, checker)
  in
  let setter, checker =
    match kind with
    | Spurious -> fresh_pair ()
    | Repeat_pair | Storm ->
      (match p.sticky_pair with
      | Some pr -> pr
      | None ->
        let pr = fresh_pair () in
        p.sticky_pair <- Some pr;
        pr)
    | Tcache_invalidate | Tcache_flush -> assert false
  in
  count p kind;
  let v = Hw.Detector.{ checker; setter; false_positive_prone = true } in
  p.last_violation <- Some v;
  v

let wrap p (d : Hw.Detector.t) =
  Hw.Detector.wrap
    ~name:(d.Hw.Detector.name ^ "+faults")
    ~reset:(fun () -> decide_region p)
    ~on_mem:(fun next i range ->
      match next i range with
      | Error _ as real ->
        (* a genuine violation: never claimed as injected *)
        p.last_violation <- None;
        real
      | Ok () ->
        let idx = p.mem_index in
        p.mem_index <- idx + 1;
        (match p.pending with
        | Some kind when idx = p.target ->
          p.pending <- None;
          Error (inject p kind i)
        | _ ->
          p.seen <- i.Ir.Instr.id :: p.seen;
          Ok ()))
    d

let before_dispatch p _label =
  match p.mode with
  | Forced_storm -> Runtime.Driver.Keep
  | Random ->
    if p.rate > 0.0 && Prng.float p.prng < p.rate /. 8.0 then
      if Prng.int p.prng 4 = 0 then begin
        count p Tcache_flush;
        Runtime.Driver.Flush
      end
      else begin
        count p Tcache_invalidate;
        Runtime.Driver.Invalidate
      end
    else Runtime.Driver.Keep

let hooks p =
  Runtime.Driver.
    {
      before_dispatch = before_dispatch p;
      is_injected =
        (fun v -> match p.last_violation with Some w -> w == v | None -> false);
      injected_count = (fun () -> p.total);
      deadline = (fun () -> false);
    }

let pp_counters ppf c =
  Format.fprintf ppf
    "spurious %d, repeat-pair %d, storm %d, tcache invalidate %d, tcache \
     flush %d"
    c.spurious c.repeat_pair c.storm c.tcache_invalidate c.tcache_flush
