(** Aggregate per-phase translation profile for a driver run.

    A thin view over {!Sched.Profile}: the driver owns one collector,
    threads it through every {!Opt.Optimizer.optimize} call (initial
    builds and re-optimizations alike), and surfaces it in
    {!Runtime.Stats}.  All timers are host wall-clock seconds —
    non-deterministic, so run-equality comparisons must zero them out,
    like {!Runtime.Stats.wall_seconds}. *)

type t = Sched.Profile.t

val create : unit -> t
val accumulate : into:t -> t -> unit
val reset : t -> unit

val total : t -> float
(** Sum of all phase timers. *)

val regions_per_second : t -> float
val instrs_per_second : t -> float

val phases : t -> (string * float) list
(** [(phase name, seconds)] in pipeline order — the benchmark's JSON
    fields. *)

val pp : Format.formatter -> t -> unit
(** Prints nothing when no time was recorded. *)
