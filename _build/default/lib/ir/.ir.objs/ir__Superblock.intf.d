lib/ir/superblock.mli: Format Hashtbl Instr Reg
