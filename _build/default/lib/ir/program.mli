(** Whole guest programs: a control-flow graph of basic blocks. *)

type t = {
  entry : Instr.label;
  blocks : (Instr.label, Block.t) Hashtbl.t;
}

val make : entry:Instr.label -> Block.t list -> t
(** Raises [Invalid_argument] on duplicate labels, a missing entry
    block, or a branch to an unknown label. *)

val block : t -> Instr.label -> Block.t
(** Raises [Not_found] for an unknown label. *)

val labels : t -> Instr.label list
(** All labels, in an unspecified but deterministic order. *)

val blocks : t -> Block.t list
val instr_count : t -> int

val max_instr_id : t -> int
(** Largest instruction [id] appearing in the program; fresh ids for
    optimizer-inserted instructions start above this. *)

val validate : t -> (unit, string) result
(** Structural checks: every successor label resolves, entry exists,
    bodies contain no branch/region-only instructions. *)

val pp : Format.formatter -> t -> unit
