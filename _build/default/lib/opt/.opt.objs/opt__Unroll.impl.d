lib/opt/unroll.ml: Hashtbl Ir List String
