let annotate ~sb ~deps ~hazards ~issue_order =
  ignore sb;
  let issue_pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (_, (i : Ir.Instr.t)) -> Hashtbl.replace issue_pos i.id idx)
    issue_order;
  let pos id = Option.value (Hashtbl.find_opt issue_pos id) ~default:max_int in
  let advanced = Hashtbl.create 16 in
  (* dropped (store, load) pairs where the load really moved above *)
  List.iter
    (fun (first, second) ->
      if pos second < pos first then Hashtbl.replace advanced second ())
    Hazards.(hazards.dropped);
  (* forwarding sources: the [second] of an extended dependence *)
  List.iter
    (fun (e : Analysis.Depgraph.edge) ->
      match e.kind with
      | Analysis.Depgraph.Extended -> Hashtbl.replace advanced e.second ()
      | Analysis.Depgraph.Real -> ())
    (Analysis.Depgraph.edges deps);
  List.filter_map
    (fun (_, (i : Ir.Instr.t)) ->
      if Ir.Instr.is_load i && Hashtbl.mem advanced i.id then
        Some (i.id, Ir.Annot.alat ~advanced:true)
      else if Ir.Instr.is_store i then
        Some (i.id, Ir.Annot.alat ~advanced:false)
      else None)
    issue_order
