type t = {
  mutable alias_s : float;
  mutable depgraph_s : float;
  mutable hazards_s : float;
  mutable alloc_s : float;
  mutable sched_s : float;
  mutable emit_s : float;
  mutable regions : int;
  mutable instrs : int;
}

let create () =
  {
    alias_s = 0.0;
    depgraph_s = 0.0;
    hazards_s = 0.0;
    alloc_s = 0.0;
    sched_s = 0.0;
    emit_s = 0.0;
    regions = 0;
    instrs = 0;
  }

let now = Unix.gettimeofday

let time profile set f =
  match profile with
  | None -> f ()
  | Some p ->
    let t0 = now () in
    let r = f () in
    set p (now () -. t0);
    r

let add_alias p d = p.alias_s <- p.alias_s +. d
let add_depgraph p d = p.depgraph_s <- p.depgraph_s +. d
let add_hazards p d = p.hazards_s <- p.hazards_s +. d
let add_alloc p d = p.alloc_s <- p.alloc_s +. d
let add_sched p d = p.sched_s <- p.sched_s +. d
let add_emit p d = p.emit_s <- p.emit_s +. d

let note_region p ~instrs =
  p.regions <- p.regions + 1;
  p.instrs <- p.instrs + instrs

let total p =
  p.alias_s +. p.depgraph_s +. p.hazards_s +. p.alloc_s +. p.sched_s
  +. p.emit_s

let accumulate ~into p =
  into.alias_s <- into.alias_s +. p.alias_s;
  into.depgraph_s <- into.depgraph_s +. p.depgraph_s;
  into.hazards_s <- into.hazards_s +. p.hazards_s;
  into.alloc_s <- into.alloc_s +. p.alloc_s;
  into.sched_s <- into.sched_s +. p.sched_s;
  into.emit_s <- into.emit_s +. p.emit_s;
  into.regions <- into.regions + p.regions;
  into.instrs <- into.instrs + p.instrs

let reset p =
  p.alias_s <- 0.0;
  p.depgraph_s <- 0.0;
  p.hazards_s <- 0.0;
  p.alloc_s <- 0.0;
  p.sched_s <- 0.0;
  p.emit_s <- 0.0;
  p.regions <- 0;
  p.instrs <- 0
