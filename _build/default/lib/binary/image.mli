(** Guest binary images.

    The paper's system consumes x86 binaries; ours consumes images in a
    simple fixed-width format so the "binary" in dynamic binary
    translation is real: programs are assembled to bytes, shipped, and
    the frontend disassembles them back into a CFG with no side-channel
    metadata (in particular, no branch-probability hints — the runtime
    must profile edges itself).

    Layout: a 16-byte header (magic, version, entry instruction index,
    instruction count) followed by [count] 16-byte instruction records.
    Branch targets are instruction indices. *)

type t

val magic : int32
val header_bytes : int
val record_bytes : int

val create : entry_index:int -> count:int -> t
val of_bytes : bytes -> t
(** Raises [Invalid_argument] on bad magic, truncated input, or an
    entry index out of range. *)

val to_bytes : t -> bytes
val entry_index : t -> int
val count : t -> int

val set_record : t -> int -> bytes -> unit
(** [set_record t i record] stores the 16-byte record for instruction
    [i].  Raises [Invalid_argument] on wrong size or index. *)

val get_record : t -> int -> bytes
val size_bytes : t -> int
