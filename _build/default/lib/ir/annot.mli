(** Alias-detection annotations carried by memory operations.

    The dynamic optimizer decorates each speculated memory operation
    with scheme-specific metadata that the hardware alias-detection unit
    consumes at execution time:

    - {b Queue} (order-based, SMARQ): an alias-register {e offset}
      relative to the rotating [BASE] pointer, plus the P (protect /
      set) and C (check) bits of Section 3.1 of the paper.
    - {b Mask} (Efficeon-like): an optional register to set and a
      bit-mask of registers to check.
    - {b Alat} (Itanium-like): whether the operation is an advanced
      load (sets an ALAT entry) and/or must be checked against the
      table.  Stores always check every entry; that behaviour lives in
      the hardware model, not in the annotation. *)

type queue = {
  offset : int;  (** alias-register offset relative to current [BASE] *)
  p : bool;  (** protect bit: the operation sets its alias register *)
  c : bool;  (** check bit: the operation checks earlier registers *)
}

type mask = {
  set_index : int option;  (** alias register set by this operation *)
  check_mask : int;  (** bit-mask of alias registers to check *)
}

type alat = {
  advanced : bool;  (** sets an ALAT entry (like [ld.a]) *)
}

type t =
  | No_annot
  | Queue of queue
  | Mask of mask
  | Alat of alat

val none : t
val queue : offset:int -> p:bool -> c:bool -> t
val mask : set_index:int option -> check_mask:int -> t
val alat : advanced:bool -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
