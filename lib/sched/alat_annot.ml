exception Alat_overflow of string

let annotate ~sb ~deps ~hazards ~issue_order ~ar_count =
  ignore sb;
  let issue_pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (_, (i : Ir.Instr.t)) -> Hashtbl.replace issue_pos i.id idx)
    issue_order;
  let pos id = Option.value (Hashtbl.find_opt issue_pos id) ~default:max_int in
  let advanced = Hashtbl.create 16 in
  (* dropped (store, load) pairs where the load really moved above *)
  List.iter
    (fun (first, second) ->
      if pos second < pos first then Hashtbl.replace advanced second ())
    Hazards.(hazards.dropped);
  (* forwarding sources: the [second] of an extended dependence *)
  Analysis.Depgraph.iter_edges deps
    (fun ~first:_ ~second ~kind ~strength:_ ->
      match kind with
      | Analysis.Depgraph.Extended -> Hashtbl.replace advanced second ()
      | Analysis.Depgraph.Real -> ());
  let annots =
    List.filter_map
      (fun (_, (i : Ir.Instr.t)) ->
        if Ir.Instr.is_load i && Hashtbl.mem advanced i.id then
          Some (i.id, Ir.Annot.alat ~advanced:true)
        else if Ir.Instr.is_store i then
          Some (i.id, Ir.Annot.alat ~advanced:false)
        else None)
      issue_order
  in
  (* The ALAT holds [ar_count] entries and evicts the oldest on
     overflow — an evicted advanced load silently loses its protection
     (the modeled hardware, unlike Itanium's chk.a, cannot fail
     conservatively on a missing entry).  A total population above
     [ar_count] is fine as long as each entry survives until the store
     it guards snoops the table: the precise bound is per protection
     window.  Count the advanced loads issued strictly between a
     reordered load and the store it was hoisted above; if [ar_count]
     or more fit inside that window, FIFO eviction can drop the entry
     before the check and the optimizer must fall back. *)
  let flat = Array.of_list (List.map snd issue_order) in
  let window_overflow ~ps ~pf =
    let inserted = ref 0 in
    for p = ps + 1 to pf - 1 do
      let j = flat.(p) in
      if Ir.Instr.is_load j && Hashtbl.mem advanced j.id then incr inserted
    done;
    if !inserted >= ar_count then
      raise
        (Alat_overflow
           (Printf.sprintf
              "%d advanced loads inside a protection window evict the \
               entry before its check (%d-entry ALAT)"
              !inserted ar_count))
  in
  List.iter
    (fun (first, second) ->
      let pf = pos first and ps = pos second in
      if ps < pf && pf <> max_int then window_overflow ~ps ~pf)
    Hazards.(hazards.dropped);
  Analysis.Depgraph.iter_edges deps
    (fun ~first ~second ~kind:_ ~strength:_ ->
      let pf = pos first and ps = pos second in
      if ps < pf && pf <> max_int then window_overflow ~ps ~pf);
  annots
