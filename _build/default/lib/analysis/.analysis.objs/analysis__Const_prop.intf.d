lib/analysis/const_prop.mli: Ir
