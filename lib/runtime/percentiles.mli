(** Exact sample quantiles (p50/p95/p99/p99.9) for latency reporting.

    The one reusable home for percentile math: the serve subsystem and
    the bench harness both summarize request latencies through this
    module rather than hand-rolling sort-and-index.  Samples are stored
    exactly (a doubling array), so every statistic is deterministic for
    a given [add] sequence; the sorted view is computed lazily and
    cached between queries. *)

type t

val create : unit -> t
val add : t -> float -> unit

val count : t -> int
val total : t -> float
(** Sum of all samples — e.g. aggregate simulated seconds. *)

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t q] with [q] in [0, 1] is the nearest-rank quantile:
    the smallest sample with at least [q * count] samples at or below
    it ([q = 0.5] the median, [q = 1.0] the maximum).  0 when empty;
    raises [Invalid_argument] outside [0, 1]. *)

val min_value : t -> float
val max_value : t -> float

val merge : into:t -> t -> unit
(** Fold every sample of [t] into [into]. *)

type summary = {
  n : int;
  mean_v : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

val summary : t -> summary

val summary_json : unit:string -> summary -> string
(** One JSON object; [unit] suffixes the field names (["s"] gives
    [mean_s], [p50_s], ...). *)

val pp_summary : Format.formatter -> summary -> unit
