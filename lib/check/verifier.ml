module C = Analysis.Constraints

type rule =
  | Def_before_use
  | Branch_order
  | Exit_crossed
  | Sched_hazard
  | Sched_width
  | Sched_complete
  | Dropped_illegal
  | Hard_reordered
  | Nospec_reordered
  | Annot_scheme
  | Annot_alloc_sync
  | Alloc_constraint
  | Alloc_window
  | Alloc_cycle
  | Queue_uncovered
  | Queue_base_sync
  | Queue_rotate
  | Amov_bounds
  | Alat_unmarked
  | Alat_capacity
  | Mask_uncovered
  | Mask_clobbered
  | Mask_bounds
  | Cert_endpoints
  | Cert_derivation
  | Cert_separation
  | Cert_edge_kept
  | Cert_dep_missing
  | Cert_region_sync

let rule_name = function
  | Def_before_use -> "def_before_use"
  | Branch_order -> "branch_order"
  | Exit_crossed -> "exit_crossed"
  | Sched_hazard -> "sched_hazard"
  | Sched_width -> "sched_width"
  | Sched_complete -> "sched_complete"
  | Dropped_illegal -> "dropped_illegal"
  | Hard_reordered -> "hard_reordered"
  | Nospec_reordered -> "nospec_reordered"
  | Annot_scheme -> "annot_scheme"
  | Annot_alloc_sync -> "annot_alloc_sync"
  | Alloc_constraint -> "alloc_constraint"
  | Alloc_window -> "alloc_window"
  | Alloc_cycle -> "alloc_cycle"
  | Queue_uncovered -> "queue_uncovered"
  | Queue_base_sync -> "queue_base_sync"
  | Queue_rotate -> "queue_rotate"
  | Amov_bounds -> "amov_bounds"
  | Alat_unmarked -> "alat_unmarked"
  | Alat_capacity -> "alat_capacity"
  | Mask_uncovered -> "mask_uncovered"
  | Mask_clobbered -> "mask_clobbered"
  | Mask_bounds -> "mask_bounds"
  | Cert_endpoints -> "cert_endpoints"
  | Cert_derivation -> "cert_derivation"
  | Cert_separation -> "cert_separation"
  | Cert_edge_kept -> "cert_edge_kept"
  | Cert_dep_missing -> "cert_dep_missing"
  | Cert_region_sync -> "cert_region_sync"

type violation = {
  rule : rule;
  detail : string;
}

type verdict =
  | Pass
  | Reject of violation list

type mode =
  | Off
  | Sample
  | All

let mode_of_string = function
  | "off" -> Ok Off
  | "sample" -> Ok Sample
  | "all" -> Ok All
  | s -> Error (Printf.sprintf "unknown verify mode %S (off|sample|all)" s)

let mode_name = function Off -> "off" | Sample -> "sample" | All -> "all"

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s" (rule_name v.rule) v.detail

let pp_verdict ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Reject vs ->
    Format.fprintf ppf "reject (%d):" (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "@ %a" pp_violation v) vs

(* The view of the region every rule works from: execution position
   (flat, bundle by bundle) and issue cycle per instruction id. *)
type view = {
  flat : Ir.Instr.t array;  (** all region instructions, execution order *)
  pos : (int, int) Hashtbl.t;  (** id -> index in [flat] *)
  cyc : (int, int) Hashtbl.t;  (** id -> bundle (cycle) index *)
}

let make_view (region : Ir.Region.t) ~dup =
  let flat = Array.of_list (Ir.Region.instrs region) in
  let pos = Hashtbl.create (2 * (Array.length flat + 1)) in
  let cyc = Hashtbl.create (2 * (Array.length flat + 1)) in
  Array.iteri
    (fun idx (i : Ir.Instr.t) ->
      if Hashtbl.mem pos i.id then dup i.id
      else Hashtbl.replace pos i.id idx)
    flat;
  Array.iteri
    (fun cycle bundle ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          if not (Hashtbl.mem cyc i.id) then Hashtbl.replace cyc i.id cycle)
        bundle)
    region.Ir.Region.bundles;
  { flat; pos; cyc }

let is_splice (i : Ir.Instr.t) =
  match i.op with Ir.Instr.Rotate _ | Ir.Instr.Amov _ -> true | _ -> false

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let verify ~issue_width ~mem_ports ~latency (o : Opt.Optimizer.t) =
  let region = o.Opt.Optimizer.region in
  let sb = region.Ir.Region.source in
  let body = sb.Ir.Superblock.body in
  let policy = o.Opt.Optimizer.policy_used in
  let ar_count = policy.Sched.Policy.ar_count in
  let hazards = o.Opt.Optimizer.hazards in
  let violations = ref [] in
  let flag rule fmt =
    Printf.ksprintf
      (fun detail -> violations := { rule; detail } :: !violations)
      fmt
  in
  let view =
    make_view region ~dup:(fun id ->
        flag Sched_complete "instruction %d appears more than once" id)
  in
  let pos id = Hashtbl.find_opt view.pos id in
  let cyc id = Hashtbl.find_opt view.cyc id in
  let by_id = Hashtbl.create (2 * (List.length body + 1)) in
  List.iter (fun (i : Ir.Instr.t) -> Hashtbl.replace by_id i.id i) body;

  (* ---- completeness: the region is the superblock body plus splices *)
  List.iter
    (fun (i : Ir.Instr.t) ->
      if not (Hashtbl.mem view.pos i.id) then
        flag Sched_complete "body instruction %d missing from the region" i.id)
    body;
  Array.iter
    (fun (i : Ir.Instr.t) ->
      if (not (is_splice i)) && not (Hashtbl.mem by_id i.id) then
        flag Sched_complete "region instruction %d is not in the body" i.id)
    view.flat;
  if region.Ir.Region.entry <> sb.Ir.Superblock.entry then
    flag Sched_complete "region entry %s differs from superblock entry %s"
      region.Ir.Region.entry sb.Ir.Superblock.entry;
  if region.Ir.Region.final_exit <> sb.Ir.Superblock.final_exit then
    flag Sched_complete "region and superblock final exits differ";
  List.iter
    (fun (c, (i : Ir.Instr.t)) ->
      match cyc i.id with
      | Some c' when c' = c -> ()
      | Some c' ->
        flag Sched_complete "instruction %d issued at cycle %d but bundled at %d"
          i.id c c'
      | None -> ())
    o.Opt.Optimizer.issue_seq;

  (* The cycle-precedence rule the scheduler enforces on every hazard
     edge: successor issues no earlier than predecessor issue plus the
     predecessor's full latency. *)
  let require rule a b what =
    match cyc a, cyc b with
    | Some ca, Some cb ->
      (match Hashtbl.find_opt by_id a with
      | Some ia ->
        let l = latency ia in
        if cb < ca + l then
          flag rule "%s %d -> %d: cycle %d < %d + latency %d" what a b cb ca l
      | None -> ())
    | _ -> ()
  in

  (* ---- register dependences, re-derived from the body *)
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let uses_since : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with
          | Some d -> require Def_before_use d i.id "raw"
          | None -> ());
          Hashtbl.replace uses_since r
            (i.id :: Option.value (Hashtbl.find_opt uses_since r) ~default:[]))
        (Ir.Instr.uses i);
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with
          | Some d -> require Def_before_use d i.id "waw"
          | None -> ());
          List.iter
            (fun u -> if u <> i.id then require Def_before_use u i.id "war")
            (Option.value (Hashtbl.find_opt uses_since r) ~default:[]);
          Hashtbl.replace last_def r i.id;
          Hashtbl.replace uses_since r [])
        (Ir.Instr.defs i))
    body;

  (* ---- side exits: ordered, and never crossed by blocked work *)
  let exits = List.filter Ir.Instr.is_side_exit body in
  let rec check_exit_order = function
    | (a : Ir.Instr.t) :: (b : Ir.Instr.t) :: rest ->
      (match cyc a.id, cyc b.id with
      | Some ca, Some cb when cb <= ca ->
        flag Branch_order "exits %d and %d issued at cycles %d >= %d" a.id b.id
          ca cb
      | _ -> ());
      check_exit_order (b :: rest)
    | _ -> ()
  in
  check_exit_order exits;
  let blocked (i : Ir.Instr.t) live =
    Ir.Instr.is_store i
    || List.exists (fun r -> Ir.Reg.Set.mem r live) (Ir.Instr.defs i)
  in
  let before = ref [] in
  let after = ref body in
  List.iter
    (fun (i : Ir.Instr.t) ->
      after := List.tl !after;
      if Ir.Instr.is_side_exit i then begin
        let live = Ir.Superblock.exit_live_out sb i.id in
        List.iter
          (fun (j : Ir.Instr.t) ->
            if (not (Ir.Instr.is_side_exit j)) && blocked j live then
              require Exit_crossed j.id i.id "pre-exit")
          !before;
        List.iter
          (fun (j : Ir.Instr.t) ->
            if (not (Ir.Instr.is_side_exit j)) && blocked j live then
              require Exit_crossed i.id j.id "post-exit")
          !after
      end;
      before := i :: !before)
    body;

  (* ---- the recorded hazard graph itself *)
  Array.iteri
    (fun p preds ->
      let id = hazards.Sched.Hazards.ids.(p) in
      List.iter (fun pd -> require Sched_hazard pd id "hazard") preds)
    hazards.Sched.Hazards.preds_of;

  (* ---- resource limits per bundle *)
  Array.iteri
    (fun cycle bundle ->
      let ops = List.filter (fun i -> not (is_splice i)) bundle in
      let mem = List.filter Ir.Instr.is_memory ops in
      let br = List.filter Ir.Instr.is_branch ops in
      if List.length ops > issue_width then
        flag Sched_width "cycle %d issues %d ops over width %d" cycle
          (List.length ops) issue_width;
      if List.length mem > mem_ports then
        flag Sched_width "cycle %d issues %d memory ops over %d ports" cycle
          (List.length mem) mem_ports;
      if List.length br > 1 then
        flag Sched_width "cycle %d issues %d branches" cycle (List.length br))
    region.Ir.Region.bundles;

  (* ---- dropped pairs must be droppable speculative dependences *)
  let real_spec = Hashtbl.create 64 in
  List.iter
    (fun (e : Analysis.Depgraph.edge) ->
      if e.kind = Analysis.Depgraph.Real && e.strength = Analysis.Depgraph.Speculative
      then Hashtbl.replace real_spec (e.first, e.second) ())
    (Analysis.Depgraph.edges o.Opt.Optimizer.deps);
  List.iter
    (fun (f, s) ->
      if not (Hashtbl.mem real_spec (f, s)) then
        flag Dropped_illegal "dropped pair %d,%d is not a speculative dep" f s
      else
        match Hashtbl.find_opt by_id f, Hashtbl.find_opt by_id s with
        | Some fi, Some si ->
          if not (Sched.Policy.may_drop_edge policy ~first:fi ~second:si) then
            flag Dropped_illegal "policy %s may not drop pair %d,%d"
              policy.Sched.Policy.name f s
        | _ -> flag Dropped_illegal "dropped pair %d,%d not in the body" f s)
    hazards.Sched.Hazards.dropped;

  (* ---- speculation coverage.  A dependence edge needs a runtime
     check exactly when its [second] endpoint executes before its
     [first] (for Real edges that is a reordering; for Extended edges
     it is the natural order, hence they are almost always live). *)
  let required =
    List.filter_map
      (fun (e : Analysis.Depgraph.edge) ->
        match pos e.first, pos e.second with
        | Some pf, Some ps when ps < pf -> Some (e, pf, ps)
        | _ -> None)
      (Analysis.Depgraph.edges o.Opt.Optimizer.deps)
  in
  List.iter
    (fun ((e : Analysis.Depgraph.edge), _, _) ->
      if e.kind = Analysis.Depgraph.Real && e.strength = Analysis.Depgraph.Hard
      then
        flag Hard_reordered "must-alias pair %d,%d executes in reverse" e.first
          e.second)
    required;
  let required =
    List.filter
      (fun ((e : Analysis.Depgraph.edge), _, _) ->
        not
          (e.kind = Analysis.Depgraph.Real
          && e.strength = Analysis.Depgraph.Hard))
      required
  in

  let annot_of id =
    match pos id with
    | Some p -> Ir.Instr.annot view.flat.(p)
    | None -> Ir.Annot.No_annot
  in
  let splices =
    Array.to_list view.flat |> List.filter is_splice
  in

  (* ---- scheme-specific checks *)
  (match policy.Sched.Policy.scheme with
  | Sched.Policy.Queue_scheme -> (
    match o.Opt.Optimizer.alloc_result with
    | None ->
      flag Annot_scheme "queue scheme artifact carries no allocation result"
    | Some res ->
      let a = res.Sched.Smarq_alloc.allocation in
      let order id = Hashtbl.find_opt a.C.order id in
      let amov_ids = Hashtbl.create 16 in
      List.iter
        (fun (m : Sched.Smarq_alloc.amov_insertion) ->
          Hashtbl.replace amov_ids m.amov_id m)
        res.Sched.Smarq_alloc.amovs;
      (* constraint edges against the final orders and bases *)
      (match
         C.validate a
           ~edges:
             (res.Sched.Smarq_alloc.check_edges
             @ res.Sched.Smarq_alloc.anti_edges)
           ~ar_count
       with
      | Ok () -> ()
      | Error msgs ->
        List.iter
          (fun m ->
            let rule =
              if contains_substring m "offset" || contains_substring m "base"
              then Alloc_window
              else Alloc_constraint
            in
            flag rule "%s" m)
          msgs);
      (* annotation/allocation synchronization over the region *)
      Array.iter
        (fun (i : Ir.Instr.t) ->
          if Ir.Instr.is_memory i then begin
            let pa = Hashtbl.mem a.C.p_bit i.id
            and ca = Hashtbl.mem a.C.c_bit i.id in
            match Ir.Instr.annot i with
            | Ir.Annot.Queue { offset; p; c } ->
              if p <> pa || c <> ca then
                flag Annot_alloc_sync
                  "op %d annotated p=%b c=%b but allocated p=%b c=%b" i.id p c
                  pa ca;
              (match order i.id, Hashtbl.find_opt a.C.base i.id with
              | Some o, Some b ->
                if offset <> o - b then
                  flag Annot_alloc_sync
                    "op %d annotated offset %d but allocated %d - %d" i.id
                    offset o b
              | _ ->
                flag Annot_alloc_sync "annotated op %d has no allocation" i.id);
              if offset < 0 || offset >= ar_count then
                flag Alloc_window "op %d offset %d outside [0,%d)" i.id offset
                  ar_count
            | Ir.Annot.No_annot ->
              if pa || ca then
                flag Annot_alloc_sync
                  "op %d allocated p=%b c=%b but carries no annotation" i.id pa
                  ca
            | Ir.Annot.Mask _ | Ir.Annot.Alat _ ->
              flag Annot_scheme "op %d carries a non-queue annotation" i.id
          end)
        view.flat;
      (* AMOV splices against the allocator's insertion records *)
      List.iter
        (fun (m : Sched.Smarq_alloc.amov_insertion) ->
          if
            m.src_offset < 0 || m.dst_offset < 0
            || m.src_offset >= ar_count
            || m.dst_offset >= ar_count
          then
            flag Amov_bounds "amov %d offsets %d,%d outside [0,%d)" m.amov_id
              m.src_offset m.dst_offset ar_count;
          if (not m.dst_is_fresh) && m.src_offset <> m.dst_offset then
            flag Annot_alloc_sync "clearing amov %d moves %d -> %d" m.amov_id
              m.src_offset m.dst_offset;
          match pos m.amov_id, pos m.before with
          | Some pa, Some pb ->
            if pa >= pb then
              flag Annot_alloc_sync "amov %d does not precede its anchor %d"
                m.amov_id m.before;
            (match cyc m.amov_id, cyc m.before with
            | Some ca, Some cb when ca <> cb ->
              flag Annot_alloc_sync "amov %d not bundled with its anchor %d"
                m.amov_id m.before
            | _ -> ());
            (match view.flat.(pa).op with
            | Ir.Instr.Amov { src_offset; dst_offset } ->
              if src_offset <> m.src_offset || dst_offset <> m.dst_offset then
                flag Annot_alloc_sync
                  "amov %d materialized as %d->%d, recorded %d->%d" m.amov_id
                  src_offset dst_offset m.src_offset m.dst_offset
            | _ ->
              flag Annot_alloc_sync "instruction %d is not an AMOV" m.amov_id)
          | _ -> flag Annot_alloc_sync "amov %d missing from the region" m.amov_id)
        res.Sched.Smarq_alloc.amovs;
      Array.iter
        (fun (i : Ir.Instr.t) ->
          match i.op with
          | Ir.Instr.Amov _ ->
            if not (Hashtbl.mem amov_ids i.id) then
              flag Annot_alloc_sync "AMOV %d has no insertion record" i.id
          | _ -> ())
        view.flat;
      (* BASE replay: walking the region in execution order, the queue
         base implied by ROTATE instructions must place every
         annotation and AMOV at its allocated order *)
      let qbase = ref 0 in
      Array.iter
        (fun (i : Ir.Instr.t) ->
          match i.op with
          | Ir.Instr.Rotate n ->
            if n <= 0 then flag Queue_rotate "rotate %d by %d" i.id n;
            qbase := !qbase + n
          | Ir.Instr.Amov _ -> (
            match Hashtbl.find_opt amov_ids i.id with
            | None -> ()
            | Some m ->
              (match order m.src_instr with
              | Some os when !qbase + m.src_offset <> os ->
                flag Queue_base_sync
                  "amov %d src at base %d + %d, but order(%d) = %d" i.id !qbase
                  m.src_offset m.src_instr os
              | _ -> ());
              if m.dst_is_fresh then (
                match order m.amov_id with
                | Some od when !qbase + m.dst_offset <> od ->
                  flag Queue_base_sync
                    "amov %d dst at base %d + %d, but its order is %d" i.id
                    !qbase m.dst_offset od
                | Some _ -> ()
                | None ->
                  flag Queue_base_sync "fresh amov %d has no order" i.id))
          | _ -> (
            match Ir.Instr.annot i with
            | Ir.Annot.Queue { offset; _ } -> (
              match order i.id with
              | Some od when !qbase + offset <> od ->
                flag Queue_base_sync
                  "op %d at base %d + offset %d, but order is %d" i.id !qbase
                  offset od
              | _ -> ())
            | _ -> ()))
        view.flat;
      (* coverage under the ordered-detection rule, tracking each
         protected range through the AMOVs that execute before the
         checker *)
      let moved_by = Hashtbl.create 16 in
      List.iter
        (fun (m : Sched.Smarq_alloc.amov_insertion) ->
          Hashtbl.replace moved_by m.src_instr m)
        res.Sched.Smarq_alloc.amovs;
      let rec holder_at id limit =
        match Hashtbl.find_opt moved_by id with
        | Some (m : Sched.Smarq_alloc.amov_insertion) -> (
          match pos m.amov_id with
          | Some pa when pa < limit ->
            if m.dst_is_fresh then holder_at m.amov_id limit else None
          | _ -> Some id)
        | None -> Some id
      in
      List.iter
        (fun ((e : Analysis.Depgraph.edge), pf, _) ->
          let f = e.first and s = e.second in
          if not (Hashtbl.mem a.C.p_bit s) then
            flag Queue_uncovered "reordered pair %d,%d: %d is not protected" f
              s s
          else if not (Hashtbl.mem a.C.c_bit f) then
            flag Queue_uncovered "reordered pair %d,%d: %d does not check" f s
              f
          else
            match holder_at s pf with
            | None ->
              flag Queue_uncovered
                "reordered pair %d,%d: %d's range cleared before the check" f s
                s
            | Some h -> (
              match order f, order h with
              | Some of_, Some oh ->
                if of_ > oh then
                  flag Queue_uncovered
                    "reordered pair %d,%d: order(%d)=%d > order(holder %d)=%d"
                    f s f of_ h oh
              | _ ->
                flag Queue_uncovered "reordered pair %d,%d: missing orders" f s
              ))
        required;
      (* on AMOV-free regions the standalone FAST ALGORITHM certifies
         the constraint graph acyclic *)
      if res.Sched.Smarq_alloc.amovs = [] then begin
        let issue_order =
          Array.to_list view.flat
          |> List.filter Ir.Instr.is_memory
          |> List.map (fun (i : Ir.Instr.t) -> i.id)
        in
        match
          Sched.Fast_alloc.allocate ~issue_order
            ~p_bit:(Hashtbl.mem a.C.p_bit)
            ~c_bit:(Hashtbl.mem a.C.c_bit)
            ~edges:
              (res.Sched.Smarq_alloc.check_edges
              @ res.Sched.Smarq_alloc.anti_edges)
        with
        | Ok _ -> ()
        | Error { Sched.Fast_alloc.cycle } ->
          flag Alloc_cycle "constraint cycle without an AMOV: %s"
            (String.concat ", "
               (List.map (Format.asprintf "%a" C.pp_edge) cycle))
      end)
  | Sched.Policy.Naive_queue_scheme ->
    (* one register per memory op, program order, always set + check *)
    let ordinal = Hashtbl.create 64 in
    let n = ref 0 in
    List.iter
      (fun (i : Ir.Instr.t) ->
        if Ir.Instr.is_memory i then begin
          Hashtbl.replace ordinal i.id !n;
          incr n
        end)
      body;
    let qbase = ref 0 in
    Array.iter
      (fun (i : Ir.Instr.t) ->
        match i.op with
        | Ir.Instr.Rotate k ->
          if k <= 0 then flag Queue_rotate "rotate %d by %d" i.id k;
          qbase := !qbase + k
        | Ir.Instr.Amov _ ->
          flag Annot_scheme "AMOV %d under the naive order scheme" i.id
        | _ ->
          if Ir.Instr.is_memory i then (
            match Ir.Instr.annot i with
            | Ir.Annot.Queue { offset; p = true; c = true } -> (
              if offset < 0 || offset >= ar_count then
                flag Alloc_window "op %d offset %d outside [0,%d)" i.id offset
                  ar_count;
              match Hashtbl.find_opt ordinal i.id with
              | Some o when !qbase + offset <> o ->
                flag Queue_base_sync
                  "op %d at base %d + offset %d, but program order %d" i.id
                  !qbase offset o
              | _ -> ())
            | _ ->
              flag Annot_scheme
                "op %d must set and check under the naive scheme" i.id))
      view.flat
  | Sched.Policy.Alat_scheme ->
    List.iter
      (fun (i : Ir.Instr.t) ->
        flag Annot_scheme "queue instruction %d under the ALAT scheme" i.id)
      splices;
    Array.iter
      (fun (i : Ir.Instr.t) ->
        match Ir.Instr.annot i with
        | Ir.Annot.No_annot -> ()
        | Ir.Annot.Alat { advanced } ->
          if Ir.Instr.is_store i && advanced then
            flag Annot_scheme "store %d marked as an advanced load" i.id;
          if Ir.Instr.is_load i && not advanced then
            flag Annot_scheme "load %d carries a non-advanced ALAT mark" i.id
        | Ir.Annot.Queue _ | Ir.Annot.Mask _ ->
          flag Annot_scheme "op %d carries a non-ALAT annotation" i.id)
      view.flat;
    if not (Array.for_all (fun (i : Ir.Instr.t) ->
                (not (Ir.Instr.is_store i))
                || Ir.Instr.annot i = Ir.Annot.alat ~advanced:false)
              view.flat)
    then flag Annot_scheme "a store is missing its ALAT check annotation";
    let advanced id =
      match annot_of id with
      | Ir.Annot.Alat { advanced } -> advanced
      | _ -> false
    in
    List.iter
      (fun ((e : Analysis.Depgraph.edge), pf, ps) ->
        let f = e.first and s = e.second in
        let fi = Hashtbl.find_opt by_id f and si = Hashtbl.find_opt by_id s in
        (match fi, si with
        | Some fi, Some si
          when Ir.Instr.is_store fi && Ir.Instr.is_load si ->
          if not (advanced s) then
            flag Alat_unmarked
              "reordered pair %d,%d: load %d is not marked advanced" f s s
        | _ ->
          flag Annot_scheme
            "reordered pair %d,%d cannot be protected by the ALAT" f s);
        (* FIFO eviction: the entry survives only while fewer than
           [ar_count] advanced loads execute inside the window *)
        let inserted = ref 0 in
        for p = ps + 1 to pf - 1 do
          let j = view.flat.(p) in
          if Ir.Instr.is_load j && advanced j.id then incr inserted
        done;
        if !inserted >= ar_count then
          flag Alat_capacity
            "pair %d,%d: %d advanced loads inside the window evict the entry"
            f s !inserted)
      required
  | Sched.Policy.Mask_scheme ->
    List.iter
      (fun (i : Ir.Instr.t) ->
        flag Annot_scheme "queue instruction %d under the mask scheme" i.id)
      splices;
    let full_mask = (1 lsl ar_count) - 1 in
    Array.iter
      (fun (i : Ir.Instr.t) ->
        match Ir.Instr.annot i with
        | Ir.Annot.No_annot -> ()
        | Ir.Annot.Mask { set_index; check_mask } ->
          (match set_index with
          | Some k when k < 0 || k >= ar_count ->
            flag Mask_bounds "op %d sets register %d of %d" i.id k ar_count
          | _ -> ());
          if check_mask < 0 || check_mask land lnot full_mask <> 0 then
            flag Mask_bounds "op %d check mask %#x exceeds %d registers" i.id
              check_mask ar_count
        | Ir.Annot.Queue _ | Ir.Annot.Alat _ ->
          flag Annot_scheme "op %d carries a non-mask annotation" i.id)
      view.flat;
    let set_index_of id =
      match annot_of id with
      | Ir.Annot.Mask { set_index; _ } -> set_index
      | _ -> None
    in
    let check_mask_of id =
      match annot_of id with
      | Ir.Annot.Mask { check_mask; _ } -> check_mask
      | _ -> 0
    in
    List.iter
      (fun ((e : Analysis.Depgraph.edge), pf, ps) ->
        let f = e.first and s = e.second in
        match set_index_of s with
        | None ->
          flag Mask_uncovered
            "reordered pair %d,%d: %d sets no alias register" f s s
        | Some k ->
          if check_mask_of f land (1 lsl k) = 0 then
            flag Mask_uncovered
              "reordered pair %d,%d: %d does not check register %d" f s f k;
          for p = ps + 1 to pf - 1 do
            let j = view.flat.(p) in
            if j.id <> s && set_index_of j.id = Some k then
              flag Mask_clobbered
                "pair %d,%d: op %d reuses register %d inside the window" f s
                j.id k
          done)
      required
  | Sched.Policy.No_scheme ->
    List.iter
      (fun (i : Ir.Instr.t) ->
        flag Annot_scheme "queue instruction %d without a scheme" i.id)
      splices;
    Array.iter
      (fun (i : Ir.Instr.t) ->
        if Ir.Instr.annot i <> Ir.Annot.No_annot then
          flag Annot_scheme "op %d annotated without a scheme" i.id)
      view.flat;
    List.iter
      (fun ((e : Analysis.Depgraph.edge), _, _) ->
        flag Nospec_reordered
          "pair %d,%d executes in reverse without alias detection" e.first
          e.second)
      required);

  (* ---- alias-certification witnesses, replayed independently *)
  (match o.Opt.Optimizer.cert with
  | None ->
    if region.Ir.Region.certified_no_alias <> [] then
      flag Cert_region_sync
        "region lists %d certified pairs but the artifact carries no \
         certificate"
        (List.length region.Ir.Region.certified_no_alias)
  | Some cert ->
    List.iter
      (fun (v : Witness.violation) ->
        match v with
        | Witness.Endpoints d -> flag Cert_endpoints "%s" d
        | Witness.Derivation d -> flag Cert_derivation "%s" d
        | Witness.Separation d -> flag Cert_separation "%s" d
        | Witness.Edge_kept d -> flag Cert_edge_kept "%s" d
        | Witness.Dep_missing d -> flag Cert_dep_missing "%s" d
        | Witness.Region_sync d -> flag Cert_region_sync "%s" d)
      (Witness.check ~cert ~body
         ~region_certified:region.Ir.Region.certified_no_alias
         ~deps:o.Opt.Optimizer.deps));

  match !violations with
  | [] -> Pass
  | vs -> Reject (List.rev vs)
