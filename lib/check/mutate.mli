(** Mutation testing for the static verifier.

    Each mutation corrupts a verified artifact in a way that breaks
    exactly one invariant family — dropping a runtime check, swapping
    allocated orders across a constraint, widening an offset past the
    register window, deleting an AMOV or an instruction, un-marking an
    advanced load, clearing a mask check bit, hoisting an instruction
    across a hazard edge, over-rotating the queue — and the harness
    asserts that {!Verifier.verify} rejects the mutant with (at least)
    the expected rule.  A surviving mutant is a verifier blind spot. *)

type mutation =
  | Drop_check  (** strip a checker's C bit and check edges *)
  | Swap_orders  (** swap allocated orders across a check edge *)
  | Widen_offset  (** set an annotation offset to [ar_count] *)
  | Delete_amov  (** remove an AMOV instruction, keep its record *)
  | Drop_advanced  (** un-mark a protected advanced load *)
  | Clear_mask_bit  (** clear the covering bit of a mask checker *)
  | Hoist_across_hazard  (** move a successor into its predecessor's cycle *)
  | Delete_instr  (** drop a body instruction from the region *)
  | Over_rotate  (** increment a ROTATE amount *)
  | Shift_witness_range  (** shift a claimed offset set off the derivation *)
  | Widen_witness_range  (** weaken a claim until disjointness fails *)
  | Swap_witness_origin  (** re-anchor a claimed fact on a bogus origin *)
  | Drop_witness  (** lose a witness, keeping the pair edge-less *)
  | Forge_witness  (** certify a pair that carries a Real edge *)
  | Desync_region_cert  (** region certified list diverges from the cert *)
  | Bogus_witness_endpoint  (** point a witness at a non-memory instr *)

val mutation_name : mutation -> string

val expected_rules : mutation -> Verifier.rule list
(** Rules at least one of which must appear in the mutant's reject
    verdict for the mutant to count as killed. *)

val mutants : Opt.Optimizer.t -> (mutation * Opt.Optimizer.t) list
(** Every mutation applicable to this artifact, each applied to an
    independent deep copy.  Scheme-specific mutations are generated
    only for artifacts of that scheme; mutations with no viable target
    (e.g. [Delete_amov] on an AMOV-free region) are skipped. *)

type outcome = {
  mutation : mutation;
  killed : bool;
  rules_hit : Verifier.rule list;  (** rules in the mutant's verdict *)
}

type summary = {
  baseline_pass : bool;  (** the unmutated artifact verifies clean *)
  total : int;
  killed : int;
  outcomes : outcome list;
}

val run :
  issue_width:int ->
  mem_ports:int ->
  latency:(Ir.Instr.t -> int) ->
  Opt.Optimizer.t ->
  summary
(** Verifies the baseline, generates all applicable mutants, and
    verifies each. *)

val pp_summary : Format.formatter -> summary -> unit
