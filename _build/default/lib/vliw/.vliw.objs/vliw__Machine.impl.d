lib/vliw/machine.ml: Hashtbl Int Ir List Option Printf
