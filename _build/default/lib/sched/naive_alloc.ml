exception Naive_overflow of string

type result = {
  annots : (int * Ir.Annot.t) list;
  rotations : (int * int) list;
  max_offset : int;
}

let annotate ~body ~issue_order ~ar_count =
  (* program-order register orders *)
  let order_of = Hashtbl.create 64 in
  let n_mem = ref 0 in
  List.iter
    (fun (i : Ir.Instr.t) ->
      if Ir.Instr.is_memory i then begin
        Hashtbl.replace order_of i.Ir.Instr.id !n_mem;
        incr n_mem
      end)
    body;
  (* walk the schedule tracking which orders have issued; BASE is the
     size of the fully-issued program-order prefix *)
  let issued = Hashtbl.create 64 in
  let base = ref 0 in
  let advance () =
    while !base < !n_mem && Hashtbl.mem issued !base do
      incr base
    done
  in
  let annots = ref [] and rotations = ref [] and max_offset = ref (-1) in
  List.iter
    (fun (_, (i : Ir.Instr.t)) ->
      match Hashtbl.find_opt order_of i.Ir.Instr.id with
      | None -> ()
      | Some order ->
        let offset = order - !base in
        if offset >= ar_count then
          raise
            (Naive_overflow
               (Printf.sprintf
                  "instr %d needs offset %d of %d registers under \
                   program-order allocation"
                  i.Ir.Instr.id offset ar_count));
        (* every memory operation both protects and checks *)
        annots :=
          (i.Ir.Instr.id, Ir.Annot.queue ~offset ~p:true ~c:true) :: !annots;
        if offset > !max_offset then max_offset := offset;
        Hashtbl.replace issued order ();
        let before = !base in
        advance ();
        if !base > before then
          rotations := (i.Ir.Instr.id, !base - before) :: !rotations)
    issue_order;
  {
    annots = List.rev !annots;
    rotations = List.rev !rotations;
    max_offset = !max_offset;
  }
