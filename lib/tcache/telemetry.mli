(** Counters describing a translation cache's life: the raw material
    for cache-sizing decisions and the bench harness's JSON output. *)

type t = {
  mutable hits : int;  (** lookups that found a resident translation *)
  mutable misses : int;  (** lookups that fell through to the interpreter *)
  mutable insertions : int;
  mutable evictions : int;  (** single-entry evictions under Lru/Fifo *)
  mutable flushes : int;  (** whole-cache drops (Flush_all or explicit) *)
  mutable invalidations : int;  (** explicit single-label invalidations *)
  mutable rejections : int;
      (** regions larger than the whole capacity, never cached *)
  mutable chains_installed : int;
  mutable chains_broken : int;
  mutable chain_follows : int;
      (** dispatches that skipped the lookup via a chain link *)
  mutable peak_resident_instrs : int;
      (** high-water mark of resident scheduled instructions *)
}

val create : unit -> t

val fields : t -> (string * int) list
(** Stable (name, value) pairs, for JSON or tabular emission. *)

val pp : Format.formatter -> t -> unit
