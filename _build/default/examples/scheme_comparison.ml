(* Compare every alias-detection scheme on one benchmark — the
   library-level version of `smarq_run compare`, reproducing in
   miniature the paper's Figure 15 story: ordered-queue SMARQ beats the
   Itanium-like scheme (false positives, no store reordering) and the
   16-register variant (overflow pressure), all of which beat running
   without hardware alias detection.

     dune exec examples/scheme_comparison.exe [benchmark] [scale] *)

let () =
  let bench = try Sys.argv.(1) with _ -> "ammp" in
  let scale = try int_of_string Sys.argv.(2) with _ -> 5 in
  let b =
    try Workload.Specfp.find bench
    with Not_found ->
      Printf.eprintf "unknown benchmark %s (have: %s)\n" bench
        (String.concat " " Workload.Specfp.names);
      exit 1
  in
  let program = Workload.Specfp.program ~scale b in
  Printf.printf "benchmark %s (scale %d): %s\n\n" bench scale
    b.Workload.Specfp.description;
  let reference = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:1_000_000_000 reference program);
  let baseline =
    (Smarq.run_program ~scheme:Smarq.Scheme.None_ program).Runtime.Driver
      .stats
      .Runtime.Stats.total_cycles
  in
  Printf.printf "%-12s %12s %8s %10s %8s %10s\n" "scheme" "cycles" "speedup"
    "rollbacks" "AR used" "state";
  List.iter
    (fun scheme ->
      let r = Smarq.run_program ~scheme program in
      let st = r.Runtime.Driver.stats in
      let ok =
        Vliw.Machine.equal_guest_state reference r.Runtime.Driver.machine
      in
      Printf.printf "%-12s %12d %8.3f %10d %8d %10s\n"
        (Smarq.Scheme.name scheme) st.Runtime.Stats.total_cycles
        (float_of_int baseline /. float_of_int st.Runtime.Stats.total_cycles)
        st.Runtime.Stats.rollbacks
        st.Runtime.Stats.working_set.Sched.Working_set.smarq
        (if ok then "ok" else "MISMATCH"))
    [
      Smarq.Scheme.None_;
      Smarq.Scheme.Smarq 64;
      Smarq.Scheme.Smarq 16;
      Smarq.Scheme.Smarq_no_store_reorder 64;
      Smarq.Scheme.Alat;
      Smarq.Scheme.Efficeon;
    ]
