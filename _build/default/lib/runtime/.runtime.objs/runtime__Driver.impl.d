lib/runtime/driver.ml: Frontend Hashtbl Hw Ir List Opt Option Sched Stats Vliw
