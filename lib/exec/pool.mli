(** Domain-based worker pool: parallel [map] with deterministic output
    order.

    Results come back in submission order regardless of which domain
    executed which job, so a parallel run is observationally identical
    to the sequential one as long as [f] touches no shared mutable
    state.  The first job exception (in submission order) is re-raised
    with its original backtrace after all workers drain. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element using up to
    [domains] domains (default {!default_domains}; the calling domain
    participates).  [~domains:1] runs sequentially in the caller with
    no domain spawned. *)

(** {2 Long-running pool}

    [map] spins domains up and down per call — right for one-shot
    matrix runs, wrong for a service.  A {!t} keeps [domains] worker
    domains alive across many submissions: jobs are queued and run in
    FIFO order, each receiving the index of the worker executing it
    (0 .. domains-1), so callers can keep per-worker state — e.g. a
    tenant's per-domain translation-cache shard — without locking.

    Shutdown is graceful and idempotent: every job accepted before
    {!shutdown} is drained (executed to completion) before it returns,
    and concurrent or repeated shutdowns all block until that single
    drain-and-join finishes. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn [domains] (default {!default_domains}, min 1) worker
    domains.  The calling domain does not participate — it stays free
    to submit and await. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (int -> unit) -> unit
(** Queue a job; some worker eventually runs [job worker_index].
    Raises [Invalid_argument] after {!shutdown} has begun.  A job that
    raises is swallowed and counted in {!failed_jobs} — jobs are
    expected to capture their own results and errors. *)

val failed_jobs : t -> int
(** Jobs that raised instead of returning (0 for well-behaved
    callers).  Atomically counted; safe to read from any domain at any
    time. *)

type health = {
  queue_depth : int;  (** jobs accepted but not yet picked up *)
  failed : int;  (** same counter as {!failed_jobs} *)
  shutting_down : bool;
  domains : int;
}

val health : t -> health
(** A consistent point-in-time snapshot of the pool, safe to take from
    any domain while workers run.  Used by the soak report. *)

val shutdown : t -> unit
(** Stop accepting submissions, drain every queued and in-flight job,
    and join all workers.  Idempotent: a second call (from any thread,
    concurrent or later) returns once the same drain completes, and
    never double-joins. *)
