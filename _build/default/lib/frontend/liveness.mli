(** Guest-register liveness over the guest control-flow graph.

    Backward dataflow with the boundary condition that {e every} guest
    register is live at [Halt].  That makes "dead at exit E" mean "on
    every path from E, redefined before any use and before program
    end", which is exactly the condition under which the scheduler may
    move a definition across E while keeping the final architectural
    state (compared in full by the equivalence tests) intact. *)

type t

val analyze : Ir.Program.t -> t

val live_in : t -> Ir.Instr.label -> Ir.Reg.Set.t
(** Registers live on entry to the labeled block.  Unknown labels are
    conservatively fully live. *)

val live_out_of_block : t -> Ir.Block.t -> Ir.Reg.Set.t
