lib/opt/elim.ml: Analysis Array Hashtbl Ir List Sched
