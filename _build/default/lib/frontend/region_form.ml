type params = {
  max_blocks : int;
  min_bias : float;
}

let default_params = { max_blocks = 8; min_bias = 0.6 }

(* A side exit guarded so that it fires when control would leave the
   hot path. [follow] is the label execution continues to inside the
   region. Returns the guard instructions and the exit target. *)
let side_exit_for ~fresh_id (cond : Ir.Instr.operand) ~taken ~fallthrough
    ~follow_taken =
  let next_id () =
    let id = !fresh_id in
    incr fresh_id;
    id
  in
  if follow_taken then begin
    (* region continues on the taken arm; exit when the condition is
       false, so invert the guard into a temporary *)
    let tmp = Ir.Reg.T (next_id ()) in
    let invert =
      Ir.Instr.make ~id:(next_id ())
        (Ir.Instr.Cmp (Ir.Instr.Eq, tmp, cond, Ir.Instr.Imm 0))
    in
    let branch =
      Ir.Instr.make ~id:(next_id ())
        (Ir.Instr.Branch { cond = Ir.Instr.Reg tmp; target = fallthrough })
    in
    ([ invert; branch ], taken)
  end
  else
    let branch =
      Ir.Instr.make ~id:(next_id ()) (Ir.Instr.Branch { cond; target = taken })
    in
    ([ branch ], fallthrough)

let form ?(params = default_params) ~program ~liveness ~profiler ~fresh_id
    seed =
  let seed_count = max 1 (Profiler.count profiler seed) in
  let body = ref [] in
  let live_out = ref [] in
  let source_blocks = ref [] in
  let in_region = Hashtbl.create 16 in
  let emit is = body := List.rev_append is !body in
  let rec grow label n_blocks =
    let stop () = Some label in
    if n_blocks >= params.max_blocks then stop ()
    else if Hashtbl.mem in_region label then stop ()
    else if
      n_blocks > 0 && Profiler.is_cold_relative profiler ~seed_count label
    then stop ()
    else begin
      let b = Ir.Program.block program label in
      Hashtbl.replace in_region label ();
      source_blocks := label :: !source_blocks;
      emit b.body;
      match b.terminator with
      | Ir.Block.Halt -> None
      | Ir.Block.Fallthrough next -> grow next (n_blocks + 1)
      | Ir.Block.Cond { cond; taken; fallthrough; taken_probability } ->
        (* prefer profiled edge counts over the static hint: binary
           images carry no hints at all (0.5 everywhere) *)
        let taken_probability =
          match
            Profiler.edge_bias profiler ~from_:label ~taken ~fallthrough
          with
          | Some p -> p
          | None -> taken_probability
        in
        let bias = max taken_probability (1.0 -. taken_probability) in
        if bias < params.min_bias then begin
          (* unbiased branch: end the region here, both arms cold-ish;
             exit through the conditional as a final guarded exit pair *)
          let guard, continue_to =
            side_exit_for ~fresh_id cond ~taken ~fallthrough
              ~follow_taken:(taken_probability >= 0.5)
          in
          emit guard;
          (match guard with
          | [ _; branch ] | [ branch ] ->
            live_out :=
              (branch.Ir.Instr.id, Liveness.live_in liveness
                 (match branch.Ir.Instr.op with
                  | Ir.Instr.Branch { target; _ } -> target
                  | _ -> continue_to))
              :: !live_out
          | _ -> ());
          Some continue_to
        end
        else begin
          let follow_taken = taken_probability >= 0.5 in
          let guard, continue_to =
            side_exit_for ~fresh_id cond ~taken ~fallthrough ~follow_taken
          in
          emit guard;
          (match List.rev guard with
          | branch :: _ ->
            let exit_target =
              match branch.Ir.Instr.op with
              | Ir.Instr.Branch { target; _ } -> target
              | _ -> continue_to
            in
            live_out :=
              (branch.Ir.Instr.id, Liveness.live_in liveness exit_target)
              :: !live_out
          | [] -> ());
          grow continue_to (n_blocks + 1)
        end
    end
  in
  let final_exit = grow seed 0 in
  let final_live_out =
    match final_exit with
    | Some l -> Liveness.live_in liveness l
    | None -> Ir.Reg.Set.of_list Ir.Reg.all_guest
  in
  Ir.Superblock.make ~entry:seed ~body:(List.rev !body) ~final_exit
    ~source_blocks:(List.rev !source_blocks) ~live_out:!live_out
    ~final_live_out ()
