lib/ir/superblock.ml: Format Hashtbl Instr List Option Reg String
