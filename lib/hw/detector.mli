(** Common interface to alias-detection hardware models.

    A detector instance is a record of closures over some private
    hardware state; the VLIW executor drives it during atomic-region
    execution and the runtime resets it at region boundaries.  When a
    check finds an overlapping access range, the detector reports a
    {!violation} naming the two instructions involved so the runtime
    can re-optimize the region conservatively. *)

type violation = {
  checker : int;  (** instruction id performing the check *)
  setter : int;  (** instruction id whose protected range overlapped *)
  false_positive_prone : bool;
      (** true when the scheme cannot tell whether this alias actually
          endangers the optimization (e.g. ALAT checking all entries) *)
}

(** Qualitative capabilities, used to regenerate Table 1. *)
type caps = {
  scheme : string;  (** e.g. "bit-mask", "ALAT", "ordered queue" *)
  scalable : bool;
  false_positives : bool;
  detects_store_store : bool;
  max_registers : int option;  (** [None] = unbounded by encoding *)
}

type t = {
  name : string;
  caps : caps;
  reset : unit -> unit;  (** clear all state at region entry/exit *)
  on_mem : Ir.Instr.t -> Access.t -> (unit, violation) result;
      (** execute the alias side effects (checks then sets) of a load
          or store with its runtime access range *)
  on_rotate : int -> unit;
  on_amov : src:int -> dst:int -> unit;
  checks_performed : unit -> int;
      (** cumulative number of range comparisons, an energy proxy *)
}

val exceeds_window : t -> violation -> bool
(** Always false; kept for interface stability. *)

val wrap :
  ?name:string ->
  ?reset:(unit -> unit) ->
  ?on_mem:
    ((Ir.Instr.t -> Access.t -> (unit, violation) result) ->
    Ir.Instr.t ->
    Access.t ->
    (unit, violation) result) ->
  t ->
  t
(** [wrap d] layers instrumentation over [d] without knowing which
    hardware model it is: [reset] runs after [d]'s own reset at every
    region entry, and [on_mem] receives [d]'s handler as the next stage
    (call it, then pass through or override its verdict).  Capabilities
    and counters are shared with [d].  Used by the fault-injection
    harness and available to tracing layers. *)

val pp_violation : Format.formatter -> violation -> unit
