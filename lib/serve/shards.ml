(* Sharded translation cache: (tenant, worker) -> one private store.

   Two axes, both load-bearing:

   - per {b tenant}, so one tenant's eviction pressure cannot evict
     another's translations — each shard is created with the tenant
     budget as its capacity, which makes budget isolation structural
     rather than accounted;
   - per {b worker} domain, so a store is only ever touched by the one
     domain the scheduler routed that tenant's request to — shard
     lookups take the table mutex, but the store operations inside a
     driver run are lock-free.

   Cross-shard operations (invalidate a guest label everywhere, flush
   everything) iterate the table under the mutex; they model
   self-modifying-code shootdowns and must be called while no request
   is mid-run (the server only issues them between dispatches). *)

type 'c ops = {
  make : capacity:int option -> 'c;
  invalidate : 'c -> string -> unit;
  flush : 'c -> unit;
  telemetry : 'c -> Tcache.Telemetry.t;
}

let store_ops ~policy =
  {
    make = (fun ~capacity -> Tcache.Store.create ?capacity ~policy ());
    invalidate = Tcache.Store.invalidate;
    flush = Tcache.Store.flush;
    telemetry = Tcache.Store.telemetry;
  }

type 'c t = {
  ops : 'c ops;
  tenant_budget : int option;
  m : Mutex.t;
  tbl : (string * int, 'c) Hashtbl.t;
}

let create ?tenant_budget ~ops () =
  (match tenant_budget with
  | Some b when b <= 0 -> invalid_arg "Serve.Shards.create: budget <= 0"
  | _ -> ());
  { ops; tenant_budget; m = Mutex.create (); tbl = Hashtbl.create 16 }

let shard t ~tenant ~worker =
  Mutex.lock t.m;
  let key = (tenant, worker) in
  let s =
    match Hashtbl.find_opt t.tbl key with
    | Some s -> s
    | None ->
      let s = t.ops.make ~capacity:t.tenant_budget in
      Hashtbl.replace t.tbl key s;
      s
  in
  Mutex.unlock t.m;
  s

let shard_count t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n

let tenants t =
  Mutex.lock t.m;
  let names =
    Hashtbl.fold (fun (tenant, _) _ acc -> tenant :: acc) t.tbl []
  in
  Mutex.unlock t.m;
  List.sort_uniq String.compare names

let invalidate t label =
  Mutex.lock t.m;
  Hashtbl.iter (fun _ s -> t.ops.invalidate s label) t.tbl;
  Mutex.unlock t.m

let flush t =
  Mutex.lock t.m;
  Hashtbl.iter (fun _ s -> t.ops.flush s) t.tbl;
  Mutex.unlock t.m

let telemetry ?tenant t =
  let acc = Tcache.Telemetry.create () in
  Mutex.lock t.m;
  Hashtbl.iter
    (fun (ten, _) s ->
      if match tenant with None -> true | Some w -> w = ten then
        Tcache.Telemetry.add ~into:acc (t.ops.telemetry s))
    t.tbl;
  Mutex.unlock t.m;
  acc
