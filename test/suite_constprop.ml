(* Constant propagation and static disambiguation of direct accesses. *)

open Helpers
module I = Ir.Instr
module CP = Analysis.Const_prop
module MA = Analysis.May_alias

let check_verdict = Alcotest.of_pp MA.pp_verdict

let test_propagation_through_arith () =
  reset_ids ();
  let m1 = movi (r 1) 100 in
  let m2 = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 28)) in
  let l1 = ld (f 0) (r 2) 0 in
  let body = [ m1; m2; l1 ] in
  let facts = CP.analyze ~body in
  Alcotest.(check (option int)) "base of the load known" (Some 128)
    (CP.base_value_at facts ~instr_id:l1.I.id (r 2));
  Alcotest.(check int) "one resolved access" 1 (CP.known_count facts)

let test_kill_on_unknown_def () =
  reset_ids ();
  let m1 = movi (r 1) 100 in
  let clobber = ld (f 9) (r 5) 0 in
  (* load into r1 destroys the fact *)
  let kill =
    mk (I.Load { dst = r 1; addr = { I.base = r 5; disp = 8 }; width = 4;
                 annot = Ir.Annot.none })
  in
  let l1 = ld (f 0) (r 1) 0 in
  let facts = CP.analyze ~body:[ m1; clobber; kill; l1 ] in
  Alcotest.(check (option int)) "fact killed by load def" None
    (CP.base_value_at facts ~instr_id:l1.I.id (r 1))

let test_direct_disambiguation () =
  reset_ids ();
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x2000 in
  let s1 = st (I.Imm 1) (r 1) 0 in
  let l1 = ld (f 0) (r 2) 0 in
  let body = [ m1; m2; s1; l1 ] in
  let plain = MA.analyze ~body () in
  Alcotest.check check_verdict "heuristic says may" MA.May_alias
    (MA.verdict plain s1 l1);
  let facts = CP.analyze ~body in
  let precise = MA.analyze ~const_facts:facts ~body () in
  Alcotest.check check_verdict "constants say no" MA.No_alias
    (MA.verdict precise s1 l1)

let test_direct_must_alias () =
  reset_ids ();
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x0ffc in
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l1 = ld ~width:8 (f 0) (r 2) 0 in
  let body = [ m1; m2; s1; l1 ] in
  let facts = CP.analyze ~body in
  let precise = MA.analyze ~const_facts:facts ~body () in
  Alcotest.check check_verdict "overlapping constants say must"
    MA.Must_alias (MA.verdict precise s1 l1)

let test_policy_gates_static () =
  reset_ids ();
  (* same-direct-region store/load: only the static policy reorders *)
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x2000 in
  let s1 = st (I.Imm 1) (r 1) 0 in
  let l1 = ld (f 0) (r 2) 0 in
  let use = fadd (f 1) (f 0) (f 0) in
  let sb = sb_of [ m1; m2; s1; l1; use ] in
  let pos_of o id =
    let tbl = Hashtbl.create 8 in
    List.iteri
      (fun idx (i : I.t) -> Hashtbl.replace tbl i.I.id idx)
      (Ir.Region.instrs o.Opt.Optimizer.region);
    Hashtbl.find tbl id
  in
  let plain = optimize ~policy:(Sched.Policy.none ()) sb in
  Alcotest.(check bool) "plain none keeps order" true
    (pos_of plain l1.I.id > pos_of plain s1.I.id);
  let static = optimize ~policy:(Sched.Policy.none_with_analysis ()) sb in
  Alcotest.(check bool) "static analysis frees the load" true
    (pos_of static l1.I.id < pos_of static s1.I.id)

let test_static_still_sound () =
  (* the static scheme never speculates, so it must be exact: run a
     direct-heavy random batch against the interpreter *)
  for seed = 0 to 10 do
    let program = Workload.Genprog.program ~seed ~n_loops:2 ~iters:80 in
    let ref_m = Vliw.Machine.create () in
    ignore (Frontend.Interp.run ~fuel:50_000_000 ref_m program);
    let r =
      Smarq.run_program ~fuel:50_000_000 ~scheme:Smarq.Scheme.None_static
        program
    in
    if not (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)
    then Alcotest.failf "seed %d diverged under none+static" seed
  done

(* Cross-base disambiguation edge cases: both bases must resolve to
   constants, and the byte ranges decide the verdict exactly. *)

let test_cross_base_adjacent_ranges () =
  reset_ids ();
  (* [0x1000, 0x1008) and [0x1008, 0x1010): touching, not overlapping *)
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x1008 in
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l1 = ld ~width:8 (f 0) (r 2) 0 in
  let body = [ m1; m2; s1; l1 ] in
  let precise = MA.analyze ~const_facts:(CP.analyze ~body) ~body () in
  Alcotest.check check_verdict "adjacent ranges disjoint" MA.No_alias
    (MA.verdict precise s1 l1);
  (* one byte of overlap through the displacement *)
  reset_ids ();
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x1008 in
  let s1 = st ~width:8 (I.Imm 1) (r 1) 1 in
  let l1 = ld ~width:8 (f 0) (r 2) 0 in
  let body = [ m1; m2; s1; l1 ] in
  let precise = MA.analyze ~const_facts:(CP.analyze ~body) ~body () in
  Alcotest.check check_verdict "one-byte overlap is must" MA.Must_alias
    (MA.verdict precise s1 l1)

let test_cross_base_derived_constants () =
  reset_ids ();
  (* bases built by arithmetic over constants, not straight Movs *)
  let m1 = movi (r 1) 0x1000 in
  let a1 = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 0x100)) in
  let a2 = mk (I.Binop (I.Shl, r 3, I.Reg (r 1), I.Imm 1)) in
  let s1 = st ~width:4 (I.Imm 7) (r 2) 0 in
  let l1 = ld ~width:4 (f 0) (r 3) 0 in
  let body = [ m1; a1; a2; s1; l1 ] in
  let precise = MA.analyze ~const_facts:(CP.analyze ~body) ~body () in
  Alcotest.check check_verdict "derived constant bases disjoint" MA.No_alias
    (MA.verdict precise s1 l1)

let test_cross_base_unknown_side_stays_may () =
  reset_ids ();
  (* r2 is never defined in the body: no constant fact, verdict May *)
  let m1 = movi (r 1) 0x1000 in
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l1 = ld ~width:8 (f 0) (r 2) 0 in
  let body = [ m1; s1; l1 ] in
  let precise = MA.analyze ~const_facts:(CP.analyze ~body) ~body () in
  Alcotest.check check_verdict "unknown base stays may" MA.May_alias
    (MA.verdict precise s1 l1)

let test_certified_set_upgrades_only_may () =
  reset_ids ();
  (* set_certified flips a May verdict to No_alias but can never
     override a constant-exact Must_alias *)
  let m1 = movi (r 1) 0x1000 in
  let m2 = movi (r 2) 0x1000 in
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l1 = ld ~width:8 (f 0) (r 2) 0 in
  let l2 = ld ~width:8 (f 1) (r 3) 0 in
  let body = [ m1; m2; s1; l1; l2 ] in
  let precise = MA.analyze ~const_facts:(CP.analyze ~body) ~body () in
  MA.set_certified precise
    [ (s1.I.id, l1.I.id); (s1.I.id, l2.I.id) ];
  Alcotest.check check_verdict "must-alias immune to certification"
    MA.Must_alias (MA.verdict precise s1 l1);
  Alcotest.check check_verdict "may-alias upgraded by certification"
    MA.No_alias (MA.verdict precise s1 l2);
  Alcotest.(check bool) "certified pair queryable both ways" true
    (MA.certified precise l2.I.id s1.I.id);
  MA.set_certified precise [];
  Alcotest.check check_verdict "reset clears the certified set"
    MA.May_alias (MA.verdict precise s1 l2)

let suite =
  ( "const-prop",
    [
      case "propagation through arithmetic" test_propagation_through_arith;
      case "facts killed by unknown defs" test_kill_on_unknown_def;
      case "direct accesses disambiguated" test_direct_disambiguation;
      case "overlapping constants are must-alias" test_direct_must_alias;
      case "policy gate frees direct reordering" test_policy_gates_static;
      case "static scheme stays exact" test_static_still_sound;
      case "cross-base adjacent ranges" test_cross_base_adjacent_ranges;
      case "cross-base derived constants" test_cross_base_derived_constants;
      case "cross-base unknown side stays may"
        test_cross_base_unknown_side_stays_may;
      case "certified set upgrades only may"
        test_certified_set_upgrades_only_may;
    ] )
