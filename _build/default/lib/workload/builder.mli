(** A small DSL for constructing guest programs: allocates instruction
    ids and labels, accumulates blocks, and assembles a validated
    {!Ir.Program.t}. *)

type t

val create : unit -> t

val label : t -> string -> Ir.Instr.label
(** [label b stem] returns a fresh label ["stem_N"]. *)

val instr : t -> Ir.Instr.op -> Ir.Instr.t
(** Wrap an op with a fresh id. *)

val instrs : t -> Ir.Instr.op list -> Ir.Instr.t list

val add_block :
  t -> Ir.Instr.label -> Ir.Instr.t list -> Ir.Block.terminator -> unit

val straight :
  t -> Ir.Instr.label -> Ir.Instr.t list -> next:Ir.Instr.label -> unit
(** Block falling through to [next]. *)

val loop_back :
  t ->
  Ir.Instr.label ->
  Ir.Instr.t list ->
  counter:Ir.Reg.t ->
  back_to:Ir.Instr.label ->
  exit_to:Ir.Instr.label ->
  iters:int ->
  unit
(** Append a counter decrement and a biased conditional terminator:
    branch back while the counter is positive (probability
    [(iters-1)/iters]). *)

val program : t -> entry:Ir.Instr.label -> Ir.Program.t

(* Operand shorthands. *)
val r : int -> Ir.Instr.operand
val f : int -> Ir.Instr.operand
val i : int -> Ir.Instr.operand
val addr : Ir.Reg.t -> int -> Ir.Instr.addr
