(* Reference interpreter and shared evaluation semantics. *)

open Helpers
module I = Ir.Instr
module M = Vliw.Machine
module E = Vliw.Eval

let test_eval_arith () =
  let m = M.create () in
  M.set_reg m (r 1) 10;
  E.exec_data m (mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 5)));
  Alcotest.(check int) "add" 15 (M.get_reg m (r 2));
  E.exec_data m (mk (I.Binop (I.Div, r 3, I.Reg (r 2), I.Imm 0)));
  Alcotest.(check int) "div by zero yields 0" 0 (M.get_reg m (r 3));
  E.exec_data m (mk (I.Binop (I.Shl, r 4, I.Imm 1, I.Imm 35)));
  Alcotest.(check int) "shift masked to 0..31" 8 (M.get_reg m (r 4));
  E.exec_data m (mk (I.Cmp (I.Le, r 5, I.Imm 3, I.Imm 3)));
  Alcotest.(check int) "cmp true is 1" 1 (M.get_reg m (r 5));
  E.exec_data m (mk (I.Unop_neg (r 6, I.Imm 9)));
  Alcotest.(check int) "neg" (-9) (M.get_reg m (r 6))

let test_eval_memory () =
  let m = M.create () in
  M.set_reg m (r 1) 1000;
  E.exec_data m (st ~width:8 (I.Imm 0xABCD) (r 1) 16);
  E.exec_data m (ld ~width:8 (f 1) (r 1) 16);
  Alcotest.(check int) "store/load roundtrip" 0xABCD (M.get_reg m (f 1));
  match E.access_of m (ld ~width:4 (f 2) (r 1) 16) with
  | Some a ->
    Alcotest.(check bool) "access range" true
      (Hw.Access.equal a (Hw.Access.make ~addr:1016 ~width:4))
  | None -> Alcotest.fail "expected an access"

let test_eval_control () =
  let m = M.create () in
  M.set_reg m (r 1) 0;
  let br = mk (I.Branch { cond = I.Reg (r 1); target = "t" }) in
  (match E.exec_control m br with
  | E.Fall_through -> ()
  | _ -> Alcotest.fail "branch on 0 falls through");
  M.set_reg m (r 1) 1;
  (match E.exec_control m br with
  | E.Leave_region "t" -> ()
  | _ -> Alcotest.fail "branch on 1 leaves");
  match E.exec_control m (mk (I.Jump "j")) with
  | E.Goto "j" -> ()
  | _ -> Alcotest.fail "jump goes to label"

let counting_program () =
  reset_ids ();
  (* r1 = 5; loop: r2 += r1; r1 -= 1; if r1 > 0 goto loop; halt *)
  let init =
    Ir.Block.make ~label:"init"
      ~body:[ movi (r 1) 5 ]
      (Ir.Block.Fallthrough "loop")
  in
  let body =
    [
      mk (I.Binop (I.Add, r 2, I.Reg (r 2), I.Reg (r 1)));
      mk (I.Binop (I.Sub, r 1, I.Reg (r 1), I.Imm 1));
      mk (I.Cmp (I.Gt, r 3, I.Reg (r 1), I.Imm 0));
    ]
  in
  let loop =
    Ir.Block.make ~label:"loop" ~body
      (Ir.Block.Cond
         {
           cond = I.Reg (r 3);
           taken = "loop";
           fallthrough = "end";
           taken_probability = 0.8;
         })
  in
  let halt = Ir.Block.make ~label:"end" ~body:[] Ir.Block.Halt in
  Ir.Program.make ~entry:"init" [ init; loop; halt ]

let test_run_program () =
  let p = counting_program () in
  let m = M.create () in
  let stats = Frontend.Interp.run m p in
  Alcotest.(check int) "sum 5+4+3+2+1" 15 (M.get_reg m (r 2));
  Alcotest.(check int) "loop executed 5 times" 5
    (Option.value (Hashtbl.find_opt stats.Frontend.Interp.block_counts "loop")
       ~default:0)

let test_out_of_fuel () =
  reset_ids ();
  let spin =
    Ir.Block.make ~label:"spin" ~body:[] (Ir.Block.Fallthrough "spin")
  in
  let p = Ir.Program.make ~entry:"spin" [ spin ] in
  Alcotest.check_raises "fuel exhausted" Frontend.Interp.Out_of_fuel (fun () ->
      ignore (Frontend.Interp.run ~fuel:100 (M.create ()) p))

let test_trace_superblock () =
  reset_ids ();
  let l1 = ld (f 1) (r 1) 0 in
  let s1 = st (I.Reg (f 1)) (r 2) 4 in
  let br = mk (I.Branch { cond = I.Reg (r 3); target = "out" }) in
  let l2 = ld (f 2) (r 1) 8 in
  let sb = sb_of [ l1; s1; br; l2 ] in
  let m = M.create () in
  M.set_reg m (r 1) 100;
  M.set_reg m (r 2) 200;
  (* not taken: all four execute, three memory events *)
  let t = Frontend.Interp.trace_superblock (M.copy m) sb in
  Alcotest.(check (option string)) "ran through" None t.Frontend.Interp.taken_exit;
  Alcotest.(check int) "three events" 3 (List.length t.Frontend.Interp.events);
  (match t.Frontend.Interp.events with
  | e1 :: _ ->
    Alcotest.(check bool) "first is the load at 100" true
      (Hw.Access.equal e1.Frontend.Interp.range
         (Hw.Access.make ~addr:100 ~width:4));
    Alcotest.(check bool) "load flagged" false e1.Frontend.Interp.is_store
  | [] -> Alcotest.fail "no events");
  (* taken: execution stops at the branch *)
  M.set_reg m (r 3) 1;
  let t2 = Frontend.Interp.trace_superblock m sb in
  Alcotest.(check (option string)) "exit taken" (Some "out")
    t2.Frontend.Interp.taken_exit;
  Alcotest.(check int) "two events before exit" 2
    (List.length t2.Frontend.Interp.events)

let test_interp_matches_eval_on_overlap () =
  (* byte-level aliasing through different widths *)
  let m = M.create () in
  M.set_reg m (r 1) 64;
  E.exec_data m (st ~width:8 (I.Imm 0x0102030405060708) (r 1) 0);
  E.exec_data m (ld ~width:4 (f 1) (r 1) 2);
  Alcotest.(check int) "unaligned sub-read" 0x03040506 (M.get_reg m (f 1))

let suite =
  ( "interp",
    [
      case "arithmetic semantics" test_eval_arith;
      case "memory semantics" test_eval_memory;
      case "control semantics" test_eval_control;
      case "whole-program run" test_run_program;
      case "fuel bound" test_out_of_fuel;
      case "superblock tracing" test_trace_superblock;
      case "byte-level overlap" test_interp_matches_eval_on_overlap;
    ] )
