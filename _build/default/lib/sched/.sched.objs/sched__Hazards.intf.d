lib/sched/hazards.mli: Analysis Hashtbl Ir Policy
