lib/vliw/config.mli: Cache Format Ir
