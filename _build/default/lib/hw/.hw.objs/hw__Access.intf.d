lib/hw/access.mli: Format
