lib/frontend/profiler.ml: Hashtbl Ir Option
