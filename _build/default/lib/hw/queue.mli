(** Order-based alias register queue (Sections 2.4 and 3 of the paper).

    Alias registers form an ordered circular queue of [size] entries
    addressed by an {e offset} relative to a rotating [BASE] pointer.
    A memory operation annotated [Queue {offset; p; c}]:

    - with the C bit, checks every {e set} register whose queue order
      is at-or-after its own register's order — this implements the
      ORDERED-ALIAS-DETECTION-RULE: X checks Y iff Y executed earlier,
      Y has P, X has C, and [order(X) <= order(Y)].  Registers set by
      loads are never checked by loads (hardware marks them);
    - with the P bit, then stores its access range into the register at
      [offset] (check happens before set, so an operation never checks
      itself).

    [rotate n] advances [BASE] by [n], freeing the [n] registers that
    slide off the front of the window.  [amov ~src ~dst] moves the
    range held at offset [src] to offset [dst] and clears [src]
    ([src = dst] just clears).

    Internally the queue tracks the monotonically increasing {e order}
    [base + offset] of every live entry, which is exactly the paper's
    [order(X) = base(X) + offset(X)] invariant. *)

type t

val create : size:int -> t
(** Raises [Invalid_argument] if [size <= 0]. *)

val size : t -> int
val base : t -> int
(** Current logical BASE (total rotation since last reset). *)

val detector : t -> Detector.t
(** Wrap the queue as a generic detector named ["smarq<size>"]. *)

val reset : t -> unit

val on_mem : t -> Ir.Instr.t -> Access.t -> (unit, Detector.violation) result
(** Performs the checks/sets implied by the instruction's annotation.
    Instructions without a [Queue] annotation are ignored.  Raises
    [Invalid_argument] if an annotation offset falls outside the
    register window (software overflow bug). *)

val rotate : t -> int -> unit
val amov : t -> src:int -> dst:int -> unit

val live_entries : t -> (int * Access.t * int) list
(** [(order, range, setter_id)] of every set register, for tests and
    debugging. *)

val checks_performed : t -> int
