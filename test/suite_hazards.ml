(* Direct tests of the hazard-edge builder and the priority function. *)

open Helpers
module I = Ir.Instr

let build_hazards ?(policy = Sched.Policy.smarq ~ar_count:64) body =
  let sb = sb_of body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  Sched.Hazards.build ~sb ~deps ~policy ()

(* The default builder prunes transitively redundant edges, so what
   these tests assert is enforcement: a hazard holds iff the earlier
   instruction still reaches the later one through kept edges. *)
let has_edge h a b =
  let rec reaches x =
    x = b || List.exists reaches (Sched.Hazards.succs h x)
  in
  reaches a

let test_register_edges () =
  reset_ids ();
  let w1 = mk (I.Binop (I.Add, r 1, I.Imm 1, I.Imm 2)) in
  let rd = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 0)) in
  let w2 = mk (I.Binop (I.Add, r 1, I.Imm 5, I.Imm 5)) in
  let h = build_hazards [ w1; rd; w2 ] in
  Alcotest.(check bool) "RAW w1->rd" true (has_edge h w1.I.id rd.I.id);
  Alcotest.(check bool) "WAR rd->w2" true (has_edge h rd.I.id w2.I.id);
  Alcotest.(check bool) "WAW w1->w2" true (has_edge h w1.I.id w2.I.id);
  Alcotest.(check bool) "no spurious back edge" false
    (has_edge h w2.I.id w1.I.id)

let test_memory_edge_strengths () =
  reset_ids ();
  let s_must = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l_must = ld ~width:4 (f 1) (r 1) 4 in  (* overlaps: hard *)
  let l_may = ld (f 2) (r 2) 0 in  (* cross-base: droppable *)
  let h = build_hazards [ s_must; l_must; l_may ] in
  Alcotest.(check bool) "must-alias edge kept" true
    (has_edge h s_must.I.id l_must.I.id);
  Alcotest.(check bool) "may-alias edge dropped under smarq" false
    (has_edge h s_must.I.id l_may.I.id);
  Alcotest.(check bool) "dropped pair recorded" true
    (List.mem (s_must.I.id, l_may.I.id) Sched.Hazards.(h.dropped));
  (* under the none policy the same edge is a hard fence *)
  reset_ids ();
  let s2 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l2m = ld ~width:4 (f 1) (r 1) 4 in
  let l2 = ld (f 2) (r 2) 0 in
  let h2 = build_hazards ~policy:(Sched.Policy.none ()) [ s2; l2m; l2 ] in
  Alcotest.(check bool) "kept under none" true (has_edge h2 s2.I.id l2.I.id);
  Alcotest.(check int) "nothing dropped" 0
    (List.length Sched.Hazards.(h2.dropped))

let test_branch_ordering () =
  reset_ids ();
  let b1 = mk (I.Branch { cond = I.Reg (r 1); target = "a" }) in
  let b2 = mk (I.Branch { cond = I.Reg (r 2); target = "b" }) in
  let h = build_hazards [ b1; b2 ] in
  Alcotest.(check bool) "branches stay ordered" true
    (has_edge h b1.I.id b2.I.id)

let test_priority_prefers_long_chains () =
  reset_ids ();
  (* a load feeding a 3-deep FP chain must outrank an isolated mov *)
  let l1 = ld (f 1) (r 1) 0 in
  let a1 = fadd (f 1) (f 1) (f 1) in
  let a2 = fadd (f 1) (f 1) (f 1) in
  let a3 = fadd (f 2) (f 1) (f 1) in
  let lone = movi (r 9) 1 in
  let body = [ l1; a1; a2; a3; lone ] in
  let h = build_hazards body in
  let heights =
    Sched.Priority.heights ~body ~hazards:h ~latency:default_latency
  in
  let height id = Hashtbl.find heights id in
  Alcotest.(check bool) "chain head tallest" true
    (height l1.I.id > height lone.I.id);
  Alcotest.(check bool) "monotone along the chain" true
    (height l1.I.id > height a1.I.id && height a1.I.id > height a3.I.id)

let test_queue_wraparound () =
  (* a 4-register queue serving 10 sequential lifetimes via rotation:
     logical orders exceed the physical size but offsets never do *)
  let q = Hw.Queue.create ~size:4 in
  for k = 0 to 9 do
    let set =
      I.make ~id:(100 + k)
        (I.Load
           {
             dst = f 0;
             addr = { I.base = r 0; disp = 0 };
             width = 4;
             annot = Ir.Annot.queue ~offset:0 ~p:true ~c:false;
           })
    in
    (match Hw.Queue.on_mem q set (Hw.Access.make ~addr:(k * 100) ~width:4) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "set cannot fault");
    (* a store checking at offset 0 sees exactly this entry *)
    let chk =
      I.make ~id:(200 + k)
        (I.Store
           {
             src = I.Imm 0;
             addr = { I.base = r 0; disp = 0 };
             width = 4;
             annot = Ir.Annot.queue ~offset:0 ~p:false ~c:true;
           })
    in
    (match Hw.Queue.on_mem q chk (Hw.Access.make ~addr:(k * 100) ~width:4) with
    | Error v -> Alcotest.(check int) "hits the current setter" (100 + k)
                   v.Hw.Detector.setter
    | Ok () -> Alcotest.fail "expected a hit");
    Hw.Queue.rotate q 1
  done;
  Alcotest.(check int) "base advanced past the physical size" 10
    (Hw.Queue.base q);
  Alcotest.(check int) "queue drained" 0
    (List.length (Hw.Queue.live_entries q))

let suite =
  ( "hazards",
    [
      case "register hazard edges" test_register_edges;
      case "memory edge strengths and drops" test_memory_edge_strengths;
      case "branch ordering" test_branch_ordering;
      case "critical-path priority" test_priority_prefers_long_chains;
      case "queue wraparound across rotations" test_queue_wraparound;
    ] )
