lib/hw/detector.ml: Access Format Ir
