lib/sched/alat_annot.ml: Analysis Hashtbl Hazards Ir List Option
