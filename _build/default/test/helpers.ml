(* Shared builders and harnesses for the test suites. *)

module I = Ir.Instr

let next_id = ref 1

let fresh () =
  let id = !next_id in
  incr next_id;
  id

let reset_ids () = next_id := 1

let mk op = I.make ~id:(fresh ()) op

let ld ?(width = 4) dst base disp =
  mk (I.Load { dst; addr = { I.base; disp }; width; annot = Ir.Annot.none })

let st ?(width = 4) src base disp =
  mk (I.Store { src; addr = { I.base; disp }; width; annot = Ir.Annot.none })

let fadd d a b = mk (I.Fbinop (I.Fadd, d, I.Reg a, I.Reg b))
let movi d n = mk (I.Mov (d, I.Imm n))

let r n = Ir.Reg.R n
let f n = Ir.Reg.F n

let sb_of body =
  Ir.Superblock.make ~entry:"test_sb" ~body ~final_exit:None
    ~source_blocks:[ "test_sb" ] ()

let default_latency = Vliw.Config.latency Vliw.Config.default

let optimize ?(policy = Sched.Policy.smarq ~ar_count:64) ?(known_alias = []) sb
    =
  let fresh_id = ref (Ir.Superblock.max_instr_id sb + 1_000) in
  Opt.Optimizer.optimize ~policy ~issue_width:4 ~mem_ports:2
    ~latency:default_latency ~fresh_id ~known_alias sb

(* Execute an optimized region against the trace of the original
   superblock, iterating fault -> known-alias -> re-optimize like the
   runtime does.  Returns the number of faults serviced.  Asserts final
   machine equality with the reference. *)
let run_to_commit ?(policy = Sched.Policy.smarq ~ar_count:64)
    ?(detector = Hw.Queue.detector (Hw.Queue.create ~size:64)) ~init sb =
  let config = Vliw.Config.default in
  let ref_machine = Vliw.Machine.create () in
  List.iter (fun (reg, v) -> Vliw.Machine.set_reg ref_machine reg v) init;
  let machine = Vliw.Machine.copy ref_machine in
  let trace = Frontend.Interp.trace_superblock ref_machine sb in
  let mems = Ir.Superblock.memory_ops sb in
  (* mirror the runtime's escalation: learn the pair first; if the same
     pair faults again (a scheme with false positives), pin both ops
     out of speculation entirely *)
  let expand known pinned =
    List.fold_left
      (fun acc pin ->
        List.fold_left
          (fun acc (m : Ir.Instr.t) ->
            if m.id = pin then acc else (pin, m.id) :: acc)
          acc mems)
      known pinned
  in
  let pair_known (a, b) known =
    List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) known
  in
  let rec go known pinned faults =
    if faults > 60 then Alcotest.fail "did not converge after 60 faults";
    (* like the runtime: after too many faults, give up on speculation
       for this region entirely *)
    let policy =
      if faults >= 12 then Sched.Policy.none () else policy
    in
    let o = optimize ~policy ~known_alias:(expand known pinned) sb in
    let r =
      Vliw.Region_exec.run ~config ~detector ~machine o.Opt.Optimizer.region
    in
    match r.Vliw.Region_exec.outcome with
    | Vliw.Region_exec.Alias_fault v ->
      let pair = (v.Hw.Detector.setter, v.Hw.Detector.checker) in
      if pair_known pair known then
        go known
          (v.Hw.Detector.setter :: v.Hw.Detector.checker :: pinned)
          (faults + 1)
      else go (pair :: known) pinned (faults + 1)
    | Vliw.Region_exec.Committed exit_label ->
      let expected_exit =
        match trace.Frontend.Interp.taken_exit with
        | Some l -> Some l
        | None -> None  (* final_exit is None for our test superblocks *)
      in
      Alcotest.(check (option string))
        "same exit" expected_exit exit_label;
      if not (Vliw.Machine.equal_guest_state ref_machine machine) then begin
        let diffs = Vliw.Machine.diff_guest_state ref_machine machine in
        Alcotest.fail
          ("state mismatch: " ^ String.concat "; "
             (List.filteri (fun i _ -> i < 5) diffs))
      end;
      faults
  in
  go [] [] 0

let case name fn = Alcotest.test_case name `Quick fn

(* Wrap a QCheck property as an alcotest case. *)
let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)
