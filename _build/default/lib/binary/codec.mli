(** Assembler and disassembler for guest binary images.

    Each instruction occupies one 16-byte record:

    {v
    byte 0      opcode
    byte 1      destination / primary register
    byte 2      operand-a register (0xff = immediate, in bytes 6-7)
    byte 3      operand-b register (0xff = immediate, in bytes 8-15)
    byte 4      reserved
    byte 5      access width (memory operations)
    bytes 6-7   operand-a immediate (signed 16-bit)
    bytes 8-15  operand-b immediate / displacement / branch target
    v}

    Registers encode as [kind lsl 6 lor index] (kind 0 = integer, 1 =
    floating point); optimizer temporaries and region-only instructions
    (annotations, [Rotate], [Amov], [Exit]) have no encoding — guest
    binaries never contain them.

    Control flow: block terminators are encoded as [BR cond, target]
    (conditional, falls through to the next record) and [JMP target]
    and [HALT]; targets are instruction indices.  Branch-probability
    hints do {e not} survive assembly — a disassembled program carries
    0.5 everywhere, and the runtime must rediscover bias by edge
    profiling, exactly as a real binary translator does. *)

exception Unencodable of string

val assemble : Ir.Program.t -> bytes
(** Lay out blocks (entry first, the rest in label order), resolve
    labels to instruction indices, and emit the image.  Raises
    {!Unencodable} for region-only instructions, optimizer temporaries,
    or operand-a immediates outside 16 bits. *)

val disassemble : bytes -> Ir.Program.t
(** Rebuild a CFG from an image: leaders are the entry, every branch
    target, and every successor of a control record; blocks are named
    ["L<index>"].  Raises [Invalid_argument] on malformed images or
    unknown opcodes. *)
