(** Memory access ranges.

    An access range is the closed byte interval [[lo, hi]] touched by a
    memory operation; the paper's example uses 4-byte accesses covering
    [[r0, r0+3]].  Hardware alias detection compares ranges for
    overlap. *)

type t = {
  lo : int;
  hi : int;
}

val make : addr:int -> width:int -> t
(** [make ~addr ~width] is the range [[addr, addr + width - 1]].
    Raises [Invalid_argument] if [width <= 0]. *)

val overlap : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
