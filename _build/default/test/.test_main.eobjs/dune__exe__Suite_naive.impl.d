test/suite_naive.ml: Alcotest Analysis Frontend Helpers Hw Ir List Opt Printf Runtime Sched Smarq Vliw Workload
