(** Translated, scheduled regions — the unit of atomic execution.

    A region is the output of the optimizer for one superblock: VLIW
    bundles (one instruction list per issue cycle) whose memory
    operations carry alias annotations, possibly interleaved with
    [Rotate] and [Amov] alias-queue management instructions.

    Regions also carry the bookkeeping the runtime needs to handle an
    alias exception: which pair of original memory operations each
    check corresponds to is recoverable from the hardware model, and
    [assumed_no_alias] lists the speculation assumptions that a
    conservative re-optimization must drop. *)

type t = {
  entry : Instr.label;  (** guest label this region translates *)
  bundles : Instr.t list array;  (** index = issue cycle *)
  final_exit : Instr.label option;
  ar_window : int;  (** max alias-register offset used + 1 *)
  assumed_no_alias : (int * int) list;
      (** pairs of original instruction ids speculated disjoint *)
  certified_no_alias : (int * int) list;
      (** pairs statically {e proven} disjoint by the alias certifier;
          an alias fault on one of these is a hard soundness error,
          not a mis-speculation *)
  source : Superblock.t;  (** the superblock this region was built from *)
}

val make :
  entry:Instr.label ->
  bundles:Instr.t list array ->
  final_exit:Instr.label option ->
  ar_window:int ->
  assumed_no_alias:(int * int) list ->
  ?certified_no_alias:(int * int) list ->
  source:Superblock.t ->
  unit ->
  t

val schedule_length : t -> int
(** Number of issue cycles. *)

val instrs : t -> Instr.t list
(** All instructions in issue order (bundle by bundle). *)

val instr_count : t -> int
val memory_op_count : t -> int
val pp : Format.formatter -> t -> unit
