(* The translation cache subsystem: per-policy eviction order, region
   chaining and unchaining, capacity accounting, telemetry, and the
   behavior-preservation guarantee of the default Unbounded policy. *)

open Helpers
module I = Ir.Instr
module P = Smarq.Tcache.Policy
module S = Smarq.Tcache.Store
module T = Smarq.Tcache.Telemetry

let mk ?capacity policy : int S.t = S.create ?capacity ~policy ()

(* value = size, so stores can be cross-checked against accounting *)
let ins c key size = S.insert c key ~size size

let test_lru_eviction_order () =
  let c = mk ~capacity:30 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  ins c "c" 10;
  ignore (S.find c "a");
  (* b is now least recently used *)
  ins c "d" 10;
  Alcotest.(check bool) "b evicted" false (S.mem c "b");
  Alcotest.(check bool) "a kept (recently used)" true (S.mem c "a");
  Alcotest.(check bool) "c kept" true (S.mem c "c");
  Alcotest.(check bool) "d resident" true (S.mem c "d");
  Alcotest.(check int) "one eviction" 1 (S.telemetry c).T.evictions

let test_fifo_eviction_order () =
  let c = mk ~capacity:30 P.Fifo in
  ins c "a" 10;
  ins c "b" 10;
  ins c "c" 10;
  ignore (S.find c "a");
  (* the touch is irrelevant to FIFO: a is still oldest *)
  ins c "d" 10;
  Alcotest.(check bool) "a evicted despite touch" false (S.mem c "a");
  Alcotest.(check bool) "b kept" true (S.mem c "b")

let test_flush_all_policy () =
  let c = mk ~capacity:30 P.Flush_all in
  ins c "a" 10;
  ins c "b" 10;
  ins c "c" 10;
  ins c "d" 10;
  Alcotest.(check int) "only the new entry survives" 1 (S.length c);
  Alcotest.(check bool) "d resident" true (S.mem c "d");
  Alcotest.(check int) "one flush" 1 (S.telemetry c).T.flushes;
  Alcotest.(check int) "no per-entry evictions" 0 (S.telemetry c).T.evictions

let test_unbounded_never_evicts () =
  let c = mk P.Unbounded in
  for i = 0 to 99 do
    ins c (Printf.sprintf "r%d" i) 50
  done;
  Alcotest.(check int) "all resident" 100 (S.length c);
  Alcotest.(check int) "no evictions" 0 (S.telemetry c).T.evictions;
  Alcotest.(check int) "resident accounted" 5000 (S.resident_instrs c)

let test_capacity_accounting () =
  let c = mk ~capacity:25 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  Alcotest.(check int) "resident" 20 (S.resident_instrs c);
  (* replacing a label swaps sizes, not adds *)
  ins c "a" 5;
  Alcotest.(check int) "replace re-accounts" 15 (S.resident_instrs c);
  Alcotest.(check int) "peak tracked" 20
    (S.telemetry c).T.peak_resident_instrs;
  (* a region larger than the whole cache is rejected *)
  ins c "huge" 26;
  Alcotest.(check bool) "oversized rejected" false (S.mem c "huge");
  Alcotest.(check int) "rejection counted" 1 (S.telemetry c).T.rejections;
  Alcotest.(check bool) "others undisturbed" true (S.mem c "a" && S.mem c "b")

let test_hit_miss_telemetry () =
  let c = mk ~capacity:100 P.Lru in
  ins c "a" 10;
  ignore (S.find c "a");
  ignore (S.find c "a");
  ignore (S.find c "nope");
  let t = S.telemetry c in
  Alcotest.(check int) "hits" 2 t.T.hits;
  Alcotest.(check int) "misses" 1 t.T.misses;
  Alcotest.(check int) "insertions" 1 t.T.insertions

let test_chain_follow () =
  let c = mk ~capacity:100 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  Alcotest.(check (option int)) "no link yet" None (S.follow c ~from:"a" ~exit:"b");
  S.chain c ~from:"a" ~exit:"b";
  Alcotest.(check (option int)) "link followed" (Some 10)
    (S.follow c ~from:"a" ~exit:"b");
  (* chaining to an absent label is a no-op *)
  S.chain c ~from:"a" ~exit:"ghost";
  Alcotest.(check (option int)) "absent target" None
    (S.follow c ~from:"a" ~exit:"ghost");
  Alcotest.(check int) "installs counted" 1
    (S.telemetry c).T.chains_installed;
  Alcotest.(check int) "follows counted" 1 (S.telemetry c).T.chain_follows

let test_unchain_on_eviction () =
  let c = mk ~capacity:30 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  S.chain c ~from:"a" ~exit:"b";
  ignore (S.find c "b");
  ignore (S.find c "a");
  (* b is the LRU victim; the chain a -> b must die with it *)
  ins c "d" 15;
  Alcotest.(check bool) "b evicted" false (S.mem c "b");
  Alcotest.(check (option int)) "stale chain broken" None
    (S.follow c ~from:"a" ~exit:"b");
  Alcotest.(check bool) "breaks counted" true
    ((S.telemetry c).T.chains_broken >= 1)

let test_unchain_on_invalidation () =
  let c = mk ~capacity:100 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  S.chain c ~from:"a" ~exit:"b";
  S.chain c ~from:"b" ~exit:"a";
  S.invalidate c "b";
  Alcotest.(check (option int)) "into invalidated" None
    (S.follow c ~from:"a" ~exit:"b");
  Alcotest.(check (option int)) "out of invalidated" None
    (S.follow c ~from:"b" ~exit:"a");
  Alcotest.(check int) "invalidation counted" 1
    (S.telemetry c).T.invalidations;
  (* invalidating an absent label is a no-op *)
  S.invalidate c "ghost";
  Alcotest.(check int) "no-op invalidation" 1 (S.telemetry c).T.invalidations

let test_replace_rechains () =
  let c = mk ~capacity:100 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  S.chain c ~from:"a" ~exit:"b";
  S.chain c ~from:"b" ~exit:"a";
  (* re-optimization rewrites b in place *)
  S.replace c "b" ~size:20;
  Alcotest.(check (option int)) "chains into b survive" (Some 10)
    (S.follow c ~from:"a" ~exit:"b");
  Alcotest.(check (option int)) "chains out of b rebuilt" None
    (S.follow c ~from:"b" ~exit:"a");
  Alcotest.(check int) "size re-accounted" 30 (S.resident_instrs c);
  (* replacing an absent label is a no-op *)
  S.replace c "ghost" ~size:5;
  Alcotest.(check int) "no phantom entries" 2 (S.length c)

let test_flush_clears_everything () =
  let c = mk ~capacity:100 P.Lru in
  ins c "a" 10;
  ins c "b" 10;
  S.chain c ~from:"a" ~exit:"b";
  S.flush c;
  Alcotest.(check int) "empty" 0 (S.length c);
  Alcotest.(check int) "no resident instrs" 0 (S.resident_instrs c);
  Alcotest.(check (option int)) "chains gone" None
    (S.follow c ~from:"a" ~exit:"b");
  Alcotest.(check int) "flush counted" 1 (S.telemetry c).T.flushes

let test_self_chain () =
  (* a self-loop region exits to its own entry — the hottest chain of
     all; it must survive follows and die on invalidation *)
  let c = mk ~capacity:100 P.Lru in
  ins c "loop" 10;
  S.chain c ~from:"loop" ~exit:"loop";
  Alcotest.(check (option int)) "self link" (Some 10)
    (S.follow c ~from:"loop" ~exit:"loop");
  S.invalidate c "loop";
  Alcotest.(check (option int)) "gone" None
    (S.follow c ~from:"loop" ~exit:"loop")

let test_policy_parsing () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (P.to_string p) true
        (P.of_string (P.to_string p) = p))
    P.all;
  Alcotest.(check bool) "flush alias" true (P.of_string "flush" = P.Flush_all);
  Alcotest.check_raises "unknown policy"
    (Invalid_argument "unknown tcache policy \"bogus\"") (fun () ->
      ignore (P.of_string "bogus"))

(* ---- driver-level: the Unbounded default is behavior-preserving ----

   Reference cycle counts recorded from the seed driver (raw Hashtbl
   cache, commit 05cd55a) at scale 1: the subsystem must reproduce them
   exactly, per benchmark, per scheme. *)

let seed_reference =
  (* benchmark, scheme, total_cycles, region_entries, rollbacks *)
  [
    ("wupwise", Smarq.Scheme.Smarq 64, 566972, 650, 0);
    ("wupwise", Smarq.Scheme.Alat, 799334, 652, 2);
    ("wupwise", Smarq.Scheme.None_, 604022, 650, 0);
    ("swim", Smarq.Scheme.Smarq 64, 797872, 650, 0);
    ("swim", Smarq.Scheme.Alat, 1344740, 654, 4);
    ("swim", Smarq.Scheme.None_, 840122, 650, 0);
    ("mgrid", Smarq.Scheme.Smarq 64, 594272, 650, 0);
    ("mgrid", Smarq.Scheme.Alat, 594272, 650, 0);
    ("mgrid", Smarq.Scheme.None_, 615072, 650, 0);
    ("applu", Smarq.Scheme.Smarq 64, 1161422, 650, 0);
    ("applu", Smarq.Scheme.Alat, 1506220, 652, 2);
    ("applu", Smarq.Scheme.None_, 1229672, 650, 0);
    ("mesa", Smarq.Scheme.Smarq 64, 313272, 650, 0);
    ("mesa", Smarq.Scheme.Alat, 457178, 652, 2);
    ("mesa", Smarq.Scheme.None_, 370472, 650, 0);
    ("art", Smarq.Scheme.Smarq 64, 627548, 651, 1);
    ("art", Smarq.Scheme.Alat, 627548, 651, 1);
    ("art", Smarq.Scheme.None_, 544716, 650, 0);
    ("equake", Smarq.Scheme.Smarq 64, 613096, 651, 1);
    ("equake", Smarq.Scheme.Alat, 510566, 650, 0);
    ("equake", Smarq.Scheme.None_, 532666, 650, 0);
    ("ammp", Smarq.Scheme.Smarq 64, 1305098, 651, 1);
    ("ammp", Smarq.Scheme.Alat, 1181872, 650, 0);
    ("ammp", Smarq.Scheme.None_, 1281322, 650, 0);
    ("apsi", Smarq.Scheme.Smarq 64, 789472, 650, 0);
    ("apsi", Smarq.Scheme.Alat, 1069350, 652, 2);
    ("apsi", Smarq.Scheme.None_, 837572, 650, 0);
    ("sixtrack", Smarq.Scheme.Smarq 64, 561422, 650, 0);
    ("sixtrack", Smarq.Scheme.Alat, 561422, 650, 0);
    ("sixtrack", Smarq.Scheme.None_, 572472, 650, 0);
  ]

let test_unbounded_matches_seed () =
  List.iter
    (fun (bench, scheme, cycles, entries, rollbacks) ->
      let program =
        Workload.Specfp.program ~scale:1 (Workload.Specfp.find bench)
      in
      let r = Smarq.run_program ~fuel:1_000_000_000 ~scheme program in
      let st = r.Runtime.Driver.stats in
      let tag field =
        Printf.sprintf "%s/%s %s" bench (Smarq.Scheme.name scheme) field
      in
      Alcotest.(check int) (tag "cycles") cycles st.Runtime.Stats.total_cycles;
      Alcotest.(check int) (tag "entries") entries
        st.Runtime.Stats.region_entries;
      Alcotest.(check int) (tag "rollbacks") rollbacks
        st.Runtime.Stats.rollbacks)
    seed_reference

(* ---- driver-level: bounded cache under region pressure ---- *)

let pressure_program ~loops ~inner ~outer =
  let bld = Workload.Builder.create () in
  let a = r 1 and b = r 2 and idx = r 4 and outer_c = r 10 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x10000);
         I.Mov (b, I.Imm 0x20000);
         I.Mov (outer_c, I.Imm outer);
       ])
    ~next:"setup_0";
  for k = 0 to loops - 1 do
    let setup = Printf.sprintf "setup_%d" k in
    let loop = Printf.sprintf "loop_%d" k in
    let next =
      if k = loops - 1 then "outer_latch" else Printf.sprintf "setup_%d" (k + 1)
    in
    Workload.Builder.straight bld setup
      (Workload.Builder.instrs bld [ I.Mov (idx, I.Imm inner) ])
      ~next:loop;
    let disp = k * 64 in
    let body =
      Workload.Builder.instrs bld
        [
          I.Load
            { dst = f 1; addr = { I.base = a; disp }; width = 8;
              annot = Ir.Annot.none };
          I.Load
            { dst = f 2; addr = { I.base = b; disp }; width = 8;
              annot = Ir.Annot.none };
          I.Fbinop (I.Fadd, f 3, I.Reg (f 1), I.Reg (f 2));
          I.Store
            { src = I.Reg (f 3); addr = { I.base = a; disp = disp + 8 };
              width = 8; annot = Ir.Annot.none };
        ]
    in
    Workload.Builder.loop_back bld loop body ~counter:idx ~back_to:loop
      ~exit_to:next ~iters:inner
  done;
  Workload.Builder.loop_back bld "outer_latch" [] ~counter:outer_c
    ~back_to:"setup_0" ~exit_to:"done" ~iters:outer;
  Workload.Builder.add_block bld "done" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let test_bounded_pressure_correct () =
  let program = pressure_program ~loops:6 ~inner:70 ~outer:12 in
  let reference = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:50_000_000 reference program);
  (* size the cache off the unbounded footprint: half of it forces
     evictions while any single region still fits *)
  let unbounded =
    Smarq.run_program ~fuel:50_000_000 ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  Alcotest.(check bool) "unbounded equivalent" true
    (Vliw.Machine.equal_guest_state reference unbounded.Runtime.Driver.machine);
  let full = unbounded.Runtime.Driver.stats.Runtime.Stats.tcache_peak_resident in
  let capacity = max 1 (full / 2) in
  List.iter
    (fun policy ->
      let r =
        Smarq.run_program ~fuel:50_000_000 ~tcache_policy:policy
          ~tcache_capacity:capacity ~scheme:(Smarq.Scheme.Smarq 64) program
      in
      let st = r.Runtime.Driver.stats in
      let tag field =
        Printf.sprintf "%s %s" (Smarq.Tcache.Policy.to_string policy) field
      in
      Alcotest.(check bool) (tag "equivalent") true
        (Vliw.Machine.equal_guest_state reference r.Runtime.Driver.machine);
      Alcotest.(check bool) (tag "capacity bound holds") true
        (st.Runtime.Stats.tcache_peak_resident <= capacity);
      Alcotest.(check bool) (tag "pressure causes turnover") true
        (st.Runtime.Stats.tcache_evictions > 0
        || st.Runtime.Stats.tcache_flushes > 0);
      Alcotest.(check bool) (tag "chains followed") true
        (st.Runtime.Stats.tcache_chain_follows > 0);
      Alcotest.(check bool) (tag "re-translation happened") true
        (st.Runtime.Stats.regions_built
        > unbounded.Runtime.Driver.stats.Runtime.Stats.regions_built))
    [ Smarq.Tcache.Policy.Lru; Smarq.Tcache.Policy.Fifo;
      Smarq.Tcache.Policy.Flush_all ]

let test_chain_follows_on_hot_loop () =
  (* a single hot self-loop: after the region is built, every loop-back
     dispatch should follow the self-chain instead of looking up *)
  let program = pressure_program ~loops:1 ~inner:400 ~outer:1 in
  let r =
    Smarq.run_program ~fuel:50_000_000 ~scheme:(Smarq.Scheme.Smarq 64) program
  in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "most region dispatches chained" true
    (st.Runtime.Stats.tcache_chain_follows
    > st.Runtime.Stats.region_entries / 2)

let suite =
  ( "tcache",
    [
      case "LRU evicts least recently dispatched" test_lru_eviction_order;
      case "FIFO ignores recency" test_fifo_eviction_order;
      case "flush-all drops everything on overflow" test_flush_all_policy;
      case "unbounded never evicts" test_unbounded_never_evicts;
      case "capacity accounting and rejection" test_capacity_accounting;
      case "hit/miss telemetry" test_hit_miss_telemetry;
      case "chain install and follow" test_chain_follow;
      case "eviction breaks chains" test_unchain_on_eviction;
      case "invalidation breaks chains" test_unchain_on_invalidation;
      case "re-optimization keeps incoming chains only"
        test_replace_rechains;
      case "flush clears entries and chains" test_flush_clears_everything;
      case "self-loop chains" test_self_chain;
      case "policy parsing roundtrip" test_policy_parsing;
      case "unbounded reproduces seed cycle counts"
        test_unbounded_matches_seed;
      case "bounded cache: correct under pressure, all policies"
        test_bounded_pressure_correct;
      case "hot loop dispatches through chains"
        test_chain_follows_on_hot_loop;
    ] )
