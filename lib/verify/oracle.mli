(** Differential oracle: the pure interpreter is ground truth.

    Runs a guest program through [Frontend.Interp] and through the full
    dynamic-optimization driver under one or more schemes — optionally
    with a fault-injection {!Fault.plan} layered over each scheme's
    detector — and compares final guest state (registers and memory,
    via [Vliw.Machine.equal_guest_state]).  The first divergence is
    reported as a structured diff; fault and recovery counters ride
    along so campaigns can report recovery overhead. *)

type entry = {
  scheme : string;
  outcome : Runtime.Driver.outcome;
  stats : Runtime.Stats.t;
  injected : int;  (** faults injected into this run *)
  divergence : string list;
      (** empty = final guest state matches the interpreter;
          otherwise [Vliw.Machine.diff_guest_state] lines, optimized
          run vs. oracle *)
}

type report = {
  program : string;  (** label for messages *)
  entries : entry list;
}

val entry_static_ok : entry -> bool
(** The run's static verifier rejected no region (vacuously true with
    verification off). *)

val entry_cert_ok : entry -> bool
(** No non-injected alias fault landed on a statically certified pair
    (vacuously true with certification off). *)

val entry_ok : entry -> bool
(** Completed, converged to the oracle's state, and no static
    rejections — the dynamic and static verdicts must agree that the
    run was sound. *)

val ok : report -> bool

val reference : ?fuel:int -> Ir.Program.t -> Vliw.Machine.t
(** Final machine state of the pure interpreter ([fuel] in
    instructions, default 200,000,000). *)

val run_scheme :
  ?config:Vliw.Config.t ->
  ?fuel:int ->
  ?tcache_policy:Tcache.Policy.t ->
  ?tcache_capacity:int ->
  ?watchdog:int ->
  ?fault:Fault.plan ->
  ?verify:Check.Verifier.mode ->
  ?certify:bool ->
  scheme:Smarq.Scheme.t ->
  Ir.Program.t ->
  Runtime.Driver.result * int
(** One optimized run, with [fault]'s detector wrapper and driver
    hooks installed when given.  Returns the driver result and the
    number of faults the plan injected {e during this run}.  [fuel]
    (guest blocks, default 1e9) and [config] (default: derived from
    the scheme) as in [Smarq.run_program]. *)

val check :
  ?config:Vliw.Config.t ->
  ?fuel:int ->
  ?interp_fuel:int ->
  ?watchdog:int ->
  ?fault:(seed:int -> rate:float -> unit -> Fault.plan) ->
  ?verify:Check.Verifier.mode ->
  ?certify:bool ->
  ?seed:int ->
  ?rate:float ->
  ?name:string ->
  schemes:Smarq.Scheme.t list ->
  Ir.Program.t ->
  report
(** The differential check: interpret once, then run every scheme and
    diff its final state against the oracle's.  When [fault] is given
    (e.g. [Fault.plan]), a {e fresh} plan is built from [seed]
    (default 1) and [rate] (default 0.05) for each scheme, so every
    scheme faces the same campaign.  Schemes run sequentially in list
    order; the whole report is deterministic. *)

val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
