lib/sched/list_sched.ml: Alat_annot Analysis Array Hashtbl Hazards Int Ir List Mask_alloc Naive_alloc Option Policy Printf Priority Smarq_alloc
