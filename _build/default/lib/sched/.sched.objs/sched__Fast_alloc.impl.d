lib/sched/fast_alloc.ml: Analysis Hashtbl List
