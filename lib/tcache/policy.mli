(** Eviction policies for the translation cache.

    The capacity unit is scheduled-region instructions, not entry
    counts: a policy decides which translations to drop when inserting
    a region would push the resident instruction total past the
    configured capacity. *)

type t =
  | Lru  (** evict the least recently dispatched translation *)
  | Fifo  (** evict the oldest translation, ignoring reuse *)
  | Flush_all
      (** Dynamo-style: when the cache is full, drop every translation
          at once and start over (cheap bookkeeping, brutal misses) *)
  | Unbounded
      (** never evict — the seed behavior, and the default *)

val to_string : t -> string

val of_string : string -> t
(** Accepts "lru", "fifo", "flush" / "flush-all" / "flush_all",
    "unbounded" / "none" (case-insensitive).  Raises
    [Invalid_argument] otherwise. *)

val all : t list
val pp : Format.formatter -> t -> unit
