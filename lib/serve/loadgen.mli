(** Open- and closed-loop load generation for {!Server}.

    Closed loop keeps a fixed pipeline of outstanding requests (the
    classic saturating client); open loop issues requests on a fixed
    arrival schedule and lets admission control reject what the service
    cannot absorb — sweeping the open-loop [rate] traces out the
    capacity curve in the rejection counts.

    Request assignment is deterministic: request [i] belongs to tenant
    ["t<i mod tenants>"] and runs job [i mod length jobs]. *)

type mode =
  | Closed of { clients : int }  (** pipeline depth *)
  | Open of { rate : float }  (** offered arrivals per second *)

type spec = {
  mode : mode;
  requests : int;  (** total requests to issue *)
  tenants : int;  (** round-robin tenant count *)
  shared_cache : bool;  (** run against tenant shards *)
  fault : Server.fault_spec option;  (** per-request fault campaigns *)
  deadline : Server.deadline option;  (** per-request deadline budget *)
  jobs : Exec.Matrix.job array;  (** cycled through round-robin *)
}

type result = {
  report : Server.report;  (** the server's counters and latencies *)
  elapsed_s : float;
  throughput_rps : float;  (** completed requests per elapsed second *)
  offered_rps : float option;  (** the open-loop rate, [None] closed *)
}

val run : Server.t -> spec -> result
(** Issue [spec.requests] requests and block until every accepted one
    has replied.  Flushes partial batches before blocking, so any
    [batch] setting is deadlock-free.  Raises [Invalid_argument] on a
    non-positive pipeline/rate/tenant count or an empty job array.  The
    server is left running — callers shut it down. *)
