type t = {
  counts : (Ir.Instr.label, int) Hashtbl.t;
  edges : (Ir.Instr.label * Ir.Instr.label, int) Hashtbl.t;
  hot : int;
  cold_fraction : float;
}

let min_edge_samples = 16

let create ?(hot_threshold = 50) ?(cold_fraction = 0.25) () =
  if hot_threshold <= 0 then invalid_arg "Profiler.create: hot_threshold";
  {
    counts = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    hot = hot_threshold;
    cold_fraction;
  }

let note_execution t l =
  let n = Option.value (Hashtbl.find_opt t.counts l) ~default:0 in
  Hashtbl.replace t.counts l (n + 1)

let note_edge t from_ to_ =
  let key = (from_, to_) in
  let n = Option.value (Hashtbl.find_opt t.edges key) ~default:0 in
  Hashtbl.replace t.edges key (n + 1)

let edge_bias t ~from_ ~taken ~fallthrough =
  let c l = Option.value (Hashtbl.find_opt t.edges (from_, l)) ~default:0 in
  let ct = c taken and cf = c fallthrough in
  let total = ct + cf in
  if total < min_edge_samples then None
  else Some (float_of_int ct /. float_of_int total)

let count t l = Option.value (Hashtbl.find_opt t.counts l) ~default:0
let is_hot t l = count t l >= t.hot

let is_cold_relative t ~seed_count l =
  float_of_int (count t l) < (t.cold_fraction *. float_of_int seed_count)

let hot_threshold t = t.hot
