lib/hw/detector.mli: Access Format Ir
