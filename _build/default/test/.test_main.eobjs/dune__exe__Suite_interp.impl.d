test/suite_interp.ml: Alcotest Frontend Hashtbl Helpers Hw Ir List Option Vliw
