test/suite_opt.ml: Alcotest Analysis Hashtbl Helpers Ir List Opt Sched Vliw
