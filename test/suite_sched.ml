(* Scheduler and alias-register allocation tests, including the
   paper's worked examples (Figures 2/4/6/7) and cross-validation of
   the integrated allocator against the standalone FAST algorithm. *)

open Helpers
module I = Ir.Instr
module C = Analysis.Constraints

let build ?(policy = Sched.Policy.smarq ~ar_count:64) body =
  let sb = sb_of body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let fresh_id = ref (Ir.Superblock.max_instr_id sb + 100) in
  let outcome =
    Sched.List_sched.schedule ~sb ~deps ~policy ~issue_width:4 ~mem_ports:2
      ~latency:default_latency ~fresh_id ()
  in
  (outcome, deps)

(* The Figure 2 program: st [r0+4]; ld [r1]; st [r0]; ld [r2]. *)
let figure2 () =
  reset_ids ();
  let m0 = st (I.Imm 10) (r 0) 4 in
  let m1 = ld (f 1) (r 1) 0 in
  let m2 = st (I.Imm 20) (r 0) 0 in
  let m3 = ld (f 3) (r 2) 0 in
  (m0, m1, m2, m3, [ m0; m1; m2; m3 ])

let issue_pos (outcome : Sched.List_sched.outcome) =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun idx (i : I.t) -> Hashtbl.replace tbl i.I.id idx)
    (Ir.Region.instrs outcome.Sched.List_sched.region);
  fun id -> Hashtbl.find tbl id

let test_figure2_reordering () =
  let m0, m1, m2, m3, body = figure2 () in
  let outcome, _ = build body in
  let pos = issue_pos outcome in
  (* loads hoist above the may-alias stores *)
  Alcotest.(check bool) "ld [r1] above st [r0]" true (pos m1.I.id < pos m2.I.id);
  Alcotest.(check bool) "ld [r2] above st [r0+4]" true
    (pos m3.I.id < pos m0.I.id);
  (* annotations: both loads protected, both stores check *)
  let annot_of id =
    List.find_map
      (fun (i : I.t) -> if i.I.id = id then Some (I.annot i) else None)
      (Ir.Region.instrs outcome.Sched.List_sched.region)
  in
  (match annot_of m1.I.id with
  | Some (Ir.Annot.Queue q) ->
    Alcotest.(check bool) "M1 has P" true q.Ir.Annot.p
  | _ -> Alcotest.fail "M1 lacks queue annotation");
  (match annot_of m3.I.id with
  | Some (Ir.Annot.Queue q) -> Alcotest.(check bool) "M3 has P" true q.Ir.Annot.p
  | _ -> Alcotest.fail "M3 lacks queue annotation");
  (match annot_of m2.I.id with
  | Some (Ir.Annot.Queue q) -> Alcotest.(check bool) "M2 has C" true q.Ir.Annot.c
  | _ -> Alcotest.fail "M2 lacks queue annotation");
  match annot_of m0.I.id with
  | Some (Ir.Annot.Queue q) -> Alcotest.(check bool) "M0 has C" true q.Ir.Annot.c
  | _ -> Alcotest.fail "M0 lacks queue annotation"

let test_figure4_no_unnecessary_check () =
  (* M0 (st [r0+4]) and M2 (st [r0]) are compiler-disambiguated: no
     constraint between them even though reordered. *)
  let m0, _, m2, _, body = figure2 () in
  let outcome, _ = build body in
  match outcome.Sched.List_sched.alloc_result with
  | None -> Alcotest.fail "queue scheme expected"
  | Some r ->
    let between a b =
      List.exists
        (fun (e : C.edge) ->
          (e.C.first = a && e.C.second = b)
          || (e.C.first = b && e.C.second = a))
        (r.Sched.Smarq_alloc.check_edges @ r.Sched.Smarq_alloc.anti_edges)
    in
    Alcotest.(check bool) "no M0/M2 constraint" false
      (between m0.I.id m2.I.id)

let test_constraints_validate () =
  let _, _, _, _, body = figure2 () in
  let outcome, _ = build body in
  match outcome.Sched.List_sched.alloc_result with
  | None -> Alcotest.fail "queue scheme expected"
  | Some r ->
    (match
       C.validate r.Sched.Smarq_alloc.allocation
         ~edges:(r.Sched.Smarq_alloc.check_edges @ r.Sched.Smarq_alloc.anti_edges)
         ~ar_count:64
     with
    | Ok () -> ()
    | Error msgs -> Alcotest.fail (String.concat "; " msgs))

let test_register_deps_respected () =
  reset_ids ();
  let a = mk (I.Binop (I.Add, r 1, I.Imm 1, I.Imm 2)) in
  let b = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 3)) in
  let c = mk (I.Binop (I.Add, r 1, I.Imm 9, I.Imm 9)) in
  (* RAW a->b, WAR b->c, WAW a->c *)
  let outcome, _ = build [ a; b; c ] in
  let pos = issue_pos outcome in
  Alcotest.(check bool) "RAW" true (pos a.I.id < pos b.I.id);
  Alcotest.(check bool) "WAR" true (pos b.I.id < pos c.I.id)

let test_latency_respected () =
  reset_ids ();
  (* a load feeding an add: the add issues at least load_latency later *)
  let l = ld (f 1) (r 1) 0 in
  let a = mk (I.Fbinop (I.Fadd, f 2, I.Reg (f 1), I.Reg (f 1))) in
  let outcome, _ = build [ l; a ] in
  let region = outcome.Sched.List_sched.region in
  let cycle_of id =
    let found = ref (-1) in
    Array.iteri
      (fun c bundle ->
        if List.exists (fun (i : I.t) -> i.I.id = id) bundle then found := c)
      region.Ir.Region.bundles;
    !found
  in
  Alcotest.(check bool) "load-to-use latency" true
    (cycle_of a.I.id - cycle_of l.I.id >= Vliw.Config.default.Vliw.Config.load_latency)

let test_issue_width_respected () =
  reset_ids ();
  let body = List.init 12 (fun k -> movi (r (k mod 8)) k) in
  (* 8 independent movs (into r0..r7) but WAW on repeats serializes
     some; check no bundle exceeds width 4 *)
  let outcome, _ = build body in
  Array.iter
    (fun bundle ->
      Alcotest.(check bool) "bundle within width" true (List.length bundle <= 4))
    outcome.Sched.List_sched.region.Ir.Region.bundles

let test_mem_ports_respected () =
  reset_ids ();
  let body = List.init 8 (fun k -> ld (f k) (r 1) (k * 8)) in
  let outcome, _ = build body in
  Array.iter
    (fun bundle ->
      let mems = List.filter I.is_memory bundle in
      Alcotest.(check bool) "memory ports" true (List.length mems <= 2))
    outcome.Sched.List_sched.region.Ir.Region.bundles

let test_none_policy_preserves_memory_order () =
  let _, _, _, _, body = figure2 () in
  let outcome, _ = build ~policy:(Sched.Policy.none ()) body in
  let mems =
    List.filter I.is_memory (Ir.Region.instrs outcome.Sched.List_sched.region)
  in
  let ids = List.map (fun (i : I.t) -> i.I.id) mems in
  (* may-alias pairs keep program order; the only compiler-disjoint
     pair is (m0, m2), so loads stay below earlier stores *)
  Alcotest.(check bool) "no speculation annotations" true
    (List.for_all
       (fun (i : I.t) -> I.annot i = Ir.Annot.No_annot)
       (Ir.Region.instrs outcome.Sched.List_sched.region));
  (* m1 (id 2) after m0 (id 1); m3 (id 4) after m2 (id 3) *)
  let posn id = Option.get (List.find_index (Int.equal id) ids) in
  Alcotest.(check bool) "ld [r1] stays below st [r0+4]" true
    (posn 2 > posn 1);
  Alcotest.(check bool) "ld [r2] stays below st [r0]" true (posn 4 > posn 3)

let test_store_reorder_policy () =
  reset_ids ();
  (* two cross-base stores: reorderable only with store-store support *)
  let i1 = ld (f 1) (r 3) 0 in
  let i2 = fadd (f 1) (f 1) (f 1) in
  let i3 = fadd (f 1) (f 1) (f 1) in
  let slow_st = st (I.Reg (f 1)) (r 1) 0 in
  let cheap_st = st (I.Imm 7) (r 2) 0 in
  let chain = [ i1; i2; i3; slow_st; cheap_st ] in
  let with_sr, _ = build chain in
  let without, _ =
    build ~policy:(Sched.Policy.smarq_no_store_reorder ~ar_count:64) chain
  in
  let pos_with = issue_pos with_sr and pos_without = issue_pos without in
  let slow = slow_st.I.id and cheap = cheap_st.I.id in
  Alcotest.(check bool) "reordered with support" true
    (pos_with cheap < pos_with slow);
  Alcotest.(check bool) "ordered without support" true
    (pos_without cheap > pos_without slow)

let test_side_exit_fences_stores () =
  reset_ids ();
  let s1 = st (I.Imm 1) (r 1) 0 in
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "out" }) in
  let s2 = st (I.Imm 2) (r 2) 0 in
  let outcome, _ = build [ s1; br; s2 ] in
  let pos = issue_pos outcome in
  Alcotest.(check bool) "store above exit stays above" true
    (pos s1.I.id < pos br.I.id);
  Alcotest.(check bool) "store below exit stays below" true
    (pos s2.I.id > pos br.I.id)

let test_side_exit_allows_dead_load_hoist () =
  reset_ids ();
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "out" }) in
  let l = ld (f 1) (r 1) 0 in
  let use = fadd (f 2) (f 1) (f 1) in
  let live_out = Ir.Reg.Set.of_list [ r 5 ] in
  let sb =
    Ir.Superblock.make ~entry:"t" ~body:[ br; l; use ] ~final_exit:None
      ~source_blocks:[ "t" ]
      ~live_out:[ (br.I.id, live_out) ]
      ()
  in
  let alias = Analysis.May_alias.analyze ~body:sb.Ir.Superblock.body () in
  let deps = Analysis.Depgraph.build ~body:sb.Ir.Superblock.body ~alias () in
  let fresh_id = ref 1000 in
  let outcome =
    Sched.List_sched.schedule ~sb ~deps
      ~policy:(Sched.Policy.smarq ~ar_count:64)
      ~issue_width:4 ~mem_ports:2 ~latency:default_latency ~fresh_id ()
  in
  let pos = issue_pos outcome in
  Alcotest.(check bool) "dead-at-exit load hoists above the exit" true
    (pos l.I.id < pos br.I.id)

let test_side_exit_blocks_live_def_hoist () =
  reset_ids ();
  let br = mk (I.Branch { cond = I.Reg (r 5); target = "out" }) in
  let l = ld (f 1) (r 1) 0 in
  let live_out = Ir.Reg.Set.of_list [ r 5; f 1 ] in
  let sb =
    Ir.Superblock.make ~entry:"t" ~body:[ br; l ] ~final_exit:None
      ~source_blocks:[ "t" ]
      ~live_out:[ (br.I.id, live_out) ]
      ()
  in
  let alias = Analysis.May_alias.analyze ~body:sb.Ir.Superblock.body () in
  let deps = Analysis.Depgraph.build ~body:sb.Ir.Superblock.body ~alias () in
  let fresh_id = ref 1000 in
  let outcome =
    Sched.List_sched.schedule ~sb ~deps
      ~policy:(Sched.Policy.smarq ~ar_count:64)
      ~issue_width:4 ~mem_ports:2 ~latency:default_latency ~fresh_id ()
  in
  let pos = issue_pos outcome in
  Alcotest.(check bool) "live-at-exit def stays below" true
    (pos l.I.id > pos br.I.id)

(* Rotation keeps every executed offset within a small window even when
   many registers are allocated over the region's lifetime (Figure 7's
   point).  Side exits fence reordering into segments, so register
   lifetimes are short; the total P count keeps growing while the
   offset window stays segment-sized. *)
let test_rotation_compacts_window () =
  reset_ids ();
  let segment k =
    (* store first, then loads that hoist above it: two protected
       registers per segment, all dead once the segment's store checks *)
    let s1 = st (I.Reg (f 7)) (r 3) (k * 32) in
    let l1 = ld (f (k mod 4)) (r 1) (k * 32) in
    let l2 = ld (f (4 + (k mod 3))) (r 2) (k * 32) in
    let br = mk (I.Branch { cond = I.Reg (r 9); target = "out" }) in
    [ s1; l1; l2; br ]
  in
  let body = List.concat_map segment [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let outcome, _ = build body in
  let ws = outcome.Sched.List_sched.stats.Sched.List_sched.ar_working_set in
  let p = outcome.Sched.List_sched.stats.Sched.List_sched.p_bits in
  Alcotest.(check bool) "many protected ops" true (p >= 8);
  Alcotest.(check bool)
    (Printf.sprintf "window (%d) far below P count (%d)" ws p)
    true
    (ws * 2 <= p)

let test_order_base_offset_invariant () =
  let _, _, _, _, body = figure2 () in
  let outcome, _ = build body in
  match outcome.Sched.List_sched.alloc_result with
  | None -> Alcotest.fail "queue scheme expected"
  | Some res ->
    let a = res.Sched.Smarq_alloc.allocation in
    Hashtbl.iter
      (fun id order ->
        match C.offset a id with
        | Some off ->
          let base = Hashtbl.find a.C.base id in
          Alcotest.(check int) "order = base + offset" order (base + off)
        | None -> Alcotest.fail "allocated op lacks offset")
      a.C.order

let test_overflow_raises () =
  reset_ids ();
  (* more simultaneously-live protected registers than the machine has:
     20 loads all checked by one final store that may alias all *)
  let loads = List.init 20 (fun k -> ld (f (k mod 8)) (r (10 + (k mod 10))) (k * 8)) in
  let final = st (I.Imm 0) (r 9) 0 in
  let body = loads @ [ final ] in
  let sb = sb_of body in
  let alias = Analysis.May_alias.analyze ~body () in
  let deps = Analysis.Depgraph.build ~body ~alias () in
  let fresh_id = ref 1000 in
  let raised =
    try
      ignore
        (Sched.List_sched.schedule ~sb ~deps
           ~policy:(Sched.Policy.smarq ~ar_count:2)
           ~issue_width:4 ~mem_ports:2 ~latency:default_latency ~fresh_id ());
      false
    with Sched.Smarq_alloc.Overflow _ -> true
  in
  (* with only 2 registers, either the non-speculation mode saved us
     (fine) or Overflow was raised (also fine); what must not happen is
     a region claiming a window beyond the register count *)
  if not raised then begin
    let outcome, _ = build ~policy:(Sched.Policy.smarq ~ar_count:2) body in
    Alcotest.(check bool) "window within 2 registers" true
      (outcome.Sched.List_sched.region.Ir.Region.ar_window <= 2)
  end

let test_nonspec_mode_engages () =
  reset_ids ();
  (* many cross-base load/store pairs: with 4 registers the scheduler
     must fall into non-speculation mode rather than overflow *)
  let body =
    List.concat
      (List.init 12 (fun k ->
           [
             ld (f (k mod 8)) (r (10 + (k mod 8))) (k * 16);
             st (I.Imm k) (r (18 + (k mod 8))) (k * 16);
           ]))
  in
  let outcome, _ = build ~policy:(Sched.Policy.smarq ~ar_count:4) body in
  Alcotest.(check bool) "nonspec mode used" true
    outcome.Sched.List_sched.stats.Sched.List_sched.used_nonspec_mode;
  Alcotest.(check bool) "window within 4" true
    (outcome.Sched.List_sched.region.Ir.Region.ar_window <= 4)

let test_fast_alloc_agrees () =
  (* On a reorder-only region the integrated allocator's working set
     matches the standalone FAST ALGORITHM's. *)
  let _, _, _, _, body = figure2 () in
  let outcome, _ = build body in
  match outcome.Sched.List_sched.alloc_result with
  | None -> Alcotest.fail "queue scheme expected"
  | Some res ->
    let a = res.Sched.Smarq_alloc.allocation in
    let issue_order =
      List.filter_map
        (fun (i : I.t) -> if I.is_memory i then Some i.I.id else None)
        (Ir.Region.instrs outcome.Sched.List_sched.region)
    in
    (match
       Sched.Fast_alloc.allocate ~issue_order
         ~p_bit:(Hashtbl.mem a.C.p_bit)
         ~c_bit:(Hashtbl.mem a.C.c_bit)
         ~edges:(res.Sched.Smarq_alloc.check_edges @ res.Sched.Smarq_alloc.anti_edges)
     with
    | Error { Sched.Fast_alloc.cycle } ->
      Alcotest.failf "fast alloc found a cycle: %d witness edges"
        (List.length cycle)
    | Ok fa ->
      Alcotest.(check int) "same working set"
        res.Sched.Smarq_alloc.max_offset fa.Sched.Fast_alloc.max_offset)

let test_mask_annotations () =
  let m0, m1, m2, m3, body = figure2 () in
  ignore (m0, m2);
  let outcome, _ = build ~policy:(Sched.Policy.efficeon ()) body in
  let instrs = Ir.Region.instrs outcome.Sched.List_sched.region in
  let annot id =
    List.find_map
      (fun (i : I.t) -> if i.I.id = id then Some (I.annot i) else None)
      instrs
  in
  (* the hoisted loads take registers; the stores carry check masks *)
  (match annot m1.I.id with
  | Some (Ir.Annot.Mask { set_index = Some _; _ }) -> ()
  | _ -> Alcotest.fail "M1 should set a mask register");
  match annot m3.I.id with
  | Some (Ir.Annot.Mask { set_index = Some _; _ }) -> ()
  | _ -> Alcotest.fail "M3 should set a mask register"

let test_alat_annotations () =
  let _, m1, _, m3, body = figure2 () in
  let outcome, _ = build ~policy:(Sched.Policy.alat ()) body in
  let instrs = Ir.Region.instrs outcome.Sched.List_sched.region in
  let advanced id =
    List.exists
      (fun (i : I.t) ->
        i.I.id = id
        &&
        match I.annot i with
        | Ir.Annot.Alat { advanced } -> advanced
        | _ -> false)
      instrs
  in
  Alcotest.(check bool) "hoisted loads advanced" true
    (advanced m1.I.id && advanced m3.I.id)

let test_working_set_measures () =
  let _, _, _, _, body = figure2 () in
  let outcome, _ = build body in
  let ws = Sched.Working_set.measure ~sb:(sb_of body) ~outcome in
  Alcotest.(check int) "program order = memops" 4
    ws.Sched.Working_set.program_order;
  Alcotest.(check bool) "lower bound <= smarq" true
    (ws.Sched.Working_set.lower_bound <= ws.Sched.Working_set.smarq);
  Alcotest.(check bool) "smarq <= p-bit count" true
    (ws.Sched.Working_set.smarq <= max 1 ws.Sched.Working_set.p_bit_order)

let suite =
  ( "sched",
    [
      case "figure 2: loads hoist, bits assigned" test_figure2_reordering;
      case "figure 4: no unnecessary detection" test_figure4_no_unnecessary_check;
      case "allocation satisfies all constraints" test_constraints_validate;
      case "register dependences respected" test_register_deps_respected;
      case "latencies respected" test_latency_respected;
      case "issue width respected" test_issue_width_respected;
      case "memory ports respected" test_mem_ports_respected;
      case "none policy: program-order memory" test_none_policy_preserves_memory_order;
      case "store-reorder policy gate" test_store_reorder_policy;
      case "side exits fence stores" test_side_exit_fences_stores;
      case "dead-at-exit load hoists over exit" test_side_exit_allows_dead_load_hoist;
      case "live-at-exit def stays below exit" test_side_exit_blocks_live_def_hoist;
      case "rotation compacts the window (Fig 7)" test_rotation_compacts_window;
      case "order = base + offset invariant" test_order_base_offset_invariant;
      case "tiny register file: overflow or fit" test_overflow_raises;
      case "non-speculation mode engages" test_nonspec_mode_engages;
      case "integrated = FAST algorithm (reorder-only)" test_fast_alloc_agrees;
      case "efficeon mask annotations" test_mask_annotations;
      case "ALAT advanced-load annotations" test_alat_annotations;
      case "working-set measurement sanity" test_working_set_measures;
    ] )
