(** Superblock region formation along hot paths.

    Starting from a hot seed block, the former follows the biased
    direction of each conditional terminator, turning the unlikely
    direction into a side exit, and merging blocks until it reaches a
    relatively cold block, a block already in the region (loop back
    edge), a halt, or the size limit.

    When the biased direction of a conditional is the {e taken} arm,
    the guard must be inverted so the region's side exit fires on the
    unlikely path; a fresh [Cmp Eq tmp cond 0] into an optimizer
    temporary expresses the inversion without touching guest state. *)

type params = {
  max_blocks : int;  (** blocks merged per superblock (default 8) *)
  min_bias : float;  (** follow a conditional only above this (default 0.6) *)
}

val default_params : params

val form :
  ?params:params ->
  program:Ir.Program.t ->
  liveness:Liveness.t ->
  profiler:Profiler.t ->
  fresh_id:int ref ->
  Ir.Instr.label ->
  Ir.Superblock.t
(** [fresh_id] supplies ids for inserted guard-inversion instructions;
    it is advanced past every id used. *)
