(* The parallel experiment runner and the paged-memory fast path.

   - The paged machine must be observationally equal to a reference
     byte-Hashtbl memory (the seed implementation) under arbitrary
     read/write/checkpoint/rollback/commit sequences, including
     negative addresses and accesses straddling page boundaries.
   - run_matrix must be deterministic: the same job list produces the
     same simulated results at every domain count.
   - Seed-cycle regression: fig15 cycle counts under the new memory and
     runner exactly match the pre-PR values for the default seeds. *)

open Helpers
module M = Vliw.Machine

(* ---- reference model: the seed's byte-granular Hashtbl machine ---- *)

module Model = struct
  type journal_entry =
    | Mem_byte of int * int option
    | Reg of Ir.Reg.t * int option

  type t = {
    regs : (Ir.Reg.t, int) Hashtbl.t;
    mem : (int, int) Hashtbl.t;
    mutable journal : journal_entry list option;
  }

  let create () =
    { regs = Hashtbl.create 64; mem = Hashtbl.create 1024; journal = None }

  let get_reg t r = Option.value (Hashtbl.find_opt t.regs r) ~default:0

  let set_reg t r v =
    (match t.journal with
    | Some entries ->
      t.journal <- Some (Reg (r, Hashtbl.find_opt t.regs r) :: entries)
    | None -> ());
    Hashtbl.replace t.regs r v

  let get_byte t addr = Option.value (Hashtbl.find_opt t.mem addr) ~default:0

  let set_byte t addr b =
    (match t.journal with
    | Some entries ->
      t.journal <- Some (Mem_byte (addr, Hashtbl.find_opt t.mem addr) :: entries)
    | None -> ());
    Hashtbl.replace t.mem addr (b land 0xff)

  let load t ~addr ~width =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) ((acc lsl 8) lor get_byte t (addr + i))
    in
    go (width - 1) 0

  let store t ~addr ~width v =
    for i = 0 to width - 1 do
      set_byte t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

  let in_region t = Option.is_some t.journal
  let checkpoint t = t.journal <- Some []
  let commit t = t.journal <- None

  let rollback t =
    match t.journal with
    | None -> ()
    | Some entries ->
      t.journal <- None;
      List.iter
        (function
          | Mem_byte (addr, Some b) -> Hashtbl.replace t.mem addr b
          | Mem_byte (addr, None) -> Hashtbl.remove t.mem addr
          | Reg (r, Some v) -> Hashtbl.replace t.regs r v
          | Reg (r, None) -> Hashtbl.remove t.regs r)
        entries

  let dump_mem t =
    Hashtbl.fold (fun a b acc -> if b <> 0 then (a, b) :: acc else acc) t.mem []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let dump_regs t =
    Hashtbl.fold
      (fun r v acc ->
        if Ir.Reg.is_temp r || v = 0 then acc else (r, v) :: acc)
      t.regs []
    |> List.sort (fun (a, _) (b, _) -> Ir.Reg.compare a b)
end

(* ---- operation sequences ---- *)

type op =
  | Set_reg of Ir.Reg.t * int
  | Load of int * int  (* addr, width *)
  | Store of int * int * int  (* addr, width, value *)
  | Checkpoint
  | Commit
  | Rollback

let pp_op = function
  | Set_reg (r, v) -> Printf.sprintf "set %s %d" (Ir.Reg.to_string r) v
  | Load (a, w) -> Printf.sprintf "load [%d]/%d" a w
  | Store (a, w, v) -> Printf.sprintf "store [%d]/%d <- %d" a w v
  | Checkpoint -> "checkpoint"
  | Commit -> "commit"
  | Rollback -> "rollback"

let gen_op =
  let open QCheck.Gen in
  (* addresses hug page boundaries (page size 4096) and go negative, so
     straddling accesses and negative page indices are exercised *)
  let gen_addr =
    oneof
      [
        int_range (-8200) 8200;
        map (fun d -> 4096 + d) (int_range (-8) 8);
        map (fun d -> -4096 + d) (int_range (-8) 8);
      ]
  in
  let gen_reg =
    oneof
      [
        map (fun i -> Ir.Reg.R i) (int_range 0 31);
        map (fun i -> Ir.Reg.F i) (int_range 0 31);
        map (fun i -> Ir.Reg.T i) (int_range 0 200);
      ]
  in
  let gen_width = int_range 1 8 in
  frequency
    [
      (3, map2 (fun r v -> Set_reg (r, v)) gen_reg (int_range (-1000000) 1000000));
      (3, map2 (fun a w -> Load (a, w)) gen_addr gen_width);
      (6, map3 (fun a w v -> Store (a, w, v)) gen_addr gen_width
         (int_range (-1000000000) 1000000000));
      (1, return Checkpoint);
      (1, return Commit);
      (1, return Rollback);
    ]

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 200) gen_op)

let machine_against_model ops =
  let m = M.create () in
  let model = Model.create () in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Set_reg (r, v) ->
        M.set_reg m r v;
        Model.set_reg model r v
      | Load (addr, width) ->
        if M.load m ~addr ~width <> Model.load model ~addr ~width then
          ok := false
      | Store (addr, width, v) ->
        M.store m ~addr ~width v;
        Model.store model ~addr ~width v
      | Checkpoint ->
        if not (Model.in_region model) then begin
          M.checkpoint m;
          Model.checkpoint model
        end
      | Commit ->
        if Model.in_region model then begin
          M.commit m;
          Model.commit model
        end
      | Rollback ->
        if Model.in_region model then begin
          M.rollback m;
          Model.rollback model
        end)
    ops;
  !ok
  && M.dump_mem m = Model.dump_mem model
  && M.dump_regs m = Model.dump_regs model

(* a register set both before and inside a rolled-back region must come
   back to the pre-region value, not 0 (word-journal restore order) *)
let test_rollback_restore_order () =
  let m = M.create () in
  M.set_reg m (r 1) 7;
  M.store m ~addr:4090 ~width:8 0x1122334455667788;  (* straddles pages *)
  M.checkpoint m;
  M.set_reg m (r 1) 8;
  M.set_reg m (r 1) 9;
  M.store m ~addr:4090 ~width:8 1;
  M.store m ~addr:4094 ~width:4 2;
  M.rollback m;
  Alcotest.(check int) "reg restored" 7 (M.get_reg m (r 1));
  Alcotest.(check int) "straddling store undone" 0x1122334455667788
    (M.load m ~addr:4090 ~width:8)

let test_negative_addresses () =
  let m = M.create () in
  M.store m ~addr:(-4100) ~width:8 0xdeadbeef;
  Alcotest.(check int) "negative round trip" 0xdeadbeef
    (M.load m ~addr:(-4100) ~width:8);
  Alcotest.(check int) "adjacent negative unwritten" 0
    (M.load m ~addr:(-4120) ~width:4)

(* ---- run_matrix determinism across domain counts ---- *)

let small_matrix () =
  List.concat_map
    (fun name ->
      List.map
        (fun scheme ->
          Exec.Matrix.of_bench ~scale:1 ~scheme (Workload.Specfp.find name))
        [ Smarq.Scheme.None_; Smarq.Scheme.Smarq 64; Smarq.Scheme.Alat ])
    [ "wupwise"; "mesa"; "art" ]

(* zero out the host-timing fields — the only non-deterministic ones *)
let strip_wall (st : Runtime.Stats.t) =
  {
    st with
    Runtime.Stats.wall_seconds = 0.0;
    translate = Runtime.Profile.create ();
  }

let test_run_matrix_determinism () =
  let seq = Exec.Matrix.run_matrix ~domains:1 (small_matrix ()) in
  let par = Exec.Matrix.run_matrix ~domains:8 (small_matrix ()) in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Exec.Matrix.outcome) (b : Exec.Matrix.outcome) ->
      Alcotest.(check string) "same label" a.Exec.Matrix.job.Exec.Matrix.label
        b.Exec.Matrix.job.Exec.Matrix.label;
      let sa = strip_wall a.Exec.Matrix.result.Runtime.Driver.stats in
      let sb = strip_wall b.Exec.Matrix.result.Runtime.Driver.stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical stats" a.Exec.Matrix.job.Exec.Matrix.label)
        true (sa = sb);
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical final state"
           a.Exec.Matrix.job.Exec.Matrix.label)
        true
        (Vliw.Machine.equal_guest_state
           a.Exec.Matrix.result.Runtime.Driver.machine
           b.Exec.Matrix.result.Runtime.Driver.machine))
    seq par

let test_pool_order_and_exceptions () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map succ xs)
    (Exec.Pool.map ~domains:7 succ xs);
  Alcotest.check_raises "job exception propagates" (Failure "job 13") (fun () ->
      ignore
        (Exec.Pool.map ~domains:4
           (fun i -> if i = 13 then failwith "job 13" else i)
           xs))

(* ---- seed-cycle regression: fig15 under the paged memory and the
   parallel runner must reproduce the pre-PR driver exactly.
   Reference total_cycles recorded from the seed tree (commit 0d72495,
   byte-Hashtbl machine, sequential harness) at scale 5. ---- *)

let fig15_seed_reference =
  [
    ("wupwise", Smarq.Scheme.None_, 892422);
    ("wupwise", Smarq.Scheme.Smarq 64, 695772);
    ("wupwise", Smarq.Scheme.Smarq 16, 695772);
    ("wupwise", Smarq.Scheme.Alat, 956134);
    ("swim", Smarq.Scheme.None_, 1201322);
    ("swim", Smarq.Scheme.Smarq 64, 977072);
    ("swim", Smarq.Scheme.Smarq 16, 977072);
    ("swim", Smarq.Scheme.Alat, 1616340);
    ("mgrid", Smarq.Scheme.None_, 951072);
    ("mgrid", Smarq.Scheme.Smarq 64, 840672);
    ("mgrid", Smarq.Scheme.Smarq 16, 840672);
    ("mgrid", Smarq.Scheme.Alat, 840672);
    ("applu", Smarq.Scheme.None_, 1677672);
    ("applu", Smarq.Scheme.Smarq 64, 1315422);
    ("applu", Smarq.Scheme.Smarq 16, 1353372);
    ("applu", Smarq.Scheme.Alat, 1710620);
    ("mesa", Smarq.Scheme.None_, 684072);
    ("mesa", Smarq.Scheme.Smarq 64, 380472);
    ("mesa", Smarq.Scheme.Smarq 16, 442572);
    ("mesa", Smarq.Scheme.Alat, 605578);
    ("art", Smarq.Scheme.None_, 740716);
    ("art", Smarq.Scheme.Smarq 64, 728348);
    ("art", Smarq.Scheme.Smarq 16, 728348);
    ("art", Smarq.Scheme.Alat, 728348);
    ("equake", Smarq.Scheme.None_, 725866);
    ("equake", Smarq.Scheme.Smarq 64, 711096);
    ("equake", Smarq.Scheme.Smarq 16, 711096);
    ("equake", Smarq.Scheme.Alat, 608566);
    ("ammp", Smarq.Scheme.None_, 1900122);
    ("ammp", Smarq.Scheme.Smarq 64, 1467498);
    ("ammp", Smarq.Scheme.Smarq 16, 1749732);
    ("ammp", Smarq.Scheme.Alat, 1372272);
    ("apsi", Smarq.Scheme.None_, 1167972);
    ("apsi", Smarq.Scheme.Smarq 64, 912672);
    ("apsi", Smarq.Scheme.Smarq 16, 1012722);
    ("apsi", Smarq.Scheme.Alat, 1259750);
    ("sixtrack", Smarq.Scheme.None_, 774072);
    ("sixtrack", Smarq.Scheme.Smarq 64, 715422);
    ("sixtrack", Smarq.Scheme.Smarq 16, 715422);
    ("sixtrack", Smarq.Scheme.Alat, 715422);
  ]

let test_fig15_seed_cycles () =
  let jobs =
    List.map
      (fun (bench, scheme, _) ->
        Exec.Matrix.of_bench ~scale:5 ~scheme (Workload.Specfp.find bench))
      fig15_seed_reference
  in
  let outcomes = Exec.Matrix.run_matrix jobs in
  List.iter2
    (fun (bench, scheme, cycles) (o : Exec.Matrix.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "%s/%s cycles" bench (Smarq.Scheme.name scheme))
        cycles
        o.Exec.Matrix.result.Runtime.Driver.stats.Runtime.Stats.total_cycles)
    fig15_seed_reference outcomes

let suite =
  ( "exec",
    [
      qcase ~count:300 "paged memory == Hashtbl reference model" arb_ops
        machine_against_model;
      case "rollback restore order across pages" test_rollback_restore_order;
      case "negative addresses" test_negative_addresses;
      case "run_matrix: -j 1 and -j 8 identical" test_run_matrix_determinism;
      case "pool: order and exceptions" test_pool_order_and_exceptions;
      case "fig15 seed-cycle regression (scale 5)" test_fig15_seed_cycles;
    ] )
