lib/frontend/liveness.mli: Ir
