(** Shared instruction semantics, used by both the reference
    interpreter and the VLIW region executor so the two can never
    disagree on data behaviour.

    Arithmetic is on native OCaml integers; division by zero yields 0
    (guest programs are synthetic, this keeps them total); shift
    amounts are masked to 0..31.  "Floating-point" operations operate
    on integer values — they exist to exercise distinct latencies and
    functional units, not numerics. *)

val operand_value : Machine.t -> Ir.Instr.operand -> int
val addr_of : Machine.t -> Ir.Instr.addr -> int

val access_of : Machine.t -> Ir.Instr.t -> Hw.Access.t option
(** Runtime access range of a load/store; [None] otherwise. *)

val exec_data : Machine.t -> Ir.Instr.t -> unit
(** Execute the data effect (register/memory updates) of a non-control
    instruction.  [Rotate], [Amov], branches, jumps and exits have no
    data effect and are ignored. *)

type control =
  | Fall_through
  | Goto of Ir.Instr.label
  | Leave_region of Ir.Instr.label

val exec_control : Machine.t -> Ir.Instr.t -> control
(** Control decision of an instruction (uses but does not modify the
    machine). *)
