type t = {
  mutable total_cycles : int;
  mutable interp_cycles : int;
  mutable region_cycles : int;
  mutable optimize_cycles : int;
  mutable schedule_cycles : int;
  mutable instrs_interpreted : int;
  mutable blocks_dispatched : int;
  mutable region_entries : int;
  mutable region_commits : int;
  mutable side_exits_taken : int;
  mutable rollbacks : int;
  mutable rollbacks_not_assumed : int;
  mutable reoptimizations : int;
  mutable pinned_ops : int;
  mutable gave_up_regions : int;
  mutable alias_checks : int;
  (* fault injection and graceful degradation *)
  mutable injected_faults : int;
  mutable spurious_rollbacks : int;
  mutable degraded_regions : int;
  (* translation validation *)
  mutable verified_regions : int;
  mutable rejected_regions : int;
  reject_rules : (string, int) Hashtbl.t;
  (* translation cache *)
  mutable tcache_hits : int;
  mutable tcache_misses : int;
  mutable tcache_evictions : int;
  mutable tcache_flushes : int;
  mutable tcache_invalidations : int;
  mutable tcache_chain_follows : int;
  mutable tcache_peak_resident : int;
  mutable regions_built : int;
  mutable superblock_instrs : int;
  mutable superblock_mem_ops : int;
  mutable p_bits : int;
  mutable c_bits : int;
  mutable check_constraints : int;
  mutable anti_constraints : int;
  mutable amov_fresh : int;
  mutable amov_clear : int;
  mutable loads_eliminated : int;
  mutable stores_eliminated : int;
  mutable overflow_fallbacks : int;
  mutable nonspec_mode_regions : int;
  mutable dropped_edges : int;
  (* static alias certification *)
  mutable certified_pairs : int;
  mutable alias_regs_saved : int;
  mutable certified_alias_faults : int;
  mutable working_set : Sched.Working_set.t;
  mutable wall_seconds : float;
  mutable translate : Profile.t;
}

let create () =
  {
    total_cycles = 0;
    interp_cycles = 0;
    region_cycles = 0;
    optimize_cycles = 0;
    schedule_cycles = 0;
    instrs_interpreted = 0;
    blocks_dispatched = 0;
    region_entries = 0;
    region_commits = 0;
    side_exits_taken = 0;
    rollbacks = 0;
    rollbacks_not_assumed = 0;
    reoptimizations = 0;
    pinned_ops = 0;
    gave_up_regions = 0;
    alias_checks = 0;
    injected_faults = 0;
    spurious_rollbacks = 0;
    degraded_regions = 0;
    verified_regions = 0;
    rejected_regions = 0;
    reject_rules = Hashtbl.create 8;
    tcache_hits = 0;
    tcache_misses = 0;
    tcache_evictions = 0;
    tcache_flushes = 0;
    tcache_invalidations = 0;
    tcache_chain_follows = 0;
    tcache_peak_resident = 0;
    regions_built = 0;
    superblock_instrs = 0;
    superblock_mem_ops = 0;
    p_bits = 0;
    c_bits = 0;
    check_constraints = 0;
    anti_constraints = 0;
    amov_fresh = 0;
    amov_clear = 0;
    loads_eliminated = 0;
    stores_eliminated = 0;
    overflow_fallbacks = 0;
    nonspec_mode_regions = 0;
    dropped_edges = 0;
    certified_pairs = 0;
    alias_regs_saved = 0;
    certified_alias_faults = 0;
    working_set = Sched.Working_set.zero;
    wall_seconds = 0.0;
    translate = Profile.create ();
  }

let note_region_built t (o : Opt.Optimizer.t) ~ws =
  let s = o.Opt.Optimizer.stats in
  let ss = s.Opt.Optimizer.sched_stats in
  t.regions_built <- t.regions_built + 1;
  t.superblock_instrs <- t.superblock_instrs + ss.Sched.List_sched.instr_count;
  t.superblock_mem_ops <- t.superblock_mem_ops + ss.Sched.List_sched.mem_ops;
  t.p_bits <- t.p_bits + ss.Sched.List_sched.p_bits;
  t.c_bits <- t.c_bits + ss.Sched.List_sched.c_bits;
  t.check_constraints <-
    t.check_constraints + ss.Sched.List_sched.check_constraints;
  t.anti_constraints <-
    t.anti_constraints + ss.Sched.List_sched.anti_constraints;
  t.amov_fresh <- t.amov_fresh + ss.Sched.List_sched.amov_fresh;
  t.amov_clear <- t.amov_clear + ss.Sched.List_sched.amov_clear;
  t.loads_eliminated <- t.loads_eliminated + s.Opt.Optimizer.loads_eliminated;
  t.stores_eliminated <-
    t.stores_eliminated + s.Opt.Optimizer.stores_eliminated;
  if s.Opt.Optimizer.fell_back then
    t.overflow_fallbacks <- t.overflow_fallbacks + 1;
  if ss.Sched.List_sched.used_nonspec_mode then
    t.nonspec_mode_regions <- t.nonspec_mode_regions + 1;
  t.dropped_edges <- t.dropped_edges + ss.Sched.List_sched.dropped_pairs;
  let cert_pairs = o.Opt.Optimizer.region.Ir.Region.certified_no_alias in
  t.certified_pairs <- t.certified_pairs + List.length cert_pairs;
  if cert_pairs <> [] then begin
    (* endpoints of certified pairs that finished the build without
       consuming any alias-detection resource — the per-region
       indicator of slots the certifier saved (the bench experiment
       measures the working-set delta directly) *)
    let endpoints = Hashtbl.create 16 in
    List.iter
      (fun (a, b) ->
        Hashtbl.replace endpoints a ();
        Hashtbl.replace endpoints b ())
      cert_pairs;
    let consumes (i : Ir.Instr.t) =
      match Ir.Instr.annot i with
      | Ir.Annot.No_annot -> false
      | Ir.Annot.Queue { p; c; _ } -> p || c
      | Ir.Annot.Alat { advanced } -> advanced
      | Ir.Annot.Mask { set_index; check_mask } ->
        set_index <> None || check_mask <> 0
    in
    List.iter
      (fun (i : Ir.Instr.t) ->
        if Hashtbl.mem endpoints i.Ir.Instr.id && not (consumes i) then begin
          Hashtbl.remove endpoints i.Ir.Instr.id;
          t.alias_regs_saved <- t.alias_regs_saved + 1
        end)
      (Ir.Region.instrs o.Opt.Optimizer.region)
  end;
  t.working_set <- Sched.Working_set.add t.working_set ws

let note_reject t rules =
  t.rejected_regions <- t.rejected_regions + 1;
  List.iter
    (fun rule ->
      Hashtbl.replace t.reject_rules rule
        (1 + Option.value (Hashtbl.find_opt t.reject_rules rule) ~default:0))
    (List.sort_uniq compare rules)

let reject_histogram t =
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) t.reject_rules []
  |> List.sort compare

let note_tcache t (tel : Tcache.Telemetry.t) =
  t.tcache_hits <- t.tcache_hits + tel.Tcache.Telemetry.hits;
  t.tcache_misses <- t.tcache_misses + tel.Tcache.Telemetry.misses;
  t.tcache_evictions <- t.tcache_evictions + tel.Tcache.Telemetry.evictions;
  t.tcache_flushes <- t.tcache_flushes + tel.Tcache.Telemetry.flushes;
  t.tcache_invalidations <-
    t.tcache_invalidations + tel.Tcache.Telemetry.invalidations;
  t.tcache_chain_follows <-
    t.tcache_chain_follows + tel.Tcache.Telemetry.chain_follows;
  t.tcache_peak_resident <-
    max t.tcache_peak_resident tel.Tcache.Telemetry.peak_resident_instrs

let mem_ops_per_superblock t =
  if t.regions_built = 0 then 0.0
  else float_of_int t.superblock_mem_ops /. float_of_int t.regions_built

let constraints_per_mem_op t =
  if t.superblock_mem_ops = 0 then (0.0, 0.0)
  else
    ( float_of_int t.check_constraints /. float_of_int t.superblock_mem_ops,
      float_of_int t.anti_constraints /. float_of_int t.superblock_mem_ops )

let optimize_fraction t =
  if t.total_cycles = 0 then (0.0, 0.0)
  else
    ( float_of_int t.optimize_cycles /. float_of_int t.total_cycles,
      float_of_int t.schedule_cycles /. float_of_int t.total_cycles )

let pp ppf t =
  let f name v = Format.fprintf ppf "  %-26s %d@." name v in
  f "total cycles" t.total_cycles;
  f "  interpreted" t.interp_cycles;
  f "  in regions" t.region_cycles;
  f "  optimizing" t.optimize_cycles;
  f "instrs interpreted" t.instrs_interpreted;
  f "blocks dispatched" t.blocks_dispatched;
  f "region entries" t.region_entries;
  f "region commits" t.region_commits;
  f "side exits taken" t.side_exits_taken;
  f "rollbacks" t.rollbacks;
  f "  not assumed (FP)" t.rollbacks_not_assumed;
  f "reoptimizations" t.reoptimizations;
  f "  ops pinned" t.pinned_ops;
  if t.injected_faults > 0 || t.spurious_rollbacks > 0
     || t.degraded_regions > 0 then begin
    f "injected faults" t.injected_faults;
    f "  spurious rollbacks" t.spurious_rollbacks;
    f "  degraded regions" t.degraded_regions
  end;
  f "regions built" t.regions_built;
  if t.verified_regions > 0 || t.rejected_regions > 0 then begin
    f "regions verified" t.verified_regions;
    f "  rejected" t.rejected_regions;
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "    %-24s %d@." rule n)
      (reject_histogram t)
  end;
  f "tcache hits" t.tcache_hits;
  f "tcache misses" t.tcache_misses;
  f "tcache evictions" t.tcache_evictions;
  f "tcache flushes" t.tcache_flushes;
  f "tcache chain follows" t.tcache_chain_follows;
  f "tcache peak resident" t.tcache_peak_resident;
  f "loads eliminated" t.loads_eliminated;
  f "stores eliminated" t.stores_eliminated;
  f "check constraints" t.check_constraints;
  f "anti constraints" t.anti_constraints;
  f "AMOVs (fresh/clear)" (t.amov_fresh + t.amov_clear);
  f "dropped edges" t.dropped_edges;
  if t.certified_pairs > 0 || t.certified_alias_faults > 0 then begin
    f "certified no-alias pairs" t.certified_pairs;
    f "  alias regs saved" t.alias_regs_saved;
    f "  CERT FAULTS" t.certified_alias_faults
  end;
  f "alias checks" t.alias_checks;
  Format.fprintf ppf "  %-26s %.2f@." "mem ops / superblock"
    (mem_ops_per_superblock t);
  if t.wall_seconds > 0.0 then
    Format.fprintf ppf "  %-26s %.3f s@." "host wall clock" t.wall_seconds;
  Profile.pp ppf t.translate
