(** A capacity-bounded translation cache with region chaining.

    Keys are guest entry labels; values are whatever the runtime caches
    per translation.  Capacity is counted in scheduled-region
    instructions ([size] on insert), the closest analogue of code-cache
    bytes our model has.  The {!Policy.t} chosen at creation decides
    what happens when an insertion would exceed the capacity.

    {2 Chaining}

    When a committed region's exit label has a cached translation, the
    runtime installs a chain link ([chain]) so subsequent dispatches
    skip the lookup ([follow]).  Links are kept consistent with the
    cache contents:

    - eviction, invalidation and flush break every link into {e and}
      out of the removed translation;
    - re-optimization ([replace]) rewrites the translation in place, so
      links {e into} its entry stay valid, but links {e from} it are
      broken and must be rebuilt (the new schedule's exits may differ).

    A [follow] therefore never yields a stale or evicted translation.

    {2 Telemetry}

    Every operation updates the store's {!Telemetry.t}: hits, misses,
    evictions, flushes, chain installs/breaks/follows, and the peak
    resident instruction count. *)

type 'a t

val create : ?capacity:int -> policy:Policy.t -> unit -> 'a t
(** [capacity] is the resident-instruction bound; it is ignored by
    [Unbounded] and defaults to unlimited for the other policies.
    Raises [Invalid_argument] on a non-positive capacity. *)

val policy : 'a t -> Policy.t
val capacity : 'a t -> int option
val telemetry : 'a t -> Telemetry.t

val resident_instrs : 'a t -> int
(** Current resident size in scheduled-region instructions. *)

val length : 'a t -> int
(** Number of resident translations. *)

val mem : 'a t -> string -> bool
(** Membership test; does not touch telemetry or recency. *)

val find : 'a t -> string -> 'a option
(** A dispatch lookup: counts a hit or a miss, and marks the entry as
    most recently used. *)

val insert : 'a t -> string -> size:int -> 'a -> unit
(** Cache a translation, evicting per policy until it fits.  Replaces
    (and unchains) any previous translation under the same label.  A
    region larger than the whole capacity is rejected — counted in
    [rejections] — leaving the label uncached. *)

val replace : 'a t -> string -> size:int -> unit
(** Re-optimization: the caller has rewritten the cached value in
    place; [replace] re-accounts it at [size] instructions.  Chains
    into the label survive (the entry is the same translation slot);
    chains out of it are broken and must be rebuilt, because the new
    schedule's exits may differ.  The entry is touched (it is being
    re-optimized because it is hot), and other entries are evicted per
    policy if the new size overflows the capacity.  If the new size
    alone exceeds the capacity the entry is dropped entirely (counted
    as a rejection).  No-op if the label is not resident. *)

val invalidate : 'a t -> string -> unit
(** Drop one translation (e.g. self-modifying guest code), breaking
    its chains.  No-op if absent. *)

val flush : 'a t -> unit
(** Drop every translation and chain link. *)

val chain : 'a t -> from:string -> exit:string -> unit
(** Record that the translation at [from] exits to the translation at
    [exit], so the dispatch can skip the lookup next time.  A no-op
    unless both labels are resident; installing the same link twice is
    a no-op. *)

val follow : 'a t -> from:string -> exit:string -> 'a option
(** The chained dispatch fast path: the translation at [exit] if a
    chain link [from -> exit] is installed.  Counts a chain-follow and
    touches the target's recency (a followed region is a used
    region). *)

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** Iterate resident translations in unspecified order. *)
