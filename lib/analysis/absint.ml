(* Abstract interpretation of a superblock body: forward pass computing
   [scale * origin + k] values with bounded stride sets for the offset
   [k].  The transfer functions mirror Vliw.Eval's integer semantics
   exactly (safe division, shift counts masked to 5 bits); anything
   they cannot model becomes the opaque-but-fixed result of its
   defining instruction, never "top". *)

type origin = Const | Entry of Ir.Reg.t | Opaque of int

type cset = {
  lo : int;
  hi : int;
  stride : int;
  rem : int;
}

type value = {
  origin : origin;
  scale : int;
  off : cset;
}

let origin_equal a b =
  match (a, b) with
  | Const, Const -> true
  | Entry r1, Entry r2 -> Ir.Reg.equal r1 r2
  | Opaque i, Opaque j -> i = j
  | _ -> false

(* Offsets are kept far away from the int domain boundary so that the
   separation arithmetic (differences, width extensions) can never
   wrap.  Anything larger degrades to an opaque value. *)
let max_mag = 1 lsl 50

let point n = { lo = n; hi = n; stride = 0; rem = 0 }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* gcd over strides where 0 means "singleton, exact": the singleton
   imposes no congruence constraint of its own, so it inherits the
   other side's. *)
let gcd0 a b = if a = 0 then b else if b = 0 then a else gcd a b

let residue c = if c.stride = 0 then c.lo else c.rem
let pos_mod a m = ((a mod m) + m) mod m

let norm c =
  if c.lo = c.hi then point c.lo
  else { c with rem = pos_mod c.rem c.stride }

let guard c = if abs c.lo > max_mag || abs c.hi > max_mag then None else Some c

let cset_add c1 c2 =
  let stride = gcd0 c1.stride c2.stride in
  let rem = if stride = 0 then 0 else pos_mod (residue c1 + residue c2) stride in
  guard (norm { lo = c1.lo + c2.lo; hi = c1.hi + c2.hi; stride; rem })

let cset_neg c =
  let rem = if c.stride = 0 then 0 else pos_mod (-residue c) c.stride in
  norm { lo = -c.hi; hi = -c.lo; stride = c.stride; rem }

let cset_scale k c =
  if k = 0 then Some (point 0)
  else
    let lo, hi =
      if k > 0 then (c.lo * k, c.hi * k) else (c.hi * k, c.lo * k)
    in
    let stride = c.stride * abs k in
    let rem = if stride = 0 then 0 else pos_mod (residue c * k) stride in
    guard (norm { lo; hi; stride; rem })

let cset_mem c n =
  n >= c.lo && n <= c.hi && (c.stride = 0 || pos_mod n c.stride = c.rem)

(* Every member of [inner] lies in [outer]: range inclusion plus the
   inner congruence class refining the outer one. *)
let cset_subset inner outer =
  outer.lo <= inner.lo && inner.hi <= outer.hi
  &&
  if outer.stride = 0 then inner.stride = 0 && inner.lo = outer.lo
  else
    pos_mod (residue inner) outer.stride = outer.rem
    && (inner.stride = 0 || inner.stride mod outer.stride = 0)

type sep = Ranges | Congruence of int

let range_separated c1 w1 c2 w2 =
  c2.lo > c1.hi + (w1 - 1) || c1.lo > c2.hi + (w2 - 1)

(* With equal origins and scales, the address difference a2 - a1 equals
   the offset difference d = k2 - k1.  The ranges [a1, a1+w1) and
   [a2, a2+w2) overlap exactly when d lies in (-w2, w1); the window is
   at most w1 + w2 - 1 values, so the congruence check just walks it. *)
let congruence_separated c1 w1 c2 w2 =
  let g = gcd0 c1.stride c2.stride in
  if g = 0 then None
  else
    let d0 = pos_mod (residue c2 - residue c1) g in
    let hit = ref false in
    for d = -(w2 - 1) to w1 - 1 do
      if pos_mod d g = d0 then hit := true
    done;
    if !hit then None else Some (Congruence g)

let separated v1 w1 v2 w2 =
  if not (origin_equal v1.origin v2.origin && v1.scale = v2.scale) then None
  else if range_separated v1.off w1 v2.off w2 then Some Ranges
  else congruence_separated v1.off w1 v2.off w2

(* --- transfer functions ------------------------------------------- *)

let vconst n = { origin = Const; scale = 0; off = point n }
let ventry r = { origin = Entry r; scale = 1; off = point 0 }
let vopaque id = { origin = Opaque id; scale = 1; off = point 0 }

let const_of v =
  match v.origin with
  | Const when v.off.stride = 0 -> Some v.off.lo
  | _ -> None

let with_off v off =
  match off with None -> None | Some off -> Some { v with off }

(* Re-anchor a value whose symbolic part cancelled to zero. *)
let norm_scale v = if v.scale = 0 then { v with origin = Const } else v

let vadd v1 v2 =
  match (v1.origin, v2.origin) with
  | Const, _ -> with_off v2 (cset_add v2.off v1.off)
  | _, Const -> with_off v1 (cset_add v1.off v2.off)
  | o1, o2 when origin_equal o1 o2 ->
    Option.map
      (fun off -> norm_scale { v1 with scale = v1.scale + v2.scale; off })
      (cset_add v1.off v2.off)
  | _ -> None

let vsub v1 v2 =
  match (v1.origin, v2.origin) with
  | _, Const -> with_off v1 (cset_add v1.off (cset_neg v2.off))
  | o1, o2 when origin_equal o1 o2 ->
    Option.map
      (fun off -> norm_scale { v1 with scale = v1.scale - v2.scale; off })
      (cset_add v1.off (cset_neg v2.off))
  | _ -> None

let scale_by k v =
  if k = 0 then Some (vconst 0)
  else
    Option.map
      (fun off -> { v with scale = v.scale * k; off })
      (cset_scale k v.off)

let vmul v1 v2 =
  match (const_of v1, const_of v2) with
  | Some k, _ -> scale_by k v2
  | _, Some k -> scale_by k v1
  | _ -> None

(* x land m with a non-negative mask gives [0, m] with all bits below
   the mask's lowest set bit forced to zero — sound for any x, even
   negative, because land with m >= 0 clears the sign bit too. *)
let vand_mask m =
  if m = 0 then Some (vconst 0)
  else
    let tz =
      let rec go k = if m land (1 lsl k) <> 0 then k else go (k + 1) in
      go 0
    in
    Some
      {
        origin = Const;
        scale = 0;
        off = { lo = 0; hi = m; stride = 1 lsl tz; rem = 0 };
      }

let safe_div a b = if b = 0 then 0 else a / b

(* Exact integer semantics, identical to Vliw.Eval's binop table. *)
let exact_binop (op : Ir.Instr.binop) a b =
  match op with
  | Ir.Instr.Add -> a + b
  | Ir.Instr.Sub -> a - b
  | Ir.Instr.Mul -> a * b
  | Ir.Instr.Div -> safe_div a b
  | Ir.Instr.And -> a land b
  | Ir.Instr.Or -> a lor b
  | Ir.Instr.Xor -> a lxor b
  | Ir.Instr.Shl -> a lsl (b land 31)
  | Ir.Instr.Shr -> a asr (b land 31)

let in_guard n = abs n <= max_mag

let vbinop (op : Ir.Instr.binop) v1 v2 =
  match (const_of v1, const_of v2) with
  | Some a, Some b ->
    let n = exact_binop op a b in
    if in_guard n then Some (vconst n) else None
  | _ -> (
    match op with
    | Ir.Instr.Add -> vadd v1 v2
    | Ir.Instr.Sub -> vsub v1 v2
    | Ir.Instr.Mul -> vmul v1 v2
    | Ir.Instr.Shl -> (
      match const_of v2 with
      | Some k when k land 31 < 50 -> scale_by (1 lsl (k land 31)) v1
      | _ -> None)
    | Ir.Instr.And -> (
      match (const_of v1, const_of v2) with
      | Some m, _ when m >= 0 && in_guard m -> vand_mask m
      | _, Some m when m >= 0 && in_guard m -> vand_mask m
      | _ -> None)
    | _ -> None)

(* --- the forward pass --------------------------------------------- *)

type t = { addr : (int, value * int) Hashtbl.t }

let analyze ~body =
  let env : (Ir.Reg.t, value) Hashtbl.t = Hashtbl.create 64 in
  let lookup r =
    match Hashtbl.find_opt env r with Some v -> v | None -> ventry r
  in
  let operand = function
    | Ir.Instr.Reg r -> lookup r
    | Ir.Instr.Imm n -> vconst n
  in
  let set r v = Hashtbl.replace env r v in
  let addr = Hashtbl.create 32 in
  let record_addr id (a : Ir.Instr.addr) width =
    match vadd (lookup a.Ir.Instr.base) (vconst a.Ir.Instr.disp) with
    | Some v -> Hashtbl.replace addr id (v, width)
    | None -> ()
  in
  List.iter
    (fun (i : Ir.Instr.t) ->
      match i.Ir.Instr.op with
      | Ir.Instr.Mov (d, src) -> set d (operand src)
      | Ir.Instr.Unop_neg (d, src) -> (
        match scale_by (-1) (operand src) with
        | Some v -> set d v
        | None -> set d (vopaque i.Ir.Instr.id))
      | Ir.Instr.Binop (op, d, a, b) -> (
        match vbinop op (operand a) (operand b) with
        | Some v -> set d v
        | None -> set d (vopaque i.Ir.Instr.id))
      | Ir.Instr.Cmp (_, d, _, _) ->
        (* comparison results are exactly 0 or 1 *)
        set d
          {
            origin = Const;
            scale = 0;
            off = { lo = 0; hi = 1; stride = 1; rem = 0 };
          }
      | Ir.Instr.Fbinop (_, d, _, _) ->
        (* float ops share integer carriers in this simulator but are
           never address material; keep them opaque *)
        set d (vopaque i.Ir.Instr.id)
      | Ir.Instr.Load { dst; addr = a; width; _ } ->
        record_addr i.Ir.Instr.id a width;
        set dst (vopaque i.Ir.Instr.id)
      | Ir.Instr.Store { addr = a; width; _ } ->
        record_addr i.Ir.Instr.id a width
      | Ir.Instr.Branch _ | Ir.Instr.Jump _ | Ir.Instr.Exit _ | Ir.Instr.Nop
      | Ir.Instr.Rotate _ | Ir.Instr.Amov _ ->
        ())
    body;
  { addr }

let address t id = Hashtbl.find_opt t.addr id

let pp_origin ppf = function
  | Const -> Format.fprintf ppf "const"
  | Entry r -> Format.fprintf ppf "entry(%a)" Ir.Reg.pp r
  | Opaque id -> Format.fprintf ppf "opaque(#%d)" id

let pp_cset ppf c =
  if c.stride = 0 then Format.fprintf ppf "{%d}" c.lo
  else Format.fprintf ppf "[%d..%d]/%d+%d" c.lo c.hi c.stride c.rem

let pp_value ppf v =
  match v.origin with
  | Const -> pp_cset ppf v.off
  | _ ->
    Format.fprintf ppf "%d*%a + %a" v.scale pp_origin v.origin pp_cset v.off
