lib/sched/list_sched.mli: Analysis Ir Policy Smarq_alloc
