type t =
  | R of int
  | F of int
  | T of int

let int_count = 32
let float_count = 32

let equal a b =
  match a, b with
  | R i, R j | F i, F j | T i, T j -> i = j
  | (R _ | F _ | T _), _ -> false

let rank = function
  | R _ -> 0
  | F _ -> 1
  | T _ -> 2

let index = function
  | R i | F i | T i -> i

let compare a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c else Int.compare (index a) (index b)

let hash r = (rank r * 1021) + index r

let is_temp = function
  | T _ -> true
  | R _ | F _ -> false

let all_guest =
  List.init int_count (fun i -> R i) @ List.init float_count (fun i -> F i)

let to_string = function
  | R i -> Printf.sprintf "r%d" i
  | F i -> Printf.sprintf "f%d" i
  | T i -> Printf.sprintf "t%d" i

let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
