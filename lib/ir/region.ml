type t = {
  entry : Instr.label;
  bundles : Instr.t list array;
  final_exit : Instr.label option;
  ar_window : int;
  assumed_no_alias : (int * int) list;
  certified_no_alias : (int * int) list;
  source : Superblock.t;
}

let make ~entry ~bundles ~final_exit ~ar_window ~assumed_no_alias
    ?(certified_no_alias = []) ~source () =
  {
    entry;
    bundles;
    final_exit;
    ar_window;
    assumed_no_alias;
    certified_no_alias;
    source;
  }

let schedule_length t = Array.length t.bundles

let instrs t =
  Array.to_list t.bundles |> List.concat

let instr_count t = List.length (instrs t)

let memory_op_count t =
  List.length (List.filter Instr.is_memory (instrs t))

let pp ppf t =
  Format.fprintf ppf "region %s: %d cycles, AR window %d@." t.entry
    (schedule_length t) t.ar_window;
  Array.iteri
    (fun cycle bundle ->
      List.iter
        (fun i -> Format.fprintf ppf "  %3d: %a@." cycle Instr.pp i)
        bundle)
    t.bundles;
  match t.final_exit with
  | Some l -> Format.fprintf ppf "  -> %s@." l
  | None -> Format.fprintf ppf "  -> halt@."
