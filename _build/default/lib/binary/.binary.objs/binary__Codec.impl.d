lib/binary/codec.ml: Array Bytes Hashtbl Image Int64 Ir List Printf String
