type stats = {
  schedule_length : int;
  instr_count : int;
  mem_ops : int;
  p_bits : int;
  c_bits : int;
  check_constraints : int;
  anti_constraints : int;
  amov_fresh : int;
  amov_clear : int;
  ar_working_set : int;
  dropped_pairs : int;
  used_nonspec_mode : bool;
}

type outcome = {
  region : Ir.Region.t;
  alloc_result : Smarq_alloc.result option;
  stats : stats;
  hazards : Hazards.t;
  issue_seq : (int * Ir.Instr.t) list;
}

exception Unschedulable of string

(* The issue sequence: instruction ids in execution order, with the
   cycle each issued in. *)
type issued = {
  seq : (int * Ir.Instr.t) list;  (* reverse issue order: (cycle, instr) *)
  length : int;
}

(* The seed scheduler: rescan the whole body every cycle.  Kept as the
   reference the heap core is differentially tested against. *)
let schedule_core_reference ~sb ~hazards ~heights ~issue_width ~mem_ports
    ~latency ~alloc =
  let body = Array.of_list sb.Ir.Superblock.body in
  let n = Array.length body in
  let by_id = Hashtbl.create (n * 2) in
  Array.iter (fun (i : Ir.Instr.t) -> Hashtbl.replace by_id i.id i) body;
  let position = Hashtbl.create (n * 2) in
  Array.iteri (fun idx (i : Ir.Instr.t) -> Hashtbl.replace position i.id idx)
    body;
  let scheduled_at = Hashtbl.create (n * 2) in
  let is_scheduled id = Hashtbl.mem scheduled_at id in
  (* memory ops in program order, for non-speculation mode *)
  let mem_ids_in_order =
    Array.to_list body
    |> List.filter Ir.Instr.is_memory
    |> List.map (fun (i : Ir.Instr.t) -> i.id)
  in
  let next_mem_index = ref 0 in
  let mem_ids_arr = Array.of_list mem_ids_in_order in
  let advance_next_mem () =
    while
      !next_mem_index < Array.length mem_ids_arr
      && is_scheduled mem_ids_arr.(!next_mem_index)
    do
      incr next_mem_index
    done
  in
  let earliest id =
    List.fold_left
      (fun acc p ->
        match Hashtbl.find_opt scheduled_at p with
        | Some c ->
          let pi = Hashtbl.find by_id p in
          max acc (c + latency pi)
        | None -> max_int)
      0
      (Hazards.preds hazards id)
  in
  let height id = Option.value (Hashtbl.find_opt heights id) ~default:1 in
  let used_nonspec = ref false in
  let seq = ref [] in
  let remaining = ref n in
  let cycle = ref 0 in
  let stall_guard = ref 0 in
  while !remaining > 0 do
    let c = !cycle in
    (* non-speculation mode? *)
    let nonspec =
      match alloc with
      | Some a -> Smarq_alloc.overflow_risk a ~lookahead_p:2
      | None -> false
    in
    if nonspec then used_nonspec := true;
    advance_next_mem ();
    let mem_allowed id =
      if not nonspec then true
      else
        !next_mem_index < Array.length mem_ids_arr
        && mem_ids_arr.(!next_mem_index) = id
    in
    (* gather ready instructions *)
    let ready = ref [] in
    Array.iter
      (fun (i : Ir.Instr.t) ->
        if (not (is_scheduled i.id)) && earliest i.id <= c then
          if Ir.Instr.is_memory i then begin
            if mem_allowed i.id then ready := i :: !ready
          end
          else ready := i :: !ready)
      body;
    let ready =
      List.sort
        (fun (a : Ir.Instr.t) (b : Ir.Instr.t) ->
          let c1 = Int.compare (height b.id) (height a.id) in
          if c1 <> 0 then c1
          else
            Int.compare
              (Hashtbl.find position a.id)
              (Hashtbl.find position b.id))
        !ready
    in
    let slots = ref issue_width and mslots = ref mem_ports in
    let branch_used = ref false in
    let issued_this_cycle = ref 0 in
    List.iter
      (fun (i : Ir.Instr.t) ->
        let is_mem = Ir.Instr.is_memory i in
        let is_br = Ir.Instr.is_branch i in
        if
          !slots > 0
          && ((not is_mem) || !mslots > 0)
          && ((not is_br) || not !branch_used)
        then begin
          (* issue *)
          Hashtbl.replace scheduled_at i.id c;
          decr slots;
          if is_mem then begin
            decr mslots;
            match alloc with
            | Some a -> Smarq_alloc.on_schedule a i
            | None -> ()
          end;
          if is_br then branch_used := true;
          seq := (c, i) :: !seq;
          decr remaining;
          incr issued_this_cycle;
          if is_mem && nonspec then advance_next_mem ()
        end)
      ready;
    if !issued_this_cycle = 0 then begin
      incr stall_guard;
      if !stall_guard > n + 1000 then
        raise
          (Unschedulable
             (Printf.sprintf
                "no progress at cycle %d with %d instructions remaining" c
                !remaining))
    end
    else stall_guard := 0;
    incr cycle
  done;
  let length =
    1 + List.fold_left (fun acc (c, _) -> max acc c) 0 !seq
  in
  ({ seq = !seq; length }, !used_nonspec)

(* Binary max-heap over packed int priorities, with a parallel payload
   array of body positions.  Entries are never removed eagerly: a
   popped-or-stale entry is recognized by its position being scheduled
   (lazy deletion, needed because non-speculation mode can issue a
   memory op that also sits in the memory heap). *)
module Heap = struct
  type h = {
    mutable prio : int array;
    mutable pos : int array;
    mutable size : int;
  }

  let create () = { prio = Array.make 16 0; pos = Array.make 16 0; size = 0 }

  let swap h i j =
    let p = h.prio.(i) and x = h.pos.(i) in
    h.prio.(i) <- h.prio.(j);
    h.pos.(i) <- h.pos.(j);
    h.prio.(j) <- p;
    h.pos.(j) <- x

  let push h prio pos =
    if h.size = Array.length h.prio then begin
      let cap = 2 * h.size in
      let np = Array.make cap 0 and nx = Array.make cap 0 in
      Array.blit h.prio 0 np 0 h.size;
      Array.blit h.pos 0 nx 0 h.size;
      h.prio <- np;
      h.pos <- nx
    end;
    let i = ref h.size in
    h.prio.(!i) <- prio;
    h.pos.(!i) <- pos;
    h.size <- h.size + 1;
    let up = ref true in
    while !up && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.prio.(parent) < h.prio.(!i) then begin
        swap h parent !i;
        i := parent
      end
      else up := false
    done

  let pop h =
    let top = h.pos.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.prio.(0) <- h.prio.(h.size);
      h.pos.(0) <- h.pos.(h.size);
      let i = ref 0 in
      let down = ref true in
      while !down do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.size && h.prio.(l) > h.prio.(!best) then best := l;
        if r < h.size && h.prio.(r) > h.prio.(!best) then best := r;
        if !best <> !i then begin
          swap h !i !best;
          i := !best
        end
        else down := false
      done
    end;
    top
end

(* Incremental ready-set scheduler.  Same per-cycle decisions as the
   reference core, without the per-cycle body rescan:

   - indegree counters over the hazard graph replace the [earliest]
     recomputation: an instruction's release cycle is finalized when
     its last predecessor issues (max over preds of issue + latency,
     always in the future since latencies are >= 1), and release
     buckets indexed by cycle feed three class heaps (memory / branch /
     other) keyed by (height, program position) — heights first,
     original position breaking ties, a total order because positions
     are unique;
   - issuing greedily from the merged heap tops under the slot /
     memory-port / one-branch limits reproduces the reference walk of
     the sorted ready list exactly, because resources only shrink
     within a cycle: the next instruction the walk would accept is
     always the highest-priority top whose class still has capacity;
   - in non-speculation mode the memory heap is bypassed — the only
     admissible memory candidate is the next program-order memory op,
     checked directly (and at most one issues per cycle, as in the
     reference core, which gathers ready candidates before issuing). *)
let schedule_core_fast ~sb ~hazards ~heights ~issue_width ~mem_ports ~latency
    ~alloc =
  let body = Array.of_list sb.Ir.Superblock.body in
  let n = Array.length body in
  if n = 0 then ({ seq = []; length = 1 }, false)
  else begin
    let lat = Array.map latency body in
    let height = Array.make n 1 in
    Array.iteri
      (fun p (i : Ir.Instr.t) ->
        height.(p) <-
          Option.value (Hashtbl.find_opt heights i.id) ~default:1)
      body;
    (* hazard adjacency re-indexed by body position *)
    let index = hazards.Hazards.index in
    let succs_pos = Array.make n [] in
    let indeg = Array.make n 0 in
    for p = 0 to n - 1 do
      succs_pos.(p) <-
        List.map (fun id -> Hashtbl.find index id) hazards.Hazards.succs_of.(p);
      indeg.(p) <- List.length hazards.Hazards.preds_of.(p)
    done;
    let is_mem_p = Array.map Ir.Instr.is_memory body in
    let is_br_p = Array.map Ir.Instr.is_branch body in
    let prio p = (height.(p) * (n + 1)) + (n - 1 - p) in
    let scheduled = Array.make n false in
    let ready_at = Array.make n (-1) in
    let relmax = Array.make n 0 in
    let buckets : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let push_bucket c p =
      Hashtbl.replace buckets c
        (p :: Option.value (Hashtbl.find_opt buckets c) ~default:[])
    in
    for p = 0 to n - 1 do
      if indeg.(p) = 0 then begin
        ready_at.(p) <- 0;
        push_bucket 0 p
      end
    done;
    let mem_pos = ref [] in
    for p = n - 1 downto 0 do
      if is_mem_p.(p) then mem_pos := p :: !mem_pos
    done;
    let mem_pos_arr = Array.of_list !mem_pos in
    let next_mem_index = ref 0 in
    let advance_next_mem () =
      while
        !next_mem_index < Array.length mem_pos_arr
        && scheduled.(mem_pos_arr.(!next_mem_index))
      do
        incr next_mem_index
      done
    in
    let mem_h = Heap.create ()
    and br_h = Heap.create ()
    and plain_h = Heap.create () in
    let clean h =
      while h.Heap.size > 0 && scheduled.(h.Heap.pos.(0)) do
        ignore (Heap.pop h)
      done
    in
    let used_nonspec = ref false in
    let seq = ref [] in
    let remaining = ref n in
    let cycle = ref 0 in
    let stall_guard = ref 0 in
    while !remaining > 0 do
      let c = !cycle in
      (match Hashtbl.find_opt buckets c with
      | Some l ->
        Hashtbl.remove buckets c;
        List.iter
          (fun p ->
            let h =
              if is_mem_p.(p) then mem_h
              else if is_br_p.(p) then br_h
              else plain_h
            in
            Heap.push h (prio p) p)
          l
      | None -> ());
      let nonspec =
        match alloc with
        | Some a -> Smarq_alloc.overflow_risk a ~lookahead_p:2
        | None -> false
      in
      if nonspec then used_nonspec := true;
      advance_next_mem ();
      (* the single admissible memory candidate under non-speculation
         mode, fixed at cycle start exactly like the reference gather *)
      let nonspec_mem =
        ref
          (if not nonspec then None
           else if !next_mem_index >= Array.length mem_pos_arr then None
           else
             let p = mem_pos_arr.(!next_mem_index) in
             if ready_at.(p) >= 0 && ready_at.(p) <= c then Some p else None)
      in
      let slots = ref issue_width and mslots = ref mem_ports in
      let branch_used = ref false in
      let issued_this_cycle = ref 0 in
      let issue p =
        scheduled.(p) <- true;
        let i = body.(p) in
        decr slots;
        if is_mem_p.(p) then begin
          decr mslots;
          (match alloc with
          | Some a -> Smarq_alloc.on_schedule a i
          | None -> ());
          if nonspec then begin
            advance_next_mem ();
            nonspec_mem := None
          end
        end;
        if is_br_p.(p) then branch_used := true;
        seq := (c, i) :: !seq;
        decr remaining;
        incr issued_this_cycle;
        List.iter
          (fun s ->
            relmax.(s) <- max relmax.(s) (c + lat.(p));
            indeg.(s) <- indeg.(s) - 1;
            if indeg.(s) = 0 then begin
              ready_at.(s) <- relmax.(s);
              push_bucket relmax.(s) s
            end)
          succs_pos.(p)
      in
      let progress = ref true in
      while !progress && !slots > 0 do
        clean plain_h;
        if not !branch_used then clean br_h;
        if (not nonspec) && !mslots > 0 then clean mem_h;
        let best_prio = ref min_int and best = ref (-1) in
        let consider h =
          if h.Heap.size > 0 && h.Heap.prio.(0) > !best_prio then begin
            best_prio := h.Heap.prio.(0);
            best := h.Heap.pos.(0)
          end
        in
        consider plain_h;
        if not !branch_used then consider br_h;
        if !mslots > 0 then begin
          if nonspec then (
            match !nonspec_mem with
            | Some p when prio p > !best_prio ->
              best_prio := prio p;
              best := p
            | _ -> ())
          else consider mem_h
        end;
        if !best < 0 then progress := false
        else begin
          let p = !best in
          (* pop the winner from its own heap; a non-speculation-mode
             memory winner stays in the heap and is lazily dropped *)
          (if is_mem_p.(p) then begin
             if not nonspec then ignore (Heap.pop mem_h)
           end
           else if is_br_p.(p) then ignore (Heap.pop br_h)
           else ignore (Heap.pop plain_h));
          issue p
        end
      done;
      if !issued_this_cycle = 0 then begin
        incr stall_guard;
        if !stall_guard > n + 1000 then
          raise
            (Unschedulable
               (Printf.sprintf
                  "no progress at cycle %d with %d instructions remaining" c
                  !remaining))
      end
      else stall_guard := 0;
      incr cycle
    done;
    let length = 1 + List.fold_left (fun acc (c, _) -> max acc c) 0 !seq in
    ({ seq = !seq; length }, !used_nonspec)
  end

(* Materialize the issue sequence into bundles, splicing in AMOV and
   Rotate instructions and applying annotations. *)
let materialize ~issued ~annots ~rotations ~amovs ~fresh_id =
  let annot_tbl = Hashtbl.create 64 in
  List.iter (fun (id, a) -> Hashtbl.replace annot_tbl id a) annots;
  let rot_tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, k) ->
      let cur = Option.value (Hashtbl.find_opt rot_tbl id) ~default:0 in
      Hashtbl.replace rot_tbl id (cur + k))
    rotations;
  let amov_tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Smarq_alloc.amov_insertion) ->
      let cur = Option.value (Hashtbl.find_opt amov_tbl a.before) ~default:[] in
      Hashtbl.replace amov_tbl a.before (a :: cur))
    amovs;
  let bundles_tbl = Hashtbl.create 64 in
  let push cycle instr =
    let l = Option.value (Hashtbl.find_opt bundles_tbl cycle) ~default:[] in
    Hashtbl.replace bundles_tbl cycle (instr :: l)
  in
  (* walk in issue order *)
  List.iter
    (fun (cycle, (i : Ir.Instr.t)) ->
      (* AMOVs scheduled just before their anchor, same cycle *)
      (match Hashtbl.find_opt amov_tbl i.id with
      | Some l ->
        List.iter
          (fun (a : Smarq_alloc.amov_insertion) ->
            push cycle
              (Ir.Instr.make ~id:a.amov_id
                 (Ir.Instr.Amov
                    { src_offset = a.src_offset; dst_offset = a.dst_offset })))
          (List.rev l)
      | None -> ());
      let i =
        match Hashtbl.find_opt annot_tbl i.id with
        | Some a -> Ir.Instr.with_annot i a
        | None -> i
      in
      push cycle i;
      match Hashtbl.find_opt rot_tbl i.id with
      | Some k when k > 0 ->
        let id = !fresh_id in
        incr fresh_id;
        push cycle (Ir.Instr.make ~id (Ir.Instr.Rotate k))
      | Some _ | None -> ())
    (List.rev issued.seq);
  Array.init issued.length (fun c ->
      List.rev (Option.value (Hashtbl.find_opt bundles_tbl c) ~default:[]))

let schedule ~sb ~deps ~policy ~issue_width ~mem_ports ~latency ~fresh_id
    ?(extra_assumed = []) ?(pipeline = Pipeline.Fast) ?profile ?arena () =
  let reference = Pipeline.is_reference pipeline in
  let hazards, heights =
    Profile.time profile Profile.add_hazards (fun () ->
        let hazards = Hazards.build ~sb ~deps ~policy ~reference ?arena () in
        let heights =
          Priority.heights ~body:sb.Ir.Superblock.body ~hazards ~latency
        in
        (hazards, heights))
  in
  let alloc =
    Profile.time profile Profile.add_alloc (fun () ->
        match policy.Policy.scheme with
        | Policy.Queue_scheme ->
          Some
            (Smarq_alloc.create ~body:sb.Ir.Superblock.body ~deps
               ~ar_count:policy.Policy.ar_count ~fresh_id)
        | Policy.Naive_queue_scheme | Policy.Mask_scheme | Policy.Alat_scheme
        | Policy.No_scheme ->
          None)
  in
  let core =
    if reference then schedule_core_reference else schedule_core_fast
  in
  let issued, used_nonspec =
    Profile.time profile Profile.add_sched (fun () ->
        core ~sb ~hazards ~heights ~issue_width ~mem_ports ~latency ~alloc)
  in
  let alloc_result =
    Profile.time profile Profile.add_alloc (fun () ->
        Option.map Smarq_alloc.finish alloc)
  in
  Profile.time profile Profile.add_emit @@ fun () ->
  let issue_seq = List.rev issued.seq in
  let annots, rotations, amovs =
    match alloc_result with
    | Some r -> (r.Smarq_alloc.annots, r.Smarq_alloc.rotations, r.Smarq_alloc.amovs)
    | None -> ([], [], [])
  in
  (* scheme-specific annotation post-passes *)
  let annots, rotations, naive_max_offset =
    match policy.Policy.scheme with
    | Policy.Queue_scheme | Policy.No_scheme -> (annots, rotations, None)
    | Policy.Alat_scheme ->
      ( Alat_annot.annotate ~sb ~deps ~hazards ~issue_order:issue_seq
          ~ar_count:policy.Policy.ar_count,
        rotations,
        None )
    | Policy.Mask_scheme ->
      ( Mask_alloc.annotate ~deps ~hazards ~issue_order:issue_seq
          ~ar_count:policy.Policy.ar_count,
        rotations,
        None )
    | Policy.Naive_queue_scheme ->
      let r =
        Naive_alloc.annotate ~body:sb.Ir.Superblock.body
          ~issue_order:issue_seq
          ~ar_count:policy.Policy.ar_count
      in
      (r.Naive_alloc.annots, r.Naive_alloc.rotations,
       Some r.Naive_alloc.max_offset)
  in
  let bundles = materialize ~issued ~annots ~rotations ~amovs ~fresh_id in
  let max_offset =
    match alloc_result, naive_max_offset with
    | Some r, _ -> r.Smarq_alloc.max_offset
    | None, Some m -> m
    | None, None ->
      List.fold_left
        (fun acc (_, a) ->
          match a with
          | Ir.Annot.Mask { set_index = Some i; _ } -> max acc i
          | _ -> acc)
        (-1) annots
  in
  let assumed = Hazards.(hazards.dropped) @ extra_assumed in
  let region =
    Ir.Region.make ~entry:sb.Ir.Superblock.entry ~bundles
      ~final_exit:sb.Ir.Superblock.final_exit ~ar_window:(max_offset + 1)
      ~assumed_no_alias:assumed ~source:sb ()
  in
  let mem_ops = List.length (Ir.Superblock.memory_ops sb) in
  let p_bits, c_bits, checks, antis, amov_fresh, amov_clear =
    match alloc_result with
    | Some r ->
      ( Hashtbl.length r.Smarq_alloc.allocation.Analysis.Constraints.p_bit,
        Hashtbl.length r.Smarq_alloc.allocation.Analysis.Constraints.c_bit,
        List.length r.Smarq_alloc.check_edges,
        List.length r.Smarq_alloc.anti_edges,
        List.length
          (List.filter
             (fun (a : Smarq_alloc.amov_insertion) -> a.dst_is_fresh)
             r.Smarq_alloc.amovs),
        List.length
          (List.filter
             (fun (a : Smarq_alloc.amov_insertion) -> not a.dst_is_fresh)
             r.Smarq_alloc.amovs) )
    | None -> (0, 0, 0, 0, 0, 0)
  in
  let stats =
    {
      schedule_length = issued.length;
      instr_count = Ir.Superblock.instr_count sb;
      mem_ops;
      p_bits;
      c_bits;
      check_constraints = checks;
      anti_constraints = antis;
      amov_fresh;
      amov_clear;
      ar_working_set = max_offset + 1;
      dropped_pairs = List.length Hazards.(hazards.dropped);
      used_nonspec_mode = used_nonspec;
    }
  in
  { region; alloc_result; stats; hazards; issue_seq }
