lib/workload/builder.mli: Ir
