lib/workload/specfp.mli: Ir
