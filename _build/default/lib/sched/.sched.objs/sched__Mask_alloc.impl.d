lib/sched/mask_alloc.ml: Analysis Array Hashtbl Ir List Option Printf
