lib/analysis/depgraph.ml: Array Format Hashtbl Ir List May_alias Option
