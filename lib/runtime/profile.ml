type t = Sched.Profile.t

let create = Sched.Profile.create
let accumulate = Sched.Profile.accumulate
let reset = Sched.Profile.reset
let total = Sched.Profile.total

let regions_per_second (p : t) =
  let s = total p in
  if s <= 0.0 then 0.0 else float_of_int p.Sched.Profile.regions /. s

let instrs_per_second (p : t) =
  let s = total p in
  if s <= 0.0 then 0.0 else float_of_int p.Sched.Profile.instrs /. s

let phases (p : t) =
  [
    ("alias", p.Sched.Profile.alias_s);
    ("depgraph", p.Sched.Profile.depgraph_s);
    ("hazards", p.Sched.Profile.hazards_s);
    ("alloc", p.Sched.Profile.alloc_s);
    ("sched", p.Sched.Profile.sched_s);
    ("emit", p.Sched.Profile.emit_s);
  ]

let pp ppf (p : t) =
  if total p > 0.0 then begin
    Format.fprintf ppf "  %-26s %.4f s (%d regions, %d instrs)@."
      "translate time" (total p) p.Sched.Profile.regions
      p.Sched.Profile.instrs;
    List.iter
      (fun (name, s) ->
        if s > 0.0 then
          Format.fprintf ppf "    %-24s %.4f s@." (name ^ " phase") s)
      (phases p);
    Format.fprintf ppf "  %-26s %.1f@." "regions / second"
      (regions_per_second p)
  end
