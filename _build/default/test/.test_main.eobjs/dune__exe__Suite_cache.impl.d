test/suite_cache.ml: Alcotest Frontend Helpers Runtime Smarq Vliw Workload
