lib/analysis/cycle_detect.mli:
