type config = {
  seeds : int list;
  rate : float;
  schemes : Smarq.Scheme.t list;
  scale : int;
  fuel : int;
  verify : Check.Verifier.mode;
  certify : bool;
}

let default_config =
  {
    seeds = [ 1; 2; 3 ];
    rate = 0.05;
    schemes = Smarq.Scheme.all @ [ Smarq.Scheme.None_static ];
    scale = 1;
    fuel = 1_000_000_000;
    verify = Check.Verifier.All;
    certify = false;
  }

type run = {
  bench : string;
  seed : int;
  entry : Oracle.entry;
}

type result = {
  config : config;
  runs : run list;
}

let ok r = List.for_all (fun c -> Oracle.entry_ok c.entry) r.runs

let run_program cfg ~name program =
  List.concat_map
    (fun seed ->
      let report =
        Oracle.check ~fuel:cfg.fuel
          ~fault:(fun ~seed ~rate () -> Fault.plan ~seed ~rate ())
          ~verify:cfg.verify ~certify:cfg.certify ~seed ~rate:cfg.rate
          ~name ~schemes:cfg.schemes (program ())
      in
      List.map (fun entry -> { bench = name; seed; entry }) report.Oracle.entries)
    cfg.seeds

let run_benches cfg benches =
  let runs =
    List.concat_map
      (fun (b : Workload.Specfp.bench) ->
        run_program cfg ~name:b.Workload.Specfp.name (fun () ->
            Workload.Specfp.program ~scale:cfg.scale b))
      benches
  in
  { config = cfg; runs }

(* How a run's static verdict relates to the dynamic oracle's — the
   campaign's translation-validation cross-check.  Agreement means
   both say sound or both flag the run; a static reject with a clean
   oracle is a (conservative) verifier false alarm; a divergence the
   verifier missed is the serious direction. *)
type cross_check =
  | Both_ok
  | Static_reject_only
  | Dynamic_diverge_only
  | Both_flag

let cross_check_of_entry (e : Oracle.entry) =
  match (Oracle.entry_static_ok e, e.Oracle.divergence = []) with
  | true, true -> Both_ok
  | false, true -> Static_reject_only
  | true, false -> Dynamic_diverge_only
  | false, false -> Both_flag

let cross_check_name = function
  | Both_ok -> "both_ok"
  | Static_reject_only -> "static_reject_only"
  | Dynamic_diverge_only -> "dynamic_diverge_only"
  | Both_flag -> "both_flag"

let json_line cfg r =
  let st = r.entry.Oracle.stats in
  Printf.sprintf
    "{\"bench\":\"%s\",\"scheme\":\"%s\",\"seed\":%d,\"rate\":%.4f,\
     \"outcome\":\"%s\",\"ok\":%b,\"injected_faults\":%d,\
     \"spurious_rollbacks\":%d,\"degraded_regions\":%d,\"rollbacks\":%d,\
     \"reoptimizations\":%d,\"pinned_ops\":%d,\"gave_up_regions\":%d,\
     \"total_cycles\":%d,\"verified_regions\":%d,\"rejected_regions\":%d,\
     \"static_ok\":%b,\"cross_check\":\"%s\",\"certify\":%b,\
     \"certified_pairs\":%d,\"certified_alias_faults\":%d}"
    r.bench r.entry.Oracle.scheme r.seed cfg.rate
    (match r.entry.Oracle.outcome with
    | Runtime.Driver.Completed -> "completed"
    | Runtime.Driver.Fuel_exhausted -> "fuel_exhausted"
    | Runtime.Driver.Deadline_exceeded -> "deadline_exceeded")
    (Oracle.entry_ok r.entry)
    st.Runtime.Stats.injected_faults st.Runtime.Stats.spurious_rollbacks
    st.Runtime.Stats.degraded_regions st.Runtime.Stats.rollbacks
    st.Runtime.Stats.reoptimizations st.Runtime.Stats.pinned_ops
    st.Runtime.Stats.gave_up_regions st.Runtime.Stats.total_cycles
    st.Runtime.Stats.verified_regions st.Runtime.Stats.rejected_regions
    (Oracle.entry_static_ok r.entry)
    (cross_check_name (cross_check_of_entry r.entry))
    cfg.certify st.Runtime.Stats.certified_pairs
    st.Runtime.Stats.certified_alias_faults

let pp_summary ppf r =
  let total = List.length r.runs in
  let failed = List.filter (fun c -> not (Oracle.entry_ok c.entry)) r.runs in
  let injected =
    List.fold_left
      (fun acc c -> acc + c.entry.Oracle.stats.Runtime.Stats.injected_faults)
      0 r.runs
  in
  let degraded =
    List.fold_left
      (fun acc c -> acc + c.entry.Oracle.stats.Runtime.Stats.degraded_regions)
      0 r.runs
  in
  let verified =
    List.fold_left
      (fun acc c -> acc + c.entry.Oracle.stats.Runtime.Stats.verified_regions)
      0 r.runs
  in
  let count x =
    List.length
      (List.filter (fun c -> cross_check_of_entry c.entry = x) r.runs)
  in
  Format.fprintf ppf
    "fault campaign: %d runs (%d seeds x %d schemes), %d faults injected, %d \
     regions degraded, %d divergences@."
    total
    (List.length r.config.seeds)
    (List.length r.config.schemes)
    injected degraded (List.length failed);
  if r.config.certify then begin
    let cert_pairs =
      List.fold_left
        (fun acc c ->
          acc + c.entry.Oracle.stats.Runtime.Stats.certified_pairs)
        0 r.runs
    in
    let cert_faults =
      List.fold_left
        (fun acc c ->
          acc + c.entry.Oracle.stats.Runtime.Stats.certified_alias_faults)
        0 r.runs
    in
    Format.fprintf ppf
      "alias certification: %d pairs certified, %d certified-pair faults%s@."
      cert_pairs cert_faults
      (if cert_faults = 0 then "" else " (SOUNDNESS BUG)")
  end;
  if r.config.verify <> Check.Verifier.Off then
    Format.fprintf ppf
      "static cross-check: %d regions verified; runs: %d both ok, %d static \
       reject only, %d dynamic diverge only, %d both flag@."
      verified (count Both_ok) (count Static_reject_only)
      (count Dynamic_diverge_only) (count Both_flag);
  List.iter
    (fun c ->
      Format.fprintf ppf "  FAILED %s seed %d: %a@." c.bench c.seed
        Oracle.pp_entry c.entry)
    failed
