lib/hw/queue.ml: Access Detector Hashtbl Int Ir List Printf
