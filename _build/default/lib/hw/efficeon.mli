(** Transmeta Efficeon-like alias detection (Section 2.2 of the paper).

    Each memory operation may set one named alias register and check an
    explicit {e bit-mask} of alias registers.  The mask lives in the
    instruction encoding, which is why the scheme cannot scale past 15
    registers.  Checks are precise (no false positives) and stores can
    be checked against stores, but the optimizer must enumerate every
    register to check, and regions needing more than [size] live
    registers cannot be speculated. *)

type t

val encoding_limit : int
(** 15, the paper's stated Efficeon bound. *)

val create : ?size:int -> unit -> t
(** Defaults to {!encoding_limit}.  Raises [Invalid_argument] when
    [size] exceeds {!encoding_limit} or is non-positive. *)

val size : t -> int
val detector : t -> Detector.t
val reset : t -> unit
val on_mem : t -> Ir.Instr.t -> Access.t -> (unit, Detector.violation) result
val checks_performed : t -> int
