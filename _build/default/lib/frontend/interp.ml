module M = Vliw.Machine
module E = Vliw.Eval

type stats = {
  mutable instrs_executed : int;
  block_counts : (Ir.Instr.label, int) Hashtbl.t;
}

let fresh_stats () = { instrs_executed = 0; block_counts = Hashtbl.create 64 }

exception Out_of_fuel

let bump_block stats label =
  let n = Option.value (Hashtbl.find_opt stats.block_counts label) ~default:0 in
  Hashtbl.replace stats.block_counts label (n + 1)

let exec_block ?stats m (b : Ir.Block.t) =
  (match stats with
  | Some s ->
    bump_block s b.label;
    s.instrs_executed <- s.instrs_executed + List.length b.body + 1
  | None -> ());
  List.iter (E.exec_data m) b.body;
  match b.terminator with
  | Ir.Block.Fallthrough l -> Some l
  | Ir.Block.Halt -> None
  | Ir.Block.Cond { cond; taken; fallthrough; _ } ->
    if E.operand_value m cond <> 0 then Some taken else Some fallthrough

let run ?(fuel = 10_000_000) ?stats m (p : Ir.Program.t) =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let rec go label =
    if stats.instrs_executed > fuel then raise Out_of_fuel;
    let b = Ir.Program.block p label in
    match exec_block ~stats m b with
    | Some next -> go next
    | None -> ()
  in
  go p.entry;
  stats

type mem_event = {
  instr_id : int;
  range : Hw.Access.t;
  is_store : bool;
}

type trace = {
  taken_exit : Ir.Instr.label option;
  events : mem_event list;
  executed_ids : int list;
}

let trace_superblock m (sb : Ir.Superblock.t) =
  let events = ref [] in
  let executed = ref [] in
  let rec go = function
    | [] -> { taken_exit = None; events = List.rev !events;
              executed_ids = List.rev !executed }
    | (i : Ir.Instr.t) :: rest ->
      executed := i.id :: !executed;
      (match E.access_of m i with
      | Some range ->
        events :=
          { instr_id = i.id; range; is_store = Ir.Instr.is_store i }
          :: !events
      | None -> ());
      (match E.exec_control m i with
      | E.Leave_region l ->
        { taken_exit = Some l; events = List.rev !events;
          executed_ids = List.rev !executed }
      | E.Goto _ -> invalid_arg "trace_superblock: jump in superblock body"
      | E.Fall_through ->
        E.exec_data m i;
        go rest)
  in
  go sb.body
