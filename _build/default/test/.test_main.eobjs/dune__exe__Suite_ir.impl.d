test/suite_ir.ml: Alcotest Format Hashtbl Helpers Ir List Result
