type violation = {
  checker : int;
  setter : int;
  false_positive_prone : bool;
}

type caps = {
  scheme : string;
  scalable : bool;
  false_positives : bool;
  detects_store_store : bool;
  max_registers : int option;
}

type t = {
  name : string;
  caps : caps;
  reset : unit -> unit;
  on_mem : Ir.Instr.t -> Access.t -> (unit, violation) result;
  on_rotate : int -> unit;
  on_amov : src:int -> dst:int -> unit;
  checks_performed : unit -> int;
}

let exceeds_window _ _ = false

let wrap ?name ?(reset = fun () -> ()) ?on_mem (d : t) =
  let base_on_mem = d.on_mem in
  {
    d with
    name = (match name with Some n -> n | None -> d.name);
    reset =
      (fun () ->
        d.reset ();
        reset ());
    on_mem =
      (match on_mem with None -> d.on_mem | Some f -> f base_on_mem);
  }

let pp_violation ppf v =
  Format.fprintf ppf "alias violation: instr %d checked instr %d%s" v.checker
    v.setter
    (if v.false_positive_prone then " (possibly spurious)" else "")
